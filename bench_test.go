// Package talkback_test carries the experiment benchmark harness: one
// testing.B benchmark per experiment family in DESIGN.md §3 (figures F1–F7,
// narratives N1–N4, translations T1–T10, and the X-series behaviours),
// plus the scale sweep X6. Run with:
//
//	go test -bench=. -benchmem .
package talkback_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	talkback "repro"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/datatotext"
	"repro/internal/engine"
	"repro/internal/explain"
	"repro/internal/nlg"
	"repro/internal/queryclassify"
	"repro/internal/querygraph"
	"repro/internal/querytotext"
	"repro/internal/repl"
	"repro/internal/schemagraph"
	"repro/internal/speech"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

// ---------------------------------------------------------------------------
// F-series: figure regeneration
// ---------------------------------------------------------------------------

// BenchmarkF1SchemaGraphBuild regenerates Fig. 1 (schema graph + render).
func BenchmarkF1SchemaGraphBuild(b *testing.B) {
	schema := dataset.MovieSchema()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := schemagraph.Build(schema)
		if err != nil {
			b.Fatal(err)
		}
		if g.DOT(false) == "" {
			b.Fatal("empty render")
		}
	}
}

func benchQueryGraph(b *testing.B, label string) {
	b.Helper()
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[label])
	if err != nil {
		b.Fatal(err)
	}
	schema := dataset.MovieSchema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := querygraph.Build(sel, schema)
		if err != nil {
			b.Fatal(err)
		}
		if g.ASCII() == "" {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkF2QueryGraphRender regenerates Fig. 2 (the parameterized-class
// rendering, exercised on Q1).
func BenchmarkF2QueryGraphRender(b *testing.B) { benchQueryGraph(b, "Q1") }

// BenchmarkF3QueryGraphPath regenerates Fig. 3 (Q1).
func BenchmarkF3QueryGraphPath(b *testing.B) { benchQueryGraph(b, "Q1") }

// BenchmarkF4QueryGraphSubgraph regenerates Fig. 4 (Q2).
func BenchmarkF4QueryGraphSubgraph(b *testing.B) { benchQueryGraph(b, "Q2") }

// BenchmarkF5QueryGraphMultiInstance regenerates Fig. 5 (Q3).
func BenchmarkF5QueryGraphMultiInstance(b *testing.B) { benchQueryGraph(b, "Q3") }

// BenchmarkF6QueryGraphCyclic regenerates Fig. 6 (Q4).
func BenchmarkF6QueryGraphCyclic(b *testing.B) { benchQueryGraph(b, "Q4") }

// BenchmarkF7QueryGraphAggregate regenerates Fig. 7 (Q7 with NQ1).
func BenchmarkF7QueryGraphAggregate(b *testing.B) { benchQueryGraph(b, "Q7") }

// ---------------------------------------------------------------------------
// N-series: content narratives
// ---------------------------------------------------------------------------

func movieTranslator(b *testing.B, opts datatotext.Options) *datatotext.Translator {
	b.Helper()
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := datatotext.NewMovieTranslator(db, opts)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkN1ContentCompact regenerates the compact Woody Allen narrative.
func BenchmarkN1ContentCompact(b *testing.B) {
	tr := movieTranslator(b, datatotext.Options{Style: nlg.Compact})
	key := talkback.Text("Woody Allen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.DescribeEntity("DIRECTOR", "name", key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkN2ContentProcedural regenerates the procedural variant.
func BenchmarkN2ContentProcedural(b *testing.B) {
	tr := movieTranslator(b, datatotext.Options{Style: nlg.Procedural})
	key := talkback.Text("Woody Allen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.DescribeEntity("DIRECTOR", "name", key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkN3CommonExpressionMerge measures the born-in/born-on factoring.
func BenchmarkN3CommonExpressionMerge(b *testing.B) {
	clauses := []nlg.Clause{
		{Subject: "Woody Allen", Predicate: "was born in Brooklyn, New York, USA"},
		{Subject: "Woody Allen", Predicate: "was born on December 1, 1935"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := nlg.FactorClauses(clauses); len(out) != 1 {
			b.Fatal("merge failed")
		}
	}
}

// BenchmarkN4SplitPattern measures the split-pattern relative-clause merge.
func BenchmarkN4SplitPattern(b *testing.B) {
	head := "the movie M1 involves the director D1 and the actor A1"
	subs := []nlg.Clause{
		{Subject: "D1", Predicate: "was born in Italy", Kind: nlg.Person},
		{Subject: "A1", Predicate: "is Greek", Kind: nlg.Person},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if nlg.MergeSplit(head, subs) == "" {
			b.Fatal("merge failed")
		}
	}
}

// ---------------------------------------------------------------------------
// T-series: query translations
// ---------------------------------------------------------------------------

func benchTranslate(b *testing.B, label string, elaborate bool) {
	b.Helper()
	schema := dataset.MovieSchema()
	verbs := querytotext.MovieVerbs()
	if label == "Q0" {
		schema = dataset.EmpDeptSchema()
		verbs = querytotext.EmpVerbs()
	}
	tr := querytotext.New(schema, verbs, querytotext.Options{Elaborate: elaborate})
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[label])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Translate(sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1TranslatePath translates Q1.
func BenchmarkT1TranslatePath(b *testing.B) { benchTranslate(b, "Q1", true) }

// BenchmarkT2TranslateSubgraph translates Q2.
func BenchmarkT2TranslateSubgraph(b *testing.B) { benchTranslate(b, "Q2", false) }

// BenchmarkT3TranslateMultiInstance translates Q3 (pairs idiom).
func BenchmarkT3TranslateMultiInstance(b *testing.B) { benchTranslate(b, "Q3", false) }

// BenchmarkT4TranslateCyclic translates Q4.
func BenchmarkT4TranslateCyclic(b *testing.B) { benchTranslate(b, "Q4", false) }

// BenchmarkT5Unnest translates Q5 (IN-unnesting then path translation).
func BenchmarkT5Unnest(b *testing.B) { benchTranslate(b, "Q5", true) }

// BenchmarkT6TranslateDivision translates Q6 (division idiom).
func BenchmarkT6TranslateDivision(b *testing.B) { benchTranslate(b, "Q6", false) }

// BenchmarkT7TranslateAggregate translates Q7.
func BenchmarkT7TranslateAggregate(b *testing.B) { benchTranslate(b, "Q7", false) }

// BenchmarkT8TranslateSameYearIdiom translates Q8.
func BenchmarkT8TranslateSameYearIdiom(b *testing.B) { benchTranslate(b, "Q8", false) }

// BenchmarkT9TranslateEarliestIdiom translates Q9.
func BenchmarkT9TranslateEarliestIdiom(b *testing.B) { benchTranslate(b, "Q9", false) }

// BenchmarkT10TranslateComparative translates the §3.1 EMP query.
func BenchmarkT10TranslateComparative(b *testing.B) { benchTranslate(b, "Q0", false) }

// BenchmarkTNaiveAblation measures the naive per-edge rendering of Q3, the
// baseline the idioms replace.
func BenchmarkTNaiveAblation(b *testing.B) {
	tr := querytotext.New(dataset.MovieSchema(), querytotext.MovieVerbs(), querytotext.Options{})
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries["Q3"])
	if err != nil {
		b.Fatal(err)
	}
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.TranslateNaive(sel, g) == "" {
			b.Fatal("empty")
		}
	}
}

// ---------------------------------------------------------------------------
// X-series: end-to-end behaviours
// ---------------------------------------------------------------------------

// BenchmarkX1Classify classifies the whole corpus.
func BenchmarkX1Classify(b *testing.B) {
	var graphs []*querygraph.Graph
	for _, label := range sqlparser.PaperQueryOrder {
		schema := dataset.MovieSchema()
		if label == "Q0" {
			schema = dataset.EmpDeptSchema()
		}
		sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[label])
		if err != nil {
			b.Fatal(err)
		}
		g, err := querygraph.Build(sel, schema)
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queryclassify.Classify(graphs[i%len(graphs)])
	}
}

// BenchmarkX2ExplainEmpty diagnoses an empty answer.
func BenchmarkX2ExplainEmpty(b *testing.B) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		b.Fatal(err)
	}
	ex := engine.New(db)
	tr := querytotext.New(db.Schema(), querytotext.MovieVerbs(), querytotext.Options{})
	e := explain.New(ex, tr)
	sel, err := sqlparser.ParseSelect(`select m.title from MOVIES m, CAST c, ACTOR a
		where m.id = c.mid and c.aid = a.id and a.name = 'Nobody Unknown'`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExplainEmpty(sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX3ExplainLarge explains a large answer on a generated database.
func BenchmarkX3ExplainLarge(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{Seed: 9, Movies: 300, Actors: 100, Directors: 10, CastPerMovie: 3, GenresPerMovie: 2})
	if err != nil {
		b.Fatal(err)
	}
	ex := engine.New(db)
	tr := querytotext.New(db.Schema(), querytotext.MovieVerbs(), querytotext.Options{})
	e := explain.New(ex, tr)
	sel, err := sqlparser.ParseSelect("select m.title, c.role from MOVIES m, CAST c where m.id = c.mid")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExplainLarge(sel, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX4SummarySweep measures budgeted database narration across
// budgets (the §2.2 size-control sweep).
func BenchmarkX4SummarySweep(b *testing.B) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		b.Fatal(err)
	}
	for _, budget := range []int{4, 8, 16, 0} {
		tr, err := datatotext.NewMovieTranslator(db, datatotext.Options{
			Style: nlg.Procedural, MaxSentences: budget, MaxTuplesPerRelation: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tr.DescribeDatabase("MOVIES"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkX5VoiceLoop measures the full spoken round trip.
func BenchmarkX5VoiceLoop(b *testing.B) {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		b.Fatal(err)
	}
	v := sys.NewVoiceSession(speech.MovieGrammar())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Ask("which movies does Brad Pitt play in"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX6ContentScale sweeps database size for entity narration (the
// translation cost should stay near-constant while the database grows —
// narratives touch only the relevant neighborhood).
func BenchmarkX6ContentScale(b *testing.B) {
	for _, movies := range []int{10, 100, 1000, 10000} {
		db, err := dataset.GenerateMovieDB(dataset.GenConfig{
			Seed: 21, Movies: movies, Actors: movies / 2, Directors: movies/10 + 1,
			CastPerMovie: 3, GenresPerMovie: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := datatotext.NewMovieTranslator(db, datatotext.Options{Style: nlg.Compact})
		if err != nil {
			b.Fatal(err)
		}
		// Narrate the first generated director.
		name := db.Table("DIRECTOR").Tuple(0)[1]
		b.Run(fmt.Sprintf("movies=%d", movies), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tr.DescribeEntity("DIRECTOR", "name", name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkX7AskEndToEnd measures the full Ask loop on the curated DB.
func BenchmarkX7AskEndToEnd(b *testing.B) {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		b.Fatal(err)
	}
	src := sqlparser.PaperQueries["Q1"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX8AskCached measures the serving-layer cache: repeated Ask of
// the same query with the parse/graph/translation caches on vs. off. The
// cached variant must come out ≥2x faster (tracked in BENCH_1.json).
func BenchmarkX8AskCached(b *testing.B) {
	build := func(b *testing.B, disable bool) *talkback.System {
		db, err := dataset.CuratedMovieDB()
		if err != nil {
			b.Fatal(err)
		}
		cfg := talkback.MovieConfig()
		cfg.DisableCache = disable
		sys, err := talkback.New(db, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	src := sqlparser.PaperQueries["Q1"]
	b.Run("uncached", func(b *testing.B) {
		sys := build(b, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Ask(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		sys := build(b, false)
		if _, err := sys.Ask(src); err != nil { // warm the caches
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Ask(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkX10PlannerScan measures the planner's access-path choice on a
// selective equality predicate over a 100k-row table: the same query as a
// full scan (no index) and as a secondary-index probe. The indexed variant
// must beat the scan by ≥ 5x (tracked in BENCH_2.json).
func BenchmarkX10PlannerScan(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 13, Movies: 100000, Actors: 25000, Directors: 1001,
		CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(db)
	title := db.Table("MOVIES").Tuple(54321)[1]
	src := fmt.Sprintf("select m.year from MOVIES m where m.title = %s", title.SQL())
	sel, err := sqlparser.ParseSelect(src)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.Select(sel)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("probe found nothing")
			}
		}
	}
	// Order matters: the scan variant runs before the index exists.
	b.Run("full-scan", run)
	if err := db.Table("MOVIES").CreateIndex("ix_movies_title", "title"); err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", run)
}

// BenchmarkX11GroupedAggregate measures grouped aggregation over the 100k
// corpus three ways: the planned pipeline (which now takes the fused
// vectorized-aggregation path: typed accumulators straight off the column
// vectors, no joined-row materialization), the streaming grouped pipeline
// (vec disabled: slot readers over arena rows), and the forced-naive env+map
// path. The planned variant's allocs and bytes are gated in benchgate
// (tracked in BENCH_5.json; the acceptance floor is ≥ 4x fewer bytes/op than
// the BENCH_4.json streaming recording).
func BenchmarkX11GroupedAggregate(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 17, Movies: 100000, Actors: 25000, Directors: 1001,
		CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(db)
	sel, err := sqlparser.ParseSelect(`select g.genre, count(*), avg(m.year), max(m.year)
from MOVIES m, GENRE g where m.id = g.mid group by g.genre having count(*) > 10`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		planned bool
		vec     bool
	}{{"planned", true, true}, {"streaming", true, false}, {"naive", false, true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng.SetPlannerEnabled(mode.planned)
			eng.SetVecAggEnabled(mode.vec)
			defer func() {
				eng.SetPlannerEnabled(true)
				eng.SetVecAggEnabled(true)
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Select(sel)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}

// BenchmarkX12TopKSort measures ORDER BY + LIMIT on the planned pipeline:
// the bounded top-K heap (LIMIT present) against the stable full sort of the
// same rows (LIMIT absent, truncated by the caller). The heap must win
// (tracked in BENCH_3.json).
func BenchmarkX12TopKSort(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 19, Movies: 100000, Actors: 25000, Directors: 1001,
		CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(db)
	topK, err := sqlparser.ParseSelect("select m.title, m.year from MOVIES m order by m.year desc, m.title limit 10")
	if err != nil {
		b.Fatal(err)
	}
	fullSort, err := sqlparser.ParseSelect("select m.title, m.year from MOVIES m order by m.year desc, m.title")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		sel  *sqlparser.SelectStmt
		want int
	}{{"top-k", topK, 10}, {"full-sort", fullSort, 100000}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := eng.Select(mode.sel)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != mode.want {
					b.Fatalf("got %d rows", len(res.Rows))
				}
				if len(res.Rows[0]) > 0 {
					_ = res.Rows[0][0]
				}
			}
		})
	}
}

// BenchmarkX13ScanFilter measures full-scan filter throughput over the 100k
// corpus: a selective year-range predicate over MOVIES projecting the title,
// planned (columnar vector filter + direct column projection) against the
// forced-naive env-per-row pipeline. The planned variant's time and bytes/op
// against the PR-3 row layout are tracked in BENCH_4.json (floors: 3x time,
// 5x bytes/op).
func BenchmarkX13ScanFilter(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 23, Movies: 100000, Actors: 25000, Directors: 1001,
		CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(db)
	sel, err := sqlparser.ParseSelect("select m.title from MOVIES m where m.year >= 1955 and m.year <= 1956")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		planned bool
	}{{"planned", true}, {"naive", false}} {
		b.Run(mode.name, func(b *testing.B) {
			eng.SetPlannerEnabled(mode.planned)
			defer eng.SetPlannerEnabled(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Select(sel)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("filter matched nothing")
				}
			}
		})
	}
}

// BenchmarkX14JoinBuild measures hash-join build-side allocations on the
// planned pipeline: a 100k x 100k equi-join whose build side has ~100k
// distinct keys. The build structure must allocate O(distinct keys) at most —
// not one slice per key (tracked in BENCH_4.json).
func BenchmarkX14JoinBuild(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 17, Movies: 100000, Actors: 25000, Directors: 1001,
		CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(db)
	sel, err := sqlparser.ParseSelect("select m.id from MOVIES m, GENRE g where m.id = g.mid")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Select(sel)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("join produced nothing")
		}
	}
}

// BenchmarkX9ParallelJoin measures the engine's fan-out on a two-table
// hash join at 10k and 100k probe rows, serial vs. all cores. On a
// single-core host the parallel subbenches skip with an explanation instead
// of recording a meaningless 0% speedup: workersFor caps at GOMAXPROCS, so
// serial and parallel are the same execution by construction.
func BenchmarkX9ParallelJoin(b *testing.B) {
	src := `select m.title from MOVIES m, CAST c
where m.id = c.mid and c.role = 'Role 7-19'`
	sel, err := sqlparser.ParseSelect(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, movies := range []int{10000, 100000} {
		db, err := dataset.GenerateMovieDB(dataset.GenConfig{
			Seed: 7, Movies: movies, Actors: movies / 4, Directors: movies/100 + 1,
			CastPerMovie: 2, GenresPerMovie: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.New(db)
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} {
			b.Run(fmt.Sprintf("rows=%d/%s", movies, mode.name), func(b *testing.B) {
				if mode.workers == 0 && runtime.GOMAXPROCS(0) == 1 {
					b.Skip("GOMAXPROCS=1: the fan-out caps at one worker, so this measurement would equal the serial subbench; run on a multi-core host to record parallel speedup")
				}
				eng.SetParallelism(mode.workers)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Select(sel); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkX15MorselAggregate measures the fused vectorized aggregation over
// a single-table 100k scan: group keys and accumulators read the column
// vectors directly (flat array tier over the year domain), with the morsel
// scheduler either pinned to one worker or free to fan out. Host ns/op
// varies run to run by ~35%, so the gate (benchgate, BENCH_5.json) is on
// allocs — which also prove the morsel machinery allocates per worker, not
// per row. The parallel subbench runs even on a single core (one worker
// claims every morsel); the differential suite separately proves any worker
// count is byte-identical.
func BenchmarkX15MorselAggregate(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 29, Movies: 100000, Actors: 25000, Directors: 1001,
		CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(db)
	sel, err := sqlparser.ParseSelect(`select m.year, count(*), min(m.title), avg(m.year)
from MOVIES m where m.year >= 1955 group by m.year`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			eng.SetParallelism(mode.workers)
			defer eng.SetParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Select(sel)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}

// BenchmarkX16ZoneSkipScan measures zone-map morsel pruning on selective
// scans over a 256k-row table whose columns are sorted (id, frame-of-
// reference encoded) or clustered (grp; s under a sorted dictionary). Every
// workload runs with the zone-map layer on and off; the zones=on subbenches
// assert the skipped-morsel counter actually engaged (the smoke runs at
// -benchtime=1x, so a silently rotten skip path fails CI) and report the
// fraction of morsels skipped as skipratio. Time collapses with pruning but
// is too noisy to gate; the benchgate ceilings (BENCH_6.json) gate allocs
// everywhere and bytes on the text-range workload, where the sorted
// dictionary's rank compares replace the O(dictionary) verdict array — the
// zones=off run allocates ~66x more bytes per op.
func BenchmarkX16ZoneSkipScan(b *testing.B) {
	db := zoneScanDB(b, 1<<18)
	eng := engine.New(db)
	workloads := []struct{ name, sql string }{
		// Sorted column: FOR-encoded id, tight per-zone bounds.
		{"sorted", `select t.grp, count(*), sum(t.n) from T t
where t.id between 100000 and 103071 group by t.grp`},
		// Clustered column: grp is constant within a zone.
		{"clustered", `select t.grp, count(*), sum(t.n) from T t
where t.grp = 17 group by t.grp`},
		// Sorted dictionary: rank-range compare vs per-entry verdicts.
		{"text-range", `select count(*) from T t
where t.s >= 'u00100000' and t.s < 'u00103072'`},
	}
	for _, w := range workloads {
		sel, err := sqlparser.ParseSelect(w.sql)
		if err != nil {
			b.Fatal(err)
		}
		modes := []struct {
			name    string
			workers int
		}{{"serial", 1}}
		if w.name != "text-range" {
			modes = append(modes, struct {
				name    string
				workers int
			}{"parallel", 0})
		}
		for _, mode := range modes {
			for _, zones := range []bool{true, false} {
				label := fmt.Sprintf("%s/%s/zones=off", w.name, mode.name)
				if zones {
					label = fmt.Sprintf("%s/%s/zones=on", w.name, mode.name)
				}
				b.Run(label, func(b *testing.B) {
					eng.SetParallelism(mode.workers)
					defer eng.SetParallelism(0)
					eng.SetZoneMapsEnabled(zones)
					defer eng.SetZoneMapsEnabled(true)
					// Warm up once: the first ranked read after the load pays the
					// lazy sorted-dict rank rebuild, which would otherwise land
					// entirely in a -benchtime=1x smoke measurement.
					if _, err := eng.Select(sel); err != nil {
						b.Fatal(err)
					}
					engine.ResetZoneSkipStats()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := eng.Select(sel)
						if err != nil {
							b.Fatal(err)
						}
						if len(res.Rows) == 0 {
							b.Fatal("selective scan matched nothing")
						}
					}
					b.StopTimer()
					probed, skipped := engine.ZoneSkipStats()
					if zones {
						if skipped == 0 {
							b.Fatal("zone maps enabled but no morsel was skipped — the pruning path has rotted")
						}
						b.ReportMetric(float64(skipped)/float64(probed), "skipratio")
					} else if probed != 0 {
						b.Fatalf("zone maps disabled but %d morsels were probed", probed)
					}
				})
			}
		}
	}
}

// zoneScanDB builds the X16 table: n rows with a sorted primary key (id, so
// frame-of-reference encoding holds), a zone-clustered group (grp), a small
// payload (n) and a sorted-dictionary text column with one distinct string
// per row — the worst case for verdict-array predicates and the best for
// rank compares.
func zoneScanDB(b *testing.B, n int) *storage.Database {
	b.Helper()
	schema := catalog.NewSchema("zonescan")
	if err := schema.AddRelation(&catalog.Relation{
		Name: "T",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "grp", Type: catalog.Int, NotNull: true},
			{Name: "n", Type: catalog.Int, NotNull: true},
			{Name: "s", Type: catalog.Text, NotNull: true},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		b.Fatal(err)
	}
	db, err := storage.NewDatabase(schema)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.EnableSortedDict("T", "s"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.Insert("T", storage.Tuple{
			value.NewInt(int64(i)),
			value.NewInt(int64(i / 4096)),
			value.NewInt(int64(i % 97)),
			value.NewText(fmt.Sprintf("u%08d", i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// ---------------------------------------------------------------------------
// X17: crash recovery
// ---------------------------------------------------------------------------

// BenchmarkX17Recovery measures the two halves of boot-after-crash: replaying
// a WAL of committed statement batches into an empty database, and loading a
// checkpointed columnar segment (the post-graceful-shutdown path). The disk
// image is built once per shape and cloned per iteration, so each op is one
// full recovery of the same bytes.
func BenchmarkX17Recovery(b *testing.B) {
	const rows = 50_000
	const perBatch = 100

	build := func(b *testing.B, checkpoint bool) *wal.MemFS {
		b.Helper()
		fs := wal.NewMemFS()
		db := recoveryBenchDB(b)
		if _, err := db.EnableDurability(fs, storage.DurableOptions{CheckpointBytes: -1}); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < rows; i += perBatch {
			db.BeginBatch()
			for j := i; j < i+perBatch; j++ {
				if err := db.Insert("T", storage.Tuple{
					value.NewInt(int64(j)),
					value.NewInt(int64(j / 4096)),
					value.NewInt(int64(j % 97)),
					value.NewText(fmt.Sprintf("u%08d", j%512)),
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.CommitBatch(); err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.CloseDurability(); err != nil {
			b.Fatal(err)
		}
		return fs
	}

	for _, shape := range []struct {
		name       string
		checkpoint bool
	}{
		{"wal-replay", false},
		{"checkpoint-load", true},
	} {
		b.Run(shape.name, func(b *testing.B) {
			disk := build(b, shape.checkpoint)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db := recoveryBenchDB(b)
				report, err := db.EnableDurability(disk.Clone(), storage.DurableOptions{CheckpointBytes: -1})
				if err != nil {
					b.Fatal(err)
				}
				if report.Rows != rows || !report.Clean() {
					b.Fatalf("recovery: rows=%d clean=%v", report.Rows, report.Clean())
				}
				if shape.checkpoint && report.ReplayedBatches != 0 {
					b.Fatalf("checkpoint shape replayed %d batches", report.ReplayedBatches)
				}
				if !shape.checkpoint && report.ReplayedBatches != rows/perBatch {
					b.Fatalf("wal shape replayed %d batches", report.ReplayedBatches)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkX18SnapshotReadDuringWrite measures the reader side of MVCC
// snapshot reads. Each op is one full Ask (parse, translate, plan, execute,
// narrate) over a generated movie database through a durable System with the
// response cache disabled, so allocs/op is the whole read pipeline and stays
// deterministic.
//
//   - solo: the reader alone — the pure reader allocation baseline.
//   - vs-writer: every read races one durable INSERT commit (WAL append +
//     fsync) kicked off just before it and joined just after, so reader and
//     writer are concurrently runnable for the whole op. Readers pin a
//     snapshot and never take the writer's locks; the reads-during-commit
//     metric counts ops that completed while at least one version install
//     landed — wall-clock overlap the old reader/writer lock made impossible.
//
// Allocation gating: both shapes are gated in cmd/benchgate/ceilings.json
// (vs-writer includes the one paced insert commit per op, which is itself
// deterministic). Time is not gated, per the bench-host discipline.
func BenchmarkX18SnapshotReadDuringWrite(b *testing.B) {
	build := func(b *testing.B) *core.System {
		b.Helper()
		gen := dataset.DefaultGenConfig()
		gen.Movies = 2000
		gen.Actors = 1000
		db, err := dataset.GenerateMovieDB(gen)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.MovieConfig()
		cfg.DisableCache = true
		sys, _, err := core.NewDurable(db, wal.NewMemFS(), storage.DurableOptions{CheckpointBytes: -1}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	const readQ = `select count(*) from MOVIES m where m.year >= 1980`

	b.Run("solo", func(b *testing.B) {
		sys := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := sys.Ask(readQ)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Result == nil || len(resp.Result.Rows) != 1 {
				b.Fatal("bad read result")
			}
		}
	})

	b.Run("vs-writer", func(b *testing.B) {
		sys := build(b)
		db := sys.Database()
		reqs := make(chan int)
		acks := make(chan error)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range reqs {
				_, err := sys.Ask(fmt.Sprintf(
					"insert into ACTOR (id, name) values (%d, 'x18 writer %d')", 1_000_000+i, i%13))
				acks <- err
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		during := 0
		for i := 0; i < b.N; i++ {
			p0 := db.Published()
			reqs <- i // the commit is now in flight
			resp, err := sys.Ask(readQ)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Result == nil || len(resp.Result.Rows) != 1 {
				b.Fatal("bad read result")
			}
			overlapped := db.Published() != p0
			if err := <-acks; err != nil {
				b.Fatal(err)
			}
			if overlapped {
				during++
			}
		}
		b.StopTimer()
		close(reqs)
		wg.Wait()
		_, completed, _ := sys.ReaderStats()
		if completed < uint64(b.N) {
			b.Fatalf("reader counter undercounts: %d < %d", completed, b.N)
		}
		b.ReportMetric(float64(during)/float64(b.N)*100, "%reads-during-commit")
	})
}

// BenchmarkX19OverloadShed measures what overload costs the victims: with a
// 1-query admission limit held by a writer wedged in an injected slow fsync
// (FaultFS delays every WAL sync by 200ms), each op is one request hitting
// the full valve — instant shed, OverloadError, narrated answer. The op must
// return in microseconds even though the admitted query is stalled in disk
// I/O for five orders of magnitude longer: shedding is gated on the valve,
// never on the stalled disk. Every op asserts its latency stayed under the
// 100ms request deadline; the max observed shed latency is reported as a
// metric.
//
// Allocation gating: the shed path (context timer, valve bookkeeping, error,
// narration) is deterministic and gated in cmd/benchgate/ceilings.json. Time
// is not gated, per the bench-host discipline.
func BenchmarkX19OverloadShed(b *testing.B) {
	b.Run("instant-shed", func(b *testing.B) {
		ffs := wal.NewFaultFS(wal.NewMemFS())
		db, err := dataset.CuratedMovieDB()
		if err != nil {
			b.Fatal(err)
		}
		sys, _, err := core.NewDurable(db, ffs, storage.DurableOptions{CheckpointBytes: -1}, core.MovieConfig())
		if err != nil {
			b.Fatal(err)
		}
		ffs.DelaySyncs(200 * time.Millisecond)
		adm := core.NewAdmission(1, 0)

		// The admitted query: holds the single execution slot for the whole
		// benchmark, each of its commits wedged in the delayed fsync.
		release, err := adm.Acquire(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sys.Ask(fmt.Sprintf(
					"insert into ACTOR (id, name) values (%d, 'x19 stalled writer')", 2_000_000+i)); err != nil {
					b.Error(err)
					return
				}
			}
		}()

		const deadline = 100 * time.Millisecond
		var maxShed time.Duration
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			start := time.Now()
			rel, err := adm.Acquire(ctx)
			elapsed := time.Since(start)
			cancel()
			if err == nil {
				rel()
				b.Fatal("request admitted past a full valve")
			}
			var ov *core.OverloadError
			if !errors.As(err, &ov) {
				b.Fatalf("shed returned %v, want OverloadError", err)
			}
			if ans := querytotext.OverloadEnglish(ov.Running, ov.Waiting, ov.Limit, ov.Waited, ov.TimedOut); ans == "" {
				b.Fatal("empty shed narration")
			}
			if elapsed >= deadline {
				b.Fatalf("shed request held %v, deadline %v — shedding is gated on the stalled disk", elapsed, deadline)
			}
			if elapsed > maxShed {
				maxShed = elapsed
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		ffs.ClearFaults()
		b.ReportMetric(float64(maxShed.Nanoseconds()), "max-shed-ns")
	})
}

// recoveryBenchDB builds the empty X17 schema: the X16 shape (sorted Int PK
// so frame-of-reference encoding holds, a clustered group, a small payload,
// a 512-entry text dictionary) so the checkpoint exercises every column
// encoder the segment writer has.
func recoveryBenchDB(b *testing.B) *storage.Database {
	b.Helper()
	schema := catalog.NewSchema("recovery")
	if err := schema.AddRelation(&catalog.Relation{
		Name: "T",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "grp", Type: catalog.Int, NotNull: true},
			{Name: "n", Type: catalog.Int, NotNull: true},
			{Name: "s", Type: catalog.Text, NotNull: true},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		b.Fatal(err)
	}
	db, err := storage.NewDatabase(schema)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// ---------------------------------------------------------------------------
// X20: WAL-shipping replication
// ---------------------------------------------------------------------------

// BenchmarkX20Replication measures the replication pipeline end to end over
// loopback TCP, primary and follower in one process so allocations on both
// sides of the wire land in the same meter.
//
//   - replicated-commit: each op is one durable INSERT committed on the
//     primary and waited onto the follower — WAL append + fsync + commit-sink
//     copy on one side, frame decode + record-atomic apply + version publish +
//     ack on the other. ns/op is dominated by the convergence wait (loopback
//     latency), which is exactly the point: commits themselves never wait.
//   - follower-catchup: each op is one cold follower joining a primary with a
//     seeded checkpoint and a 1000-record log — the full re-seed + replay
//     path a rebuilt replica takes, reported as records/s.
//
// Allocation gating: both shapes move a fixed record count through a fixed
// pipeline, so allocs/op is deterministic and gated in
// cmd/benchgate/ceilings.json. Time is not gated, per the bench-host
// discipline.
func BenchmarkX20Replication(b *testing.B) {
	startPrimary := func(b *testing.B) (*storage.Database, *repl.Primary, string) {
		b.Helper()
		db, err := dataset.CuratedMovieDB()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.EnableDurability(wal.NewMemFS(), storage.DurableOptions{CheckpointBytes: -1}); err != nil {
			b.Fatal(err)
		}
		p, err := repl.NewPrimary(db, repl.PrimaryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		p.Start(ln)
		return db, p, ln.Addr().String()
	}
	startFollower := func(b *testing.B, addr string) *repl.Follower {
		b.Helper()
		fdb, err := storage.NewDatabase(dataset.MovieSchema())
		if err != nil {
			b.Fatal(err)
		}
		f, err := repl.StartFollower(fdb, repl.FollowerOptions{Addr: addr})
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	waitApplied := func(b *testing.B, f *repl.Follower, seq uint64) {
		b.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for f.Status().AppliedSeq < seq {
			if q := f.Quarantined(); q != nil {
				b.Fatalf("follower quarantined at %d: %s", q.Seq, q.Reason)
			}
			if time.Now().After(deadline) {
				b.Fatalf("follower stuck at %d, want %d", f.Status().AppliedSeq, seq)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}

	b.Run("replicated-commit", func(b *testing.B) {
		db, p, addr := startPrimary(b)
		defer func() {
			p.Close()
			if err := db.CloseDurability(); err != nil {
				b.Fatal(err)
			}
		}()
		f := startFollower(b, addr)
		defer f.Close()
		waitApplied(b, f, p.Stats().LastSeq) // baseline re-seed off the clock
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Insert("ACTOR", storage.Tuple{
				value.NewInt(int64(3_000_000 + i)), value.NewText("x20 replicated"),
			}); err != nil {
				b.Fatal(err)
			}
			waitApplied(b, f, p.Stats().LastSeq)
		}
		b.StopTimer()
		st := p.Stats()
		if st.Dropped != 0 || len(st.Followers) != 1 {
			b.Fatalf("primary stats after run: %+v", st)
		}
	})

	b.Run("follower-catchup", func(b *testing.B) {
		const records = 1000
		db, p, addr := startPrimary(b)
		defer func() {
			p.Close()
			if err := db.CloseDurability(); err != nil {
				b.Fatal(err)
			}
		}()
		for i := 0; i < records; i++ {
			if err := db.Insert("ACTOR", storage.Tuple{
				value.NewInt(int64(4_000_000 + i)), value.NewText("x20 backlog"),
			}); err != nil {
				b.Fatal(err)
			}
		}
		last := p.Stats().LastSeq
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := startFollower(b, addr)
			waitApplied(b, f, last)
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
