package talkback_test

import (
	"strings"
	"testing"
	"time"

	talkback "repro"
	"repro/internal/sqlparser"
)

// TestPublicAPIQuickstart exercises the documented entry path end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Ask(sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verification.Text != "Find movies where Brad Pitt plays." {
		t.Errorf("verification = %q", resp.Verification.Text)
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("rows = %d", len(resp.Result.Rows))
	}
}

// TestPublicAPICustomSchema builds a fresh schema/database through the
// public surface only.
func TestPublicAPICustomSchema(t *testing.T) {
	schema := talkback.NewSchema("library")
	if err := schema.AddRelation(&talkback.Relation{
		Name: "BOOKS",
		Attributes: []*talkback.Attribute{
			{Name: "id", Type: talkback.TypeInt, NotNull: true},
			{Name: "title", Type: talkback.TypeText},
			{Name: "published", Type: talkback.TypeDate},
		},
		PrimaryKey:     []string{"id"},
		HeadingAttr:    "title",
		ConceptualName: "book",
	}); err != nil {
		t.Fatal(err)
	}
	db, err := talkback.NewDatabase(schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("BOOKS", talkback.Tuple{
		talkback.Int(1), talkback.Text("Effective Go"),
		talkback.Date(time.Date(2009, 11, 10, 0, 0, 0, 0, time.UTC)),
	}); err != nil {
		t.Fatal(err)
	}
	sys, err := talkback.New(db, talkback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Ask("select b.title from BOOKS b where b.id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Answer, "Effective Go") {
		t.Errorf("answer = %q", resp.Answer)
	}
	if !strings.Contains(resp.Verification.Text, "books") {
		t.Errorf("verification = %q", resp.Verification.Text)
	}
	// Derived schema narration works without hand annotations.
	desc, err := sys.DescribeEntity("BOOKS", "id", talkback.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "Effective Go") {
		t.Errorf("entity narrative = %q", desc)
	}
}

func TestPublicVoiceSession(t *testing.T) {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	v := sys.NewVoiceSession(talkback.MovieGrammar())
	turn, err := v.Ask("who directed Match Point")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(turn.Answer, "Woody Allen") {
		t.Errorf("answer = %q", turn.Answer)
	}
}

func TestPublicProfile(t *testing.T) {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	p := talkback.NewProfile("minimalist")
	p.RelationWeight["GENRE"] = 0.1
	if err := sys.RegisterProfile(p); err != nil {
		t.Fatal(err)
	}
	if err := sys.Profile("minimalist"); err != nil {
		t.Fatal(err)
	}
}
