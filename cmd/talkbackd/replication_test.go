package main

import (
	"encoding/binary"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/leakcheck"
	"repro/internal/repl"
	"repro/internal/storage"
)

// newReplServer is newTestServer with a replication role attached, so guard's
// staleness shedding and /stats' replication section are live.
func newReplServer(t *testing.T, sys *core.System, rp *replication) *httptest.Server {
	t.Helper()
	s := &server{
		sys:         sys,
		adm:         core.NewAdmission(8, 16),
		deadline:    10 * time.Second,
		maxBody:     1 << 20,
		maxSessions: 4096,
		sessions:    make(map[string]string),
		repl:        rp,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", s.guard(s.handleAsk))
	mux.HandleFunc("GET /stats", s.handleStats)
	ts := httptest.NewServer(recoverJSON(mux))
	t.Cleanup(ts.Close)
	return ts
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicatedPairOverHTTP runs the worked example from the package docs on
// loopback: a durable seeded primary serving followers, a bare follower fed
// entirely over the wire, and HTTP traffic against both. The follower must
// serve the primary's data (baseline checkpoint plus live DML), narrate its
// role in EXPLAIN answers, refuse local writes with a narrated 403, and both
// /stats replication sections must agree on the sequence.
func TestReplicatedPairOverHTTP(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))

	sys, err := buildSystem("movie", 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := startPrimary(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Database().CloseDurability() })
	t.Cleanup(rp.close)
	pts := newReplServer(t, sys, rp)

	fsys, frp, err := buildFollower("movie", rp.addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(frp.close)
	fts := newReplServer(t, fsys, frp)

	if !waitConnected(frp.follower, 5*time.Second) {
		t.Fatalf("follower never connected: %+v", frp.follower.Status())
	}

	// DML lands on the primary and must flow to the follower.
	code, out := postAsk(t, pts, "insert into MOVIES (id, title, year) values (999, 'Shipped Over The Wire', 2026)")
	if code != http.StatusOK {
		t.Fatalf("insert on primary: %d %v", code, out)
	}
	last := rp.primary.Stats().LastSeq
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		return frp.follower.Status().AppliedSeq == last
	})

	// The seeded baseline was adopted into the primary's checkpoint with no
	// WAL records behind it; the follower can only have it via a shipped
	// checkpoint re-seed.
	if st := frp.follower.Status(); st.Reseeds == 0 || st.Catchup.CheckpointRows == 0 {
		t.Fatalf("follower never re-seeded from the primary's checkpoint: %+v", st)
	}

	code, out = postAsk(t, fts, "select m.title from MOVIES m where m.id = 999")
	if code != http.StatusOK {
		t.Fatalf("select on follower: %d %v", code, out)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "Shipped Over The Wire") {
		t.Fatalf("follower answer missing replicated row: %q", ans)
	}

	// Seeded rows converged too: both nodes count the same movies.
	_, pCount := postAsk(t, pts, "select count(*) from MOVIES m")
	_, fCount := postAsk(t, fts, "select count(*) from MOVIES m")
	if pCount["answer"] != fCount["answer"] {
		t.Fatalf("counts diverge: primary %q follower %q", pCount["answer"], fCount["answer"])
	}

	// EXPLAIN on the follower speaks in the follower's voice.
	code, out = postAsk(t, fts, "explain plan select m.title from MOVIES m where m.id = 999")
	if code != http.StatusOK {
		t.Fatalf("explain on follower: %d %v", code, out)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "Answered by a follower at snapshot @") {
		t.Fatalf("follower explain lacks the follower postscript: %q", ans)
	}

	// Local DML on the follower is a narrated role violation, not a 500.
	code, out = postAsk(t, fts, "insert into MOVIES (id, title, year) values (1000, 'Local Write', 2026)")
	if code != http.StatusForbidden {
		t.Fatalf("DML on follower: %d %v, want 403", code, out)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "read-only follower") {
		t.Fatalf("403 answer: %q", ans)
	}

	// /stats on the follower: role, sequences, session counters.
	fstats, ok := getJSON(t, fts, "/stats", http.StatusOK)["replication"].(map[string]any)
	if !ok {
		t.Fatal("follower /stats has no replication section")
	}
	if fstats["role"] != "follower" || fstats["quarantined"] != false {
		t.Fatalf("follower replication stats: %v", fstats)
	}
	if fstats["applied_seq"].(float64) != float64(last) {
		t.Fatalf("follower applied_seq = %v, want %d", fstats["applied_seq"], last)
	}
	if catchup, _ := fstats["catchup"].(string); !strings.Contains(catchup, "re-seeded") {
		t.Fatalf("follower catch-up narration: %q", catchup)
	}

	// /stats on the primary: the follower's link with its acked sequence.
	// Acks are async; poll until the link reports caught-up.
	waitUntil(t, 5*time.Second, "primary /stats ack", func() bool {
		pstats, ok := getJSON(t, pts, "/stats", http.StatusOK)["replication"].(map[string]any)
		if !ok {
			t.Fatal("primary /stats has no replication section")
		}
		if pstats["role"] != "primary" {
			t.Fatalf("primary replication stats: %v", pstats)
		}
		followers, _ := pstats["followers"].([]any)
		if len(followers) != 1 {
			return false
		}
		link := followers[0].(map[string]any)
		return link["ack_seq"].(float64) == float64(last) && link["lag"].(float64) == 0
	})
}

// TestFollowerShedsStaleReads pins the -max-lag refusal: a follower that has
// heard the primary's sequence but cannot pull records (its link stalls right
// after the welcome) must answer reads with a narrated 503, not stale data.
func TestFollowerShedsStaleReads(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))

	sys, err := buildSystem("movie", 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := startPrimary(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Database().CloseDurability() })
	t.Cleanup(rp.close)

	// The welcome frame is the first thing a follower reads: kind byte plus
	// uvarint protocol version (1), schema fingerprint, and last sequence,
	// wrapped in the 8-byte wal frame header. Stalling reads exactly there
	// lets the follower learn the primary's sequence but never a record.
	welcome := []byte{'W'}
	welcome = binary.AppendUvarint(welcome, 1)
	welcome = binary.AppendUvarint(welcome, storage.SchemaFingerprint(sys.Database()))
	welcome = binary.AppendUvarint(welcome, rp.primary.Stats().LastSeq)
	plan := repl.NoFaults()
	plan.StallReadAt = int64(8 + len(welcome))
	plan.StallFor = 30 * time.Second

	db, err := storage.NewDatabase(dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := core.New(db, core.MovieConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := repl.StartFollower(db, repl.FollowerOptions{
		Addr: rp.addr,
		Dial: func(addr string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				return nil, err
			}
			return repl.NewFaultConn(c, plan), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	frp := &replication{follower: f, addr: rp.addr, maxLag: 5}
	fts := newReplServer(t, fsys, frp)

	waitUntil(t, 5*time.Second, "follower to learn the primary's sequence", func() bool {
		st := f.Status()
		return st.Lag > frp.maxLag
	})

	code, out := postAsk(t, fts, "select count(*) from MOVIES m")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("stale read: %d %v, want 503", code, out)
	}
	ans, _ := out["answer"].(string)
	for _, want := range []string{
		"statements behind the primary",
		"Ask the primary",
		"The primary has shipped me nothing yet this session.",
	} {
		if !strings.Contains(ans, want) {
			t.Fatalf("503 answer = %q, want it to contain %q", ans, want)
		}
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "exceeds -max-lag 5") {
		t.Fatalf("503 error: %q", msg)
	}
}

// TestQuarantinedFollowerOverHTTP: a follower latched by divergence (here a
// schema mismatch) answers reads with the quarantine narration when -max-lag
// is set, and /stats carries the latched cause.
func TestQuarantinedFollowerOverHTTP(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))

	sys, err := buildSystem("emp", 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := startPrimary(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Database().CloseDurability() })
	t.Cleanup(rp.close)

	fsys, frp, err := buildFollower("movie", rp.addr, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(frp.close)
	fts := newReplServer(t, fsys, frp)

	waitUntil(t, 5*time.Second, "quarantine latch", func() bool {
		return frp.follower.Status().Quarantined
	})

	code, out := postAsk(t, fts, "select count(*) from MOVIES m")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("read on quarantined follower: %d %v, want 503", code, out)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "I stopped replicating at sequence") {
		t.Fatalf("quarantine answer: %q", ans)
	}

	fstats, ok := getJSON(t, fts, "/stats", http.StatusOK)["replication"].(map[string]any)
	if !ok {
		t.Fatal("follower /stats has no replication section")
	}
	if fstats["quarantined"] != true {
		t.Fatalf("quarantined = %v", fstats["quarantined"])
	}
	if reason, _ := fstats["quarantine_reason"].(string); !strings.Contains(reason, "schemas differ") {
		t.Fatalf("quarantine_reason = %q", reason)
	}
	if narrative, _ := fstats["narrative"].(string); !strings.Contains(narrative, "serving my last consistent snapshot") {
		t.Fatalf("narrative = %q", narrative)
	}
}
