package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
)

// overloadTestServer is newTestServer with the shaping knobs under test
// control.
func overloadTestServer(t *testing.T, sys *core.System, adm *core.Admission, maxBody int64, maxSessions int) (*server, *httptest.Server) {
	t.Helper()
	s := &server{
		sys:         sys,
		adm:         adm,
		deadline:    5 * time.Second,
		maxBody:     maxBody,
		maxSessions: maxSessions,
		sessions:    make(map[string]string),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", s.guard(s.handleAsk))
	mux.HandleFunc("POST /session", s.handleSession)
	ts := httptest.NewServer(recoverJSON(mux))
	t.Cleanup(ts.Close)
	return s, ts
}

// TestOverloadShedNarrated: with every execution slot held and no queue, a
// request is shed with 429, a Retry-After header, and a narrated answer.
func TestOverloadShedNarrated(t *testing.T) {
	sys, err := buildSystem("movie", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := overloadTestServer(t, sys, core.NewAdmission(1, 0), 1<<20, 16)

	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ask", "application/json",
		strings.NewReader(`{"sql":"select m.title from MOVIES m"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response lacks Retry-After")
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "turned this request away") {
		t.Fatalf("shed answer: %q", ans)
	}

	// Releasing the slot restores service.
	release()
	if code, out := postAsk(t, ts, "select m.title from MOVIES m where m.id = 1"); code != http.StatusOK {
		t.Fatalf("ask after release: %d %v", code, out)
	}
	st := s.adm.Stats()
	if st.Rejected != 1 || st.Admitted == 0 {
		t.Fatalf("admission counters: %+v", st)
	}
}

// TestBodyCapNarrated413: a body over -max-body is refused with 413 and a
// narrated answer, not a generic 400.
func TestBodyCapNarrated413(t *testing.T) {
	sys, err := buildSystem("movie", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := overloadTestServer(t, sys, core.NewAdmission(4, 4), 128, 16)

	big := `{"sql":"select m.title from MOVIES m where m.title = '` + strings.Repeat("x", 512) + `'"}`
	resp, err := http.Post(ts.URL+"/ask", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "I refused to read this request") {
		t.Fatalf("413 answer: %q", ans)
	}

	// A body under the cap still works.
	if code, out := postAsk(t, ts, "select m.title from MOVIES m where m.id = 1"); code != http.StatusOK {
		t.Fatalf("small ask: %d %v", code, out)
	}
}

// TestSessionRegistryBounded: the session-profile map refuses new sessions
// past -max-sessions but still accepts rebinds and unbinds.
func TestSessionRegistryBounded(t *testing.T) {
	sys, err := buildSystem("movie", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterProfile(catalog.NewProfile("expert")); err != nil {
		t.Fatal(err)
	}
	_, ts := overloadTestServer(t, sys, core.NewAdmission(4, 4), 1<<20, 1)

	post := func(session, profile string) int {
		body, _ := json.Marshal(map[string]string{"session": session, "profile": profile})
		resp, err := http.Post(ts.URL+"/session", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("s1", "expert"); code != http.StatusOK {
		t.Fatalf("first bind: %d", code)
	}
	if code := post("s2", "expert"); code != http.StatusTooManyRequests {
		t.Fatalf("bind past the bound: %d, want 429", code)
	}
	// Rebinding a known session is not growth.
	if code := post("s1", "expert"); code != http.StatusOK {
		t.Fatalf("rebind: %d", code)
	}
	// Unbind frees the slot for a new session.
	if code := post("s1", ""); code != http.StatusOK {
		t.Fatalf("unbind: %d", code)
	}
	if code := post("s2", "expert"); code != http.StatusOK {
		t.Fatalf("bind after unbind: %d", code)
	}
}
