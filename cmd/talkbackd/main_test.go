package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T, sys *core.System) *httptest.Server {
	t.Helper()
	s := &server{
		sys:         sys,
		adm:         core.NewAdmission(8, 16),
		deadline:    10 * time.Second,
		maxBody:     1 << 20,
		maxSessions: 4096,
		sessions:    make(map[string]string),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", s.guard(s.handleAsk))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /panic", func(http.ResponseWriter, *http.Request) {
		panic("deliberate test panic")
	})
	ts := httptest.NewServer(recoverJSON(mux))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return out
}

func postAsk(t *testing.T, ts *httptest.Server, sql string) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"sql": sql})
	resp, err := http.Post(ts.URL+"/ask", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestRecoverJSONMiddleware: a handler panic must come back as a JSON 500
// and leave the server answering later requests.
func TestRecoverJSONMiddleware(t *testing.T) {
	sys, err := buildSystem("movie", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, sys)
	out := getJSON(t, ts, "/panic", http.StatusInternalServerError)
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "the server is still up") {
		t.Fatalf("panic error message: %q", msg)
	}
	// The server really is still up.
	if code, resp := postAsk(t, ts, "select m.title from MOVIES m where m.id = 1"); code != http.StatusOK {
		t.Fatalf("ask after panic: %d %v", code, resp)
	}
}

// TestDurableServerRoundTrip boots a durable server on a real directory,
// applies DML over HTTP, rebuilds the server from the same directory, and
// checks recovery plus the /stats durability section.
func TestDurableServerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, err := buildSystem("movie", 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, sys)

	code, out := postAsk(t, ts, "insert into MOVIES (id, title, year) values (999, 'Durable Over HTTP', 2026)")
	if code != http.StatusOK {
		t.Fatalf("insert: %d %v", code, out)
	}
	for _, name := range []string{"wal.log", "checkpoint.seg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("durable file %s: %v", name, err)
		}
	}

	stats := getJSON(t, ts, "/stats", http.StatusOK)
	durable, ok := stats["durability"].(map[string]any)
	if !ok {
		t.Fatalf("no durability section in /stats: %v", stats)
	}
	if durable["batches"].(float64) < 1 || durable["syncs"].(float64) < 1 {
		t.Fatalf("counters: %v", durable)
	}
	recovery, ok := durable["recovery"].(map[string]any)
	if !ok {
		t.Fatalf("no recovery section: %v", durable)
	}
	if narrative, _ := recovery["narrative"].(string); !strings.Contains(narrative, "fresh durability log") {
		t.Fatalf("first-boot narrative: %q", narrative)
	}

	// Close the log as graceful shutdown would, then boot a second server
	// from the directory.
	if err := sys.Database().CloseDurability(); err != nil {
		t.Fatal(err)
	}
	sys2, err := buildSystem("movie", 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServer(t, sys2)
	code, out = postAsk(t, ts2, "select m.title from MOVIES m where m.id = 999")
	if code != http.StatusOK {
		t.Fatalf("ask after recovery: %d %v", code, out)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "Durable Over HTTP") {
		t.Fatalf("recovered answer: %q", ans)
	}
	stats2 := getJSON(t, ts2, "/stats", http.StatusOK)
	recovery2 := stats2["durability"].(map[string]any)["recovery"].(map[string]any)
	if clean, _ := recovery2["clean"].(bool); !clean {
		t.Fatalf("recovery after clean close not clean: %v", recovery2)
	}
	if narrative, _ := recovery2["narrative"].(string); !strings.Contains(narrative, "replayed") {
		t.Fatalf("recovery narrative: %q", narrative)
	}
}

// TestInMemoryStatsOmitDurability: without -data, /stats has no durability
// section.
func TestInMemoryStatsOmitDurability(t *testing.T) {
	sys, err := buildSystem("movie", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, sys)
	stats := getJSON(t, ts, "/stats", http.StatusOK)
	if _, ok := stats["durability"]; ok {
		t.Fatal("in-memory /stats reports durability")
	}
}
