// Command talkbackd serves the talk-back system to many concurrent sessions
// over HTTP — the multi-user face of the paper's vision that a DBMS should
// talk back to *every* user, not one REPL at a time.
//
// Endpoints (JSON in, JSON out):
//
//	POST /ask       {"sql": "..."}
//	                → full talk-back loop: verification, rows, narrated
//	                  answer, and empty/large-answer feedback.
//	POST /describe  {"sql": "..."}
//	                → translate without executing (query verification).
//	POST /explain   {"sql": "..."}
//	                → execute and narrate the cost-based query plan: steps,
//	                  access paths, estimated vs. actual rows, indexes used,
//	                  and optimization tips, plus an English rendering.
//	GET  /schema    → DDL plus the narrated schema description.
//	GET  /entity?rel=ACTOR&attr=NAME&value=Brad%20Pitt&session=s1
//	                → entity narrative, personalized by the session profile.
//	POST /session   {"session": "s1", "profile": "casual"}
//	                → bind a personalization profile to a session.
//	GET  /stats     → cache hit/miss counters, table cardinalities, MVCC
//	                  snapshot shape (sealed zones vs. mutable tail rows,
//	                  published versions, reader traffic), and — for durable
//	                  databases — WAL counters plus the last recovery
//	                  narrated in English.
//
// Example session:
//
//	talkbackd -addr :8080 -data ./talkback-data &
//	curl -s localhost:8080/ask -d '{"sql":"select m.title from MOVIES m, CAST c, ACTOR a where m.id = c.mid and c.aid = a.id and a.name = '\''Brad Pitt'\''"}'
//
// Flags:
//
//	-addr :8080         listen address
//	-schema movie|emp   schema to serve (default movie)
//	-scale N            N > 0 serves a generated movie DB with N movies
//	                    instead of the curated Fig. 1 database
//	-data DIR           durable mode: write-ahead log + checkpoints in DIR.
//	                    An empty DIR is seeded (curated or -scale generated)
//	                    and adopted; a DIR with existing state is recovered
//	                    (checkpoint + WAL replay) and -scale is ignored.
//	-deadline D         per-request execution deadline (default 10s)
//	-max-concurrent N   queries executing at once (default 8)
//	-queue N            admission wait-queue depth (default 16)
//	-max-body N         request body cap in bytes (default 1 MiB)
//	-max-sessions N     bound on the session-profile registry (default 4096)
//	-listen-repl ADDR   serve WAL-shipping replication to followers on ADDR
//	                    (requires -data: the log is the replication outbox)
//	-replicate-from A   run as a read-only follower of the primary at A
//	-max-lag N          follower: refuse reads with a narrated 503 once more
//	                    than N statements behind (0 = serve any staleness)
//
// # Replication & failover
//
// A durable primary ships every committed WAL record — the same CRC32C
// frames it fsyncs — to followers over TCP. Followers apply them through the
// crash-recovery replay path, publish one MVCC version per record, and serve
// the full read surface; DML gets a 403 that says to ask the primary.
// Replication is asynchronous with a bounded outbox, so a wedged follower
// never stalls a commit; followers reconnect with jittered backoff and
// resume from their applied sequence, and provable divergence (a sequence
// gap, a corrupt frame, a checkpoint behind the follower's state) latches a
// quarantine that keeps serving the last consistent snapshot while narrating
// why. A worked two-process session:
//
//	talkbackd -addr :8080 -data ./primary-data -listen-repl :9090 &
//	talkbackd -addr :8081 -replicate-from localhost:9090 -max-lag 100 &
//
//	# Writes go to the primary; the follower applies them from the log.
//	curl -s localhost:8080/ask -d '{"sql":"insert into MOVIES (id, title, year) values (999, '\''Replicated'\'', 2026)"}'
//	curl -s localhost:8081/ask -d '{"sql":"select m.title from MOVIES m where m.id = 999"}'
//
//	# The follower names its role and lag in EXPLAIN answers...
//	curl -s localhost:8081/explain -d '{"sql":"select m.title from MOVIES m"}'
//	#   → "... Answered by a follower at snapshot @78, fully caught up with
//	#      the primary."
//
//	# ...refuses writes in English...
//	curl -si localhost:8081/ask -d '{"sql":"delete from MOVIES"}'
//	#   → HTTP/1.1 403 Forbidden
//	#     "I am a read-only follower, so I cannot change data. Send writes to
//	#      the primary and they will reach me through its log."
//
//	# ...and reports the link under /stats → "replication": role, applied
//	# and primary sequences, lag, reconnects, and the catch-up narrative;
//	# the primary's side lists each follower with its acknowledged sequence.
//	curl -s localhost:8081/stats | jq .replication
//
// Failover is manual and honest about it: when the primary dies, followers
// keep answering reads at their last applied sequence (narrating how far
// behind they stand, or refusing with 503 past -max-lag) and reconnect with
// backoff until the primary returns. Promoting a follower means restarting
// it against the primary's -data directory.
//
// # Overload & cancellation
//
// Every query endpoint (/ask, /describe, /explain, /entity) runs under a
// request budget and an admission valve. The budget is the -deadline (and
// any client cancellation): execution loops poll it cooperatively at morsel
// boundaries, so a query that runs long is stopped mid-scan, its snapshot
// pin released, and the refusal narrated in English — the server talks back
// even when it says no. A cancelled DML statement either commits whole
// through the WAL or leaves no trace; it is never half-applied. The valve
// admits -max-concurrent queries with -queue more waiting: a request that
// finds both full is shed instantly with 429, one whose deadline fires while
// queued gets 504, and both carry a narrated "answer" explaining the load:
//
//	$ curl -si localhost:8080/ask -d '{"sql":"select * from MOVIES"}'
//	HTTP/1.1 429 Too Many Requests
//	Retry-After: 1
//	{
//	  "error": "server overloaded: request shed, admission queue full",
//	  "answer": "I turned this request away before running it — there are
//	             eight queries already running against a limit of 8, and the
//	             wait queue is full. Please retry in a moment."
//	}
//
// A query stopped mid-execution answers in the same voice, e.g. "I stopped
// this query after 2.0s — it ran past the request deadline — it had scanned
// 3.1 million of 12 million rows. Narrow the predicate or raise the deadline
// and ask again." GET /stats reports the valve under "admission".
//
// Durability: with -data, every DML statement is fsynced to the write-ahead
// log before /ask acknowledges it. The server shuts down gracefully on
// SIGINT/SIGTERM — in-flight requests drain, then the in-flight snapshot
// readers (queries never block on writers; they each pin an MVCC version),
// then a final checkpoint folds the log into the columnar segment so the
// next boot replays nothing.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	talkback "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/querytotext"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

// server wraps one shared System plus the per-session profile registry and
// the request-shaping knobs: the admission valve, the per-request deadline,
// and the body/session caps.
type server struct {
	sys         *core.System
	adm         *core.Admission
	deadline    time.Duration
	maxBody     int64
	maxSessions int
	// repl is the replication role (primary or follower); nil standalone.
	repl *replication

	mu       sync.RWMutex
	sessions map[string]string // session id -> profile name
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	schema := flag.String("schema", "movie", "schema: movie or emp")
	scale := flag.Int("scale", 0, "serve a generated movie DB with this many movies (0 = curated)")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory only)")
	deadline := flag.Duration("deadline", 10*time.Second, "per-request execution deadline")
	maxConcurrent := flag.Int("max-concurrent", 8, "queries executing at once before requests queue")
	queueDepth := flag.Int("queue", 16, "admission wait-queue depth before requests shed")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	maxSessions := flag.Int("max-sessions", 4096, "bound on the session-profile registry")
	listenRepl := flag.String("listen-repl", "", "serve WAL-shipping replication to followers on this address (requires -data)")
	replicateFrom := flag.String("replicate-from", "", "run as a read-only follower of the primary at this address")
	maxLag := flag.Uint64("max-lag", 0, "follower: refuse reads with 503 when more than this many statements behind (0 = serve any lag)")
	flag.Parse()

	var sys *core.System
	var rp *replication
	var err error
	switch {
	case *replicateFrom != "":
		if *dataDir != "" || *listenRepl != "" {
			log.Fatalf("-replicate-from is exclusive with -data and -listen-repl: a follower's contents are the primary's log")
		}
		sys, rp, err = buildFollower(*schema, *replicateFrom, *maxLag)
		if err != nil {
			log.Fatalf("building follower: %v", err)
		}
		if waitConnected(rp.follower, 5*time.Second) {
			log.Printf("replicating from %s", *replicateFrom)
		} else {
			log.Printf("primary %s not reachable yet; retrying with backoff", *replicateFrom)
		}
	default:
		sys, err = buildSystem(*schema, *scale, *dataDir)
		if err != nil {
			log.Fatalf("building system: %v", err)
		}
		if *listenRepl != "" {
			rp, err = startPrimary(sys, *listenRepl)
			if err != nil {
				log.Fatalf("starting replication primary: %v", err)
			}
			log.Printf("shipping the log to followers on %s", rp.addr)
		}
	}

	s := &server{
		sys:         sys,
		adm:         core.NewAdmission(*maxConcurrent, *queueDepth),
		deadline:    *deadline,
		maxBody:     *maxBody,
		maxSessions: *maxSessions,
		repl:        rp,
		sessions:    make(map[string]string),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", s.guard(s.handleAsk))
	mux.HandleFunc("POST /describe", s.guard(s.handleDescribe))
	mux.HandleFunc("POST /explain", s.guard(s.handleExplain))
	mux.HandleFunc("GET /schema", s.handleSchema)
	mux.HandleFunc("GET /entity", s.guard(s.handleEntity))
	mux.HandleFunc("POST /session", s.handleSession)
	mux.HandleFunc("GET /stats", s.handleStats)

	srv := &http.Server{
		Addr:    *addr,
		Handler: recoverJSON(mux),
		// Slow or stalled clients must not pin connections forever.
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("talkbackd serving %s schema on %s", *schema, *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("serving: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain

	log.Printf("shutting down: draining requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	// Replication closes between the HTTP drain and the reader drain: a
	// follower stops admitting records before readers are counted down, and a
	// primary detaches its commit sink and sender goroutines before the final
	// checkpoint rotates the log they read from.
	rp.close()
	// HTTP drain covers connections; this covers the snapshot readers inside
	// them. Only after every in-flight read has finished does the final
	// checkpoint run, so no query is abandoned mid-pipeline even if its
	// connection was already hijacked or timed out.
	sys.DrainReaders()
	if inFlight, completed, cancelled := sys.ReaderStats(); inFlight == 0 {
		log.Printf("snapshot readers drained (%d reads served, %d cancelled this run)", completed, cancelled)
	}
	if sys.Database().Durable() {
		if err := sys.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		} else {
			log.Printf("final checkpoint written; the log is empty")
		}
		if err := sys.Database().CloseDurability(); err != nil {
			log.Printf("closing log: %v", err)
		}
	}
	log.Printf("talkbackd stopped")
}

// buildSystem assembles the System: in-memory (seeded) without dataDir;
// durable with it — recovering existing state, or seeding then adopting an
// empty directory.
func buildSystem(schema string, scale int, dataDir string) (*core.System, error) {
	var cfg core.Config
	switch schema {
	case "movie":
		cfg = core.MovieConfig()
	case "emp":
		cfg = core.EmpConfig()
	default:
		return nil, fmt.Errorf("unknown schema %q (want movie or emp)", schema)
	}

	seed := func() (*talkback.Database, error) {
		switch {
		case schema == "emp":
			return dataset.CuratedEmpDept()
		case scale > 0:
			gen := dataset.DefaultGenConfig()
			gen.Movies = scale
			gen.Actors = scale / 2
			return dataset.GenerateMovieDB(gen)
		default:
			return dataset.CuratedMovieDB()
		}
	}

	if dataDir == "" {
		db, err := seed()
		if err != nil {
			return nil, err
		}
		return core.New(db, cfg)
	}

	fs, err := wal.NewDirFS(dataDir)
	if err != nil {
		return nil, err
	}
	var db *talkback.Database
	if storage.HasDurableState(fs) {
		// Recover: the checkpoint and log are the contents; start from the
		// bare schema and let recovery fill it.
		sch := dataset.MovieSchema()
		if schema == "emp" {
			sch = dataset.EmpDeptSchema()
		}
		db, err = storage.NewDatabase(sch)
	} else {
		db, err = seed()
	}
	if err != nil {
		return nil, err
	}
	sys, report, err := core.NewDurable(db, fs, storage.DurableOptions{}, cfg)
	if err != nil {
		return nil, err
	}
	log.Printf("durable in %s: %s", dataDir, querytotext.RecoveryEnglish(report))
	return sys, nil
}

// recoverJSON is the panic-recovery middleware: a handler panic becomes a
// JSON 500 instead of a closed connection, and the server keeps serving.
func recoverJSON(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
					panic(v)
				}
				log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				httpError(w, http.StatusInternalServerError,
					fmt.Errorf("internal error answering this request; the server is still up"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// guard wraps a query-serving handler with the request budget and the
// admission valve. The budget is the -deadline joined to the client's own
// cancellation (r.Context()); the valve sheds requests the server has no
// room for before they pin a snapshot or plan anything. Shed requests and
// queue-wait timeouts answer in English like everything else.
func (s *server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// A bounded-staleness follower sheds stale reads before admission:
		// the refusal is cheaper than a queue slot and narrated all the same.
		if s.refuseStale(w) {
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.deadline)
		defer cancel()
		release, err := s.adm.Acquire(ctx)
		if err != nil {
			var ov *core.OverloadError
			if errors.As(err, &ov) {
				s.shed(w, ov)
				return
			}
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		defer release()
		h(w, r.WithContext(ctx))
	}
}

// shed answers an admission refusal: 429 for an instant shed (queue full),
// 504 for a request whose deadline expired while queued. Both narrate the
// load in the same voice as query answers.
func (s *server) shed(w http.ResponseWriter, ov *core.OverloadError) {
	code := http.StatusTooManyRequests
	if ov.TimedOut {
		code = http.StatusGatewayTimeout
	} else {
		w.Header().Set("Retry-After", "1")
	}
	writeJSONStatus(w, code, map[string]string{
		"error":  ov.Error(),
		"answer": querytotext.OverloadEnglish(ov.Running, ov.Waiting, ov.Limit, ov.Waited, ov.TimedOut),
	})
}

// queryError answers a failed query. Budget cancellations — deadline, client
// cancel, quota, WAL stall — get their own status codes and a narrated
// answer saying how far the query got; everything else stays a plain 400.
func (s *server) queryError(w http.ResponseWriter, err error) {
	if errors.Is(err, storage.ErrReadOnlyReplica) {
		// DML on a follower: a role violation, not a malformed query — 403
		// with the refusal narrated and the fix (ask the primary) named.
		writeJSONStatus(w, http.StatusForbidden, map[string]string{
			"error":  err.Error(),
			"answer": querytotext.ReadOnlyEnglish(),
		})
		return
	}
	var ce *engine.CancelError
	if !errors.As(err, &ce) {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.adm.NoteCancelled()
	code := http.StatusGatewayTimeout
	switch ce.Cause {
	case engine.CauseRowQuota, engine.CauseMemQuota:
		code = http.StatusBadRequest
	case engine.CauseWALStall:
		code = http.StatusServiceUnavailable
	}
	writeJSONStatus(w, code, map[string]string{
		"error":  err.Error(),
		"answer": querytotext.CancelEnglish(ce),
	})
}

// askRequest is the body of POST /ask and POST /describe. Query responses
// are not profile-sensitive, so there is no session field here; sessions
// personalize the narration endpoints (GET /entity).
type askRequest struct {
	SQL string `json:"sql"`
}

// translationJSON flattens a querytotext.Translation.
type translationJSON struct {
	Text        string   `json:"text"`
	Category    string   `json:"category,omitempty"`
	Subtype     string   `json:"subtype,omitempty"`
	Declarative bool     `json:"declarative"`
	Notes       []string `json:"notes,omitempty"`
}

type askResponse struct {
	Verification *translationJSON `json:"verification,omitempty"`
	Columns      []string         `json:"columns,omitempty"`
	// Rows render SQL NULL as JSON null, distinct from the empty string.
	Rows     [][]*string `json:"rows,omitempty"`
	RowCount int         `json:"row_count"`
	Affected int         `json:"affected,omitempty"`
	Answer   string      `json:"answer"`
	Feedback string      `json:"feedback,omitempty"`
	// Plan is the fingerprint of the query plan that produced the answer
	// (cached responses report the plan that originally produced them);
	// POST /explain returns the full structured plan.
	Plan string `json:"plan,omitempty"`
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp, err := s.sys.AskContext(r.Context(), req.SQL)
	if err != nil {
		s.queryError(w, err)
		return
	}
	out := askResponse{
		Verification: translationOut(resp.Verification),
		Affected:     resp.Affected,
		Answer:       resp.Answer,
		Feedback:     resp.Feedback,
	}
	if resp.Plan != nil {
		out.Plan = resp.Plan.Fingerprint
	}
	if resp.Result != nil {
		out.Columns = resp.Result.Columns
		out.RowCount = len(resp.Result.Rows)
		out.Rows = make([][]*string, len(resp.Result.Rows))
		for i, row := range resp.Result.Rows {
			cells := make([]*string, len(row))
			for j, v := range row {
				if !v.IsNull() {
					s := v.String()
					cells[j] = &s
				}
			}
			out.Rows[i] = cells
		}
	}
	writeJSON(w, out)
}

func (s *server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	tr, err := s.sys.DescribeQuery(req.SQL)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, translationOut(tr))
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	diag, err := s.sys.ExplainPlanContext(r.Context(), req.SQL)
	if err != nil {
		s.queryError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"plan":    diag.Plan,
		"english": diag.Text,
	})
}

func (s *server) handleSchema(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{
		"name":      s.sys.Database().Schema().Name,
		"ddl":       s.sys.Database().Schema().String(),
		"narrative": s.sys.DescribeSchema(),
	})
}

func (s *server) handleEntity(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	rel, attr, raw := q.Get("rel"), q.Get("attr"), q.Get("value")
	if rel == "" || attr == "" || raw == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("rel, attr, and value are required"))
		return
	}
	relation := s.sys.Database().Schema().Relation(rel)
	if relation == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown relation %q", rel))
		return
	}
	a := relation.Attr(attr)
	if a == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown attribute %s.%s", rel, attr))
		return
	}
	v, err := value.Parse(raw, value.CatalogKind(a.Type))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	text, err := s.sys.DescribeEntityAsContext(r.Context(), s.profileOf(q.Get("session")), rel, attr, v)
	if err != nil {
		s.queryError(w, err)
		return
	}
	writeJSON(w, map[string]string{"narrative": text})
}

// sessionRequest is the body of POST /session.
type sessionRequest struct {
	Session string `json:"session"`
	Profile string `json:"profile"`
}

func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Session) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("session is required"))
		return
	}
	if req.Profile != "" && s.sys.Database().Schema().Profile(req.Profile) == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown profile %q", req.Profile))
		return
	}
	s.mu.Lock()
	if req.Profile == "" {
		delete(s.sessions, req.Session)
	} else if _, known := s.sessions[req.Session]; !known && len(s.sessions) >= s.maxSessions {
		// The registry is a per-session map fed by unauthenticated input;
		// without a bound it is an open-ended memory leak.
		s.mu.Unlock()
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("session registry is full (%d sessions); retire one before binding another", s.maxSessions))
		return
	} else {
		s.sessions[req.Session] = req.Profile
	}
	s.mu.Unlock()
	writeJSON(w, map[string]string{"session": req.Session, "profile": req.Profile})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	ss := s.sys.Database().SnapshotStats()
	inFlight, completed, cancelled := s.sys.ReaderStats()
	as := s.adm.Stats()
	out := map[string]any{
		"caches": s.sys.CacheStats(),
		"tables": s.sys.Database().Stats(),
		// The overload valve: how many queries are running/queued right now
		// and how many the server has admitted, shed, timed out in the
		// queue, or stopped mid-execution since boot.
		"admission": map[string]any{
			"limit":     as.Limit,
			"queue":     as.Queue,
			"running":   as.Running,
			"in_queue":  as.Waiting,
			"admitted":  as.Admitted,
			"rejected":  as.Rejected,
			"timed_out": as.TimedOut,
			"cancelled": as.Cancelled,
		},
		// The MVCC shape: how much data sits in immutable sealed zones vs.
		// mutable tails, which version readers are pinning, and how many
		// versions writers have published since boot.
		"snapshots": map[string]any{
			"seq":                ss.Seq,
			"published_versions": ss.Published,
			"tables":             ss.Tables,
			"sealed_zones":       ss.SealedZones,
			"tail_rows":          ss.TailRows,
			"rows":               ss.Rows,
			"readers_in_flight":  inFlight,
			"reads_completed":    completed,
			"reads_cancelled":    cancelled,
		},
	}
	if s.repl != nil {
		// The replication role: a primary reports its outbox and per-follower
		// ack sequences; a follower reports its lag, reconnects, and — when
		// latched — the narrated quarantine.
		out["replication"] = s.repl.statsJSON()
	}
	if ds, ok := s.sys.DurabilityStats(); ok {
		durable := map[string]any{
			"batches":     ds.Batches,
			"ops":         ds.Ops,
			"syncs":       ds.Syncs,
			"checkpoints": ds.Checkpoints,
			"wal_bytes":   ds.WALBytes,
			"last_seq":    ds.LastSeq,
		}
		if ds.WriteError != "" {
			// The WAL has latched failed; every write is being rejected.
			// Operators watching /stats see it without grepping logs.
			durable["write_error"] = ds.WriteError
		}
		if ds.Recovery != nil {
			durable["recovery"] = map[string]any{
				"narrative":         querytotext.RecoveryEnglish(ds.Recovery),
				"clean":             ds.Recovery.Clean(),
				"checkpoint_rows":   ds.Recovery.CheckpointRows,
				"replayed_batches":  ds.Recovery.ReplayedBatches,
				"replayed_ops":      ds.Recovery.ReplayedOps,
				"lost_batches":      ds.Recovery.LostBatches,
				"quarantined_bytes": ds.Recovery.QuarantinedBytes,
				"tail_reason":       ds.Recovery.TailReason,
				"corrupt_file":      ds.Recovery.CorruptFile,
			}
		}
		out["durability"] = durable
	}
	writeJSON(w, out)
}

func (s *server) profileOf(session string) string {
	if session == "" {
		return ""
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[session]
}

func translationOut(tr *talkback.Translation) *translationJSON {
	if tr == nil {
		return nil
	}
	return &translationJSON{
		Text:        tr.Text,
		Category:    tr.Class.Category.String(),
		Subtype:     tr.Class.Subtype.String(),
		Declarative: tr.Declarative,
		Notes:       tr.Notes,
	}
}

func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// An oversized body is a client asking too much, not a malformed
			// request: 413, narrated like every other refusal.
			writeJSONStatus(w, http.StatusRequestEntityTooLarge, map[string]string{
				"error":  err.Error(),
				"answer": querytotext.BodyLimitEnglish(tooBig.Limit),
			})
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

// writeJSONStatus is writeJSON with a non-200 status line.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
