// Command talkbackd serves the talk-back system to many concurrent sessions
// over HTTP — the multi-user face of the paper's vision that a DBMS should
// talk back to *every* user, not one REPL at a time.
//
// Endpoints (JSON in, JSON out):
//
//	POST /ask       {"sql": "..."}
//	                → full talk-back loop: verification, rows, narrated
//	                  answer, and empty/large-answer feedback.
//	POST /describe  {"sql": "..."}
//	                → translate without executing (query verification).
//	POST /explain   {"sql": "..."}
//	                → execute and narrate the cost-based query plan: steps,
//	                  access paths, estimated vs. actual rows, indexes used,
//	                  and optimization tips, plus an English rendering.
//	GET  /schema    → DDL plus the narrated schema description.
//	GET  /entity?rel=ACTOR&attr=NAME&value=Brad%20Pitt&session=s1
//	                → entity narrative, personalized by the session profile.
//	POST /session   {"session": "s1", "profile": "casual"}
//	                → bind a personalization profile to a session.
//	GET  /stats     → cache hit/miss counters and table cardinalities.
//
// Example session:
//
//	talkbackd -addr :8080 &
//	curl -s localhost:8080/ask -d '{"sql":"select m.title from MOVIES m, CAST c, ACTOR a where m.id = c.mid and c.aid = a.id and a.name = '\''Brad Pitt'\''"}'
//
// Flags:
//
//	-addr :8080         listen address
//	-schema movie|emp   schema to serve (default movie)
//	-scale N            N > 0 serves a generated movie DB with N movies
//	                    instead of the curated Fig. 1 database
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"

	talkback "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/value"
)

// server wraps one shared System plus the per-session profile registry.
type server struct {
	sys *core.System

	mu       sync.RWMutex
	sessions map[string]string // session id -> profile name
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	schema := flag.String("schema", "movie", "schema: movie or emp")
	scale := flag.Int("scale", 0, "serve a generated movie DB with this many movies (0 = curated)")
	flag.Parse()

	var sys *core.System
	var err error
	switch *schema {
	case "movie":
		if *scale > 0 {
			cfg := dataset.DefaultGenConfig()
			cfg.Movies = *scale
			cfg.Actors = *scale / 2
			var db *talkback.Database
			db, err = dataset.GenerateMovieDB(cfg)
			if err == nil {
				sys, err = core.New(db, core.MovieConfig())
			}
		} else {
			sys, err = core.NewMovieSystem()
		}
	case "emp":
		sys, err = core.NewEmpSystem()
	default:
		log.Fatalf("unknown schema %q (want movie or emp)", *schema)
	}
	if err != nil {
		log.Fatalf("building system: %v", err)
	}

	s := &server{sys: sys, sessions: make(map[string]string)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", s.handleAsk)
	mux.HandleFunc("POST /describe", s.handleDescribe)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("GET /schema", s.handleSchema)
	mux.HandleFunc("GET /entity", s.handleEntity)
	mux.HandleFunc("POST /session", s.handleSession)
	mux.HandleFunc("GET /stats", s.handleStats)

	log.Printf("talkbackd serving %s schema on %s", *schema, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// askRequest is the body of POST /ask and POST /describe. Query responses
// are not profile-sensitive, so there is no session field here; sessions
// personalize the narration endpoints (GET /entity).
type askRequest struct {
	SQL string `json:"sql"`
}

// translationJSON flattens a querytotext.Translation.
type translationJSON struct {
	Text        string   `json:"text"`
	Category    string   `json:"category,omitempty"`
	Subtype     string   `json:"subtype,omitempty"`
	Declarative bool     `json:"declarative"`
	Notes       []string `json:"notes,omitempty"`
}

type askResponse struct {
	Verification *translationJSON `json:"verification,omitempty"`
	Columns      []string         `json:"columns,omitempty"`
	// Rows render SQL NULL as JSON null, distinct from the empty string.
	Rows     [][]*string `json:"rows,omitempty"`
	RowCount int         `json:"row_count"`
	Affected int         `json:"affected,omitempty"`
	Answer   string      `json:"answer"`
	Feedback string      `json:"feedback,omitempty"`
	// Plan is the fingerprint of the query plan that produced the answer
	// (cached responses report the plan that originally produced them);
	// POST /explain returns the full structured plan.
	Plan string `json:"plan,omitempty"`
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.sys.Ask(req.SQL)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := askResponse{
		Verification: translationOut(resp.Verification),
		Affected:     resp.Affected,
		Answer:       resp.Answer,
		Feedback:     resp.Feedback,
	}
	if resp.Plan != nil {
		out.Plan = resp.Plan.Fingerprint
	}
	if resp.Result != nil {
		out.Columns = resp.Result.Columns
		out.RowCount = len(resp.Result.Rows)
		out.Rows = make([][]*string, len(resp.Result.Rows))
		for i, row := range resp.Result.Rows {
			cells := make([]*string, len(row))
			for j, v := range row {
				if !v.IsNull() {
					s := v.String()
					cells[j] = &s
				}
			}
			out.Rows[i] = cells
		}
	}
	writeJSON(w, out)
}

func (s *server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !decodeBody(w, r, &req) {
		return
	}
	tr, err := s.sys.DescribeQuery(req.SQL)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, translationOut(tr))
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !decodeBody(w, r, &req) {
		return
	}
	diag, err := s.sys.ExplainPlan(req.SQL)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{
		"plan":    diag.Plan,
		"english": diag.Text,
	})
}

func (s *server) handleSchema(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{
		"name":      s.sys.Database().Schema().Name,
		"ddl":       s.sys.Database().Schema().String(),
		"narrative": s.sys.DescribeSchema(),
	})
}

func (s *server) handleEntity(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	rel, attr, raw := q.Get("rel"), q.Get("attr"), q.Get("value")
	if rel == "" || attr == "" || raw == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("rel, attr, and value are required"))
		return
	}
	relation := s.sys.Database().Schema().Relation(rel)
	if relation == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown relation %q", rel))
		return
	}
	a := relation.Attr(attr)
	if a == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown attribute %s.%s", rel, attr))
		return
	}
	v, err := value.Parse(raw, value.CatalogKind(a.Type))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	text, err := s.sys.DescribeEntityAs(s.profileOf(q.Get("session")), rel, attr, v)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]string{"narrative": text})
}

// sessionRequest is the body of POST /session.
type sessionRequest struct {
	Session string `json:"session"`
	Profile string `json:"profile"`
}

func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Session) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("session is required"))
		return
	}
	if req.Profile != "" && s.sys.Database().Schema().Profile(req.Profile) == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown profile %q", req.Profile))
		return
	}
	s.mu.Lock()
	if req.Profile == "" {
		delete(s.sessions, req.Session)
	} else {
		s.sessions[req.Session] = req.Profile
	}
	s.mu.Unlock()
	writeJSON(w, map[string]string{"session": req.Session, "profile": req.Profile})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"caches": s.sys.CacheStats(),
		"tables": s.sys.Database().Stats(),
	})
}

func (s *server) profileOf(session string) string {
	if session == "" {
		return ""
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[session]
}

func translationOut(tr *talkback.Translation) *translationJSON {
	if tr == nil {
		return nil
	}
	return &translationJSON{
		Text:        tr.Text,
		Category:    tr.Class.Category.String(),
		Subtype:     tr.Class.Subtype.String(),
		Declarative: tr.Declarative,
		Notes:       tr.Notes,
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
