// Replication wiring for talkbackd: -listen-repl turns a durable server into
// a WAL-shipping primary; -replicate-from boots a read-only follower whose
// contents arrive over the wire. The follower serves the same query
// endpoints, narrates its lag in EXPLAIN answers, refuses DML with a 403 in
// English, and — when -max-lag is set — sheds reads with a narrated 503 once
// it falls too far behind.
package main

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/querytotext"
	"repro/internal/repl"
	"repro/internal/storage"
)

// replication is the server's replication role: exactly one of primary or
// follower is set; nil role fields mean a standalone server.
type replication struct {
	primary  *repl.Primary
	follower *repl.Follower
	addr     string // primary: listen address; follower: upstream address
	maxLag   uint64 // follower: refuse reads beyond this lag (0 = serve any)
}

// startPrimary attaches a replication primary to an already-durable system
// and serves followers on listenAddr.
func startPrimary(sys *core.System, listenAddr string) (*replication, error) {
	p, err := repl.NewPrimary(sys.Database(), repl.PrimaryOptions{})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.Start(ln)
	return &replication{primary: p, addr: ln.Addr().String()}, nil
}

// buildFollower assembles a read-only follower: a bare-schema in-memory
// database kept converged by the replication link, with the system's
// narration switched to the follower's voice.
func buildFollower(schema, primaryAddr string, maxLag uint64) (*core.System, *replication, error) {
	var cfg core.Config
	sch := dataset.MovieSchema()
	switch schema {
	case "movie":
		cfg = core.MovieConfig()
	case "emp":
		cfg = core.EmpConfig()
		sch = dataset.EmpDeptSchema()
	default:
		return nil, nil, fmt.Errorf("unknown schema %q (want movie or emp)", schema)
	}
	db, err := storage.NewDatabase(sch)
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.New(db, cfg)
	if err != nil {
		return nil, nil, err
	}
	f, err := repl.StartFollower(db, repl.FollowerOptions{Addr: primaryAddr})
	if err != nil {
		return nil, nil, err
	}
	sys.SetReplica(func() core.ReplicaStatus {
		st := f.Status()
		return core.ReplicaStatus{
			Follower:         true,
			AppliedSeq:       st.AppliedSeq,
			PrimarySeq:       st.PrimarySeq,
			Lag:              st.Lag,
			Connected:        st.Connected,
			Quarantined:      st.Quarantined,
			QuarantineSeq:    st.QuarantineSeq,
			QuarantineReason: st.QuarantineReason,
			Catchup:          st.Catchup,
		}
	})
	return sys, &replication{follower: f, addr: primaryAddr, maxLag: maxLag}, nil
}

// close tears the replication role down. For a follower this severs the link
// before the reader drain: no new records arrive mid-shutdown. For a primary
// it detaches the commit sink and drops every follower link; it runs before
// the final checkpoint so no sender is reading the log during rotation.
func (rp *replication) close() {
	if rp == nil {
		return
	}
	if rp.follower != nil {
		rp.follower.Close()
	}
	if rp.primary != nil {
		rp.primary.Close()
	}
}

// refuseStale sheds a read on a bounded-staleness follower: lag past
// -max-lag, or a latched quarantine, answers 503 in the follower's voice
// before the request pins a snapshot. Returns true when the request was
// answered here.
func (s *server) refuseStale(w http.ResponseWriter) bool {
	if s.repl == nil || s.repl.follower == nil || s.repl.maxLag == 0 {
		return false
	}
	st := s.repl.follower.Status()
	if st.Quarantined {
		w.Header().Set("Retry-After", "5")
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]string{
			"error":  "follower quarantined: " + st.QuarantineReason,
			"answer": querytotext.QuarantineEnglish(st.QuarantineSeq, st.QuarantineReason),
		})
		return true
	}
	if st.Lag > s.repl.maxLag {
		w.Header().Set("Retry-After", "1")
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]string{
			"error": fmt.Sprintf("follower lag %d exceeds -max-lag %d", st.Lag, s.repl.maxLag),
			"answer": querytotext.FollowerLagEnglish(st.Lag, s.repl.maxLag) + " " +
				querytotext.CatchupEnglish(&st.Catchup),
		})
		return true
	}
	return false
}

// statsJSON renders the /stats replication section.
func (rp *replication) statsJSON() map[string]any {
	if rp.primary != nil {
		st := rp.primary.Stats()
		followers := make([]map[string]any, 0, len(st.Followers))
		for _, f := range st.Followers {
			followers = append(followers, map[string]any{
				"addr":             f.Addr,
				"ack_seq":          f.AckSeq,
				"sent_seq":         f.SentSeq,
				"lag":              f.Lag,
				"connected_for_ms": f.ConnectedFor.Milliseconds(),
			})
		}
		return map[string]any{
			"role":          "primary",
			"listen":        rp.addr,
			"last_seq":      st.LastSeq,
			"accepted":      st.Accepted,
			"dropped":       st.Dropped,
			"outbox_frames": st.OutboxFrames,
			"outbox_bytes":  st.OutboxBytes,
			"followers":     followers,
		}
	}
	st := rp.follower.Status()
	out := map[string]any{
		"role":        "follower",
		"primary":     rp.addr,
		"applied_seq": st.AppliedSeq,
		"primary_seq": st.PrimarySeq,
		"lag":         st.Lag,
		"max_lag":     rp.maxLag,
		"connected":   st.Connected,
		"reconnects":  st.Reconnects,
		"records":     st.Records,
		"duplicates":  st.Duplicates,
		"reseeds":     st.Reseeds,
		"quarantined": st.Quarantined,
		"catchup":     querytotext.CatchupEnglish(&st.Catchup),
	}
	if st.Quarantined {
		out["quarantine_seq"] = st.QuarantineSeq
		out["quarantine_reason"] = st.QuarantineReason
		out["narrative"] = querytotext.QuarantineEnglish(st.QuarantineSeq, st.QuarantineReason)
	}
	return out
}

// waitConnected gives a freshly-booted follower a moment to reach its
// primary so the first requests are answered from real data, logging either
// way; the reconnect loop keeps trying in the background regardless.
func waitConnected(f *repl.Follower, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := f.Status()
		if st.Connected || st.Quarantined {
			return st.Connected
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}
