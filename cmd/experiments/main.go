// Command experiments regenerates every reproducible artifact of the paper
// — the seven figures (schema and query graphs) and every quoted narrative
// and query translation — and prints a report comparing the paper's text
// with this implementation's output. EXPERIMENTS.md is written from this
// report.
//
// Usage:
//
//	experiments            # full report
//	experiments -figures   # only the figure renders
//	experiments -quiet     # pass/fail summary only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	talkback "repro"
	"repro/internal/dataset"
	"repro/internal/datatotext"
	"repro/internal/nlg"
	"repro/internal/queryclassify"
	"repro/internal/querygraph"
	"repro/internal/schemagraph"
	"repro/internal/sqlparser"
)

type check struct {
	id     string
	name   string
	paper  string // the paper's text (reference)
	got    string // our output
	match  bool
	render string // optional long-form render (figures)
}

func main() {
	figuresOnly := flag.Bool("figures", false, "print only the figure renders")
	quiet := flag.Bool("quiet", false, "print only the pass/fail summary")
	flag.Parse()

	checks, err := runAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	pass := 0
	for _, c := range checks {
		if c.match {
			pass++
		}
	}
	if *quiet {
		fmt.Printf("%d/%d experiments match the paper\n", pass, len(checks))
		if pass != len(checks) {
			os.Exit(1)
		}
		return
	}
	for _, c := range checks {
		if *figuresOnly && c.render == "" {
			continue
		}
		status := "OK "
		if !c.match {
			status = "DIFF"
		}
		fmt.Printf("[%s] %-4s %s\n", status, c.id, c.name)
		if c.paper != "" {
			fmt.Printf("      paper: %s\n", c.paper)
		}
		if c.got != "" && !*figuresOnly {
			fmt.Printf("      ours:  %s\n", c.got)
		}
		if c.render != "" {
			fmt.Println(indent(c.render, "      "))
		}
	}
	fmt.Printf("\n%d/%d experiments match the paper\n", pass, len(checks))
	if pass != len(checks) {
		os.Exit(1)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

func runAll() ([]check, error) {
	var checks []check

	// F1: Fig. 1 schema graph.
	g, err := schemagraph.Build(dataset.MovieSchema())
	if err != nil {
		return nil, err
	}
	ascii := g.ASCII()
	f1ok := strings.Contains(ascii, "MOVIES(id, title, year)") &&
		strings.Contains(ascii, "DIRECTOR(id, name, bdate, blocation)") &&
		strings.Contains(ascii, "-> MOVIES via (mid)")
	checks = append(checks, check{
		id: "F1", name: "Fig. 1 movie schema graph",
		paper: "six relations; CAST/DIRECTED/GENRE join into MOVIES; DIRECTED joins DIRECTOR",
		got:   "schema graph with the same nodes and FK join edges",
		match: f1ok, render: ascii,
	})

	// F2–F7: query graphs of Q1, Q2, Q3, Q4, Q7 (+ the generic class form).
	figures := []struct {
		id, label, name string
		validate        func(qg *querygraph.Graph) bool
	}{
		{"F2", "Q1", "Fig. 2 generic parameterized class (rendered for Q1)", func(qg *querygraph.Graph) bool {
			a := qg.ASCII()
			return strings.Contains(a, "<<FROM>>") && strings.Contains(a, "<<SELECT>>") &&
				strings.Contains(a, "<<alias>>")
		}},
		{"F3", "Q1", "Fig. 3 path query graph (Q1)", func(qg *querygraph.Graph) bool {
			return len(qg.Boxes) == 3 && qg.IsPath() && qg.AllJoinsFK()
		}},
		{"F4", "Q2", "Fig. 4 subgraph query graph (Q2)", func(qg *querygraph.Graph) bool {
			return len(qg.Boxes) == 6 && qg.IsConnectedAcyclic() && !qg.IsPath()
		}},
		{"F5", "Q3", "Fig. 5 multi-instance query graph (Q3)", func(qg *querygraph.Graph) bool {
			return len(qg.MultiInstanceRelations()) == 2
		}},
		{"F6", "Q4", "Fig. 6 cyclic query graph (Q4)", func(qg *querygraph.Graph) bool {
			return qg.HasCycle() && len(qg.Boxes) == 2 && len(qg.Joins) == 2
		}},
		{"F7", "Q7", "Fig. 7 aggregate query graph with nested block NQ1 (Q7)", func(qg *querygraph.Graph) bool {
			return len(qg.Nested) == 1 && qg.Nested[0].FromHaving && qg.Nested[0].Label == "NQ1"
		}},
	}
	for _, f := range figures {
		sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[f.label])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", f.id, err)
		}
		qg, err := querygraph.Build(sel, dataset.MovieSchema())
		if err != nil {
			return nil, fmt.Errorf("%s: %v", f.id, err)
		}
		checks = append(checks, check{
			id: f.id, name: f.name,
			got:   "query graph structure matches the figure",
			match: f.validate(qg), render: qg.ASCII(),
		})
	}

	// N1/N2: the Woody Allen narratives.
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		return nil, err
	}
	compactTr, err := datatotext.NewMovieTranslator(db, datatotext.Options{Style: nlg.Compact})
	if err != nil {
		return nil, err
	}
	n1, err := compactTr.DescribeEntity("DIRECTOR", "name", talkback.Text("Woody Allen"))
	if err != nil {
		return nil, err
	}
	n1want := "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935. " +
		"As a director, Woody Allen's work includes Match Point (2005), " +
		"Melinda and Melinda (2004), and Anything Else (2003)."
	checks = append(checks, check{
		id: "N1", name: "§2.2 compact Woody Allen narrative",
		paper: n1want, got: n1, match: n1 == n1want,
	})

	procTr, err := datatotext.NewMovieTranslator(db, datatotext.Options{Style: nlg.Procedural})
	if err != nil {
		return nil, err
	}
	n2, err := procTr.DescribeEntity("DIRECTOR", "name", talkback.Text("Woody Allen"))
	if err != nil {
		return nil, err
	}
	n2ok := strings.Contains(n2, "work includes Match Point, Melinda and Melinda, Anything Else.") &&
		strings.Contains(n2, "Match Point was released in 2005.") &&
		strings.Contains(n2, "Melinda and Melinda was released in 2004.") &&
		strings.Contains(n2, "Anything Else was released in 2003.")
	checks = append(checks, check{
		id: "N2", name: "§2.2 procedural Woody Allen narrative",
		paper: "title list without years, then one release sentence per movie",
		got:   n2, match: n2ok,
	})

	// N3: common-expression factoring (born in/on).
	merged := nlg.FactorClauses([]nlg.Clause{
		{Subject: "DNAME", Predicate: "was born in BLOCATION"},
		{Subject: "DNAME", Predicate: "was born on BDATE"},
	})
	n3ok := len(merged) == 1 && merged[0].Text() == "DNAME was born in BLOCATION on BDATE"
	checks = append(checks, check{
		id: "N3", name: "§2.2 common-expression factoring",
		paper: "DNAME was born in BLOCATION on BDATE",
		got:   merged[0].Text(), match: n3ok,
	})

	// N4: split-pattern merge.
	n4 := nlg.MergeSplit("the movie M1 involves the director D1 and the actor A1",
		[]nlg.Clause{
			{Subject: "D1", Predicate: "was born in Italy", Kind: nlg.Person},
			{Subject: "A1", Predicate: "is Greek", Kind: nlg.Person},
		})
	n4want := "The movie M1 involves the director D1 who was born in Italy and the actor A1 who is Greek."
	checks = append(checks, check{
		id: "N4", name: "§2.2 split-pattern merge",
		paper: n4want, got: n4, match: n4 == n4want,
	})

	// N5: split pattern over live data (movie → director + actor).
	n5, err := compactTr.DescribeEntitySplit("MOVIES", "title", talkback.Text("Match Point"),
		[]string{"DIRECTOR", "ACTOR"})
	if err != nil {
		return nil, err
	}
	n5ok := strings.Contains(n5, "involves the director Woody Allen who was born in Brooklyn") &&
		strings.Contains(n5, "and the actor ")
	checks = append(checks, check{
		id: "N5", name: "§2.2 split pattern instantiated on database contents",
		paper: "subordinate clauses embedded after each related entity's mention",
		got:   n5, match: n5ok,
	})

	// T1–T10: query translations (paper wording; Q3 "actor" typo corrected).
	type tcase struct {
		id, label string
		elaborate bool
		want      string
	}
	tcases := []tcase{
		{"T10", "Q0", false, "Find the names of employees who make more than their managers."},
		{"T1", "Q1", true, "Find movies where Brad Pitt plays."},
		{"T2", "Q2", false, "Find the actors and titles of action movies directed by G. Loucas."},
		{"T3", "Q3", false, "Find pairs of actors who have played in the same movie."},
		{"T4", "Q4", false, "Find movies whose title is one of their roles."},
		{"T5", "Q5", true, "Find movies where Brad Pitt plays."},
		{"T6", "Q6", false, "Find movies that have all genres."},
		{"T7", "Q7", false, "Find the number of actors in movies of more than one genre."},
		{"T8", "Q8", false, "Find actors whose movies are all in the same year."},
		{"T9", "Q9", false, "Find the actors who have played in the earliest versions of movies that have been repeated."},
	}
	movieSys, err := talkback.NewMovieSystem()
	if err != nil {
		return nil, err
	}
	simpleCfg := talkback.MovieConfig()
	simpleCfg.QueryOptions.Elaborate = false
	simpleDB, err := dataset.CuratedMovieDB()
	if err != nil {
		return nil, err
	}
	movieSimple, err := talkback.New(simpleDB, simpleCfg)
	if err != nil {
		return nil, err
	}
	empSys, err := talkback.NewEmpSystem()
	if err != nil {
		return nil, err
	}
	for _, tc := range tcases {
		sys := movieSimple
		if tc.elaborate {
			sys = movieSys
		}
		if tc.label == "Q0" {
			sys = empSys
		}
		tr, err := sys.DescribeQuery(sqlparser.PaperQueries[tc.label])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", tc.id, err)
		}
		checks = append(checks, check{
			id: tc.id, name: fmt.Sprintf("%s translation (%s)", tc.label, sqlparser.PaperTranslations[tc.label]),
			paper: tc.want, got: tr.Text, match: tr.Text == tc.want,
		})
	}

	// X1: classification table.
	wantClass := map[string]queryclassify.Category{
		"Q1": queryclassify.Path, "Q2": queryclassify.Subgraph,
		"Q3": queryclassify.Graph, "Q4": queryclassify.Graph,
		"Q5": queryclassify.NonGraph, "Q6": queryclassify.NonGraph,
		"Q7": queryclassify.NonGraph,
		"Q8": queryclassify.Impossible, "Q9": queryclassify.Impossible,
	}
	classOK := true
	var classGot []string
	for _, label := range []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9"} {
		sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[label])
		if err != nil {
			return nil, err
		}
		qg, err := querygraph.Build(sel, dataset.MovieSchema())
		if err != nil {
			return nil, err
		}
		r := queryclassify.Classify(qg)
		classGot = append(classGot, fmt.Sprintf("%s=%s", label, r.Category))
		if r.Category != wantClass[label] {
			classOK = false
		}
	}
	checks = append(checks, check{
		id: "X1", name: "§3.3 query categorization",
		paper: "Q1 path; Q2 subgraph; Q3/Q4 graph; Q5–Q7 non-graph; Q8/Q9 impossible",
		got:   strings.Join(classGot, " "), match: classOK,
	})

	// X2: empty-answer feedback.
	resp, err := movieSys.Ask(`select m.title from MOVIES m, CAST c, ACTOR a
		where m.id = c.mid and c.aid = a.id and a.name = 'Nobody Unknown'`)
	if err != nil {
		return nil, err
	}
	checks = append(checks, check{
		id: "X2", name: "§3.1 empty-answer feedback",
		paper: "identify the parts of the query responsible for the failure",
		got:   resp.Feedback,
		match: strings.Contains(resp.Feedback, "Nobody Unknown"),
	})

	// X3: large-answer feedback.
	bigDB, err := dataset.GenerateMovieDB(dataset.GenConfig{Seed: 4, Movies: 150, Actors: 50, Directors: 8, CastPerMovie: 3, GenresPerMovie: 2})
	if err != nil {
		return nil, err
	}
	bigCfg := talkback.MovieConfig()
	bigCfg.LargeThreshold = 50
	bigSys, err := talkback.New(bigDB, bigCfg)
	if err != nil {
		return nil, err
	}
	bigResp, err := bigSys.Ask("select m.title, c.role from MOVIES m, CAST c where m.id = c.mid")
	if err != nil {
		return nil, err
	}
	checks = append(checks, check{
		id: "X3", name: "§3.1 large-answer feedback",
		paper: "know the reasons when a query returns very many answers",
		got:   bigResp.Feedback,
		match: strings.Contains(bigResp.Feedback, "threshold"),
	})

	// X4: budgeted summaries shrink with the budget.
	shortCfg := datatotext.Options{Style: nlg.Procedural, MaxSentences: 4, MaxTuplesPerRelation: 2}
	shortTr, err := datatotext.NewMovieTranslator(db, shortCfg)
	if err != nil {
		return nil, err
	}
	shortText, err := shortTr.DescribeDatabase("MOVIES")
	if err != nil {
		return nil, err
	}
	longTr, err := datatotext.NewMovieTranslator(db, datatotext.Options{Style: nlg.Procedural, MaxTuplesPerRelation: 5})
	if err != nil {
		return nil, err
	}
	longText, err := longTr.DescribeDatabase("MOVIES")
	if err != nil {
		return nil, err
	}
	checks = append(checks, check{
		id: "X4", name: "§2.2 size-bounded summaries",
		paper: "structural constraints limit the text to the most interesting information",
		got:   fmt.Sprintf("budgeted narrative %d chars vs unbudgeted %d chars", len(shortText), len(longText)),
		match: len(shortText) > 0 && len(shortText) < len(longText),
	})

	// X5: spoken loop.
	v := movieSys.NewVoiceSession(talkback.MovieGrammar())
	turn, err := v.Ask("which movies does Brad Pitt play in")
	if err != nil {
		return nil, err
	}
	checks = append(checks, check{
		id: "X5", name: "§2.1 spoken interaction loop (simulated ASR/TTS)",
		paper: "orally pose queries and listen to their answers",
		got: fmt.Sprintf("recognized %q → %q; %d speech events",
			turn.Utterance, turn.Verification, len(turn.Events)),
		match: len(turn.Events) > 0 && strings.Contains(turn.Answer, "Star Raiders"),
	})

	return checks, nil
}
