// Command dbdescribe narrates database contents (paper §2): whole-database
// summaries, single-entity narratives, and the schema description, over the
// curated movie database or a generated one.
//
// Usage examples:
//
//	dbdescribe -entity "Woody Allen"            # the paper's narrative
//	dbdescribe -entity "Woody Allen" -style procedural
//	dbdescribe -start MOVIES -budget 12         # budgeted database summary
//	dbdescribe -schema                          # narrate the schema itself
//	dbdescribe -scale 500 -start MOVIES         # generated database
package main

import (
	"flag"
	"fmt"
	"os"

	talkback "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nlg"
)

func main() {
	entity := flag.String("entity", "", "narrate one director by name")
	start := flag.String("start", "", "narrate the database starting from this relation")
	style := flag.String("style", "compact", "compact, procedural, or auto")
	budget := flag.Int("budget", 0, "sentence budget for database narratives (0 = unlimited)")
	scale := flag.Int("scale", 0, "generate a synthetic database with this many movies instead of the curated one")
	schema := flag.Bool("schema", false, "narrate the schema itself")
	stats := flag.Bool("stats", false, "narrate the database's size profile")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	sys, err := buildSystem(*scale, *seed, *style, *budget)
	if err != nil {
		fatal(err)
	}

	did := false
	if *schema {
		fmt.Println(sys.DescribeSchema())
		did = true
	}
	if *stats {
		fmt.Println(sys.DescribeStatistics())
		did = true
	}
	if *entity != "" {
		text, err := sys.DescribeEntity("DIRECTOR", "name", talkback.Text(*entity))
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		did = true
	}
	if *start != "" {
		text, err := sys.DescribeDatabase(*start)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		did = true
	}
	if !did {
		fmt.Fprintln(os.Stderr, "usage: dbdescribe -entity NAME | -start RELATION | -schema | -stats")
		os.Exit(2)
	}
}

func buildSystem(scale int, seed int64, style string, budget int) (*core.System, error) {
	cfg := talkback.MovieConfig()
	switch style {
	case "compact":
		cfg.DataOptions.Style = nlg.Compact
	case "procedural":
		cfg.DataOptions.Style = nlg.Procedural
	case "auto":
		cfg.DataOptions.Auto = true
	default:
		return nil, fmt.Errorf("unknown style %q", style)
	}
	cfg.DataOptions.MaxSentences = budget

	var db *talkback.Database
	var err error
	if scale > 0 {
		db, err = dataset.GenerateMovieDB(dataset.GenConfig{
			Seed: seed, Movies: scale, Actors: scale / 2, Directors: scale / 10,
			CastPerMovie: 3, GenresPerMovie: 2,
		})
	} else {
		db, err = dataset.CuratedMovieDB()
	}
	if err != nil {
		return nil, err
	}
	return talkback.New(db, cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbdescribe:", err)
	os.Exit(1)
}
