// Command benchgate turns the CI bench smoke into an allocation-regression
// gate: it parses `go test -bench -benchmem` output and fails when any gated
// benchmark's allocs/op exceeds its recorded ceiling. Ceilings live in a
// JSON file checked into the repository (cmd/benchgate/ceilings.json) with
// generous headroom over the measured numbers — the gate exists to catch
// order-of-magnitude regressions (a hash build going back to one allocation
// per row), not run-to-run noise. A gated benchmark missing from the input
// is an error too, so a rename cannot silently disable its gate.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x -benchmem ./... | tee bench.out
//	go run ./cmd/benchgate -input bench.out -ceilings cmd/benchgate/ceilings.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ceiling bounds one benchmark's allocations.
type ceiling struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func main() {
	input := flag.String("input", "", "bench output file (default stdin)")
	ceilingsPath := flag.String("ceilings", "cmd/benchgate/ceilings.json", "ceilings JSON file")
	flag.Parse()

	raw, err := os.ReadFile(*ceilingsPath)
	if err != nil {
		fatal("reading ceilings: %v", err)
	}
	var ceilings map[string]ceiling
	if err := json.Unmarshal(raw, &ceilings); err != nil {
		fatal("parsing ceilings: %v", err)
	}

	in := os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal("opening input: %v", err)
		}
		defer f.Close()
		in = f
	}

	seen := map[string]int64{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, allocs, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if _, gated := ceilings[name]; gated {
			// Sub-benchmarks can appear once per package run; keep the worst.
			if prev, dup := seen[name]; !dup || allocs > prev {
				seen[name] = allocs
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal("reading input: %v", err)
	}

	names := make([]string, 0, len(ceilings))
	for name := range ceilings {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		allocs, ok := seen[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: not found in bench output (renamed or skipped?)\n", name)
			failed = true
			continue
		}
		limit := ceilings[name].AllocsPerOp
		if allocs > limit {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %d allocs/op exceeds ceiling %d\n", name, allocs, limit)
			failed = true
		} else {
			fmt.Printf("benchgate: ok   %s: %d allocs/op (ceiling %d)\n", name, allocs, limit)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseBenchLine extracts the benchmark name (GOMAXPROCS suffix stripped)
// and its allocs/op from one `go test -bench -benchmem` output line.
func parseBenchLine(line string) (name string, allocs int64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 1; i < len(fields)-1; i++ {
		if fields[i+1] == "allocs/op" {
			n, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return "", 0, false
			}
			allocs = n
			ok = true
		}
	}
	if !ok {
		return "", 0, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	return name, allocs, true
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
