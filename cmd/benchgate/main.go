// Command benchgate turns the CI bench smoke into an allocation-regression
// gate: it parses `go test -bench -benchmem` output and fails when any gated
// benchmark's allocs/op — or, when a ceiling sets bytes_per_op, its B/op —
// exceeds its recorded ceiling. Ceilings live in a JSON file checked into
// the repository (cmd/benchgate/ceilings.json) with generous headroom over
// the measured numbers — the gate exists to catch order-of-magnitude
// regressions (a hash build going back to one allocation per row, grouped
// aggregation re-materializing every joined row), not run-to-run noise.
// Time is deliberately not gated: the bench hosts' ns/op varies ±35% run to
// run, while allocation counts and bytes are deterministic. A gated
// benchmark missing from the input is an error too, so a rename cannot
// silently disable its gate.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x -benchmem ./... | tee bench.out
//	go run ./cmd/benchgate -input bench.out -ceilings cmd/benchgate/ceilings.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ceiling bounds one benchmark's allocations and (optionally) bytes.
type ceiling struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp gates B/op when positive; zero leaves bytes ungated.
	BytesPerOp int64 `json:"bytes_per_op,omitempty"`
}

func main() {
	input := flag.String("input", "", "bench output file (default stdin)")
	ceilingsPath := flag.String("ceilings", "cmd/benchgate/ceilings.json", "ceilings JSON file")
	flag.Parse()

	raw, err := os.ReadFile(*ceilingsPath)
	if err != nil {
		fatal("reading ceilings: %v", err)
	}
	var ceilings map[string]ceiling
	if err := json.Unmarshal(raw, &ceilings); err != nil {
		fatal("parsing ceilings: %v", err)
	}

	in := os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal("opening input: %v", err)
		}
		defer f.Close()
		in = f
	}

	type measured struct {
		allocs, bytes int64
	}
	seen := map[string]measured{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, allocs, bytes, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if _, gated := ceilings[name]; gated {
			// Sub-benchmarks can appear once per package run; keep the worst.
			prev, dup := seen[name]
			if !dup || allocs > prev.allocs {
				prev.allocs = allocs
			}
			if !dup || bytes > prev.bytes {
				prev.bytes = bytes
			}
			seen[name] = prev
		}
	}
	if err := sc.Err(); err != nil {
		fatal("reading input: %v", err)
	}

	names := make([]string, 0, len(ceilings))
	for name := range ceilings {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		got, ok := seen[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: not found in bench output (renamed or skipped?)\n", name)
			failed = true
			continue
		}
		c := ceilings[name]
		if got.allocs > c.AllocsPerOp {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %d allocs/op exceeds ceiling %d\n", name, got.allocs, c.AllocsPerOp)
			failed = true
		} else {
			fmt.Printf("benchgate: ok   %s: %d allocs/op (ceiling %d)\n", name, got.allocs, c.AllocsPerOp)
		}
		if c.BytesPerOp > 0 {
			if got.bytes > c.BytesPerOp {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %d bytes/op exceeds ceiling %d\n", name, got.bytes, c.BytesPerOp)
				failed = true
			} else {
				fmt.Printf("benchgate: ok   %s: %d bytes/op (ceiling %d)\n", name, got.bytes, c.BytesPerOp)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseBenchLine extracts the benchmark name (GOMAXPROCS suffix stripped)
// and its allocs/op and B/op from one `go test -bench -benchmem` output line.
func parseBenchLine(line string) (name string, allocs, bytes int64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, 0, false
	}
	for i := 1; i < len(fields)-1; i++ {
		n, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "allocs/op":
			allocs = n
			ok = true
		case "B/op":
			bytes = n
		}
	}
	if !ok {
		return "", 0, 0, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	return name, allocs, bytes, true
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
