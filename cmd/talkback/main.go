// Command talkback translates SQL into natural language against the
// paper's example schemas and optionally executes it.
//
// Usage:
//
//	talkback [flags] "select m.title from MOVIES m ..."
//	echo "select ..." | talkback [flags]
//
// Flags:
//
//	-schema movie|emp   target schema (default movie)
//	-simple             disable elaborate phrasing
//	-classify           print the difficulty classification
//	-graph              print the ASCII query graph (Figs. 3–7 style)
//	-dot                print the Graphviz query graph
//	-run                execute and narrate the answer with feedback
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	talkback "repro"
	"repro/internal/core"
)

func main() {
	schema := flag.String("schema", "movie", "schema: movie or emp")
	simple := flag.Bool("simple", false, "disable elaborate phrasing")
	classify := flag.Bool("classify", false, "print the difficulty classification")
	graph := flag.Bool("graph", false, "print the ASCII query graph")
	dot := flag.Bool("dot", false, "print the Graphviz query graph")
	run := flag.Bool("run", false, "execute the query and narrate the answer")
	flag.Parse()

	sql := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(sql) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sql = string(data)
	}
	if strings.TrimSpace(sql) == "" {
		fmt.Fprintln(os.Stderr, "usage: talkback [flags] <sql>  (or pipe SQL on stdin)")
		os.Exit(2)
	}

	sys, err := buildSystem(*schema, *simple)
	if err != nil {
		fatal(err)
	}

	tr, err := sys.DescribeQuery(sql)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Translation: %s\n", tr.Text)
	if *classify {
		fmt.Printf("Category:    %s", tr.Class.Category)
		if tr.Class.Subtype.String() != "none" {
			fmt.Printf(" (%s)", tr.Class.Subtype)
		}
		fmt.Println()
		for _, e := range tr.Class.Evidence {
			fmt.Printf("Evidence:    %s\n", e)
		}
		for _, n := range tr.Notes {
			fmt.Printf("Note:        %s\n", n)
		}
		style := "declarative"
		if !tr.Declarative {
			style = "procedural"
		}
		fmt.Printf("Style:       %s\n", style)
	}
	if *graph || *dot {
		g, err := sys.QueryGraph(sql)
		if err != nil {
			fatal(err)
		}
		if *graph {
			fmt.Println()
			fmt.Print(g.ASCII())
		}
		if *dot {
			fmt.Println()
			fmt.Print(g.DOT())
		}
	}
	if *run {
		resp, err := sys.Ask(sql)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if resp.Result != nil {
			fmt.Print(resp.Result.String())
		}
		fmt.Printf("Answer:   %s\n", resp.Answer)
		if resp.Feedback != "" {
			fmt.Printf("Feedback: %s\n", resp.Feedback)
		}
	}
}

func buildSystem(schema string, simple bool) (*core.System, error) {
	switch schema {
	case "movie":
		if simple {
			cfg := talkback.MovieConfig()
			cfg.QueryOptions.Elaborate = false
			db, err := movieDB()
			if err != nil {
				return nil, err
			}
			return talkback.New(db, cfg)
		}
		return talkback.NewMovieSystem()
	case "emp":
		return talkback.NewEmpSystem()
	default:
		return nil, fmt.Errorf("unknown schema %q (want movie or emp)", schema)
	}
}

func movieDB() (*talkback.Database, error) {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		return nil, err
	}
	return sys.Database(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "talkback:", err)
	os.Exit(1)
}
