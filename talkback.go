// Package talkback is the public API of the reproduction of "DBMSs Should
// Talk Back Too" (Ioannidis & Simitsis, CIDR 2009): a database system that
// translates its own contents and the queries posed to it into natural
// language.
//
// The package re-exports the assembled system from internal/core plus the
// handful of types a caller needs to configure it. A minimal session:
//
//	sys, err := talkback.NewMovieSystem()
//	if err != nil { ... }
//	resp, err := sys.Ask("select m.title from MOVIES m, CAST c, ACTOR a " +
//	    "where m.id = c.mid and c.aid = a.id and a.name = 'Brad Pitt'")
//	fmt.Println(resp.Verification.Text) // "Find movies where Brad Pitt plays."
//	fmt.Println(resp.Answer)            // narrated answer
//
// The main entry points:
//
//   - NewMovieSystem / NewEmpSystem build Systems over the paper's two
//     example schemas with their annotation sets installed.
//   - New builds a System over any catalog schema + database.
//   - System.DescribeQuery translates SQL to English without executing it.
//   - System.Ask runs the full loop: verify, execute, narrate, and attach
//     empty/large-answer feedback.
//   - System.DescribeEntity / DescribeDatabase / DescribeSchema narrate
//     contents (§2 of the paper).
//   - System.NewVoiceSession wires the simulated spoken loop (§2.1).
//   - System.ExplainPlan (and the `EXPLAIN PLAN <select>` statement through
//     Ask) executes a query and narrates its cost-based plan in English.
//
// # Storage layout
//
// internal/storage is columnar: a table holds one typed vector per
// attribute — []int64 for INT, []float64 for FLOAT, dictionary-encoded TEXT
// as []uint32 codes into a per-column string dictionary, DATE as epoch-day
// []int64, []bool for BOOL — each with a packed null bitmap. The row-shaped
// API (Tuple, Tuples, Scan, LookupPK, LookupIndex, CSV import/export) is a
// compatibility surface that materializes tuples on demand and caches the
// materialized view until the next write, so row-oriented consumers (the
// naive pipeline, the data-to-text translators) are unaffected. The planned
// pipeline reads the vectors directly: arena rows fill via CopyRow, simple
// filters vectorize into typed comparisons on the column payloads (text
// equality compares dictionary codes; LIKE and text ordering precompute one
// verdict per dictionary entry), and a fully vectorized single-table scan
// projects its result straight from the columns without materializing any
// intermediate row. Values themselves are small — value.Value is 40 bytes,
// storing dates as epoch days and booleans in the integer payload — and the
// composite-key encoding every hash structure is built on is byte-for-byte
// stable across the layout change.
//
// Every column additionally keeps a zone map: per 4096-row range (the same
// morsel unit the parallel scan claims), the null count, typed min/max
// bounds, a sortedness flag, and NaN presence for floats — extended
// incrementally on insert, rebuilt from the first disturbed row on delete
// and update. Two lightweight encodings ride on the same maintenance pass:
// Int/Date columns whose per-zone spans fit a byte carry frame-of-reference
// deltas (a per-zone base plus one uint8 per row, so range predicates stream
// an eighth of the bytes), and a text column opted in via EnableSortedDict
// keeps its dictionary's code<->rank tables in string sort order, turning
// text ordering and LIKE-prefix predicates into integer rank-range compares
// instead of per-dictionary-entry verdict loops. Ranks rebuild lazily on the
// first ranked read after the vocabulary changes, never per statement, so
// bulk loads stay linear.
//
// # The query planner
//
// Every SELECT is planned before execution (internal/planner): per-table
// statistics — row counts, per-attribute distinct counts, min/max, kept on
// the column vectors and maintained incrementally by the storage layer on
// every insert, delete, and update — drive selectivity estimates, greedy
// join reordering by
// estimated output cardinality, and per-step access-path choice between a
// full scan, a primary-key probe, a secondary-index probe, a hash join, a
// primary-key join, and an index-nested-loop join. Plans execute over flat
// slot-addressed rows: every column reference resolves to a slot at plan
// time, so the join inner loop does no map lookups, string comparisons, or
// per-row environment copies (a ~28,000x allocation reduction on the 100k-row
// join benchmark; see BENCH_2.json). The pipeline extends past the join:
// ORDER BY sort keys compile to slot readers, a bounded top-K heap stands in
// for the full sort when ORDER BY and LIMIT are both present, and a bare
// LIMIT stops the projection loop early. The planned pipeline emits rows in
// exactly the order the naive nested-loop pipeline would, so plans are
// observable only through speed — a property the differential test suite
// pins. Queries outside the planner's dialect (outer joins, views, ambiguous
// unqualified columns) fall back to the environment-based pipeline, and the
// plan says so.
//
// Grouped queries aggregate in one of three tiers. The fastest is the fused
// vectorized pipeline (the planner's vec-aggregate shape step): when every
// group key and aggregate argument is a plain column and every filter
// vectorizes, scan, joins, and accumulation run as a single push-based loop
// over table positions — group keys and COUNT/SUM/AVG/MIN/MAX (+ DISTINCT
// via per-group bitsets over the argument's code domain) read the column
// vectors directly into unboxed typed accumulator arrays, and no joined row
// is ever materialized. Rows map to groups through a flat array indexed by
// the composed key code when statistics bound the combined key domain
// (dictionary sizes × min-max spans), and through a hash table over packed
// fixed-width key bytes otherwise. The base scan is morsel-driven when every
// accumulator provably merges without rounding (integer sums are
// associative; AVG qualifies when statistics bound every intermediate float
// sum under 2^53): workers claim fixed-size position ranges from an atomic
// cursor and the merge restores first-seen group order by (morsel, sequence)
// stamps, so any worker count is byte-identical to serial execution — the
// planner's parallel-scan shape step records the choice. Grouped queries
// outside that dialect use the streaming aggregation pass (group keys and
// accumulators compiled to slot readers over arena rows; HAVING is a
// compiled post-filter), and grouped expressions needing subquery evaluation
// take the environment path just for the grouping stage.
//
// Selective scans prune whole morsels before touching payloads: when a
// multi-morsel full scan carries selective vectorizable filters, the planner
// plants a zone-skip shape step and the engine compiles each filter to a
// probe over the column zone maps. Every scan site — the vectorized
// single-table scan, the general gather loop, and the fused aggregation's
// serial and parallel morsel loops — skips a 4096-row morsel whose min/max
// bounds disprove the filters, and count-style passes short-circuit morsels
// the bounds prove entirely matching. Probes stay conservative around the
// dialect's edges (NULL-laden zones never claim all-true, NaN-bearing float
// zones refuse range verdicts because NaN = x is true here, LIKE prefixes
// prune only when byte order and rune matching provably agree), so zones on
// versus off is byte-identical — a differential suite pins it. EXPLAIN PLAN
// narrates the outcome: "the scan consulted zone maps over 64 morsels of
// 4096 rows and skipped 62 of 64 morsels whose min/max bounds disproved the
// filters without touching their payloads." Engine.SetZoneMapsEnabled(false)
// reverts the whole layer — pruning, frame-of-reference reads, rank
// compares — for A/B comparison.
//
// The paper's §3.1 asks the DBMS to explain *why* a query is expensive;
// `EXPLAIN PLAN`, System.ExplainPlan, and the talkbackd /explain endpoint
// answer with the plan's steps, estimated versus actual row counts, the
// indexes used, and optimization tips ("an index on CAST(role) would turn
// the full scan of two hundred thousand rows into a probe"), all rendered
// in English by the query translator. Post-join shaping — aggregation
// (with group counts estimated from distinct statistics), sorting, top-K,
// limiting — shows up as its own `EXPLAIN PLAN` rows and narration
// sentences. Every Ask response also records the fingerprint of the plan
// that produced it — including responses served from the cache.
//
// # Concurrency guarantees — MVCC snapshot reads
//
// A System is safe for concurrent use by many sessions, and reads never
// wait on writers. The storage layer is multi-versioned: each table is an
// immutable prefix of sealed 4096-row zones plus one mutable boundary
// zone, and every commit freezes the tables it touched into a new
// immutable version — column views share the sealed prefix, the boundary
// state is privately copied, and in-place mutations of frozen rows
// copy-on-write first — installed with a single atomic pointer store (on
// a durable database, only after the WAL fsync, so a version always names
// an acknowledged durable prefix of the log). Every read operation — Ask
// with SELECT or EXPLAIN statements, DescribeQuery, QueryGraph,
// DescribeEntity, DescribeDatabase, DescribeSchema, DescribeStatistics —
// pins the published version on entry and runs its whole pipeline
// (planning with snapshot-local statistics, vectorized execution,
// narration, empty/large-answer diagnosis) against those frozen tables
// without taking any lock, so a long DML batch or a running checkpoint
// cannot block it and can never change what it sees mid-query. EXPLAIN
// narrates the fact: "Answered from snapshot @41 while two writers
// committed without blocking this read."
//
// Schema metadata and translators are immutable after construction, the
// engine's view registry and the profile registry are lock-protected, and
// System.Profile swaps in a personalized translator clone instead of
// mutating the shared one (use DescribeEntityAs / DescribeDatabaseAs for
// per-session personalization). Repeated SELECTs are answered from
// sharded LRU caches keyed on normalized SQL; cached Translations, query
// graphs, and Responses are shared across sessions and must be treated as
// read-only. The response cache key carries the snapshot sequence —
// sequences only grow, so an answer recorded under one version is
// unreachable under any other — plus a generation stamp for writes that
// bypass Ask (direct engine or storage calls), which must be followed by
// System.InvalidateResults. DML submitted through Ask is serialized
// against other System DML by an internal writer lock; it does not
// exclude readers. System.DrainReaders waits out in-flight snapshot reads
// (talkbackd calls it between the HTTP drain and the final checkpoint).
// Large joins and scans fan out across GOMAXPROCS workers with
// deterministic output order; Engine.SetParallelism caps or disables the
// fan-out.
//
// # Durability
//
// A System is in-memory by default. core.NewDurable (or
// storage.Database.EnableDurability) attaches a write-ahead log: every
// DML statement batch is CRC32C-framed, appended to wal.log, and fsynced
// before Ask acknowledges it, so a crash loses at most statements whose
// Ask call never returned. A failed append or fsync latches the layer:
// every later write is rejected with storage.ErrWALFailed until a restart
// re-runs recovery, so no statement is ever acknowledged past a torn
// frame. Checkpoints serialize every table's typed
// column vectors to checkpoint.seg (tmp+rename with a directory fsync
// before the log truncates, so the swap survives power loss);
// they run automatically past a log-size threshold, on talkbackd's
// graceful shutdown, and on demand via System.Checkpoint. Recovery loads
// the checkpoint and replays the WAL tail through the same code paths as
// live execution — zone maps, statistics, dictionaries, and indexes are
// rebuilt, and recovered state is bit-identical to never-crashed state. A
// damaged log never fails recovery: the longest valid committed prefix is
// salvaged, the damaged suffix is set aside in wal.corrupt, and the
// outcome is narrated in English ("I replayed 14202 of the 14207
// statements in the log; the last five were torn by the crash"). Render
// the report with querytotext.RecoveryEnglish; inspect the counters with
// System.DurabilityStats.
//
// # Overload & cancellation
//
// Every request carries a budget: core.System.AskContext (and the
// Context variants of ExplainPlan and the describes) derives one from
// the caller's context deadline plus the Config.MaxRowsScanned /
// MaxBytesScanned quotas, and every execution loop polls it — parallel
// scan morsels, the fused vectorized aggregate, row pipelines, and DML.
// A tripped budget returns a *engine.CancelError that names the cause
// (deadline, cancellation, row quota, memory quota, wal-stall) and how
// far the query got; querytotext.CancelEnglish renders it as a
// first-person refusal. Cancellation is loss-free: a cancelled SELECT
// returns the exact full answer or a refusal — never a partial row set
// — and a cancelled DML either commits whole through the WAL or leaves
// storage byte-identical to never having run. Cancelled readers release
// their snapshot pins, so DrainReaders never waits on an abandoned
// request. WAL fsyncs get a grace window (DurableOptions.SyncGrace)
// past the request deadline: a sync inside it commits normally even
// though the client is gone; one that outlives deadline + grace returns
// a narrated wal-stall refusal in bounded time and latches the log
// against further writes. core.Admission is the serving-layer valve —
// a bounded semaphore plus a short wait queue whose shed and timeout
// outcomes querytotext.OverloadEnglish narrates; talkbackd wraps every
// query endpoint in it (429/504 with a narrated answer, 413 for
// oversized bodies, a bounded session registry).
//
// # Replication & failover
//
// internal/repl ships the WAL: a primary (repl.NewPrimary on a durable
// database) streams every committed record — the exact CRC32C frames the
// log fsyncs — to followers over TCP, and a follower (repl.StartFollower
// on a bare in-memory database) applies them through the crash-recovery
// replay path, publishing one MVCC version per record. The WAL is the
// outbox: a bounded in-memory ring covers the live tail and a follower
// that falls off it is re-fed from the checkpoint segment plus the log,
// so shipping is asynchronous and a wedged follower never stalls a
// commit. Links heartbeat, reconnect with jittered backoff, and resume
// from the follower's applied sequence; provable divergence (a sequence
// gap, a corrupt frame, a stale checkpoint, a schema mismatch) latches a
// quarantine that keeps serving the last consistent snapshot while
// narrating why. A follower's answers speak in its own voice — "Answered
// by a follower at snapshot @78, three statements behind the primary." —
// local DML is refused with storage.ErrReadOnlyReplica (narrated by
// querytotext.ReadOnlyEnglish), and core.System.SetReplica registers the
// status provider that switches the narration. talkbackd exposes the
// whole thing as -listen-repl / -replicate-from / -max-lag.
package talkback

import (
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datatotext"
	"repro/internal/engine"
	"repro/internal/querytotext"
	"repro/internal/speech"
	"repro/internal/storage"
	"repro/internal/value"
)

// System is a database that talks back. See internal/core for the full
// method set: Ask, DescribeQuery, DescribeEntity, DescribeDatabase,
// DescribeSchema, QueryGraph, NewVoiceSession, Profile.
type System = core.System

// Config customizes a System built with New.
type Config = core.Config

// Response is a full talk-back interaction (verification + result +
// narrated answer + feedback).
type Response = core.Response

// VoiceSession is a simulated spoken session.
type VoiceSession = core.VoiceSession

// VoiceTurn is one spoken interaction.
type VoiceTurn = core.VoiceTurn

// Translation is a natural-language rendering of a statement with its
// difficulty classification.
type Translation = querytotext.Translation

// Result is a query answer (columns + rows).
type Result = engine.Result

// Schema describes relations and their translation annotations.
type Schema = catalog.Schema

// Relation is one relation's metadata.
type Relation = catalog.Relation

// Attribute is one attribute's metadata.
type Attribute = catalog.Attribute

// AttrType is the domain of an attribute.
type AttrType = catalog.Type

// Attribute type constants.
const (
	TypeInt   = catalog.Int
	TypeFloat = catalog.Float
	TypeText  = catalog.Text
	TypeDate  = catalog.Date
	TypeBool  = catalog.Bool
)

// Profile is a personalization overlay (per-user heading attributes and
// weights).
type Profile = catalog.Profile

// Database is the in-memory store behind a System.
type Database = storage.Database

// Tuple is one stored row.
type Tuple = storage.Tuple

// Value is one typed datum.
type Value = value.Value

// Pattern is one spoken-grammar rule for voice sessions.
type Pattern = speech.Pattern

// Relationship annotates a content-translation relationship between two
// relations (possibly through a bridge).
type Relationship = datatotext.Relationship

// New assembles a System over db. See core.New.
func New(db *Database, cfg Config) (*System, error) { return core.New(db, cfg) }

// NewMovieSystem builds a System over the paper's curated Fig. 1 movie
// database with its annotation sets installed.
func NewMovieSystem() (*System, error) { return core.NewMovieSystem() }

// NewEmpSystem builds a System over the §3.1 EMP/DEPT example database.
func NewEmpSystem() (*System, error) { return core.NewEmpSystem() }

// MovieConfig is the standard configuration for movie-schema databases.
func MovieConfig() Config { return core.MovieConfig() }

// MovieGrammar is the demo spoken grammar over the movie schema.
func MovieGrammar() []Pattern { return speech.MovieGrammar() }

// NewSchema creates an empty schema.
func NewSchema(name string) *Schema { return catalog.NewSchema(name) }

// NewDatabase creates empty tables for every relation of schema.
func NewDatabase(schema *Schema) (*Database, error) { return storage.NewDatabase(schema) }

// NewProfile creates an empty personalization profile.
func NewProfile(name string) *Profile { return catalog.NewProfile(name) }

// Scalar constructors for loading data through the public API.
var (
	// Int wraps an integer value.
	Int = value.NewInt
	// Float wraps a floating-point value.
	Float = value.NewFloat
	// Text wraps a string value.
	Text = value.NewText
	// Date wraps a date value.
	Date = value.NewDate
	// Bool wraps a boolean value.
	Bool = value.NewBool
	// Null is the NULL value constructor.
	Null = value.NewNull
)
