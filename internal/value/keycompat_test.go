package value

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"time"
	"unsafe"
)

// TestAppendKeyEncodingCompat pins the AppendKey byte encoding against
// independently constructed golden bytes. The encoding is load-bearing far
// beyond this package — primary-key maps, secondary-index buckets, statistics
// count-maps, grouping and DISTINCT keys are all built from it — so shrinking
// the Value struct (dates to epoch days, bool into the int payload) must not
// move a single byte.
func TestAppendKeyEncodingCompat(t *testing.T) {
	floatKey := func(f float64) []byte {
		var b [9]byte
		b[0] = 'f'
		binary.BigEndian.PutUint64(b[1:], math.Float64bits(f))
		return b[:]
	}
	dateKey := func(y int, m time.Month, d int) []byte {
		var b [9]byte
		b[0] = 'd'
		binary.BigEndian.PutUint64(b[1:], uint64(time.Date(y, m, d, 0, 0, 0, 0, time.UTC).Unix()))
		return b[:]
	}
	textKey := func(s string) []byte {
		b := []byte{'t'}
		b = binary.AppendUvarint(b, uint64(len(s)))
		return append(b, s...)
	}
	cases := []struct {
		name string
		v    Value
		want []byte
	}{
		{"null", NewNull(), []byte{'n'}},
		{"int", NewInt(7), floatKey(7)},
		{"int-neg", NewInt(-1), floatKey(-1)},
		{"float", NewFloat(2.5), floatKey(2.5)},
		{"float-int-alias", NewFloat(7), floatKey(7)}, // 7 and 7.0 share a key
		{"neg-zero", NewFloat(math.Copysign(0, -1)), floatKey(0)},
		{"text", NewText("abc"), textKey("abc")},
		{"text-empty", NewText(""), textKey("")},
		{"date-post-epoch", NewDate(time.Date(2005, 1, 2, 0, 0, 0, 0, time.UTC)), dateKey(2005, 1, 2)},
		{"date-pre-epoch", NewDate(time.Date(1935, 12, 1, 0, 0, 0, 0, time.UTC)), dateKey(1935, 12, 1)},
		{"date-epoch", NewDate(time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)), dateKey(1970, 1, 1)},
		{"bool-true", NewBool(true), []byte{'B'}},
		{"bool-false", NewBool(false), []byte{'b'}},
	}
	for _, c := range cases {
		if got := c.v.AppendKey(nil); !bytes.Equal(got, c.want) {
			t.Errorf("%s: AppendKey = %x, want %x", c.name, got, c.want)
		}
	}
}

// TestValueStructSize pins the shrunken layout: kind + int64 payload +
// float64 + string header = 40 bytes, with no time.Time or bool field.
func TestValueStructSize(t *testing.T) {
	if s := unsafe.Sizeof(Value{}); s > 40 {
		t.Errorf("Value is %d bytes, want <= 40", s)
	}
}

// TestDateEpochDayRoundTrip checks the epoch-day representation across the
// 1970 boundary: construction from time.Time, reconstruction via Date(), and
// the NewDateDays fast path all agree.
func TestDateEpochDayRoundTrip(t *testing.T) {
	dates := []time.Time{
		time.Date(1893, 3, 15, 0, 0, 0, 0, time.UTC),
		time.Date(1935, 12, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1969, 12, 31, 0, 0, 0, 0, time.UTC),
		time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2005, 1, 2, 0, 0, 0, 0, time.UTC),
	}
	for _, d := range dates {
		v := NewDate(d)
		if !v.Date().Equal(d) {
			t.Errorf("Date() round trip: got %v, want %v", v.Date(), d)
		}
		again := NewDateDays(v.DateDays())
		if !again.Equal(v) {
			t.Errorf("NewDateDays(%d) != NewDate(%v)", v.DateDays(), d)
		}
		if got := NewDate(d.Add(5 * time.Hour)); !got.Equal(v) {
			t.Errorf("time-of-day not truncated for %v", d)
		}
	}
}
