package value

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/catalog"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != Null {
		t.Error("zero Value must be NULL")
	}
}

func TestAccessors(t *testing.T) {
	if NewInt(7).Int() != 7 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Int as Float")
	}
	if NewText("x").Text() != "x" {
		t.Error("Text accessor")
	}
	if !NewBool(true).Bool() {
		t.Error("Bool accessor")
	}
	d := time.Date(2005, 3, 4, 13, 30, 0, 0, time.UTC)
	got := NewDate(d).Date()
	if got.Hour() != 0 || got.Day() != 4 {
		t.Errorf("Date truncation: %v", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int() on TEXT should panic")
		}
	}()
	NewText("x").Int()
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewNull(), "NULL"},
		{NewInt(-4), "-4"},
		{NewFloat(1.5), "1.5"},
		{NewText("Brad Pitt"), "Brad Pitt"},
		{NewBool(false), "false"},
		{NewDate(time.Date(1935, 12, 1, 0, 0, 0, 0, time.UTC)), "1935-12-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestSQL(t *testing.T) {
	if got := NewText("O'Brien").SQL(); got != "'O''Brien'" {
		t.Errorf("SQL text escaping = %q", got)
	}
	if got := NewInt(5).SQL(); got != "5" {
		t.Errorf("SQL int = %q", got)
	}
	if got := NewBool(true).SQL(); got != "TRUE" {
		t.Errorf("SQL bool = %q", got)
	}
	if got := NewDate(time.Date(2005, 1, 2, 0, 0, 0, 0, time.UTC)).SQL(); got != "DATE '2005-01-02'" {
		t.Errorf("SQL date = %q", got)
	}
}

func TestProse(t *testing.T) {
	d := NewDate(time.Date(1935, 12, 1, 0, 0, 0, 0, time.UTC))
	if got := d.Prose(); got != "December 1, 1935" {
		t.Errorf("Prose date = %q", got)
	}
	if got := NewText("hi").Prose(); got != "hi" {
		t.Errorf("Prose text = %q", got)
	}
}

func TestEqual(t *testing.T) {
	if !NewInt(1).Equal(NewFloat(1.0)) {
		t.Error("1 should equal 1.0")
	}
	if NewInt(1).Equal(NewText("1")) {
		t.Error("1 should not equal '1'")
	}
	if !NewNull().Equal(NewNull()) {
		t.Error("strict NULL equality")
	}
	if NewText("a").Equal(NewText("b")) {
		t.Error("a != b")
	}
	d1 := NewDate(time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC))
	d2 := NewDate(time.Date(2000, 1, 1, 5, 0, 0, 0, time.UTC))
	if !d1.Equal(d2) {
		t.Error("dates equal after truncation")
	}
}

func TestCompare(t *testing.T) {
	lt := func(a, b Value) {
		t.Helper()
		c, err := a.Compare(b)
		if err != nil || c != -1 {
			t.Errorf("Compare(%v,%v) = %d, %v; want -1", a, b, c, err)
		}
	}
	lt(NewInt(1), NewInt(2))
	lt(NewInt(1), NewFloat(1.5))
	lt(NewText("a"), NewText("b"))
	lt(NewBool(false), NewBool(true))
	lt(NewDate(time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)),
		NewDate(time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)))
	if c, err := NewInt(3).Compare(NewInt(3)); err != nil || c != 0 {
		t.Errorf("Compare equal = %d, %v", c, err)
	}
	if c, err := NewInt(4).Compare(NewInt(3)); err != nil || c != 1 {
		t.Errorf("Compare greater = %d, %v", c, err)
	}
	if _, err := NewNull().Compare(NewInt(1)); err == nil {
		t.Error("NULL comparison must error")
	}
	if _, err := NewText("a").Compare(NewInt(1)); err == nil {
		t.Error("cross-kind comparison must error")
	}
}

func TestKey(t *testing.T) {
	if NewInt(1).Key() != NewFloat(1).Key() {
		t.Error("1 and 1.0 must share a key")
	}
	if NewInt(1).Key() == NewText("1").Key() {
		t.Error("1 and '1' must not share a key")
	}
	if NewNull().Key() != "n" {
		t.Error("NULL key")
	}
	if NewBool(true).Key() == NewBool(false).Key() {
		t.Error("bool keys must differ")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewInt(3), Float)
	if err != nil || v.Float() != 3.0 {
		t.Errorf("Int→Float: %v, %v", v, err)
	}
	v, err = Coerce(NewFloat(3.0), Int)
	if err != nil || v.Int() != 3 {
		t.Errorf("Float→Int: %v, %v", v, err)
	}
	if _, err = Coerce(NewFloat(3.5), Int); err == nil {
		t.Error("lossy Float→Int accepted")
	}
	v, err = Coerce(NewText("1935-12-01"), Date)
	if err != nil || v.Date().Year() != 1935 {
		t.Errorf("Text→Date: %v, %v", v, err)
	}
	v, err = Coerce(NewText("42"), Int)
	if err != nil || v.Int() != 42 {
		t.Errorf("Text→Int: %v, %v", v, err)
	}
	v, err = Coerce(NewNull(), Int)
	if err != nil || !v.IsNull() {
		t.Errorf("NULL coerces to anything: %v, %v", v, err)
	}
	if _, err = Coerce(NewBool(true), Int); err == nil {
		t.Error("Bool→Int accepted")
	}
}

func TestParse(t *testing.T) {
	v, err := Parse("42", Int)
	if err != nil || v.Int() != 42 {
		t.Errorf("Parse int: %v %v", v, err)
	}
	v, err = Parse("", Int)
	if err != nil || !v.IsNull() {
		t.Errorf("Parse empty: %v %v", v, err)
	}
	v, err = Parse("December 1, 1935", Date)
	if err != nil || v.Date().Month() != time.December {
		t.Errorf("Parse narrative date: %v %v", v, err)
	}
	v, err = Parse("yes", Bool)
	if err != nil || !v.Bool() {
		t.Errorf("Parse bool: %v %v", v, err)
	}
	if _, err = Parse("xyz", Int); err == nil {
		t.Error("Parse bad int accepted")
	}
	if _, err = Parse("maybe", Bool); err == nil {
		t.Error("Parse bad bool accepted")
	}
	v, err = Parse("3.25", Float)
	if err != nil || v.Float() != 3.25 {
		t.Errorf("Parse float: %v %v", v, err)
	}
}

func TestCatalogKind(t *testing.T) {
	cases := map[catalog.Type]Kind{
		catalog.Int: Int, catalog.Float: Float, catalog.Text: Text,
		catalog.Date: Date, catalog.Bool: Bool,
	}
	for in, want := range cases {
		if got := CatalogKind(in); got != want {
			t.Errorf("CatalogKind(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Null.String() != "NULL" || Int.String() != "INT" {
		t.Error("Kind.String basics")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind string")
	}
}

// Property: Compare is antisymmetric over ints.
func TestComparePropertyInts(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, err1 := x.Compare(y)
		c2, err2 := y.Compare(x)
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal values share a Key; unequal text values do not.
func TestKeyProperty(t *testing.T) {
	f := func(a, b string) bool {
		x, y := NewText(a), NewText(b)
		if x.Equal(y) {
			return x.Key() == y.Key()
		}
		return x.Key() != y.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Parse(String) round-trips ints.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(n int64) bool {
		v := NewInt(n)
		back, err := Parse(v.String(), Int)
		return err == nil && back.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreAccessorPanics(t *testing.T) {
	checkPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	checkPanic("Text on int", func() { NewInt(1).Text() })
	checkPanic("Date on int", func() { NewInt(1).Date() })
	checkPanic("Bool on int", func() { NewInt(1).Bool() })
	checkPanic("Float on text", func() { NewText("x").Float() })
}

func TestCoerceMoreBranches(t *testing.T) {
	v, err := Coerce(NewDate(time.Date(2005, 1, 2, 0, 0, 0, 0, time.UTC)), Text)
	if err != nil || v.Text() != "2005-01-02" {
		t.Errorf("Date→Text = %v, %v", v, err)
	}
	v, err = Coerce(NewText("2.5"), Float)
	if err != nil || v.Float() != 2.5 {
		t.Errorf("Text→Float = %v, %v", v, err)
	}
	if _, err := Coerce(NewText("xx"), Float); err == nil {
		t.Error("bad Text→Float accepted")
	}
	if _, err := Coerce(NewText("xx"), Int); err == nil {
		t.Error("bad Text→Int accepted")
	}
	if _, err := Coerce(NewText("bad-date"), Date); err == nil {
		t.Error("bad Text→Date accepted")
	}
	// Same-kind coercion is identity.
	v, err = Coerce(NewInt(5), Int)
	if err != nil || v.Int() != 5 {
		t.Errorf("identity coerce = %v, %v", v, err)
	}
}

func TestIsNumeric(t *testing.T) {
	if !NewInt(1).IsNumeric() || !NewFloat(1).IsNumeric() {
		t.Error("numeric kinds")
	}
	if NewText("1").IsNumeric() || NewNull().IsNumeric() {
		t.Error("non-numeric kinds")
	}
}

func TestParseDateKindAndErrors(t *testing.T) {
	if _, err := Parse("garbage", Date); err == nil {
		t.Error("bad date accepted")
	}
	if _, err := Parse("1", Kind(99)); err == nil {
		t.Error("unknown kind accepted")
	}
	v, err := Parse("t", Bool)
	if err != nil || !v.Bool() {
		t.Errorf("Parse bool t = %v, %v", v, err)
	}
	v, err = Parse("0", Bool)
	if err != nil || v.Bool() {
		t.Errorf("Parse bool 0 = %v, %v", v, err)
	}
}

func TestEqualSameKindBranches(t *testing.T) {
	d1 := NewDate(time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC))
	d2 := NewDate(time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC))
	if d1.Equal(d2) {
		t.Error("different dates equal")
	}
	if !NewBool(true).Equal(NewBool(true)) || NewBool(true).Equal(NewBool(false)) {
		t.Error("bool equality")
	}
	if NewFloat(1.5).Equal(NewFloat(2.5)) {
		t.Error("float equality")
	}
	if NewNull().Equal(NewInt(0)) {
		t.Error("null vs int")
	}
}
