// Package value defines the typed datum that flows through the storage
// layer, the query engine, and the template instantiation pipeline. A Value
// is a small immutable tagged union over NULL, INT, FLOAT, TEXT, DATE, and
// BOOL with SQL comparison semantics (NULL compares as unknown).
package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/lexicon"
)

// Kind discriminates the variants of a Value.
type Kind int

// The value kinds. Null is the zero value so that a zero Value is NULL.
const (
	Null Kind = iota
	Int
	Float
	Text
	Date
	Bool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "NULL"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Text:
		return "TEXT"
	case Date:
		return "DATE"
	case Bool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is one typed datum. The zero Value is NULL.
//
// The struct is deliberately small (40 bytes): the i field carries the Int
// payload, Date values as days since the Unix epoch, and Bool as 0/1, so no
// time.Time or bool field widens every value flowing through the engine's
// row arenas and the columnar store's materialization path.
type Value struct {
	kind Kind
	// i holds the Int payload; for Date, days since the Unix epoch; for
	// Bool, 0 or 1.
	i int64
	f float64
	s string
}

// secondsPerDay converts between the epoch-day payload and the Unix-second
// timeline all date encodings are defined on (dates are midnight UTC, so the
// conversion is exact in both directions).
const secondsPerDay = 86400

// NewNull returns the NULL value.
func NewNull() Value { return Value{} }

// NewInt wraps an integer.
func NewInt(i int64) Value { return Value{kind: Int, i: i} }

// NewFloat wraps a float.
func NewFloat(f float64) Value { return Value{kind: Float, f: f} }

// NewText wraps a string.
func NewText(s string) Value { return Value{kind: Text, s: s} }

// NewDate wraps a date (time components are truncated).
func NewDate(t time.Time) Value {
	u := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC).Unix()
	return Value{kind: Date, i: u / secondsPerDay} // midnight UTC: exact division
}

// NewDateDays wraps a date given as days since the Unix epoch — the columnar
// store's native date representation, avoiding any time.Time round trip.
func NewDateDays(days int64) Value { return Value{kind: Date, i: days} }

// NewBool wraps a boolean.
func NewBool(b bool) Value {
	if b {
		return Value{kind: Bool, i: 1}
	}
	return Value{kind: Bool}
}

// Kind returns the variant tag.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == Null }

// Int returns the integer payload; it panics unless Kind is Int.
func (v Value) Int() int64 {
	if v.kind != Int {
		panic(fmt.Sprintf("value: Int() on %s", v.kind))
	}
	return v.i
}

// Float returns the numeric payload as float64 (valid for Int and Float).
func (v Value) Float() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("value: Float() on %s", v.kind))
	}
}

// Text returns the string payload; it panics unless Kind is Text.
func (v Value) Text() string {
	if v.kind != Text {
		panic(fmt.Sprintf("value: Text() on %s", v.kind))
	}
	return v.s
}

// Date returns the date payload; it panics unless Kind is Date.
func (v Value) Date() time.Time {
	if v.kind != Date {
		panic(fmt.Sprintf("value: Date() on %s", v.kind))
	}
	return time.Unix(v.i*secondsPerDay, 0).UTC()
}

// DateDays returns the date payload as days since the Unix epoch; it panics
// unless Kind is Date.
func (v Value) DateDays() int64 {
	if v.kind != Date {
		panic(fmt.Sprintf("value: DateDays() on %s", v.kind))
	}
	return v.i
}

// Bool returns the boolean payload; it panics unless Kind is Bool.
func (v Value) Bool() bool {
	if v.kind != Bool {
		panic(fmt.Sprintf("value: Bool() on %s", v.kind))
	}
	return v.i != 0
}

// IsNumeric reports whether the value is Int or Float.
func (v Value) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// String renders the value for debugging and test output. Text values are
// unquoted; use SQL() for SQL-literal rendering.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Text:
		return v.s
	case Date:
		return v.Date().Format("2006-01-02")
	case Bool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(%d)", int(v.kind))
	}
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.kind {
	case Float:
		// Plain decimal notation only — the SQL lexer has no exponent
		// syntax — with a forced fraction so the literal re-parses as a
		// float rather than an integer.
		s := strconv.FormatFloat(v.f, 'f', -1, 64)
		if !strings.ContainsAny(s, ".") {
			s += ".0"
		}
		return s
	case Text:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case Date:
		return "DATE '" + v.Date().Format("2006-01-02") + "'"
	case Bool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}

// Prose renders the value the way narratives quote it: dates in "December 1,
// 1935" form, everything else as String().
func (v Value) Prose() string {
	if v.kind == Date {
		return lexicon.FormatDate(v.Date())
	}
	return v.String()
}

// Equal reports strict equality (same kind, same payload). NULL equals NULL
// here; use Compare for SQL three-valued semantics.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Numeric cross-kind equality: 1 == 1.0.
		if v.IsNumeric() && o.IsNumeric() {
			return v.Float() == o.Float()
		}
		return false
	}
	switch v.kind {
	case Null:
		return true
	case Int:
		return v.i == o.i
	case Float:
		return v.f == o.f
	case Text:
		return v.s == o.s
	case Date:
		return v.i == o.i
	case Bool:
		return v.i == o.i
	}
	return false
}

// Compare orders two values: -1, 0, +1. It returns an error when the kinds
// are incomparable or either side is NULL (SQL unknown). Numeric kinds
// compare with each other.
func (v Value) Compare(o Value) (int, error) {
	if v.kind == Null || o.kind == Null {
		return 0, fmt.Errorf("value: comparison with NULL is unknown")
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case Text:
		return strings.Compare(v.s, o.s), nil
	case Date, Bool:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("value: cannot compare %s values", v.kind)
	}
}

// Key returns a string usable as a map key that distinguishes values the way
// Equal does (so 1 and 1.0 share a key, and "1" does not).
func (v Value) Key() string {
	switch v.kind {
	case Null:
		return "n"
	case Int:
		return "f:" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case Float:
		return "f:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case Text:
		return "t:" + v.s
	case Date:
		return "d:" + v.Date().Format("2006-01-02")
	case Bool:
		if v.i != 0 {
			return "b1"
		}
		return "b0"
	default:
		return "?"
	}
}

// AppendKey appends a binary encoding of v to buf and returns the extended
// buffer. The encoding distinguishes values exactly the way Equal does
// (1 and 1.0 share an encoding, "1" does not) and — unlike Key — is safe to
// concatenate: every variant is either fixed-width or length-prefixed, so
// adjacent values can never collide ("a|b","c" vs "a","b|c"). Storage hash
// keys (primary keys, indexes, statistics) and the engine's grouping and
// deduplication keys are all built with it, typically into a reusable buffer.
func (v Value) AppendKey(buf []byte) []byte {
	switch v.kind {
	case Null:
		return append(buf, 'n')
	case Int:
		return appendFloatKey(buf, float64(v.i))
	case Float:
		return appendFloatKey(buf, v.f)
	case Text:
		buf = append(buf, 't')
		buf = binary.AppendUvarint(buf, uint64(len(v.s)))
		return append(buf, v.s...)
	case Date:
		buf = append(buf, 'd')
		return binary.BigEndian.AppendUint64(buf, uint64(v.i*secondsPerDay))
	case Bool:
		if v.i != 0 {
			return append(buf, 'B')
		}
		return append(buf, 'b')
	default:
		return append(buf, '?')
	}
}

func appendFloatKey(buf []byte, f float64) []byte {
	if f == 0 {
		f = 0 // collapse -0 and +0, which Equal treats as the same value
	}
	buf = append(buf, 'f')
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
}

// CatalogKind maps a catalog attribute type to the value kind it stores.
func CatalogKind(t catalog.Type) Kind {
	switch t {
	case catalog.Int:
		return Int
	case catalog.Float:
		return Float
	case catalog.Text:
		return Text
	case catalog.Date:
		return Date
	case catalog.Bool:
		return Bool
	default:
		return Null
	}
}

// Coerce converts v to the given kind when a lossless (or standard SQL)
// conversion exists: Int→Float, Text→Date, Int↔Float with truncation rules.
// NULL coerces to every kind. It returns an error otherwise.
func Coerce(v Value, k Kind) (Value, error) {
	if v.kind == k || v.kind == Null {
		return v, nil
	}
	switch {
	case v.kind == Int && k == Float:
		return NewFloat(float64(v.i)), nil
	case v.kind == Float && k == Int:
		if v.f == float64(int64(v.f)) {
			return NewInt(int64(v.f)), nil
		}
		return Value{}, fmt.Errorf("value: %v is not an integer", v.f)
	case v.kind == Text && k == Date:
		t, err := lexicon.ParseDate(v.s)
		if err != nil {
			return Value{}, fmt.Errorf("value: cannot coerce %q to DATE: %v", v.s, err)
		}
		return NewDate(t), nil
	case v.kind == Date && k == Text:
		return NewText(v.Date().Format("2006-01-02")), nil
	case v.kind == Text && k == Int:
		i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: cannot coerce %q to INT", v.s)
		}
		return NewInt(i), nil
	case v.kind == Text && k == Float:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: cannot coerce %q to FLOAT", v.s)
		}
		return NewFloat(f), nil
	default:
		return Value{}, fmt.Errorf("value: cannot coerce %s to %s", v.kind, k)
	}
}

// Parse converts a raw string into a Value of the requested kind; empty
// strings become NULL. It is the CSV-loading entry point.
func Parse(raw string, k Kind) (Value, error) {
	if raw == "" {
		return NewNull(), nil
	}
	switch k {
	case Int:
		i, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad INT %q", raw)
		}
		return NewInt(i), nil
	case Float:
		f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad FLOAT %q", raw)
		}
		return NewFloat(f), nil
	case Text:
		return NewText(raw), nil
	case Date:
		t, err := lexicon.ParseDate(strings.TrimSpace(raw))
		if err != nil {
			return Value{}, err
		}
		return NewDate(t), nil
	case Bool:
		switch strings.ToLower(strings.TrimSpace(raw)) {
		case "true", "t", "1", "yes":
			return NewBool(true), nil
		case "false", "f", "0", "no":
			return NewBool(false), nil
		default:
			return Value{}, fmt.Errorf("value: bad BOOL %q", raw)
		}
	default:
		return Value{}, fmt.Errorf("value: cannot parse into %s", k)
	}
}
