// Package dataset builds the schemas and data the paper's examples run on:
// the Fig. 1 movie database (with hand-curated tuples reproducing every
// narrative the paper quotes — Woody Allen's filmography, Brad Pitt's cast
// entries, G. Loucas's action movies, repeated-title "versions" for Q9,
// all-genre movies for Q6, and a title-as-role movie for Q4) and the
// EMP/DEPT schema from Section 3.1.
//
// It also provides a deterministic synthetic generator for scale benchmarks.
// The paper's authors demonstrated on real movie data; we substitute
// curated + generated data that exercises exactly the same translation code
// paths (see DESIGN.md §4).
package dataset

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/value"
)

// MovieSchema constructs the Fig. 1 schema with the paper's translation
// annotations: heading attributes (MOVIES→title, ACTOR→name, DIRECTOR→name,
// GENRE→genre), conceptual names, bridge flags on CAST and DIRECTED, and
// glosses for abbreviated attribute names.
func MovieSchema() *catalog.Schema {
	s := catalog.NewSchema("movies")
	mustAdd := func(r *catalog.Relation) {
		if err := s.AddRelation(r); err != nil {
			panic(fmt.Sprintf("dataset: movie schema: %v", err))
		}
	}
	mustAdd(&catalog.Relation{
		Name: "MOVIES",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "title", Type: catalog.Text, NotNull: true, Weight: 3},
			{Name: "year", Type: catalog.Int, Weight: 2},
		},
		PrimaryKey:     []string{"id"},
		HeadingAttr:    "title",
		ConceptualName: "movie",
		Weight:         3,
	})
	mustAdd(&catalog.Relation{
		Name: "ACTOR",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "name", Type: catalog.Text, NotNull: true, Weight: 3},
		},
		PrimaryKey:     []string{"id"},
		HeadingAttr:    "name",
		ConceptualName: "actor",
		Weight:         2,
	})
	mustAdd(&catalog.Relation{
		Name: "CAST",
		Attributes: []*catalog.Attribute{
			{Name: "mid", Type: catalog.Int, NotNull: true},
			{Name: "aid", Type: catalog.Int, NotNull: true},
			{Name: "role", Type: catalog.Text, Gloss: "role"},
		},
		PrimaryKey: []string{"mid", "aid"},
		ForeignKey: []catalog.ForeignKey{
			{Attrs: []string{"mid"}, RefRelation: "MOVIES", RefAttrs: []string{"id"}},
			{Attrs: []string{"aid"}, RefRelation: "ACTOR", RefAttrs: []string{"id"}},
		},
		ConceptualName: "cast entry",
		Bridge:         true,
	})
	mustAdd(&catalog.Relation{
		Name: "DIRECTOR",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "name", Type: catalog.Text, NotNull: true, Weight: 3},
			{Name: "bdate", Type: catalog.Date, Gloss: "birth date"},
			{Name: "blocation", Type: catalog.Text, Gloss: "birth location"},
		},
		PrimaryKey:     []string{"id"},
		HeadingAttr:    "name",
		ConceptualName: "director",
		Weight:         2,
	})
	mustAdd(&catalog.Relation{
		Name: "DIRECTED",
		Attributes: []*catalog.Attribute{
			{Name: "mid", Type: catalog.Int, NotNull: true},
			{Name: "did", Type: catalog.Int, NotNull: true},
		},
		PrimaryKey: []string{"mid", "did"},
		ForeignKey: []catalog.ForeignKey{
			{Attrs: []string{"mid"}, RefRelation: "MOVIES", RefAttrs: []string{"id"}},
			{Attrs: []string{"did"}, RefRelation: "DIRECTOR", RefAttrs: []string{"id"}},
		},
		ConceptualName: "directing credit",
		Bridge:         true,
	})
	mustAdd(&catalog.Relation{
		Name: "GENRE",
		Attributes: []*catalog.Attribute{
			{Name: "mid", Type: catalog.Int, NotNull: true},
			{Name: "genre", Type: catalog.Text, NotNull: true},
		},
		PrimaryKey:  []string{"mid", "genre"},
		HeadingAttr: "genre",
		ForeignKey: []catalog.ForeignKey{
			{Attrs: []string{"mid"}, RefRelation: "MOVIES", RefAttrs: []string{"id"}},
		},
		ConceptualName: "genre",
	})
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: movie schema: %v", err))
	}
	return s
}

// date builds a DATE value, panicking on bad input (curated data only).
func date(y int, m time.Month, d int) value.Value {
	return value.NewDate(time.Date(y, m, d, 0, 0, 0, 0, time.UTC))
}

func i(n int64) value.Value  { return value.NewInt(n) }
func s(x string) value.Value { return value.NewText(x) }
func null() value.Value      { return value.NewNull() }

// CuratedMovieDB builds the movie database whose contents reproduce every
// example in the paper:
//
//   - Woody Allen (born Brooklyn, New York, USA on December 1, 1935) directed
//     Match Point (2005), Melinda and Melinda (2004), Anything Else (2003)
//     — the §2.2 narrative.
//   - Brad Pitt plays in several movies — Q1/Q5.
//   - G. Loucas directs action movies — Q2.
//   - "The Matrix" casts pairs of actors — Q3.
//   - "Anna" contains a role named "Anna" — Q4.
//   - "Omnibus" carries every genre present in the database — Q6.
//   - Actors 301/302 appear only in movies of a single year — Q8.
//   - "King Kong" exists in three versions (1933, 1976, 2005) — Q9.
func CuratedMovieDB() (*storage.Database, error) {
	db, err := storage.NewDatabase(MovieSchema())
	if err != nil {
		return nil, err
	}
	ins := func(rel string, vals ...value.Value) {
		if err == nil {
			err = db.Insert(rel, storage.Tuple(vals))
		}
	}

	// Directors.
	ins("DIRECTOR", i(1), s("Woody Allen"), date(1935, time.December, 1), s("Brooklyn, New York, USA"))
	ins("DIRECTOR", i(2), s("G. Loucas"), date(1944, time.May, 14), s("Modesto, California, USA"))
	ins("DIRECTOR", i(3), s("Sofia Ferrara"), date(1971, time.May, 14), s("Rome, Italy"))
	ins("DIRECTOR", i(4), s("Peter Jackson"), date(1961, time.October, 31), s("Pukerua Bay, New Zealand"))
	ins("DIRECTOR", i(5), s("Merian Cooper"), date(1893, time.October, 24), s("Jacksonville, Florida, USA"))
	ins("DIRECTOR", i(6), s("John Guillermin"), date(1925, time.November, 11), s("London, England"))

	// Movies. 100-block: Woody Allen; 110-block: G. Loucas action;
	// 120: The Matrix (pairs); 121: Anna (cyclic role=title);
	// 122: Omnibus (all genres); 130-132: King Kong versions;
	// 140-141: single-year movies for Q8.
	ins("MOVIES", i(100), s("Match Point"), i(2005))
	ins("MOVIES", i(101), s("Melinda and Melinda"), i(2004))
	ins("MOVIES", i(102), s("Anything Else"), i(2003))
	ins("MOVIES", i(110), s("Star Raiders"), i(1999))
	ins("MOVIES", i(111), s("Galaxy at War"), i(2002))
	ins("MOVIES", i(120), s("The Matrix"), i(1999))
	ins("MOVIES", i(121), s("Anna"), i(2001))
	ins("MOVIES", i(122), s("Omnibus"), i(2008))
	ins("MOVIES", i(130), s("King Kong"), i(1933))
	ins("MOVIES", i(131), s("King Kong"), i(1976))
	ins("MOVIES", i(132), s("King Kong"), i(2005))
	ins("MOVIES", i(140), s("Quiet Winter"), i(2007))
	ins("MOVIES", i(141), s("Silent Autumn"), i(2007))

	// Actors.
	ins("ACTOR", i(200), s("Brad Pitt"))
	ins("ACTOR", i(201), s("Scarlett Johansson"))
	ins("ACTOR", i(202), s("Jonathan Rhys Meyers"))
	ins("ACTOR", i(203), s("Keanu Reeves"))
	ins("ACTOR", i(204), s("Carrie-Anne Moss"))
	ins("ACTOR", i(205), s("Laurence Fishburne"))
	ins("ACTOR", i(206), s("Anna Kendrick"))
	ins("ACTOR", i(207), s("Naomi Watts"))
	ins("ACTOR", i(208), s("Fay Wray"))
	ins("ACTOR", i(209), s("Jessica Lange"))
	ins("ACTOR", i(210), s("Mark Hamill"))
	ins("ACTOR", i(301), s("Nikos Papadopoulos"))
	ins("ACTOR", i(302), s("Elena Rossi"))

	// Cast. Brad Pitt in 110 and 130 (so Q9 finds him in the earliest King
	// Kong version through 130? No — keep Q9's earliest-version actors
	// distinct: Fay Wray is in the 1933 King Kong).
	ins("CAST", i(110), i(200), s("Commander Vane"))
	ins("CAST", i(111), i(200), s("Pilot Rook"))
	ins("CAST", i(111), i(210), s("Fleet Admiral"))
	ins("CAST", i(100), i(201), s("Nola Rice"))
	ins("CAST", i(100), i(202), s("Chris Wilton"))
	ins("CAST", i(101), i(201), s("Melinda"))
	ins("CAST", i(120), i(203), s("Neo"))
	ins("CAST", i(120), i(204), s("Trinity"))
	ins("CAST", i(120), i(205), s("Morpheus"))
	ins("CAST", i(121), i(206), s("Anna"))
	ins("CAST", i(122), i(201), s("The Narrator"))
	ins("CAST", i(130), i(208), s("Ann Darrow"))
	ins("CAST", i(131), i(209), s("Dwan"))
	ins("CAST", i(132), i(207), s("Ann Darrow"))
	ins("CAST", i(140), i(301), s("The Keeper"))
	ins("CAST", i(141), i(301), s("The Watcher"))
	ins("CAST", i(141), i(302), s("The Listener"))

	// Directing credits.
	ins("DIRECTED", i(100), i(1))
	ins("DIRECTED", i(101), i(1))
	ins("DIRECTED", i(102), i(1))
	ins("DIRECTED", i(110), i(2))
	ins("DIRECTED", i(111), i(2))
	ins("DIRECTED", i(120), i(3))
	ins("DIRECTED", i(121), i(3))
	ins("DIRECTED", i(122), i(3))
	ins("DIRECTED", i(130), i(5))
	ins("DIRECTED", i(131), i(6))
	ins("DIRECTED", i(132), i(4))

	// Genres. The distinct genre set is {action, drama, comedy, sci-fi};
	// Omnibus (122) carries all of them for Q6. The Matrix carries two
	// genres so it satisfies Q7's "more than one genre".
	ins("GENRE", i(100), s("drama"))
	ins("GENRE", i(101), s("comedy"))
	ins("GENRE", i(102), s("comedy"))
	ins("GENRE", i(110), s("action"))
	ins("GENRE", i(111), s("action"))
	ins("GENRE", i(120), s("action"))
	ins("GENRE", i(120), s("sci-fi"))
	ins("GENRE", i(121), s("drama"))
	ins("GENRE", i(122), s("action"))
	ins("GENRE", i(122), s("drama"))
	ins("GENRE", i(122), s("comedy"))
	ins("GENRE", i(122), s("sci-fi"))
	ins("GENRE", i(130), s("adventure"))
	ins("GENRE", i(131), s("adventure"))
	ins("GENRE", i(132), s("adventure"))
	ins("GENRE", i(140), s("drama"))
	ins("GENRE", i(141), s("drama"))

	if err != nil {
		return nil, err
	}
	return db, nil
}

// EmpDeptSchema constructs the §3.1 EMP/DEPT schema. The paper's running
// query projects e1.name, so EMP carries a name attribute alongside the
// listed eid/sal/age/did.
func EmpDeptSchema() *catalog.Schema {
	sch := catalog.NewSchema("company")
	mustAdd := func(r *catalog.Relation) {
		if err := sch.AddRelation(r); err != nil {
			panic(fmt.Sprintf("dataset: emp/dept schema: %v", err))
		}
	}
	mustAdd(&catalog.Relation{
		Name: "EMP",
		Attributes: []*catalog.Attribute{
			{Name: "eid", Type: catalog.Int, NotNull: true},
			{Name: "name", Type: catalog.Text, NotNull: true},
			{Name: "sal", Type: catalog.Float, Gloss: "salary"},
			{Name: "age", Type: catalog.Int},
			{Name: "did", Type: catalog.Int},
		},
		PrimaryKey:     []string{"eid"},
		HeadingAttr:    "name",
		ConceptualName: "employee",
	})
	mustAdd(&catalog.Relation{
		Name: "DEPT",
		Attributes: []*catalog.Attribute{
			{Name: "did", Type: catalog.Int, NotNull: true},
			{Name: "dname", Type: catalog.Text, Gloss: "name"},
			{Name: "mgr", Type: catalog.Int, Gloss: "manager"},
		},
		PrimaryKey:     []string{"did"},
		HeadingAttr:    "dname",
		ConceptualName: "department",
	})
	// EMP.did -> DEPT.did; DEPT.mgr -> EMP.eid. Declared after both
	// relations exist; Validate checks them.
	emp := sch.Relation("EMP")
	emp.ForeignKey = append(emp.ForeignKey, catalog.ForeignKey{
		Attrs: []string{"did"}, RefRelation: "DEPT", RefAttrs: []string{"did"},
	})
	dept := sch.Relation("DEPT")
	dept.ForeignKey = append(dept.ForeignKey, catalog.ForeignKey{
		Attrs: []string{"mgr"}, RefRelation: "EMP", RefAttrs: []string{"eid"},
	})
	if err := sch.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: emp/dept schema: %v", err))
	}
	return sch
}

// CuratedEmpDept builds a small company where two employees out-earn their
// managers, exercising the paper's §3.1 verification example. Because EMP
// and DEPT reference each other, FK checking is circular; tuples are loaded
// managers-first with NULL did, then wired up.
func CuratedEmpDept() (*storage.Database, error) {
	db, err := storage.NewDatabase(EmpDeptSchema())
	if err != nil {
		return nil, err
	}
	var insErr error
	ins := func(rel string, vals ...value.Value) {
		if insErr == nil {
			insErr = db.Insert(rel, storage.Tuple(vals))
		}
	}
	f := func(x float64) value.Value { return value.NewFloat(x) }

	// Managers first (did NULL so the EMP→DEPT FK is not checked yet).
	ins("EMP", i(1), s("Grace Chen"), f(120000), i(52), null())
	ins("EMP", i(2), s("Raj Patel"), f(95000), i(47), null())
	// Departments referencing the managers.
	ins("DEPT", i(10), s("Engineering"), i(1))
	ins("DEPT", i(20), s("Sales"), i(2))
	// Staff; Ada and Omar out-earn their managers.
	ins("EMP", i(3), s("Ada Papadaki"), f(130000), i(33), i(10))
	ins("EMP", i(4), s("Omar Haddad"), f(99000), i(41), i(20))
	ins("EMP", i(5), s("Lena Novak"), f(80000), i(29), i(10))
	ins("EMP", i(6), s("Tom Brook"), f(60000), i(35), i(20))
	if insErr != nil {
		return nil, insErr
	}
	// Wire the managers into their own departments.
	if _, err := db.Update("EMP",
		func(t storage.Tuple) bool { return t[0].Int() == 1 },
		func(t storage.Tuple) storage.Tuple { t[4] = i(10); return t }); err != nil {
		return nil, err
	}
	if _, err := db.Update("EMP",
		func(t storage.Tuple) bool { return t[0].Int() == 2 },
		func(t storage.Tuple) storage.Tuple { t[4] = i(20); return t }); err != nil {
		return nil, err
	}
	return db, nil
}

// GenConfig controls the synthetic movie-database generator.
type GenConfig struct {
	Seed      int64
	Movies    int
	Actors    int
	Directors int
	// CastPerMovie is the average number of cast entries per movie.
	CastPerMovie int
	// GenresPerMovie is the average number of genres per movie.
	GenresPerMovie int
}

// DefaultGenConfig returns a mid-sized configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{Seed: 42, Movies: 1000, Actors: 400, Directors: 80, CastPerMovie: 4, GenresPerMovie: 2}
}

var genreNames = []string{"action", "drama", "comedy", "sci-fi", "adventure", "thriller", "romance", "documentary"}

var firstNames = []string{
	"Alex", "Maria", "Nikos", "Elena", "James", "Sofia", "Omar", "Lena",
	"Brad", "Naomi", "Keanu", "Grace", "Raj", "Ada", "Tom", "Fay",
}

var lastNames = []string{
	"Papadopoulos", "Rossi", "Smith", "Chen", "Patel", "Novak", "Brook",
	"Haddad", "Ioannidis", "Simitsis", "Koutrika", "Wray", "Lange", "Watts",
}

var titleAdjectives = []string{
	"Silent", "Crimson", "Endless", "Broken", "Golden", "Hidden", "Last",
	"Distant", "Quiet", "Burning", "Frozen", "Electric",
}

var titleNouns = []string{
	"Horizon", "Empire", "Garden", "Winter", "Voyage", "Memory", "Station",
	"Harbor", "Signal", "Mirror", "Canyon", "Orchard",
}

// GenerateMovieDB builds a deterministic synthetic database of the Fig. 1
// schema at the configured scale.
func GenerateMovieDB(cfg GenConfig) (*storage.Database, error) {
	db, err := storage.NewDatabase(MovieSchema())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	name := func() string {
		return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
	}
	for d := 0; d < cfg.Directors; d++ {
		bd := time.Date(1920+rng.Intn(70), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), 0, 0, 0, 0, time.UTC)
		if err := db.Insert("DIRECTOR", storage.Tuple{
			i(int64(d + 1)), s(name()), value.NewDate(bd),
			s(lastNames[rng.Intn(len(lastNames))] + " City"),
		}); err != nil {
			return nil, err
		}
	}
	for a := 0; a < cfg.Actors; a++ {
		if err := db.Insert("ACTOR", storage.Tuple{i(int64(a + 1)), s(name())}); err != nil {
			return nil, err
		}
	}
	for m := 0; m < cfg.Movies; m++ {
		mid := int64(m + 1)
		title := fmt.Sprintf("%s %s %d",
			titleAdjectives[rng.Intn(len(titleAdjectives))],
			titleNouns[rng.Intn(len(titleNouns))], m)
		year := int64(1950 + rng.Intn(60))
		if err := db.Insert("MOVIES", storage.Tuple{i(mid), s(title), i(year)}); err != nil {
			return nil, err
		}
		if cfg.Directors > 0 {
			did := int64(1 + rng.Intn(cfg.Directors))
			if err := db.Insert("DIRECTED", storage.Tuple{i(mid), i(did)}); err != nil {
				return nil, err
			}
		}
		if cfg.Actors > 0 && cfg.CastPerMovie > 0 {
			n := 1 + rng.Intn(cfg.CastPerMovie*2-1)
			seen := map[int64]bool{}
			for c := 0; c < n; c++ {
				aid := int64(1 + rng.Intn(cfg.Actors))
				if seen[aid] {
					continue
				}
				seen[aid] = true
				role := fmt.Sprintf("Role %d-%d", mid, aid)
				if err := db.Insert("CAST", storage.Tuple{i(mid), i(aid), s(role)}); err != nil {
					return nil, err
				}
			}
		}
		if cfg.GenresPerMovie > 0 {
			n := 1 + rng.Intn(cfg.GenresPerMovie*2-1)
			seen := map[string]bool{}
			for g := 0; g < n; g++ {
				gn := genreNames[rng.Intn(len(genreNames))]
				if seen[gn] {
					continue
				}
				seen[gn] = true
				if err := db.Insert("GENRE", storage.Tuple{i(mid), s(gn)}); err != nil {
					return nil, err
				}
			}
		}
	}
	return db, nil
}
