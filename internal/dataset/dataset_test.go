package dataset

import (
	"testing"

	"repro/internal/value"
)

func TestMovieSchemaShape(t *testing.T) {
	s := MovieSchema()
	if len(s.Relations()) != 6 {
		t.Fatalf("relations = %d", len(s.Relations()))
	}
	m := s.Relation("MOVIES")
	if m.HeadingAttr != "title" || m.Concept() != "movie" {
		t.Errorf("MOVIES annotations: %+v", m)
	}
	if !s.Relation("CAST").Bridge || !s.Relation("DIRECTED").Bridge {
		t.Error("bridge flags missing")
	}
	if s.Relation("DIRECTOR").Attr("bdate").GlossOrDefault() != "birth date" {
		t.Error("bdate gloss")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCuratedMovieDBInvariants(t *testing.T) {
	db, err := CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	stats := db.Stats()
	want := map[string]int{
		"MOVIES": 13, "ACTOR": 13, "DIRECTOR": 6,
		"CAST": 17, "DIRECTED": 11, "GENRE": 17,
	}
	for rel, n := range want {
		if stats[rel] != n {
			t.Errorf("%s rows = %d, want %d", rel, stats[rel], n)
		}
	}
	// The fixtures behind each paper example exist.
	woody, ok := db.Table("DIRECTOR").LookupPK([]value.Value{value.NewInt(1)})
	if !ok || woody[1].Text() != "Woody Allen" {
		t.Error("Woody Allen fixture missing")
	}
	// Three King Kong versions.
	n, err := db.DistinctCount("MOVIES", "title")
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 { // 13 movies, King Kong ×3 → 11 distinct titles
		t.Errorf("distinct titles = %d", n)
	}
}

func TestCuratedEmpDept(t *testing.T) {
	db, err := CuratedEmpDept()
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("EMP").Len() != 6 || db.Table("DEPT").Len() != 2 {
		t.Errorf("emp/dept rows = %d/%d", db.Table("EMP").Len(), db.Table("DEPT").Len())
	}
	// Managers are wired into their departments after the circular load.
	grace, ok := db.Table("EMP").LookupPK([]value.Value{value.NewInt(1)})
	if !ok || grace[4].IsNull() || grace[4].Int() != 10 {
		t.Errorf("manager did = %v", grace)
	}
}

func TestEmpDeptSchemaCircularFKs(t *testing.T) {
	s := EmpDeptSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Relation("EMP").ForeignKey) != 1 || len(s.Relation("DEPT").ForeignKey) != 1 {
		t.Error("circular FKs not declared")
	}
}

func TestGenerateMovieDBScalesAndDeterminism(t *testing.T) {
	cfg := GenConfig{Seed: 99, Movies: 40, Actors: 20, Directors: 5, CastPerMovie: 2, GenresPerMovie: 2}
	db1, err := GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := db1.Stats(), db2.Stats()
	for rel := range s1 {
		if s1[rel] != s2[rel] {
			t.Errorf("%s: %d vs %d (nondeterministic)", rel, s1[rel], s2[rel])
		}
	}
	if s1["MOVIES"] != 40 {
		t.Errorf("movies = %d", s1["MOVIES"])
	}
	if s1["CAST"] == 0 || s1["GENRE"] == 0 || s1["DIRECTED"] != 40 {
		t.Errorf("satellite tables: %v", s1)
	}
	// Different seeds diverge.
	cfg.Seed = 100
	db3, err := GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db3.Stats()["CAST"] == s1["CAST"] && db3.Stats()["GENRE"] == s1["GENRE"] {
		t.Log("seeds coincidentally equal on counts; acceptable but unlikely")
	}
}

func TestGenerateRespectsForeignKeys(t *testing.T) {
	db, err := GenerateMovieDB(GenConfig{Seed: 7, Movies: 25, Actors: 10, Directors: 3, CastPerMovie: 2, GenresPerMovie: 1})
	if err != nil {
		t.Fatal(err) // Insert enforces FKs, so success implies integrity
	}
	if db.Table("CAST").Len() == 0 {
		t.Error("no cast rows generated")
	}
}

func TestGenerateZeroSatellites(t *testing.T) {
	db, err := GenerateMovieDB(GenConfig{Seed: 1, Movies: 5})
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("MOVIES").Len() != 5 || db.Table("CAST").Len() != 0 {
		t.Errorf("zero-config generation: %v", db.Stats())
	}
}
