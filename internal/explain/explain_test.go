package explain

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/querytotext"
	"repro/internal/sqlparser"
)

func newExplainer(t *testing.T) *Explainer {
	t.Helper()
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.New(db)
	tr := querytotext.New(db.Schema(), querytotext.MovieVerbs(), querytotext.Options{})
	return New(ex, tr)
}

func parse(t *testing.T, src string) *sqlparser.SelectStmt {
	t.Helper()
	sel, err := sqlparser.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestExplainEmptySingleCulprit(t *testing.T) {
	e := newExplainer(t)
	sel := parse(t, `select m.title from MOVIES m, CAST c, ACTOR a
		where m.id = c.mid and c.aid = a.id and a.name = 'Nobody Unknown'`)
	d, err := e.ExplainEmpty(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty || d.JoinsEmpty {
		t.Fatalf("diag = %+v", d)
	}
	if len(d.Culprits) != 1 || !d.Culprits[0].Alone {
		t.Fatalf("culprits = %+v", d.Culprits)
	}
	if !strings.Contains(d.Culprits[0].Predicates[0], "Nobody Unknown") {
		t.Errorf("culprit = %+v", d.Culprits[0])
	}
	if !strings.Contains(d.Text, "returns nothing because") {
		t.Errorf("text = %q", d.Text)
	}
}

func TestExplainEmptyPairCulprit(t *testing.T) {
	e := newExplainer(t)
	// Each filter is satisfiable alone; together they fail: Brad Pitt (in
	// 1999/2002 movies) and year 2005.
	sel := parse(t, `select m.title from MOVIES m, CAST c, ACTOR a
		where m.id = c.mid and c.aid = a.id and a.name = 'Brad Pitt' and m.year = 2005`)
	d, err := e.ExplainEmpty(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty {
		t.Fatal("expected empty")
	}
	if len(d.Culprits) == 0 {
		t.Fatalf("no culprits: %+v", d)
	}
	if d.Culprits[0].Alone {
		t.Errorf("expected pair culprit, got %+v", d.Culprits[0])
	}
	if len(d.Culprits[0].Predicates) != 2 {
		t.Errorf("pair = %+v", d.Culprits[0])
	}
	if !strings.Contains(d.Text, "together with") {
		t.Errorf("text = %q", d.Text)
	}
}

func TestExplainEmptyNonEmptyAnswer(t *testing.T) {
	e := newExplainer(t)
	sel := parse(t, sqlparser.PaperQueries["Q1"])
	d, err := e.ExplainEmpty(sel)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty {
		t.Error("Q1 is not empty")
	}
	if !strings.Contains(d.Text, "nothing to diagnose") {
		t.Errorf("text = %q", d.Text)
	}
}

func TestExplainEmptyJoinsEmpty(t *testing.T) {
	e := newExplainer(t)
	// Delete all CAST rows so the join structure itself is empty.
	if _, _, err := e.ex.Exec("delete from CAST"); err != nil {
		t.Fatal(err)
	}
	sel := parse(t, sqlparser.PaperQueries["Q1"])
	d, err := e.ExplainEmpty(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !d.JoinsEmpty {
		t.Fatalf("diag = %+v", d)
	}
	if !strings.Contains(d.Text, "share no matching rows") {
		t.Errorf("text = %q", d.Text)
	}
}

func TestExplainLarge(t *testing.T) {
	e := newExplainer(t)
	sel := parse(t, "select m.title, c.role from MOVIES m, CAST c where m.id = c.mid")
	d, err := e.ExplainLarge(sel, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Large || d.Rows <= 5 {
		t.Fatalf("diag = %+v", d)
	}
	if len(d.Contributions) != 2 {
		t.Fatalf("contributions = %+v", d.Contributions)
	}
	// Unfiltered relations are called out.
	if !strings.Contains(d.Text, "unrestricted") {
		t.Errorf("text = %q", d.Text)
	}
	if !strings.Contains(d.Text, "Consider adding a more selective condition.") {
		t.Errorf("text = %q", d.Text)
	}
}

func TestExplainLargeWeakFilter(t *testing.T) {
	e := newExplainer(t)
	// year > 1900 keeps everything: a weak filter.
	sel := parse(t, "select m.title, c.role from MOVIES m, CAST c where m.id = c.mid and m.year > 1900")
	d, err := e.ExplainLarge(sel, 5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range d.Contributions {
		if strings.EqualFold(c.Relation, "MOVIES") && c.Filtered > 0.99 {
			found = true
		}
	}
	if !found {
		t.Errorf("weak filter not measured: %+v", d.Contributions)
	}
}

func TestExplainLargeWithinThreshold(t *testing.T) {
	e := newExplainer(t)
	sel := parse(t, "select m.title from MOVIES m where m.id = 100")
	d, err := e.ExplainLarge(sel, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Large {
		t.Error("single-row answer flagged large")
	}
	if !strings.Contains(d.Text, "within the threshold") {
		t.Errorf("text = %q", d.Text)
	}
}

func BenchmarkExplainEmpty(b *testing.B) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		b.Fatal(err)
	}
	ex := engine.New(db)
	tr := querytotext.New(db.Schema(), querytotext.MovieVerbs(), querytotext.Options{})
	e := New(ex, tr)
	sel, _ := sqlparser.ParseSelect(`select m.title from MOVIES m, CAST c, ACTOR a
		where m.id = c.mid and c.aid = a.id and a.name = 'Nobody Unknown'`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExplainEmpty(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplainLarge(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{Seed: 9, Movies: 300, Actors: 100, Directors: 10, CastPerMovie: 3, GenresPerMovie: 2})
	if err != nil {
		b.Fatal(err)
	}
	ex := engine.New(db)
	tr := querytotext.New(db.Schema(), querytotext.MovieVerbs(), querytotext.Options{})
	e := New(ex, tr)
	sel, _ := sqlparser.ParseSelect("select m.title, c.role from MOVIES m, CAST c where m.id = c.mid")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExplainLarge(sel, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExplainPlan narrates an executed plan: structured steps with actuals
// filled in, English text, and an index tip for the unindexed selective
// filter on a larger database.
func TestExplainPlan(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 3, Movies: 2000, Actors: 500, Directors: 21, CastPerMovie: 2, GenresPerMovie: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.New(db)
	tr := querytotext.New(db.Schema(), querytotext.MovieVerbs(), querytotext.Options{})
	e := New(ex, tr)

	diag, err := e.ExplainPlan(parse(t,
		"select m.title from MOVIES m, CAST c where m.id = c.mid and c.role = 'Role 7-19'"))
	if err != nil {
		t.Fatal(err)
	}
	if diag.Plan.Fallback {
		t.Fatalf("fallback plan: %s", diag.Plan.Reason)
	}
	if len(diag.Plan.Steps) != 2 {
		t.Fatalf("steps = %d", len(diag.Plan.Steps))
	}
	if diag.Plan.Steps[0].Relation != "CAST" {
		t.Errorf("first step = %s, want the filtered CAST scan", diag.Plan.Steps[0].Relation)
	}
	for _, st := range diag.Plan.Steps {
		if st.ActualRows < 0 {
			t.Errorf("step %s has no actual row count", st.Relation)
		}
	}
	if !strings.Contains(diag.Text, "Step 1") || !strings.Contains(diag.Text, "scans all of CAST") {
		t.Errorf("narration = %q", diag.Text)
	}
	found := false
	for _, tip := range diag.Tips {
		if strings.Contains(tip, "index on CAST(role)") {
			found = true
		}
	}
	if !found {
		t.Errorf("tips = %v, want an index suggestion", diag.Tips)
	}
}

// TestExplainPlanFallback reports, rather than hides, queries the planner
// cannot handle.
func TestExplainPlanFallback(t *testing.T) {
	e := newExplainer(t)
	diag, err := e.ExplainPlan(parse(t,
		"select m.title from MOVIES m left join CAST c on m.id = c.mid"))
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Plan.Fallback {
		t.Fatal("outer join should fall back")
	}
	if !strings.Contains(diag.Text, "naive pipeline") {
		t.Errorf("narration = %q", diag.Text)
	}
}
