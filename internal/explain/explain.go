// Package explain produces the query feedback the paper motivates in §3.1:
// "when a query returns an empty answer, it is nice to know the parts of the
// query that are responsible for the failure. Similarly, when a query is
// expected to return a very large number of answers, it is useful to know
// the reasons."
//
// ExplainEmpty isolates minimal failing predicate sets by re-executing the
// query with subsets of its filters; ExplainLarge attributes result size to
// relation cardinalities and weak filters. Both render their findings in
// natural language through the query translator's predicate renderer.
package explain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/lexicon"
	"repro/internal/planner"
	"repro/internal/querygraph"
	"repro/internal/querytotext"
	"repro/internal/sqlparser"
)

// Explainer diagnoses queries against one database.
type Explainer struct {
	ex *engine.Engine
	tr *querytotext.Translator
}

// New builds an explainer over the engine; tr supplies English renderings
// of predicates (it must be built over the same schema).
func New(ex *engine.Engine, tr *querytotext.Translator) *Explainer {
	return &Explainer{ex: ex, tr: tr}
}

// Culprit is one predicate (or minimal predicate set) responsible for an
// empty answer.
type Culprit struct {
	// Predicates holds the SQL of the failing set (singleton when one
	// predicate alone kills the result).
	Predicates []string
	// English renders the set.
	English string
	// Alone is true when the set is a single predicate.
	Alone bool
}

// EmptyDiagnosis is the outcome of ExplainEmpty.
type EmptyDiagnosis struct {
	// Empty reports whether the answer was actually empty.
	Empty bool
	// JoinsEmpty reports that the join structure alone (before any filter)
	// produces nothing.
	JoinsEmpty bool
	// Culprits lists minimal failing predicate sets, smallest first.
	Culprits []Culprit
	// Text is the natural-language summary.
	Text string
}

// ExplainEmpty diagnoses why a SELECT returns no rows. Non-empty answers
// return a diagnosis with Empty=false.
func (e *Explainer) ExplainEmpty(sel *sqlparser.SelectStmt) (*EmptyDiagnosis, error) {
	res, err := e.ex.Select(sel)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) > 0 {
		return &EmptyDiagnosis{
			Empty: false,
			Text:  fmt.Sprintf("The query returns %s; nothing to diagnose.", lexicon.CountNoun(len(res.Rows), "row")),
		}, nil
	}

	g, err := querygraph.Build(sel, e.ex.Source().Schema())
	if err != nil {
		return nil, err
	}

	conjuncts := sqlparser.Conjuncts(sel.Where)
	var joins, filters []sqlparser.Expr
	for _, c := range conjuncts {
		if isJoinPredicate(c) {
			joins = append(joins, c)
		} else {
			filters = append(filters, c)
		}
	}

	countWith := func(preds []sqlparser.Expr) (int, error) {
		probe := sqlparser.CloneSelect(sel)
		probe.Where = sqlparser.AndAll(preds)
		probe.Having = nil
		probe.GroupBy = nil
		probe.Limit = 1
		// Project * to avoid aggregate-only select lists collapsing rows.
		probe.Items = []sqlparser.SelectItem{{Expr: &sqlparser.Star{}}}
		probe.Distinct = false
		probe.OrderBy = nil
		r, err := e.ex.Select(probe)
		if err != nil {
			return 0, err
		}
		return len(r.Rows), nil
	}

	diag := &EmptyDiagnosis{Empty: true}

	// Do the joins alone produce anything?
	n, err := countWith(joins)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		diag.JoinsEmpty = true
		diag.Text = "The query returns nothing: the joined relations share no matching rows even before any filter applies."
		return diag, nil
	}

	// Single-predicate culprits.
	for _, f := range filters {
		n, err := countWith(append(append([]sqlparser.Expr{}, joins...), f))
		if err != nil {
			return nil, err
		}
		if n == 0 {
			diag.Culprits = append(diag.Culprits, Culprit{
				Predicates: []string{f.SQL()},
				English:    e.tr.PredicateEnglish(f, g),
				Alone:      true,
			})
		}
	}
	// Pairwise culprits when no single filter is responsible.
	if len(diag.Culprits) == 0 {
		for i := 0; i < len(filters); i++ {
			for j := i + 1; j < len(filters); j++ {
				n, err := countWith(append(append([]sqlparser.Expr{}, joins...), filters[i], filters[j]))
				if err != nil {
					return nil, err
				}
				if n == 0 {
					diag.Culprits = append(diag.Culprits, Culprit{
						Predicates: []string{filters[i].SQL(), filters[j].SQL()},
						English: e.tr.PredicateEnglish(filters[i], g) + " together with " +
							e.tr.PredicateEnglish(filters[j], g),
					})
				}
			}
		}
	}

	switch {
	case len(diag.Culprits) == 0:
		diag.Text = "The query returns nothing, but no small subset of its conditions is individually responsible; the conditions fail only in combination."
	default:
		var parts []string
		for _, c := range diag.Culprits {
			parts = append(parts, c.English)
		}
		kind := "condition"
		if len(diag.Culprits) > 1 || !diag.Culprits[0].Alone {
			kind = "conditions"
		}
		diag.Text = fmt.Sprintf("The query returns nothing because no data satisfies the following %s: %s.",
			kind, strings.Join(parts, "; "))
	}
	return diag, nil
}

// isJoinPredicate reports column-to-column equality (a join edge).
func isJoinPredicate(e sqlparser.Expr) bool {
	b, ok := e.(*sqlparser.BinaryExpr)
	if !ok || b.Op != sqlparser.OpEq {
		return false
	}
	_, l := b.Left.(*sqlparser.ColumnRef)
	_, r := b.Right.(*sqlparser.ColumnRef)
	return l && r
}

// SizeContribution attributes result size to one relation.
type SizeContribution struct {
	Relation string
	Rows     int
	// Filtered is the fraction of the relation surviving its unary filters
	// (1.0 when unfiltered).
	Filtered float64
}

// LargeDiagnosis is the outcome of ExplainLarge.
type LargeDiagnosis struct {
	// Rows is the actual answer size.
	Rows int
	// Large reports whether Rows exceeded the threshold.
	Large bool
	// Contributions lists per-relation cardinalities, largest first.
	Contributions []SizeContribution
	// Text is the natural-language summary.
	Text string
}

// ExplainLarge explains why an answer is large (more rows than threshold):
// which relations contribute most rows and which filters barely restrict.
func (e *Explainer) ExplainLarge(sel *sqlparser.SelectStmt, threshold int) (*LargeDiagnosis, error) {
	res, err := e.ex.Select(sel)
	if err != nil {
		return nil, err
	}
	diag := &LargeDiagnosis{Rows: len(res.Rows), Large: len(res.Rows) > threshold}
	if !diag.Large {
		diag.Text = fmt.Sprintf("The query returns %s, within the threshold of %d.",
			lexicon.CountNoun(len(res.Rows), "row"), threshold)
		return diag, nil
	}

	g, err := querygraph.Build(sel, e.ex.Source().Schema())
	if err != nil {
		return nil, err
	}
	stats := e.ex.Source().Stats()

	// Per-box: relation size and unary-filter selectivity.
	for _, box := range g.Boxes {
		total := stats[strings.ToUpper(box.Relation)]
		if total == 0 {
			total = stats[box.Relation]
		}
		contrib := SizeContribution{Relation: box.Relation, Rows: total, Filtered: 1}
		if len(box.Where) > 0 && total > 0 {
			kept, err := e.countFiltered(box)
			if err == nil {
				contrib.Filtered = float64(kept) / float64(total)
			}
		}
		diag.Contributions = append(diag.Contributions, contrib)
	}
	sort.SliceStable(diag.Contributions, func(a, b int) bool {
		return diag.Contributions[a].Rows > diag.Contributions[b].Rows
	})

	var reasons []string
	for _, c := range diag.Contributions {
		switch {
		case c.Filtered >= 0.999:
			reasons = append(reasons, fmt.Sprintf("%s contributes all of its %s unrestricted",
				strings.ToLower(lexicon.Pluralize(c.Relation)), lexicon.CountNoun(c.Rows, "row")))
		case c.Filtered >= 0.5:
			reasons = append(reasons, fmt.Sprintf("the filter on %s keeps %d%% of its %d rows",
				strings.ToLower(c.Relation), int(c.Filtered*100), c.Rows))
		}
	}
	diag.Text = fmt.Sprintf("The query returns %d rows (threshold %d).", diag.Rows, threshold)
	if len(reasons) > 0 {
		diag.Text += " " + lexicon.Sentence("This is because "+lexicon.JoinAnd(reasons))
		diag.Text += " Consider adding a more selective condition."
	}
	return diag, nil
}

// PlanDiagnosis is the outcome of ExplainPlan: the executed plan, its
// English narration, and actionable cost feedback — the §3.1 "why is this
// query expensive" answer the engine could not give before it had a planner.
type PlanDiagnosis struct {
	// Plan is the executed plan with estimated and actual row counts.
	Plan *planner.Summary
	// Text narrates the plan in natural language.
	Text string
	// Tips repeats the plan's optimization suggestions.
	Tips []string
}

// ExplainPlan executes the query and narrates how it ran and what it cost.
func (e *Explainer) ExplainPlan(sel *sqlparser.SelectStmt) (*PlanDiagnosis, error) {
	_, plan, err := e.ex.SelectExplained(sel)
	if err != nil {
		return nil, err
	}
	s := plan.Summarize()
	return &PlanDiagnosis{
		Plan: s,
		Text: querytotext.PlanEnglish(s),
		Tips: s.Tips,
	}, nil
}

// countFiltered counts rows of one box's relation surviving its unary
// filters.
func (e *Explainer) countFiltered(box *querygraph.Box) (int, error) {
	src := fmt.Sprintf("select * from %s %s where %s",
		box.Relation, box.Alias, strings.Join(box.Where, " and "))
	r, err := e.ex.Query(src)
	if err != nil {
		return 0, err
	}
	return len(r.Rows), nil
}
