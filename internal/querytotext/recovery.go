// Recovery narration: the durability layer's RecoveryReport rendered as the
// same first-person English the system uses everywhere else ("DBMSs should
// talk back" applies to crashes too — a recovered server explains what it
// salvaged and what the crash took, instead of logging hex offsets).
package querytotext

import (
	"fmt"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/storage"
)

// RecoveryEnglish renders a durability recovery report as spoken English.
func RecoveryEnglish(r *storage.RecoveryReport) string {
	if r == nil {
		return ""
	}
	if r.Fresh {
		s := "I started a fresh durability log"
		if r.Rows > 0 {
			s += fmt.Sprintf(" and checkpointed the %s already loaded", lexicon.CountNoun(r.Rows, "row"))
		}
		return lexicon.Sentence(s)
	}

	var parts []string
	if r.CheckpointRows > 0 {
		parts = append(parts, fmt.Sprintf("restored %s from the last checkpoint", lexicon.CountNoun(r.CheckpointRows, "row")))
	}
	recovered := r.ReplayedBatches + r.SkippedBatches
	if recovered > 0 || r.LostBatches > 0 {
		total := recovered + r.LostBatches
		if r.LostBatches > 0 {
			parts = append(parts, fmt.Sprintf("replayed %d of the %s in the log%s",
				recovered, lexicon.CountNoun(total, "statement"), seqRange(r)))
		} else if r.ReplayedBatches > 0 {
			parts = append(parts, fmt.Sprintf("replayed %s from the log%s",
				lexicon.CountNoun(r.ReplayedBatches, "statement"), seqRange(r)))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "found an empty log and nothing to replay")
	}
	s := "I " + lexicon.JoinAnd(parts)
	if r.LastSeq > 0 {
		s += fmt.Sprintf(", which brings me to sequence %d", r.LastSeq)
	}

	if r.Clean() {
		return lexicon.Sentence(s) + " " + lexicon.Sentence("nothing was lost")
	}
	loss := fmt.Sprintf("the last %s torn by the crash (%s)",
		pluralVerb(r.LostBatches, lexicon.NumberWord(r.LostBatches), "was", "were"), r.TailReason)
	s = lexicon.Sentence(s + "; " + loss)
	if r.CorruptFile != "" {
		s += " " + lexicon.Sentence(fmt.Sprintf("I set the %s of damaged log aside in %s for inspection",
			lexicon.CountNoun(r.QuarantinedBytes, "byte"), r.CorruptFile))
	} else {
		// An unreadable tail (I/O error mid-read) has no recoverable bytes to
		// quarantine — do not name a sidecar that was never written.
		s += " " + lexicon.Sentence("the damaged tail could not be read back, so there was nothing to set aside")
	}
	return s
}

// seqRange renders the replayed sequence span (" (sequences 3 through 9)"),
// or the single sequence when one record replayed; empty when none did.
func seqRange(r *storage.RecoveryReport) string {
	if r.FirstSeq == 0 || r.LastSeq == 0 {
		return ""
	}
	if r.FirstSeq == r.LastSeq {
		return fmt.Sprintf(" (sequence %d)", r.FirstSeq)
	}
	return fmt.Sprintf(" (sequences %d through %d)", r.FirstSeq, r.LastSeq)
}

// pluralVerb renders "count was/were": "one was", "five were".
func pluralVerb(n int, count, singular, plural string) string {
	if n == 1 {
		return strings.TrimSpace(count + " " + singular)
	}
	return strings.TrimSpace(count + " " + plural)
}
