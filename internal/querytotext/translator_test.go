package querytotext

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/planner"
	"repro/internal/queryclassify"
	"repro/internal/querygraph"
	"repro/internal/sqlparser"
)

func movieTranslator(elaborate bool) *Translator {
	return New(dataset.MovieSchema(), MovieVerbs(), Options{Elaborate: elaborate})
}

func empTranslator() *Translator {
	return New(dataset.EmpDeptSchema(), EmpVerbs(), Options{})
}

func translate(t *testing.T, tr *Translator, label string) *Translation {
	t.Helper()
	out, err := tr.TranslateSQL(sqlparser.PaperQueries[label])
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return out
}

// TestPaperTranslations is the T1–T10 experiment family: every query quoted
// in the paper translates to (essentially) the paper's own English. The
// paper's phrasings are reproduced verbatim, modulo its typo in Q3
// ("pairs of actor").
func TestPaperTranslations(t *testing.T) {
	cases := []struct {
		label     string
		elaborate bool
		want      string
	}{
		{"Q0", false, "Find the names of employees who make more than their managers."},
		{"Q1", false, "Find the titles of movies where the actor Brad Pitt plays."},
		{"Q1", true, "Find movies where Brad Pitt plays."},
		{"Q2", false, "Find the actors and titles of action movies directed by G. Loucas."},
		{"Q3", false, "Find pairs of actors who have played in the same movie."},
		{"Q4", false, "Find movies whose title is one of their roles."},
		{"Q5", true, "Find movies where Brad Pitt plays."},
		{"Q6", false, "Find movies that have all genres."},
		{"Q7", false, "Find the number of actors in movies of more than one genre."},
		{"Q8", false, "Find actors whose movies are all in the same year."},
		{"Q9", false, "Find the actors who have played in the earliest versions of movies that have been repeated."},
	}
	for _, c := range cases {
		var tr *Translator
		if c.label == "Q0" {
			tr = empTranslator()
		} else {
			tr = movieTranslator(c.elaborate)
		}
		got := translate(t, tr, c.label)
		if got.Text != c.want {
			t.Errorf("%s (elaborate=%v):\n got: %q\nwant: %q", c.label, c.elaborate, got.Text, c.want)
		}
	}
}

func TestTranslationMetadata(t *testing.T) {
	tr := movieTranslator(false)
	q5 := translate(t, tr, "Q5")
	if q5.Class.Category != queryclassify.NonGraph {
		t.Errorf("Q5 class = %s", q5.Class.Category)
	}
	if len(q5.Notes) == 0 || !strings.Contains(strings.Join(q5.Notes, " "), "flattened") {
		t.Errorf("Q5 notes = %v", q5.Notes)
	}
	if !q5.Declarative {
		t.Error("Q5 should translate declaratively after unnesting")
	}
	q6 := translate(t, tr, "Q6")
	if !strings.Contains(strings.Join(q6.Notes, " "), "division") {
		t.Errorf("Q6 notes = %v", q6.Notes)
	}
}

// TestNaiveAblation reproduces the paper's observation that without
// non-local labels the Q3 rendering is "quite unnatural": the naive
// baseline mentions every tuple variable and every predicate.
func TestNaiveAblation(t *testing.T) {
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries["Q3"])
	if err != nil {
		t.Fatal(err)
	}
	tr := movieTranslator(false)
	g, err := buildGraph(sel, tr)
	if err != nil {
		t.Fatal(err)
	}
	naive := tr.TranslateNaive(sel, g)
	for _, want := range []string{"name of an actor", "such that", "is greater than"} {
		if !strings.Contains(naive, want) {
			t.Errorf("naive missing %q: %s", want, naive)
		}
	}
	// The idiom translation is dramatically shorter.
	idiom := translate(t, tr, "Q3")
	if len(idiom.Text) >= len(naive) {
		t.Errorf("idiom (%d chars) not shorter than naive (%d)", len(idiom.Text), len(naive))
	}
}

func TestProceduralQ7Variant(t *testing.T) {
	// Forcing the procedural path (by using a schema with no bridge
	// metadata is complex; instead check proceduralText directly).
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries["Q7"])
	if err != nil {
		t.Fatal(err)
	}
	tr := movieTranslator(false)
	g, err := buildGraph(sel, tr)
	if err != nil {
		t.Fatal(err)
	}
	text := tr.proceduralText(sel, g)
	for _, want := range []string{
		"Consider every combination", "Keep the combinations",
		"Group the combinations by", "Report",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("procedural missing %q:\n%s", want, text)
		}
	}
}

func TestProceduralNestedNotExists(t *testing.T) {
	// A NOT EXISTS query that is not division falls back to procedural.
	src := `select m.title from MOVIES m where not exists (
		select * from GENRE g where g.mid = m.id and g.genre = 'opera')`
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL(src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Declarative {
		t.Error("non-division NOT EXISTS should be procedural")
	}
	if !strings.Contains(out.Text, "Discard a combination if the following finds anything") {
		t.Errorf("procedural NOT EXISTS text: %s", out.Text)
	}
}

func TestSimpleGroupedAggregate(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("select g.genre, count(*) from GENRE g group by g.genre")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Declarative {
		t.Errorf("grouped count should be declarative: %v", out)
	}
	if !strings.Contains(out.Text, "number of genres per genre") {
		t.Errorf("text = %q", out.Text)
	}
}

func TestBareCount(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("select count(*) from MOVIES m where m.year > 2000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "number of movies") || !strings.Contains(out.Text, "greater than 2000") {
		t.Errorf("text = %q", out.Text)
	}
}

func TestGenericConstraintPhrases(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("select m.title from MOVIES m where m.year = 2005")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "movies whose year is 2005") {
		t.Errorf("text = %q", out.Text)
	}
	out2, err := tr.TranslateSQL("select m.title from MOVIES m where m.year >= 2000 and m.year <= 2005")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.Text, "whose year is at least 2000 and whose year is at most 2005") {
		t.Errorf("text = %q", out2.Text)
	}
}

func TestInsertTranslation(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("insert into MOVIES (id, title, year) values (7, 'Dune', 2021)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Insert one new movie", "title 'Dune'", "year 2021"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("insert text missing %q: %s", want, out.Text)
		}
	}
}

func TestInsertSelectTranslation(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("insert into MOVIES select * from MOVIES m where m.year = 1999")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "Add to movies every result") {
		t.Errorf("insert-select text: %s", out.Text)
	}
}

func TestUpdateTranslation(t *testing.T) {
	tr := empTranslator()
	out, err := tr.TranslateSQL("update EMP e set sal = sal * 2 where e.age > 40")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"For every employee", "the age is greater than 40", "set the salary"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("update text missing %q: %s", want, out.Text)
		}
	}
}

func TestDeleteTranslation(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("delete from MOVIES m where m.year < 1930")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "Delete the movies where") || !strings.Contains(out.Text, "less than 1930") {
		t.Errorf("delete text: %s", out.Text)
	}
	out2, err := tr.TranslateSQL("delete from GENRE")
	if err != nil {
		t.Fatal(err)
	}
	if out2.Text != "Delete all genres." {
		t.Errorf("unconditional delete: %s", out2.Text)
	}
}

func TestViewTranslation(t *testing.T) {
	tr := movieTranslator(true)
	out, err := tr.TranslateSQL("create view BRAD as select m.title from MOVIES m, CAST c, ACTOR a where m.id = c.mid and c.aid = a.id and a.name = 'Brad Pitt'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, `Define "BRAD" as a view`) ||
		!strings.Contains(out.Text, "Find movies where Brad Pitt plays") {
		t.Errorf("view text: %s", out.Text)
	}
}

func TestCreateTableTranslation(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("create table AWARDS (id INT NOT NULL, mid INT, category TEXT, PRIMARY KEY (id))")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Create a new collection of award records", "identified by its identifier"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("create text missing %q: %s", want, out.Text)
		}
	}
}

func TestIsNullAndBetweenEnglish(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("delete from DIRECTOR d where d.bdate is null")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "the birth date is unknown") {
		t.Errorf("is-null english: %s", out.Text)
	}
	out2, err := tr.TranslateSQL("delete from MOVIES m where m.year between 1990 and 1999")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.Text, "is between 1990 and 1999") {
		t.Errorf("between english: %s", out2.Text)
	}
}

func TestInListEnglish(t *testing.T) {
	tr := movieTranslator(false)
	out, err := tr.TranslateSQL("delete from GENRE g where g.genre in ('action', 'drama')")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "is one of 'action' or 'drama'") {
		t.Errorf("in-list english: %s", out.Text)
	}
}

func TestComparativeFallbackVerb(t *testing.T) {
	// Without a verb annotation the comparative idiom uses the generic
	// phrase.
	tr := New(dataset.EmpDeptSchema(), nil, Options{})
	out := translate(t, tr, "Q0")
	if !strings.Contains(out.Text, "have a higher salary than their managers") {
		t.Errorf("generic comparative: %s", out.Text)
	}
}

func TestUnknownStatement(t *testing.T) {
	tr := movieTranslator(false)
	if _, err := tr.TranslateSQL("not sql at all"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestOtherSchemaProfilesDoNotPanic(t *testing.T) {
	// A schema without verb annotations still translates everything.
	tr := New(dataset.MovieSchema(), nil, Options{})
	for _, label := range []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9"} {
		out, err := tr.TranslateSQL(sqlparser.PaperQueries[label])
		if err != nil {
			t.Errorf("%s: %v", label, err)
			continue
		}
		if out.Text == "" {
			t.Errorf("%s: empty translation", label)
		}
	}
}

// buildGraph is a test helper mirroring Translate's first step.
func buildGraph(sel *sqlparser.SelectStmt, tr *Translator) (*querygraph.Graph, error) {
	return querygraph.Build(sel, tr.schema)
}

func BenchmarkTranslateCorpus(b *testing.B) {
	movies := movieTranslator(false)
	emp := empTranslator()
	stmts := make([]*sqlparser.SelectStmt, 0, len(sqlparser.PaperQueryOrder))
	trs := make([]*Translator, 0, len(sqlparser.PaperQueryOrder))
	for _, label := range sqlparser.PaperQueryOrder {
		sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[label])
		if err != nil {
			b.Fatal(err)
		}
		stmts = append(stmts, sel)
		if label == "Q0" {
			trs = append(trs, emp)
		} else {
			trs = append(trs, movies)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(stmts)
		if _, err := trs[k].Translate(stmts[k]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslatePath(b *testing.B) {
	tr := movieTranslator(true)
	sel, _ := sqlparser.ParseSelect(sqlparser.PaperQueries["Q1"])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Translate(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOrderLimitDistinctRiders(t *testing.T) {
	tr := movieTranslator(true)
	out, err := tr.TranslateSQL("select distinct m.title from MOVIES m where m.year > 2000 order by m.year desc limit 5")
	if err != nil {
		t.Fatal(err)
	}
	want := "Find movies whose year is greater than 2000, without duplicates, sorted by year in descending order, keeping only the first five results."
	if out.Text != want {
		t.Errorf("got %q, want %q", out.Text, want)
	}
	out2, err := tr.TranslateSQL("select m.title from MOVIES m order by m.title")
	if err != nil {
		t.Fatal(err)
	}
	if out2.Text != "Find movies, sorted by title." {
		t.Errorf("got %q", out2.Text)
	}
	out3, err := tr.TranslateSQL("select m.title from MOVIES m limit 1")
	if err != nil {
		t.Fatal(err)
	}
	if out3.Text != "Find movies, keeping only the first result." {
		t.Errorf("got %q", out3.Text)
	}
}

// TestPlanEnglish narrates a structured plan summary, covering every access
// path phrasing plus residuals and tips.
func TestPlanEnglish(t *testing.T) {
	s := &planner.Summary{
		Fingerprint: "c:full scan{1}>m:primary-key join",
		EstRows:     2,
		EstCost:     2042.5,
		ActualRows:  3,
		Steps: []planner.StepSummary{
			{Alias: "c", Relation: "CAST", Access: "full scan", Filters: []string{"c.role = 'Neo'"},
				TableRows: 2000, EstRows: 1, EstCost: 2000, ActualRows: 3},
			{Alias: "m", Relation: "MOVIES", Access: "primary-key join", JoinKey: "m.id = c.mid",
				TableRows: 1000, EstRows: 1, EstCost: 42.5, ActualRows: 3},
		},
		Residual: []string{"m.id IN (SELECT g.mid FROM GENRE g)"},
		Tips:     []string{"an index on CAST(role) would turn the full scan of two thousand rows into a probe"},
	}
	text := PlanEnglish(s)
	for _, want := range []string{
		"The plan runs in two steps",
		"Step 1 scans all of CAST",
		"keeping rows where c.role = 'Neo'",
		"Step 2 looks up MOVIES (as m, 1000 rows) by primary key",
		"residual condition",
		"The query produced three rows.",
		"Tip: an index on CAST(role)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("narration missing %q:\n%s", want, text)
		}
	}
	fb := PlanEnglish(&planner.Summary{Fallback: true, Reason: "outer join", ActualRows: 5})
	if !strings.Contains(fb, "naive pipeline") || !strings.Contains(fb, "outer join") {
		t.Errorf("fallback narration = %q", fb)
	}
}

// TestPlanEnglishShape narrates the post-join shaping stages: aggregation,
// top-K, sort, and limit get their own sentences, and the produced-rows
// sentence reflects the final shaped count.
func TestPlanEnglishShape(t *testing.T) {
	s := &planner.Summary{
		Fingerprint: "g:full scan>agg{1,1}+having>topk{1,5}",
		EstRows:     5,
		EstCost:     100,
		ActualRows:  340,
		Steps: []planner.StepSummary{
			{Alias: "g", Relation: "GENRE", Access: "full scan", TableRows: 340, EstRows: 340, EstCost: 340, ActualRows: 340},
		},
		Shape: []planner.ShapeSummary{
			{Kind: "aggregate", Detail: "group by g.genre; COUNT(*); having COUNT(*) > 1", EstRows: 6.5, ActualRows: 17},
			{Kind: "top-k", Detail: "by COUNT(*) DESC, keeping 5", K: 5, EstRows: 5, ActualRows: 5},
		},
	}
	text := PlanEnglish(s)
	for _, want := range []string{
		"aggregated (group by g.genre; COUNT(*); having COUNT(*) > 1) into about 6.50 groups — 17 seen",
		"A bounded heap keeps only the top 5 rows",
		"The query produced five rows.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("narration missing %q:\n%s", want, text)
		}
	}
	s2 := &planner.Summary{
		Shape: []planner.ShapeSummary{
			{Kind: "sort", Detail: "by m.title", EstRows: 9, ActualRows: -1},
			{Kind: "limit", Detail: "first 3", K: 3, EstRows: 3, ActualRows: -1},
		},
		ActualRows: -1,
	}
	text2 := PlanEnglish(s2)
	for _, want := range []string{
		"The result is sorted by m.title.",
		"Output stops after the first three rows.",
	} {
		if !strings.Contains(text2, want) {
			t.Errorf("narration missing %q:\n%s", want, text2)
		}
	}
}

// TestPlanEnglishVecAggregate pins the narration of the vectorized
// aggregation shape: the morsel-parallel scan and the typed-accumulator
// aggregate each get a sentence, with the observed counts attached.
func TestPlanEnglishVecAggregate(t *testing.T) {
	s := &planner.Summary{
		Fingerprint: "m:full scan>g:hash join>pscan>vagg{1,3}+having",
		EstRows:     8,
		EstCost:     200000,
		ActualRows:  100000,
		Steps: []planner.StepSummary{
			{Alias: "m", Relation: "MOVIES", Access: "full scan", TableRows: 100000, EstRows: 100000, EstCost: 100000, ActualRows: 100000},
		},
		Shape: []planner.ShapeSummary{
			{Kind: "parallel-scan", Detail: "morsels of 4096 rows", K: 4096, EstRows: 100000, ActualRows: 100000},
			{Kind: "vec-aggregate", Detail: "group by g.genre; COUNT(*), AVG(m.year); having COUNT(*) > 10", EstRows: 8, ActualRows: 8},
		},
	}
	text := PlanEnglish(s)
	for _, want := range []string{
		"The base scan is split into morsels of 4096 rows that parallel workers claim from a shared cursor, each aggregating privately; the partial results merge in a fixed order, so the answer is identical at any worker count — 100000 seen.",
		"The rows are aggregated straight off the column vectors into typed per-group accumulators (group by g.genre; COUNT(*), AVG(m.year); having COUNT(*) > 10), about 8 groups, without materializing a joined row — 8 seen.",
		"The query produced eight rows.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("narration missing %q:\n%s", want, text)
		}
	}
}
