package querytotext

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/lexicon"
	"repro/internal/querygraph"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

// opEnglish renders a comparison operator as prose.
func opEnglish(op sqlparser.BinaryOp) string {
	switch op {
	case sqlparser.OpEq:
		return "is"
	case sqlparser.OpNe:
		return "is not"
	case sqlparser.OpLt:
		return "is less than"
	case sqlparser.OpLe:
		return "is at most"
	case sqlparser.OpGt:
		return "is greater than"
	case sqlparser.OpGe:
		return "is at least"
	case sqlparser.OpLike:
		return "matches"
	default:
		return op.String()
	}
}

// valueEnglish renders a literal for prose.
func valueEnglish(v value.Value) string {
	if v.Kind() == value.Text {
		return "'" + v.Text() + "'"
	}
	return v.Prose()
}

// refEnglish renders a column reference as "the <gloss> of the <concept>",
// resolving the relation through the query graph when possible.
func (t *Translator) refEnglish(c *sqlparser.ColumnRef, g *querygraph.Graph) string {
	rel := t.relationOfRef(c, g)
	gloss := lexicon.Humanize(c.Column)
	if rel != nil {
		if strings.EqualFold(relHeading(rel), c.Column) {
			return "the " + rel.Concept() + "'s " + gloss
		}
		return "the " + gloss + " of the " + rel.Concept()
	}
	return "the " + gloss
}

func relHeading(rel *catalog.Relation) string {
	if h := rel.Heading(); h != nil {
		return h.Name
	}
	return ""
}

func (t *Translator) relationOfRef(c *sqlparser.ColumnRef, g *querygraph.Graph) *catalog.Relation {
	if g == nil {
		return nil
	}
	for _, b := range g.Boxes {
		if strings.EqualFold(b.Alias, c.Table) || (c.Table == "" && t.schema.Relation(b.Relation) != nil &&
			t.schema.Relation(b.Relation).AttrIndex(c.Column) >= 0) {
			return t.schema.Relation(b.Relation)
		}
	}
	return nil
}

// PredicateEnglish renders a boolean expression as prose, used by the
// procedural fallback, DML translation, and the explain subsystem.
func (t *Translator) PredicateEnglish(e sqlparser.Expr, g *querygraph.Graph) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case sqlparser.OpAnd:
			return t.PredicateEnglish(x.Left, g) + " and " + t.PredicateEnglish(x.Right, g)
		case sqlparser.OpOr:
			return "either " + t.PredicateEnglish(x.Left, g) + " or " + t.PredicateEnglish(x.Right, g)
		}
		return t.operandEnglish(x.Left, g) + " " + opEnglish(x.Op) + " " + t.operandEnglish(x.Right, g)
	case *sqlparser.NotExpr:
		return "it is not the case that " + t.PredicateEnglish(x.Inner, g)
	case *sqlparser.IsNullExpr:
		if x.Negate {
			return t.operandEnglish(x.Inner, g) + " is known"
		}
		return t.operandEnglish(x.Inner, g) + " is unknown"
	case *sqlparser.BetweenExpr:
		not := ""
		if x.Negate {
			not = "not "
		}
		return t.operandEnglish(x.Subject, g) + " is " + not + "between " +
			t.operandEnglish(x.Lo, g) + " and " + t.operandEnglish(x.Hi, g)
	case *sqlparser.InExpr:
		not := ""
		if x.Negate {
			not = "not "
		}
		if x.Subquery != nil {
			return t.operandEnglish(x.Subject, g) + " is " + not + "among the results of a nested query"
		}
		var opts []string
		for _, it := range x.List {
			opts = append(opts, t.operandEnglish(it, g))
		}
		return t.operandEnglish(x.Subject, g) + " is " + not + "one of " + lexicon.JoinOr(opts)
	case *sqlparser.ExistsExpr:
		inner := "a matching row exists in a nested query"
		if len(x.Subquery.From) > 0 {
			rel := t.schema.Relation(x.Subquery.From[0].Relation)
			if rel != nil {
				inner = fmt.Sprintf("there is %s satisfying the nested condition", lexicon.WithArticle(rel.Concept()))
			}
		}
		if x.Negate {
			return "there is no case where " + inner
		}
		return inner
	case *sqlparser.QuantifiedExpr:
		q := "some"
		if x.All {
			q = "every"
		}
		return t.operandEnglish(x.Subject, g) + " " + opEnglish(x.Op) + " " + q + " value of the nested query"
	default:
		return e.SQL()
	}
}

func (t *Translator) operandEnglish(e sqlparser.Expr, g *querygraph.Graph) string {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return t.refEnglish(x, g)
	case *sqlparser.Literal:
		return valueEnglish(x.Value)
	case *sqlparser.AggregateExpr:
		if x.Arg == nil {
			return "the number of rows"
		}
		switch x.Func {
		case sqlparser.AggCount:
			d := ""
			if x.Distinct {
				d = "distinct "
			}
			return "the number of " + d + "values of " + t.operandEnglish(x.Arg, g)
		case sqlparser.AggSum:
			return "the total of " + t.operandEnglish(x.Arg, g)
		case sqlparser.AggAvg:
			return "the average of " + t.operandEnglish(x.Arg, g)
		case sqlparser.AggMin:
			return "the smallest " + t.operandEnglish(x.Arg, g)
		case sqlparser.AggMax:
			return "the largest " + t.operandEnglish(x.Arg, g)
		}
	case *sqlparser.SubqueryExpr:
		return "the result of a nested query"
	case *sqlparser.BinaryExpr:
		return t.operandEnglish(x.Left, g) + " " + x.Op.String() + " " + t.operandEnglish(x.Right, g)
	}
	return e.SQL()
}

// ---------------------------------------------------------------------------
// DML and view translation (§3.1: "the same can be said about all other
// commands a user may give to a database system")
// ---------------------------------------------------------------------------

// TranslateStatement translates any supported statement. SELECTs route to
// Translate; DML and views produce imperative narratives.
func (t *Translator) TranslateStatement(stmt sqlparser.Statement) (*Translation, error) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		return t.Translate(s)
	case *sqlparser.InsertStmt:
		return t.translateInsert(s)
	case *sqlparser.UpdateStmt:
		return t.translateUpdate(s)
	case *sqlparser.DeleteStmt:
		return t.translateDelete(s)
	case *sqlparser.CreateViewStmt:
		inner, err := t.Translate(s.Query)
		if err != nil {
			return nil, err
		}
		inner.Text = fmt.Sprintf("Define %q as a view over the following question: %s",
			s.Name, inner.Text)
		inner.Notes = append(inner.Notes, "view definition translated through its defining query")
		return inner, nil
	case *sqlparser.CreateTableStmt:
		return t.translateCreateTable(s)
	case *sqlparser.ExplainStmt:
		inner, err := t.Translate(s.Query)
		if err != nil {
			return nil, err
		}
		inner.Text = "Explain how the system answers the following question: " + inner.Text
		inner.Notes = append(inner.Notes, "plan explanation requested")
		return inner, nil
	default:
		return nil, fmt.Errorf("querytotext: unsupported statement %T", stmt)
	}
}

func (t *Translator) translateInsert(s *sqlparser.InsertStmt) (*Translation, error) {
	rel := t.schema.Relation(s.Relation)
	concept := strings.ToLower(s.Relation)
	if rel != nil {
		concept = rel.Concept()
	}
	if s.Query != nil {
		inner, err := t.Translate(s.Query)
		if err != nil {
			return nil, err
		}
		return &Translation{
			Text: fmt.Sprintf("Add to %s every result of the following question: %s",
				lexicon.Pluralize(concept), inner.Text),
		}, nil
	}
	var rows []string
	for _, row := range s.Rows {
		var fields []string
		for i, e := range row {
			name := ""
			if i < len(s.Columns) {
				name = lexicon.Humanize(s.Columns[i])
			} else if rel != nil && i < len(rel.Attributes) {
				name = lexicon.Humanize(rel.Attributes[i].Name)
			}
			if lit, ok := e.(*sqlparser.Literal); ok {
				fields = append(fields, fmt.Sprintf("%s %s", name, valueEnglish(lit.Value)))
			} else {
				fields = append(fields, fmt.Sprintf("%s %s", name, e.SQL()))
			}
		}
		rows = append(rows, "with "+lexicon.JoinAnd(fields))
	}
	text := fmt.Sprintf("Insert %s %s.", lexicon.CountNoun(len(s.Rows), "new "+concept), strings.Join(rows, "; "))
	return &Translation{Text: lexicon.Sentence(text)}, nil
}

func (t *Translator) translateUpdate(s *sqlparser.UpdateStmt) (*Translation, error) {
	rel := t.schema.Relation(s.Relation)
	concept := strings.ToLower(s.Relation)
	if rel != nil {
		concept = rel.Concept()
	}
	var sets []string
	for _, a := range s.Set {
		sets = append(sets, fmt.Sprintf("set the %s to %s",
			lexicon.Humanize(a.Column), t.operandEnglish(a.Value, nil)))
	}
	text := fmt.Sprintf("For every %s", concept)
	if s.Where != nil {
		text += " where " + t.PredicateEnglish(s.Where, nil)
	}
	text += ", " + lexicon.JoinAnd(sets)
	return &Translation{Text: lexicon.Sentence(text)}, nil
}

func (t *Translator) translateDelete(s *sqlparser.DeleteStmt) (*Translation, error) {
	rel := t.schema.Relation(s.Relation)
	concept := strings.ToLower(s.Relation)
	if rel != nil {
		concept = rel.Concept()
	}
	if s.Where == nil {
		return &Translation{Text: lexicon.Sentence(fmt.Sprintf("Delete all %s", lexicon.Pluralize(concept)))}, nil
	}
	return &Translation{Text: lexicon.Sentence(fmt.Sprintf("Delete the %s where %s",
		lexicon.Pluralize(concept), t.PredicateEnglish(s.Where, nil)))}, nil
}

func (t *Translator) translateCreateTable(s *sqlparser.CreateTableStmt) (*Translation, error) {
	concept := strings.ToLower(lexicon.Singularize(s.Name))
	var cols []string
	for _, c := range s.Columns {
		cols = append(cols, lexicon.Humanize(c.Name))
	}
	text := fmt.Sprintf("Create a new collection of %s records, each carrying %s",
		concept, lexicon.JoinAnd(cols))
	if len(s.PrimaryKey) > 0 {
		keys := make([]string, len(s.PrimaryKey))
		for i, k := range s.PrimaryKey {
			keys[i] = lexicon.Humanize(k)
		}
		text += fmt.Sprintf("; each record is identified by its %s", lexicon.JoinAnd(keys))
	}
	return &Translation{Text: lexicon.Sentence(text)}, nil
}
