// Package querytotext translates SQL queries into natural-language
// narratives (paper §3): path and subgraph queries translate by annotated
// traversal of the query graph; graph queries (multi-instance, cyclic) use
// non-local template labels over larger query parts; non-graph queries
// first try equivalence rewrites (IN-unnesting, division detection) and
// fall back to a procedural rendering; "impossible" queries translate
// through higher-order idiom recognition (same-value, extreme).
package querytotext

import (
	"fmt"
	"strings"
)

// Verb is a non-local template label (§3.3.3: "whole parts of the query
// graph be translated into individual phrases ... assigning them to larger
// schema/query parts"): it tells the translator how a relationship between
// two relations reads in English.
type Verb struct {
	// From and To name the related relations (From modifies To).
	From, To string
	// Where renders a restrictive clause on To from a named From entity:
	// "where %s plays" → "movies where Brad Pitt plays".
	Where string
	// By renders a passive participle phrase: "directed by %s".
	By string
	// Participle is the past participle for pair idioms: "played in".
	Participle string
	// Adjective marks relations whose heading value modifies To directly:
	// GENRE 'action' → "action movies".
	Adjective bool
	// CompareMore / CompareLess phrase attribute comparisons for the
	// comparative idiom keyed by attribute (see ComparativeVerb).
	CompareMore, CompareLess string
	// Attr restricts CompareMore/CompareLess to one attribute ("sal").
	Attr string
}

// key normalizes a relation pair.
func verbKey(from, to string) string {
	return strings.ToUpper(from) + "->" + strings.ToUpper(to)
}

// VerbSet indexes verbs by relation pair.
type VerbSet struct {
	byPair map[string]Verb
}

// NewVerbSet builds an index over the given verbs.
func NewVerbSet(verbs ...Verb) *VerbSet {
	vs := &VerbSet{byPair: make(map[string]Verb, len(verbs))}
	for _, v := range verbs {
		vs.byPair[verbKey(v.From, v.To)] = v
	}
	return vs
}

// Lookup returns the verb for a relation pair.
func (vs *VerbSet) Lookup(from, to string) (Verb, bool) {
	if vs == nil {
		return Verb{}, false
	}
	v, ok := vs.byPair[verbKey(from, to)]
	return v, ok
}

// ComparativeVerb returns the phrase for "X.attr > Y.attr" relations, e.g.
// EMP.sal → "make more than". Falls back to a generic comparison phrase
// built from the attribute gloss.
func (vs *VerbSet) ComparativeVerb(rel, attr, gloss string, greater bool) string {
	if vs != nil {
		for _, v := range vs.byPair {
			if strings.EqualFold(v.From, rel) && strings.EqualFold(v.Attr, attr) {
				if greater && v.CompareMore != "" {
					return v.CompareMore
				}
				if !greater && v.CompareLess != "" {
					return v.CompareLess
				}
			}
		}
	}
	if greater {
		return fmt.Sprintf("have a higher %s than", gloss)
	}
	return fmt.Sprintf("have a lower %s than", gloss)
}

// MovieVerbs is the verb annotation set for the Fig. 1 movie schema,
// reproducing the paper's phrasings.
func MovieVerbs() *VerbSet {
	return NewVerbSet(
		Verb{From: "ACTOR", To: "MOVIES", Where: "where %s plays", Participle: "played in"},
		Verb{From: "DIRECTOR", To: "MOVIES", By: "directed by %s", Participle: "directed"},
		Verb{From: "GENRE", To: "MOVIES", Adjective: true},
		Verb{From: "CAST", To: "MOVIES", Where: "where %s appears", Participle: "appeared in"},
	)
}

// EmpVerbs is the verb annotation set for the EMP/DEPT schema.
func EmpVerbs() *VerbSet {
	return NewVerbSet(
		Verb{From: "EMP", To: "EMP", Attr: "sal", CompareMore: "make more than", CompareLess: "make less than"},
		Verb{From: "EMP", To: "DEPT", Where: "where %s works", Participle: "worked in"},
		Verb{From: "DEPT", To: "EMP", By: "managed by %s"},
	)
}
