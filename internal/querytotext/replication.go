// Replication narration: a follower explains its role the same way the rest
// of the system explains itself — first person, plain English. The paper's
// "DBMSs should talk back" applies to topology too: a replica should say it
// is a replica, how far behind it stands, and — when it stops — why.
package querytotext

import (
	"fmt"

	"repro/internal/lexicon"
	"repro/internal/storage"
)

// FollowerSnapshotEnglish is the snapshot postscript a follower attaches to
// answers in place of the primary's "Answered from snapshot @N".
func FollowerSnapshotEnglish(seq, lag uint64) string {
	if lag == 0 {
		return fmt.Sprintf("Answered by a follower at snapshot @%d, fully caught up with the primary.", seq)
	}
	return fmt.Sprintf("Answered by a follower at snapshot @%d, %s behind the primary.",
		seq, lexicon.CountNoun(int(lag), "statement"))
}

// FollowerLagEnglish narrates a read refused because the follower's lag
// exceeds the staleness bound the operator configured.
func FollowerLagEnglish(lag, maxLag uint64) string {
	return lexicon.Sentence(fmt.Sprintf(
		"I am a follower running %s behind the primary, more than the %s of staleness I am allowed to serve",
		lexicon.CountNoun(int(lag), "statement"), lexicon.CountNoun(int(maxLag), "statement"))) +
		" " + lexicon.Sentence("ask the primary, or ask me again once I catch up")
}

// QuarantineEnglish narrates a latched replication quarantine: the follower
// names the sequence it stopped at, the cause, and what it still serves.
func QuarantineEnglish(seq uint64, reason string) string {
	return lexicon.Sentence(fmt.Sprintf("I stopped replicating at sequence %d: %s", seq, reason)) +
		" " + lexicon.Sentence("I am still serving my last consistent snapshot, "+
		"but it will not advance until an operator rebuilds me from the primary")
}

// ReadOnlyEnglish narrates a write refused by a read-only follower.
func ReadOnlyEnglish() string {
	return lexicon.Sentence("I am a read-only follower, so I cannot change data") +
		" " + lexicon.Sentence("send writes to the primary and they will reach me through its log")
}

// CatchupEnglish narrates what the current replication session has shipped,
// reusing the recovery report's sequence-range vocabulary: catching up from
// a primary and replaying a log after a crash are the same story.
func CatchupEnglish(r *storage.RecoveryReport) string {
	if r == nil || (r.CheckpointRows == 0 && r.ReplayedBatches == 0) {
		return lexicon.Sentence("the primary has shipped me nothing yet this session")
	}
	var parts []string
	if r.CheckpointRows > 0 {
		parts = append(parts, fmt.Sprintf("re-seeded %s from the primary's checkpoint",
			lexicon.CountNoun(r.CheckpointRows, "row")))
	}
	if r.ReplayedBatches > 0 {
		parts = append(parts, fmt.Sprintf("applied %s%s",
			lexicon.CountNoun(r.ReplayedBatches, "statement"), seqRange(r)))
	}
	s := "this session I " + lexicon.JoinAnd(parts)
	if r.LastSeq > 0 {
		s += fmt.Sprintf(", which brings me to sequence %d", r.LastSeq)
	}
	return lexicon.Sentence(s)
}
