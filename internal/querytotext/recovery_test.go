package querytotext

import (
	"testing"

	"repro/internal/storage"
)

func TestRecoveryEnglish(t *testing.T) {
	cases := []struct {
		name   string
		report *storage.RecoveryReport
		want   string
	}{
		{"nil", nil, ""},
		{
			"fresh empty",
			&storage.RecoveryReport{Fresh: true},
			"I started a fresh durability log.",
		},
		{
			"fresh adopting rows",
			&storage.RecoveryReport{Fresh: true, Rows: 57},
			"I started a fresh durability log and checkpointed the fifty-seven rows already loaded.",
		},
		{
			"clean checkpoint plus replay",
			&storage.RecoveryReport{CheckpointRows: 120, ReplayedBatches: 4},
			"I restored 120 rows from the last checkpoint and replayed four statements from the log. Nothing was lost.",
		},
		{
			"clean replay with sequence range",
			&storage.RecoveryReport{CheckpointRows: 120, CheckpointSeq: 8, ReplayedBatches: 4, FirstSeq: 9, LastSeq: 12},
			"I restored 120 rows from the last checkpoint and replayed four statements from the log " +
				"(sequences 9 through 12), which brings me to sequence 12. Nothing was lost.",
		},
		{
			"single replayed sequence",
			&storage.RecoveryReport{ReplayedBatches: 1, FirstSeq: 5, LastSeq: 5},
			"I replayed one statement from the log (sequence 5), which brings me to sequence 5. Nothing was lost.",
		},
		{
			"checkpoint only carries its floor",
			&storage.RecoveryReport{CheckpointRows: 10, CheckpointSeq: 7, LastSeq: 7},
			"I restored ten rows from the last checkpoint, which brings me to sequence 7. Nothing was lost.",
		},
		{
			"clean empty log",
			&storage.RecoveryReport{},
			"I found an empty log and nothing to replay. Nothing was lost.",
		},
		{
			"torn tail",
			&storage.RecoveryReport{
				ReplayedBatches:  14202,
				LostBatches:      5,
				TailReason:       "truncated record",
				QuarantinedBytes: 37,
				CorruptFile:      "wal.corrupt",
			},
			"I replayed 14202 of the 14207 statements in the log; the last five were torn by the crash (truncated record). " +
				"I set the thirty-seven bytes of damaged log aside in wal.corrupt for inspection.",
		},
		{
			"unreadable tail with nothing to quarantine",
			&storage.RecoveryReport{
				ReplayedBatches: 5,
				LostBatches:     1,
				TailReason:      "unreadable log tail: injected short read",
			},
			"I replayed 5 of the six statements in the log; the last one was torn by the crash " +
				"(unreadable log tail: injected short read). " +
				"The damaged tail could not be read back, so there was nothing to set aside.",
		},
		{
			"single lost statement",
			&storage.RecoveryReport{
				CheckpointRows:   10,
				ReplayedBatches:  2,
				SkippedBatches:   1,
				LostBatches:      1,
				TailReason:       "checksum mismatch",
				QuarantinedBytes: 1,
				CorruptFile:      "wal.corrupt",
			},
			"I restored ten rows from the last checkpoint and replayed 3 of the four statements in the log; " +
				"the last one was torn by the crash (checksum mismatch). " +
				"I set the one byte of damaged log aside in wal.corrupt for inspection.",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := RecoveryEnglish(tc.report); got != tc.want {
				t.Errorf("got:  %q\nwant: %q", got, tc.want)
			}
		})
	}
}
