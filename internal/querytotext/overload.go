// Overload narration: deadline, quota, and admission-control outcomes
// rendered as the same first-person English the system uses everywhere else.
// A server under pressure should say what it stopped, how far the work got,
// and what the caller can do — not just emit a status code.
package querytotext

import (
	"fmt"
	"time"

	"repro/internal/budget"
	"repro/internal/lexicon"
)

// CancelEnglish renders a budget cancellation as spoken English: what
// stopped the query, how far it had got ("it had scanned 3 of 12 million
// rows"), and a tip for the retry.
func CancelEnglish(e *budget.CancelError) string {
	if e == nil {
		return ""
	}
	var why, tip string
	switch e.Cause {
	case budget.CauseDeadline:
		why = fmt.Sprintf("I stopped this query after %s — it ran past the request deadline", englishElapsed(e.Elapsed))
		tip = "Narrow the predicate or raise the deadline and ask again"
	case budget.CauseCancelled:
		why = fmt.Sprintf("I stopped this query after %s because the request was cancelled", englishElapsed(e.Elapsed))
	case budget.CauseRowQuota:
		why = fmt.Sprintf("I stopped this query after %s — it went past its quota of %s examined",
			englishElapsed(e.Elapsed), countRows(e.Limit))
		tip = "Narrow the predicate so the plan touches fewer rows"
	case budget.CauseMemQuota:
		why = fmt.Sprintf("I stopped this query after %s — its results grew past the %s memory quota",
			englishElapsed(e.Elapsed), lexicon.CountNoun(int(e.Limit), "byte"))
		tip = "Select fewer columns or add a more selective filter"
	case budget.CauseWALStall:
		why = fmt.Sprintf("I stopped this statement after %s because the write-ahead log stalled mid-sync; "+
			"its record's fate on disk is unknown, so I am rejecting writes until restart", englishElapsed(e.Elapsed))
		tip = "Check the data disk, then restart to recover from the log"
	default:
		why = fmt.Sprintf("I stopped this query after %s", englishElapsed(e.Elapsed))
	}
	s := why
	switch {
	case e.Rows > 0 && e.TotalRows > 0:
		s += fmt.Sprintf(" — it had scanned %s of %s rows", englishCount(e.Rows), englishCount(e.TotalRows))
	case e.Rows > 0:
		s += fmt.Sprintf(" — it had scanned %s", countRows(e.Rows))
	}
	s = lexicon.Sentence(s)
	if tip != "" {
		s += " " + lexicon.Sentence(tip)
	}
	return s
}

// OverloadEnglish renders an admission-control shed as spoken English.
// running/waiting/limit describe the valve at the decision; waited is how
// long the request queued (zero when it never got a queue slot); timedOut
// distinguishes a queue-wait deadline from an instant shed.
func OverloadEnglish(running, waiting, limit int, waited time.Duration, timedOut bool) string {
	load := fmt.Sprintf("%s already running against a limit of %d",
		lexicon.CountNoun(running, "query"), limit)
	if waiting > 0 {
		load += fmt.Sprintf(" and %s waiting", lexicon.NumberWord(waiting))
	}
	var s string
	if timedOut {
		s = fmt.Sprintf("I had to give up on this request — it waited %s in the admission queue with %s, "+
			"and its deadline expired before a slot freed", englishElapsed(waited), load)
	} else {
		be := "are"
		if running == 1 && waiting == 0 {
			be = "is"
		}
		s = fmt.Sprintf("I turned this request away before running it — there %s %s, and the wait queue is full", be, load)
	}
	return lexicon.Sentence(s) + " " + lexicon.Sentence("Please retry in a moment")
}

// BodyLimitEnglish renders a request-body-too-large refusal.
func BodyLimitEnglish(limit int64) string {
	return lexicon.Sentence(fmt.Sprintf(
		"I refused to read this request — its body is larger than the %s I accept", countBytes(limit))) +
		" " + lexicon.Sentence("Send a shorter statement")
}

// englishElapsed renders a duration at narration precision ("2.0s", "150ms").
func englishElapsed(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return d.String()
	}
}

// englishCount renders large row counts the way people say them
// ("12 million", "3.4 million"), and small ones as digits.
func englishCount(n int64) string {
	if n >= 1_000_000 {
		if n%1_000_000 == 0 {
			return fmt.Sprintf("%d million", n/1_000_000)
		}
		return fmt.Sprintf("%.1f million", float64(n)/1e6)
	}
	return fmt.Sprintf("%d", n)
}

func countRows(n int64) string {
	if n == 1 {
		return "one row"
	}
	return englishCount(n) + " rows"
}

func countBytes(n int64) string {
	if n == 1 {
		return "one byte"
	}
	return englishCount(n) + " bytes"
}
