package querytotext

import (
	"testing"

	"repro/internal/storage"
)

func TestReplicationEnglish(t *testing.T) {
	cases := []struct{ name, got, want string }{
		{
			"follower caught up",
			FollowerSnapshotEnglish(12, 0),
			"Answered by a follower at snapshot @12, fully caught up with the primary.",
		},
		{
			"follower behind",
			FollowerSnapshotEnglish(12, 3),
			"Answered by a follower at snapshot @12, three statements behind the primary.",
		},
		{
			"follower one behind",
			FollowerSnapshotEnglish(7, 1),
			"Answered by a follower at snapshot @7, one statement behind the primary.",
		},
		{
			"lag bound exceeded",
			FollowerLagEnglish(12, 5),
			"I am a follower running twelve statements behind the primary, more than the five statements " +
				"of staleness I am allowed to serve. Ask the primary, or ask me again once I catch up.",
		},
		{
			"quarantine",
			QuarantineEnglish(4, "sequence gap: record 9 arrived while I stood at 4"),
			"I stopped replicating at sequence 4: sequence gap: record 9 arrived while I stood at 4. " +
				"I am still serving my last consistent snapshot, but it will not advance until an operator " +
				"rebuilds me from the primary.",
		},
		{
			"read-only refusal",
			ReadOnlyEnglish(),
			"I am a read-only follower, so I cannot change data. " +
				"Send writes to the primary and they will reach me through its log.",
		},
		{
			"catch-up with checkpoint and records",
			CatchupEnglish(&storage.RecoveryReport{
				CheckpointRows: 40, CheckpointSeq: 3,
				ReplayedBatches: 5, FirstSeq: 4, LastSeq: 8,
			}),
			"This session I re-seeded forty rows from the primary's checkpoint and applied five statements " +
				"(sequences 4 through 8), which brings me to sequence 8.",
		},
		{
			"catch-up records only",
			CatchupEnglish(&storage.RecoveryReport{ReplayedBatches: 1, FirstSeq: 6, LastSeq: 6}),
			"This session I applied one statement (sequence 6), which brings me to sequence 6.",
		},
		{
			"catch-up empty",
			CatchupEnglish(&storage.RecoveryReport{}),
			"The primary has shipped me nothing yet this session.",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Errorf("got:  %q\nwant: %q", tc.got, tc.want)
			}
		})
	}
}
