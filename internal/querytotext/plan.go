package querytotext

import (
	"fmt"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/planner"
)

// PlanEnglish narrates an execution plan — the paper's "talking back" applied
// to the optimizer itself. It states how each step accesses its relation,
// what was expected versus observed, where the cost concentrates, and what
// would make the query cheaper.
func PlanEnglish(s *planner.Summary) string {
	if s == nil {
		return ""
	}
	if s.Fallback {
		text := lexicon.Sentence(fmt.Sprintf(
			"The query runs on the naive pipeline because the planner cannot handle it (%s)", s.Reason))
		if s.ActualRows >= 0 {
			text += " " + lexicon.Sentence(fmt.Sprintf("It produced %s", lexicon.CountNoun(s.ActualRows, "row")))
		}
		return text
	}

	var sentences []string
	sentences = append(sentences, lexicon.Sentence(fmt.Sprintf(
		"The plan runs in %s with an estimated cost of %s units",
		lexicon.CountNoun(len(s.Steps), "step"), formatCount(s.EstCost))))

	for i, st := range s.Steps {
		var b strings.Builder
		fmt.Fprintf(&b, "Step %d ", i+1)
		target := fmt.Sprintf("%s (as %s, %s)", st.Relation, st.Alias, lexicon.CountNoun(st.TableRows, "row"))
		switch st.Access {
		case "full scan":
			b.WriteString("scans all of " + target)
		case "primary-key probe":
			b.WriteString("fetches one row of " + target + " by primary key")
		case "index probe":
			fmt.Fprintf(&b, "probes the %s index of %s", st.Index, target)
		case "hash join":
			fmt.Fprintf(&b, "hashes %s and probes it with %s", target, st.JoinKey)
		case "primary-key join":
			fmt.Fprintf(&b, "looks up %s by primary key for each row so far, using %s", target, st.JoinKey)
		case "index join":
			fmt.Fprintf(&b, "probes the %s index of %s for each row so far, using %s", st.Index, target, st.JoinKey)
		default: // nested loop
			b.WriteString("pairs every row so far with every row of " + target)
		}
		if len(st.Filters) > 0 {
			b.WriteString(", keeping rows where " + strings.Join(st.Filters, " and "))
		}
		if st.ActualRows >= 0 {
			fmt.Fprintf(&b, " — about %s expected, %d seen", formatCount(st.EstRows), st.ActualRows)
		} else {
			fmt.Fprintf(&b, " — about %s expected", formatCount(st.EstRows))
		}
		sentences = append(sentences, lexicon.Sentence(b.String()))
	}

	if len(s.Residual) > 0 {
		sentences = append(sentences, lexicon.Sentence(fmt.Sprintf(
			"After the joins, %s run per row: %s",
			lexicon.CountNoun(len(s.Residual), "residual condition"),
			strings.Join(s.Residual, "; "))))
	}
	for _, sh := range s.Shape {
		var b strings.Builder
		switch sh.Kind {
		case "aggregate":
			fmt.Fprintf(&b, "The rows are then aggregated (%s) into about %s groups", sh.Detail, formatCount(sh.EstRows))
		case "vec-aggregate":
			fmt.Fprintf(&b, "The rows are aggregated straight off the column vectors into typed per-group accumulators (%s), about %s groups, without materializing a joined row", sh.Detail, formatCount(sh.EstRows))
		case "parallel-scan":
			fmt.Fprintf(&b, "The base scan is split into %s that parallel workers claim from a shared cursor, each aggregating privately; the partial results merge in a fixed order, so the answer is identical at any worker count", sh.Detail)
		case "zone-skip":
			if sh.ActualRows >= 0 {
				fmt.Fprintf(&b, "The scan consulted %s and skipped %d of %d morsels whose min/max bounds disproved the filters without touching their payloads", sh.Detail, sh.ActualRows, sh.K)
			} else {
				fmt.Fprintf(&b, "The scan consults %s, skipping any of its %d morsels whose min/max bounds disprove the filters", sh.Detail, sh.K)
			}
			sentences = append(sentences, lexicon.Sentence(b.String()))
			continue
		case "sort":
			fmt.Fprintf(&b, "The result is sorted %s", sh.Detail)
		case "top-k":
			fmt.Fprintf(&b, "A bounded heap keeps only the top %d rows (%s) instead of sorting everything", sh.K, sh.Detail)
		case "limit":
			fmt.Fprintf(&b, "Output stops after the first %s", lexicon.CountNoun(sh.K, "row"))
		default:
			continue
		}
		if sh.ActualRows >= 0 {
			fmt.Fprintf(&b, " — %d seen", sh.ActualRows)
		}
		sentences = append(sentences, lexicon.Sentence(b.String()))
	}
	produced := s.ActualRows
	for i := len(s.Shape) - 1; i >= 0; i-- {
		sh := s.Shape[i]
		if sh.Kind == "zone-skip" || sh.Kind == "parallel-scan" {
			continue // scan bookkeeping, not an output stage
		}
		if sh.ActualRows >= 0 {
			produced = sh.ActualRows // shaping decides the final count
		}
		break
	}
	if produced >= 0 {
		sentences = append(sentences, lexicon.Sentence(fmt.Sprintf(
			"The query produced %s", lexicon.CountNoun(produced, "row"))))
	}
	for _, tip := range s.Tips {
		sentences = append(sentences, lexicon.Sentence("Tip: "+tip))
	}
	return strings.Join(sentences, " ")
}

// formatCount renders an estimate compactly: integers plainly, fractions
// with two decimals.
func formatCount(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.2f", f)
}
