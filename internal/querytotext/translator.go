package querytotext

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/lexicon"
	"repro/internal/queryclassify"
	"repro/internal/querygraph"
	"repro/internal/rewrite"
	"repro/internal/sqlparser"
)

// Options tunes translation.
type Options struct {
	// Elaborate enables the paper's "more elaborated translation
	// techniques": heading attributes replaced by the conceptual meaning of
	// the relation ("Find movies where Brad Pitt plays" instead of "Find
	// the titles of movies where the actor Brad Pitt plays").
	Elaborate bool
}

// Translation is the result of translating one statement.
type Translation struct {
	// Text is the narrative.
	Text string
	// Class is the query's difficulty classification (empty for DML).
	Class queryclassify.Result
	// Declarative reports whether the narrative states what the answer
	// satisfies (true) or the steps to compute it (false) — the paper's
	// declarative/procedural distinction.
	Declarative bool
	// Notes records rewrites and idioms applied on the way.
	Notes []string
}

// Translator translates queries posed against one schema.
type Translator struct {
	schema *catalog.Schema
	verbs  *VerbSet
	opts   Options
}

// New builds a translator. verbs may be nil (generic phrasings only).
func New(schema *catalog.Schema, verbs *VerbSet, opts Options) *Translator {
	return &Translator{schema: schema, verbs: verbs, opts: opts}
}

// TranslateSQL parses and translates one statement.
func (t *Translator) TranslateSQL(src string) (*Translation, error) {
	stmt, err := sqlparser.Parse(src)
	if err != nil {
		return nil, err
	}
	return t.TranslateStatement(stmt)
}

// Translate translates a SELECT statement by classification-directed
// strategy dispatch.
func (t *Translator) Translate(sel *sqlparser.SelectStmt) (*Translation, error) {
	g, err := querygraph.Build(sel, t.schema)
	if err != nil {
		return nil, err
	}
	cls := queryclassify.Classify(g)

	var tr *Translation
	switch cls.Category {
	case queryclassify.Impossible:
		tr, err = t.translateImpossible(sel, g, cls)
	case queryclassify.NonGraph:
		if cls.Subtype == queryclassify.Aggregate {
			tr, err = t.translateAggregate(sel, g, cls)
		} else {
			tr, err = t.translateNested(sel, g, cls)
		}
	case queryclassify.Graph:
		tr, err = t.translateGraph(sel, g, cls)
	default: // Path, Subgraph
		text := t.translateSPJ(sel, g)
		tr = &Translation{Text: text, Declarative: true}
	}
	if err != nil {
		return nil, err
	}
	tr.Class = cls
	return tr, nil
}

// ---------------------------------------------------------------------------
// Path / Subgraph translation (§3.3.1–3.3.2)
// ---------------------------------------------------------------------------

// translateSPJ renders an SPJ query whose graph lies on the schema graph:
// "Find <projections> of <anchor noun phrase with modifiers>", plus
// ORDER BY / LIMIT / DISTINCT riders.
func (t *Translator) translateSPJ(sel *sqlparser.SelectStmt, g *querygraph.Graph) string {
	anchor := t.pickAnchor(g)
	np := t.anchorNounPhrase(g, anchor)
	head := t.projectionPhrase(sel, g, anchor, np)
	if sel.Distinct {
		head += ", without duplicates"
	}
	head += t.orderLimitRider(sel)
	return lexicon.Sentence("Find " + head)
}

// orderLimitRider phrases ORDER BY and LIMIT clauses: ", sorted by year
// from newest to oldest, keeping only the first ten".
func (t *Translator) orderLimitRider(sel *sqlparser.SelectStmt) string {
	var rider string
	if len(sel.OrderBy) > 0 {
		var keys []string
		for _, o := range sel.OrderBy {
			key := o.Expr.SQL()
			if c, ok := o.Expr.(*sqlparser.ColumnRef); ok {
				key = lexicon.Humanize(c.Column)
			}
			if o.Desc {
				key += " in descending order"
			}
			keys = append(keys, key)
		}
		rider += ", sorted by " + lexicon.JoinAnd(keys)
	}
	switch {
	case sel.Limit == 1:
		rider += ", keeping only the first result"
	case sel.Limit >= 0:
		rider += ", keeping only the first " + lexicon.CountNoun(sel.Limit, "result")
	}
	return rider
}

// pickAnchor selects the relation the sentence is about: the projected box
// with the highest join degree, falling back to the highest-degree box.
func (t *Translator) pickAnchor(g *querygraph.Graph) *querygraph.Box {
	deg := map[string]int{}
	for _, j := range g.Joins {
		deg[strings.ToLower(j.From)]++
		deg[strings.ToLower(j.To)]++
	}
	var best *querygraph.Box
	bestDeg := -1
	for _, b := range g.Boxes {
		if len(b.Select) == 0 {
			continue
		}
		if d := deg[strings.ToLower(b.Alias)]; d > bestDeg {
			best, bestDeg = b, d
		}
	}
	if best != nil {
		return best
	}
	for _, b := range g.Boxes {
		if d := deg[strings.ToLower(b.Alias)]; d > bestDeg {
			best, bestDeg = b, d
		}
	}
	if best == nil && len(g.Boxes) > 0 {
		return g.Boxes[0]
	}
	return best
}

// anchorNounPhrase builds "<adjectives> <anchor concept plural> <by-phrases>
// <where-clauses> <generic constraints>" from the non-anchor boxes' unary
// constraints and the verb annotations.
func (t *Translator) anchorNounPhrase(g *querygraph.Graph, anchor *querygraph.Box) string {
	anchorRel := t.schema.Relation(anchor.Relation)
	base := lexicon.Pluralize(conceptOf(anchorRel, anchor.Relation))

	var adjectives, byPhrases, whereClauses, ofPhrases, generic []string
	for _, b := range g.Boxes {
		if b == anchor {
			continue
		}
		rel := t.schema.Relation(b.Relation)
		for _, cond := range b.Where {
			attr, val, eq := parseEqualityConst(cond)
			verb, hasVerb := t.verbs.Lookup(b.Relation, anchor.Relation)
			isHeading := rel != nil && strings.EqualFold(relHeading(rel), attr)
			switch {
			case eq && isHeading && hasVerb && verb.Adjective:
				adjectives = append(adjectives, val)
			case eq && isHeading && hasVerb && verb.By != "":
				byPhrases = append(byPhrases, fmt.Sprintf(verb.By, val))
			case eq && isHeading && hasVerb && verb.Where != "":
				subject := val
				if !t.opts.Elaborate {
					subject = "the " + conceptOf(rel, b.Relation) + " " + val
				}
				whereClauses = append(whereClauses, fmt.Sprintf(verb.Where, subject))
			case eq && isHeading:
				// No verb label: name the entity through its concept —
				// "directors of the movie 'Match Point'".
				ofPhrases = append(ofPhrases, "of the "+conceptOf(rel, b.Relation)+" '"+val+"'")
			default:
				generic = append(generic, t.constraintEnglish(cond, rel, b))
			}
		}
	}
	// Anchor's own unary constraints.
	for _, cond := range anchor.Where {
		generic = append(generic, t.constraintEnglish(cond, anchorRel, anchor))
	}

	var np strings.Builder
	if len(adjectives) > 0 {
		np.WriteString(strings.Join(adjectives, " "))
		np.WriteByte(' ')
	}
	np.WriteString(base)
	for _, p := range ofPhrases {
		np.WriteByte(' ')
		np.WriteString(p)
	}
	for _, p := range byPhrases {
		np.WriteByte(' ')
		np.WriteString(p)
	}
	for _, p := range whereClauses {
		np.WriteByte(' ')
		np.WriteString(p)
	}
	for i, p := range generic {
		if i == 0 {
			np.WriteString(" whose ")
		} else {
			np.WriteString(" and whose ")
		}
		np.WriteString(p)
	}
	return np.String()
}

// constraintEnglish renders one unary constraint as a "whose ..." fragment:
// "year is 2005".
func (t *Translator) constraintEnglish(cond string, rel *catalog.Relation, box *querygraph.Box) string {
	e, err := parsePredicate(cond)
	if err != nil {
		return cond
	}
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op.IsComparison() {
		if c, ok := b.Left.(*sqlparser.ColumnRef); ok {
			gloss := lexicon.Humanize(c.Column)
			if lit, ok := b.Right.(*sqlparser.Literal); ok {
				return gloss + " " + opEnglish(b.Op) + " " + valueEnglish(lit.Value)
			}
			return gloss + " " + opEnglish(b.Op) + " " + b.Right.SQL()
		}
	}
	return cond
}

// parsePredicate re-parses a rendered predicate string back into an Expr.
func parsePredicate(cond string) (sqlparser.Expr, error) {
	sel, err := sqlparser.ParseSelect("select 1 from T t where " + cond)
	if err != nil {
		return nil, err
	}
	return sel.Where, nil
}

// parseEqualityConst extracts (attr, quoted value) from "a.name = 'Brad
// Pitt'"-style conditions.
func parseEqualityConst(cond string) (attr, val string, ok bool) {
	e, err := parsePredicate(cond)
	if err != nil {
		return "", "", false
	}
	b, isBin := e.(*sqlparser.BinaryExpr)
	if !isBin || b.Op != sqlparser.OpEq {
		return "", "", false
	}
	c, isCol := b.Left.(*sqlparser.ColumnRef)
	lit, isLit := b.Right.(*sqlparser.Literal)
	if !isCol || !isLit {
		// Try reversed.
		c, isCol = b.Right.(*sqlparser.ColumnRef)
		lit, isLit = b.Left.(*sqlparser.Literal)
		if !isCol || !isLit {
			return "", "", false
		}
	}
	return c.Column, lit.Value.String(), true
}

// projectionPhrase renders the select list relative to the anchor noun
// phrase. Heading projections of non-anchor relations become bare concept
// plurals ("the actors"); anchor-attribute projections become "the <gloss
// plural> of <np>"; in elaborate mode a lone anchor-heading projection
// collapses to the noun phrase itself ("movies where Brad Pitt plays").
func (t *Translator) projectionPhrase(sel *sqlparser.SelectStmt, g *querygraph.Graph, anchor *querygraph.Box, np string) string {
	type part struct {
		text     string
		ofAnchor bool
	}
	var parts []part
	bareAnchor := false
	for _, it := range sel.Items {
		c, ok := it.Expr.(*sqlparser.ColumnRef)
		if !ok {
			parts = append(parts, part{text: t.operandEnglish(it.Expr, g)})
			continue
		}
		box := boxOfRef(g, c)
		rel := (*catalog.Relation)(nil)
		if box != nil {
			rel = t.schema.Relation(box.Relation)
		}
		if box == anchor {
			isHeading := rel != nil && strings.EqualFold(relHeading(rel), c.Column)
			if isHeading && t.opts.Elaborate {
				bareAnchor = true
				continue
			}
			parts = append(parts, part{text: "the " + lexicon.Pluralize(lexicon.Humanize(c.Column)), ofAnchor: true})
			continue
		}
		if rel != nil && strings.EqualFold(relHeading(rel), c.Column) {
			parts = append(parts, part{text: "the " + lexicon.Pluralize(conceptOf(rel, box.Relation))})
			continue
		}
		concept := c.Table
		if rel != nil {
			concept = conceptOf(rel, box.Relation)
		}
		parts = append(parts, part{text: "the " + lexicon.Pluralize(lexicon.Humanize(c.Column)) + " of the " + lexicon.Pluralize(concept)})
	}
	if bareAnchor && len(parts) == 0 {
		return np
	}
	// Attach the anchor NP to the last anchor-bound projection (or append).
	texts := make([]string, len(parts))
	attached := false
	for i := len(parts) - 1; i >= 0; i-- {
		texts[i] = parts[i].text
		if parts[i].ofAnchor && !attached {
			texts[i] += " of " + np
			attached = true
		}
	}
	if !attached {
		if bareAnchor {
			texts = append(texts, np)
		} else if len(texts) == 0 {
			return np
		} else {
			// No anchor projection: qualify with "of <np>" once.
			texts[len(texts)-1] += " of " + np
		}
	}
	// Only the first conjunct keeps its article: "the actors and titles of
	// action movies", matching the paper's phrasing.
	for i := 1; i < len(texts); i++ {
		texts[i] = strings.TrimPrefix(texts[i], "the ")
	}
	return lexicon.JoinAnd(texts)
}

func boxOfRef(g *querygraph.Graph, c *sqlparser.ColumnRef) *querygraph.Box {
	for _, b := range g.Boxes {
		if strings.EqualFold(b.Alias, c.Table) {
			return b
		}
	}
	return nil
}

func conceptOf(rel *catalog.Relation, fallback string) string {
	if rel != nil {
		return rel.Concept()
	}
	return strings.ToLower(fallback)
}

// ---------------------------------------------------------------------------
// Graph queries (§3.3.3)
// ---------------------------------------------------------------------------

func (t *Translator) translateGraph(sel *sqlparser.SelectStmt, g *querygraph.Graph, cls queryclassify.Result) (*Translation, error) {
	// Pairing idiom (Q3).
	if p, ok := rewrite.DetectPairs(g, t.schema); ok {
		rel := t.schema.Relation(p.Relation)
		shared := t.schema.Relation(p.Shared)
		participle := "shared"
		if v, ok := t.verbs.Lookup(p.Relation, p.Shared); ok && v.Participle != "" {
			participle = v.Participle
		}
		text := fmt.Sprintf("Find pairs of %s who have %s the same %s",
			lexicon.Pluralize(conceptOf(rel, p.Relation)), participle, conceptOf(shared, p.Shared))
		return &Translation{
			Text:        lexicon.Sentence(text),
			Declarative: true,
			Notes:       []string{"key-inequality self-join recognized as the pairing idiom"},
		}, nil
	}
	// Comparative idiom (intro's EMP query).
	if c, ok := rewrite.DetectComparative(g, t.schema); ok {
		rel := t.schema.Relation(c.Relation)
		gloss := lexicon.Humanize(c.Attr)
		verb := t.verbs.ComparativeVerb(c.Relation, c.Attr, gloss, c.Greater)
		role := "counterparts"
		if c.RoleAttr != "" {
			role = lexicon.Pluralize(lexicon.Humanize(c.RoleAttr))
		}
		proj := t.graphProjectionGlosses(sel, g, c.Aliases[0])
		head := lexicon.Pluralize(conceptOf(rel, c.Relation))
		text := "Find "
		if len(proj) > 0 {
			text += "the " + lexicon.JoinAnd(proj) + " of "
		}
		text += fmt.Sprintf("%s who %s their %s", head, verb, role)
		return &Translation{
			Text:        lexicon.Sentence(text),
			Declarative: true,
			Notes:       []string{"non-key self-join comparison recognized as the comparative idiom"},
		}, nil
	}
	// Cyclic pattern (Q4): an FK edge plus a non-FK equality between the
	// same two boxes.
	if cyc, ok := t.cyclicAttributePhrase(sel, g); ok {
		return &Translation{
			Text:        cyc,
			Declarative: true,
			Notes:       []string{"two-edge cycle translated with a non-local label"},
		}, nil
	}
	// Fallback: the naive rendering the paper shows for Q3 before
	// introducing non-local labels.
	return &Translation{
		Text:        t.TranslateNaive(sel, g),
		Declarative: true,
		Notes:       []string{"no idiom matched; naive per-edge rendering used"},
	}, nil
}

// graphProjectionGlosses lists the projected attribute glosses of one alias.
func (t *Translator) graphProjectionGlosses(sel *sqlparser.SelectStmt, g *querygraph.Graph, alias string) []string {
	var out []string
	for _, it := range sel.Items {
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok && strings.EqualFold(c.Table, alias) {
			out = append(out, lexicon.Pluralize(lexicon.Humanize(c.Column)))
		}
	}
	return out
}

// cyclicAttributePhrase handles Q4: "Find movies whose title is one of
// their roles".
func (t *Translator) cyclicAttributePhrase(sel *sqlparser.SelectStmt, g *querygraph.Graph) (string, bool) {
	if len(g.Boxes) != 2 || len(g.Joins) != 2 {
		return "", false
	}
	var fkEdge, attrEdge *querygraph.JoinEdge
	for i := range g.Joins {
		if g.Joins[i].FK {
			fkEdge = &g.Joins[i]
		} else if g.Joins[i].Equi {
			attrEdge = &g.Joins[i]
		}
	}
	if fkEdge == nil || attrEdge == nil {
		return "", false
	}
	// The anchor is the projected box.
	anchor := t.pickAnchor(g)
	if anchor == nil || len(anchor.Select) == 0 {
		return "", false
	}
	anchorRel := t.schema.Relation(anchor.Relation)
	// Parse the non-FK equality "c.role = m.title".
	e, err := parsePredicate(attrEdge.Cond)
	if err != nil {
		return "", false
	}
	b, ok := e.(*sqlparser.BinaryExpr)
	if !ok {
		return "", false
	}
	l, lok := b.Left.(*sqlparser.ColumnRef)
	r, rok := b.Right.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return "", false
	}
	var anchorAttr, otherAttr string
	if strings.EqualFold(l.Table, anchor.Alias) {
		anchorAttr, otherAttr = l.Column, r.Column
	} else if strings.EqualFold(r.Table, anchor.Alias) {
		anchorAttr, otherAttr = r.Column, l.Column
	} else {
		return "", false
	}
	text := fmt.Sprintf("Find %s whose %s is one of their %s",
		lexicon.Pluralize(conceptOf(anchorRel, anchor.Relation)),
		lexicon.Humanize(anchorAttr),
		lexicon.Pluralize(lexicon.Humanize(otherAttr)))
	return lexicon.Sentence(text), true
}

// TranslateNaive renders the paper's "quite unnatural" baseline: one clause
// per projection, join, and constraint, composed with "and". It exists as
// the ablation baseline for the non-local-label translations.
func (t *Translator) TranslateNaive(sel *sqlparser.SelectStmt, g *querygraph.Graph) string {
	var clauses []string
	for _, it := range sel.Items {
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok {
			box := boxOfRef(g, c)
			if box != nil {
				rel := t.schema.Relation(box.Relation)
				clauses = append(clauses, fmt.Sprintf("the %s of %s %s",
					lexicon.Humanize(c.Column),
					lexicon.WithArticle(conceptOf(rel, box.Relation)), c.Table))
				continue
			}
		}
		clauses = append(clauses, t.operandEnglish(it.Expr, g))
	}
	head := "Find " + lexicon.JoinAnd(clauses)
	var conds []string
	for _, j := range g.Joins {
		if e, err := parsePredicate(j.Cond); err == nil {
			conds = append(conds, t.PredicateEnglish(e, g))
		} else {
			conds = append(conds, j.Cond)
		}
	}
	for _, b := range g.Boxes {
		for _, w := range b.Where {
			if e, err := parsePredicate(w); err == nil {
				conds = append(conds, t.PredicateEnglish(e, g))
			} else {
				conds = append(conds, w)
			}
		}
	}
	if len(conds) > 0 {
		head += " such that " + strings.Join(conds, ", and ")
	}
	return lexicon.Sentence(head)
}

// ---------------------------------------------------------------------------
// Non-graph: nested (§3.3.4)
// ---------------------------------------------------------------------------

func (t *Translator) translateNested(sel *sqlparser.SelectStmt, g *querygraph.Graph, cls queryclassify.Result) (*Translation, error) {
	// Division first (Q6): unnesting cannot flatten NOT EXISTS.
	if d, ok := rewrite.DetectDivision(sel); ok {
		outer := t.schema.Relation(d.OuterRelation)
		divisor := t.schema.Relation(d.DivisorRelation)
		text := fmt.Sprintf("Find %s that have all %s",
			lexicon.Pluralize(conceptOf(outer, d.OuterRelation)),
			lexicon.Pluralize(conceptOf(divisor, d.DivisorRelation)))
		return &Translation{
			Text:        lexicon.Sentence(text),
			Declarative: true,
			Notes:       []string{"double NOT EXISTS recognized as relational division"},
		}, nil
	}
	// IN-unnesting (Q5 → Q1): when the rewrite eliminates every nested
	// block, translate the flat form.
	res := rewrite.UnnestIn(sel)
	if res.Unnested > 0 {
		flatGraph, err := querygraph.Build(res.Stmt, t.schema)
		if err == nil && len(flatGraph.Nested) == 0 {
			inner, err := t.Translate(res.Stmt)
			if err == nil {
				inner.Notes = append(inner.Notes,
					fmt.Sprintf("%d nested IN block(s) flattened into joins before translation", res.Unnested))
				return inner, nil
			}
		}
	}
	// Procedural fallback: walk the block structure.
	return &Translation{
		Text:        t.proceduralText(sel, g),
		Declarative: false,
		Notes:       []string{"no flat equivalent found; procedural rendering used"},
	}, nil
}

// ---------------------------------------------------------------------------
// Non-graph: aggregates (Q7)
// ---------------------------------------------------------------------------

func (t *Translator) translateAggregate(sel *sqlparser.SelectStmt, g *querygraph.Graph, cls queryclassify.Result) (*Translation, error) {
	// The Q7 pattern: grouped count(*) with a HAVING threshold over a
	// correlated count subquery.
	if text, ok := t.countWithThreshold(sel, g); ok {
		return &Translation{
			Text:        text,
			Declarative: true,
			Notes:       []string{"grouped count with correlated HAVING threshold recognized"},
		}, nil
	}
	// Generic declarative aggregate: "Find the number of X per Y [where..]".
	if text, ok := t.simpleGroupedAggregate(sel, g); ok {
		return &Translation{Text: text, Declarative: true}, nil
	}
	return &Translation{
		Text:        t.proceduralText(sel, g),
		Declarative: false,
		Notes:       []string{"aggregate shape has no declarative pattern; procedural rendering used"},
	}, nil
}

// countWithThreshold reproduces the paper's Q7 target: "Find the number of
// actors in movies of more than one genre".
func (t *Translator) countWithThreshold(sel *sqlparser.SelectStmt, g *querygraph.Graph) (string, bool) {
	if len(sel.GroupBy) == 0 || len(g.Nested) != 1 || !g.Nested[0].FromHaving {
		return "", false
	}
	blk := g.Nested[0]
	if blk.Conn != querygraph.ConnScalar || len(blk.Graph.Boxes) != 1 {
		return "", false
	}
	// Threshold from the HAVING comparison: "1 < (select count(*) ...)".
	threshold, cmpOK := havingThreshold(sel.Having)
	if !cmpOK {
		return "", false
	}
	// Counted concept: the box holding count(*); bridges count their other
	// FK target's concept (CAST counts actors).
	countedBox := boxWithCount(g)
	if countedBox == nil {
		return "", false
	}
	counted := t.countedConcept(countedBox, g)
	// Anchor: the grouped box.
	anchor := t.pickAnchor(g)
	anchorRel := t.schema.Relation(anchor.Relation)
	// Divisor concept from the nested block.
	nestedRel := t.schema.Relation(blk.Graph.Boxes[0].Relation)
	nestedConcept := conceptOf(nestedRel, blk.Graph.Boxes[0].Relation)

	text := fmt.Sprintf("Find the number of %s in %s of more than %s %s",
		lexicon.Pluralize(counted),
		lexicon.Pluralize(conceptOf(anchorRel, anchor.Relation)),
		lexicon.NumberWord(threshold),
		nestedConcept)
	return lexicon.Sentence(text), true
}

func havingThreshold(having sqlparser.Expr) (int, bool) {
	for _, c := range sqlparser.Conjuncts(having) {
		b, ok := c.(*sqlparser.BinaryExpr)
		if !ok {
			continue
		}
		if lit, ok := b.Left.(*sqlparser.Literal); ok && b.Op == sqlparser.OpLt {
			if _, isSub := b.Right.(*sqlparser.SubqueryExpr); isSub {
				return int(lit.Value.Int()), true
			}
		}
		if lit, ok := b.Right.(*sqlparser.Literal); ok && b.Op == sqlparser.OpGt {
			if _, isSub := b.Left.(*sqlparser.SubqueryExpr); isSub {
				return int(lit.Value.Int()), true
			}
		}
	}
	return 0, false
}

func boxWithCount(g *querygraph.Graph) *querygraph.Box {
	for _, b := range g.Boxes {
		for _, s := range b.Select {
			if strings.Contains(s, "COUNT(") {
				return b
			}
		}
	}
	return nil
}

// countedConcept maps a count(*) box to the concept being counted: for a
// bridge relation, the FK target absent from the query (CAST → actor);
// otherwise the relation's own concept.
func (t *Translator) countedConcept(box *querygraph.Box, g *querygraph.Graph) string {
	rel := t.schema.Relation(box.Relation)
	if rel == nil {
		return strings.ToLower(box.Relation)
	}
	if rel.Bridge {
		present := map[string]bool{}
		for _, b := range g.Boxes {
			present[strings.ToUpper(b.Relation)] = true
		}
		for _, fk := range rel.ForeignKey {
			if !present[strings.ToUpper(fk.RefRelation)] {
				if target := t.schema.Relation(fk.RefRelation); target != nil {
					return target.Concept()
				}
			}
		}
	}
	return rel.Concept()
}

// simpleGroupedAggregate renders "select g, count(*) ... group by g" style
// queries: "Find the number of <counted> per <group gloss>".
func (t *Translator) simpleGroupedAggregate(sel *sqlparser.SelectStmt, g *querygraph.Graph) (string, bool) {
	if sel.Having != nil || len(g.Nested) > 0 {
		return "", false
	}
	var aggText string
	for _, it := range sel.Items {
		if agg, ok := it.Expr.(*sqlparser.AggregateExpr); ok {
			if aggText != "" {
				return "", false
			}
			aggText = t.operandEnglish(agg, g)
			if agg.Arg == nil {
				counted := "rows"
				if box := boxWithCount(g); box != nil {
					counted = lexicon.Pluralize(t.countedConcept(box, g))
				}
				aggText = "the number of " + counted
			}
		}
	}
	if aggText == "" {
		return "", false
	}
	var groups []string
	for _, gb := range sel.GroupBy {
		if c, ok := gb.(*sqlparser.ColumnRef); ok {
			groups = append(groups, lexicon.Humanize(c.Column))
		} else {
			groups = append(groups, gb.SQL())
		}
	}
	text := "Find " + aggText
	if len(groups) > 0 {
		text += " per " + lexicon.JoinAnd(groups)
	}
	if sel.Where != nil {
		text += " where " + t.PredicateEnglish(sel.Where, g)
	}
	return lexicon.Sentence(text), true
}

// ---------------------------------------------------------------------------
// Impossible queries (§3.3.5)
// ---------------------------------------------------------------------------

func (t *Translator) translateImpossible(sel *sqlparser.SelectStmt, g *querygraph.Graph, cls queryclassify.Result) (*Translation, error) {
	switch cls.Subtype {
	case queryclassify.SameValueIdiom:
		if sv, ok := rewrite.DetectSameValue(sel); ok {
			subject := t.projectedConcept(sel, g)
			attrRel := t.relationOfRef(sv.Attr, g)
			object := "rows"
			if attrRel != nil {
				object = lexicon.Pluralize(attrRel.Concept())
			}
			text := fmt.Sprintf("Find %s whose %s are all in the same %s",
				subject, object, lexicon.Humanize(sv.Attr.Column))
			return &Translation{
				Text:        lexicon.Sentence(text),
				Declarative: true,
				Notes:       []string{"COUNT(DISTINCT)=1 recognized as the same-value idiom"},
			}, nil
		}
	case queryclassify.ExtremeIdiom:
		if e, ok := rewrite.DetectExtreme(sel); ok {
			subject := t.projectedConcept(sel, g)
			attrRel := t.relationOfRef(e.Attr, g)
			object := "rows"
			objectRelName := ""
			if attrRel != nil {
				object = lexicon.Pluralize(attrRel.Concept())
				objectRelName = attrRel.Name
			}
			extreme := "latest"
			if e.Min {
				extreme = "earliest"
			}
			participle := "been in"
			// Verb from the subject's relation to the attribute's relation.
			if rel := t.projectedRelation(sel, g); rel != nil && objectRelName != "" {
				if v, ok := t.verbs.Lookup(rel.Name, objectRelName); ok && v.Participle != "" {
					participle = v.Participle
				}
			}
			var text string
			if e.RepeatedOn != "" {
				text = fmt.Sprintf("Find the %s who have %s the %s versions of %s that have been repeated",
					subject, participle, extreme, object)
			} else {
				text = fmt.Sprintf("Find the %s who have %s the %s %s",
					subject, participle, extreme, object)
			}
			return &Translation{
				Text:        lexicon.Sentence(text),
				Declarative: true,
				Notes:       []string{fmt.Sprintf("quantified ALL recognized as the %s idiom", extreme)},
			}, nil
		}
	}
	// Idiom classified but extraction failed: procedural fallback keeps the
	// translation honest.
	return &Translation{
		Text:        t.proceduralText(sel, g),
		Declarative: false,
		Notes:       []string{"impossible-class idiom could not be extracted; procedural rendering used"},
	}, nil
}

// projectedConcept names what the query returns ("actors"), derived from
// the projected boxes.
func (t *Translator) projectedConcept(sel *sqlparser.SelectStmt, g *querygraph.Graph) string {
	if rel := t.projectedRelation(sel, g); rel != nil {
		return lexicon.Pluralize(rel.Concept())
	}
	return "results"
}

func (t *Translator) projectedRelation(sel *sqlparser.SelectStmt, g *querygraph.Graph) *catalog.Relation {
	for _, it := range sel.Items {
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok {
			if box := boxOfRef(g, c); box != nil {
				return t.schema.Relation(box.Relation)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Procedural rendering
// ---------------------------------------------------------------------------

// proceduralText renders any query as computation steps — the paper's
// procedural alternative, "the only reasonable approach" for complicated
// queries.
func (t *Translator) proceduralText(sel *sqlparser.SelectStmt, g *querygraph.Graph) string {
	var steps []string

	// Step 1: sources.
	var sources []string
	for _, b := range g.Boxes {
		rel := t.schema.Relation(b.Relation)
		c := conceptOf(rel, b.Relation)
		sources = append(sources, lexicon.WithArticle(c)+" "+b.Alias)
	}
	if len(sources) > 0 {
		steps = append(steps, lexicon.Sentence("Consider every combination of "+lexicon.JoinAnd(sources)))
	}

	// Step 2: join and filter conditions.
	var conds []string
	for _, j := range g.Joins {
		if e, err := parsePredicate(j.Cond); err == nil {
			conds = append(conds, t.PredicateEnglish(e, g))
		}
	}
	for _, b := range g.Boxes {
		for _, w := range b.Where {
			if e, err := parsePredicate(w); err == nil {
				conds = append(conds, t.PredicateEnglish(e, g))
			}
		}
	}
	if len(conds) > 0 {
		steps = append(steps, lexicon.Sentence("Keep the combinations where "+strings.Join(conds, ", and where ")))
	}

	// Step 3: nested blocks.
	for _, blk := range g.Nested {
		inner := t.proceduralText(blk.Graph.Stmt, blk.Graph)
		var step string
		switch blk.Conn {
		case querygraph.ConnNotExists:
			step = "Discard a combination if the following finds anything: " + inner
		case querygraph.ConnExists:
			step = "Keep a combination only if the following finds something: " + inner
		case querygraph.ConnIn, querygraph.ConnNotIn:
			step = fmt.Sprintf("Evaluate the nested question (%s) and test membership (%s): %s",
				blk.Label, blk.Link, inner)
		case querygraph.ConnAll, querygraph.ConnAny:
			step = fmt.Sprintf("Compare against every value of the nested question (%s): %s", blk.Link, inner)
		default:
			step = fmt.Sprintf("Compute the nested value (%s): %s", blk.Link, inner)
		}
		steps = append(steps, lexicon.Sentence(step))
	}

	// Step 4: grouping.
	if len(sel.GroupBy) > 0 {
		var keys []string
		for _, gb := range sel.GroupBy {
			if c, ok := gb.(*sqlparser.ColumnRef); ok {
				keys = append(keys, lexicon.Humanize(c.Column))
			} else {
				keys = append(keys, gb.SQL())
			}
		}
		steps = append(steps, lexicon.Sentence("Group the combinations by "+lexicon.JoinAnd(keys)))
		if sel.Having != nil && len(g.Nested) == 0 {
			steps = append(steps, lexicon.Sentence("Keep the groups where "+t.PredicateEnglish(sel.Having, g)))
		}
	}

	// Step 5: output.
	var outs []string
	for _, it := range sel.Items {
		outs = append(outs, t.operandEnglish(it.Expr, g))
	}
	if len(outs) > 0 {
		steps = append(steps, lexicon.Sentence("Report "+lexicon.JoinAnd(outs)))
	}
	return strings.Join(steps, " ")
}
