package catalog

import (
	"strings"
	"testing"
)

// movieSchema builds the paper's Fig. 1 schema by hand for testing.
func movieSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema("movies")
	add := func(r *Relation) {
		t.Helper()
		if err := s.AddRelation(r); err != nil {
			t.Fatalf("AddRelation(%s): %v", r.Name, err)
		}
	}
	add(&Relation{
		Name: "MOVIES",
		Attributes: []*Attribute{
			{Name: "id", Type: Int, NotNull: true},
			{Name: "title", Type: Text},
			{Name: "year", Type: Int},
		},
		PrimaryKey:     []string{"id"},
		HeadingAttr:    "title",
		ConceptualName: "movie",
	})
	add(&Relation{
		Name: "ACTOR",
		Attributes: []*Attribute{
			{Name: "id", Type: Int, NotNull: true},
			{Name: "name", Type: Text},
		},
		PrimaryKey:     []string{"id"},
		HeadingAttr:    "name",
		ConceptualName: "actor",
	})
	add(&Relation{
		Name: "CAST",
		Attributes: []*Attribute{
			{Name: "mid", Type: Int, NotNull: true},
			{Name: "aid", Type: Int, NotNull: true},
			{Name: "role", Type: Text},
		},
		PrimaryKey: []string{"mid", "aid"},
		ForeignKey: []ForeignKey{
			{Attrs: []string{"mid"}, RefRelation: "MOVIES", RefAttrs: []string{"id"}},
			{Attrs: []string{"aid"}, RefRelation: "ACTOR", RefAttrs: []string{"id"}},
		},
		Bridge: true,
	})
	add(&Relation{
		Name: "DIRECTOR",
		Attributes: []*Attribute{
			{Name: "id", Type: Int, NotNull: true},
			{Name: "name", Type: Text},
			{Name: "bdate", Type: Date},
			{Name: "blocation", Type: Text},
		},
		PrimaryKey:     []string{"id"},
		HeadingAttr:    "name",
		ConceptualName: "director",
	})
	add(&Relation{
		Name: "DIRECTED",
		Attributes: []*Attribute{
			{Name: "mid", Type: Int, NotNull: true},
			{Name: "did", Type: Int, NotNull: true},
		},
		PrimaryKey: []string{"mid", "did"},
		ForeignKey: []ForeignKey{
			{Attrs: []string{"mid"}, RefRelation: "MOVIES", RefAttrs: []string{"id"}},
			{Attrs: []string{"did"}, RefRelation: "DIRECTOR", RefAttrs: []string{"id"}},
		},
		Bridge: true,
	})
	add(&Relation{
		Name: "GENRE",
		Attributes: []*Attribute{
			{Name: "mid", Type: Int, NotNull: true},
			{Name: "genre", Type: Text, NotNull: true},
		},
		PrimaryKey:  []string{"mid", "genre"},
		HeadingAttr: "genre",
		ForeignKey: []ForeignKey{
			{Attrs: []string{"mid"}, RefRelation: "MOVIES", RefAttrs: []string{"id"}},
		},
	})
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return s
}

func TestSchemaLookup(t *testing.T) {
	s := movieSchema(t)
	if s.Relation("movies") == nil {
		t.Error("case-insensitive relation lookup failed")
	}
	if s.Relation("nope") != nil {
		t.Error("unknown relation should be nil")
	}
	m := s.Relation("MOVIES")
	if a := m.Attr("TITLE"); a == nil || a.Name != "title" {
		t.Error("case-insensitive attribute lookup failed")
	}
	if m.AttrIndex("year") != 2 {
		t.Errorf("AttrIndex(year) = %d", m.AttrIndex("year"))
	}
	if m.AttrIndex("nope") != -1 {
		t.Error("AttrIndex of unknown should be -1")
	}
}

func TestHeading(t *testing.T) {
	s := movieSchema(t)
	if h := s.Relation("MOVIES").Heading(); h == nil || h.Name != "title" {
		t.Errorf("MOVIES heading = %v", h)
	}
	// Relation without explicit heading: falls back to first non-key text attr.
	r := &Relation{
		Name: "T",
		Attributes: []*Attribute{
			{Name: "k", Type: Int},
			{Name: "label", Type: Text},
		},
		PrimaryKey: []string{"k"},
	}
	if h := r.Heading(); h == nil || h.Name != "label" {
		t.Errorf("fallback heading = %v", h)
	}
	// Relation with only key attrs: first attribute.
	r2 := &Relation{Name: "U", Attributes: []*Attribute{{Name: "k", Type: Int}}}
	if h := r2.Heading(); h == nil || h.Name != "k" {
		t.Errorf("last-resort heading = %v", h)
	}
	r3 := &Relation{Name: "V"}
	if r3.Heading() != nil {
		t.Error("empty relation heading should be nil")
	}
}

func TestConcept(t *testing.T) {
	s := movieSchema(t)
	if c := s.Relation("MOVIES").Concept(); c != "movie" {
		t.Errorf("Concept = %q", c)
	}
	r := &Relation{Name: "EMPLOYEES"}
	if c := r.Concept(); c != "employee" {
		t.Errorf("derived Concept = %q", c)
	}
}

func TestValidateErrors(t *testing.T) {
	s := NewSchema("bad")
	// Unknown FK target.
	if err := s.AddRelation(&Relation{
		Name:       "A",
		Attributes: []*Attribute{{Name: "x", Type: Int}},
		ForeignKey: []ForeignKey{{Attrs: []string{"x"}, RefRelation: "B", RefAttrs: []string{"y"}}},
	}); err != nil {
		t.Fatalf("AddRelation: %v", err)
	}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted FK to unknown relation")
	}
	// Type mismatch.
	s2 := NewSchema("bad2")
	_ = s2.AddRelation(&Relation{Name: "B", Attributes: []*Attribute{{Name: "y", Type: Text}}})
	_ = s2.AddRelation(&Relation{
		Name:       "A",
		Attributes: []*Attribute{{Name: "x", Type: Int}},
		ForeignKey: []ForeignKey{{Attrs: []string{"x"}, RefRelation: "B", RefAttrs: []string{"y"}}},
	})
	if err := s2.Validate(); err == nil || !strings.Contains(err.Error(), "type mismatch") {
		t.Errorf("Validate type mismatch: %v", err)
	}
	// Arity mismatch.
	s3 := NewSchema("bad3")
	_ = s3.AddRelation(&Relation{Name: "B", Attributes: []*Attribute{{Name: "y", Type: Int}}})
	_ = s3.AddRelation(&Relation{
		Name:       "A",
		Attributes: []*Attribute{{Name: "x", Type: Int}},
		ForeignKey: []ForeignKey{{Attrs: []string{"x"}, RefRelation: "B", RefAttrs: []string{"y", "z"}}},
	})
	if err := s3.Validate(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("Validate arity mismatch: %v", err)
	}
}

func TestAddRelationErrors(t *testing.T) {
	s := NewSchema("x")
	if err := s.AddRelation(&Relation{Name: ""}); err == nil {
		t.Error("accepted empty relation name")
	}
	_ = s.AddRelation(&Relation{Name: "A", Attributes: []*Attribute{{Name: "x", Type: Int}}})
	if err := s.AddRelation(&Relation{Name: "a"}); err == nil {
		t.Error("accepted duplicate relation (case-insensitive)")
	}
	if err := s.AddRelation(&Relation{
		Name:       "B",
		Attributes: []*Attribute{{Name: "x", Type: Int}, {Name: "X", Type: Int}},
	}); err == nil {
		t.Error("accepted duplicate attribute")
	}
	if err := s.AddRelation(&Relation{
		Name:       "C",
		Attributes: []*Attribute{{Name: "x", Type: Int}},
		PrimaryKey: []string{"nope"},
	}); err == nil {
		t.Error("accepted primary key over unknown attribute")
	}
	if err := s.AddRelation(&Relation{
		Name:        "D",
		Attributes:  []*Attribute{{Name: "x", Type: Int}},
		HeadingAttr: "nope",
	}); err == nil {
		t.Error("accepted unknown heading attribute")
	}
	if err := s.AddRelation(&Relation{
		Name:       "E",
		Attributes: []*Attribute{{Name: "", Type: Int}},
	}); err == nil {
		t.Error("accepted empty attribute name")
	}
}

func TestProfiles(t *testing.T) {
	s := movieSchema(t)
	p := NewProfile("cinephile")
	p.HeadingOverride["MOVIES"] = "year"
	p.RelationWeight["DIRECTOR"] = 5
	p.AttributeWeight["MOVIES.year"] = 3
	if err := s.AddProfile(p); err != nil {
		t.Fatalf("AddProfile: %v", err)
	}
	if s.Profile("CINEPHILE") == nil {
		t.Error("profile lookup should be case-insensitive")
	}
	m := s.Relation("MOVIES")
	if h := s.HeadingFor(m, p); h.Name != "year" {
		t.Errorf("HeadingFor with override = %q", h.Name)
	}
	if h := s.HeadingFor(m, nil); h.Name != "title" {
		t.Errorf("HeadingFor default = %q", h.Name)
	}
	d := s.Relation("DIRECTOR")
	if w := s.WeightFor(d, p); w != 5 {
		t.Errorf("WeightFor override = %v", w)
	}
	if w := s.WeightFor(d, nil); w != 1 {
		t.Errorf("WeightFor default = %v", w)
	}
	if w := s.AttrWeightFor(m, m.Attr("year"), p); w != 3 {
		t.Errorf("AttrWeightFor override = %v", w)
	}
	if w := s.AttrWeightFor(m, m.Attr("title"), nil); w != 1 {
		t.Errorf("AttrWeightFor default = %v", w)
	}
}

func TestAddProfileErrors(t *testing.T) {
	s := movieSchema(t)
	if err := s.AddProfile(NewProfile("")); err == nil {
		t.Error("accepted empty profile name")
	}
	p := NewProfile("bad")
	p.HeadingOverride["NOPE"] = "x"
	if err := s.AddProfile(p); err == nil {
		t.Error("accepted override on unknown relation")
	}
	p2 := NewProfile("bad2")
	p2.HeadingOverride["MOVIES"] = "nope"
	if err := s.AddProfile(p2); err == nil {
		t.Error("accepted override to unknown attribute")
	}
	p3 := NewProfile("bad3")
	p3.AttributeWeight["malformed"] = 1
	if err := s.AddProfile(p3); err == nil {
		t.Error("accepted malformed attribute weight key")
	}
	p4 := NewProfile("ok")
	if err := s.AddProfile(p4); err != nil {
		t.Fatalf("AddProfile: %v", err)
	}
	if err := s.AddProfile(NewProfile("OK")); err == nil {
		t.Error("accepted duplicate profile name")
	}
}

func TestForeignKeysBetween(t *testing.T) {
	s := movieSchema(t)
	cast := s.Relation("CAST")
	movies := s.Relation("MOVIES")
	fks := s.ForeignKeysBetween(cast, movies)
	if len(fks) != 1 || fks[0].Attrs[0] != "mid" {
		t.Errorf("ForeignKeysBetween = %+v", fks)
	}
	if fks := s.ForeignKeysBetween(movies, cast); len(fks) != 0 {
		t.Errorf("unexpected reverse FKs: %+v", fks)
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"INT": Int, "integer": Int, "VARCHAR": Text, "text": Text,
		"DATE": Date, "float": Float, "BOOLEAN": Bool, "decimal": Float,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseType("BLOB5000"); err == nil {
		t.Error("ParseType accepted unknown type")
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{Int: "INT", Float: "FLOAT", Text: "TEXT", Date: "DATE", Bool: "BOOL"} {
		if got := ty.String(); got != want {
			t.Errorf("%v.String() = %q", int(ty), got)
		}
	}
	if got := Type(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type String = %q", got)
	}
}

func TestSchemaString(t *testing.T) {
	s := movieSchema(t)
	ddl := s.String()
	for _, want := range []string{
		"CREATE TABLE MOVIES", "PRIMARY KEY (id)",
		"FOREIGN KEY (mid) REFERENCES MOVIES (id)", "bdate DATE",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}

func TestRelationNames(t *testing.T) {
	s := movieSchema(t)
	names := s.RelationNames()
	if len(names) != 6 {
		t.Fatalf("RelationNames len = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Errorf("RelationNames not sorted: %v", names)
		}
	}
}

func TestIsPrimaryKey(t *testing.T) {
	s := movieSchema(t)
	cast := s.Relation("CAST")
	if !cast.IsPrimaryKey([]string{"aid", "mid"}) {
		t.Error("order-insensitive PK check failed")
	}
	if cast.IsPrimaryKey([]string{"mid"}) {
		t.Error("partial key accepted as PK")
	}
	if cast.IsPrimaryKey([]string{"mid", "role"}) {
		t.Error("wrong attrs accepted as PK")
	}
}

func TestGlossOrDefault(t *testing.T) {
	a := &Attribute{Name: "BDATE"}
	if g := a.GlossOrDefault(); g != "birth date" {
		t.Errorf("GlossOrDefault = %q", g)
	}
	a2 := &Attribute{Name: "x", Gloss: "custom"}
	if g := a2.GlossOrDefault(); g != "custom" {
		t.Errorf("explicit gloss = %q", g)
	}
}
