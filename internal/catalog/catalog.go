// Package catalog defines the relational schema metadata that every other
// subsystem consumes: relations, attributes, types, keys, and the
// translation-specific annotations the paper introduces in Section 2.2 —
// the *heading attribute* of a relation (the attribute used as the subject
// of generated sentences), the *conceptual name* (what the relation means in
// the real world, e.g. MOVIES ⇒ "movie"), and per-user personalization
// overlays (different heading attributes and weights per user group).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/lexicon"
)

// Type is the domain of an attribute.
type Type int

// Supported attribute types. The paper's schemas only need integers, text,
// and dates; floats are included for the EMP salary example.
const (
	Int Type = iota
	Float
	Text
	Date
	Bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Text:
		return "TEXT"
	case Date:
		return "DATE"
	case Bool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType converts a SQL type name into a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return Int, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return Float, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING", "CLOB":
		return Text, nil
	case "DATE", "DATETIME", "TIMESTAMP":
		return Date, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	default:
		return Int, fmt.Errorf("catalog: unknown type %q", s)
	}
}

// Attribute describes one column of a relation.
type Attribute struct {
	Name string
	Type Type
	// NotNull marks attributes that must carry a value.
	NotNull bool
	// Gloss is the human-readable phrase used for this attribute in prose
	// ("birth date" for BDATE). Empty means derive it with lexicon.Humanize.
	Gloss string
	// Weight biases traversal and ranking during summarization (§2.2):
	// higher-weight attributes survive when the text budget shrinks.
	Weight float64
}

// GlossOrDefault returns the attribute's prose phrase.
func (a *Attribute) GlossOrDefault() string {
	if a.Gloss != "" {
		return a.Gloss
	}
	return lexicon.Humanize(a.Name)
}

// ForeignKey declares that Attrs in the owning relation reference RefAttrs in
// RefRelation. Foreign keys become the join edges of the schema graph.
type ForeignKey struct {
	Attrs       []string
	RefRelation string
	RefAttrs    []string
}

// Relation describes one table plus its translation annotations.
type Relation struct {
	Name       string
	Attributes []*Attribute
	PrimaryKey []string
	ForeignKey []ForeignKey

	// HeadingAttr is the paper's heading attribute: "the name of one of its
	// attributes, the one that is most characteristic of the relation
	// tuples". For MOVIES it is TITLE; sentences about a movie use its title
	// as the subject.
	HeadingAttr string

	// ConceptualName is the real-world concept the relation represents,
	// singular ("movie" for MOVIES). Empty means derive from the name.
	ConceptualName string

	// Weight biases schema-graph traversal during summarization; relations
	// with higher weight are visited first and survive budget cuts.
	Weight float64

	// Bridge marks pure association relations (like DIRECTED) that
	// "participate in the translation process only for connecting" others
	// (§2.2): none of their attributes contributes to narratives.
	Bridge bool

	// attrIndex is built lazily exactly once; the sync.Once makes the lazy
	// build safe when the first Attr/AttrIndex calls race across sessions.
	attrOnce  sync.Once
	attrIndex map[string]int
}

// Attr returns the attribute with the given (case-insensitive) name, or nil.
func (r *Relation) Attr(name string) *Attribute {
	r.attrOnce.Do(r.buildIndex)
	if i, ok := r.attrIndex[strings.ToLower(name)]; ok {
		return r.Attributes[i]
	}
	return nil
}

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	r.attrOnce.Do(r.buildIndex)
	if i, ok := r.attrIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

func (r *Relation) buildIndex() {
	idx := make(map[string]int, len(r.Attributes))
	for i, a := range r.Attributes {
		idx[strings.ToLower(a.Name)] = i
	}
	r.attrIndex = idx
}

// Heading returns the heading attribute, falling back to the first non-key
// text attribute, then the first attribute. A relation with no attributes
// yields nil.
func (r *Relation) Heading() *Attribute {
	if r.HeadingAttr != "" {
		if a := r.Attr(r.HeadingAttr); a != nil {
			return a
		}
	}
	for _, a := range r.Attributes {
		if a.Type == Text && !r.isKeyAttr(a.Name) {
			return a
		}
	}
	if len(r.Attributes) > 0 {
		return r.Attributes[0]
	}
	return nil
}

func (r *Relation) isKeyAttr(name string) bool {
	for _, k := range r.PrimaryKey {
		if strings.EqualFold(k, name) {
			return true
		}
	}
	return false
}

// Concept returns the singular real-world concept for the relation:
// the explicit ConceptualName if set, otherwise the singularized,
// lowercased relation name ("MOVIES" -> "movie").
func (r *Relation) Concept() string {
	if r.ConceptualName != "" {
		return r.ConceptualName
	}
	return strings.ToLower(lexicon.Singularize(r.Name))
}

// IsPrimaryKey reports whether attrs exactly covers the primary key.
func (r *Relation) IsPrimaryKey(attrs []string) bool {
	if len(attrs) != len(r.PrimaryKey) {
		return false
	}
	set := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		set[strings.ToLower(a)] = true
	}
	for _, k := range r.PrimaryKey {
		if !set[strings.ToLower(k)] {
			return false
		}
	}
	return true
}

// Schema is a set of relations plus schema-level annotations.
//
// Concurrency: relations are append-only during setup — AddRelation must not
// run concurrently with readers, and relation metadata is treated as
// immutable once a System is built over the schema. Profiles, by contrast,
// can be registered at any time by live sessions, so the profile map is
// guarded by its own lock; AddProfile and Profile are safe to call
// concurrently.
type Schema struct {
	Name      string
	relations []*Relation
	relIndex  map[string]int

	// pmu guards profiles: sessions register personalization overlays while
	// other sessions resolve them.
	pmu sync.RWMutex
	// profiles holds named personalization overlays (§2.2: "personalized
	// settings (e.g., different heading attributes for relations or
	// different weights on nodes and edges)").
	profiles map[string]*Profile
}

// NewSchema creates an empty schema with the given name.
func NewSchema(name string) *Schema {
	return &Schema{
		Name:     name,
		relIndex: make(map[string]int),
		profiles: make(map[string]*Profile),
	}
}

// AddRelation adds a relation, validating its internal consistency: unique
// attribute names, primary-key attributes exist, heading attribute exists.
// Foreign keys are validated later by Validate, once all relations exist.
func (s *Schema) AddRelation(r *Relation) error {
	if r.Name == "" {
		return fmt.Errorf("catalog: relation with empty name")
	}
	key := strings.ToLower(r.Name)
	if _, dup := s.relIndex[key]; dup {
		return fmt.Errorf("catalog: duplicate relation %q", r.Name)
	}
	seen := make(map[string]bool, len(r.Attributes))
	for _, a := range r.Attributes {
		la := strings.ToLower(a.Name)
		if a.Name == "" {
			return fmt.Errorf("catalog: relation %q has an attribute with empty name", r.Name)
		}
		if seen[la] {
			return fmt.Errorf("catalog: relation %q has duplicate attribute %q", r.Name, a.Name)
		}
		seen[la] = true
	}
	for _, k := range r.PrimaryKey {
		if r.Attr(k) == nil {
			return fmt.Errorf("catalog: relation %q primary key references unknown attribute %q", r.Name, k)
		}
	}
	if r.HeadingAttr != "" && r.Attr(r.HeadingAttr) == nil {
		return fmt.Errorf("catalog: relation %q heading attribute %q does not exist", r.Name, r.HeadingAttr)
	}
	s.relIndex[key] = len(s.relations)
	s.relations = append(s.relations, r)
	return nil
}

// Relation returns the named relation (case-insensitive) or nil.
func (s *Schema) Relation(name string) *Relation {
	if i, ok := s.relIndex[strings.ToLower(name)]; ok {
		return s.relations[i]
	}
	return nil
}

// Relations returns the relations in insertion order. The returned slice is
// shared; callers must not mutate it.
func (s *Schema) Relations() []*Relation { return s.relations }

// RelationNames returns sorted relation names, for deterministic output.
func (s *Schema) RelationNames() []string {
	names := make([]string, len(s.relations))
	for i, r := range s.relations {
		names[i] = r.Name
	}
	sort.Strings(names)
	return names
}

// Validate checks cross-relation consistency: every foreign key references
// an existing relation and attributes of matching arity and type.
func (s *Schema) Validate() error {
	for _, r := range s.relations {
		for _, fk := range r.ForeignKey {
			ref := s.Relation(fk.RefRelation)
			if ref == nil {
				return fmt.Errorf("catalog: %s: foreign key references unknown relation %q", r.Name, fk.RefRelation)
			}
			if len(fk.Attrs) != len(fk.RefAttrs) {
				return fmt.Errorf("catalog: %s: foreign key arity mismatch (%d vs %d)", r.Name, len(fk.Attrs), len(fk.RefAttrs))
			}
			if len(fk.Attrs) == 0 {
				return fmt.Errorf("catalog: %s: empty foreign key", r.Name)
			}
			for i := range fk.Attrs {
				local := r.Attr(fk.Attrs[i])
				if local == nil {
					return fmt.Errorf("catalog: %s: foreign key uses unknown attribute %q", r.Name, fk.Attrs[i])
				}
				remote := ref.Attr(fk.RefAttrs[i])
				if remote == nil {
					return fmt.Errorf("catalog: %s: foreign key references unknown attribute %s.%s", r.Name, fk.RefRelation, fk.RefAttrs[i])
				}
				if local.Type != remote.Type {
					return fmt.Errorf("catalog: %s: foreign key type mismatch %s.%s (%s) vs %s.%s (%s)",
						r.Name, r.Name, local.Name, local.Type, ref.Name, remote.Name, remote.Type)
				}
			}
		}
	}
	return nil
}

// Profile is a personalization overlay: per-relation heading attributes and
// weights that customize narratives for a user or user group (§2.2).
type Profile struct {
	Name string
	// HeadingOverride maps relation name -> alternative heading attribute.
	HeadingOverride map[string]string
	// RelationWeight maps relation name -> weight override.
	RelationWeight map[string]float64
	// AttributeWeight maps "relation.attribute" -> weight override.
	AttributeWeight map[string]float64
}

// NewProfile creates an empty profile.
func NewProfile(name string) *Profile {
	return &Profile{
		Name:            name,
		HeadingOverride: make(map[string]string),
		RelationWeight:  make(map[string]float64),
		AttributeWeight: make(map[string]float64),
	}
}

// AddProfile registers a personalization profile on the schema. Overrides
// are validated against the schema. Safe for concurrent use.
func (s *Schema) AddProfile(p *Profile) error {
	if p.Name == "" {
		return fmt.Errorf("catalog: profile with empty name")
	}
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if _, dup := s.profiles[strings.ToLower(p.Name)]; dup {
		return fmt.Errorf("catalog: duplicate profile %q", p.Name)
	}
	for rel, attr := range p.HeadingOverride {
		r := s.Relation(rel)
		if r == nil {
			return fmt.Errorf("catalog: profile %q overrides unknown relation %q", p.Name, rel)
		}
		if r.Attr(attr) == nil {
			return fmt.Errorf("catalog: profile %q sets heading of %q to unknown attribute %q", p.Name, rel, attr)
		}
	}
	for rel := range p.RelationWeight {
		if s.Relation(rel) == nil {
			return fmt.Errorf("catalog: profile %q weights unknown relation %q", p.Name, rel)
		}
	}
	for qual := range p.AttributeWeight {
		rel, attr, ok := strings.Cut(qual, ".")
		if !ok {
			return fmt.Errorf("catalog: profile %q has malformed attribute weight key %q", p.Name, qual)
		}
		r := s.Relation(rel)
		if r == nil || r.Attr(attr) == nil {
			return fmt.Errorf("catalog: profile %q weights unknown attribute %q", p.Name, qual)
		}
	}
	s.profiles[strings.ToLower(p.Name)] = p
	return nil
}

// Profile returns the named profile, or nil. Safe for concurrent use; the
// returned Profile is treated as immutable after registration.
func (s *Schema) Profile(name string) *Profile {
	s.pmu.RLock()
	defer s.pmu.RUnlock()
	return s.profiles[strings.ToLower(name)]
}

// HeadingFor returns the heading attribute of rel under the given profile
// (nil profile means the schema default).
func (s *Schema) HeadingFor(rel *Relation, p *Profile) *Attribute {
	if p != nil {
		if over, ok := p.HeadingOverride[rel.Name]; ok {
			if a := rel.Attr(over); a != nil {
				return a
			}
		}
		// Also accept case-insensitive relation keys.
		for k, over := range p.HeadingOverride {
			if strings.EqualFold(k, rel.Name) {
				if a := rel.Attr(over); a != nil {
					return a
				}
			}
		}
	}
	return rel.Heading()
}

// WeightFor returns the relation's traversal weight under the profile.
// Relations default to weight 1 when unset.
func (s *Schema) WeightFor(rel *Relation, p *Profile) float64 {
	if p != nil {
		for k, w := range p.RelationWeight {
			if strings.EqualFold(k, rel.Name) {
				return w
			}
		}
	}
	if rel.Weight != 0 {
		return rel.Weight
	}
	return 1
}

// AttrWeightFor returns an attribute's weight under the profile; attributes
// default to weight 1 when unset.
func (s *Schema) AttrWeightFor(rel *Relation, attr *Attribute, p *Profile) float64 {
	if p != nil {
		for k, w := range p.AttributeWeight {
			rn, an, ok := strings.Cut(k, ".")
			if ok && strings.EqualFold(rn, rel.Name) && strings.EqualFold(an, attr.Name) {
				return w
			}
		}
	}
	if attr.Weight != 0 {
		return attr.Weight
	}
	return 1
}

// ForeignKeysBetween returns the foreign keys of from that reference to.
func (s *Schema) ForeignKeysBetween(from, to *Relation) []ForeignKey {
	var fks []ForeignKey
	for _, fk := range from.ForeignKey {
		if strings.EqualFold(fk.RefRelation, to.Name) {
			fks = append(fks, fk)
		}
	}
	return fks
}

// String renders the schema as CREATE TABLE-style DDL, for debugging and for
// the documentation generator.
func (s *Schema) String() string {
	var b strings.Builder
	for i, r := range s.relations {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", r.Name)
		for _, a := range r.Attributes {
			fmt.Fprintf(&b, "  %s %s", a.Name, a.Type)
			if a.NotNull {
				b.WriteString(" NOT NULL")
			}
			b.WriteString(",\n")
		}
		if len(r.PrimaryKey) > 0 {
			fmt.Fprintf(&b, "  PRIMARY KEY (%s),\n", strings.Join(r.PrimaryKey, ", "))
		}
		for _, fk := range r.ForeignKey {
			fmt.Fprintf(&b, "  FOREIGN KEY (%s) REFERENCES %s (%s),\n",
				strings.Join(fk.Attrs, ", "), fk.RefRelation, strings.Join(fk.RefAttrs, ", "))
		}
		b.WriteString(");\n")
	}
	return b.String()
}
