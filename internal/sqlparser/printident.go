package sqlparser

import "strings"

// quoteIdent renders an identifier so it re-lexes as the same identifier:
// plain names print bare, while names that collide with reserved words, are
// empty, or contain characters that would lex differently come back
// double-quoted. Quoted identifiers cannot contain a double quote (the
// lexer has no escape), and the parser never produces one.
func quoteIdent(s string) string {
	if plainIdent(s) && !keywords[strings.ToUpper(s)] {
		return s
	}
	return `"` + s + `"`
}

func plainIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_',
			r >= 'a' && r <= 'z',
			r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// quoteIdents maps quoteIdent over a list (INSERT column lists, keys).
func quoteIdents(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = quoteIdent(n)
	}
	return out
}
