package sqlparser

import (
	"testing"
)

// fuzzSeeds are the hand-picked statements beyond the paper corpus: DML,
// DDL, and edge shapes (empty strings, unterminated literals, operators).
var fuzzSeeds = []string{
	"",
	";",
	"select * from T",
	"select a.x, b.y from A a join B b on a.id = b.id where a.x > 3 order by b.y desc limit 5",
	"select count(distinct x) from T group by y having count(*) > 1",
	"insert into T (a, b) values (1, 'two')",
	"update T set a = a + 1 where b is not null",
	"delete from T where x between 1 and 10",
	"create view V as select x from T",
	"select 'unterminated",
	"select * from T where x like 'a%_b'",
	"select case when x > 0 then 'p' else 'n' end from T",
	"select * from T where exists (select 1 from U where U.id = T.id)",
	"select * from T where x <= all (select y from U)",
	"select -1 + 2 * (3 - 4) / 5 % 6",
	"explain plan select m.title from MOVIES m where m.id = 1",
	"explain select a.x from A a join B b on a.id = b.id",
}

// FuzzParse asserts two properties over arbitrary input: the parser never
// panics, and for every accepted statement the parse → print → parse
// round-trip is stable — printing the reparsed AST reproduces the printed
// SQL byte-for-byte. Seeded with the full paper corpus; run the harness
// with:
//
//	go test -fuzz=FuzzParse ./internal/sqlparser
func FuzzParse(f *testing.F) {
	for _, q := range PaperQueries {
		f.Add(q)
	}
	f.Add(PaperQ6Verbatim)
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := stmt.SQL()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer emitted unparsable SQL\ninput:   %q\nprinted: %q\nerror:   %v", src, printed, err)
		}
		if reprinted := stmt2.SQL(); reprinted != printed {
			t.Fatalf("round-trip not stable\ninput:  %q\nfirst:  %q\nsecond: %q", src, printed, reprinted)
		}
	})
}

// FuzzParseScript extends the property to multi-statement scripts.
func FuzzParseScript(f *testing.F) {
	f.Add("select * from T; insert into T (a) values (1);")
	f.Add("create view V as select x from T; select * from V")
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseScript(src)
		if err != nil {
			return
		}
		for _, stmt := range stmts {
			printed := stmt.SQL()
			if _, err := Parse(printed); err != nil {
				t.Fatalf("script statement does not reparse: %q: %v", printed, err)
			}
		}
	})
}
