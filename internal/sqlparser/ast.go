package sqlparser

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// SQL renders the statement back to SQL text.
	SQL() string
}

// Expr is any scalar or boolean expression.
type Expr interface {
	expr()
	// SQL renders the expression back to SQL text.
	SQL() string
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// ColumnRef is a possibly-qualified column reference: name, or alias.name.
type ColumnRef struct {
	Table  string // tuple-variable alias or relation name; may be empty
	Column string
}

func (*ColumnRef) expr() {}

// SQL renders the reference.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		if c.Column == "*" {
			return quoteIdent(c.Table) + ".*"
		}
		return quoteIdent(c.Table) + "." + quoteIdent(c.Column)
	}
	return quoteIdent(c.Column)
}

// Literal is a constant value.
type Literal struct {
	Value value.Value
}

func (*Literal) expr() {}

// SQL renders the literal.
func (l *Literal) SQL() string { return l.Value.SQL() }

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators, comparison first, then boolean, then arithmetic.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
)

// String renders the operator in SQL.
func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpLike:
		return "LIKE"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// IsComparison reports whether the operator compares two scalars.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return true
	}
	return false
}

// Inverse returns the comparison with swapped operands (a < b ⇔ b > a).
func (op BinaryOp) Inverse() BinaryOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// Negate returns the logical negation of a comparison (a < b ⇔ ¬(a >= b)).
func (op BinaryOp) Negate() BinaryOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		return op
	}
}

// BinaryExpr applies Op to Left and Right.
type BinaryExpr struct {
	Op    BinaryOp
	Left  Expr
	Right Expr
}

func (*BinaryExpr) expr() {}

// SQL renders the expression with minimal parentheses around nested boolean
// operators of lower precedence.
func (b *BinaryExpr) SQL() string {
	l, r := b.Left.SQL(), b.Right.SQL()
	if b.Op == OpAnd || b.Op == OpOr {
		if inner, ok := b.Left.(*BinaryExpr); ok && inner.Op == OpOr && b.Op == OpAnd {
			l = "(" + l + ")"
		}
		if inner, ok := b.Right.(*BinaryExpr); ok && inner.Op == OpOr && b.Op == OpAnd {
			r = "(" + r + ")"
		}
		if inner, ok := b.Right.(*BinaryExpr); ok && (inner.Op == OpAnd || inner.Op == OpOr) && b.Op != inner.Op {
			r = "(" + r + ")"
		}
	}
	return l + " " + b.Op.String() + " " + r
}

// NotExpr is logical negation.
type NotExpr struct {
	Inner Expr
}

func (*NotExpr) expr() {}

// SQL renders NOT with parentheses around compound operands.
func (n *NotExpr) SQL() string {
	switch n.Inner.(type) {
	case *BinaryExpr:
		return "NOT (" + n.Inner.SQL() + ")"
	default:
		return "NOT " + n.Inner.SQL()
	}
}

// IsNullExpr tests an expression for NULL.
type IsNullExpr struct {
	Inner  Expr
	Negate bool // IS NOT NULL
}

func (*IsNullExpr) expr() {}

// SQL renders the test.
func (e *IsNullExpr) SQL() string {
	if e.Negate {
		return e.Inner.SQL() + " IS NOT NULL"
	}
	return e.Inner.SQL() + " IS NULL"
}

// BetweenExpr is x BETWEEN lo AND hi.
type BetweenExpr struct {
	Subject Expr
	Lo, Hi  Expr
	Negate  bool
}

func (*BetweenExpr) expr() {}

// SQL renders the range test.
func (e *BetweenExpr) SQL() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return e.Subject.SQL() + " " + not + "BETWEEN " + e.Lo.SQL() + " AND " + e.Hi.SQL()
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the function in SQL.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("agg(%d)", int(f))
	}
}

// AggregateExpr is an aggregate function application. Arg nil means
// COUNT(*).
type AggregateExpr struct {
	Func     AggFunc
	Arg      Expr // nil for COUNT(*)
	Distinct bool
}

func (*AggregateExpr) expr() {}

// SQL renders the aggregate.
func (a *AggregateExpr) SQL() string {
	if a.Arg == nil {
		return a.Func.String() + "(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return a.Func.String() + "(" + d + a.Arg.SQL() + ")"
}

// InExpr is `subject [NOT] IN (subquery | value list)`.
type InExpr struct {
	Subject  Expr
	Negate   bool
	Subquery *SelectStmt // exactly one of Subquery/List is set
	List     []Expr
}

func (*InExpr) expr() {}

// SQL renders the membership test.
func (e *InExpr) SQL() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	if e.Subquery != nil {
		return e.Subject.SQL() + " " + not + "IN (" + e.Subquery.SQL() + ")"
	}
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.SQL()
	}
	return e.Subject.SQL() + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

// ExistsExpr is `[NOT] EXISTS (subquery)`.
type ExistsExpr struct {
	Negate   bool
	Subquery *SelectStmt
}

func (*ExistsExpr) expr() {}

// SQL renders the existence test.
func (e *ExistsExpr) SQL() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return not + "EXISTS (" + e.Subquery.SQL() + ")"
}

// QuantifiedExpr is `subject op ALL|ANY (subquery)`.
type QuantifiedExpr struct {
	Subject  Expr
	Op       BinaryOp // comparison
	All      bool     // true = ALL, false = ANY/SOME
	Subquery *SelectStmt
}

func (*QuantifiedExpr) expr() {}

// SQL renders the quantified comparison.
func (e *QuantifiedExpr) SQL() string {
	q := "ANY"
	if e.All {
		q = "ALL"
	}
	return e.Subject.SQL() + " " + e.Op.String() + " " + q + " (" + e.Subquery.SQL() + ")"
}

// SubqueryExpr is a scalar subquery used as an expression, e.g.
// `1 < (SELECT COUNT(*) FROM ...)`.
type SubqueryExpr struct {
	Subquery *SelectStmt
}

func (*SubqueryExpr) expr() {}

// SQL renders the scalar subquery.
func (e *SubqueryExpr) SQL() string { return "(" + e.Subquery.SQL() + ")" }

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // may be nil
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// SQL renders the CASE expression.
func (e *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Then.SQL())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

// Star is the bare `*` select item.
type Star struct{}

func (*Star) expr() {}

// SQL renders the star.
func (*Star) SQL() string { return "*" }

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// SelectItem is one output column with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// SQL renders the select item.
func (s SelectItem) SQL() string {
	if s.Alias != "" {
		return s.Expr.SQL() + " AS " + quoteIdent(s.Alias)
	}
	return s.Expr.SQL()
}

// TableRef is one FROM entry: a base relation with an optional tuple-variable
// alias, or a joined table chain.
type TableRef struct {
	Relation string
	Alias    string
	// Join links an explicit JOIN ... ON chain; nil for comma-style FROM.
	Join *JoinClause
}

// JoinClause chains an explicit join onto a TableRef.
type JoinClause struct {
	Kind  JoinKind
	Right *TableRef
	On    Expr
}

// JoinKind enumerates explicit join types.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
)

// String renders the join keyword.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	default:
		return "JOIN"
	}
}

// SQL renders the table reference including any join chain.
func (t *TableRef) SQL() string {
	s := quoteIdent(t.Relation)
	if t.Alias != "" {
		s += " " + quoteIdent(t.Alias)
	}
	for j := t.Join; j != nil; {
		s += " " + j.Kind.String() + " " + quoteIdent(j.Right.Relation)
		if j.Right.Alias != "" {
			s += " " + quoteIdent(j.Right.Alias)
		}
		if j.On != nil {
			s += " ON " + j.On.SQL()
		}
		j = j.Right.Join
	}
	return s
}

// Name returns the name the table is referred to by: the alias when present,
// the relation name otherwise.
func (t *TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Relation
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SQL renders the order item.
func (o OrderItem) SQL() string {
	if o.Desc {
		return o.Expr.SQL() + " DESC"
	}
	return o.Expr.SQL()
}

// SelectStmt is a (possibly nested) SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []*TableRef
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

func (*SelectStmt) stmt() {}

// SQL renders the query.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.SQL())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.SQL())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// DML / DDL
// ---------------------------------------------------------------------------

// InsertStmt is INSERT INTO rel [(cols)] VALUES (...), (...) | SELECT.
type InsertStmt struct {
	Relation string
	Columns  []string
	Rows     [][]Expr
	Query    *SelectStmt // INSERT ... SELECT, mutually exclusive with Rows
}

func (*InsertStmt) stmt() {}

// SQL renders the insert.
func (s *InsertStmt) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + quoteIdent(s.Relation))
	if len(s.Columns) > 0 {
		b.WriteString(" (" + strings.Join(quoteIdents(s.Columns), ", ") + ")")
	}
	if s.Query != nil {
		b.WriteString(" " + s.Query.SQL())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		parts := make([]string, len(row))
		for j, e := range row {
			parts[j] = e.SQL()
		}
		b.WriteString("(" + strings.Join(parts, ", ") + ")")
	}
	return b.String()
}

// Assignment is one SET column = expr.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE rel SET ... [WHERE ...].
type UpdateStmt struct {
	Relation string
	Alias    string
	Set      []Assignment
	Where    Expr
}

func (*UpdateStmt) stmt() {}

// SQL renders the update.
func (s *UpdateStmt) SQL() string {
	var b strings.Builder
	b.WriteString("UPDATE " + quoteIdent(s.Relation))
	if s.Alias != "" {
		b.WriteString(" " + quoteIdent(s.Alias))
	}
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteIdent(a.Column) + " = " + a.Value.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	return b.String()
}

// DeleteStmt is DELETE FROM rel [WHERE ...].
type DeleteStmt struct {
	Relation string
	Alias    string
	Where    Expr
}

func (*DeleteStmt) stmt() {}

// SQL renders the delete.
func (s *DeleteStmt) SQL() string {
	var b strings.Builder
	b.WriteString("DELETE FROM " + quoteIdent(s.Relation))
	if s.Alias != "" {
		b.WriteString(" " + quoteIdent(s.Alias))
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	return b.String()
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    string
	NotNull bool
}

// ForeignKeyDef is one FOREIGN KEY clause in CREATE TABLE.
type ForeignKeyDef struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// CreateTableStmt is CREATE TABLE with column and constraint clauses.
type CreateTableStmt struct {
	Name        string
	Columns     []ColumnDef
	PrimaryKey  []string
	ForeignKeys []ForeignKeyDef
}

func (*CreateTableStmt) stmt() {}

// SQL renders the DDL.
func (s *CreateTableStmt) SQL() string {
	var parts []string
	for _, c := range s.Columns {
		p := quoteIdent(c.Name) + " " + c.Type
		if c.NotNull {
			p += " NOT NULL"
		}
		parts = append(parts, p)
	}
	if len(s.PrimaryKey) > 0 {
		parts = append(parts, "PRIMARY KEY ("+strings.Join(quoteIdents(s.PrimaryKey), ", ")+")")
	}
	for _, fk := range s.ForeignKeys {
		parts = append(parts, "FOREIGN KEY ("+strings.Join(quoteIdents(fk.Columns), ", ")+") REFERENCES "+
			quoteIdent(fk.RefTable)+" ("+strings.Join(quoteIdents(fk.RefColumns), ", ")+")")
	}
	return "CREATE TABLE " + quoteIdent(s.Name) + " (" + strings.Join(parts, ", ") + ")"
}

// ExplainStmt is EXPLAIN [PLAN] select: execute the query and report the
// cost-based plan with estimated and actual row counts per step.
type ExplainStmt struct {
	Query *SelectStmt
}

func (*ExplainStmt) stmt() {}

// SQL renders the statement in its canonical EXPLAIN PLAN form.
func (s *ExplainStmt) SQL() string { return "EXPLAIN PLAN " + s.Query.SQL() }

// CreateViewStmt is CREATE VIEW name AS select.
type CreateViewStmt struct {
	Name  string
	Query *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// SQL renders the view definition.
func (s *CreateViewStmt) SQL() string {
	return "CREATE VIEW " + quoteIdent(s.Name) + " AS " + s.Query.SQL()
}

// ---------------------------------------------------------------------------
// AST utilities
// ---------------------------------------------------------------------------

// WalkExpr calls fn on e and every sub-expression, pre-order. Subqueries are
// not descended into; callers that need them should inspect the node types.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *NotExpr:
		WalkExpr(x.Inner, fn)
	case *IsNullExpr:
		WalkExpr(x.Inner, fn)
	case *BetweenExpr:
		WalkExpr(x.Subject, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *AggregateExpr:
		if x.Arg != nil {
			WalkExpr(x.Arg, fn)
		}
	case *InExpr:
		WalkExpr(x.Subject, fn)
		for _, it := range x.List {
			WalkExpr(it, fn)
		}
	case *QuantifiedExpr:
		WalkExpr(x.Subject, fn)
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		if x.Else != nil {
			WalkExpr(x.Else, fn)
		}
	}
}

// Conjuncts flattens a WHERE/HAVING tree into its top-level AND-ed parts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// AndAll rebuilds a conjunction from parts; nil for an empty slice.
func AndAll(parts []Expr) Expr {
	var out Expr
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &BinaryExpr{Op: OpAnd, Left: out, Right: p}
		}
	}
	return out
}

// Subqueries returns every directly nested SelectStmt of e (not recursing
// into the subqueries themselves).
func Subqueries(e Expr) []*SelectStmt {
	var subs []*SelectStmt
	WalkExpr(e, func(x Expr) bool {
		switch s := x.(type) {
		case *InExpr:
			if s.Subquery != nil {
				subs = append(subs, s.Subquery)
			}
		case *ExistsExpr:
			subs = append(subs, s.Subquery)
		case *QuantifiedExpr:
			subs = append(subs, s.Subquery)
		case *SubqueryExpr:
			subs = append(subs, s.Subquery)
		}
		return true
	})
	return subs
}

// Grouped reports whether the SELECT evaluates through grouping: an explicit
// GROUP BY, a HAVING clause, or an aggregate in the select list. The engine
// (pipeline choice) and the planner (aggregate shape step) share this
// definition so plans always describe what actually executes.
func (s *SelectStmt) Grouped() bool {
	if len(s.GroupBy) > 0 || s.Having != nil {
		return true
	}
	for _, it := range s.Items {
		if HasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// HasAggregate reports whether the expression contains an aggregate call
// outside any subquery.
func HasAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if _, ok := x.(*AggregateExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// ColumnRefs collects every column reference in the expression, excluding
// those inside subqueries.
func ColumnRefs(e Expr) []*ColumnRef {
	var refs []*ColumnRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			refs = append(refs, c)
		}
		return true
	})
	return refs
}

// CloneExpr deep-copies an expression tree. Subqueries are cloned too.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		c := *x
		return &c
	case *Literal:
		l := *x
		return &l
	case *Star:
		return &Star{}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: CloneExpr(x.Left), Right: CloneExpr(x.Right)}
	case *NotExpr:
		return &NotExpr{Inner: CloneExpr(x.Inner)}
	case *IsNullExpr:
		return &IsNullExpr{Inner: CloneExpr(x.Inner), Negate: x.Negate}
	case *BetweenExpr:
		return &BetweenExpr{Subject: CloneExpr(x.Subject), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Negate: x.Negate}
	case *AggregateExpr:
		var arg Expr
		if x.Arg != nil {
			arg = CloneExpr(x.Arg)
		}
		return &AggregateExpr{Func: x.Func, Arg: arg, Distinct: x.Distinct}
	case *InExpr:
		out := &InExpr{Subject: CloneExpr(x.Subject), Negate: x.Negate}
		if x.Subquery != nil {
			out.Subquery = CloneSelect(x.Subquery)
		}
		for _, it := range x.List {
			out.List = append(out.List, CloneExpr(it))
		}
		return out
	case *ExistsExpr:
		return &ExistsExpr{Negate: x.Negate, Subquery: CloneSelect(x.Subquery)}
	case *QuantifiedExpr:
		return &QuantifiedExpr{Subject: CloneExpr(x.Subject), Op: x.Op, All: x.All, Subquery: CloneSelect(x.Subquery)}
	case *SubqueryExpr:
		return &SubqueryExpr{Subquery: CloneSelect(x.Subquery)}
	case *CaseExpr:
		out := &CaseExpr{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, CaseWhen{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)})
		}
		if x.Else != nil {
			out.Else = CloneExpr(x.Else)
		}
		return out
	default:
		panic(fmt.Sprintf("sqlparser: CloneExpr: unknown node %T", e))
	}
}

// CloneSelect deep-copies a SELECT statement.
func CloneSelect(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	out := &SelectStmt{Distinct: s.Distinct, Limit: s.Limit}
	for _, it := range s.Items {
		out.Items = append(out.Items, SelectItem{Expr: CloneExpr(it.Expr), Alias: it.Alias})
	}
	for _, t := range s.From {
		out.From = append(out.From, cloneTableRef(t))
	}
	out.Where = CloneExpr(s.Where)
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, CloneExpr(g))
	}
	out.Having = CloneExpr(s.Having)
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	return out
}

func cloneTableRef(t *TableRef) *TableRef {
	if t == nil {
		return nil
	}
	out := &TableRef{Relation: t.Relation, Alias: t.Alias}
	if t.Join != nil {
		out.Join = &JoinClause{Kind: t.Join.Kind, Right: cloneTableRef(t.Join.Right), On: CloneExpr(t.Join.On)}
	}
	return out
}
