package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/value"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if !p.atEOF() {
		t := p.peek()
		return nil, fmt.Errorf("sql:%d:%d: unexpected %s %q after statement", t.Line, t.Col, t.Kind, t.Text)
	}
	return stmt, nil
}

// ParseSelect parses src and requires it to be a SELECT statement.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement, got %T", stmt)
	}
	return sel, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var stmts []Statement
	for !p.atEOF() {
		stmt, err := p.parseStatement()
		if err != nil {
			return stmts, err
		}
		stmts = append(stmts, stmt)
		if !p.accept(TokOp, ";") && !p.atEOF() {
			t := p.peek()
			return stmts, fmt.Errorf("sql:%d:%d: expected ';' between statements, got %q", t.Line, t.Col, t.Text)
		}
		// Allow trailing semicolons.
		for p.accept(TokOp, ";") {
		}
	}
	return stmts, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) peek() Token {
	if p.atEOF() {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekAt(off int) Token {
	if p.pos+off >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos+off]
}

func (p *Parser) next() Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

// accept consumes the next token if it matches kind and (case-insensitive)
// text; empty text matches any text of that kind.
func (p *Parser) accept(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind != kind {
		return false
	}
	if text != "" && !strings.EqualFold(t.Text, text) {
		return false
	}
	p.pos++
	return true
}

func (p *Parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

func (p *Parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.peek()
	if t.Kind != kind || (text != "" && !strings.EqualFold(t.Text, text)) {
		want := text
		if want == "" {
			want = kind.String()
		}
		return t, fmt.Errorf("sql:%d:%d: expected %s, got %s %q", t.Line, t.Col, want, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectKeyword(kw string) error {
	_, err := p.expect(TokKeyword, kw)
	return err
}

// parseIdent accepts an identifier or a non-reserved keyword used as a name
// (the paper's schema uses CAST and YEAR, which many dialects reserve; we
// treat every keyword that can syntactically be a name as one).
func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	// Keywords usable as identifiers in name position.
	if t.Kind == TokKeyword {
		switch t.Text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "DATE", "KEY", "VIEW", "ALL", "ANY", "SOME":
			p.pos++
			return t.Text, nil
		}
	}
	return "", fmt.Errorf("sql:%d:%d: expected identifier, got %s %q", t.Line, t.Col, t.Kind, t.Text)
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	// EXPLAIN is a contextual keyword: it introduces a statement but stays a
	// plain identifier everywhere else (a column may be named "explain").
	if t.Kind == TokIdent && strings.EqualFold(t.Text, "EXPLAIN") {
		return p.parseExplain()
	}
	if t.Kind != TokKeyword {
		return nil, fmt.Errorf("sql:%d:%d: expected a statement keyword, got %q", t.Line, t.Col, t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	default:
		return nil, fmt.Errorf("sql:%d:%d: unsupported statement %q", t.Line, t.Col, t.Text)
	}
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// parseExplain parses EXPLAIN [PLAN] <select>. EXPLAIN and PLAN are
// contextual — not reserved words — so identifiers named "explain" or
// "plan" keep working; the PLAN word is optional on input and canonical on
// output.
func (p *Parser) parseExplain() (*ExplainStmt, error) {
	if _, err := p.expect(TokIdent, "EXPLAIN"); err != nil {
		return nil, err
	}
	p.accept(TokIdent, "PLAN")
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{Query: sel}, nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql:%d:%d: bad LIMIT %q", t.Line, t.Col, t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// Bare `*`.
	if p.peek().Kind == TokOp && p.peek().Text == "*" {
		p.pos++
		return SelectItem{Expr: &Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokIdent {
		// Implicit alias: `m.title title`.
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (*TableRef, error) {
	rel, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	tr := &TableRef{Relation: rel}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		tr.Alias = alias
	} else if p.peek().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	// Explicit JOIN chain.
	cur := tr
	for {
		var kind JoinKind
		switch {
		case p.acceptKeyword("JOIN"):
			kind = JoinInner
		case p.peek().Kind == TokKeyword && p.peek().Text == "INNER" && p.peekAt(1).Text == "JOIN":
			p.pos += 2
			kind = JoinInner
		case p.peek().Kind == TokKeyword && p.peek().Text == "LEFT":
			p.pos++
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinLeft
		case p.peek().Kind == TokKeyword && p.peek().Text == "RIGHT":
			p.pos++
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinRight
		default:
			return tr, nil
		}
		rightRel, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		right := &TableRef{Relation: rightRel}
		if p.acceptKeyword("AS") {
			alias, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			right.Alias = alias
		} else if p.peek().Kind == TokIdent {
			right.Alias = p.next().Text
		}
		var on Expr
		if p.acceptKeyword("ON") {
			on, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		cur.Join = &JoinClause{Kind: kind, Right: right, On: on}
		cur = right
	}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

// parseExpr parses a full boolean expression: OR of ANDs of NOTs of
// predicates of additive expressions.
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// AND also terminates BETWEEN lo AND hi; parseNot handles BETWEEN
		// atomically, so any AND here is a conjunction.
		if !p.acceptKeyword("AND") {
			return left, nil
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
}

func (p *Parser) parseNot() (Expr, error) {
	if p.peek().Kind == TokKeyword && p.peek().Text == "NOT" {
		// NOT EXISTS is handled in parsePredicate via the primary; here only
		// generic NOT <expr>.
		if p.peekAt(1).Kind == TokKeyword && p.peekAt(1).Text == "EXISTS" {
			return p.parsePredicate()
		}
		p.pos++
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses comparison / IN / BETWEEN / LIKE / IS NULL /
// quantified predicates over additive expressions.
func (p *Parser) parsePredicate() (Expr, error) {
	// EXISTS / NOT EXISTS.
	if p.peek().Kind == TokKeyword && p.peek().Text == "EXISTS" {
		p.pos++
		sub, err := p.parseParenSubquery()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Subquery: sub}, nil
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "NOT" &&
		p.peekAt(1).Kind == TokKeyword && p.peekAt(1).Text == "EXISTS" {
		p.pos += 2
		sub, err := p.parseParenSubquery()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Negate: true, Subquery: sub}, nil
	}

	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}

	// IS [NOT] NULL.
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Inner: left, Negate: neg}, nil
	}

	// [NOT] IN / [NOT] BETWEEN / [NOT] LIKE.
	negate := false
	if p.peek().Kind == TokKeyword && p.peek().Text == "NOT" {
		switch p.peekAt(1).Text {
		case "IN", "BETWEEN", "LIKE":
			p.pos++
			negate = true
		}
	}

	switch {
	case p.acceptKeyword("IN"):
		return p.parseInTail(left, negate)
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Subject: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := Expr(&BinaryExpr{Op: OpLike, Left: left, Right: pat})
		if negate {
			like = &NotExpr{Inner: like}
		}
		return like, nil
	}

	// Comparison, possibly quantified.
	var op BinaryOp
	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=":
			op = OpEq
		case "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return left, nil
		}
		p.pos++
	} else {
		return left, nil
	}

	// op ALL|ANY|SOME (subquery). The quantifier keywords double as
	// identifiers, so only a following "(" selects the quantified form —
	// "x < ALL (select ...)" quantifies, "x < ALL" compares against a
	// column named ALL.
	if p.peek().Kind == TokKeyword && p.peekAt(1).Kind == TokOp && p.peekAt(1).Text == "(" {
		switch p.peek().Text {
		case "ALL":
			p.pos++
			sub, err := p.parseParenSubquery()
			if err != nil {
				return nil, err
			}
			return &QuantifiedExpr{Subject: left, Op: op, All: true, Subquery: sub}, nil
		case "ANY", "SOME":
			p.pos++
			sub, err := p.parseParenSubquery()
			if err != nil {
				return nil, err
			}
			return &QuantifiedExpr{Subject: left, Op: op, All: false, Subquery: sub}, nil
		}
	}

	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, Left: left, Right: right}, nil
}

func (p *Parser) parseInTail(subject Expr, negate bool) (Expr, error) {
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &InExpr{Subject: subject, Negate: negate, Subquery: sub}, nil
	}
	var list []Expr
	for {
		e, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return &InExpr{Subject: subject, Negate: negate, List: list}, nil
}

func (p *Parser) parseParenSubquery() (*SelectStmt, error) {
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return sub, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-") {
			return left, nil
		}
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if t.Text == "-" {
			op = OpSub
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return left, nil
		}
		// A `*` directly before `)` or `,` or FROM is a select-star context,
		// never multiplication; but parseUnary never leaves us there. Safe.
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		var op BinaryOp
		switch t.Text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		default:
			op = OpMod
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.peek().Kind == TokOp && p.peek().Text == "-" {
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*Literal); ok && lit.Value.Kind() == value.Int {
			return &Literal{Value: value.NewInt(-lit.Value.Int())}, nil
		}
		if lit, ok := inner.(*Literal); ok && lit.Value.Kind() == value.Float {
			return &Literal{Value: value.NewFloat(-lit.Value.Float())}, nil
		}
		return &BinaryExpr{Op: OpSub, Left: &Literal{Value: value.NewInt(0)}, Right: inner}, nil
	}
	if p.peek().Kind == TokOp && p.peek().Text == "+" {
		p.pos++
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql:%d:%d: bad number %q", t.Line, t.Col, t.Text)
			}
			return &Literal{Value: value.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql:%d:%d: bad number %q", t.Line, t.Col, t.Text)
		}
		return &Literal{Value: value.NewInt(n)}, nil

	case TokString:
		p.pos++
		return &Literal{Value: value.NewText(t.Text)}, nil

	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Literal{Value: value.NewNull()}, nil
		case "TRUE":
			p.pos++
			return &Literal{Value: value.NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Value: value.NewBool(false)}, nil
		case "DATE":
			// DATE 'yyyy-mm-dd'
			if p.peekAt(1).Kind == TokString {
				p.pos++
				st := p.next()
				d, err := lexicon.ParseDate(st.Text)
				if err != nil {
					return nil, fmt.Errorf("sql:%d:%d: bad date literal %q", st.Line, st.Col, st.Text)
				}
				return &Literal{Value: value.NewDate(d)}, nil
			}
			// Otherwise DATE acts as an identifier (column named date).
			return p.parseNameExpr()
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			if p.peekAt(1).Kind == TokOp && p.peekAt(1).Text == "(" {
				return p.parseAggregate()
			}
			return p.parseNameExpr()
		case "CASE":
			return p.parseCase()
		case "SELECT":
			return nil, fmt.Errorf("sql:%d:%d: subquery must be parenthesized", t.Line, t.Col)
		case "ALL", "ANY", "SOME", "KEY", "VIEW":
			return p.parseNameExpr()
		default:
			return nil, fmt.Errorf("sql:%d:%d: unexpected keyword %q in expression", t.Line, t.Col, t.Text)
		}

	case TokIdent:
		return p.parseNameExpr()

	case TokOp:
		if t.Text == "(" {
			p.pos++
			// Parenthesized subquery or expression.
			if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Subquery: sub}, nil
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	// Note: a bare "*" is NOT an expression — it is only legal as a whole
	// select item (parseSelectItem), as alias.* (parseNameExpr), or inside
	// COUNT(*) (parseAggregate). Accepting it here would let it combine
	// with operators into ASTs that cannot be printed back to valid SQL.
	return nil, fmt.Errorf("sql:%d:%d: unexpected %s %q in expression", t.Line, t.Col, t.Kind, t.Text)
}

// parseNameExpr parses `name` or `qualifier.name` or `qualifier.*`.
func (p *Parser) parseNameExpr() (Expr, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokOp && p.peek().Text == "." {
		p.pos++
		if p.peek().Kind == TokOp && p.peek().Text == "*" {
			p.pos++
			return &ColumnRef{Table: name, Column: "*"}, nil
		}
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Column: col}, nil
	}
	return &ColumnRef{Column: name}, nil
}

func (p *Parser) parseAggregate() (Expr, error) {
	t := p.next() // function keyword
	var fn AggFunc
	switch t.Text {
	case "COUNT":
		fn = AggCount
	case "SUM":
		fn = AggSum
	case "AVG":
		fn = AggAvg
	case "MIN":
		fn = AggMin
	case "MAX":
		fn = AggMax
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	agg := &AggregateExpr{Func: fn}
	if p.peek().Kind == TokOp && p.peek().Text == "*" {
		p.pos++
		if fn != AggCount {
			return nil, fmt.Errorf("sql:%d:%d: %s(*) is not valid", t.Line, t.Col, fn)
		}
	} else {
		agg.Distinct = p.acceptKeyword("DISTINCT")
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return agg, nil
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	out := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(out.Whens) == 0 {
		t := p.peek()
		return nil, fmt.Errorf("sql:%d:%d: CASE requires at least one WHEN", t.Line, t.Col)
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// DML / DDL
// ---------------------------------------------------------------------------

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	rel, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Relation: rel}
	if p.peek().Kind == TokOp && p.peek().Text == "(" {
		p.pos++
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Query = q
		return stmt, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	rel, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Relation: rel}
	if p.peek().Kind == TokIdent {
		stmt.Alias = p.next().Text
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Value: e})
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	rel, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Relation: rel}
	if p.peek().Kind == TokIdent {
		stmt.Alias = p.next().Text
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("VIEW"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Query: q}, nil
	default:
		t := p.peek()
		return nil, fmt.Errorf("sql:%d:%d: expected TABLE or VIEW after CREATE", t.Line, t.Col)
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peek().Kind == TokKeyword && p.peek().Text == "PRIMARY":
			p.pos++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenNameList()
			if err != nil {
				return nil, err
			}
			stmt.PrimaryKey = cols
		case p.peek().Kind == TokKeyword && p.peek().Text == "FOREIGN":
			p.pos++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenNameList()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			refCols, err := p.parseParenNameList()
			if err != nil {
				return nil, err
			}
			stmt.ForeignKeys = append(stmt.ForeignKeys, ForeignKeyDef{Columns: cols, RefTable: ref, RefColumns: refCols})
		default:
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ty, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			def := ColumnDef{Name: col, Type: strings.ToUpper(ty)}
			if p.peek().Kind == TokKeyword && p.peek().Text == "NOT" {
				p.pos++
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				def.NotNull = true
			}
			stmt.Columns = append(stmt.Columns, def)
		}
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseParenNameList() ([]string, error) {
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	var names []string
	for {
		n, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return names, nil
}
