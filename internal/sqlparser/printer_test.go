package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// TestPrinterBranches exercises SQL() rendering paths not covered by the
// round-trip corpus.
func TestPrinterBranches(t *testing.T) {
	cases := []struct {
		expr Expr
		want string
	}{
		{&NotExpr{Inner: &BinaryExpr{Op: OpAnd,
			Left:  &ColumnRef{Table: "a", Column: "x"},
			Right: &ColumnRef{Table: "a", Column: "y"}}},
			"NOT (a.x AND a.y)"},
		{&NotExpr{Inner: &ColumnRef{Column: "flag"}}, "NOT flag"},
		{&IsNullExpr{Inner: &ColumnRef{Column: "x"}, Negate: true}, "x IS NOT NULL"},
		{&BetweenExpr{Subject: &ColumnRef{Column: "y"},
			Lo: &Literal{Value: value.NewInt(1)}, Hi: &Literal{Value: value.NewInt(2)},
			Negate: true},
			"y NOT BETWEEN 1 AND 2"},
		{&QuantifiedExpr{Subject: &ColumnRef{Column: "x"}, Op: OpGt, All: false,
			Subquery: &SelectStmt{Items: []SelectItem{{Expr: &Star{}}}, Limit: -1}},
			"x > ANY (SELECT *)"},
		{&InExpr{Subject: &ColumnRef{Column: "x"}, Negate: true,
			List: []Expr{&Literal{Value: value.NewInt(1)}}},
			"x NOT IN (1)"},
		{&ExistsExpr{Negate: true,
			Subquery: &SelectStmt{Items: []SelectItem{{Expr: &Star{}}}, Limit: -1}},
			"NOT EXISTS (SELECT *)"},
		{&AggregateExpr{Func: AggSum, Arg: &ColumnRef{Column: "x"}, Distinct: true},
			"SUM(DISTINCT x)"},
	}
	for _, c := range cases {
		if got := c.expr.SQL(); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}

func TestPrinterParenthesizesMixedBooleans(t *testing.T) {
	// a AND (b OR c) must keep its parentheses when printed.
	sel := mustSelect(t, "select * from T t where t.a = 1 and (t.b = 2 or t.c = 3)")
	printed := sel.SQL()
	again, err := ParseSelect(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	if again.SQL() != printed {
		t.Errorf("fixpoint: %q vs %q", printed, again.SQL())
	}
	// Semantically: the top operator must still be AND.
	if b, ok := again.Where.(*BinaryExpr); !ok || b.Op != OpAnd {
		t.Errorf("structure lost: %#v", again.Where)
	}
}

func TestJoinKindStrings(t *testing.T) {
	if JoinInner.String() != "JOIN" || JoinLeft.String() != "LEFT JOIN" || JoinRight.String() != "RIGHT JOIN" {
		t.Error("join kind names")
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k, want := range map[TokenKind]string{
		TokEOF: "end of input", TokIdent: "identifier", TokKeyword: "keyword",
		TokNumber: "number", TokString: "string", TokOp: "operator",
		TokInvalid: "invalid token",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestAggFuncStrings(t *testing.T) {
	for f, want := range map[AggFunc]string{
		AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q", int(f), f.String())
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[BinaryOp]string{
		OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*",
		OpDiv: "/", OpMod: "%", OpLike: "LIKE",
	} {
		if op.String() != want {
			t.Errorf("op %d = %q, want %q", int(op), op.String(), want)
		}
	}
}

func TestSelectItemAndOrderItemSQL(t *testing.T) {
	it := SelectItem{Expr: &ColumnRef{Table: "m", Column: "title"}, Alias: "t"}
	if it.SQL() != "m.title AS t" {
		t.Errorf("item = %q", it.SQL())
	}
	oi := OrderItem{Expr: &ColumnRef{Column: "x"}, Desc: true}
	if oi.SQL() != "x DESC" {
		t.Errorf("order item = %q", oi.SQL())
	}
}

func TestCreateViewAndInsertSelectSQL(t *testing.T) {
	stmt, err := Parse("create view V as select t.x from T t")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stmt.SQL(), "CREATE VIEW V AS SELECT") {
		t.Errorf("view SQL = %q", stmt.SQL())
	}
	ins, err := Parse("insert into T select u.x from U u")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ins.SQL(), "INSERT INTO T SELECT") {
		t.Errorf("insert-select SQL = %q", ins.SQL())
	}
}

func TestLexerDirect(t *testing.T) {
	lx := NewLexer("select 'a''b' -- comment\n42")
	tok, err := lx.Next()
	if err != nil || tok.Kind != TokKeyword || tok.Text != "SELECT" {
		t.Fatalf("tok1 = %+v, %v", tok, err)
	}
	tok, err = lx.Next()
	if err != nil || tok.Kind != TokString || tok.Text != "a'b" {
		t.Fatalf("tok2 = %+v, %v", tok, err)
	}
	tok, err = lx.Next()
	if err != nil || tok.Kind != TokNumber || tok.Text != "42" {
		t.Fatalf("tok3 = %+v, %v", tok, err)
	}
	tok, err = lx.Next()
	if err != nil || tok.Kind != TokEOF {
		t.Fatalf("tok4 = %+v, %v", tok, err)
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	sel := mustSelect(t, `select t."strange name" from T t`)
	c := sel.Items[0].Expr.(*ColumnRef)
	if c.Column != "strange name" {
		t.Errorf("quoted ident = %q", c.Column)
	}
	if _, err := Parse(`select "unterminated from T`); err == nil {
		t.Error("unterminated quoted ident accepted")
	}
}

func TestFloatLiterals(t *testing.T) {
	sel := mustSelect(t, "select 3.25, .5 from T t")
	if sel.Items[0].Expr.(*Literal).Value.Float() != 3.25 {
		t.Error("float literal")
	}
	if sel.Items[1].Expr.(*Literal).Value.Float() != 0.5 {
		t.Error("leading-dot float literal")
	}
}

func TestBlockCommentUnterminated(t *testing.T) {
	// An unterminated block comment consumes the rest of input; the parser
	// then fails on missing FROM contents.
	if _, err := Parse("select * from T t /* never closed"); err != nil {
		t.Logf("unterminated comment rejected: %v (acceptable)", err)
	}
}

func TestParseQ6Verbatim(t *testing.T) {
	// The paper's literal Q6 text (with its alias inconsistencies) must
	// still parse — translation is what rejects it, not the parser.
	if _, err := ParseSelect(PaperQ6Verbatim); err != nil {
		t.Errorf("verbatim Q6 does not parse: %v", err)
	}
}
