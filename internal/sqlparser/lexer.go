// Package sqlparser implements a SQL lexer, abstract syntax tree, recursive
// descent parser, and pretty-printer for the SQL dialect the paper's queries
// (Q1–Q9, the EMP/DEPT example, and DML/DDL) are written in: SELECT with
// arbitrary joins and tuple variables, nested subqueries via IN / EXISTS /
// ANY / ALL, aggregates with GROUP BY and HAVING (including scalar
// subqueries in HAVING), ORDER BY, DISTINCT, and INSERT / UPDATE / DELETE /
// CREATE TABLE / CREATE VIEW.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp // operators and punctuation: = < > <= >= != <> + - * / ( ) , . ;
	TokInvalid
)

// String names the kind for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	default:
		return "invalid token"
	}
}

// Token is one lexical unit with its source position (1-based line/column).
type Token struct {
	Kind TokenKind
	Text string // keywords are uppercased; identifiers keep original case
	Line int
	Col  int
}

// keywords is the reserved-word list of the dialect. Anything else lexes as
// an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "EXISTS": true,
	"ALL": true, "ANY": true, "SOME": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "NULL": true, "DISTINCT": true, "AS": true, "JOIN": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "VIEW": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REFERENCES": true,
	"TRUE": true, "FALSE": true, "DATE": true, "UNION": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

// Lexer scans SQL text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the whole input, returning tokens without the trailing EOF.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return toks, err
		}
		if tok.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, tok)
	}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.lexWord(line, col), nil
	case unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(lx.peekAt(1)))):
		return lx.lexNumber(line, col)
	case c == '\'':
		return lx.lexString(line, col)
	case c == '"':
		return lx.lexQuotedIdent(line, col)
	default:
		return lx.lexOp(line, col)
	}
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.advance()
		case c == '-' && lx.peekAt(1) == '-':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			lx.advance()
			lx.advance()
			for lx.pos < len(lx.src) && !(lx.peek() == '*' && lx.peekAt(1) == '/') {
				lx.advance()
			}
			if lx.pos < len(lx.src) {
				lx.advance()
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func (lx *Lexer) lexWord(line, col int) Token {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	word := lx.src[start:lx.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Line: line, Col: col}
	}
	return Token{Kind: TokIdent, Text: word, Line: line, Col: col}
}

func (lx *Lexer) lexNumber(line, col int) (Token, error) {
	start := lx.pos
	seenDot := false
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if unicode.IsDigit(rune(c)) {
			lx.advance()
			continue
		}
		if c == '.' && !seenDot && unicode.IsDigit(rune(lx.peekAt(1))) {
			seenDot = true
			lx.advance()
			continue
		}
		break
	}
	text := lx.src[start:lx.pos]
	if lx.pos < len(lx.src) && isIdentStart(lx.peek()) {
		return Token{Kind: TokInvalid, Text: text, Line: line, Col: col},
			fmt.Errorf("sql:%d:%d: malformed number %q", line, col, text+string(lx.peek()))
	}
	return Token{Kind: TokNumber, Text: text, Line: line, Col: col}, nil
}

func (lx *Lexer) lexString(line, col int) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{Kind: TokInvalid, Line: line, Col: col},
				fmt.Errorf("sql:%d:%d: unterminated string literal", line, col)
		}
		c := lx.advance()
		if c == '\'' {
			if lx.peek() == '\'' { // escaped quote
				lx.advance()
				b.WriteByte('\'')
				continue
			}
			return Token{Kind: TokString, Text: b.String(), Line: line, Col: col}, nil
		}
		b.WriteByte(c)
	}
}

func (lx *Lexer) lexQuotedIdent(line, col int) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{Kind: TokInvalid, Line: line, Col: col},
				fmt.Errorf("sql:%d:%d: unterminated quoted identifier", line, col)
		}
		c := lx.advance()
		if c == '"' {
			return Token{Kind: TokIdent, Text: b.String(), Line: line, Col: col}, nil
		}
		b.WriteByte(c)
	}
}

func (lx *Lexer) lexOp(line, col int) (Token, error) {
	c := lx.advance()
	two := ""
	if lx.pos < len(lx.src) {
		two = string(c) + string(lx.peek())
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		lx.advance()
		if two == "<>" {
			two = "!="
		}
		return Token{Kind: TokOp, Text: two, Line: line, Col: col}, nil
	}
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';', '%':
		return Token{Kind: TokOp, Text: string(c), Line: line, Col: col}, nil
	default:
		return Token{Kind: TokInvalid, Text: string(c), Line: line, Col: col},
			fmt.Errorf("sql:%d:%d: unexpected character %q", line, col, string(c))
	}
}
