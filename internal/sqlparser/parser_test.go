package sqlparser

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

// TestParseExplain covers EXPLAIN [PLAN] <select>: the PLAN keyword is
// optional on input, canonical on output, and the round trip is stable.
func TestParseExplain(t *testing.T) {
	for _, src := range []string{
		"explain plan select m.title from MOVIES m where m.id = 1",
		"explain select m.title from MOVIES m where m.id = 1",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		exp, ok := stmt.(*ExplainStmt)
		if !ok {
			t.Fatalf("%s parsed as %T", src, stmt)
		}
		if exp.Query == nil || len(exp.Query.From) != 1 {
			t.Fatalf("%s: bad inner query", src)
		}
		printed := exp.SQL()
		if want := "EXPLAIN PLAN SELECT"; !strings.HasPrefix(printed, want) {
			t.Fatalf("printed %q, want %q prefix", printed, want)
		}
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if again.SQL() != printed {
			t.Fatalf("round trip unstable: %q vs %q", again.SQL(), printed)
		}
	}
	if _, err := Parse("explain insert into T (a) values (1)"); err == nil {
		t.Fatal("EXPLAIN of DML accepted")
	}
	// EXPLAIN and PLAN are contextual, not reserved: they remain valid
	// identifiers in every other position.
	for _, src := range []string{
		"select t.plan from T t",
		"select t.x as plan from T t",
		"select t.x from PLAN t",
		"select t.explain from EXPLAIN t",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "select m.title from MOVIES m where m.year = 2005")
	if len(sel.Items) != 1 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	col, ok := sel.Items[0].Expr.(*ColumnRef)
	if !ok || col.Table != "m" || col.Column != "title" {
		t.Errorf("item = %#v", sel.Items[0].Expr)
	}
	if len(sel.From) != 1 || sel.From[0].Relation != "MOVIES" || sel.From[0].Alias != "m" {
		t.Errorf("from = %#v", sel.From[0])
	}
	cmp, ok := sel.Where.(*BinaryExpr)
	if !ok || cmp.Op != OpEq {
		t.Fatalf("where = %#v", sel.Where)
	}
	lit, ok := cmp.Right.(*Literal)
	if !ok || lit.Value.Int() != 2005 {
		t.Errorf("rhs = %#v", cmp.Right)
	}
}

func TestParseAllPaperQueries(t *testing.T) {
	for label, src := range PaperQueries {
		sel, err := ParseSelect(src)
		if err != nil {
			t.Errorf("%s: %v", label, err)
			continue
		}
		// Round trip: print and reparse; ASTs must print identically.
		printed := sel.SQL()
		again, err := ParseSelect(printed)
		if err != nil {
			t.Errorf("%s: reparse of %q: %v", label, printed, err)
			continue
		}
		if again.SQL() != printed {
			t.Errorf("%s: round trip mismatch:\n  %s\n  %s", label, printed, again.SQL())
		}
	}
}

func TestParseQ1Shape(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q1"])
	if len(sel.From) != 3 {
		t.Fatalf("Q1 from = %d", len(sel.From))
	}
	conj := Conjuncts(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("Q1 conjuncts = %d", len(conj))
	}
}

func TestParseQ5Nesting(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q5"])
	in1, ok := sel.Where.(*InExpr)
	if !ok || in1.Subquery == nil {
		t.Fatalf("Q5 outer where = %#v", sel.Where)
	}
	in2, ok := in1.Subquery.Where.(*InExpr)
	if !ok || in2.Subquery == nil {
		t.Fatalf("Q5 inner where = %#v", in1.Subquery.Where)
	}
	cmp, ok := in2.Subquery.Where.(*BinaryExpr)
	if !ok || cmp.Op != OpEq {
		t.Fatalf("Q5 innermost where = %#v", in2.Subquery.Where)
	}
}

func TestParseQ6DoubleNotExists(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q6"])
	ex1, ok := sel.Where.(*ExistsExpr)
	if !ok || !ex1.Negate {
		t.Fatalf("Q6 outer = %#v", sel.Where)
	}
	ex2, ok := ex1.Subquery.Where.(*ExistsExpr)
	if !ok || !ex2.Negate {
		t.Fatalf("Q6 inner = %#v", ex1.Subquery.Where)
	}
}

func TestParseQ7HavingScalarSubquery(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q7"])
	if len(sel.GroupBy) != 2 {
		t.Fatalf("Q7 group by = %d", len(sel.GroupBy))
	}
	cmp, ok := sel.Having.(*BinaryExpr)
	if !ok || cmp.Op != OpLt {
		t.Fatalf("Q7 having = %#v", sel.Having)
	}
	if _, ok := cmp.Right.(*SubqueryExpr); !ok {
		t.Fatalf("Q7 having rhs = %#v", cmp.Right)
	}
	// COUNT(*) in select list.
	agg, ok := sel.Items[2].Expr.(*AggregateExpr)
	if !ok || agg.Func != AggCount || agg.Arg != nil {
		t.Fatalf("Q7 count(*) = %#v", sel.Items[2].Expr)
	}
}

func TestParseQ8CountDistinct(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q8"])
	cmp := sel.Having.(*BinaryExpr)
	agg, ok := cmp.Left.(*AggregateExpr)
	if !ok || !agg.Distinct || agg.Func != AggCount {
		t.Fatalf("Q8 having lhs = %#v", cmp.Left)
	}
	lit, ok := cmp.Right.(*Literal)
	if !ok || lit.Value.Int() != 1 {
		t.Fatalf("Q8 having rhs = %#v", cmp.Right)
	}
}

func TestParseQ9QuantifiedAll(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q9"])
	conj := Conjuncts(sel.Where)
	var q *QuantifiedExpr
	for _, c := range conj {
		if qq, ok := c.(*QuantifiedExpr); ok {
			q = qq
		}
	}
	if q == nil || !q.All || q.Op != OpLe {
		t.Fatalf("Q9 quantifier = %#v", q)
	}
	if len(q.Subquery.From) != 2 {
		t.Errorf("Q9 subquery from = %d", len(q.Subquery.From))
	}
}

func TestParseInList(t *testing.T) {
	sel := mustSelect(t, "select * from GENRE g where g.genre in ('action', 'drama', 'comedy')")
	in, ok := sel.Where.(*InExpr)
	if !ok || len(in.List) != 3 || in.Subquery != nil {
		t.Fatalf("in = %#v", sel.Where)
	}
	sel2 := mustSelect(t, "select * from GENRE g where g.genre not in ('action')")
	in2 := sel2.Where.(*InExpr)
	if !in2.Negate {
		t.Error("NOT IN not negated")
	}
}

func TestParseBetweenLikeIsNull(t *testing.T) {
	sel := mustSelect(t, "select * from MOVIES m where m.year between 2000 and 2005 and m.title like 'M%' and m.id is not null")
	conj := Conjuncts(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if b, ok := conj[0].(*BetweenExpr); !ok || b.Negate {
		t.Errorf("between = %#v", conj[0])
	}
	if l, ok := conj[1].(*BinaryExpr); !ok || l.Op != OpLike {
		t.Errorf("like = %#v", conj[1])
	}
	if n, ok := conj[2].(*IsNullExpr); !ok || !n.Negate {
		t.Errorf("is not null = %#v", conj[2])
	}
	sel2 := mustSelect(t, "select * from MOVIES m where m.year not between 1990 and 1999")
	if b := sel2.Where.(*BetweenExpr); !b.Negate {
		t.Error("NOT BETWEEN not negated")
	}
	sel3 := mustSelect(t, "select * from MOVIES m where m.title is null")
	if n := sel3.Where.(*IsNullExpr); n.Negate {
		t.Error("IS NULL negated")
	}
}

func TestParseOrderLimitDistinct(t *testing.T) {
	sel := mustSelect(t, "select distinct m.title from MOVIES m order by m.year desc, m.title limit 10")
	if !sel.Distinct {
		t.Error("distinct lost")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %#v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseExplicitJoin(t *testing.T) {
	sel := mustSelect(t, "select m.title from MOVIES m join CAST c on m.id = c.mid left join ACTOR a on c.aid = a.id")
	tr := sel.From[0]
	if tr.Join == nil || tr.Join.Kind != JoinInner || tr.Join.Right.Relation != "CAST" {
		t.Fatalf("join = %#v", tr.Join)
	}
	j2 := tr.Join.Right.Join
	if j2 == nil || j2.Kind != JoinLeft || j2.Right.Relation != "ACTOR" {
		t.Fatalf("join2 = %#v", j2)
	}
	// Render and reparse.
	printed := sel.SQL()
	if !strings.Contains(printed, "LEFT JOIN ACTOR a ON") {
		t.Errorf("printed = %s", printed)
	}
	if _, err := ParseSelect(printed); err != nil {
		t.Errorf("reparse: %v", err)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "select e.sal + 2 * 3 from EMP e")
	add, ok := sel.Items[0].Expr.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top = %#v", sel.Items[0].Expr)
	}
	mul, ok := add.Right.(*BinaryExpr)
	if !ok || mul.Op != OpMul {
		t.Fatalf("right = %#v", add.Right)
	}
}

func TestParseBooleanPrecedence(t *testing.T) {
	sel := mustSelect(t, "select * from T t where a = 1 or b = 2 and c = 3")
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %#v", sel.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right = %#v", or.Right)
	}
	// Parenthesized override.
	sel2 := mustSelect(t, "select * from T t where (a = 1 or b = 2) and c = 3")
	and2 := sel2.Where.(*BinaryExpr)
	if and2.Op != OpAnd {
		t.Fatalf("top2 = %#v", sel2.Where)
	}
	if l := and2.Left.(*BinaryExpr); l.Op != OpOr {
		t.Fatalf("left2 = %#v", and2.Left)
	}
}

func TestParseNot(t *testing.T) {
	sel := mustSelect(t, "select * from T t where not (a = 1 and b = 2)")
	n, ok := sel.Where.(*NotExpr)
	if !ok {
		t.Fatalf("where = %#v", sel.Where)
	}
	if inner := n.Inner.(*BinaryExpr); inner.Op != OpAnd {
		t.Errorf("inner = %#v", n.Inner)
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := mustSelect(t, "select * from T t where name = 'O''Brien'")
	cmp := sel.Where.(*BinaryExpr)
	if cmp.Right.(*Literal).Value.Text() != "O'Brien" {
		t.Errorf("escape = %q", cmp.Right.(*Literal).Value.Text())
	}
}

func TestParseDateLiteral(t *testing.T) {
	sel := mustSelect(t, "select * from DIRECTOR d where d.bdate = DATE '1935-12-01'")
	cmp := sel.Where.(*BinaryExpr)
	lit := cmp.Right.(*Literal)
	if lit.Value.Kind() != value.Date || lit.Value.Date().Year() != 1935 {
		t.Errorf("date literal = %#v", lit.Value)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	sel := mustSelect(t, "select -5, -2.5 from T t")
	if sel.Items[0].Expr.(*Literal).Value.Int() != -5 {
		t.Error("negative int")
	}
	if sel.Items[1].Expr.(*Literal).Value.Float() != -2.5 {
		t.Error("negative float")
	}
}

func TestParseAliases(t *testing.T) {
	sel := mustSelect(t, "select m.title as t1, m.year y from MOVIES as m")
	if sel.Items[0].Alias != "t1" || sel.Items[1].Alias != "y" {
		t.Errorf("aliases = %q, %q", sel.Items[0].Alias, sel.Items[1].Alias)
	}
	if sel.From[0].Alias != "m" {
		t.Errorf("table alias = %q", sel.From[0].Alias)
	}
	if sel.From[0].Name() != "m" {
		t.Errorf("Name() = %q", sel.From[0].Name())
	}
	noAlias := mustSelect(t, "select title from MOVIES")
	if noAlias.From[0].Name() != "MOVIES" {
		t.Errorf("Name() fallback = %q", noAlias.From[0].Name())
	}
}

func TestParseQualifiedStar(t *testing.T) {
	sel := mustSelect(t, "select m.* from MOVIES m")
	c, ok := sel.Items[0].Expr.(*ColumnRef)
	if !ok || c.Column != "*" || c.Table != "m" {
		t.Errorf("qualified star = %#v", sel.Items[0].Expr)
	}
}

func TestParseCase(t *testing.T) {
	sel := mustSelect(t, "select case when m.year < 2000 then 'old' else 'new' end from MOVIES m")
	ce, ok := sel.Items[0].Expr.(*CaseExpr)
	if !ok || len(ce.Whens) != 1 || ce.Else == nil {
		t.Fatalf("case = %#v", sel.Items[0].Expr)
	}
	printed := sel.SQL()
	if _, err := ParseSelect(printed); err != nil {
		t.Errorf("case reparse: %v", err)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("insert into MOVIES (id, title, year) values (1, 'Match Point', 2005), (2, 'Anything Else', 2003)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Relation != "MOVIES" || len(ins.Columns) != 3 || len(ins.Rows) != 2 {
		t.Errorf("insert = %#v", ins)
	}
	if _, err := Parse(ins.SQL()); err != nil {
		t.Errorf("insert reparse: %v", err)
	}
	// INSERT ... SELECT.
	stmt2, err := Parse("insert into ARCHIVE select * from MOVIES m where m.year < 1950")
	if err != nil {
		t.Fatal(err)
	}
	if stmt2.(*InsertStmt).Query == nil {
		t.Error("insert-select query missing")
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := Parse("update EMP e set sal = sal * 2, age = 40 where e.eid = 7")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*UpdateStmt)
	if up.Relation != "EMP" || up.Alias != "e" || len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update = %#v", up)
	}
	if _, err := Parse(up.SQL()); err != nil {
		t.Errorf("update reparse: %v", err)
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := Parse("delete from MOVIES m where m.year < 1930")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStmt)
	if del.Relation != "MOVIES" || del.Alias != "m" || del.Where == nil {
		t.Errorf("delete = %#v", del)
	}
	if _, err := Parse(del.SQL()); err != nil {
		t.Errorf("delete reparse: %v", err)
	}
}

func TestParseCreateTable(t *testing.T) {
	src := `create table MOVIES (
		id INT NOT NULL,
		title TEXT,
		year INT,
		PRIMARY KEY (id),
		FOREIGN KEY (did) REFERENCES DIRECTOR (id))`
	stmt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "MOVIES" || len(ct.Columns) != 3 || !ct.Columns[0].NotNull {
		t.Errorf("create = %#v", ct)
	}
	if len(ct.PrimaryKey) != 1 || len(ct.ForeignKeys) != 1 {
		t.Errorf("constraints = %#v", ct)
	}
	if _, err := Parse(ct.SQL()); err != nil {
		t.Errorf("create reparse: %v", err)
	}
}

func TestParseCreateView(t *testing.T) {
	stmt, err := Parse("create view RECENT as select m.title from MOVIES m where m.year > 2000")
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*CreateViewStmt)
	if cv.Name != "RECENT" || cv.Query == nil {
		t.Errorf("view = %#v", cv)
	}
	if _, err := Parse(cv.SQL()); err != nil {
		t.Errorf("view reparse: %v", err)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("select 1 from T t; delete from T t;; select 2 from T t")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("script stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select * from",
		"select * from T t where",
		"selecz * from T",
		"select * from T t where a = ",
		"select * from T t where a in (",
		"select * from T t limit -1",
		"select * from T t limit x",
		"select * from T t where a between 1",
		"insert into",
		"update T set",
		"create banana X",
		"select * from T t where 'unterminated",
		"select * from T t where a = 5x",
		"select * from T t where @",
		"select * from T t; garbage",
		"select count(distinct) from T t",
		"select sum(*) from T t",
		"select case end from T t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestKeywordsAsIdentifiers(t *testing.T) {
	// CAST is a relation name in the paper; COUNT/YEAR-style names must work.
	sel := mustSelect(t, "select c.role from CAST c where c.mid = 1")
	if sel.From[0].Relation != "CAST" {
		t.Errorf("CAST as relation = %q", sel.From[0].Relation)
	}
	sel2 := mustSelect(t, "select d.date from DEPT d")
	if sel2.Items[0].Expr.(*ColumnRef).Column != "DATE" && sel2.Items[0].Expr.(*ColumnRef).Column != "date" {
		t.Errorf("date column = %#v", sel2.Items[0].Expr)
	}
}

func TestComments(t *testing.T) {
	sel := mustSelect(t, `select m.title -- the title
from MOVIES m /* block
comment */ where m.id = 1`)
	if len(sel.From) != 1 {
		t.Error("comments break parsing")
	}
}

func TestConjunctsAndAll(t *testing.T) {
	sel := mustSelect(t, "select * from T t where a = 1 and b = 2 and c = 3")
	conj := Conjuncts(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	rebuilt := AndAll(conj)
	if rebuilt.SQL() != sel.Where.SQL() {
		t.Errorf("AndAll = %q, want %q", rebuilt.SQL(), sel.Where.SQL())
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
}

func TestSubqueries(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q5"])
	subs := Subqueries(sel.Where)
	if len(subs) != 1 {
		t.Errorf("direct subqueries = %d", len(subs))
	}
	sel7 := mustSelect(t, PaperQueries["Q7"])
	subs7 := Subqueries(sel7.Having)
	if len(subs7) != 1 {
		t.Errorf("Q7 having subqueries = %d", len(subs7))
	}
}

func TestHasAggregateAndColumnRefs(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q8"])
	if !HasAggregate(sel.Having) {
		t.Error("Q8 having has aggregate")
	}
	if HasAggregate(sel.Where) {
		t.Error("Q8 where has no aggregate")
	}
	refs := ColumnRefs(sel.Where)
	if len(refs) != 4 {
		t.Errorf("Q8 where column refs = %d", len(refs))
	}
}

func TestCloneIndependence(t *testing.T) {
	sel := mustSelect(t, PaperQueries["Q5"])
	clone := CloneSelect(sel)
	if clone.SQL() != sel.SQL() {
		t.Fatal("clone prints differently")
	}
	// Mutate the clone; original must not change.
	clone.Items[0].Alias = "zzz"
	clone.Where.(*InExpr).Negate = true
	if sel.Items[0].Alias == "zzz" || sel.Where.(*InExpr).Negate {
		t.Error("clone shares structure with original")
	}
}

func TestOpHelpers(t *testing.T) {
	if OpLt.Inverse() != OpGt || OpLe.Inverse() != OpGe || OpEq.Inverse() != OpEq {
		t.Error("Inverse")
	}
	if OpLt.Negate() != OpGe || OpEq.Negate() != OpNe {
		t.Error("Negate")
	}
	if !OpEq.IsComparison() || OpAnd.IsComparison() {
		t.Error("IsComparison")
	}
}

func TestTokenizerPositions(t *testing.T) {
	toks, err := Tokenize("select\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("position = %d:%d", toks[1].Line, toks[1].Col)
	}
}

// Property: printing then reparsing a parsed query is a fixpoint (print ∘
// parse ∘ print = print) across randomized simple queries.
func TestPrintParseFixpointProperty(t *testing.T) {
	cols := []string{"a", "b", "c"}
	ops := []string{"=", "<", ">", "<=", ">=", "!="}
	f := func(ci, oi uint8, n int16, desc bool) bool {
		src := "select t." + cols[int(ci)%3] + " from T t where t." +
			cols[(int(ci)+1)%3] + " " + ops[int(oi)%6] + " " +
			value.NewInt(int64(n)).String()
		if desc {
			src += " order by t.a desc"
		}
		sel, err := ParseSelect(src)
		if err != nil {
			return false
		}
		p1 := sel.SQL()
		sel2, err := ParseSelect(p1)
		if err != nil {
			return false
		}
		return sel2.SQL() == p1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CloneSelect output prints identically to its input for the whole
// paper corpus plus randomized decoration.
func TestClonePrintsIdenticallyProperty(t *testing.T) {
	for label, src := range PaperQueries {
		sel, err := ParseSelect(src)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if CloneSelect(sel).SQL() != sel.SQL() {
			t.Errorf("%s: clone print mismatch", label)
		}
	}
}

func BenchmarkParseQ1(b *testing.B) {
	src := PaperQueries["Q1"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSelect(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseQ7(b *testing.B) {
	src := PaperQueries["Q7"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSelect(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrintQ7(b *testing.B) {
	sel, err := ParseSelect(PaperQueries["Q7"])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sel.SQL()
	}
}
