package sqlparser

// PaperQueries holds the exact SQL of every query quoted in the paper, keyed
// by its label. Q6 as printed in the paper contains two typos (it selects
// a.title from MOVIES a but the inner query refers to m.id, and aliases the
// second GENRE instance "a2" while filtering on a2.mid); the intended query —
// relational division "movies that have all genres" — is stored here with
// consistent aliases, as the paper's own prose describes it. The original
// verbatim text is kept in PaperQ6Verbatim for reference.
var PaperQueries = map[string]string{
	// §3.1 motivating example on EMP/DEPT: "employees who make more than
	// their managers". The paper writes e1.name although EMP's schema lists
	// eid/sal/age/did; we keep e1.name and give EMP a name attribute in the
	// EMP/DEPT dataset so the query is well-formed.
	"Q0": `select e1.name
from EMP e1, EMP e2, DEPT d
where e1.did = d.did and d.mgr = e2.eid and e1.sal > e2.sal`,

	// §3.3.1 path query.
	"Q1": `select m.title
from MOVIES m, CAST c, ACTOR a
where m.id = c.mid and c.aid = a.id and a.name = 'Brad Pitt'`,

	// §3.3.2 subgraph query.
	"Q2": `select a.name, m.title
from MOVIES m, CAST c, ACTOR a, DIRECTED r, DIRECTOR d, GENRE g
where m.id = c.mid and c.aid = a.id
  and m.id = r.mid and r.did = d.id
  and m.id = g.mid and d.name = 'G. Loucas'
  and g.genre = 'action'`,

	// §3.3.3 multi-instance graph query.
	"Q3": `select a1.name, a2.name
from MOVIES m, CAST c1, ACTOR a1, CAST c2, ACTOR a2
where m.id = c1.mid and c1.aid = a1.id
  and m.id = c2.mid and c2.aid = a2.id
  and a1.id > a2.id`,

	// §3.3.3 cyclic graph query.
	"Q4": `select m.title from MOVIES m, CAST c
where m.id = c.mid and c.role = m.title`,

	// §3.3.4 nested query with a flat equivalent (Q1).
	"Q5": `select m.title from MOVIES m
where m.id in (
  select c.mid from CAST c
  where c.aid in (
    select a.id from ACTOR a
    where a.name = 'Brad Pitt'))`,

	// §3.3.4 double NOT EXISTS: relational division, "movies that have all
	// genres" (aliases normalized; see PaperQ6Verbatim).
	"Q6": `select m.title from MOVIES m
where not exists (
  select * from GENRE g1
  where not exists (
    select * from GENRE g2
    where g2.mid = m.id and g2.genre = g1.genre))`,

	// §3.3.4 aggregate query with a scalar subquery in HAVING.
	"Q7": `select m.id, m.title, count(*) from MOVIES m, CAST c
where m.id = c.mid
group by m.id, m.title
having 1 < (select count(*) from GENRE g where g.mid = m.id)`,

	// §3.3.5 "impossible": count(distinct year)=1 means "all in same year".
	"Q8": `select a.id, a.name
from MOVIES m, CAST c, ACTOR a
where m.id = c.mid and c.aid = a.id
group by a.id, a.name
having count(distinct m.year) = 1`,

	// §3.3.5 "impossible": <= all means "earliest".
	"Q9": `select a.name
from MOVIES m, CAST c, ACTOR a
where m.id = c.mid and c.aid = a.id
and m.year <= all (
  select m1.year
  from MOVIES m1, MOVIES m2
  where m1.title = m.title and m2.title = m.title and m1.id != m2.id)`,
}

// PaperQ6Verbatim is Q6 exactly as printed in the paper, preserved for the
// record; its aliases are inconsistent (select a.title from MOVIES a, inner
// references m.id, GENRE aliased a2) and the inner-most subquery never
// correlates on genre, so the printed text does not express division. The
// normalized form in PaperQueries["Q6"] implements the translation the paper
// gives ("Find movies that have all genres").
const PaperQ6Verbatim = `select a.title from MOVIES a
where not exists (
  select * from GENRE G1
  where not exists (
    select * from GENRE a2
    where a2.mid = m.id))`

// PaperTranslations records the natural-language rendering the paper gives
// for each query, used as the reference target in EXPERIMENTS.md.
var PaperTranslations = map[string]string{
	"Q0": "Find the names of employees who make more than their managers",
	"Q1": "Find movies where Brad Pitt plays",
	"Q2": "Find the actors and titles of action movies directed by G. Loucas",
	"Q3": "Find pairs of actors who have played in the same movie",
	"Q4": "Find movies whose title is one of their roles",
	"Q5": "Find movies where Brad Pitt plays",
	"Q6": "Find movies that have all genres",
	"Q7": "Find the number of actors in movies of more than one genre",
	"Q8": "Find actors whose movies are all in the same year",
	"Q9": "Find the actors who have played in the earliest versions of movies that have been repeated",
}

// PaperQueryOrder lists the labels in presentation order.
var PaperQueryOrder = []string{"Q0", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9"}
