package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/querytotext"
	"repro/internal/storage"
	"repro/internal/wal"
)

// pollCancelCtx cancels deterministically after a scripted number of Err()
// polls — the same device the engine's differential suite uses, here driving
// the full AskContext pipeline.
type pollCancelCtx struct {
	after int64
	polls atomic.Int64
	done  chan struct{}
}

func newPollCancelCtx(after int64) *pollCancelCtx {
	return &pollCancelCtx{after: after, done: make(chan struct{})}
}

func (c *pollCancelCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *pollCancelCtx) Done() <-chan struct{}       { return c.done }
func (c *pollCancelCtx) Value(any) any               { return nil }
func (c *pollCancelCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func generatedMovieSystem(t *testing.T, movies int) *System {
	t.Helper()
	cfg := dataset.DefaultGenConfig()
	cfg.Movies = movies
	db, err := dataset.GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysCfg := MovieConfig()
	sysCfg.DisableCache = true      // every AskContext must really execute
	sysCfg.LargeThreshold = 1 << 30 // keep feedback probes out of poll counts
	sys, err := New(db, sysCfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAskContextCancelMidQuery drives a SELECT through AskContext with a
// context that trips mid-execution: the call must return a narrated
// *engine.CancelError, count the read as cancelled (not completed), release
// the snapshot pin, and leave DrainReaders unblocked.
func TestAskContextCancelMidQuery(t *testing.T) {
	defer leakcheck.Check(t)()
	sys := generatedMovieSystem(t, 400)
	const q = `select m.title, a.name from MOVIES m, CAST c, ACTOR a
	           where m.id = c.mid and c.aid = a.id and m.year > 1950`

	// Count the query's polls, then cancel halfway.
	ctr := newPollCancelCtx(1 << 62)
	if _, err := sys.AskContext(ctr, q); err != nil {
		t.Fatalf("uncancelled run: %v", err)
	}
	polls := ctr.polls.Load()
	if polls < 2 {
		t.Fatalf("query polled only %d times; cannot cancel mid-flight", polls)
	}
	_, _, cancelledBefore := sys.ReaderStats()

	_, err := sys.AskContext(newPollCancelCtx(polls/2), q)
	if !engine.IsCancel(err) {
		t.Fatalf("mid-query cancel returned %v, want CancelError", err)
	}
	var ce *engine.CancelError
	errors.As(err, &ce)
	if text := querytotext.CancelEnglish(ce); !strings.Contains(text, "I stopped this query") {
		t.Fatalf("narration: %q", text)
	}

	inFlight, _, cancelledAfter := sys.ReaderStats()
	if inFlight != 0 {
		t.Fatalf("cancelled read still pinned: %d in flight", inFlight)
	}
	if cancelledAfter != cancelledBefore+1 {
		t.Fatalf("reads_cancelled %d, want %d", cancelledAfter, cancelledBefore+1)
	}
	// A wedged pin would hang here; returning at all is the assertion.
	sys.DrainReaders()
}

// TestAskContextCancelledDMLNoTrace: a DML statement cancelled mid-flight
// through the full Ask pipeline leaves the database byte-identical to never
// having run.
func TestAskContextCancelledDMLNoTrace(t *testing.T) {
	defer leakcheck.Check(t)()
	const stmt = `update MOVIES m set year = year + 1 where m.year > 1900`

	// Poll count on a throwaway system.
	probe := generatedMovieSystem(t, 120)
	ctr := newPollCancelCtx(1 << 62)
	if _, err := probe.AskContext(ctr, stmt); err != nil {
		t.Fatal(err)
	}
	polls := ctr.polls.Load()

	sys := generatedMovieSystem(t, 120)
	before := dumpRel(t, sys, "MOVIES")
	for p := int64(0); p < polls; p++ {
		resp, err := sys.AskContext(newPollCancelCtx(p), stmt)
		if err == nil {
			// The trip landed after the last poll: the statement must have
			// applied fully. Put the table back for the next round.
			if resp.Affected == 0 {
				t.Fatalf("poll %d: completed update affected nothing", p)
			}
			if _, err := sys.Ask(`update MOVIES m set year = year - 1 where m.year > 1900`); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if !engine.IsCancel(err) {
			t.Fatalf("poll %d: %v", p, err)
		}
		if got := dumpRel(t, sys, "MOVIES"); got != before {
			t.Fatalf("cancel at poll %d left a trace in MOVIES", p)
		}
	}
}

func dumpRel(t *testing.T, sys *System, rel string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.Database().DumpCSV(rel, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestAskRowQuota: the Config quota alone (no context) bounds a query and
// the refusal narrates the quota.
func TestAskRowQuota(t *testing.T) {
	cfg := dataset.DefaultGenConfig()
	cfg.Movies = 200
	db, err := dataset.GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysCfg := MovieConfig()
	sysCfg.MaxRowsScanned = 50
	sys, err := New(db, sysCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Ask(`select m.title from MOVIES m where m.year > 1900`)
	var ce *engine.CancelError
	if !errors.As(err, &ce) || ce.Cause != engine.CauseRowQuota {
		t.Fatalf("quota-bounded Ask returned %v, want row-quota CancelError", err)
	}
}

// TestAskContextWALStall: a WAL fsync that outlives the request deadline
// plus the grace window surfaces as a narrated wal-stall cancellation and
// latches the log against further writes — the record's fate on disk is
// unknown, so appending past it would risk silent loss.
func TestAskContextWALStall(t *testing.T) {
	defer leakcheck.Check(t)()
	ffs := wal.NewFaultFS(wal.NewMemFS())
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	sys, _, err := NewDurable(db, ffs, storage.DurableOptions{SyncGrace: 20 * time.Millisecond}, MovieConfig())
	if err != nil {
		t.Fatal(err)
	}
	ffs.DelaySyncs(400 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sys.AskContext(ctx, "insert into MOVIES (id, title, year) values (998, 'Stalled', 2026)")
	var ce *engine.CancelError
	if !errors.As(err, &ce) || ce.Cause != engine.CauseWALStall {
		t.Fatalf("stalled commit returned %v, want wal-stall CancelError", err)
	}
	// The caller got an answer bounded by deadline + grace, not by the disk.
	if waited := time.Since(start); waited > 300*time.Millisecond {
		t.Fatalf("stalled commit held the caller %v", waited)
	}
	if text := querytotext.CancelEnglish(ce); !strings.Contains(text, "write-ahead log") {
		t.Fatalf("narration: %q", text)
	}
	var st *storage.StallError
	if !errors.As(err, &st) {
		t.Fatalf("CancelError does not wrap the StallError: %v", err)
	}
	// Latched: even with the disk healthy again, writes are rejected until
	// restart, because the stalled record may or may not be on disk.
	ffs.ClearFaults()
	if _, err := sys.Ask("insert into MOVIES (id, title, year) values (997, 'After', 2026)"); err == nil {
		t.Fatal("write accepted after a WAL stall")
	}
	// Reads still work.
	if _, err := sys.Ask("select m.title from MOVIES m where m.id = 1"); err != nil {
		t.Fatalf("read after stall: %v", err)
	}
}

// TestAskContextSlowSyncWithinGrace: a sync slower than the deadline but
// inside the grace window commits normally — an expired request deadline
// alone must never latch the log or tear a statement that already applied.
func TestAskContextSlowSyncWithinGrace(t *testing.T) {
	defer leakcheck.Check(t)()
	ffs := wal.NewFaultFS(wal.NewMemFS())
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	sys, _, err := NewDurable(db, ffs, storage.DurableOptions{SyncGrace: 5 * time.Second}, MovieConfig())
	if err != nil {
		t.Fatal(err)
	}
	ffs.DelaySyncs(300 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	resp, err := sys.AskContext(ctx, "insert into MOVIES (id, title, year) values (996, 'Slow Disk', 2026)")
	if err != nil {
		t.Fatalf("slow-but-healthy sync failed the statement: %v", err)
	}
	if resp.Affected != 1 {
		t.Fatalf("affected %d", resp.Affected)
	}
	ffs.ClearFaults()
	// The statement committed whole: visible now and after the WAL latch
	// check (writes were never rejected).
	if ans := askCount(t, sys, "select m.title from MOVIES m where m.id = 996"); !strings.Contains(ans, "Slow Disk") {
		t.Fatalf("committed row missing: %s", ans)
	}
	if _, err := sys.Ask("insert into MOVIES (id, title, year) values (995, 'Next', 2026)"); err != nil {
		t.Fatalf("write after within-grace sync: %v", err)
	}
}

// TestAskContextEntryRefusal: a context already dead on arrival is refused
// before any snapshot is pinned or cache touched.
func TestAskContextEntryRefusal(t *testing.T) {
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.AskContext(ctx, "select m.title from MOVIES m"); !engine.IsCancel(err) {
		t.Fatalf("dead-on-arrival context: %v", err)
	}
	if inFlight, _, _ := sys.ReaderStats(); inFlight != 0 {
		t.Fatalf("refused request pinned a read: %d", inFlight)
	}
}
