package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
	"repro/internal/wal"
)

func durableMovieSystem(t *testing.T, fs wal.FS) (*System, *storage.RecoveryReport) {
	t.Helper()
	var db *storage.Database
	var err error
	if storage.HasDurableState(fs) {
		db, err = storage.NewDatabase(dataset.MovieSchema())
	} else {
		db, err = dataset.CuratedMovieDB()
	}
	if err != nil {
		t.Fatal(err)
	}
	sys, report, err := NewDurable(db, fs, storage.DurableOptions{}, MovieConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys, report
}

func askCount(t *testing.T, s *System, sql string) string {
	t.Helper()
	resp, err := s.Ask(sql)
	if err != nil {
		t.Fatalf("ask %q: %v", sql, err)
	}
	return resp.Answer
}

// TestDurableAskSurvivesRestart drives DML through the full Ask loop, drops
// the System, and rebuilds it from the same disk: the acknowledged
// statements must be there.
func TestDurableAskSurvivesRestart(t *testing.T) {
	fs := wal.NewMemFS()
	sys, report := durableMovieSystem(t, fs)
	if !report.Fresh {
		t.Fatalf("first boot should be fresh: %+v", report)
	}
	if _, err := sys.Ask("insert into MOVIES (id, title, year) values (999, 'Crash Proof', 2026)"); err != nil {
		t.Fatal(err)
	}
	if resp, err := sys.Ask("delete from GENRE g where g.genre = 'adventure'"); err != nil {
		t.Fatal(err)
	} else if resp.Affected != 3 {
		t.Fatalf("delete affected %d", resp.Affected)
	}
	if _, err := sys.Ask("update MOVIES m set year = 2027 where m.id = 999"); err != nil {
		t.Fatal(err)
	}
	before := askCount(t, sys, "select m.title, m.year from MOVIES m where m.id = 999")

	sys2, report2 := durableMovieSystem(t, fs)
	if report2.Fresh {
		t.Fatal("second boot should recover, not reseed")
	}
	if report2.ReplayedBatches == 0 && report2.CheckpointRows == 0 {
		t.Fatalf("nothing recovered: %+v", report2)
	}
	if !report2.Clean() {
		t.Fatalf("clean shutdown recovered dirty: %+v", report2)
	}
	after := askCount(t, sys2, "select m.title, m.year from MOVIES m where m.id = 999")
	if before != after {
		t.Fatalf("answer diverged across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	if !strings.Contains(after, "2027") {
		t.Fatalf("update lost: %s", after)
	}
	if ans := askCount(t, sys2, "select g.genre from GENRE g where g.genre = 'adventure'"); !strings.Contains(ans, "no ") {
		t.Fatalf("delete lost: %s", ans)
	}
}

// TestAskFsyncFailureSurfaces: when the WAL fsync fails, Ask must return the
// error instead of acknowledging — the client never hears "Done" for a
// statement that is not on disk.
func TestAskFsyncFailureSurfaces(t *testing.T) {
	ffs := wal.NewFaultFS(wal.NewMemFS())
	sys, _ := durableMovieSystem(t, ffs)
	ffs.FailSyncsAfter(0)
	_, err := sys.Ask("insert into MOVIES (id, title, year) values (998, 'Lost', 2026)")
	if !errors.Is(err, wal.ErrInjectedSync) {
		t.Fatalf("Ask acknowledged an unsynced statement: %v", err)
	}
	ffs.ClearFaults()
	// Queries still work and the system stays up.
	if ans := askCount(t, sys, "select m.title from MOVIES m where m.id = 998"); ans == "" {
		t.Fatal("query after failed DML")
	}
}

// TestSystemCheckpoint: a facade-level checkpoint truncates the log so the
// next boot replays nothing.
func TestSystemCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	sys, _ := durableMovieSystem(t, fs)
	if _, err := sys.Ask("insert into MOVIES (id, title, year) values (997, 'Folded', 2026)"); err != nil {
		t.Fatal(err)
	}
	st, ok := sys.DurabilityStats()
	if !ok || st.WALBytes == 0 {
		t.Fatalf("expected pending WAL bytes: ok=%v stats=%+v", ok, st)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ = sys.DurabilityStats()
	if st.WALBytes != 0 {
		t.Fatalf("checkpoint left %d WAL bytes", st.WALBytes)
	}
	_, report := durableMovieSystem(t, fs)
	if report.ReplayedBatches != 0 || report.SkippedBatches != 0 {
		t.Fatalf("post-checkpoint boot replayed: %+v", report)
	}
	if report.CheckpointRows == 0 {
		t.Fatalf("checkpoint restored no rows: %+v", report)
	}
}

// TestDurabilityStatsAbsentInMemory: a plain in-memory System reports no
// durability stats.
func TestDurabilityStatsAbsentInMemory(t *testing.T) {
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.DurabilityStats(); ok {
		t.Fatal("in-memory system claims durability stats")
	}
}
