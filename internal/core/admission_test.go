package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/querytotext"
)

// TestAdmissionValve pins the valve's three outcomes: immediate admit,
// queue-then-admit, instant shed on a full queue, and a queued request
// timed out by its own deadline.
func TestAdmissionValve(t *testing.T) {
	defer leakcheck.Check(t)()
	a := NewAdmission(1, 1)

	release1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Second request queues; park it in a goroutine.
	type result struct {
		release func()
		err     error
	}
	queued := make(chan result, 1)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() {
		r, err := a.Acquire(ctx2)
		queued <- result{r, err}
	}()
	waitFor(t, func() bool { return a.Stats().Waiting == 1 })

	// Third request finds slot and queue full: instant shed.
	_, err = a.Acquire(context.Background())
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.TimedOut {
		t.Fatalf("full-queue acquire: %v", err)
	}
	if ov.Limit != 1 || ov.Running != 1 {
		t.Fatalf("shed snapshot: %+v", ov)
	}
	if text := querytotext.OverloadEnglish(ov.Running, ov.Waiting, ov.Limit, ov.Waited, ov.TimedOut); !strings.Contains(text, "turned this request away") {
		t.Fatalf("shed narration: %q", text)
	}

	// Cancel the queued request's context: it sheds as timed out.
	cancel2()
	r2 := <-queued
	if !errors.As(r2.err, &ov) || !ov.TimedOut {
		t.Fatalf("queued-timeout acquire: %v", r2.err)
	}
	if text := querytotext.OverloadEnglish(ov.Running, ov.Waiting, ov.Limit, ov.Waited, ov.TimedOut); !strings.Contains(text, "give up") {
		t.Fatalf("timeout narration: %q", text)
	}

	// Release frees the slot; release is idempotent.
	release1()
	release1()
	release2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release2()

	st := a.Stats()
	if st.Admitted != 2 || st.Rejected != 1 || st.TimedOut != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.Running != 0 || st.Waiting != 0 {
		t.Fatalf("occupancy after drain: %+v", st)
	}
	a.NoteCancelled()
	if got := a.Stats().Cancelled; got != 1 {
		t.Fatalf("cancelled counter: %d", got)
	}
}

// TestAdmissionQueueAdmits: a queued request gets the slot when it frees —
// queueing is a wait, not a rejection.
func TestAdmissionQueueAdmits(t *testing.T) {
	defer leakcheck.Check(t)()
	a := NewAdmission(1, 4)
	release1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	waitFor(t, func() bool { return a.Stats().Waiting == 1 })
	release1()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never admitted after release")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
