package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/leakcheck"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

// movieQueryLabels are the paper queries posed against the Fig. 1 movie
// schema (Q0 targets EMP/DEPT).
var movieQueryLabels = []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9"}

// TestConcurrentSessions hammers one System from many goroutines mixing
// every read path plus profile registration and swaps. Run under -race it
// is the serving layer's safety proof; without -race it still checks that
// concurrent answers match the serial ones.
func TestConcurrentSessions(t *testing.T) {
	defer leakcheck.Check(t)()
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}

	// Serial ground truth for determinism checks.
	wantAnswer := make(map[string]string)
	wantVerify := make(map[string]string)
	for _, label := range movieQueryLabels {
		q := sqlparser.PaperQueries[label]
		resp, err := sys.Ask(q)
		if err != nil {
			t.Fatalf("serial Ask(%s): %v", label, err)
		}
		wantAnswer[label] = resp.Answer
		wantVerify[label] = resp.Verification.Text
	}

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				label := movieQueryLabels[(w+i)%len(movieQueryLabels)]
				q := sqlparser.PaperQueries[label]
				switch i % 5 {
				case 0:
					resp, err := sys.Ask(q)
					if err != nil {
						t.Errorf("Ask(%s): %v", label, err)
						return
					}
					if resp.Answer != wantAnswer[label] {
						t.Errorf("Ask(%s) diverged under concurrency:\n got %q\nwant %q",
							label, resp.Answer, wantAnswer[label])
						return
					}
				case 1:
					tr, err := sys.DescribeQuery(q)
					if err != nil {
						t.Errorf("DescribeQuery(%s): %v", label, err)
						return
					}
					if tr.Text != wantVerify[label] {
						t.Errorf("DescribeQuery(%s) diverged: got %q want %q", label, tr.Text, wantVerify[label])
						return
					}
				case 2:
					if _, err := sys.DescribeEntity("DIRECTOR", "name", value.NewText("Woody Allen")); err != nil {
						t.Errorf("DescribeEntity: %v", err)
						return
					}
				case 3:
					if _, err := sys.QueryGraph(q); err != nil {
						t.Errorf("QueryGraph(%s): %v", label, err)
						return
					}
					_ = sys.DescribeSchema()
				case 4:
					if _, err := sys.DescribeDatabase("MOVIES"); err != nil {
						t.Errorf("DescribeDatabase: %v", err)
						return
					}
					_ = sys.DescribeStatistics()
				}
			}
		}(w)
	}

	// One goroutine churns the personalization machinery concurrently with
	// the readers: registering fresh profiles, swapping the default, and
	// narrating through per-session profiles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("prof-%d", i)
			p := catalog.NewProfile(name)
			p.HeadingOverride["MOVIES"] = "year"
			if err := sys.RegisterProfile(p); err != nil {
				t.Errorf("RegisterProfile(%s): %v", name, err)
				return
			}
			if err := sys.Profile(name); err != nil {
				t.Errorf("Profile(%s): %v", name, err)
				return
			}
			if _, err := sys.DescribeEntityAs(name, "DIRECTOR", "name", value.NewText("Woody Allen")); err != nil {
				t.Errorf("DescribeEntityAs(%s): %v", name, err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestConcurrentDMLAndSelect interleaves DML and SELECTs through Ask from
// many goroutines: the System's internal reader/writer lock must keep this
// race-free, and every SELECT must observe a consistent table (each probe
// actor id is inserted exactly once, so 0 or 1 rows — never garbage).
func TestConcurrentDMLAndSelect(t *testing.T) {
	defer leakcheck.Check(t)()
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	const writers = 3
	const readers = 5
	const iters = 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := 5000 + w*iters + i
				stmt := fmt.Sprintf("insert into ACTOR (id, name) values (%d, 'Load Actor %d')", id, id)
				if _, err := sys.Ask(stmt); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := 5000 + (r+i)%(writers*iters)
				resp, err := sys.Ask(fmt.Sprintf("select a.name from ACTOR a where a.id = %d", id))
				if err != nil {
					t.Errorf("select %d: %v", id, err)
					return
				}
				if n := len(resp.Result.Rows); n > 1 {
					t.Errorf("actor %d appears %d times", id, n)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	final, err := sys.Ask("select count(*) from ACTOR a where a.id >= 5000")
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Result.Rows[0][0].String(); got != fmt.Sprintf("%d", writers*iters) {
		t.Fatalf("expected %d inserted actors, got %s", writers*iters, got)
	}
}

// TestConcurrentCacheStats checks the cache counters add up after a
// concurrent burst: every Ask is either a hit or a miss, never lost.
func TestConcurrentCacheStats(t *testing.T) {
	defer leakcheck.Check(t)()
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const iters = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := sys.Ask(sqlparser.PaperQueries["Q1"]); err != nil {
					t.Errorf("Ask: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := sys.CacheStats()["response"]
	if st.Hits+st.Misses != workers*iters {
		t.Fatalf("response cache lost lookups: hits %d + misses %d != %d",
			st.Hits, st.Misses, workers*iters)
	}
	if st.Hits == 0 {
		t.Fatal("repeated identical query never hit the response cache")
	}
}
