package core

import (
	"repro/internal/storage"
	"repro/internal/wal"
)

// NewDurable assembles a System over a durable database: durability is
// attached to db first (recovering any existing checkpoint + WAL state in
// fs, or adopting db's contents with an initial checkpoint), then the System
// is built over the recovered contents. The returned RecoveryReport says
// what recovery found; render it with querytotext.RecoveryEnglish.
//
// After this returns, every DML statement applied through Ask is appended to
// the write-ahead log and fsynced before Ask acknowledges it — a crash can
// lose at most statements whose Ask call never returned.
func NewDurable(db *storage.Database, fs wal.FS, opts storage.DurableOptions, cfg Config) (*System, *storage.RecoveryReport, error) {
	report, err := db.EnableDurability(fs, opts)
	if err != nil {
		return nil, nil, err
	}
	sys, err := New(db, cfg)
	if err != nil {
		return nil, nil, err
	}
	return sys, report, nil
}

// Checkpoint seals the current published version to the checkpoint segment
// and truncates the WAL. It takes the DML writer lock so no Ask statement is
// mid-flight, but snapshot readers are NOT excluded: the storage layer
// serializes the checkpoint from the pinned immutable version, so queries
// keep answering while it writes. The server calls it on graceful shutdown
// so restarts replay an empty log.
func (s *System) Checkpoint() error {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return s.db.Checkpoint()
}

// DurabilityStats snapshots the WAL counters; ok is false when the System's
// database is purely in-memory.
func (s *System) DurabilityStats() (storage.DurabilityStats, bool) {
	return s.db.DurabilityStats()
}
