package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Admission is the server's overload valve: a bounded semaphore of
// concurrently executing requests plus a short wait queue in front of it.
// A request that finds the semaphore full joins the queue; one that finds
// the queue full too is shed immediately. A queued request whose context
// fires before a slot frees is shed as timed out. Either way the caller
// gets an *OverloadError with enough numbers for the narration layer to
// explain the shedding in English, and the shed request costs the system
// nothing but the queue wait — it never pins a snapshot or plans a query.
type Admission struct {
	limit int
	queue int
	sem   chan struct{}

	waiting   atomic.Int64
	admitted  atomic.Uint64
	rejected  atomic.Uint64
	timedOut  atomic.Uint64
	cancelled atomic.Uint64
}

// NewAdmission builds a valve admitting up to limit concurrent requests
// with up to queue more waiting. limit < 1 means 1; queue < 0 means 0.
func NewAdmission(limit, queue int) *Admission {
	if limit < 1 {
		limit = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{limit: limit, queue: queue, sem: make(chan struct{}, limit)}
}

// OverloadError reports a request the admission valve turned away.
type OverloadError struct {
	// Running is how many requests held execution slots at the decision.
	Running int
	// Waiting is how many requests sat in the queue at the decision.
	Waiting int
	// Limit is the concurrent-execution cap.
	Limit int
	// Waited is how long the request queued before being shed (zero when
	// the queue itself was full and the request never queued).
	Waited time.Duration
	// TimedOut distinguishes a queued request whose deadline fired (true)
	// from one shed instantly because the queue was full (false).
	TimedOut bool
	// Err is the context error for timed-out requests.
	Err error
}

func (e *OverloadError) Error() string {
	if e.TimedOut {
		return "server overloaded: request timed out in the admission queue"
	}
	return "server overloaded: request shed, admission queue full"
}

// Unwrap exposes the context error so errors.Is(err, context.DeadlineExceeded)
// works through an OverloadError.
func (e *OverloadError) Unwrap() error { return e.Err }

// Acquire admits the request, blocking in the wait queue if execution slots
// are full, and returns the release func the caller must invoke when done
// (it is idempotent). It returns an *OverloadError when the request is shed.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return a.releaseFunc(), nil
	default:
	}
	// Slots full: claim a queue position, or shed on the spot if the queue
	// is full too. The add-then-check keeps the fast path lock-free; at
	// worst a burst momentarily overshoots the queue by the losers, all of
	// whom shed themselves right back out.
	if w := a.waiting.Add(1); w > int64(a.queue) {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return nil, &OverloadError{Running: len(a.sem), Waiting: int(w) - 1, Limit: a.limit}
	}
	start := time.Now()
	select {
	case a.sem <- struct{}{}:
		a.waiting.Add(-1)
		a.admitted.Add(1)
		return a.releaseFunc(), nil
	case <-ctx.Done():
		w := a.waiting.Add(-1)
		a.timedOut.Add(1)
		return nil, &OverloadError{
			Running:  len(a.sem),
			Waiting:  int(w),
			Limit:    a.limit,
			Waited:   time.Since(start),
			TimedOut: true,
			Err:      ctx.Err(),
		}
	}
}

func (a *Admission) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-a.sem }) }
}

// NoteCancelled records a request that was admitted but then stopped
// mid-execution by its budget — the serving layer calls it so /stats can
// report execution-time cancellations next to admission-time sheds.
func (a *Admission) NoteCancelled() { a.cancelled.Add(1) }

// AdmissionStats is a point-in-time snapshot of the valve's counters.
type AdmissionStats struct {
	// Limit and Queue are the configured capacities.
	Limit, Queue int
	// Running and Waiting are current occupancy.
	Running, Waiting int64
	// Admitted, Rejected, and TimedOut count admission decisions since
	// boot; Cancelled counts admitted requests later stopped by budget.
	Admitted, Rejected, TimedOut, Cancelled uint64
}

// Stats reports the valve's counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Limit:     a.limit,
		Queue:     a.queue,
		Running:   int64(len(a.sem)),
		Waiting:   a.waiting.Load(),
		Admitted:  a.admitted.Load(),
		Rejected:  a.rejected.Load(),
		TimedOut:  a.timedOut.Load(),
		Cancelled: a.cancelled.Load(),
	}
}
