package core

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/queryclassify"
	"repro/internal/speech"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

func movieSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDescribeQueryVerification(t *testing.T) {
	s := movieSystem(t)
	tr, err := s.DescribeQuery(sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if tr.Text != "Find movies where Brad Pitt plays." {
		t.Errorf("verification = %q", tr.Text)
	}
	if tr.Class.Category != queryclassify.Path {
		t.Errorf("class = %s", tr.Class.Category)
	}
}

func TestAskFullLoop(t *testing.T) {
	s := movieSystem(t)
	resp, err := s.Ask(sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verification == nil || resp.Result == nil {
		t.Fatal("incomplete response")
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("rows = %d", len(resp.Result.Rows))
	}
	if !strings.Contains(resp.Answer, "Star Raiders") || !strings.Contains(resp.Answer, "Galaxy at War") {
		t.Errorf("answer = %q", resp.Answer)
	}
	if resp.Feedback != "" {
		t.Errorf("unexpected feedback: %q", resp.Feedback)
	}
}

func TestAskEmptyAnswerFeedback(t *testing.T) {
	s := movieSystem(t)
	resp, err := s.Ask(`select m.title from MOVIES m, CAST c, ACTOR a
		where m.id = c.mid and c.aid = a.id and a.name = 'Nobody Unknown'`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer != "There are no results." {
		t.Errorf("answer = %q", resp.Answer)
	}
	if !strings.Contains(resp.Feedback, "Nobody Unknown") {
		t.Errorf("feedback = %q", resp.Feedback)
	}
}

func TestAskLargeAnswerFeedback(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{Seed: 4, Movies: 150, Actors: 50, Directors: 8, CastPerMovie: 3, GenresPerMovie: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, func() Config { c := MovieConfig(); c.LargeThreshold = 50; return c }())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Ask("select m.title, c.role from MOVIES m, CAST c where m.id = c.mid")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Feedback, "threshold") {
		t.Errorf("feedback = %q", resp.Feedback)
	}
	if !strings.Contains(resp.Answer, "omitted") {
		t.Errorf("answer not truncated: %q", resp.Answer)
	}
}

func TestAskDML(t *testing.T) {
	s := movieSystem(t)
	resp, err := s.Ask("delete from GENRE g where g.genre = 'adventure'")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Affected != 3 {
		t.Errorf("affected = %d", resp.Affected)
	}
	if !strings.Contains(resp.Answer, "three rows affected") {
		t.Errorf("answer = %q", resp.Answer)
	}
	if !strings.Contains(resp.Verification.Text, "Delete the genres") {
		t.Errorf("verification = %q", resp.Verification.Text)
	}
}

func TestNarrateSingleValue(t *testing.T) {
	s := movieSystem(t)
	resp, err := s.Ask("select count(*) from MOVIES m")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer != "The answer is 13." {
		t.Errorf("answer = %q", resp.Answer)
	}
}

func TestNarrateMultiColumn(t *testing.T) {
	s := movieSystem(t)
	resp, err := s.Ask("select m.title, m.year from MOVIES m where m.id = 100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Answer, "title Match Point") || !strings.Contains(resp.Answer, "year 2005") {
		t.Errorf("answer = %q", resp.Answer)
	}
}

func TestDescribeEntityThroughFacade(t *testing.T) {
	s := movieSystem(t)
	got, err := s.DescribeEntity("DIRECTOR", "name", value.NewText("Woody Allen"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "Match Point (2005)") {
		t.Errorf("narrative = %q", got)
	}
}

func TestDescribeDatabaseThroughFacade(t *testing.T) {
	s := movieSystem(t)
	got, err := s.DescribeDatabase("MOVIES")
	if err != nil {
		t.Fatal(err)
	}
	if got == "" {
		t.Error("empty database narrative")
	}
}

func TestDescribeSchema(t *testing.T) {
	s := movieSystem(t)
	got := s.DescribeSchema()
	for _, want := range []string{
		"Each movie has identifier, title, and year",
		"relates to",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("schema narrative missing %q:\n%s", want, got)
		}
	}
	// Bridges are looked through, not narrated.
	if strings.Contains(got, "cast entry has") {
		t.Errorf("bridge narrated: %s", got)
	}
}

func TestQueryGraphExport(t *testing.T) {
	s := movieSystem(t)
	g, err := s.QueryGraph(sqlparser.PaperQueries["Q7"])
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nested) != 1 {
		t.Errorf("nested = %d", len(g.Nested))
	}
	if !strings.Contains(g.DOT(), "digraph query") {
		t.Error("DOT export")
	}
	if _, err := s.QueryGraph("not sql"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestVoiceSession(t *testing.T) {
	s := movieSystem(t)
	v := s.NewVoiceSession(speech.MovieGrammar())
	turn, err := v.Ask("which movies does Brad Pitt play in")
	if err != nil {
		t.Fatal(err)
	}
	if turn.Verification != "Find movies where Brad Pitt plays." {
		t.Errorf("verification = %q", turn.Verification)
	}
	if !strings.Contains(turn.Answer, "Star Raiders") {
		t.Errorf("answer = %q", turn.Answer)
	}
	if len(turn.Events) == 0 || speech.DurationMs(turn.Events) <= 0 {
		t.Error("no speech events")
	}
	if _, err := v.Ask("meaningless gibberish"); err == nil {
		t.Error("gibberish recognized")
	}
}

func TestVoiceSessionEmptyAnswerSpeaksFeedback(t *testing.T) {
	s := movieSystem(t)
	v := s.NewVoiceSession(speech.MovieGrammar())
	turn, err := v.Ask("which movies does Zz Topp play in")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(turn.Answer, "There are no results.") {
		t.Errorf("answer = %q", turn.Answer)
	}
	if !strings.Contains(turn.Answer, "returns nothing because") {
		t.Errorf("feedback not spoken: %q", turn.Answer)
	}
}

func TestProfiles(t *testing.T) {
	s := movieSystem(t)
	p := catalog.NewProfile("year-fan")
	p.HeadingOverride["MOVIES"] = "year"
	if err := s.RegisterProfile(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Profile("year-fan"); err != nil {
		t.Fatal(err)
	}
	if err := s.Profile("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestEmpSystem(t *testing.T) {
	s, err := NewEmpSystem()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Ask(sqlparser.PaperQueries["Q0"])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verification.Text != "Find the names of employees who make more than their managers." {
		t.Errorf("verification = %q", resp.Verification.Text)
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("rows = %d", len(resp.Result.Rows))
	}
}

func TestNewValidatesRelationships(t *testing.T) {
	db, err := dataset.CuratedEmpDept()
	if err != nil {
		t.Fatal(err)
	}
	cfg := MovieConfig() // movie relationships are invalid for EMP schema
	if _, err := New(db, cfg); err == nil {
		t.Error("mismatched relationships accepted")
	}
}

func BenchmarkAskQ1(b *testing.B) {
	s, err := NewMovieSystem()
	if err != nil {
		b.Fatal(err)
	}
	src := sqlparser.PaperQueries["Q1"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ask(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVoiceLoop(b *testing.B) {
	s, err := NewMovieSystem()
	if err != nil {
		b.Fatal(err)
	}
	v := s.NewVoiceSession(speech.MovieGrammar())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Ask("which movies does Brad Pitt play in"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDescribeStatistics(t *testing.T) {
	s := movieSystem(t)
	got := s.DescribeStatistics()
	for _, want := range []string{
		"The database holds", "movies", "actors", "directors",
		"distinct title values", // King Kong ×3 collapses 13 titles to 11
	} {
		if !strings.Contains(got, want) {
			t.Errorf("statistics narrative missing %q:\n%s", want, got)
		}
	}
}

// TestAskRecordsPlan: every SELECT Response carries the plan that produced
// it, and a cache hit returns the recorded plan rather than re-planning.
func TestAskRecordsPlan(t *testing.T) {
	s := movieSystem(t)
	sql := sqlparser.PaperQueries["Q1"]
	first, err := s.Ask(sql)
	if err != nil {
		t.Fatal(err)
	}
	if first.Plan == nil || first.Plan.Fingerprint == "" {
		t.Fatal("SELECT response has no plan")
	}
	if first.Plan.Fallback {
		t.Fatalf("Q1 should plan, got fallback: %s", first.Plan.Reason)
	}
	second, err := s.Ask(sql)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("expected a cache hit (same Response pointer)")
	}
	if second.Plan.Fingerprint != first.Plan.Fingerprint {
		t.Fatal("cached response lost its plan")
	}

	// DML bumps the generation: the next Ask re-plans and re-records.
	if _, err := s.Ask("insert into GENRE (mid, genre) values (100, 'noir')"); err != nil {
		t.Fatal(err)
	}
	third, err := s.Ask(sql)
	if err != nil {
		t.Fatal(err)
	}
	if third == first {
		t.Fatal("stale cached response served after DML")
	}
	if third.Plan == nil {
		t.Fatal("re-executed response has no plan")
	}
}

// TestAskExplainPlan: EXPLAIN PLAN through the full talk-back loop narrates
// the plan in English instead of the rows.
func TestAskExplainPlan(t *testing.T) {
	s := movieSystem(t)
	resp, err := s.Ask("explain plan " + sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Plan == nil || len(resp.Plan.Steps) == 0 {
		t.Fatal("EXPLAIN response has no structured plan")
	}
	if !strings.Contains(resp.Answer, "Step 1") {
		t.Errorf("answer = %q, want a step-by-step narration", resp.Answer)
	}
	if resp.Verification == nil || !strings.Contains(resp.Verification.Text, "Explain how the system answers") {
		t.Errorf("verification = %+v", resp.Verification)
	}
	if resp.Result != nil {
		t.Error("EXPLAIN must not return the query's rows")
	}
}

// TestExplainPlanEndpointBackbone: System.ExplainPlan accepts bare SELECTs
// and EXPLAIN statements, and rejects DML.
func TestExplainPlanEndpointBackbone(t *testing.T) {
	s := movieSystem(t)
	for _, sql := range []string{
		sqlparser.PaperQueries["Q1"],
		"explain plan " + sqlparser.PaperQueries["Q1"],
	} {
		diag, err := s.ExplainPlan(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if diag.Plan == nil || diag.Text == "" {
			t.Fatalf("%s: empty diagnosis", sql)
		}
		if diag.Plan.ActualRows < 0 {
			t.Fatalf("%s: plan not executed", sql)
		}
	}
	if _, err := s.ExplainPlan("delete from GENRE"); err == nil {
		t.Fatal("EXPLAIN of DML accepted")
	}
}
