// Package core assembles the paper's primary contribution: a DBMS that
// "talks back". It wires the storage engine, schema graph, annotation sets,
// and the two translators (contents→text, queries→text) behind one System
// type, and adds the end-to-end behaviours the paper motivates: query
// verification before execution, narrated answers, empty/large-answer
// feedback, and a simulated spoken session.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/datatotext"
	"repro/internal/engine"
	"repro/internal/explain"
	"repro/internal/lexicon"
	"repro/internal/nlg"
	"repro/internal/planner"
	"repro/internal/querygraph"
	"repro/internal/querytotext"
	"repro/internal/schemagraph"
	"repro/internal/speech"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Config customizes a System.
type Config struct {
	// Verbs supplies the non-local verb labels for query translation.
	Verbs *querytotext.VerbSet
	// QueryOptions tunes query translation.
	QueryOptions querytotext.Options
	// DataOptions tunes content translation.
	DataOptions datatotext.Options
	// AnnotateGraph installs template labels on the schema graph; nil uses
	// derived defaults.
	AnnotateGraph func(*schemagraph.Graph) error
	// Relationships are the content-translation relationship annotations.
	Relationships []datatotext.Relationship
	// LargeThreshold is the row count beyond which answers are "large"
	// (default 100).
	LargeThreshold int
	// MaxNarratedRows caps answer narration (default 10).
	MaxNarratedRows int
	// CacheSize bounds each of the parse/graph/translation caches (entries;
	// default 512).
	CacheSize int
	// DisableCache turns the query caches off entirely — every Ask
	// re-parses and re-translates. Differential tests use this to prove
	// cached and uncached responses are identical.
	DisableCache bool
	// MaxRowsScanned caps the rows one request may examine before it is
	// cancelled with a narrated quota error (0 = unbounded). Together with
	// the context passed to AskContext it forms the request budget.
	MaxRowsScanned int64
	// MaxBytesScanned caps the approximate bytes one request may
	// materialize into batches (0 = unbounded).
	MaxBytesScanned int64
}

// System is a database that talks back.
//
// Concurrency: a System is safe for concurrent use by many sessions. Reads
// (Ask with SELECTs, DescribeQuery, DescribeEntity, DescribeDatabase,
// DescribeSchema, QueryGraph) may run freely in parallel; schema and
// annotations are immutable after New, the engine's view registry and the
// schema's profile registry are lock-protected, and Profile swaps in a new
// content translator under a lock instead of mutating the shared one.
//
// Reads never wait on writers. Every read pins the storage layer's current
// MVCC snapshot on entry and runs the whole pipeline — planning, execution,
// narration, feedback — against that immutable version, so a long DML batch
// or checkpoint in another session cannot block it and can never change what
// it sees mid-query. DML submitted through Ask is serialized against other
// System DML by an internal writer lock; it no longer excludes readers.
type System struct {
	db      *storage.Database
	eng     *engine.Engine
	graph   *schemagraph.Graph
	queries *querytotext.Translator
	explain *explain.Explainer
	cfg     Config

	// mu guards data: Profile replaces the content translator with a
	// personalized clone rather than mutating the published one.
	mu   sync.RWMutex
	data *datatotext.Translator

	// execMu serializes DML applied via Ask against other System DML.
	// Readers do NOT take this lock: they pin an MVCC snapshot instead
	// (storage.Database.Snapshot) and execute against frozen tables, so a
	// long-running write never blocks a read. Writes that bypass the System
	// (direct engine or storage calls) are outside this lock and follow the
	// storage layer's writer contract.
	execMu sync.Mutex

	// readers counts in-flight snapshot reads; readsDone counts completed
	// ones and readsCancelled counts reads a budget stopped early.
	// DrainReaders waits on the former during graceful shutdown, and the
	// benchmark/stats surfaces report all three. Cancelled reads release
	// their pin through the same path as completed ones, so a storm of
	// cancellations can never wedge DrainReaders or a checkpoint.
	readers        atomic.Int64
	readsDone      atomic.Uint64
	readsCancelled atomic.Uint64

	// Caches keyed on normalized SQL. Cached values are shared across
	// sessions and treated as immutable: the engine never mutates an AST,
	// and callers must not mutate a returned Translation, query graph, or
	// Response.
	parseCache *cache.Cache[sqlparser.Statement]
	graphCache *cache.Cache[*querygraph.Graph]
	transCache *cache.Cache[*querytotext.Translation]

	// respCache holds full SELECT Responses keyed on (snapshot seq, data
	// generation, normalized SQL). The snapshot seq advances on every
	// committed write the storage layer publishes — seqs only grow, so an
	// entry recorded under one version can never be served for another. The
	// generation guards the residue the seq cannot see (view definitions,
	// out-of-band mutations): DML through Ask bumps it, and writes that
	// bypass Ask (direct engine or storage calls) must call
	// InvalidateResults.
	respCache *cache.Cache[*Response]
	dataGen   atomic.Int64

	// replica holds the replication-status provider a follower process
	// registers via SetReplica; nil on a standalone node or primary.
	replica atomic.Pointer[func() ReplicaStatus]
}

// New assembles a System over db.
func New(db *storage.Database, cfg Config) (*System, error) {
	if cfg.LargeThreshold <= 0 {
		cfg.LargeThreshold = 100
	}
	if cfg.MaxNarratedRows <= 0 {
		cfg.MaxNarratedRows = 10
	}
	g, err := schemagraph.Build(db.Schema())
	if err != nil {
		return nil, err
	}
	if cfg.AnnotateGraph != nil {
		if err := cfg.AnnotateGraph(g); err != nil {
			return nil, err
		}
	}
	g.DefaultAnnotations()
	eng := engine.New(db)
	dataTr := datatotext.New(db, g, cfg.DataOptions)
	for _, r := range cfg.Relationships {
		if err := dataTr.AddRelationship(r); err != nil {
			return nil, err
		}
	}
	queryTr := querytotext.New(db.Schema(), cfg.Verbs, cfg.QueryOptions)
	sys := &System{
		db: db, eng: eng, graph: g,
		data: dataTr, queries: queryTr,
		explain: explain.New(eng, queryTr),
		cfg:     cfg,
	}
	if !cfg.DisableCache {
		sys.parseCache = cache.New[sqlparser.Statement](cfg.CacheSize)
		sys.graphCache = cache.New[*querygraph.Graph](cfg.CacheSize)
		sys.transCache = cache.New[*querytotext.Translation](cfg.CacheSize)
		sys.respCache = cache.New[*Response](cfg.CacheSize)
	}
	return sys, nil
}

// NewMovieSystem builds a System over the curated Fig. 1 movie database
// with the paper's annotation sets installed.
func NewMovieSystem() (*System, error) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		return nil, err
	}
	return New(db, MovieConfig())
}

// MovieConfig returns the standard configuration for movie-schema
// databases (curated or generated).
func MovieConfig() Config {
	return Config{
		Verbs:         querytotext.MovieVerbs(),
		QueryOptions:  querytotext.Options{Elaborate: true},
		DataOptions:   datatotext.Options{Style: nlg.Compact},
		AnnotateGraph: datatotext.AnnotateMovieGraph,
		Relationships: datatotext.MovieRelationships(),
	}
}

// NewEmpSystem builds a System over the curated EMP/DEPT database from
// §3.1.
func NewEmpSystem() (*System, error) {
	db, err := dataset.CuratedEmpDept()
	if err != nil {
		return nil, err
	}
	return New(db, EmpConfig())
}

// EmpConfig returns the standard configuration for EMP/DEPT-schema
// databases.
func EmpConfig() Config {
	return Config{
		Verbs:        querytotext.EmpVerbs(),
		QueryOptions: querytotext.Options{},
		DataOptions:  datatotext.Options{Style: nlg.Compact},
	}
}

// Database exposes the storage layer.
func (s *System) Database() *storage.Database { return s.db }

// Engine exposes the execution engine.
func (s *System) Engine() *engine.Engine { return s.eng }

// SchemaGraph exposes the annotated schema graph.
func (s *System) SchemaGraph() *schemagraph.Graph { return s.graph }

// DataTranslator exposes the content translator.
func (s *System) DataTranslator() *datatotext.Translator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data
}

// QueryTranslator exposes the query translator.
func (s *System) QueryTranslator() *querytotext.Translator { return s.queries }

// Explainer exposes the feedback subsystem.
func (s *System) Explainer() *explain.Explainer { return s.explain }

// ---------------------------------------------------------------------------
// Talk-back operations
// ---------------------------------------------------------------------------

// parseCached parses sql through the AST cache. The returned statement is
// shared across sessions and must be treated as read-only.
func (s *System) parseCached(sql string) (sqlparser.Statement, string, error) {
	key := cache.NormalizeSQL(sql)
	stmt, err := s.parseCachedKey(key, sql)
	return stmt, key, err
}

// parseCachedKey is parseCached for callers that already normalized sql.
func (s *System) parseCachedKey(key, sql string) (sqlparser.Statement, error) {
	if s.parseCache != nil {
		if stmt, ok := s.parseCache.Get(key); ok {
			return stmt, nil
		}
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if s.parseCache != nil {
		s.parseCache.Put(key, stmt)
	}
	return stmt, nil
}

// translateCached translates a parsed statement through the translation
// cache; key is the normalized SQL from parseCached.
func (s *System) translateCached(key string, stmt sqlparser.Statement) (*querytotext.Translation, error) {
	if s.transCache != nil {
		if tr, ok := s.transCache.Get(key); ok {
			return tr, nil
		}
	}
	tr, err := s.queries.TranslateStatement(stmt)
	if err != nil {
		return nil, err
	}
	if s.transCache != nil {
		s.transCache.Put(key, tr)
	}
	return tr, nil
}

// DescribeQuery translates a SQL statement into natural language without
// executing it — the paper's verification use case ("it may be nice for the
// user to see it expressed in the most familiar way ... before the query is
// sent for execution"). The returned Translation may be served from the
// cache and shared; callers must not mutate it.
func (s *System) DescribeQuery(sql string) (*querytotext.Translation, error) {
	stmt, key, err := s.parseCached(sql)
	if err != nil {
		return nil, err
	}
	return s.translateCached(key, stmt)
}

// QueryGraph builds the Fig. 2-style query graph of a SELECT. Graphs are
// cached per normalized SQL and shared; callers must not mutate them.
func (s *System) QueryGraph(sql string) (*querygraph.Graph, error) {
	stmt, key, err := s.parseCached(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: query graphs require a SELECT statement")
	}
	if s.graphCache != nil {
		if g, ok := s.graphCache.Get(key); ok {
			return g, nil
		}
	}
	g, err := querygraph.Build(sel, s.db.Schema())
	if err != nil {
		return nil, err
	}
	if s.graphCache != nil {
		s.graphCache.Put(key, g)
	}
	return g, nil
}

// CacheStats reports hit/miss/eviction counters for the parse, query-graph,
// translation, and response caches; empty when caching is disabled.
func (s *System) CacheStats() map[string]cache.Stats {
	out := make(map[string]cache.Stats, 4)
	if s.parseCache != nil {
		out["parse"] = s.parseCache.Stats()
	}
	if s.graphCache != nil {
		out["graph"] = s.graphCache.Stats()
	}
	if s.transCache != nil {
		out["translation"] = s.transCache.Stats()
	}
	if s.respCache != nil {
		out["response"] = s.respCache.Stats()
	}
	return out
}

// Response is a full talk-back interaction.
type Response struct {
	// Verification is the NL rendering of the query, shown before results.
	Verification *querytotext.Translation
	// Result is the executed answer (nil for DML).
	Result *engine.Result
	// Affected counts DML rows.
	Affected int
	// Answer narrates the result in natural language.
	Answer string
	// Feedback carries empty-answer diagnosis or large-answer explanation,
	// when applicable.
	Feedback string
	// Plan records the executed query plan (nil for DML). Cached responses
	// keep it, so a served answer always says which plan produced it.
	Plan *planner.Summary
}

// Ask runs the complete loop: translate, execute, narrate the answer, and
// attach feedback for empty or very large answers. EXPLAIN PLAN statements
// run the query and narrate the executed plan instead of the rows. Ask has
// no deadline; AskContext is the bounded form.
func (s *System) Ask(sql string) (*Response, error) {
	return s.AskContext(context.Background(), sql)
}

// AskContext is Ask bounded by a request budget: ctx's deadline and
// cancellation, plus the Config row/byte quotas, are polled cooperatively at
// morsel boundaries throughout planning and execution. A tripped budget
// surfaces as an *engine.CancelError carrying how far the query got; DML it
// stops either commits whole through the WAL or leaves no trace. A context
// that can never fire and zero quotas make AskContext byte-identical to Ask.
func (s *System) AskContext(ctx context.Context, sql string) (resp *Response, err error) {
	bud := engine.NewBudget(ctx, s.cfg.MaxRowsScanned, s.cfg.MaxBytesScanned)
	// Requests already abandoned by their caller are refused before pinning
	// a snapshot or touching any cache.
	if err := bud.Step(0); err != nil {
		return nil, err
	}
	// Pin the MVCC version first: everything below — the response cache
	// key, planning, execution, narration, feedback — is answered from
	// this one immutable snapshot, no matter how many writers commit while
	// the question is being handled.
	snap := s.db.Snapshot()
	pinPub := s.db.Published()

	// Full-response fast path: repeated SELECTs over unchanged data are
	// answered straight from the cache, before even parsing. Only SELECT
	// responses are ever stored, so a hit cannot replay side effects. The
	// key carries the snapshot seq and the data generation, so any
	// committed write makes every older entry unreachable — and since
	// table statistics (hence plan choice) only change with the data, the
	// key also pins the plan: a cached Response can never be served under
	// a different plan than the one recorded in its Plan field. The
	// returned Response is shared; callers must not mutate it.
	key := cache.NormalizeSQL(sql)
	var respKey string
	if s.respCache != nil {
		respKey = fmt.Sprintf("%d|%d|%s", snap.Seq(), s.dataGen.Load(), key)
		if cached, ok := s.respCache.Get(respKey); ok {
			return cached, nil
		}
	}

	stmt, err := s.parseCachedKey(key, sql)
	if err != nil {
		return nil, err
	}
	sel, isSelect := stmt.(*sqlparser.SelectStmt)

	verification, err := s.translateCached(key, stmt)
	if err != nil {
		return nil, err
	}
	resp = &Response{Verification: verification}

	if exp, isExplain := stmt.(*sqlparser.ExplainStmt); isExplain {
		done := s.beginRead()
		diag, err := s.explainerAt(snap, bud).ExplainPlan(exp.Query)
		done(engine.IsCancel(err))
		if err != nil {
			return nil, err
		}
		resp.Plan = diag.Plan
		resp.Answer = diag.Text + " " + s.snapshotNarration(snap, pinPub)
		return resp, nil
	}

	if !isSelect {
		s.execMu.Lock()
		_, n, err := s.eng.WithBudget(bud).ExecStatement(stmt)
		s.execMu.Unlock()
		// Invalidate even on error: DML can partially apply before failing
		// (e.g. a multi-row insert hitting a duplicate key), and cached
		// SELECTs must not outlive the rows that did land.
		s.InvalidateResults()
		if err != nil {
			return nil, bud.WrapWALStall(err)
		}
		resp.Affected = n
		resp.Answer = lexicon.Sentence(fmt.Sprintf("Done; %s affected", lexicon.CountNoun(n, "row")))
		return resp, nil
	}

	done := s.beginRead()
	defer func() { done(engine.IsCancel(err)) }()
	eng := s.eng.At(snap).WithBudget(bud)
	res, plan, err := eng.SelectExplained(sel)
	if err != nil {
		return nil, err
	}
	resp.Result = res
	resp.Plan = plan.Summarize()
	resp.Answer = s.NarrateResult(res)

	// Feedback probes re-execute predicate subsets; running them on the
	// same pinned snapshot guarantees the diagnosis describes the version
	// the answer came from, not whatever a concurrent writer left behind.
	switch {
	case len(res.Rows) == 0:
		diag, err := explain.New(eng, s.queries).ExplainEmpty(sel)
		if err == nil {
			resp.Feedback = diag.Text
		}
	case len(res.Rows) > s.cfg.LargeThreshold:
		diag, err := explain.New(eng, s.queries).ExplainLarge(sel, s.cfg.LargeThreshold)
		if err == nil {
			resp.Feedback = diag.Text
		}
	}
	if s.respCache != nil {
		s.respCache.Put(respKey, resp)
	}
	return resp, nil
}

// ExplainPlan plans and executes sql, returning the executed plan with its
// English narration and optimization tips — the backbone of the /explain
// endpoint. sql may be a SELECT or an EXPLAIN [PLAN] SELECT.
func (s *System) ExplainPlan(sql string) (*explain.PlanDiagnosis, error) {
	return s.ExplainPlanContext(context.Background(), sql)
}

// ExplainPlanContext is ExplainPlan bounded by the same request budget as
// AskContext: the explain's probe executions poll ctx and the Config quotas
// at morsel boundaries.
func (s *System) ExplainPlanContext(ctx context.Context, sql string) (diag *explain.PlanDiagnosis, err error) {
	bud := engine.NewBudget(ctx, s.cfg.MaxRowsScanned, s.cfg.MaxBytesScanned)
	if err := bud.Step(0); err != nil {
		return nil, err
	}
	stmt, _, err := s.parseCached(sql)
	if err != nil {
		return nil, err
	}
	var sel *sqlparser.SelectStmt
	switch t := stmt.(type) {
	case *sqlparser.SelectStmt:
		sel = t
	case *sqlparser.ExplainStmt:
		sel = t.Query
	default:
		return nil, fmt.Errorf("core: EXPLAIN requires a SELECT statement")
	}
	snap := s.db.Snapshot()
	pinPub := s.db.Published()
	done := s.beginRead()
	defer func() { done(engine.IsCancel(err)) }()
	diag, err = s.explainerAt(snap, bud).ExplainPlan(sel)
	if err != nil {
		return nil, err
	}
	diag.Text += " " + s.snapshotNarration(snap, pinPub)
	return diag, nil
}

// explainerAt builds a transient explainer bound to the pinned snapshot and
// request budget, so its probe re-executions see exactly the version the
// answer came from and stop when the request does.
func (s *System) explainerAt(snap *storage.Snapshot, bud *engine.Budget) *explain.Explainer {
	return explain.New(s.eng.At(snap).WithBudget(bud), s.queries)
}

// snapshotNarration is the postscript the MVCC layer earns in EXPLAIN
// output: it names the pinned version and how many writers committed while
// the query ran — concurrency the reader never felt.
func (s *System) snapshotNarration(snap *storage.Snapshot, publishedAtPin uint64) string {
	if rs, ok := s.ReplicaStatus(); ok && rs.Follower {
		return replicaNarration(rs, snap.Seq())
	}
	committed := s.db.Published() - publishedAtPin
	if committed == 0 {
		return fmt.Sprintf("Answered from snapshot @%d.", snap.Seq())
	}
	return fmt.Sprintf("Answered from snapshot @%d while %s committed without blocking this read.",
		snap.Seq(), lexicon.CountNoun(int(committed), "writer"))
}

// beginRead registers an in-flight snapshot read and returns its completion
// func; cancelled reports whether a budget stopped the read early. Reads run
// without any System-level lock; this counter only exists so DrainReaders
// can hand a quiescent database to the final checkpoint and so the stats
// surfaces can report reader traffic — and distinguish reads that finished
// from reads the deadline killed.
func (s *System) beginRead() func(cancelled bool) {
	s.readers.Add(1)
	return func(cancelled bool) {
		s.readers.Add(-1)
		if cancelled {
			s.readsCancelled.Add(1)
		} else {
			s.readsDone.Add(1)
		}
	}
}

// ReaderStats reports in-flight, completed, and budget-cancelled snapshot
// reads.
func (s *System) ReaderStats() (inFlight int64, completed, cancelled uint64) {
	return s.readers.Load(), s.readsDone.Load(), s.readsCancelled.Load()
}

// DrainReaders blocks until every in-flight snapshot read has completed.
// Graceful shutdown calls it after the listener stops accepting work and
// before the final checkpoint, so no reader is abandoned mid-pipeline. Reads
// pin immutable snapshots, so the wait is bounded by query runtime — nothing
// a writer or the checkpoint does can wedge it.
func (s *System) DrainReaders() {
	for s.readers.Load() > 0 {
		time.Sleep(200 * time.Microsecond)
	}
}

// InvalidateResults discards all cached SELECT responses. Ask does this
// automatically for DML it executes; callers that mutate data behind the
// System's back (direct engine Exec, storage Insert/Update/Delete, CSV
// loads, CreateIndex — which can change plan choice) must call it
// themselves. The generation bump makes stale entries
// unreachable immediately — including Puts from SELECTs still in flight,
// which land under the old generation — and the Clear releases their
// memory rather than waiting for LRU pressure.
func (s *System) InvalidateResults() {
	s.dataGen.Add(1)
	if s.respCache != nil {
		s.respCache.Clear()
	}
}

// NarrateResult renders a query answer as text (§2.1: "Whatever holds for
// whole databases, of course, holds for query answers as well").
func (s *System) NarrateResult(res *engine.Result) string {
	if len(res.Rows) == 0 {
		return "There are no results."
	}
	max := s.cfg.MaxNarratedRows
	rows := res.Rows
	truncated := 0
	if len(rows) > max {
		truncated = len(rows) - max
		rows = rows[:max]
	}
	var text string
	switch {
	case len(res.Columns) == 1 && len(rows) == 1:
		text = lexicon.Sentence("The answer is " + rows[0][0].Prose())
	case len(res.Columns) == 1:
		items := make([]string, len(rows))
		for i, r := range rows {
			items[i] = r[0].Prose()
		}
		text = lexicon.Sentence(fmt.Sprintf("There are %s: %s",
			lexicon.CountNoun(len(res.Rows), "answer"), lexicon.JoinAnd(items)))
	default:
		var sentences []string
		for _, r := range rows {
			fields := make([]string, 0, len(r))
			for ci, v := range r {
				if v.IsNull() {
					continue
				}
				fields = append(fields, fmt.Sprintf("%s %s", lexicon.Humanize(res.Columns[ci]), v.Prose()))
			}
			sentences = append(sentences, lexicon.Sentence("One result has "+lexicon.JoinAnd(fields)))
		}
		text = nlg.Paragraph(sentences...)
	}
	if truncated > 0 {
		text += " " + lexicon.Sentence(fmt.Sprintf("%s more omitted", lexicon.NumberWord(truncated)))
	}
	return text
}

// DescribeEntity narrates one entity (the Woody Allen narrative). The
// narration reads a pinned snapshot, so a concurrent writer can neither
// block it nor change the entity mid-sentence.
func (s *System) DescribeEntity(rel, attr string, val value.Value) (string, error) {
	done := s.beginRead()
	defer done(false)
	return s.DataTranslator().WithSource(s.db.Snapshot()).DescribeEntity(rel, attr, val)
}

// DescribeDatabase narrates the database from a starting relation, reading
// one pinned snapshot throughout.
func (s *System) DescribeDatabase(start string) (string, error) {
	done := s.beginRead()
	defer done(false)
	return s.DataTranslator().WithSource(s.db.Snapshot()).DescribeDatabase(start)
}

// translatorFor resolves a transient translator personalized for the named
// profile ("" means the system default) without touching shared state.
func (s *System) translatorFor(profile string) (*datatotext.Translator, error) {
	tr := s.DataTranslator()
	if profile == "" {
		return tr, nil
	}
	p := s.db.Schema().Profile(profile)
	if p == nil {
		return nil, fmt.Errorf("core: unknown profile %q", profile)
	}
	opts := tr.Options()
	opts.Profile = p
	return tr.WithOptions(opts), nil
}

// DescribeEntityAs narrates one entity under the named profile without
// changing the system-wide default — the per-session personalization path
// (§2.2). An empty profile name uses the default translator.
func (s *System) DescribeEntityAs(profile, rel, attr string, val value.Value) (string, error) {
	return s.DescribeEntityAsContext(context.Background(), profile, rel, attr, val)
}

// DescribeEntityAsContext is DescribeEntityAs with the request context
// checked on entry: a request whose deadline already expired (e.g. while
// queued at admission) is refused before it pins a snapshot. Narration
// itself runs row loops too short to need mid-flight polling; the serving
// layer's write timeout bounds it.
func (s *System) DescribeEntityAsContext(ctx context.Context, profile, rel, attr string, val value.Value) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	tr, err := s.translatorFor(profile)
	if err != nil {
		return "", err
	}
	done := s.beginRead()
	defer done(false)
	return tr.WithSource(s.db.Snapshot()).DescribeEntity(rel, attr, val)
}

// DescribeDatabaseAs narrates the database under the named profile without
// changing the system-wide default.
func (s *System) DescribeDatabaseAs(profile, start string) (string, error) {
	return s.DescribeDatabaseAsContext(context.Background(), profile, start)
}

// DescribeDatabaseAsContext is DescribeDatabaseAs with the request context
// checked on entry (see DescribeEntityAsContext).
func (s *System) DescribeDatabaseAsContext(ctx context.Context, profile, start string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	tr, err := s.translatorFor(profile)
	if err != nil {
		return "", err
	}
	done := s.beginRead()
	defer done(false)
	return tr.WithSource(s.db.Snapshot()).DescribeDatabase(start)
}

// DescribeSchema narrates the schema itself (§2.1: "describing the schema
// itself ... is just a special case of a database description").
func (s *System) DescribeSchema() string {
	var sentences []string
	for _, n := range s.graph.Nodes() {
		rel := n.Rel
		if rel.Bridge {
			continue
		}
		attrs := make([]string, 0, len(rel.Attributes))
		for _, a := range rel.Attributes {
			attrs = append(attrs, lexicon.Humanize(a.Name))
		}
		sentence := fmt.Sprintf("Each %s has %s", rel.Concept(), lexicon.JoinAnd(attrs))
		var related []string
		for _, j := range n.Joins {
			if j.To.Rel.Bridge {
				// Look through the bridge to its other end.
				for _, j2 := range j.To.Joins {
					if j2.To != n {
						related = append(related, lexicon.Pluralize(j2.To.Rel.Concept()))
					}
				}
				continue
			}
			related = append(related, lexicon.Pluralize(j.To.Rel.Concept()))
		}
		if len(related) > 0 {
			sentence += " and relates to " + lexicon.JoinAnd(dedupe(related))
		}
		sentences = append(sentences, lexicon.Sentence(sentence))
	}
	return nlg.Paragraph(sentences...)
}

// DescribeStatistics narrates the database's size profile — the paper's
// §2.1 observation that "database samples, histograms, data distribution
// approximations are all, in some sense, small databases and can be
// summarized textually".
func (s *System) DescribeStatistics() string {
	done := s.beginRead()
	defer done(false)
	snap := s.db.Snapshot()
	stats := snap.Stats()
	var sentences []string
	var parts []string
	for _, n := range s.graph.Nodes() {
		rel := n.Rel
		if rel.Bridge {
			continue
		}
		count := stats[rel.Name]
		parts = append(parts, lexicon.CountNoun(count, rel.Concept()))
	}
	sentences = append(sentences, lexicon.Sentence("The database holds "+lexicon.JoinAnd(parts)))
	// One distribution note per relation with a heading attribute.
	for _, n := range s.graph.Nodes() {
		rel := n.Rel
		if rel.Bridge || stats[rel.Name] == 0 {
			continue
		}
		h := rel.Heading()
		if h == nil {
			continue
		}
		distinct, err := snap.DistinctCount(rel.Name, h.Name)
		if err != nil || distinct == stats[rel.Name] {
			continue
		}
		sentences = append(sentences, lexicon.Sentence(fmt.Sprintf(
			"the %d %s share %s distinct %s values",
			stats[rel.Name], lexicon.Pluralize(rel.Concept()),
			lexicon.NumberWord(distinct), lexicon.Humanize(h.Name))))
	}
	return nlg.Paragraph(sentences...)
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Spoken sessions (§2.1)
// ---------------------------------------------------------------------------

// VoiceSession couples the recognizer and synthesizer simulators with the
// full talk-back loop.
type VoiceSession struct {
	sys   *System
	rec   *speech.Recognizer
	synth *speech.Synthesizer
}

// NewVoiceSession builds a session with the given grammar.
func (s *System) NewVoiceSession(grammar []speech.Pattern) *VoiceSession {
	return &VoiceSession{
		sys:   s,
		rec:   speech.NewRecognizer(grammar),
		synth: speech.NewSynthesizer(),
	}
}

// VoiceTurn is one spoken interaction.
type VoiceTurn struct {
	// Utterance is the user's spoken question.
	Utterance string
	// SQL is the recognized query.
	SQL string
	// Verification is the NL echo of the query ("I understood: ...").
	Verification string
	// Answer is the narrated result.
	Answer string
	// Events is the synthesized speech stream of the answer.
	Events []speech.Event
}

// Ask runs one spoken turn.
func (v *VoiceSession) Ask(utterance string) (*VoiceTurn, error) {
	rec, err := v.rec.Recognize(utterance)
	if err != nil {
		return nil, err
	}
	resp, err := v.sys.Ask(rec.SQL)
	if err != nil {
		return nil, err
	}
	answer := resp.Answer
	if resp.Feedback != "" {
		answer += " " + resp.Feedback
	}
	return &VoiceTurn{
		Utterance:    utterance,
		SQL:          strings.TrimSpace(rec.SQL),
		Verification: resp.Verification.Text,
		Answer:       answer,
		Events:       v.synth.Speak(answer),
	}, nil
}

// Profile applies a personalization profile to content translation (§2.2)
// as the new system-wide default. It swaps in a personalized clone of the
// content translator under a lock, so concurrent describes keep using a
// consistent translator throughout their call. Per-session personalization
// should use DescribeEntityAs / DescribeDatabaseAs instead.
func (s *System) Profile(name string) error {
	p := s.db.Schema().Profile(name)
	if p == nil {
		return fmt.Errorf("core: unknown profile %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	opts := s.data.Options()
	opts.Profile = p
	s.data = s.data.WithOptions(opts)
	return nil
}

// RegisterProfile adds a personalization profile. Safe for concurrent use.
func (s *System) RegisterProfile(p *catalog.Profile) error {
	return s.db.Schema().AddProfile(p)
}
