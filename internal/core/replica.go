package core

import (
	"repro/internal/querytotext"
	"repro/internal/storage"
)

// ReplicaStatus describes this node's replication role for narration and
// stats. The server layer provides it (core does not dial anything): a
// follower process registers a provider backed by its replication link, and
// every answer's snapshot postscript switches to the follower's voice.
type ReplicaStatus struct {
	Follower         bool
	AppliedSeq       uint64
	PrimarySeq       uint64
	Lag              uint64
	Connected        bool
	Quarantined      bool
	QuarantineSeq    uint64
	QuarantineReason string
	// Catchup is what the current replication session has shipped, in the
	// recovery report's vocabulary.
	Catchup storage.RecoveryReport
}

// SetReplica registers the replication-status provider; nil unregisters it.
// The provider is called per answered read, so it must be cheap.
func (s *System) SetReplica(fn func() ReplicaStatus) {
	if fn == nil {
		s.replica.Store(nil)
		return
	}
	s.replica.Store(&fn)
}

// ReplicaStatus reports the registered replication status; ok is false on a
// standalone node (no provider registered).
func (s *System) ReplicaStatus() (ReplicaStatus, bool) {
	p := s.replica.Load()
	if p == nil {
		return ReplicaStatus{}, false
	}
	return (*p)(), true
}

// replicaNarration is the follower's version of the snapshot postscript:
// which snapshot answered, how far behind the primary it stands, and — when
// replication has latched — why it stopped advancing.
func replicaNarration(rs ReplicaStatus, snapSeq uint64) string {
	n := querytotext.FollowerSnapshotEnglish(snapSeq, rs.Lag)
	if rs.Quarantined {
		n += " " + querytotext.QuarantineEnglish(rs.QuarantineSeq, rs.QuarantineReason)
	}
	return n
}
