package core

import (
	"encoding/json"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sqlparser"
)

// renderResponse serializes a Response (including every result cell) so two
// responses can be compared byte-for-byte.
func renderResponse(t *testing.T, resp *Response) string {
	t.Helper()
	type flatRow []string
	flat := struct {
		Verification string
		Notes        []string
		Columns      []string
		Rows         []flatRow
		Affected     int
		Answer       string
		Feedback     string
	}{
		Verification: resp.Verification.Text,
		Notes:        resp.Verification.Notes,
		Affected:     resp.Affected,
		Answer:       resp.Answer,
		Feedback:     resp.Feedback,
	}
	if resp.Result != nil {
		flat.Columns = resp.Result.Columns
		for _, row := range resp.Result.Rows {
			cells := make(flatRow, len(row))
			for i, v := range row {
				cells[i] = v.Key()
			}
			flat.Rows = append(flat.Rows, cells)
		}
	}
	b, err := json.Marshal(flat)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCachedVsUncachedAsk proves the cache subsystem is invisible: for the
// full movie paper-query corpus, a cache-disabled system, a cold cache, and
// a warm cache must produce byte-identical responses.
func TestCachedVsUncachedAsk(t *testing.T) {
	cached, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	cfg := MovieConfig()
	cfg.DisableCache = true
	uncached, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, label := range movieQueryLabels {
		q := sqlparser.PaperQueries[label]
		plain, err := uncached.Ask(q)
		if err != nil {
			t.Fatalf("uncached Ask(%s): %v", label, err)
		}
		cold, err := cached.Ask(q)
		if err != nil {
			t.Fatalf("cold cached Ask(%s): %v", label, err)
		}
		warm, err := cached.Ask(q)
		if err != nil {
			t.Fatalf("warm cached Ask(%s): %v", label, err)
		}
		want := renderResponse(t, plain)
		if got := renderResponse(t, cold); got != want {
			t.Errorf("%s: cold cache differs from uncached\n got %s\nwant %s", label, got, want)
		}
		if got := renderResponse(t, warm); got != want {
			t.Errorf("%s: warm cache differs from uncached\n got %s\nwant %s", label, got, want)
		}
	}

	st := cached.CacheStats()
	if st["response"].Hits == 0 {
		t.Fatal("warm pass never hit the response cache")
	}
	if len(uncached.CacheStats()) != 0 {
		t.Fatal("DisableCache system still reports cache stats")
	}
}

// TestResponseCacheInvalidation proves the response cache can never serve
// stale answers: DML applied through Ask advances the data generation, so
// the next identical SELECT recomputes against the new data.
func TestResponseCacheInvalidation(t *testing.T) {
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	const q = `select a.name from ACTOR a where a.name = 'Test Invalidation'`
	before, err := sys.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if before.Result == nil || len(before.Result.Rows) != 0 {
		t.Fatalf("expected empty result before insert, got %+v", before.Result)
	}
	// Warm the cache, then mutate through Ask.
	if _, err := sys.Ask(q); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Ask(`insert into ACTOR (id, name) values (9901, 'Test Invalidation')`); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Result == nil || len(after.Result.Rows) != 1 {
		t.Fatalf("cached SELECT served stale data after DML: %+v", after.Result)
	}

	// Out-of-band writes need the explicit invalidation hook.
	if _, _, err := sys.Engine().Exec(`delete from ACTOR where id = 9901`); err != nil {
		t.Fatal(err)
	}
	sys.InvalidateResults()
	final, err := sys.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Result.Rows) != 0 {
		t.Fatalf("InvalidateResults did not flush cached responses: %+v", final.Result)
	}
}

// TestCachedDescribeQuery pins the same invariant on the verify-only path.
func TestCachedDescribeQuery(t *testing.T) {
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range movieQueryLabels {
		q := sqlparser.PaperQueries[label]
		first, err := sys.DescribeQuery(q)
		if err != nil {
			t.Fatalf("DescribeQuery(%s): %v", label, err)
		}
		second, err := sys.DescribeQuery(q)
		if err != nil {
			t.Fatalf("cached DescribeQuery(%s): %v", label, err)
		}
		if first.Text != second.Text || first.Declarative != second.Declarative {
			t.Errorf("%s: cached translation differs: %q vs %q", label, first.Text, second.Text)
		}
	}
}
