package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// followerSystem marks a movie system's database as a read-only follower and
// registers a static replication status.
func followerSystem(t *testing.T, rs ReplicaStatus) *System {
	t.Helper()
	s, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	s.Database().SetReadOnly(true)
	s.SetReplica(func() ReplicaStatus { return rs })
	return s
}

// TestFollowerNarratesAnswers: on a follower, EXPLAIN's snapshot postscript
// switches to the follower's voice, naming the lag behind the primary.
func TestFollowerNarratesAnswers(t *testing.T) {
	s := followerSystem(t, ReplicaStatus{Follower: true, AppliedSeq: 12, PrimarySeq: 15, Lag: 3})
	resp, err := s.Ask("explain plan " + sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Answered by a follower at snapshot @",
		"three statements behind the primary.",
	} {
		if !strings.Contains(resp.Answer, want) {
			t.Errorf("answer = %q, want it to contain %q", resp.Answer, want)
		}
	}
	if strings.Contains(resp.Answer, "Answered from snapshot") {
		t.Errorf("answer %q still uses the standalone snapshot voice", resp.Answer)
	}

	// Caught up, the postscript says so instead of naming a lag.
	s.SetReplica(func() ReplicaStatus { return ReplicaStatus{Follower: true, AppliedSeq: 15, PrimarySeq: 15} })
	diag, err := s.ExplainPlan(sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diag.Text, "fully caught up with the primary") {
		t.Errorf("diagnosis = %q, want the caught-up postscript", diag.Text)
	}
}

// TestFollowerNarratesQuarantine: a latched quarantine rides along on every
// EXPLAIN answer, so a stale follower explains itself unprompted.
func TestFollowerNarratesQuarantine(t *testing.T) {
	s := followerSystem(t, ReplicaStatus{
		Follower: true, AppliedSeq: 4, PrimarySeq: 9, Lag: 5,
		Quarantined: true, QuarantineSeq: 4,
		QuarantineReason: "sequence gap: record 9 arrived while I stood at 4",
	})
	diag, err := s.ExplainPlan(sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"I stopped replicating at sequence 4: sequence gap: record 9 arrived while I stood at 4.",
		"serving my last consistent snapshot",
	} {
		if !strings.Contains(diag.Text, want) {
			t.Errorf("diagnosis = %q, want it to contain %q", diag.Text, want)
		}
	}
}

// TestFollowerRefusesDML: DML through the full Ask loop on a follower
// surfaces the storage layer's read-only refusal, identifiable with
// errors.Is so the server can map it to a narrated 403.
func TestFollowerRefusesDML(t *testing.T) {
	s := followerSystem(t, ReplicaStatus{Follower: true})
	_, err := s.Ask("insert into ACTOR (id, name) values (7777, 'Local Write')")
	if !errors.Is(err, storage.ErrReadOnlyReplica) {
		t.Fatalf("DML on follower: %v, want ErrReadOnlyReplica", err)
	}
	// SELECTs keep working against the last applied snapshot.
	if _, err := s.Ask("select count(*) from MOVIES m"); err != nil {
		t.Fatalf("read on follower: %v", err)
	}
}

// TestStandaloneNarrationUnchanged: without a registered replica provider
// the postscript stays in the standalone voice — replication costs nothing
// when it is not configured.
func TestStandaloneNarrationUnchanged(t *testing.T) {
	s, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	diag, err := s.ExplainPlan(sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diag.Text, "Answered from snapshot @") {
		t.Errorf("diagnosis = %q, want the standalone snapshot postscript", diag.Text)
	}
	if _, ok := s.ReplicaStatus(); ok {
		t.Fatal("standalone system reports a replica status")
	}
	s.SetReplica(func() ReplicaStatus { return ReplicaStatus{Follower: true} })
	s.SetReplica(nil)
	if _, ok := s.ReplicaStatus(); ok {
		t.Fatal("SetReplica(nil) did not unregister the provider")
	}
}
