package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ---------------------------------------------------------------------------
// A WAL filesystem whose fsyncs can be stalled on demand, to hold a commit
// open mid-flight while readers run.
// ---------------------------------------------------------------------------

type stallFS struct {
	wal.FS
	mu      sync.Mutex
	stall   chan struct{} // non-nil: Syncs block until closed
	stalled chan struct{} // closed the first time a Sync blocks
	once    *sync.Once
}

func newStallFS(inner wal.FS) *stallFS { return &stallFS{FS: inner} }

// arm makes the next Sync block; it returns the channel closed when a Sync
// is provably stalled, and the release func that lets it through.
func (f *stallFS) arm() (stalled <-chan struct{}, release func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stall = make(chan struct{})
	f.stalled = make(chan struct{})
	f.once = new(sync.Once)
	gate := f.stall
	return f.stalled, func() {
		f.mu.Lock()
		f.stall, f.stalled, f.once = nil, nil, nil
		f.mu.Unlock()
		close(gate)
	}
}

func (f *stallFS) OpenAppend(name string) (wal.File, error) {
	file, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &stallFile{File: file, fs: f}, nil
}

func (f *stallFS) Create(name string) (wal.File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &stallFile{File: file, fs: f}, nil
}

type stallFile struct {
	wal.File
	fs *stallFS
}

func (sf *stallFile) Sync() error {
	sf.fs.mu.Lock()
	stall, stalled, once := sf.fs.stall, sf.fs.stalled, sf.fs.once
	sf.fs.mu.Unlock()
	if stall != nil {
		once.Do(func() { close(stalled) })
		<-stall
	}
	return sf.File.Sync()
}

// TestReadersCompleteDuringStalledCommit is the tentpole's user-visible
// proof: while a DML commit is wedged inside its WAL fsync, SELECTs through
// Ask must complete — and must see the pre-commit snapshot, even though the
// row is already applied to the live table. Under -race this also proves the
// lock-free read path is sound against a writer frozen mid-commit.
func TestReadersCompleteDuringStalledCommit(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newStallFS(wal.NewMemFS())
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	sys, _, err := NewDurable(db, fs, storage.DurableOptions{CheckpointBytes: -1}, MovieConfig())
	if err != nil {
		t.Fatal(err)
	}

	stalled, release := fs.arm()
	writerErr := make(chan error, 1)
	go func() {
		_, err := sys.Ask("insert into ACTOR (id, name) values (7777, 'Stalled Writer')")
		writerErr <- err
	}()
	select {
	case <-stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("commit never reached its fsync")
	}

	// The writer is now provably mid-commit. Every read path must complete
	// and answer from the last installed version.
	_, completedBefore, _ := sys.ReaderStats()
	for i := 0; i < 3; i++ {
		resp, err := sys.Ask("select a.name from ACTOR a where a.id = 7777")
		if err != nil {
			t.Fatalf("read during commit: %v", err)
		}
		if n := len(resp.Result.Rows); n != 0 {
			t.Fatalf("snapshot isolation broken: uncommitted row visible (%d rows)", n)
		}
	}
	if _, err := sys.Ask("select count(*) from MOVIES m"); err != nil {
		t.Fatalf("scan during commit: %v", err)
	}
	if _, err := sys.DescribeDatabase("MOVIES"); err != nil {
		t.Fatalf("describe during commit: %v", err)
	}
	_ = sys.DescribeStatistics()
	if _, completedAfter, _ := sys.ReaderStats(); completedAfter <= completedBefore {
		t.Fatalf("no reads counted as completed during the stalled commit (%d -> %d)",
			completedBefore, completedAfter)
	}

	release()
	if err := <-writerErr; err != nil {
		t.Fatalf("stalled writer failed after release: %v", err)
	}
	resp, err := sys.Ask("select a.name from ACTOR a where a.id = 7777")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 1 {
		t.Fatalf("committed row invisible after install: %d rows", len(resp.Result.Rows))
	}
}

// renderEngineResult fingerprints an engine result byte-for-byte.
func renderEngineResult(res *engine.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, "|"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.Key())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestSnapshotDifferentialOracle is the randomized time-travel differential:
// a seeded DML workload runs step by step; after every step the current
// snapshot is retained together with the serially-executed results of a
// query corpus. Once the workload has moved far past them, every retained
// snapshot re-runs the corpus concurrently — and each answer must be
// byte-identical to the serialized execution recorded when that snapshot was
// the present. Under -race this doubles as the proof that arbitrarily old
// snapshots are safe against ongoing writes.
func TestSnapshotDifferentialOracle(t *testing.T) {
	defer leakcheck.Check(t)()
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"select a.name from ACTOR a where a.id >= 8000 order by a.name",
		"select count(*) from ACTOR a",
		"select a.name, count(*) from ACTOR a group by a.name order by a.name",
	}

	type epoch struct {
		snap *storage.Snapshot
		want []string
	}
	rng := rand.New(rand.NewSource(11))
	var epochs []epoch
	nextID := 8000
	for step := 0; step < 40; step++ {
		var stmt string
		switch rng.Intn(4) {
		case 0, 1:
			stmt = fmt.Sprintf("insert into ACTOR (id, name) values (%d, 'oracle-%d')", nextID, nextID%7)
			nextID++
		case 2:
			stmt = fmt.Sprintf("update ACTOR set name = 'mut-%d' where id = %d", step, 8000+rng.Intn(nextID-8000+1))
		case 3:
			stmt = fmt.Sprintf("delete from ACTOR where id = %d", 8000+rng.Intn(nextID-8000+1))
		}
		if _, err := sys.Ask(stmt); err != nil {
			t.Fatalf("step %d %q: %v", step, stmt, err)
		}
		snap := sys.Database().Snapshot()
		ep := epoch{snap: snap}
		for _, q := range queries {
			res, err := sys.Engine().At(snap).Query(q)
			if err != nil {
				t.Fatalf("serial query at step %d: %v", step, err)
			}
			ep.want = append(ep.want, renderEngineResult(res))
		}
		epochs = append(epochs, ep)
	}

	// Re-read every retained epoch concurrently, long after its version was
	// superseded, racing against a writer that keeps committing.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.Ask(fmt.Sprintf("insert into ACTOR (id, name) values (%d, 'churn')", 9000+i)); err != nil {
				t.Errorf("churn insert: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for e := w; e < len(epochs); e += 4 {
				ep := epochs[e]
				for qi, q := range queries {
					res, err := sys.Engine().At(ep.snap).Query(q)
					if err != nil {
						t.Errorf("epoch %d query %d: %v", e, qi, err)
						return
					}
					if got := renderEngineResult(res); got != ep.want[qi] {
						t.Errorf("epoch %d query %d: snapshot re-read diverges from serialized execution\n--- want\n%s\n--- got\n%s",
							e, qi, ep.want[qi], got)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
}

// TestDrainReaders pins the shutdown contract: DrainReaders must not return
// while a snapshot read is in flight, and must return promptly once the last
// one completes.
func TestDrainReaders(t *testing.T) {
	defer leakcheck.Check(t)()
	sys, err := NewMovieSystem()
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	done := sys.beginRead()
	go func() {
		<-release
		done(false)
	}()

	drained := make(chan struct{})
	go func() {
		sys.DrainReaders()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("DrainReaders returned with a reader in flight")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("DrainReaders never returned after the last reader finished")
	}
	if inFlight, _, _ := sys.ReaderStats(); inFlight != 0 {
		t.Fatalf("readers in flight after drain: %d", inFlight)
	}
}
