package planner

import (
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Cost model constants, in scanned-tuple units.
const (
	costProbe    = 1.5 // one hash probe (pk or index)
	costHashLoad = 1.0 // insert one build tuple into a hash table
	costEmit     = 0.1 // materialize one output row
)

// Build plans a SELECT over the given FROM entries (engine-flattened, inner
// joins only — the engine falls back before calling for outer joins or
// views). onConjuncts carries explicit-JOIN ON predicates in clause order;
// they are planned exactly like WHERE conjuncts, which is equivalent for
// inner joins. hasOuter reports an enclosing scope (this SELECT is a
// subquery), which legitimizes otherwise-unresolvable column references as
// correlations. A non-nil Plan with Fallback set means the query is outside
// the planner's dialect.
func Build(sel *sqlparser.SelectStmt, inputs []Input, onConjuncts []sqlparser.Expr, hasOuter bool) *Plan {
	if len(inputs) == 0 {
		return fallback("no base tables")
	}

	res := &resolver{inputs: inputs, offsets: make([]int, len(inputs))}
	width := 0
	for i := range inputs {
		res.offsets[i] = width
		width += len(inputs[i].Rel.Attributes)
	}

	// ON conjuncts of explicit inner joins behave exactly like WHERE
	// conjuncts (the engine verifies they only reference their own or
	// earlier FROM entries before planning), so the two lists merge.
	whereConjs := sqlparser.Conjuncts(sel.Where)
	conjs := make([]*conjunct, 0, len(onConjuncts)+len(whereConjs))
	for _, list := range [][]sqlparser.Expr{onConjuncts, whereConjs} {
		for _, e := range list {
			c, err := analyze(e, res, hasOuter)
			if err != nil {
				return fallback(err.Error())
			}
			conjs = append(conjs, c)
		}
	}

	stats := make([]storage.TableStats, len(inputs))
	for i := range inputs {
		stats[i] = inputs[i].Tbl.Stats()
	}

	// Local filter lists and filtered-cardinality estimates per input.
	localSel := make([]float64, len(inputs))
	for i := range localSel {
		localSel[i] = 1
	}
	for _, c := range conjs {
		if c.post || len(c.inputs) != 1 {
			continue
		}
		for in := range c.inputs {
			localSel[in] *= selectivity(c.expr, in, res, &stats[in])
		}
	}
	filteredRows := func(i int) float64 {
		r := float64(stats[i].Rows) * localSel[i]
		if r < 0.1 {
			r = 0.1
		}
		return r
	}

	plan := &Plan{Width: width, ActualRows: -1}
	bound := make([]bool, len(inputs))
	planPos := make([]int, len(inputs)) // input index -> step index

	// ----- first step: cheapest filtered base table, best access path -----
	first := 0
	for i := 1; i < len(inputs); i++ {
		// Ascending iteration keeps the lowest FROM position on ties.
		if filteredRows(i) < filteredRows(first) {
			first = i
		}
	}
	firstStep := &Step{
		Input: inputs[first], FromPos: first, Offset: res.offsets[first],
		Access: ScanFull, TableRows: stats[first].Rows, ActualRows: -1,
	}
	chooseScanAccess(firstStep, first, conjs, res, &stats[first])
	firstStep.EstRows = filteredRows(first)
	switch firstStep.Access {
	case ScanPK:
		firstStep.EstCost = costProbe
		if firstStep.EstRows > 1 {
			firstStep.EstRows = 1
		}
	case ScanIndex:
		firstStep.EstCost = costProbe + firstStep.EstRows
	default:
		firstStep.EstCost = float64(stats[first].Rows)
	}
	plan.Steps = append(plan.Steps, firstStep)
	bound[first] = true
	planPos[first] = 0
	cur := firstStep.EstRows

	// ----- remaining steps: greedy by estimated output cardinality -----
	for len(plan.Steps) < len(inputs) {
		type choice struct {
			input int
			step  *Step
			out   float64
		}
		var best *choice
		connectedOnly := anyConnected(inputs, bound, conjs)
		for i := range inputs {
			if bound[i] {
				continue
			}
			if connectedOnly && !isConnected(i, bound, conjs) {
				continue
			}
			st := planJoinStep(i, cur, bound, conjs, res, inputs, &stats[i], localSel[i])
			c := &choice{input: i, step: st, out: st.EstRows}
			if best == nil || c.out < best.out ||
				(c.out == best.out && st.EstCost < best.step.EstCost) ||
				(c.out == best.out && st.EstCost == best.step.EstCost && i < best.input) {
				best = c
			}
		}
		st := best.step
		planPos[best.input] = len(plan.Steps)
		plan.Steps = append(plan.Steps, st)
		bound[best.input] = true
		markConsumed(st)
		cur = st.EstRows
	}

	// ----- assign every remaining conjunct to its binding step -----
	for _, c := range conjs {
		if c.consumed {
			continue
		}
		if c.post || len(c.inputs) == 0 {
			// Input-free conjuncts (constant predicates) run at the first
			// step, like the naive pushdown; true residuals run after all
			// joins.
			if c.post {
				plan.Post = append(plan.Post, c.expr)
			} else {
				plan.Steps[0].PostJoinFilters = append(plan.Steps[0].PostJoinFilters, c.expr)
			}
			continue
		}
		last := 0
		for in := range c.inputs {
			if planPos[in] > last {
				last = planPos[in]
			}
		}
		// A single-input conjunct binds at that input's own step, so it is a
		// self-filter (applicable before the join); multi-input conjuncts
		// need the joined candidate row.
		st := plan.Steps[last]
		if len(c.inputs) == 1 {
			st.SelfFilters = append(st.SelfFilters, c.expr)
		} else {
			st.PostJoinFilters = append(st.PostJoinFilters, c.expr)
		}
	}

	// ----- totals -----
	plan.EstRows = cur
	for range plan.Post {
		plan.EstRows *= defaultSelectivity
	}
	for _, st := range plan.Steps {
		plan.EstCost += st.EstCost
	}
	for i, st := range plan.Steps {
		if st.FromPos != i {
			plan.Reordered = true
			break
		}
	}
	buildShape(plan, sel, res, stats)
	return plan
}

// buildShape appends the post-join shaping stages — aggregate, sort or
// top-k, limit — the engine will run after the join pipeline, with group
// counts estimated from per-attribute distinct statistics.
func buildShape(plan *Plan, sel *sqlparser.SelectStmt, res *resolver, stats []storage.TableStats) {
	cur := plan.EstRows
	if sel.Grouped() {
		st := &ShapeStep{Kind: ShapeAggregate, ActualRows: -1}
		for _, g := range sel.GroupBy {
			st.GroupBy = append(st.GroupBy, g.SQL())
		}
		st.Aggregates = aggregateSQLs(sel)
		st.EstRows = estimateGroups(sel.GroupBy, res, stats, cur)
		if sel.Having != nil {
			st.Having = sel.Having.SQL()
			st.EstRows *= defaultSelectivity
		}
		if st.EstRows < 1 {
			st.EstRows = 1
		}
		plan.Shape = append(plan.Shape, st)
		cur = st.EstRows
		// Upgrade to the vectorized-aggregation shape (and a morsel-parallel
		// base scan) when the query fits the fused typed-accumulator dialect.
		vecAggShape(plan, sel, res, stats, st)
	}
	if len(sel.OrderBy) > 0 {
		st := &ShapeStep{Kind: ShapeSort, EstRows: cur, ActualRows: -1}
		for _, o := range sel.OrderBy {
			st.Keys = append(st.Keys, o.SQL())
		}
		// A positive LIMIT turns the sort into a bounded top-K heap; LIMIT 0
		// still sorts fully (for error parity) and truncates afterwards, so
		// it stays a sort followed by a limit step.
		if sel.Limit > 0 {
			st.Kind = ShapeTopK
			st.K = sel.Limit
			if cur > float64(sel.Limit) {
				st.EstRows = float64(sel.Limit)
			}
		}
		plan.Shape = append(plan.Shape, st)
		cur = st.EstRows
	}
	if sel.Limit >= 0 && (len(sel.OrderBy) == 0 || sel.Limit == 0) {
		st := &ShapeStep{Kind: ShapeLimit, K: sel.Limit, EstRows: cur, ActualRows: -1}
		if cur > float64(sel.Limit) {
			st.EstRows = float64(sel.Limit)
		}
		plan.Shape = append(plan.Shape, st)
		cur = st.EstRows
	}
	if len(plan.Shape) > 0 {
		plan.EstRows = cur
	}
	// Last, decide whether the base scan should consult zone maps; the step
	// is prepended so explains narrate the skip before the shaping stages.
	zoneSkipShape(plan, res, stats)
}

// aggregateSQLs collects the distinct aggregate expressions of the select
// list, HAVING, and ORDER BY, in first-appearance order.
func aggregateSQLs(sel *sqlparser.SelectStmt) []string {
	var out []string
	seen := map[string]bool{}
	collect := func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if a, ok := x.(*sqlparser.AggregateExpr); ok {
				s := a.SQL()
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
				return false
			}
			return true
		})
	}
	for _, it := range sel.Items {
		collect(it.Expr)
	}
	collect(sel.Having)
	for _, o := range sel.OrderBy {
		collect(o.Expr)
	}
	return out
}

// estimateGroups estimates the number of GROUP BY groups as the product of
// the grouping attributes' distinct counts, capped by the joined cardinality.
// Non-column grouping expressions contribute a fixed fan-out guess.
func estimateGroups(groupBy []sqlparser.Expr, res *resolver, stats []storage.TableStats, cur float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	groups := 1.0
	for _, g := range groupBy {
		factor := 1 / defaultSelectivity // non-column expression: fixed guess
		if ref, ok := g.(*sqlparser.ColumnRef); ok {
			if in, pos, err := res.resolve(ref); err == nil {
				d := float64(stats[in].Attrs[pos].Distinct)
				if d < 1 {
					d = 1
				}
				factor = d
			}
		}
		groups *= factor
	}
	if groups > cur && cur >= 1 {
		groups = cur
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// anyConnected reports whether any unbound input has a join edge to the
// bound set — if so, unconnected inputs wait (avoid needless cartesians).
func anyConnected(inputs []Input, bound []bool, conjs []*conjunct) bool {
	for i := range inputs {
		if !bound[i] && isConnected(i, bound, conjs) {
			return true
		}
	}
	return false
}

func isConnected(i int, bound []bool, conjs []*conjunct) bool {
	for _, c := range conjs {
		if c.eq == nil || c.consumed {
			continue
		}
		if (c.eq.a == i && bound[c.eq.b]) || (c.eq.b == i && bound[c.eq.a]) {
			return true
		}
	}
	return false
}

// chooseScanAccess upgrades a first-step full scan to a primary-key or
// index probe when literal equality filters cover the key. Covered filter
// conjuncts stay in the filter list — re-checking an equality the probe
// already enforced is cheap and keeps the execution paths uniform.
func chooseScanAccess(st *Step, in int, conjs []*conjunct, res *resolver, stats *storage.TableStats) {
	// Literal equality per attribute position.
	eqLit := map[int]value.Value{}
	for _, c := range conjs {
		if c.post || len(c.inputs) != 1 || !c.inputs[in] {
			continue
		}
		b, ok := c.expr.(*sqlparser.BinaryExpr)
		if !ok || b.Op != sqlparser.OpEq {
			continue
		}
		attrOf := func(x sqlparser.Expr) (int, bool) {
			cr, ok := x.(*sqlparser.ColumnRef)
			if !ok {
				return 0, false
			}
			ri, rp, err := res.resolve(cr)
			if err != nil || ri != in {
				return 0, false
			}
			return rp, true
		}
		if pos, lit, _, ok := splitColLit(b, attrOf); ok {
			if _, dup := eqLit[pos]; !dup {
				eqLit[pos] = lit
			}
		}
	}
	if len(eqLit) == 0 {
		return
	}
	covered := func(positions []int) ([]value.Value, bool) {
		if len(positions) == 0 {
			return nil, false
		}
		vals := make([]value.Value, len(positions))
		for i, p := range positions {
			v, ok := eqLit[p]
			if !ok || v.IsNull() {
				return nil, false
			}
			vals[i] = v
		}
		return vals, true
	}
	if vals, ok := covered(st.Input.Tbl.PKPositions()); ok {
		st.Access = ScanPK
		st.KeyValues = vals
		return
	}
	for _, info := range st.Input.Tbl.IndexInfos() {
		if vals, ok := covered(info.Positions); ok {
			st.Access = ScanIndex
			st.IndexName = info.Name
			st.KeyValues = vals
			return
		}
	}
}

// planJoinStep prices joining input i onto the current rows and picks the
// cheapest method.
func planJoinStep(i int, cur float64, bound []bool, conjs []*conjunct, res *resolver, inputs []Input, stats *storage.TableStats, localSel float64) *Step {
	st := &Step{
		Input: inputs[i], FromPos: i, Offset: res.offsets[i],
		TableRows: stats.Rows, ActualRows: -1,
	}
	rows := float64(stats.Rows)
	filtered := rows * localSel
	if filtered < 0.1 {
		filtered = 0.1
	}

	// Join edges from the bound set to i: attribute position -> probe slot.
	type edgeInfo struct {
		conj      *conjunct
		pos       int // attribute position in i
		probeSlot int // absolute slot on the bound side
		desc      string
	}
	var edges []edgeInfo
	for _, c := range conjs {
		if c.eq == nil || c.consumed {
			continue
		}
		e := c.eq
		switch {
		case e.a == i && bound[e.b]:
			edges = append(edges, edgeInfo{conj: c, pos: e.aPos, probeSlot: res.slot(e.b, e.bPos), desc: c.expr.SQL()})
		case e.b == i && bound[e.a]:
			edges = append(edges, edgeInfo{conj: c, pos: e.bPos, probeSlot: res.slot(e.a, e.aPos), desc: c.expr.SQL()})
		}
	}

	distinctOf := func(pos int) float64 {
		d := float64(stats.Attrs[pos].Distinct)
		if d < 1 {
			d = 1
		}
		return d
	}

	if len(edges) == 0 {
		// Cartesian (or non-equi) nested loop.
		st.Access = JoinLoop
		st.EstRows = cur * filtered
		st.EstCost = cur*filtered + filtered
		return st
	}

	// Matches per probe on one edge: rows / distinct(join attr), scaled by
	// the local filters.
	fanout := func(pos int) float64 {
		f := rows / distinctOf(pos) * localSel
		if f < 0 {
			f = 0
		}
		return f
	}

	// Candidate: primary-key join (all pk attrs covered by edges).
	pkPos := inputs[i].Tbl.PKPositions()
	edgeByPos := map[int]edgeInfo{}
	for _, e := range edges {
		if _, dup := edgeByPos[e.pos]; !dup {
			edgeByPos[e.pos] = e
		}
	}
	coverKey := func(positions []int) ([]edgeInfo, bool) {
		if len(positions) == 0 {
			return nil, false
		}
		out := make([]edgeInfo, len(positions))
		for k, p := range positions {
			e, ok := edgeByPos[p]
			if !ok {
				return nil, false
			}
			out[k] = e
		}
		return out, true
	}

	type method struct {
		access  Access
		index   string
		used    []edgeInfo
		estRows float64
		cost    float64
	}
	var methods []method

	if used, ok := coverKey(pkPos); ok {
		match := localSel // pk probe yields <= 1 row, times local filters
		methods = append(methods, method{
			access: JoinPK, used: used,
			estRows: cur * match,
			cost:    cur*costProbe + cur*match*costEmit,
		})
	}
	for _, info := range inputs[i].Tbl.IndexInfos() {
		if used, ok := coverKey(info.Positions); ok {
			f := rows * localSel
			for _, p := range info.Positions {
				f /= distinctOf(p)
			}
			if f < 0.1/rowsOrOne(rows) {
				f = 0
			}
			methods = append(methods, method{
				access: JoinIndex, index: info.Name, used: used,
				estRows: cur * f,
				cost:    cur*costProbe + cur*f*costEmit,
			})
		}
	}
	// Hash join on the first edge (mirrors the naive engine's choice).
	he := edges[0]
	methods = append(methods, method{
		access: JoinHash, used: []edgeInfo{he},
		estRows: cur * fanout(he.pos),
		cost:    rows*costHashLoad + cur*costProbe + cur*fanout(he.pos)*costEmit,
	})

	best := methods[0]
	for _, m := range methods[1:] {
		if m.cost < best.cost {
			best = m
		}
	}
	st.Access = best.access
	st.IndexName = best.index
	st.EstRows = best.estRows
	st.EstCost = best.cost
	var descs []string
	for _, e := range best.used {
		descs = append(descs, e.desc)
	}
	st.JoinDesc = strings.Join(descs, " and ")
	switch best.access {
	case JoinHash:
		st.BuildPos = best.used[0].pos
		st.ProbeSlot = best.used[0].probeSlot
	case JoinPK:
		st.ProbeSlots = make([]int, len(pkPos))
		for k := range pkPos {
			st.ProbeSlots[k] = best.used[k].probeSlot
		}
	case JoinIndex:
		st.ProbeSlots = make([]int, len(best.used))
		for k := range best.used {
			st.ProbeSlots[k] = best.used[k].probeSlot
		}
	}
	// Remember which conjuncts the access path consumed; markConsumed flags
	// them once the step is actually chosen (candidate steps that lose the
	// greedy race must not mark anything).
	st.consumedConjs = nil
	for _, e := range best.used {
		st.consumedConjs = append(st.consumedConjs, e.conj)
	}
	// Unconsumed edges still filter this step's output.
	for _, e := range edges {
		if !inConjSet(st.consumedConjs, e.conj) {
			st.EstRows /= distinctOf(e.pos)
		}
	}
	if st.EstRows < 0.05 {
		st.EstRows = 0.05
	}
	return st
}

func rowsOrOne(r float64) float64 {
	if r < 1 {
		return 1
	}
	return r
}

func inConjSet(set []*conjunct, c *conjunct) bool {
	for _, e := range set {
		if e == c {
			return true
		}
	}
	return false
}

// markConsumed flags the conjuncts folded into the chosen step's access
// path so they are neither re-applied as filters nor reused as edges.
func markConsumed(st *Step) {
	for _, c := range st.consumedConjs {
		c.consumed = true
	}
	st.consumedConjs = nil
}
