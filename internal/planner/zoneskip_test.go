package planner_test

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/planner"
	"repro/internal/storage"
)

func TestLikePrefix(t *testing.T) {
	cases := []struct {
		pattern, prefix string
		prefixOnly      bool
	}{
		{"", "", false}, // no wildcard: exact match of the empty string
		{"%", "", true},
		{"%%", "", true},
		{"abc", "abc", false}, // no wildcard: exact match, not a prefix scan
		{"abc%", "abc", true},
		{"abc%%", "abc", true},
		{"abc%d", "abc", false},
		{"abc_", "abc", false},
		{"a%b", "a", false},
		{"_bc", "", false},
		{"中文%", "中文", true},
		{`ab\%`, `ab\`, true}, // the dialect has no escapes: backslash is literal
	}
	for _, c := range cases {
		prefix, prefixOnly := planner.LikePrefix(c.pattern)
		if prefix != c.prefix || prefixOnly != c.prefixOnly {
			t.Errorf("LikePrefix(%q) = (%q, %v), want (%q, %v)",
				c.pattern, prefix, prefixOnly, c.prefix, c.prefixOnly)
		}
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		prefix, succ string
		ok           bool
	}{
		{"abc", "abd", true},
		{"ab\xff", "ac", true},
		{"\xff\xff", "", false}, // no finite upper bound
		{"", "", false},
		{"a\xff\xff", "b", true},
		{"中", "\xe4\xb8\xae", true}, // byte-level increment, not rune-level
	}
	for _, c := range cases {
		succ, ok := planner.PrefixSuccessor(c.prefix)
		if succ != c.succ || ok != c.ok {
			t.Errorf("PrefixSuccessor(%q) = (%q, %v), want (%q, %v)", c.prefix, succ, ok, c.succ, c.ok)
		}
	}
	// The successor must be a strict upper bound for the prefix range.
	for _, p := range []string{"a", "movie", "zz\xfe", "a\xff"} {
		succ, ok := planner.PrefixSuccessor(p)
		if !ok {
			t.Fatalf("PrefixSuccessor(%q) not ok", p)
		}
		if !(p < succ) {
			t.Errorf("successor %q not greater than %q", succ, p)
		}
		if sample := p + "\xff\xff\xff"; !(sample < succ) {
			t.Errorf("%q (extends %q) not below successor %q", sample, p, succ)
		}
	}
}

// bigDB builds a movie database whose MOVIES table spans multiple morsels,
// clearing the zone-skip row-count gate.
func bigDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 7, Movies: 3 * planner.MorselRows, Actors: 500, Directors: 21,
		CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func zoneStep(p *planner.Plan) *planner.ShapeStep {
	for _, sh := range p.Shape {
		if sh.Kind == planner.ShapeZoneSkip {
			return sh
		}
	}
	return nil
}

// TestZoneSkipShapeGating pins when the planner plants a zone-skip step: a
// selective vectorizable filter over a multi-morsel full scan qualifies;
// small tables, unselective filters, probes, and prefix-free LIKEs do not.
func TestZoneSkipShapeGating(t *testing.T) {
	big := bigDB(t)
	rows := big.Table("MOVIES").Len()
	morsels := (rows + planner.MorselRows - 1) / planner.MorselRows

	p := buildPlan(t, big, `select m.title from MOVIES m where m.year = 1975`)
	st := zoneStep(p)
	if st == nil {
		t.Fatalf("selective scan lacks zone-skip step: %s", p.Fingerprint())
	}
	if p.Shape[0] != st {
		t.Fatalf("zone-skip step not first in shape: %s", p.Fingerprint())
	}
	if st.K != morsels {
		t.Fatalf("zone-skip K = %d, want %d", st.K, morsels)
	}
	if st.ActualRows != -1 {
		t.Fatalf("unexecuted plan reports ActualRows %d", st.ActualRows)
	}
	if !strings.Contains(p.Fingerprint(), ">zskip") {
		t.Fatalf("fingerprint %q lacks >zskip", p.Fingerprint())
	}
	if !strings.Contains(p.Summarize().Shape[0].Detail, "morsels") {
		t.Fatalf("summary detail %q", p.Summarize().Shape[0].Detail)
	}

	// LIKE with a prefix qualifies; a prefix-free LIKE leaves nothing to probe.
	if p := buildPlan(t, big, `select m.title from MOVIES m where m.title like 'Movie 42%'`); zoneStep(p) == nil {
		t.Fatalf("prefix LIKE lacks zone-skip: %s", p.Fingerprint())
	}
	if p := buildPlan(t, big, `select m.title from MOVIES m where m.title like '%42'`); zoneStep(p) != nil {
		t.Fatalf("suffix LIKE planted zone-skip: %s", p.Fingerprint())
	}

	// Unselective: the estimate exceeds the gate, pruning would be wasted work.
	if p := buildPlan(t, big, `select m.title from MOVIES m where m.year != 1975`); zoneStep(p) != nil {
		t.Fatalf("unselective filter planted zone-skip: %s", p.Fingerprint())
	}
	// No filter at all.
	if p := buildPlan(t, big, `select m.title from MOVIES m`); zoneStep(p) != nil {
		t.Fatalf("filterless scan planted zone-skip: %s", p.Fingerprint())
	}
	// Point probe: not a full scan.
	if p := buildPlan(t, big, `select m.title from MOVIES m where m.id = 7`); zoneStep(p) != nil {
		t.Fatalf("pk probe planted zone-skip: %s", p.Fingerprint())
	}

	// Small table: under one morsel there is nothing to skip.
	small, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 7, Movies: 200, Actors: 50, Directors: 7, CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := buildPlan(t, small, `select m.title from MOVIES m where m.year = 1975`); zoneStep(p) != nil {
		t.Fatalf("small table planted zone-skip: %s", p.Fingerprint())
	}
}

// TestZoneSkipShapeComposes: the step rides in front of vec-aggregate and
// parallel-scan shaping without disturbing them.
func TestZoneSkipShapeComposes(t *testing.T) {
	p := buildPlan(t, bigDB(t),
		`select m.year, count(*) from MOVIES m where m.year < 1940 group by m.year`)
	if p.Fallback {
		t.Fatalf("fallback: %s", p.Reason)
	}
	fp := p.Fingerprint()
	if !strings.Contains(fp, ">zskip") || !strings.Contains(fp, ">pscan") || !strings.Contains(fp, ">vagg") {
		t.Fatalf("fingerprint %q should compose zskip, pscan and vagg", fp)
	}
	if p.Shape[0].Kind != planner.ShapeZoneSkip {
		t.Fatalf("zone-skip not first: %s", fp)
	}
}
