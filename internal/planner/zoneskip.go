package planner

import (
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// This file gates the zone-skip shape: whether the base scan of a plan should
// probe the storage layer's per-morsel zone maps (min/max/null summaries kept
// per MorselRows-sized range) before touching column payloads, skipping
// morsels whose bounds prove every filter row false. Like the vec-aggregate
// gate, the decision is a planner-side mirror of what the engine's compiler
// accepts; the engine re-verifies and downgrades the shape in place when the
// probes cannot be built, so the narrated plan always tells the truth.

// zoneSkipMaxSelectivity is the estimated fraction of base rows surviving the
// scan's own filters above which zone probing is not worth the bookkeeping:
// an unselective scan touches nearly every morsel anyway.
const zoneSkipMaxSelectivity = 0.5

// zoneSkipShape prepends a zone-skip shape step when the plan's first step is
// a full scan over a table large enough to have multiple zones, at least one
// of its self-filters lowers to a zone probe, and the filters are estimated
// selective enough that whole morsels plausibly fall out.
func zoneSkipShape(plan *Plan, res *resolver, stats []storage.TableStats) {
	if len(plan.Steps) == 0 {
		return
	}
	first := plan.Steps[0]
	if first.Access != ScanFull || first.TableRows < MorselRows {
		return
	}
	probeable := false
	for _, f := range first.SelfFilters {
		if zoneFilterEligible(f, first.FromPos, res, stats) {
			probeable = true
			break
		}
	}
	if !probeable {
		return
	}
	sel := 1.0
	if first.TableRows > 0 {
		sel = first.EstRows / float64(first.TableRows)
	}
	if sel > zoneSkipMaxSelectivity {
		return
	}
	morsels := (first.TableRows + MorselRows - 1) / MorselRows
	st := &ShapeStep{
		Kind:       ShapeZoneSkip,
		K:          morsels,
		EstRows:    (1 - sel) * float64(morsels),
		ActualRows: -1,
	}
	plan.Shape = append([]*ShapeStep{st}, plan.Shape...)
}

// zoneFilterEligible reports whether a self-filter conjunct can be answered
// (at least partially) from zone bounds. It is the vectorizable dialect
// narrowed by one case: a LIKE pattern prunes zones only through its literal
// prefix, so a pattern that starts with a wildcard gives the probe nothing to
// compare against the zone's string bounds.
func zoneFilterEligible(e sqlparser.Expr, in int, res *resolver, stats []storage.TableStats) bool {
	if !vecFilterEligible(e, in, res, stats) {
		return false
	}
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == sqlparser.OpLike {
		lit, ok := litValue(b.Right)
		if !ok || lit.IsNull() {
			return false
		}
		prefix, _ := LikePrefix(lit.Text())
		return prefix != ""
	}
	return true
}

// LikePrefix splits a LIKE pattern into the literal prefix before its first
// wildcard and reports whether the remainder is nothing but '%' wildcards.
// Any matching string must start with the prefix (so zone string bounds can
// prove a morsel all-false); when prefixOnly is true the pattern matches
// exactly the strings with that prefix, so bounds can also prove all-true and
// a sorted dictionary can answer the predicate as a code-range compare.
func LikePrefix(pattern string) (prefix string, prefixOnly bool) {
	i := strings.IndexAny(pattern, "%_")
	if i < 0 {
		return pattern, false // no wildcard: exact-equality pattern
	}
	for _, r := range pattern[i:] {
		if r != '%' {
			return pattern[:i], false
		}
	}
	return pattern[:i], true
}

// PrefixSuccessor returns the smallest string greater than every string with
// the given prefix, and ok=false when no such string exists (the prefix is
// empty or all 0xFF bytes). [prefix, successor) is the string range a
// prefix predicate selects.
func PrefixSuccessor(prefix string) (string, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}
