package planner

import (
	"math"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file gates the vectorized-aggregation shape: whether a grouped query
// can skip the generic row pipeline and run the engine's fused scan→join→
// aggregate loop over typed column vectors. The gate is structural (every
// group key and aggregate argument must be a plain column reference, every
// filter inside the vectorizable predicate dialect, no residuals, no join
// reordering) plus statistical (DISTINCT bitsets need a bounded value domain,
// AVG merges need sums that stay exactly representable in a float64). It is
// deliberately a mirror of what the engine's compiler accepts: the planner
// decides, the engine re-verifies at compile time and downgrades the shape in
// place when they disagree, so the narrated plan always tells the truth.

const (
	// MorselRows is the number of base-table positions one morsel covers in a
	// parallel scan. Workers claim morsels from a shared atomic cursor and
	// merge their partial aggregation states in morsel order, which keeps
	// parallel output byte-identical to serial execution. It equals the
	// storage layer's zone-map granularity so a zone summary decides a whole
	// morsel at once.
	MorselRows = storage.ZoneRows

	// ParallelScanMinRows is the base-table size below which a morsel-driven
	// scan is not worth scheduling (mirrors the engine's fan-out threshold).
	ParallelScanMinRows = 2048

	// MaxBitsetDomain bounds the value-domain width a DISTINCT aggregate may
	// track with a per-group bitset (dictionary size for text, min..max span
	// for integers and dates).
	MaxBitsetDomain = 1 << 16

	// exactFloat is the magnitude below which every intermediate float64 sum
	// of integers is exactly representable, making float additions
	// associative — the condition for AVG partial-state merges to be
	// byte-identical to serial row-order accumulation.
	exactFloat = 1 << 53
)

// vecAggShape upgrades the aggregate shape step to vec-aggregate (and, when
// the merge is provably exact, prepends a parallel-scan step) if the grouped
// query fits the engine's fused vectorized-aggregation dialect.
func vecAggShape(plan *Plan, sel *sqlparser.SelectStmt, res *resolver, stats []storage.TableStats, agg *ShapeStep) {
	if plan.Reordered || len(plan.Post) > 0 || len(plan.Steps) == 0 {
		return
	}
	for _, st := range plan.Steps {
		if len(st.PostJoinFilters) > 0 {
			return
		}
		for _, f := range st.SelfFilters {
			if !vecFilterEligible(f, st.FromPos, res, stats) {
				return
			}
		}
	}
	// Group keys: plain column references of storable kinds.
	for _, g := range sel.GroupBy {
		ref, ok := g.(*sqlparser.ColumnRef)
		if !ok || ref.Column == "*" {
			return
		}
		in, pos, err := res.resolve(ref)
		if err != nil {
			return
		}
		switch attrKind(res.inputs[in], pos) {
		case value.Int, value.Float, value.Text, value.Date, value.Bool:
		default:
			return
		}
	}
	// Select items, HAVING, and ORDER BY: compositions of group-key matches,
	// gated aggregates, and pure scalar operators.
	exact := true
	check := func(e sqlparser.Expr) bool {
		ok, ex := vecGroupExpr(e, sel, res, stats, plan)
		exact = exact && ex
		return ok
	}
	for _, it := range sel.Items {
		if !check(it.Expr) {
			return
		}
	}
	if sel.Having != nil && !check(sel.Having) {
		return
	}
	for _, o := range sel.OrderBy {
		// Ordinals and select-list matches resolve to output columns; other
		// expressions must compile over the synthetic group row.
		if lit, ok := o.Expr.(*sqlparser.Literal); ok && lit.Value.Kind() == value.Int {
			continue
		}
		if orderMatchesItem(o, sel) {
			continue
		}
		if !check(o.Expr) {
			return
		}
	}
	agg.Kind = ShapeVecAggregate
	first := plan.Steps[0]
	if exact && first.Access == ScanFull && first.TableRows >= ParallelScanMinRows {
		ps := &ShapeStep{
			Kind:       ShapeParallelScan,
			K:          MorselRows,
			EstRows:    first.EstRows,
			ActualRows: -1,
		}
		plan.Shape = append([]*ShapeStep{ps}, plan.Shape...)
	}
}

// orderMatchesItem reports whether an ORDER BY expression textually matches a
// select item or its alias — the cases orderTarget resolves to an output
// column, needing no group-row compilation. Conservative: misses fall through
// to the structural check.
func orderMatchesItem(o sqlparser.OrderItem, sel *sqlparser.SelectStmt) bool {
	oSQL := o.Expr.SQL()
	for _, it := range sel.Items {
		if it.Expr.SQL() == oSQL {
			return true
		}
	}
	if ref, ok := o.Expr.(*sqlparser.ColumnRef); ok && ref.Table == "" {
		for _, it := range sel.Items {
			if it.Alias != "" && strings.EqualFold(it.Alias, ref.Column) {
				return true
			}
		}
	}
	return false
}

// vecGroupExpr checks one grouped expression: every column reference must be
// a GROUP BY match, every aggregate must fit the typed-accumulator dialect.
// exact reports whether all aggregates reached merge partial states without
// rounding (the parallel-scan condition).
func vecGroupExpr(e sqlparser.Expr, sel *sqlparser.SelectStmt, res *resolver, stats []storage.TableStats, plan *Plan) (ok, exact bool) {
	ok, exact = true, true
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if !ok {
			return false
		}
		if groupKeyMatch(x, sel.GroupBy, res) {
			return false
		}
		switch n := x.(type) {
		case *sqlparser.AggregateExpr:
			aggOK, aggExact := vecAggEligible(n, res, stats, plan)
			if !aggOK {
				ok = false
			}
			exact = exact && aggExact
			return false
		case *sqlparser.ColumnRef, *sqlparser.Star,
			*sqlparser.SubqueryExpr, *sqlparser.ExistsExpr, *sqlparser.QuantifiedExpr:
			ok = false
			return false
		case *sqlparser.InExpr:
			if n.Subquery != nil {
				ok = false
				return false
			}
		}
		return true
	})
	return ok, exact
}

// groupKeyMatch mirrors the engine's groupByIndex: textually identical, or a
// column reference resolving to the same attribute as a GROUP BY column.
func groupKeyMatch(e sqlparser.Expr, groupBy []sqlparser.Expr, res *resolver) bool {
	eSQL := e.SQL()
	eRef, eIsRef := e.(*sqlparser.ColumnRef)
	for _, g := range groupBy {
		if g.SQL() == eSQL {
			return true
		}
		if !eIsRef {
			continue
		}
		gRef, okRef := g.(*sqlparser.ColumnRef)
		if !okRef {
			continue
		}
		ei, ep, eerr := res.resolve(eRef)
		gi, gp, gerr := res.resolve(gRef)
		if eerr == nil && gerr == nil && ei == gi && ep == gp {
			return true
		}
	}
	return false
}

// vecAggEligible gates one aggregate expression for the typed-accumulator
// path, and reports whether its partial states merge exactly.
func vecAggEligible(a *sqlparser.AggregateExpr, res *resolver, stats []storage.TableStats, plan *Plan) (ok, exact bool) {
	if a.Arg == nil {
		return true, true // COUNT(*): the group row count
	}
	ref, isRef := a.Arg.(*sqlparser.ColumnRef)
	if !isRef || ref.Column == "*" {
		return false, false
	}
	in, pos, err := res.resolve(ref)
	if err != nil {
		return false, false
	}
	kind := attrKind(res.inputs[in], pos)
	at := &stats[in].Attrs[pos]
	switch a.Func {
	case sqlparser.AggCount:
		if a.Distinct {
			return bitsetDomainOK(kind, at), true
		}
		return true, true
	case sqlparser.AggMin, sqlparser.AggMax:
		switch kind {
		case value.Int, value.Float, value.Text, value.Date, value.Bool:
			return true, true
		}
		return false, false
	case sqlparser.AggSum, sqlparser.AggAvg:
		switch kind {
		case value.Int:
			if a.Distinct && !bitsetDomainOK(kind, at) {
				return false, false
			}
			if a.Func == sqlparser.AggSum {
				return true, true // int64 addition is associative
			}
			if a.Distinct {
				// AVG(DISTINCT) recomputes its float sum from the value set
				// in code order (not first-seen order), so it is eligible at
				// all only when that sum is exact.
				if !avgMergeExact(true, at, plan) {
					return false, false
				}
				return true, true
			}
			return true, avgMergeExact(false, at, plan)
		case value.Float:
			// Float sums replicate naive row-order accumulation, which a
			// partial-state merge would re-associate: serial only.
			return !a.Distinct, false
		}
		return false, false
	default:
		return false, false
	}
}

// bitsetDomainOK reports whether DISTINCT values of the attribute fit a
// bounded per-group bitset: text by dictionary size (the distinct count is a
// lower bound the engine re-verifies against the live dictionary), integers
// and dates by their min..max span.
func bitsetDomainOK(kind value.Kind, at *storage.AttrStats) bool {
	switch kind {
	case value.Text:
		return at.Distinct <= MaxBitsetDomain
	case value.Bool:
		return true
	case value.Int, value.Date:
		return intSpanOK(kind, at)
	default:
		return false
	}
}

// intSpanOK checks the min..max span fits the bitset domain and, for
// integers, that the bounds stay inside the float64-exact range (beyond it
// distinct int64 values can share one float image, which is how the naive
// pipeline's encoded keys identify them). Dates carry their payload as epoch
// days, which Value.Float rejects — read them through DateDays.
func intSpanOK(kind value.Kind, at *storage.AttrStats) bool {
	if at.Min.IsNull() {
		return true // empty column: nothing to track
	}
	if kind == value.Date {
		return at.Max.DateDays()-at.Min.DateDays() < MaxBitsetDomain
	}
	lo, hi := at.Min.Float(), at.Max.Float()
	if math.Abs(lo) >= exactFloat || math.Abs(hi) >= exactFloat {
		return false
	}
	return hi-lo < MaxBitsetDomain
}

// avgMergeExact reports whether AVG over an integer attribute merges
// partial float sums without rounding: the worst-case sum magnitude (joined
// row count × largest absolute value, or the distinct-domain width for
// DISTINCT) must stay below 2^53.
func avgMergeExact(distinct bool, at *storage.AttrStats, plan *Plan) bool {
	if at.Min.IsNull() {
		return true
	}
	maxAbs := math.Max(math.Abs(at.Min.Float()), math.Abs(at.Max.Float()))
	n := 1.0
	if distinct {
		n = MaxBitsetDomain
	} else {
		for _, st := range plan.Steps {
			n *= math.Max(float64(st.TableRows), 1)
		}
	}
	return n*maxAbs < exactFloat
}

// attrKind returns the stored value kind of an input's attribute.
func attrKind(in Input, pos int) value.Kind {
	return value.CatalogKind(in.Rel.Attributes[pos].Type)
}

// ---------------------------------------------------------------------------
// Vectorizable filter dialect (planner mirror of the engine's compileVecFilter)
// ---------------------------------------------------------------------------

// vecFilterEligible reports whether a self-filter conjunct of input `in`
// lowers to a vectorized predicate — one that reads the column vector
// directly and can never raise an error. The cases mirror the engine's
// compileVecFilter: col-op-literal comparisons (including LIKE on text),
// IS [NOT] NULL, BETWEEN with literal bounds, and IN over a literal list.
func vecFilterEligible(e sqlparser.Expr, in int, res *resolver, stats []storage.TableStats) bool {
	colKind := func(x sqlparser.Expr) (value.Kind, bool) {
		ref, ok := x.(*sqlparser.ColumnRef)
		if !ok || ref.Column == "*" {
			return value.Null, false
		}
		ri, rp, err := res.resolve(ref)
		if err != nil || ri != in {
			return value.Null, false
		}
		return attrKind(res.inputs[ri], rp), true
	}
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		op := x.Op
		if _, _, ok := cmpOpClass(op); !ok && op != sqlparser.OpLike {
			return false
		}
		ck, lit, flipped, ok := splitKindLit(x, colKind)
		if !ok {
			return false
		}
		if op == sqlparser.OpLike {
			// Only col LIKE pattern vectorizes, with both sides text.
			return !flipped && ck == value.Text && lit.Kind() == value.Text
		}
		if lit.IsNull() {
			return true // always-false predicate, trivially vectorized
		}
		if !kindsComparable(ck, lit.Kind()) {
			// Equality across mismatched kinds is a constant verdict;
			// ordering raises an error the generic path must surface.
			_, equality, _ := cmpOpClass(op)
			return equality
		}
		return true
	case *sqlparser.IsNullExpr:
		_, ok := colKind(x.Inner)
		return ok
	case *sqlparser.BetweenExpr:
		ck, ok := colKind(x.Subject)
		if !ok {
			return false
		}
		lo, okLo := litValue(x.Lo)
		hi, okHi := litValue(x.Hi)
		if !okLo || !okHi {
			return false
		}
		if lo.IsNull() || hi.IsNull() {
			return true
		}
		return kindsComparable(ck, lo.Kind()) && kindsComparable(ck, hi.Kind())
	case *sqlparser.InExpr:
		if x.Subquery != nil {
			return false
		}
		if _, ok := colKind(x.Subject); !ok {
			return false
		}
		for _, it := range x.List {
			if _, ok := litValue(it); !ok {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// cmpOpClass classifies a binary operator as a comparison and whether it is
// an equality (mirrors the engine's cmpTest).
func cmpOpClass(op sqlparser.BinaryOp) (isCmp, equality, ok bool) {
	switch op {
	case sqlparser.OpEq, sqlparser.OpNe:
		return true, true, true
	case sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		return true, false, true
	default:
		return false, false, false
	}
}

// kindsComparable mirrors the engine's comparableKinds: numerics order
// against each other, other kinds only against themselves.
func kindsComparable(ck, lk value.Kind) bool {
	if (ck == value.Int || ck == value.Float) && (lk == value.Int || lk == value.Float) {
		return true
	}
	return ck == lk && ck != value.Null
}

func litValue(e sqlparser.Expr) (value.Value, bool) {
	l, ok := e.(*sqlparser.Literal)
	if !ok {
		return value.Value{}, false
	}
	return l.Value, true
}

// splitKindLit matches col-op-lit in either orientation, returning the
// column kind, literal, and whether the literal sat on the left.
func splitKindLit(x *sqlparser.BinaryExpr, colKind func(sqlparser.Expr) (value.Kind, bool)) (value.Kind, value.Value, bool, bool) {
	if ck, ok := colKind(x.Left); ok {
		if lit, ok := litValue(x.Right); ok {
			return ck, lit, false, true
		}
		return value.Null, value.Value{}, false, false
	}
	if lit, ok := litValue(x.Left); ok {
		if ck, ok := colKind(x.Right); ok {
			return ck, lit, true, true
		}
	}
	return value.Null, value.Value{}, false, false
}
