package planner

import (
	"fmt"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/sqlparser"
)

// StepSummary is the externally consumable description of one plan step.
type StepSummary struct {
	Alias    string   `json:"alias"`
	Relation string   `json:"relation"`
	Access   string   `json:"access"`
	Index    string   `json:"index,omitempty"`
	JoinKey  string   `json:"join_key,omitempty"`
	Filters  []string `json:"filters,omitempty"`
	// TableRows is the relation cardinality at plan time; EstRows the
	// estimated cumulative output after this step; ActualRows the observed
	// count (-1 when the plan has not executed).
	TableRows  int     `json:"table_rows"`
	EstRows    float64 `json:"estimated_rows"`
	EstCost    float64 `json:"cost"`
	ActualRows int     `json:"actual_rows"`
}

// ShapeSummary is the externally consumable description of one post-join
// shaping stage (aggregate, sort, top-k, limit).
type ShapeSummary struct {
	Kind string `json:"kind"`
	// Detail renders the stage's keys: group-by columns and aggregates, sort
	// keys, or the row bound.
	Detail     string  `json:"detail,omitempty"`
	K          int     `json:"k,omitempty"`
	EstRows    float64 `json:"estimated_rows"`
	ActualRows int     `json:"actual_rows"`
}

// Summary is the structured plan the serving layer exposes: the
// gh-star-search Plan shape (estimated rows/cost, indexes used,
// optimization tips) grown onto this engine.
type Summary struct {
	Fingerprint string        `json:"fingerprint"`
	Fallback    bool          `json:"fallback,omitempty"`
	Reason      string        `json:"reason,omitempty"`
	EstRows     float64       `json:"estimated_rows"`
	EstCost     float64       `json:"estimated_cost"`
	ActualRows  int           `json:"actual_rows"`
	IndexesUsed []string      `json:"indexes_used,omitempty"`
	Steps       []StepSummary `json:"steps,omitempty"`
	// Shape lists the post-join shaping stages in execution order.
	Shape []ShapeSummary `json:"shape,omitempty"`
	// Residual lists predicates evaluated after all joins (subqueries,
	// outer correlations).
	Residual []string `json:"residual,omitempty"`
	// Tips suggests ways to make the query cheaper.
	Tips []string `json:"optimization_tips,omitempty"`
}

// Summarize snapshots the plan (including any actual row counts already
// observed) into an immutable Summary.
func (p *Plan) Summarize() *Summary {
	s := &Summary{
		Fingerprint: p.Fingerprint(),
		Fallback:    p.Fallback,
		Reason:      p.Reason,
		EstRows:     p.EstRows,
		EstCost:     p.EstCost,
		ActualRows:  p.ActualRows,
		Tips:        p.Tips(),
	}
	for _, st := range p.Steps {
		ss := StepSummary{
			Alias:      st.Input.Alias,
			Relation:   st.Input.Rel.Name,
			Access:     st.Access.String(),
			Index:      st.IndexName,
			JoinKey:    st.JoinDesc,
			TableRows:  st.TableRows,
			EstRows:    st.EstRows,
			EstCost:    st.EstCost,
			ActualRows: st.ActualRows,
		}
		if st.Access == ScanPK || st.Access == ScanIndex {
			ss.JoinKey = "" // key probes are literal, not join-driven
		}
		for _, f := range st.SelfFilters {
			ss.Filters = append(ss.Filters, f.SQL())
		}
		for _, f := range st.PostJoinFilters {
			ss.Filters = append(ss.Filters, f.SQL())
		}
		if st.IndexName != "" {
			s.IndexesUsed = append(s.IndexesUsed, st.Input.Rel.Name+"."+st.IndexName)
		}
		if st.Access == ScanPK || st.Access == JoinPK {
			s.IndexesUsed = append(s.IndexesUsed, st.Input.Rel.Name+".<primary key>")
		}
		s.Steps = append(s.Steps, ss)
	}
	for _, e := range p.Post {
		s.Residual = append(s.Residual, e.SQL())
	}
	for _, sh := range p.Shape {
		s.Shape = append(s.Shape, ShapeSummary{
			Kind:       sh.Kind.String(),
			Detail:     sh.Detail(),
			K:          sh.K,
			EstRows:    sh.EstRows,
			ActualRows: sh.ActualRows,
		})
	}
	return s
}

// Detail renders the stage's keys the way explains print them.
func (sh *ShapeStep) Detail() string {
	switch sh.Kind {
	case ShapeParallelScan:
		return fmt.Sprintf("morsels of %d rows", sh.K)
	case ShapeZoneSkip:
		return fmt.Sprintf("zone maps over %d morsels of %d rows", sh.K, MorselRows)
	case ShapeAggregate, ShapeVecAggregate:
		var parts []string
		if len(sh.GroupBy) > 0 {
			parts = append(parts, "group by "+strings.Join(sh.GroupBy, ", "))
		}
		if len(sh.Aggregates) > 0 {
			parts = append(parts, strings.Join(sh.Aggregates, ", "))
		}
		if sh.Having != "" {
			parts = append(parts, "having "+sh.Having)
		}
		return strings.Join(parts, "; ")
	case ShapeSort:
		return "by " + strings.Join(sh.Keys, ", ")
	case ShapeTopK:
		return fmt.Sprintf("by %s, keeping %d", strings.Join(sh.Keys, ", "), sh.K)
	case ShapeLimit:
		return fmt.Sprintf("first %d", sh.K)
	default:
		return ""
	}
}

// tipScanThreshold is the table size above which an unindexed selective
// filter earns an index suggestion.
const tipScanThreshold = 1000

// Tips derives optimization suggestions from the plan: missing indexes on
// selective scan filters and hash-join keys, cartesian products, and
// per-row residual subqueries — the §3.1 "why is this query expensive"
// feedback in actionable form.
func (p *Plan) Tips() []string {
	if p.Fallback {
		return nil
	}
	var tips []string
	for _, st := range p.Steps {
		switch st.Access {
		case ScanFull:
			if st.TableRows < tipScanThreshold {
				continue
			}
			if attr, ok := indexableEqFilter(st); ok {
				tips = append(tips, fmt.Sprintf(
					"an index on %s(%s) would turn the full scan of %s rows into a probe",
					st.Input.Rel.Name, attr, lexicon.NumberWord(st.TableRows)))
			}
		case JoinHash:
			if st.TableRows >= tipScanThreshold {
				attr := st.Input.Rel.Attributes[st.BuildPos].Name
				tips = append(tips, fmt.Sprintf(
					"an index on %s(%s) would let the join probe instead of hashing %s rows",
					st.Input.Rel.Name, attr, lexicon.NumberWord(st.TableRows)))
			}
		case JoinLoop:
			tips = append(tips, fmt.Sprintf(
				"%s joins without an equality condition (a cross product); adding one would shrink the intermediate result",
				st.Input.Alias))
		}
	}
	if len(p.Post) > 0 {
		tips = append(tips, fmt.Sprintf(
			"%s evaluated per row after all joins; rewriting subqueries as joins can help",
			lexicon.CountNoun(len(p.Post), "residual predicate")))
	}
	return tips
}

// indexableEqFilter finds an equality-with-literal filter attribute on a
// scan step — the classic candidate for a secondary index.
func indexableEqFilter(st *Step) (string, bool) {
	for _, group := range [][]sqlparser.Expr{st.SelfFilters, st.PostJoinFilters} {
		if attr, ok := indexableEqIn(group, st); ok {
			return attr, ok
		}
	}
	return "", false
}

func indexableEqIn(filters []sqlparser.Expr, st *Step) (string, bool) {
	for _, f := range filters {
		b, ok := f.(*sqlparser.BinaryExpr)
		if !ok || b.Op != sqlparser.OpEq {
			continue
		}
		var col *sqlparser.ColumnRef
		if c, ok := b.Left.(*sqlparser.ColumnRef); ok {
			if _, lit := literalOf(b.Right); lit {
				col = c
			}
		} else if c, ok := b.Right.(*sqlparser.ColumnRef); ok {
			if _, lit := literalOf(b.Left); lit {
				col = c
			}
		}
		if col != nil && st.Input.Rel.AttrIndex(col.Column) >= 0 {
			return st.Input.Rel.Attr(col.Column).Name, true
		}
	}
	return "", false
}
