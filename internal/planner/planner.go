// Package planner chooses how SELECT statements execute: it classifies WHERE
// conjuncts, estimates selectivities and join cardinalities from the
// incrementally maintained storage statistics, orders inner joins greedily by
// estimated output size, and picks an access path per step — full scan,
// primary-key probe, secondary-index probe, hash join, primary-key join, or
// index-nested-loop join. The paper's §3.1 motivates feedback about *why* a
// query is expensive; the Plan produced here is both the engine's execution
// recipe and the artifact EXPLAIN PLAN narrates back to the user.
//
// The planner resolves every column reference to a (step, attribute) slot at
// plan time: the engine executes plans over flat slot-addressed rows, so the
// join inner loop does no map or string-key work. Anything outside the
// planner's dialect — outer joins, view references, ambiguous unqualified
// columns — yields a Plan with Fallback set, and the engine runs its
// environment-based pipeline instead.
package planner

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Input is one FROM entry, in clause order, handed over by the engine.
type Input struct {
	Alias string
	Rel   *catalog.Relation
	Tbl   *storage.Table
}

// Access enumerates the access paths a step can use.
type Access int

// Access paths: the Scan* kinds produce the first row set, the Join* kinds
// extend every current row with matches from a new table.
const (
	ScanFull Access = iota
	ScanPK
	ScanIndex
	JoinHash
	JoinPK
	JoinIndex
	JoinLoop
)

// String names the access path the way explains render it.
func (a Access) String() string {
	switch a {
	case ScanFull:
		return "full scan"
	case ScanPK:
		return "primary-key probe"
	case ScanIndex:
		return "index probe"
	case JoinHash:
		return "hash join"
	case JoinPK:
		return "primary-key join"
	case JoinIndex:
		return "index join"
	case JoinLoop:
		return "nested loop"
	default:
		return fmt.Sprintf("access(%d)", int(a))
	}
}

// Step is one stage of the execution pipeline.
type Step struct {
	Input Input
	// FromPos is the entry's position in the original FROM clause; slot
	// offsets are laid out in FROM order so they do not depend on join order.
	FromPos int
	// Offset is the absolute slot of this step's first attribute in the flat
	// row layout.
	Offset int
	Access Access
	// IndexName names the secondary index (ScanIndex / JoinIndex).
	IndexName string
	// KeyValues are the literal probe values for ScanPK / ScanIndex, aligned
	// with the key positions of the primary key / index.
	KeyValues []value.Value
	// BuildPos / ProbeSlot drive JoinHash: build a hash table over this
	// relation's attribute BuildPos, probe it with the current row's absolute
	// slot ProbeSlot.
	BuildPos  int
	ProbeSlot int
	// ProbeSlots drive JoinPK / JoinIndex: absolute slots supplying the key
	// values, aligned with the pk/index key positions.
	ProbeSlots []int
	// JoinDesc renders the consumed join equalities ("c.mid = m.id").
	JoinDesc string
	// SelfFilters are pushed-down conjuncts touching only this step's
	// relation; the engine may apply them before the join (hash build /
	// inner-loop prefilter). PostJoinFilters also reference earlier steps and
	// run once the joined candidate row exists. Both keep WHERE-clause order.
	SelfFilters     []sqlparser.Expr
	PostJoinFilters []sqlparser.Expr
	// TableRows is the relation's cardinality at plan time.
	TableRows int
	// EstRows estimates the cumulative row count after this step; EstCost is
	// the step's own cost in scanned-tuple units.
	EstRows float64
	EstCost float64
	// ActualRows is filled in by the engine during execution (-1 before).
	ActualRows int

	// consumedConjs is planning scratch: the conjuncts this step's access
	// path folded in, flagged by markConsumed once the step wins.
	consumedConjs []*conjunct
}

// ShapeKind enumerates the result-shaping steps that run after the join
// pipeline: grouping with aggregation, sorting, bounded top-K selection, and
// plain limiting.
type ShapeKind int

// Shaping step kinds, in the order they can appear in a plan.
// ShapeParallelScan and ShapeVecAggregate are the vectorized-aggregation
// pair: a parallel-scan step marks the base scan as morsel-driven (fixed-size
// position ranges claimed by workers from a shared cursor), and a
// vec-aggregate step replaces the generic aggregate when every group key and
// aggregate argument reads a typed column vector directly, so the engine
// accumulates into unboxed typed arrays instead of hashing boxed rows.
const (
	ShapeAggregate ShapeKind = iota
	ShapeSort
	ShapeTopK
	ShapeLimit
	ShapeVecAggregate
	ShapeParallelScan
	// ShapeZoneSkip marks the base scan as zone-map pruned: before touching a
	// morsel's column payloads, the engine probes the per-morsel min/max/null
	// summaries against the scan's filters and skips morsels the bounds prove
	// all-false. K is the morsel count; ActualRows records how many were
	// skipped.
	ShapeZoneSkip
)

// String names the shape kind the way explains render it.
func (k ShapeKind) String() string {
	switch k {
	case ShapeAggregate:
		return "aggregate"
	case ShapeSort:
		return "sort"
	case ShapeTopK:
		return "top-k"
	case ShapeLimit:
		return "limit"
	case ShapeVecAggregate:
		return "vec-aggregate"
	case ShapeParallelScan:
		return "parallel-scan"
	case ShapeZoneSkip:
		return "zone-skip"
	default:
		return fmt.Sprintf("shape(%d)", int(k))
	}
}

// ShapeStep is one post-join shaping stage. The engine compiles group keys,
// aggregate accumulators, and sort keys to slot readers over the flat rows;
// the planner records what the stage does and how many rows it should emit.
type ShapeStep struct {
	Kind ShapeKind
	// GroupBy / Aggregates / Having describe an aggregate step.
	GroupBy    []string
	Aggregates []string
	Having     string
	// Keys are the ORDER BY expressions (with direction) of a sort/top-k step.
	Keys []string
	// K is the row bound of a top-k or limit step.
	K int
	// EstRows estimates the step's output cardinality (group counts come from
	// per-attribute distinct statistics).
	EstRows float64
	// ActualRows is filled in by the engine during execution (-1 before).
	ActualRows int
}

// Plan is the chosen execution strategy for one SELECT.
type Plan struct {
	Steps []*Step
	// Post holds residual conjuncts evaluated after all joins: subquery
	// predicates, outer-scope correlations, and anything unresolvable at
	// plan time. They run through the engine's environment bridge.
	Post []sqlparser.Expr
	// Shape lists the post-join shaping stages (aggregate, sort, top-k,
	// limit) in execution order; empty for plain select-project-join.
	Shape []*ShapeStep
	// Width is the total slot count of the flat row layout.
	Width int
	// Reordered reports that step order differs from FROM order, in which
	// case the engine restores FROM-major row order after the pipeline so
	// planned and naive execution are row-for-row identical.
	Reordered bool
	EstRows   float64
	EstCost   float64
	// ActualRows is the final row count after Post filters (-1 before
	// execution).
	ActualRows int
	// Fallback marks a query outside the planner's dialect; Reason says why.
	Fallback bool
	Reason   string
}

// Fingerprint is a compact stable description of the plan shape, used by the
// serving layer to record which plan produced a cached response.
func (p *Plan) Fingerprint() string {
	if p.Fallback {
		return "naive(" + p.Reason + ")"
	}
	var b strings.Builder
	for i, st := range p.Steps {
		if i > 0 {
			b.WriteByte('>')
		}
		fmt.Fprintf(&b, "%s:%s", st.Input.Alias, st.Access)
		if st.IndexName != "" {
			b.WriteByte('[')
			b.WriteString(st.IndexName)
			b.WriteByte(']')
		}
		if len(st.SelfFilters)+len(st.PostJoinFilters) > 0 {
			fmt.Fprintf(&b, "{%d}", len(st.SelfFilters)+len(st.PostJoinFilters))
		}
	}
	if len(p.Post) > 0 {
		fmt.Fprintf(&b, ">post{%d}", len(p.Post))
	}
	for _, sh := range p.Shape {
		switch sh.Kind {
		case ShapeAggregate:
			fmt.Fprintf(&b, ">agg{%d,%d}", len(sh.GroupBy), len(sh.Aggregates))
			if sh.Having != "" {
				b.WriteString("+having")
			}
		case ShapeVecAggregate:
			fmt.Fprintf(&b, ">vagg{%d,%d}", len(sh.GroupBy), len(sh.Aggregates))
			if sh.Having != "" {
				b.WriteString("+having")
			}
		case ShapeParallelScan:
			b.WriteString(">pscan")
		case ShapeZoneSkip:
			b.WriteString(">zskip")
		case ShapeSort:
			fmt.Fprintf(&b, ">sort{%d}", len(sh.Keys))
		case ShapeTopK:
			fmt.Fprintf(&b, ">topk{%d,%d}", len(sh.Keys), sh.K)
		case ShapeLimit:
			fmt.Fprintf(&b, ">limit{%d}", sh.K)
		}
	}
	return b.String()
}

// NewFallback builds a Fallback plan for a query outside the planner's
// dialect; the engine uses it to report why it ran the naive pipeline.
func NewFallback(reason string) *Plan {
	return &Plan{Fallback: true, Reason: reason, ActualRows: -1}
}

// fallback is the package-internal alias.
func fallback(reason string) *Plan { return NewFallback(reason) }

// ---------------------------------------------------------------------------
// Conjunct analysis
// ---------------------------------------------------------------------------

// conjunct is one analyzed WHERE/ON conjunct.
type conjunct struct {
	expr sqlparser.Expr
	// inputs is the set of FROM entries referenced (by index).
	inputs map[int]bool
	// post marks conjuncts deferred to the residual phase: subqueries and
	// references the planner cannot resolve locally (outer correlation).
	post bool
	// consumed marks join equalities folded into an access path.
	consumed bool
	// eq is set for `colref = colref` conjuncts linking two distinct inputs.
	eq *joinEdge
}

// joinEdge is an equality between attributes of two FROM entries.
type joinEdge struct {
	a, b       int // input indices
	aPos, bPos int // attribute positions
	aRef, bRef *sqlparser.ColumnRef
}

// resolver maps column references to FROM entries, mirroring the engine's
// environment lookup (alias or relation name, case-insensitive; unqualified
// names must be unique across the clause).
type resolver struct {
	inputs  []Input
	offsets []int
}

// errAmbiguous, errUnresolved, and errBadAttr classify resolution failures:
// ambiguity forces fallback; an unresolved name may be an outer-scope
// correlation (legal in subqueries); a matched table with a missing
// attribute is a guaranteed runtime error in the naive pipeline and must
// keep erroring, so it forces fallback too.
var (
	errAmbiguous  = fmt.Errorf("ambiguous column reference")
	errUnresolved = fmt.Errorf("unresolved column reference")
	errBadAttr    = fmt.Errorf("unknown attribute on a matched relation")
)

// resolve returns the (input index, attribute position) of a reference.
func (r *resolver) resolve(c *sqlparser.ColumnRef) (int, int, error) {
	if c.Table != "" {
		match := -1
		for i := range r.inputs {
			in := &r.inputs[i]
			if strings.EqualFold(in.Alias, c.Table) || strings.EqualFold(in.Rel.Name, c.Table) {
				if match >= 0 {
					return 0, 0, errAmbiguous
				}
				match = i
			}
		}
		if match < 0 {
			return 0, 0, errUnresolved // possibly an outer-scope correlation
		}
		pos := r.inputs[match].Rel.AttrIndex(c.Column)
		if pos < 0 {
			return 0, 0, errBadAttr
		}
		return match, pos, nil
	}
	match, pos := -1, -1
	for i := range r.inputs {
		if p := r.inputs[i].Rel.AttrIndex(c.Column); p >= 0 {
			if match >= 0 {
				return 0, 0, errAmbiguous
			}
			match, pos = i, p
		}
	}
	if match < 0 {
		return 0, 0, errUnresolved
	}
	return match, pos, nil
}

// slot converts an (input, attribute position) pair to an absolute slot.
func (r *resolver) slot(input, pos int) int { return r.offsets[input] + pos }

// HasSubquery reports whether the expression contains a nested SELECT (the
// engine's ON-clause plannability check shares it).
func HasSubquery(e sqlparser.Expr) bool { return hasSubquery(e) }

// hasSubquery reports whether the expression contains a nested SELECT.
func hasSubquery(e sqlparser.Expr) bool {
	found := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		switch s := x.(type) {
		case *sqlparser.InExpr:
			if s.Subquery != nil {
				found = true
				return false
			}
		case *sqlparser.ExistsExpr, *sqlparser.QuantifiedExpr, *sqlparser.SubqueryExpr:
			found = true
			return false
		}
		return true
	})
	return found
}

// analyze classifies one conjunct. A non-nil error forces whole-plan
// fallback: ambiguous references, attributes missing on a matched relation
// (a guaranteed naive-pipeline runtime error that deferral could swallow),
// and names that resolve nowhere when no outer scope exists to supply them.
func analyze(e sqlparser.Expr, res *resolver, hasOuter bool) (*conjunct, error) {
	c := &conjunct{expr: e, inputs: map[int]bool{}}
	if hasSubquery(e) {
		c.post = true
		return c, nil
	}
	for _, ref := range sqlparser.ColumnRefs(e) {
		in, _, err := res.resolve(ref)
		switch err {
		case nil:
			c.inputs[in] = true
		case errUnresolved:
			if !hasOuter {
				return nil, errUnresolved
			}
			c.post = true // outer correlation: defer to the residual phase
		default: // errAmbiguous, errBadAttr
			return nil, err
		}
	}
	if c.post {
		return c, nil
	}
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == sqlparser.OpEq {
		l, lok := b.Left.(*sqlparser.ColumnRef)
		r, rok := b.Right.(*sqlparser.ColumnRef)
		if lok && rok {
			li, lp, lerr := res.resolve(l)
			ri, rp, rerr := res.resolve(r)
			if lerr == nil && rerr == nil && li != ri {
				c.eq = &joinEdge{a: li, b: ri, aPos: lp, bPos: rp, aRef: l, bRef: r}
			}
		}
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Selectivity estimation
// ---------------------------------------------------------------------------

const (
	defaultSelectivity = 1.0 / 3
	rangeSelectivity   = 1.0 / 3
	likeSelectivity    = 1.0 / 4
	betweenSelectivity = 1.0 / 4
)

// literalOf returns the value of a literal expression, or ok=false.
func literalOf(e sqlparser.Expr) (value.Value, bool) {
	l, ok := e.(*sqlparser.Literal)
	if !ok {
		return value.Value{}, false
	}
	return l.Value, true
}

// selectivity estimates the fraction of input-`in` rows a single-table
// conjunct keeps, given the table's statistics.
func selectivity(e sqlparser.Expr, in int, res *resolver, st *storage.TableStats) float64 {
	rows := float64(st.Rows)
	if rows == 0 {
		return 1
	}
	attrOf := func(x sqlparser.Expr) (int, bool) {
		c, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return 0, false
		}
		i, p, err := res.resolve(c)
		if err != nil || i != in {
			return 0, false
		}
		return p, true
	}
	distinctOf := func(pos int) float64 {
		d := float64(st.Attrs[pos].Distinct)
		if d < 1 {
			d = 1
		}
		return d
	}
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		pos, lit, colLeft, ok := splitColLit(x, attrOf)
		if !ok {
			return defaultSelectivity
		}
		op := x.Op
		if !colLeft {
			op = op.Inverse() // 5 < col  ⇔  col > 5
		}
		switch op {
		case sqlparser.OpEq:
			return 1 / distinctOf(pos)
		case sqlparser.OpNe:
			return 1 - 1/distinctOf(pos)
		case sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			return rangeFraction(op, &st.Attrs[pos], lit)
		case sqlparser.OpLike:
			return likeSelectivity
		}
		return defaultSelectivity
	case *sqlparser.BetweenExpr:
		return betweenSelectivity
	case *sqlparser.IsNullExpr:
		pos, ok := attrOf(x.Inner)
		if !ok {
			return defaultSelectivity
		}
		nullFrac := (rows - float64(st.Attrs[pos].NonNull)) / rows
		if x.Negate {
			return 1 - nullFrac
		}
		return nullFrac
	case *sqlparser.InExpr:
		pos, ok := attrOf(x.Subject)
		if !ok || len(x.List) == 0 {
			return defaultSelectivity
		}
		s := float64(len(x.List)) / distinctOf(pos)
		if s > 1 {
			s = 1
		}
		return s
	}
	return defaultSelectivity
}

// splitColLit decomposes `col op literal` / `literal op col` into the column
// position, the literal, and whether the column sits on the left.
func splitColLit(x *sqlparser.BinaryExpr, attrOf func(sqlparser.Expr) (int, bool)) (int, value.Value, bool, bool) {
	if pos, ok := attrOf(x.Left); ok {
		if lit, ok := literalOf(x.Right); ok {
			return pos, lit, true, true
		}
	}
	if pos, ok := attrOf(x.Right); ok {
		if lit, ok := literalOf(x.Left); ok {
			return pos, lit, false, true
		}
	}
	return 0, value.Value{}, false, false
}

// rangeFraction interpolates a comparison's selectivity from min/max bounds
// when the attribute and literal are numeric; otherwise a fixed fraction.
// The operator is normalized to column-on-the-left orientation.
func rangeFraction(op sqlparser.BinaryOp, a *storage.AttrStats, lit value.Value) float64 {
	if a.Min.IsNull() || !a.Min.IsNumeric() || !lit.IsNumeric() {
		return rangeSelectivity
	}
	lo, hi, v := a.Min.Float(), a.Max.Float(), lit.Float()
	if hi <= lo {
		return rangeSelectivity
	}
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch op {
	case sqlparser.OpLt, sqlparser.OpLe:
		return clampSel(frac)
	case sqlparser.OpGt, sqlparser.OpGe:
		return clampSel(1 - frac)
	}
	return rangeSelectivity
}

func clampSel(s float64) float64 {
	if s < 0.001 {
		return 0.001
	}
	if s > 1 {
		return 1
	}
	return s
}
