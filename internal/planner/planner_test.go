package planner_test

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// buildPlan flattens a simple comma-FROM SELECT the way the engine does and
// plans it.
func buildPlan(t *testing.T, db *storage.Database, sql string) *planner.Plan {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	var inputs []planner.Input
	var ons []sqlparser.Expr
	var add func(ref *sqlparser.TableRef)
	add = func(ref *sqlparser.TableRef) {
		tbl := db.Table(ref.Relation)
		if tbl == nil {
			t.Fatalf("unknown relation %q", ref.Relation)
		}
		inputs = append(inputs, planner.Input{Alias: ref.Name(), Rel: tbl.Relation(), Tbl: tbl})
		if ref.Join != nil {
			if ref.Join.On != nil {
				ons = append(ons, sqlparser.Conjuncts(ref.Join.On)...)
			}
			add(ref.Join.Right)
		}
	}
	for _, ref := range sel.From {
		add(ref)
	}
	p := planner.Build(sel, inputs, ons, false)
	if p == nil {
		t.Fatal("nil plan")
	}
	return p
}

func genDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 7, Movies: 2000, Actors: 500, Directors: 21, CastPerMovie: 2, GenresPerMovie: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestPlanOrdersBySelectivity: the selective CAST filter must be scanned
// first and MOVIES joined via its primary key, even though MOVIES comes
// first in the FROM clause.
func TestPlanOrdersBySelectivity(t *testing.T) {
	p := buildPlan(t, genDB(t),
		`select m.title from MOVIES m, CAST c where m.id = c.mid and c.role = 'Role 7-19'`)
	if p.Fallback {
		t.Fatalf("fallback: %s", p.Reason)
	}
	if got := p.Steps[0].Input.Alias; got != "c" {
		t.Fatalf("first step = %s, want the filtered CAST scan", got)
	}
	if p.Steps[0].Access != planner.ScanFull {
		t.Fatalf("first access = %s", p.Steps[0].Access)
	}
	if p.Steps[1].Access != planner.JoinPK {
		t.Fatalf("second access = %s, want primary-key join", p.Steps[1].Access)
	}
	if !p.Reordered {
		t.Fatal("plan should report reordering")
	}
	if p.Steps[0].EstRows > 10 {
		t.Fatalf("selective equality estimated %f rows", p.Steps[0].EstRows)
	}
}

// TestPlanPicksIndexProbe: an equality filter covered by a secondary index
// becomes an index probe instead of a full scan.
func TestPlanPicksIndexProbe(t *testing.T) {
	db := genDB(t)
	if err := db.Table("MOVIES").CreateIndex("ix_movies_title", "title"); err != nil {
		t.Fatal(err)
	}
	p := buildPlan(t, db, `select m.year from MOVIES m where m.title = 'Movie 42'`)
	if p.Fallback {
		t.Fatalf("fallback: %s", p.Reason)
	}
	st := p.Steps[0]
	if st.Access != planner.ScanIndex || st.IndexName != "ix_movies_title" {
		t.Fatalf("access = %s index %q, want index probe via ix_movies_title", st.Access, st.IndexName)
	}
}

// TestPlanPicksPKProbe: literal equality on the whole primary key becomes a
// point probe.
func TestPlanPicksPKProbe(t *testing.T) {
	p := buildPlan(t, genDB(t), `select m.title from MOVIES m where m.id = 77`)
	if p.Steps[0].Access != planner.ScanPK {
		t.Fatalf("access = %s, want primary-key probe", p.Steps[0].Access)
	}
	if p.EstRows > 1 {
		t.Fatalf("estimated %f rows for a pk probe", p.EstRows)
	}
}

// TestPlanPicksIndexJoin: with an index on the join column and a tiny probe
// side, the planner prefers index nested loops over hashing the big table.
func TestPlanPicksIndexJoin(t *testing.T) {
	db := genDB(t)
	if err := db.Table("CAST").CreateIndex("ix_cast_mid", "mid"); err != nil {
		t.Fatal(err)
	}
	p := buildPlan(t, db,
		`select c.role from MOVIES m, CAST c where m.id = c.mid and m.id = 5`)
	if p.Fallback {
		t.Fatalf("fallback: %s", p.Reason)
	}
	if p.Steps[0].Access != planner.ScanPK {
		t.Fatalf("first access = %s", p.Steps[0].Access)
	}
	st := p.Steps[1]
	if st.Access != planner.JoinIndex || st.IndexName != "ix_cast_mid" {
		t.Fatalf("join access = %s index %q, want index join via ix_cast_mid", st.Access, st.IndexName)
	}
}

// TestPlanSubqueryGoesResidual: subquery predicates defer to the residual
// phase and surface in the summary.
func TestPlanSubqueryGoesResidual(t *testing.T) {
	p := buildPlan(t, genDB(t),
		`select m.title from MOVIES m where m.id in (select c.mid from CAST c) and m.year > 1960`)
	if p.Fallback {
		t.Fatalf("fallback: %s", p.Reason)
	}
	if len(p.Post) != 1 {
		t.Fatalf("residual count = %d, want the IN subquery", len(p.Post))
	}
	s := p.Summarize()
	if len(s.Residual) != 1 || !strings.Contains(s.Residual[0], "IN") {
		t.Fatalf("summary residual = %v", s.Residual)
	}
}

// TestPlanFallbacks: constructs outside the dialect are reported, not
// mis-planned.
func TestPlanFallbacks(t *testing.T) {
	db := genDB(t)
	// Ambiguous unqualified column: both MOVIES and CAST have "mid"? No —
	// use id, present in MOVIES and ACTOR.
	sel, err := sqlparser.ParseSelect(`select title from MOVIES m, ACTOR a where id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	m, a := db.Table("MOVIES"), db.Table("ACTOR")
	p := planner.Build(sel, []planner.Input{
		{Alias: "m", Rel: m.Relation(), Tbl: m},
		{Alias: "a", Rel: a.Relation(), Tbl: a},
	}, nil, false)
	if !p.Fallback {
		t.Fatalf("ambiguous unqualified reference should fall back, got %s", p.Fingerprint())
	}
}

// TestPlanFingerprintStable: same query, same statistics, same fingerprint.
func TestPlanFingerprintStable(t *testing.T) {
	db := genDB(t)
	sql := `select m.title from MOVIES m, CAST c where m.id = c.mid and c.role = 'Role 7-19'`
	a := buildPlan(t, db, sql).Fingerprint()
	b := buildPlan(t, db, sql).Fingerprint()
	if a != b || a == "" {
		t.Fatalf("fingerprints differ: %q vs %q", a, b)
	}
}

// TestPlanTips: a big unindexed equality scan earns an index suggestion.
func TestPlanTips(t *testing.T) {
	p := buildPlan(t, genDB(t), `select c.aid from CAST c where c.role = 'Role 7-19'`)
	tips := p.Tips()
	found := false
	for _, tip := range tips {
		if strings.Contains(tip, "index on CAST(role)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want an index-on-CAST(role) tip, got %v", tips)
	}
}

// TestPlanEstimatesRangeFilter: range estimates interpolate between min and
// max rather than using the flat default.
func TestPlanEstimatesRangeFilter(t *testing.T) {
	db := genDB(t)
	// Generated years are uniform in [1950, 2009]; year > 2003 keeps ~10%.
	p := buildPlan(t, db, `select m.title from MOVIES m where m.year > 2003`)
	est := p.Steps[0].EstRows
	rows := float64(db.Table("MOVIES").Len())
	if est < rows*0.02 || est > rows*0.3 {
		t.Fatalf("range estimate %f of %f rows; want roughly 10%%", est, rows)
	}
}

// TestPlanShapeSteps: grouped/ordered queries carry shape steps with
// distinct-statistics group estimates, and the fingerprint reflects them.
func TestPlanShapeSteps(t *testing.T) {
	db := genDB(t)
	p := buildPlan(t, db,
		`select g.genre, count(*) from MOVIES m, GENRE g
		 where m.id = g.mid group by g.genre having count(*) > 1
		 order by count(*) desc limit 5`)
	if len(p.Shape) != 2 {
		t.Fatalf("shape steps = %d, want aggregate + top-k", len(p.Shape))
	}
	agg, topk := p.Shape[0], p.Shape[1]
	// The grouped query fits the vectorized-aggregation dialect (column
	// group key, COUNT(*), compiled HAVING), so the aggregate step upgrades.
	if agg.Kind != planner.ShapeVecAggregate {
		t.Fatalf("first shape step = %s", agg.Kind)
	}
	genres := float64(db.Table("GENRE").Stats().Attrs[1].Distinct)
	// With HAVING the estimate is the distinct-count product scaled by the
	// default selectivity.
	if agg.EstRows <= 0 || agg.EstRows > genres {
		t.Errorf("aggregate estimate %.2f not in (0, %v] derived from DistinctCount", agg.EstRows, genres)
	}
	if agg.Having == "" || len(agg.GroupBy) != 1 || len(agg.Aggregates) != 1 {
		t.Errorf("aggregate step detail incomplete: %+v", agg)
	}
	if topk.Kind != planner.ShapeTopK || topk.K != 5 || topk.EstRows > 5 {
		t.Errorf("top-k step = %+v", topk)
	}
	fp := p.Fingerprint()
	for _, want := range []string{">vagg{1,1}+having", ">topk{1,5}"} {
		if !strings.Contains(fp, want) {
			t.Errorf("fingerprint %q missing %q", fp, want)
		}
	}
	s := p.Summarize()
	if len(s.Shape) != 2 || s.Shape[0].Kind != "vec-aggregate" || s.Shape[1].Kind != "top-k" {
		t.Errorf("summary shape = %+v", s.Shape)
	}

	// Plain sort and bare limit produce their own kinds.
	p2 := buildPlan(t, db, "select m.title from MOVIES m order by m.title")
	if len(p2.Shape) != 1 || p2.Shape[0].Kind != planner.ShapeSort {
		t.Errorf("sort-only shape = %+v", p2.Shape)
	}
	p3 := buildPlan(t, db, "select m.title from MOVIES m limit 3")
	if len(p3.Shape) != 1 || p3.Shape[0].Kind != planner.ShapeLimit || p3.Shape[0].K != 3 {
		t.Errorf("limit-only shape = %+v", p3.Shape)
	}
	p4 := buildPlan(t, db, "select m.title from MOVIES m")
	if len(p4.Shape) != 0 {
		t.Errorf("unshaped query grew shape steps: %+v", p4.Shape)
	}
}

// TestVecAggGate pins the vectorized-aggregation gate: which grouped queries
// earn the vec-aggregate shape, when a morsel-parallel scan is scheduled, and
// which shapes stay on the generic aggregate.
func TestVecAggGate(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 7, Movies: 4000, Actors: 500, Directors: 21, CastPerMovie: 2, GenresPerMovie: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := func(p *planner.Plan) []planner.ShapeKind {
		var out []planner.ShapeKind
		for _, sh := range p.Shape {
			out = append(out, sh.Kind)
		}
		return out
	}

	// Single-table grouped scan over a vectorizable filter: vec-aggregate
	// with a morsel-parallel scan (COUNT/MIN merge exactly; the table is
	// large enough to fan out).
	p := buildPlan(t, db, `select m.year, count(*), min(m.title) from MOVIES m
		where m.year >= 1960 group by m.year`)
	got := kinds(p)
	if len(got) != 2 || got[0] != planner.ShapeParallelScan || got[1] != planner.ShapeVecAggregate {
		t.Fatalf("shape kinds = %v, want [parallel-scan vec-aggregate]", got)
	}
	if !strings.Contains(p.Fingerprint(), ">pscan>vagg{1,2}") {
		t.Errorf("fingerprint = %q", p.Fingerprint())
	}
	if p.Shape[0].K != planner.MorselRows {
		t.Errorf("parallel-scan K = %d, want the morsel size", p.Shape[0].K)
	}

	// Post-join grouping with AVG over a bounded int column still merges
	// exactly: parallel-scan stays.
	p = buildPlan(t, db, `select g.genre, count(*), avg(m.year) from MOVIES m, GENRE g
		where m.id = g.mid group by g.genre`)
	got = kinds(p)
	if len(got) != 2 || got[0] != planner.ShapeParallelScan || got[1] != planner.ShapeVecAggregate {
		t.Fatalf("join shape kinds = %v, want [parallel-scan vec-aggregate]", got)
	}

	// Float sums replicate naive row-order accumulation: vec-aggregate
	// without a parallel scan. (MOVIES has no float column; a non-column
	// aggregate argument must instead fall back entirely.)
	p = buildPlan(t, db, `select m.year, sum(m.id + 1) from MOVIES m group by m.year`)
	got = kinds(p)
	if len(got) != 1 || got[0] != planner.ShapeAggregate {
		t.Fatalf("expression-argument shape kinds = %v, want [aggregate]", got)
	}

	// A subquery in HAVING is outside the dialect.
	p = buildPlan(t, db, `select m.year, count(*) from MOVIES m group by m.year
		having count(*) > (select min(g.mid) from GENRE g)`)
	got = kinds(p)
	if len(got) != 1 || got[0] != planner.ShapeAggregate {
		t.Fatalf("subquery-HAVING shape kinds = %v, want [aggregate]", got)
	}

	// A stray (ungrouped, unaggregated) column is a grouping-rule error the
	// environment path raises: generic aggregate.
	p = buildPlan(t, db, `select m.title, count(*) from MOVIES m group by m.year`)
	got = kinds(p)
	if len(got) != 1 || got[0] != planner.ShapeAggregate {
		t.Fatalf("stray-column shape kinds = %v, want [aggregate]", got)
	}

	// A small base table aggregates vectorized but scans serially.
	small, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 9, Movies: 100, Actors: 30, Directors: 3, CastPerMovie: 2, GenresPerMovie: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p = buildPlan(t, small, `select m.year, count(*) from MOVIES m group by m.year`)
	got = kinds(p)
	if len(got) != 1 || got[0] != planner.ShapeVecAggregate {
		t.Fatalf("small-table shape kinds = %v, want [vec-aggregate]", got)
	}
}
