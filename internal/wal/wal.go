// Package wal implements the write-ahead-log substrate of the durability
// layer: CRC32C-framed, length-prefixed records over an injectable file
// abstraction, plus a deterministic fault harness (torn writes, short reads,
// fsync errors, bit flips) that the recovery tests drive.
//
// The framing is deliberately dumb and self-contained — every record is
//
//	[4B little-endian payload length][4B CRC32C(payload)][payload]
//
// so a reader can always classify the tail of a crashed log: a clean end, a
// torn frame header, a truncated record, or a checksum mismatch. Scan never
// fails — it returns the longest valid prefix of records plus a Tail
// describing what it had to give up, which is exactly the commit semantics
// the storage layer builds on (a record is committed iff it is wholly
// readable and checksums).
//
// The same framing serves the checkpoint segment files: a checkpoint is a
// sequence of records (header, then one per table), written to a temporary
// name and renamed into place so a crash mid-checkpoint is invisible.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// frameHeader is the byte size of the length + checksum prefix.
const frameHeader = 8

// MaxRecord caps a single record's payload. A length field above it is
// treated as corruption rather than an allocation request — a flipped bit in
// a length prefix must not ask the reader for an exabyte.
const MaxRecord = 1 << 28

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum most production WALs frame with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// AppendRecord appends one framed record to buf and returns the extended
// buffer. Writers that batch several records into one write use it directly.
func AppendRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, Checksum(payload))
	return append(buf, payload...)
}

// Writer appends framed records to a File.
type Writer struct {
	f   File
	buf []byte
	off int64
}

// NewWriter wraps f, which is positioned at off bytes (0 for a fresh file,
// the current size when appending to an existing log).
func NewWriter(f File, off int64) *Writer {
	return &Writer{f: f, off: off}
}

// Append writes one framed record. The bytes may still sit in an OS buffer;
// call Sync to make the record durable before acknowledging it.
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(payload), MaxRecord)
	}
	w.buf = AppendRecord(w.buf[:0], payload)
	n, err := w.f.Write(w.buf)
	w.off += int64(n)
	if err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	return nil
}

// Sync forces appended records to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Offset returns the byte size of the log written so far.
func (w *Writer) Offset() int64 { return w.off }

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// Record is one framed record recovered by Scan.
type Record struct {
	// Payload is the record body (sharing the scanned buffer's backing
	// array; callers must not mutate it).
	Payload []byte
	// Off and End delimit the record's frame in the scanned bytes.
	Off, End int
}

// Tail describes the unusable suffix of a crashed or corrupted log.
type Tail struct {
	// Off is the byte offset where the valid prefix ends.
	Off int
	// Bytes is the quarantined suffix (shares the scanned buffer).
	Bytes []byte
	// Reason classifies the damage in plain words.
	Reason string
	// Lost estimates how many records the tail swallowed: structurally
	// complete frames count exactly (the bit-flip case), a trailing partial
	// frame counts as one (the torn-write case). It is a lower bound when
	// the damage hit a length prefix.
	Lost int
}

// Scan parses data as a sequence of framed records. It never fails: the
// returned records are the longest valid prefix, and tail (nil when the log
// ends cleanly) describes everything after the first record that does not
// parse or checksum.
func Scan(data []byte) (records []Record, tail *Tail) {
	off := 0
	for off < len(data) {
		if off+frameHeader > len(data) {
			return records, newTail(data, off, "torn frame header")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > MaxRecord {
			return records, newTail(data, off, "implausible record length")
		}
		if off+frameHeader+n > len(data) {
			return records, newTail(data, off, "truncated record")
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+frameHeader : off+frameHeader+n]
		if Checksum(payload) != sum {
			return records, newTail(data, off, "checksum mismatch")
		}
		records = append(records, Record{Payload: payload, Off: off, End: off + frameHeader + n})
		off += frameHeader + n
	}
	return records, nil
}

func newTail(data []byte, off int, reason string) *Tail {
	return &Tail{
		Off:    off,
		Bytes:  data[off:],
		Reason: reason,
		Lost:   estimateLost(data[off:]),
	}
}

// estimateLost walks the tail counting structurally complete frames (their
// payloads may be corrupt, but length and bounds line up) plus one for any
// trailing partial frame. It gives the recovery narration its "the last N
// statements were lost" count without ever trusting corrupt payloads.
func estimateLost(tail []byte) int {
	lost, off := 0, 0
	for off+frameHeader <= len(tail) {
		n := int(binary.LittleEndian.Uint32(tail[off:]))
		if n > MaxRecord || off+frameHeader+n > len(tail) {
			return lost + 1
		}
		lost++
		off += frameHeader + n
	}
	if off < len(tail) {
		lost++
	}
	return lost
}
