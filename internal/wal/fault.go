package wal

import (
	"errors"
	"io"
	"sync"
	"time"
)

// This file is the deterministic fault harness. FaultFS wraps any FS and
// injects failures at exactly the points the caller scripts: fsync errors
// after the nth sync, and short reads that cut a named file off after a byte
// budget. Torn writes and bit flips are injected through MemFS.Truncate and
// MemFS.FlipBit instead — they model damage that happens to bytes at rest,
// not errors the writing process observes.

// ErrInjectedSync is the error injected syncs fail with.
var ErrInjectedSync = errors.New("wal: injected fsync failure")

// ErrInjectedRead is the error injected short reads fail with.
var ErrInjectedRead = errors.New("wal: injected short read")

// ErrInjectedWrite is the error injected torn appends fail with.
var ErrInjectedWrite = errors.New("wal: injected write failure")

// FaultFS wraps an FS with scripted failures. The zero knobs inject nothing.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// syncsLeft counts successful Syncs remaining before every subsequent
	// Sync fails; -1 disables the fault.
	syncsLeft int
	// writesLeft counts successful Writes remaining before every subsequent
	// Write tears (half the bytes land, then an error); -1 disables.
	writesLeft int
	// shortReads maps file name -> byte budget for Open readers.
	shortReads map[string]int
	// delaySync stalls every Sync (and SyncDir) by this duration before the
	// sync proceeds; zero disables. Models a disk that is slow, not broken.
	delaySync time.Duration
	// delayWrite stalls every Write the same way.
	delayWrite time.Duration
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, syncsLeft: -1, writesLeft: -1, shortReads: make(map[string]int)}
}

// FailSyncsAfter arms the fsync fault: the next n Syncs (across all files)
// succeed, every one after that returns ErrInjectedSync. n < 0 disarms.
func (f *FaultFS) FailSyncsAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncsLeft = n
}

// FailWritesAfter arms the torn-append fault: the next n Writes (across all
// files) succeed, every one after that lands only half its bytes and returns
// ErrInjectedWrite — an ENOSPC/I/O error leaving a partial frame on disk.
// n < 0 disarms.
func (f *FaultFS) FailWritesAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writesLeft = n
}

// ShortRead arms the short-read fault: readers of name return at most limit
// bytes and then fail with ErrInjectedRead instead of io.EOF.
func (f *FaultFS) ShortRead(name string, limit int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortReads[name] = limit
}

// DelaySyncs arms the slow-disk fault: every subsequent Sync (and SyncDir)
// sleeps d before proceeding. The sync still succeeds — the fault models
// latency, not loss. d <= 0 disarms.
func (f *FaultFS) DelaySyncs(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delaySync = d
}

// DelayWrites arms the slow-disk fault for Writes: every subsequent Write
// sleeps d before landing. d <= 0 disarms.
func (f *FaultFS) DelayWrites(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delayWrite = d
}

// ClearFaults disarms every scripted fault.
func (f *FaultFS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncsLeft = -1
	f.writesLeft = -1
	f.shortReads = make(map[string]int)
	f.delaySync = 0
	f.delayWrite = 0
}

func (f *FaultFS) sleepSync() {
	f.mu.Lock()
	d := f.delaySync
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (f *FaultFS) sleepWrite() {
	f.mu.Lock()
	d := f.delayWrite
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (f *FaultFS) syncErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.syncsLeft < 0 {
		return nil
	}
	if f.syncsLeft == 0 {
		return ErrInjectedSync
	}
	f.syncsLeft--
	return nil
}

func (f *FaultFS) writeTears() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writesLeft < 0 {
		return false
	}
	if f.writesLeft == 0 {
		return true
	}
	f.writesLeft--
	return false
}

func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error) {
	r, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	limit, ok := f.shortReads[name]
	f.mu.Unlock()
	if !ok {
		return r, nil
	}
	return &shortReader{r: r, left: limit}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error { return f.inner.Rename(oldname, newname) }
func (f *FaultFS) Remove(name string) error             { return f.inner.Remove(name) }
func (f *FaultFS) Exists(name string) (bool, error)     { return f.inner.Exists(name) }
func (f *FaultFS) Size(name string) (int64, error)      { return f.inner.Size(name) }

// SyncDir routes through the same sync script as file Syncs: a scripted
// fsync fault also breaks directory syncs, as a failing disk would.
func (f *FaultFS) SyncDir() error {
	f.sleepSync()
	if err := f.syncErr(); err != nil {
		return err
	}
	return f.inner.SyncDir()
}

// faultFile defers writes to the wrapped file but routes Write and Sync
// through the harness's script.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.sleepWrite()
	if f.fs.writeTears() {
		n, _ := f.File.Write(p[:len(p)/2])
		return n, ErrInjectedWrite
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	f.fs.sleepSync()
	if err := f.fs.syncErr(); err != nil {
		return err
	}
	return f.File.Sync()
}

// shortReader serves at most left bytes, then errors — never a clean EOF.
type shortReader struct {
	r    io.ReadCloser
	left int
}

func (s *shortReader) Read(p []byte) (int, error) {
	if s.left <= 0 {
		return 0, ErrInjectedRead
	}
	if len(p) > s.left {
		p = p[:s.left]
	}
	n, err := s.r.Read(p)
	s.left -= n
	if err == io.EOF {
		return n, io.EOF
	}
	if s.left <= 0 && err == nil {
		err = ErrInjectedRead
	}
	return n, err
}

func (s *shortReader) Close() error { return s.r.Close() }
