package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the writable handle the log appends to. It is the injection point
// of the fault harness: tests swap in files whose writes tear, whose Sync
// fails, or whose bytes flip.
type File interface {
	io.Writer
	// Sync forces written bytes to stable storage.
	Sync() error
	Close() error
}

// FS abstracts the directory a durable database lives in. Implementations:
// DirFS (the real filesystem) and MemFS (deterministic in-memory store the
// crash tests snapshot, truncate, and corrupt at will).
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it when absent.
	OpenAppend(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Remove deletes name (no error when absent).
	Remove(name string) error
	// Exists reports whether name is present.
	Exists(name string) (bool, error)
	// Size returns the byte size of name.
	Size(name string) (int64, error)
	// SyncDir forces directory metadata (renames, newly created entries) to
	// stable storage. Per-file Sync makes record bytes durable; SyncDir makes
	// the files themselves durable — without it a power loss can undo a
	// checkpoint rename while keeping the log truncation that followed it.
	SyncDir() error
}

// ReadAll reads the full content of name. When the underlying reader errors
// mid-stream (the short-read fault), it returns the bytes read so far along
// with the error — recovery treats such a log exactly like a torn one and
// salvages the readable prefix.
func ReadAll(fs FS, name string) ([]byte, error) {
	r, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// ---------------------------------------------------------------------------
// DirFS: the real filesystem
// ---------------------------------------------------------------------------

// DirFS implements FS over a directory on the operating system's filesystem.
type DirFS struct{ root string }

// NewDirFS returns an FS rooted at dir, creating the directory if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	return &DirFS{root: dir}, nil
}

// Root returns the directory the FS is rooted at.
func (d *DirFS) Root() string { return d.root }

func (d *DirFS) path(name string) string { return filepath.Join(d.root, name) }

func (d *DirFS) Create(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (d *DirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (d *DirFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(d.path(name))
}

func (d *DirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

func (d *DirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (d *DirFS) Exists(name string) (bool, error) {
	_, err := os.Stat(d.path(name))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

func (d *DirFS) Size(name string) (int64, error) {
	st, err := os.Stat(d.path(name))
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.root)
	if err != nil {
		return fmt.Errorf("wal: opening %s for fsync: %w", d.root, err)
	}
	err = f.Sync()
	cerr := f.Close()
	if err != nil {
		return fmt.Errorf("wal: fsync %s: %w", d.root, err)
	}
	return cerr
}

// ---------------------------------------------------------------------------
// MemFS: deterministic in-memory store for crash simulation
// ---------------------------------------------------------------------------

// MemFS is an in-memory FS. Beyond the FS contract it exposes the surgical
// operations crash tests need: deep-copy snapshots, byte truncation (a torn
// write is a log whose tail never reached the disk), and bit flips.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

// Clone returns an independent deep copy — the "state of the disk at this
// instant" a simulated crash recovers from.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, data := range m.files {
		out.files[name] = append([]byte(nil), data...)
	}
	return out
}

// Bytes returns a copy of name's content (nil when absent).
func (m *MemFS) Bytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.files[name]...)
}

// Truncate cuts name to n bytes — the torn-write primitive.
func (m *MemFS) Truncate(name string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if data, ok := m.files[name]; ok && n < len(data) {
		m.files[name] = data[:n]
	}
}

// FlipBit XORs mask into byte off of name — the bit-rot primitive.
func (m *MemFS) FlipBit(name string, off int, mask byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if data, ok := m.files[name]; ok && off < len(data) {
		data[off] ^= mask
	}
}

// Names returns the sorted file names present.
func (m *MemFS) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = nil
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: %w", name, os.ErrNotExist)
	}
	return io.NopCloser(&sliceReader{data: append([]byte(nil), data...)}), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("wal: rename %s: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *MemFS) Exists(name string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.files[name]
	return ok, nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("wal: size %s: %w", name, os.ErrNotExist)
	}
	return int64(len(data)), nil
}

// SyncDir is a no-op: the in-memory store has no directory metadata to lose.
func (m *MemFS) SyncDir() error { return nil }

// memFile appends to its MemFS entry. Writes always land in full — torn
// writes are simulated after the fact by truncating the store, which models a
// crash (the process never observes its own tear) more faithfully than a
// failing Write would.
type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
