package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func buildLog(t *testing.T, payloads ...[]byte) []byte {
	t.Helper()
	var buf []byte
	for _, p := range payloads {
		buf = AppendRecord(buf, p)
	}
	return buf
}

func TestScanRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("first"),
		{},
		[]byte("third record with more bytes"),
		bytes.Repeat([]byte{0xAB}, 5000),
	}
	data := buildLog(t, payloads...)
	records, tail := Scan(data)
	if tail != nil {
		t.Fatalf("clean log reported tail: %+v", tail)
	}
	if len(records) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(records), len(payloads))
	}
	for i, rec := range records {
		if !bytes.Equal(rec.Payload, payloads[i]) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
	if records[0].Off != 0 || records[len(records)-1].End != len(data) {
		t.Errorf("record offsets do not tile the log")
	}
}

func TestScanEmpty(t *testing.T) {
	records, tail := Scan(nil)
	if len(records) != 0 || tail != nil {
		t.Fatalf("empty log: records=%d tail=%+v", len(records), tail)
	}
}

// TestScanTornAtEveryOffset cuts a multi-record log at every possible byte
// length and checks the salvage invariant: Scan returns exactly the records
// wholly contained in the prefix, never fails, and the tail offset equals
// the end of the last whole record.
func TestScanTornAtEveryOffset(t *testing.T) {
	payloads := [][]byte{
		[]byte("alpha"), []byte("beta-beta"), []byte("g"), []byte("delta payload"),
	}
	data := buildLog(t, payloads...)
	ends := []int{}
	off := 0
	for _, p := range payloads {
		off += frameHeader + len(p)
		ends = append(ends, off)
	}
	for cut := 0; cut <= len(data); cut++ {
		records, tail := Scan(data[:cut])
		wantRecords := 0
		for _, e := range ends {
			if e <= cut {
				wantRecords++
			}
		}
		if len(records) != wantRecords {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(records), wantRecords)
		}
		wantTailOff := 0
		if wantRecords > 0 {
			wantTailOff = ends[wantRecords-1]
		}
		if cut == wantTailOff {
			if tail != nil {
				t.Fatalf("cut %d at record boundary: unexpected tail %+v", cut, tail)
			}
			continue
		}
		if tail == nil {
			t.Fatalf("cut %d: expected torn tail", cut)
		}
		if tail.Off != wantTailOff {
			t.Fatalf("cut %d: tail off %d, want %d", cut, tail.Off, wantTailOff)
		}
		if tail.Lost != 1 {
			t.Fatalf("cut %d: torn write should lose one record, reported %d", cut, tail.Lost)
		}
	}
}

// TestScanBitFlips flips every bit of a log one at a time: Scan must never
// panic, and a flip in any record's frame or payload must not corrupt the
// records before it.
func TestScanBitFlips(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("two two"), []byte("three three three")}
	data := buildLog(t, payloads...)
	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			records, tail := Scan(mut)
			if tail == nil {
				// A flip that still scans clean can only have produced the
				// same record set (CRC32C collisions are not constructible
				// with one bit flip over these lengths).
				t.Fatalf("flip at %d/%d scanned clean", off, bit)
			}
			for i, rec := range records {
				if !bytes.Equal(rec.Payload, payloads[i]) {
					t.Fatalf("flip at %d/%d corrupted preceding record %d", off, bit, i)
				}
			}
		}
	}
}

func TestLostEstimateCountsWholeFrames(t *testing.T) {
	payloads := [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc"), []byte("dddd")}
	data := buildLog(t, payloads...)
	// Flip a payload bit in record 1: records 1..3 are structurally intact
	// but record 1 fails its checksum — three whole frames lost.
	mut := append([]byte(nil), data...)
	mut[frameHeader+len(payloads[0])+frameHeader] ^= 0x01
	records, tail := Scan(mut)
	if len(records) != 1 || tail == nil {
		t.Fatalf("records=%d tail=%v", len(records), tail)
	}
	if tail.Reason != "checksum mismatch" {
		t.Errorf("reason %q", tail.Reason)
	}
	if tail.Lost != 3 {
		t.Errorf("lost %d, want 3", tail.Lost)
	}
	// Additionally tear the last record: still 3 (two whole + one partial).
	records, tail = Scan(mut[:len(mut)-2])
	if len(records) != 1 || tail == nil || tail.Lost != 3 {
		t.Errorf("torn variant: records=%d tail=%+v", len(records), tail)
	}
}

func TestScanImplausibleLength(t *testing.T) {
	data := buildLog(t, []byte("ok"))
	// A frame header whose length field decodes beyond MaxRecord.
	data = append(data, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
	records, tail := Scan(data)
	if len(records) != 1 || tail == nil {
		t.Fatalf("records=%d tail=%v", len(records), tail)
	}
	if tail.Reason != "implausible record length" {
		t.Errorf("reason %q", tail.Reason)
	}
}

func TestWriterAppendsFrames(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 0)
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	data := fs.Bytes("wal.log")
	if int64(len(data)) != w.Offset() {
		t.Fatalf("offset %d, file %d", w.Offset(), len(data))
	}
	records, tail := Scan(data)
	if tail != nil || len(records) != 10 {
		t.Fatalf("records=%d tail=%v", len(records), tail)
	}
	if got := string(records[7].Payload); got != "record-7" {
		t.Errorf("payload %q", got)
	}
}

func TestWriterRejectsOversizedRecord(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("wal.log")
	w := NewWriter(f, 0)
	if err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestMemFSCloneIsolation(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.Write([]byte("hello"))
	snap := fs.Clone()
	f.Write([]byte(" world"))
	if got := string(snap.Bytes("a")); got != "hello" {
		t.Errorf("snapshot mutated: %q", got)
	}
	if got := string(fs.Bytes("a")); got != "hello world" {
		t.Errorf("original: %q", got)
	}
}

func TestMemFSPrimitives(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Write([]byte{0x00, 0x01, 0x02, 0x03})
	fs.Truncate("x", 2)
	if got := fs.Bytes("x"); len(got) != 2 {
		t.Fatalf("truncate: %v", got)
	}
	fs.FlipBit("x", 1, 0x80)
	if got := fs.Bytes("x"); got[1] != 0x81 {
		t.Fatalf("flip: %v", got)
	}
	if err := fs.Rename("x", "y"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("x"); ok {
		t.Error("x survived rename")
	}
	if n, err := fs.Size("y"); err != nil || n != 2 {
		t.Errorf("size: %d %v", n, err)
	}
	if err := fs.Remove("y"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(fs, "y"); err == nil {
		t.Error("read of removed file succeeded")
	}
}

func TestDirFSRoundTrip(t *testing.T) {
	fs, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 0)
	if err := w.Append([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen for append, add a second record.
	size, err := fs.Size("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs.OpenAppend("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(f2, size)
	if err := w2.Append([]byte("appended")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	data, err := ReadAll(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	records, tail := Scan(data)
	if tail != nil || len(records) != 2 {
		t.Fatalf("records=%d tail=%v", len(records), tail)
	}
	if string(records[1].Payload) != "appended" {
		t.Errorf("payload %q", records[1].Payload)
	}
	if ok, _ := fs.Exists("nope"); ok {
		t.Error("phantom file")
	}
	if err := fs.Remove("nope"); err != nil {
		t.Errorf("removing absent file: %v", err)
	}
}

func TestFaultFSSyncScript(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f, _ := ffs.Create("wal.log")
	ffs.FailSyncsAfter(2)
	for i := 0; i < 2; i++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("third sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("fault must persist: %v", err)
	}
	ffs.ClearFaults()
	if err := f.Sync(); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestFaultFSShortRead(t *testing.T) {
	mem := NewMemFS()
	f, _ := mem.Create("wal.log")
	f.Write(bytes.Repeat([]byte{0x5A}, 100))
	ffs := NewFaultFS(mem)
	ffs.ShortRead("wal.log", 40)
	data, err := ReadAll(ffs, "wal.log")
	if !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("err=%v", err)
	}
	if len(data) != 40 {
		t.Fatalf("got %d bytes, want the 40-byte readable prefix", len(data))
	}
	// Other files are unaffected.
	f2, _ := mem.Create("other")
	f2.Write([]byte("ok"))
	if out, err := ReadAll(ffs, "other"); err != nil || string(out) != "ok" {
		t.Fatalf("unfaulted file: %q %v", out, err)
	}
}

func TestReadAllPartialOnError(t *testing.T) {
	// io.ReadAll folds a mid-stream error into (partial bytes, err); the
	// recovery path depends on receiving that prefix.
	r := io.MultiReader(bytes.NewReader([]byte("prefix")), &failingReader{})
	data, err := io.ReadAll(r)
	if err == nil || string(data) != "prefix" {
		t.Fatalf("data=%q err=%v", data, err)
	}
}

type failingReader struct{}

func (*failingReader) Read([]byte) (int, error) { return 0, errors.New("boom") }
