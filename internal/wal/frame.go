// Streaming frame decoder: the same [length][CRC32C][payload] framing Scan
// parses out of a byte slice, decoded incrementally from an io.Reader. The
// replication layer reads WAL records off a TCP link with it, so the wire
// format and the on-disk format share one decoder instead of two copies.
//
// Unlike Scan, a stream has no salvageable suffix to quarantine — the only
// question is how it ended. FrameError keeps Scan's tail vocabulary ("torn
// frame header", "truncated record", "checksum mismatch", "implausible
// record length") and adds the one distinction a replica cares about:
// Corrupt() separates bytes that are provably wrong (the sender and receiver
// have diverged) from a stream that was merely severed mid-frame (reconnect
// and resume).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame is one framed record decoded from a byte stream.
type Frame struct {
	// Payload is the frame body. A FrameScanner reuses its buffer, so the
	// bytes are valid only until the next Scan; ReadFrames returns copies.
	Payload []byte
}

// FrameError classifies why a frame stream stopped yielding frames.
type FrameError struct {
	// Reason uses the same vocabulary as Tail.Reason.
	Reason string
	// Err is the underlying read error, if the stream failed rather than
	// the bytes (nil for checksum mismatch and implausible length).
	Err error
}

func (e *FrameError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("wal: %s: %v", e.Reason, e.Err)
	}
	return "wal: " + e.Reason
}

func (e *FrameError) Unwrap() error { return e.Err }

// Corrupt reports whether the frame bytes themselves are provably wrong — a
// checksum mismatch or an implausible length prefix — as opposed to a stream
// that ended or errored mid-frame. A severed stream is retryable; corrupt
// bytes mean the two ends have diverged.
func (e *FrameError) Corrupt() bool {
	return e.Reason == "checksum mismatch" || e.Reason == "implausible record length"
}

// FrameScanner incrementally decodes framed records from r. It mirrors
// bufio.Scanner: Scan until it returns false, then check Err — nil means the
// stream ended cleanly on a frame boundary.
type FrameScanner struct {
	r     io.Reader
	hdr   [frameHeader]byte
	buf   []byte
	frame Frame
	err   error
	done  bool
	off   int64
}

// NewFrameScanner returns a scanner reading frames from r.
func NewFrameScanner(r io.Reader) *FrameScanner {
	return &FrameScanner{r: r}
}

// Scan reads the next frame. It returns false at end of stream or on the
// first undecodable frame; Err distinguishes the two.
func (s *FrameScanner) Scan() bool {
	if s.done {
		return false
	}
	n, err := io.ReadFull(s.r, s.hdr[:])
	s.off += int64(n)
	if err != nil {
		s.done = true
		if errors.Is(err, io.EOF) && n == 0 {
			return false // clean end on a frame boundary
		}
		s.err = &FrameError{Reason: "torn frame header", Err: err}
		return false
	}
	size := int(binary.LittleEndian.Uint32(s.hdr[:]))
	if size > MaxRecord {
		s.done = true
		s.err = &FrameError{Reason: "implausible record length"}
		return false
	}
	sum := binary.LittleEndian.Uint32(s.hdr[4:])
	if cap(s.buf) < size {
		s.buf = make([]byte, size)
	}
	s.buf = s.buf[:size]
	n, err = io.ReadFull(s.r, s.buf)
	s.off += int64(n)
	if err != nil {
		s.done = true
		s.err = &FrameError{Reason: "truncated record", Err: err}
		return false
	}
	if Checksum(s.buf) != sum {
		s.done = true
		s.err = &FrameError{Reason: "checksum mismatch"}
		return false
	}
	s.frame = Frame{Payload: s.buf}
	return true
}

// Frame returns the frame read by the last successful Scan. Its payload is
// valid only until the next Scan.
func (s *FrameScanner) Frame() Frame { return s.frame }

// Err returns the error that stopped the scanner, or nil if the stream
// ended cleanly on a frame boundary.
func (s *FrameScanner) Err() error { return s.err }

// Offset returns the number of bytes consumed from the reader so far.
func (s *FrameScanner) Offset() int64 { return s.off }

// ReadFrames decodes every frame in r, copying each payload. The returned
// frames are the longest valid prefix; err is nil only when the stream ended
// cleanly on a frame boundary.
func ReadFrames(r io.Reader) ([]Frame, error) {
	s := NewFrameScanner(r)
	var frames []Frame
	for s.Scan() {
		frames = append(frames, Frame{Payload: append([]byte(nil), s.frame.Payload...)})
	}
	return frames, s.Err()
}
