package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/iotest"
)

// TestFrameScannerDifferential pins the streaming decoder to Scan: for a log
// cut at every byte offset, both must agree on the decoded prefix and on how
// they classify the damage.
func TestFrameScannerDifferential(t *testing.T) {
	data := buildLog(t,
		[]byte("first"),
		[]byte{},
		[]byte("third record with more bytes"),
		bytes.Repeat([]byte{0xAB}, 300),
	)
	for cut := 0; cut <= len(data); cut++ {
		records, tail := Scan(data[:cut])
		frames, err := ReadFrames(bytes.NewReader(data[:cut]))
		if len(frames) != len(records) {
			t.Fatalf("cut %d: stream decoded %d frames, Scan %d records", cut, len(frames), len(records))
		}
		for i := range frames {
			if !bytes.Equal(frames[i].Payload, records[i].Payload) {
				t.Fatalf("cut %d: frame %d payload mismatch", cut, i)
			}
		}
		if tail == nil {
			if err != nil {
				t.Fatalf("cut %d: Scan saw a clean end, stream saw %v", cut, err)
			}
			continue
		}
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("cut %d: Scan saw tail %q, stream saw %v", cut, tail.Reason, err)
		}
		if fe.Reason != tail.Reason {
			t.Fatalf("cut %d: Scan classified %q, stream classified %q", cut, tail.Reason, fe.Reason)
		}
	}
}

// TestFrameScannerCorruption flips every byte of a short log in turn: the
// streaming decoder must classify each flip exactly as Scan does, and the
// flips that damage payload bytes or checksums must report Corrupt().
func TestFrameScannerCorruption(t *testing.T) {
	data := buildLog(t, []byte("alpha"), []byte("beta"), []byte("gamma"))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		records, tail := Scan(mut)
		frames, err := ReadFrames(bytes.NewReader(mut))
		if len(frames) != len(records) {
			t.Fatalf("flip %d: stream decoded %d frames, Scan %d records", i, len(frames), len(records))
		}
		if tail == nil {
			if err != nil {
				t.Fatalf("flip %d: Scan clean, stream saw %v", i, err)
			}
			continue
		}
		var fe *FrameError
		if !errors.As(err, &fe) || fe.Reason != tail.Reason {
			t.Fatalf("flip %d: Scan classified %q, stream saw %v", i, tail.Reason, err)
		}
		switch fe.Reason {
		case "checksum mismatch", "implausible record length":
			if !fe.Corrupt() {
				t.Fatalf("flip %d: %q must report Corrupt()", i, fe.Reason)
			}
		default:
			if fe.Corrupt() {
				t.Fatalf("flip %d: %q must not report Corrupt()", i, fe.Reason)
			}
		}
	}
}

// TestFrameScannerOneByteReads drives the scanner through a reader that
// yields one byte at a time: incremental reads must not change the result.
func TestFrameScannerOneByteReads(t *testing.T) {
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{7}, 999)}
	data := buildLog(t, payloads...)
	s := NewFrameScanner(iotest.OneByteReader(bytes.NewReader(data)))
	for i, want := range payloads {
		if !s.Scan() {
			t.Fatalf("Scan stopped at frame %d: %v", i, s.Err())
		}
		if !bytes.Equal(s.Frame().Payload, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if s.Scan() || s.Err() != nil {
		t.Fatalf("expected clean end, got err %v", s.Err())
	}
	if s.Offset() != int64(len(data)) {
		t.Fatalf("offset %d, want %d", s.Offset(), len(data))
	}
}

// TestFrameScannerSeveredStream pins the retryable classification: a reader
// that fails mid-frame with a transport error is severed, not corrupt, and
// the cause is preserved for the reconnect path.
func TestFrameScannerSeveredStream(t *testing.T) {
	data := buildLog(t, []byte("payload"))
	cause := errors.New("connection reset")
	for cut := 1; cut < len(data); cut++ {
		r := io.MultiReader(bytes.NewReader(data[:cut]), iotest.ErrReader(cause))
		_, err := ReadFrames(r)
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("cut %d: want FrameError, got %v", cut, err)
		}
		if fe.Corrupt() {
			t.Fatalf("cut %d: severed stream misclassified as corrupt (%q)", cut, fe.Reason)
		}
		if !errors.Is(err, cause) {
			t.Fatalf("cut %d: cause not preserved: %v", cut, err)
		}
	}
}

// TestFrameScannerImplausibleLength pins that a giant length prefix is
// corruption, not an allocation request.
func TestFrameScannerImplausibleLength(t *testing.T) {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxRecord+1)
	_, err := ReadFrames(bytes.NewReader(hdr[:]))
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Reason != "implausible record length" || !fe.Corrupt() {
		t.Fatalf("want corrupt implausible-length error, got %v", err)
	}
}
