package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

func mustParse(t *testing.T, sql string) *sqlparser.SelectStmt {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

// This file stresses the vectorized predicate layer and the single-table
// scan→project fast path: every template below lands (at least partly) in
// compileVecFilter's dialect — column-vs-literal comparisons on every column
// kind, IS NULL, BETWEEN, IN lists with NULLs, LIKE over dictionary text,
// and cross-kind equality — and must agree with the forced-naive pipeline
// row for row, order included, on NULL-riddled data.

// vecTestDB builds one table exercising every column kind with ~25% NULLs
// in each nullable attribute.
func vecTestDB(t *testing.T, rows int, seed int64) *storage.Database {
	t.Helper()
	schema := catalog.NewSchema("vec")
	if err := schema.AddRelation(&catalog.Relation{
		Name: "V",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "n", Type: catalog.Int},
			{Name: "f", Type: catalog.Float},
			{Name: "s", Type: catalog.Text},
			{Name: "d", Type: catalog.Date},
			{Name: "b", Type: catalog.Bool},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	db, err := storage.NewDatabase(schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	maybe := func(v value.Value) value.Value {
		if rng.Intn(4) == 0 {
			return value.NewNull()
		}
		return v
	}
	for i := 0; i < rows; i++ {
		tup := storage.Tuple{
			value.NewInt(int64(i)),
			maybe(value.NewInt(int64(rng.Intn(10)))),
			maybe(value.NewFloat(float64(rng.Intn(8)) / 2)),
			maybe(value.NewText(fmt.Sprintf("tag-%d", rng.Intn(6)))),
			maybe(value.NewDateDays(int64(rng.Intn(40) - 20))),
			maybe(value.NewBool(rng.Intn(2) == 0)),
		}
		if err := db.Insert("V", tup); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestVecDifferentialRandomized sweeps randomized vectorizable predicates on
// a single table through planned (fast path) and naive execution.
func TestVecDifferentialRandomized(t *testing.T) {
	db := vecTestDB(t, 90, 31)
	ex := New(db)
	rng := rand.New(rand.NewSource(77))
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	op := func() string { return ops[rng.Intn(len(ops))] }
	templates := []func() string{
		func() string {
			return fmt.Sprintf("select v.id, v.n from V v where v.n %s %d", op(), rng.Intn(10))
		},
		func() string {
			return fmt.Sprintf("select v.id from V v where v.f %s %d.5", op(), rng.Intn(4))
		},
		func() string {
			return fmt.Sprintf("select v.id, v.s from V v where v.s %s 'tag-%d'", op(), rng.Intn(8))
		},
		func() string {
			return fmt.Sprintf("select v.id from V v where v.d %s DATE '1970-01-%02d'", op(), 1+rng.Intn(20))
		},
		func() string {
			return fmt.Sprintf("select v.id from V v where v.b = %v", rng.Intn(2) == 0)
		},
		func() string {
			// Flipped literal-op-column orientation.
			return fmt.Sprintf("select v.id from V v where %d %s v.n", rng.Intn(10), op())
		},
		func() string {
			neg := ""
			if rng.Intn(2) == 0 {
				neg = " not"
			}
			return fmt.Sprintf("select v.id from V v where v.s is%s null", neg)
		},
		func() string {
			lo := rng.Intn(8)
			neg := ""
			if rng.Intn(2) == 0 {
				neg = "not "
			}
			return fmt.Sprintf("select v.id from V v where v.n %sbetween %d and %d", neg, lo, lo+rng.Intn(4))
		},
		func() string {
			neg := ""
			if rng.Intn(2) == 0 {
				neg = "not "
			}
			items := fmt.Sprintf("%d, %d", rng.Intn(10), rng.Intn(10))
			if rng.Intn(3) == 0 {
				items += ", null"
			}
			return fmt.Sprintf("select v.id from V v where v.n %sin (%s)", neg, items)
		},
		func() string {
			return fmt.Sprintf("select v.id from V v where v.s in ('tag-1', 'tag-%d', 'no-such')", rng.Intn(6))
		},
		func() string {
			return fmt.Sprintf("select v.id, v.s from V v where v.s like 'tag-%%%d'", rng.Intn(3))
		},
		func() string {
			// Cross-kind equality: = is false, <> true for non-NULL rows.
			if rng.Intn(2) == 0 {
				return "select v.id from V v where v.s = 5"
			}
			return "select v.id from V v where v.n != 'tag-1'"
		},
		func() string {
			// Conjunction: vec prefix plus more vec filters.
			return fmt.Sprintf("select v.id from V v where v.n %s %d and v.s = 'tag-%d' and v.b = true",
				op(), rng.Intn(10), rng.Intn(6))
		},
		func() string {
			// Vec prefix followed by a generic (arithmetic) conjunct.
			return fmt.Sprintf("select v.id from V v where v.n %s %d and v.n + v.id > %d",
				op(), rng.Intn(10), rng.Intn(60))
		},
		func() string {
			// Generic conjunct first: nothing may be hoisted past it.
			return fmt.Sprintf("select v.id from V v where v.n + 0 = %d and v.s = 'tag-1'", rng.Intn(10))
		},
		func() string {
			// Shaping on top of the fast path.
			return fmt.Sprintf("select v.id, v.n from V v where v.n %s %d order by v.n desc, v.id limit %d",
				op(), rng.Intn(10), 1+rng.Intn(12))
		},
		func() string {
			return fmt.Sprintf("select distinct v.s from V v where v.n %s %d order by v.s", op(), rng.Intn(10))
		},
		func() string {
			// Bare LIMIT pushdown (no ORDER BY) over the fast path.
			return fmt.Sprintf("select v.id from V v where v.n %s %d limit %d", op(), rng.Intn(10), rng.Intn(9))
		},
		func() string {
			// Constant select items alongside column reads.
			return fmt.Sprintf("select 7, v.id from V v where v.f %s 1.5", op())
		},
		func() string {
			// Star projection through the fast path.
			return fmt.Sprintf("select * from V v where v.d between DATE '1969-12-%02d' and DATE '1970-01-%02d'",
				20+rng.Intn(10), 1+rng.Intn(20))
		},
	}
	for trial := 0; trial < 200; trial++ {
		sql := templates[trial%len(templates)]()
		comparePlannedNaive(t, ex, sql)
	}
}

// TestVecDifferentialJoins checks that vectorized self-filters applied at
// hash-join build sides, index probes, and loop prefilters agree with naive
// execution on the movie corpus.
func TestVecDifferentialJoins(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 47, Movies: 150, Actors: 50, Directors: 9, CastPerMovie: 2, GenresPerMovie: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Table("CAST").CreateIndex("ix_cast_mid", "mid"); err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		year := 1950 + rng.Intn(60)
		sqls := []string{
			// Vec filter on the build side of a hash join.
			fmt.Sprintf("select m.title, g.genre from MOVIES m, GENRE g where m.id = g.mid and m.year > %d", year),
			// Vec filter on both sides plus a LIKE on dictionary text.
			fmt.Sprintf("select m.title from MOVIES m, GENRE g where m.id = g.mid and g.genre like 's%%' and m.year <= %d", year),
			// Vec filter at an index-probe step.
			fmt.Sprintf("select m.title, c.role from MOVIES m, CAST c where m.id = c.mid and c.aid in (%d, %d) and m.year >= %d",
				1+rng.Intn(50), 1+rng.Intn(50), year),
			// Vec prefix + generic residual mixing at one step.
			fmt.Sprintf("select m.id from MOVIES m, GENRE g where m.id = g.mid and m.year between %d and %d and m.year + g.mid > %d",
				year-5, year+5, year),
		}
		comparePlannedNaive(t, ex, sqls[trial%len(sqls)])
	}
}

// TestVecScanFastPathExplain pins that the fast path records the same
// per-step and plan cardinalities EXPLAIN exposes on the general path: the
// matched row count, not the post-LIMIT count.
func TestVecScanFastPathExplain(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	sel := mustParse(t, "select m.title from MOVIES m where m.year > 1990")
	res, plan, err := ex.SelectExplained(sel)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fallback {
		t.Fatalf("fallback: %s", plan.Reason)
	}
	if plan.ActualRows != len(res.Rows) {
		t.Fatalf("plan.ActualRows = %d, rows = %d", plan.ActualRows, len(res.Rows))
	}
	if plan.Steps[0].ActualRows != len(res.Rows) {
		t.Fatalf("step ActualRows = %d, rows = %d", plan.Steps[0].ActualRows, len(res.Rows))
	}

	// With a LIMIT the step count still reflects every matched row.
	limited := mustParse(t, "select m.title from MOVIES m where m.year > 1990 limit 2")
	resL, planL, err := ex.SelectExplained(limited)
	if err != nil {
		t.Fatal(err)
	}
	if len(resL.Rows) != 2 {
		t.Fatalf("limit ignored: %d rows", len(resL.Rows))
	}
	if planL.Steps[0].ActualRows != plan.Steps[0].ActualRows {
		t.Fatalf("limited scan ActualRows = %d, want %d (full match count)",
			planL.Steps[0].ActualRows, plan.Steps[0].ActualRows)
	}
}
