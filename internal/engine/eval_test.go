package engine

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/value"
)

// evalEngine builds a tiny engine for scalar-expression probing via
// one-row queries.
func evalEngine(t *testing.T) *Engine {
	t.Helper()
	db, err := dataset.CuratedEmpDept()
	if err != nil {
		t.Fatal(err)
	}
	return New(db)
}

// scalar runs `select <expr> from EMP e where e.eid = 1` and returns the
// single value.
func scalar(t *testing.T, ex *Engine, expr string) value.Value {
	t.Helper()
	res, err := ex.Query("select " + expr + " from EMP e where e.eid = 1")
	if err != nil {
		t.Fatalf("%s: %v", expr, err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%s: %d rows", expr, len(res.Rows))
	}
	return res.Rows[0][0]
}

func TestArithmetic(t *testing.T) {
	ex := evalEngine(t)
	cases := map[string]string{
		"1 + 2":       "3",
		"7 - 10":      "-3",
		"6 * 7":       "42",
		"7 / 2":       "3", // integer division
		"7 % 3":       "1",
		"7.0 / 2":     "3.5", // float promotes
		"1 + 2 * 3":   "7",
		"(1 + 2) * 3": "9",
		"2.5 + 2.5":   "5",
		"1 - 0.5":     "0.5",
	}
	for expr, want := range cases {
		if got := scalar(t, ex, expr).String(); got != want {
			t.Errorf("%s = %s, want %s", expr, got, want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	ex := evalEngine(t)
	for _, expr := range []string{"1 / 0", "1 % 0", "2.5 % 1.5", "'a' + 1"} {
		if _, err := ex.Query("select " + expr + " from EMP e where e.eid = 1"); err == nil {
			t.Errorf("%s accepted", expr)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	ex := evalEngine(t)
	if v := scalar(t, ex, "NULL + 1"); !v.IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
	if v := scalar(t, ex, "NULL = NULL"); !v.IsNull() {
		t.Error("NULL = NULL should be unknown")
	}
	// Three-valued OR: TRUE OR NULL = TRUE.
	res, err := ex.Query("select e.name from EMP e where e.eid = 1 or e.age > NULL")
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("TRUE OR NULL: %v rows, %v", len(res.Rows), err)
	}
	// FALSE AND NULL = FALSE (row excluded but no error).
	res, err = ex.Query("select e.name from EMP e where e.eid = 99999 and e.age > NULL")
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("FALSE AND NULL: %v rows, %v", len(res.Rows), err)
	}
	// NULL OR NULL = unknown → excluded.
	res, err = ex.Query("select e.name from EMP e where e.age > NULL or e.age < NULL")
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("NULL OR NULL: %v rows, %v", len(res.Rows), err)
	}
}

func TestBooleanLiterals(t *testing.T) {
	ex := evalEngine(t)
	res, err := ex.Query("select e.name from EMP e where TRUE and e.eid = 1")
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("TRUE literal: %d rows, %v", len(res.Rows), err)
	}
	res, err = ex.Query("select e.name from EMP e where FALSE")
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("FALSE literal: %d rows, %v", len(res.Rows), err)
	}
	if _, err := ex.Query("select e.name from EMP e where NOT 5"); err == nil {
		t.Error("NOT on non-boolean accepted")
	}
}

func TestCaseWithoutElse(t *testing.T) {
	ex := evalEngine(t)
	v := scalar(t, ex, "case when e.eid = 99 then 'x' end")
	if !v.IsNull() {
		t.Errorf("CASE fallthrough = %v", v)
	}
}

func TestInWithNullSemantics(t *testing.T) {
	ex := evalEngine(t)
	// 1 NOT IN (2, NULL) is unknown → row excluded.
	res, err := ex.Query("select e.name from EMP e where e.eid = 1 and 1 not in (2, NULL)")
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("NOT IN with NULL: %d rows, %v", len(res.Rows), err)
	}
	// 1 IN (1, NULL) is true.
	res, err = ex.Query("select e.name from EMP e where e.eid = 1 and 1 in (1, NULL)")
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("IN with NULL hit: %d rows, %v", len(res.Rows), err)
	}
	// NULL IN (1) is unknown.
	res, err = ex.Query("select e.name from EMP e where e.eid = 1 and NULL in (1)")
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("NULL IN: %d rows, %v", len(res.Rows), err)
	}
}

func TestQuantifiedEmptyAndNull(t *testing.T) {
	ex := evalEngine(t)
	// ALL over empty set is true.
	res, err := ex.Query("select e.name from EMP e where e.eid = 1 and e.sal > all (select e2.sal from EMP e2 where e2.eid = 9999)")
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("ALL over empty: %d rows, %v", len(res.Rows), err)
	}
	// ANY over empty set is false.
	res, err = ex.Query("select e.name from EMP e where e.eid = 1 and e.sal > any (select e2.sal from EMP e2 where e2.eid = 9999)")
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("ANY over empty: %d rows, %v", len(res.Rows), err)
	}
}

func TestBetweenNulls(t *testing.T) {
	ex := evalEngine(t)
	res, err := ex.Query("select e.name from EMP e where e.age between NULL and 100")
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("BETWEEN NULL: %d rows, %v", len(res.Rows), err)
	}
}

func TestMinMaxOverTextAndDates(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, err := ex.Query("select min(m.title), max(m.title) from MOVIES m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Text() != "Anna" {
		t.Errorf("min title = %v", res.Rows[0][0])
	}
	res, err = ex.Query("select min(d.bdate) from DIRECTOR d")
	if err != nil || res.Rows[0][0].Date().Year() != 1893 {
		t.Errorf("min bdate = %v, %v", res.Rows[0], err)
	}
}

func TestAggregateOverEmptyGroupReturnsNull(t *testing.T) {
	ex := evalEngine(t)
	res, err := ex.Query("select sum(e.sal), avg(e.sal), min(e.sal), max(e.sal) from EMP e where e.eid = 9999")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Rows[0] {
		if !v.IsNull() {
			t.Errorf("aggregate %d over empty input = %v", i, v)
		}
	}
}

func TestSumErrorsOnText(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	if _, err := ex.Query("select sum(m.title) from MOVIES m"); err == nil {
		t.Error("SUM over text accepted")
	}
}

func TestCountDistinctVsPlain(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, err := ex.Query("select count(m.title), count(distinct m.title) from MOVIES m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 13 || res.Rows[0][1].Int() != 11 {
		t.Errorf("counts = %v", res.Rows[0])
	}
}

func TestLikeRequiresText(t *testing.T) {
	ex := evalEngine(t)
	if _, err := ex.Query("select e.name from EMP e where e.age like 'x%'"); err == nil {
		t.Error("LIKE over int accepted")
	}
}

func TestLikeEdgePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "a%c", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%%%", true},
		{"aXbXc", "a%b%c", true},
		{"ab", "a__", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestSubqueryColumnCountErrors(t *testing.T) {
	ex := evalEngine(t)
	bad := []string{
		// scalar subquery with two columns
		"select e.name from EMP e where e.sal > (select e2.sal, e2.age from EMP e2 where e2.eid = 2)",
		// quantified subquery with two columns
		"select e.name from EMP e where e.sal > all (select e2.sal, e2.age from EMP e2)",
	}
	for _, src := range bad {
		if _, err := ex.Query(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestComparisonAcrossKinds(t *testing.T) {
	ex := evalEngine(t)
	// Equality across text/int is false, not an error.
	res, err := ex.Query("select e.name from EMP e where e.eid = 1 and e.name = 5")
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("cross-kind equality: %d rows, %v", len(res.Rows), err)
	}
	// != across kinds is true.
	res, err = ex.Query("select e.name from EMP e where e.eid = 1 and e.name != 5")
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("cross-kind inequality: %d rows, %v", len(res.Rows), err)
	}
}

func TestUnqualifiedColumnInWhere(t *testing.T) {
	ex := evalEngine(t)
	res, err := ex.Query("select name from EMP e where eid = 3")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Text() != "Ada Papadaki" {
		t.Errorf("unqualified: %v, %v", res.Rows, err)
	}
}

func TestOrderByNullsPlacement(t *testing.T) {
	ex := evalEngine(t)
	if _, _, err := ex.Exec("insert into EMP (eid, name, sal, age, did) values (50, 'No Age', 1, NULL, 10)"); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Query("select e.name, e.age from EMP e order by e.age")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("ascending: NULL should sort first, got %v", res.Rows[0])
	}
	res, err = ex.Query("select e.name, e.age from EMP e order by e.age desc")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[len(res.Rows)-1][1].IsNull() {
		t.Errorf("descending: NULL should sort last")
	}
}

func TestOrderByAlias(t *testing.T) {
	ex := evalEngine(t)
	res, err := ex.Query("select e.name, e.sal as pay from EMP e order by pay desc limit 1")
	if err != nil || res.Rows[0][0].Text() != "Ada Papadaki" {
		t.Errorf("order by alias: %v, %v", res.Rows, err)
	}
}

func TestViewOverView(t *testing.T) {
	ex := evalEngine(t)
	if _, _, err := ex.Exec("create view WELL_PAID as select e.eid, e.name, e.sal from EMP e where e.sal > 90000"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.Exec("create view TOP_NAMES as select w.name from WELL_PAID w"); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Query("select t.name from TOP_NAMES t order by t.name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("view-over-view rows = %d:\n%s", len(res.Rows), res.String())
	}
}

func TestStrayHavingWithoutGroupBy(t *testing.T) {
	ex := evalEngine(t)
	// HAVING without GROUP BY treats the whole input as one group.
	res, err := ex.Query("select count(*) from EMP e having count(*) > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("having filtered nothing: %v", res.Rows)
	}
}
