package engine

import (
	"bytes"
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/leakcheck"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// pollCancelCtx is a deterministic cancellation source: its Err() flips to
// context.Canceled after a scripted number of polls. Budgets poll Err() at
// every Step, so "cancel after N polls" lands the trip at a precise,
// repeatable point inside the execution loops — including mid-morsel inside
// parallel workers, which poll concurrently (the counter is atomic).
type pollCancelCtx struct {
	after int64
	polls atomic.Int64
	done  chan struct{}
}

func newPollCancelCtx(after int64) *pollCancelCtx {
	return &pollCancelCtx{after: after, done: make(chan struct{})}
}

func (c *pollCancelCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *pollCancelCtx) Done() <-chan struct{}       { return c.done }
func (c *pollCancelCtx) Value(any) any               { return nil }
func (c *pollCancelCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// budgetAfter binds ex to a budget that cancels after n polls and returns
// both. after = 1<<62 never trips and is used to count a query's polls.
func budgetAfter(ex *Engine, n int64) (*Engine, *pollCancelCtx) {
	ctx := newPollCancelCtx(n)
	return ex.WithBudget(budget.New(ctx, 0, 0)), ctx
}

// cancelTestDB is a generated movie DB big enough to trip the parallel and
// vectorized paths once thresholds are lowered.
func cancelTestDB(t testing.TB) *storage.Database {
	t.Helper()
	cfg := dataset.DefaultGenConfig()
	cfg.Movies = 600
	db, err := dataset.GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCancelDifferentialRandomPoints is the randomized cancel-point
// differential: for every corpus query, cancelling at any poll either
// returns the exact uncancelled answer (the trip came after the last poll)
// or a *CancelError — never a wrong answer, a partial row set, or a hang.
// Run with -race this also proves parallel workers racing a mid-morsel trip
// stay sound.
func TestCancelDifferentialRandomPoints(t *testing.T) {
	defer leakcheck.Check(t)()
	db := cancelTestDB(t)

	oldThreshold := parallelThreshold
	parallelThreshold = 64
	defer func() { parallelThreshold = oldThreshold }()
	oldMorsel := morselRows
	morselRows = 128
	defer func() { morselRows = oldMorsel }()

	eng := New(db)
	rng := rand.New(rand.NewSource(42))
	for _, q := range parallelCorpus {
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		baseline, err := eng.Select(sel)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		baseline = cloneResult(baseline)

		// Count the query's polls with a budget that never trips; also a
		// differential in itself — an untripped budget must not change rows.
		counted, ctr := budgetAfter(eng, 1<<62)
		res, err := counted.Select(sel)
		if err != nil {
			t.Fatalf("%s with inert budget: %v", q, err)
		}
		sameResult(t, q, baseline, res)
		polls := ctr.polls.Load()
		if polls == 0 {
			t.Fatalf("%s: execution never polled its budget", q)
		}

		// Random cancel points, plus the edges: first poll and last poll.
		points := []int64{0, polls - 1}
		for i := 0; i < 12; i++ {
			points = append(points, rng.Int63n(polls))
		}
		for _, p := range points {
			bex, _ := budgetAfter(eng, p)
			res, err := bex.Select(sel)
			switch {
			case err == nil:
				sameResult(t, q, baseline, res)
			case !IsCancel(err):
				t.Fatalf("%s cancelled at poll %d/%d: non-cancel error %v", q, p, polls, err)
			}
		}
	}
}

// TestCancelDMLLossFree is the DML half of the differential: a cancelled
// INSERT/UPDATE/DELETE must leave the table byte-identical to never having
// run, and a completed one must be byte-identical to the uncancelled run.
// Never half of each.
func TestCancelDMLLossFree(t *testing.T) {
	defer leakcheck.Check(t)()
	stmts := []struct{ name, sql, rel string }{
		{"insert-select", `insert into GENRE (mid, genre) select distinct c.mid, 'cancelled' from CAST c where c.aid < 40`, "GENRE"},
		{"insert-values", `insert into DIRECTOR (id, name) values (9001, 'A'), (9002, 'B'), (9003, 'C')`, "DIRECTOR"},
		{"update", `update MOVIES m set year = year + 1 where m.year > 1980`, "MOVIES"},
		{"delete", `delete from GENRE g where g.genre = 'drama'`, "GENRE"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range stmts {
		t.Run(tc.name, func(t *testing.T) {
			stmt, err := sqlparser.Parse(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			// The uncancelled outcome, on its own database.
			wantDB := cancelTestDB(t)
			wantEng := New(wantDB)
			_, wantN, err := wantEng.ExecStatement(stmt)
			if err != nil {
				t.Fatal(err)
			}
			if wantN == 0 {
				t.Fatalf("%s: statement affects no rows; test is vacuous", tc.name)
			}
			wantAfter := dumpTable(t, wantDB, tc.rel)

			// Poll count for this statement on a fresh database.
			countDB := cancelTestDB(t)
			countEng, ctr := budgetAfter(New(countDB), 1<<62)
			if _, _, err := countEng.ExecStatement(stmt); err != nil {
				t.Fatal(err)
			}
			polls := ctr.polls.Load()
			if polls == 0 {
				t.Fatalf("%s: DML never polled its budget", tc.name)
			}
			if got := dumpTable(t, countDB, tc.rel); got != wantAfter {
				t.Fatalf("%s: inert budget changed the outcome", tc.name)
			}

			points := []int64{0, polls - 1}
			for i := 0; i < 8; i++ {
				points = append(points, rng.Int63n(polls))
			}
			for _, p := range points {
				db := cancelTestDB(t)
				before := dumpTable(t, db, tc.rel)
				bex, _ := budgetAfter(New(db), p)
				_, n, err := bex.ExecStatement(stmt)
				after := dumpTable(t, db, tc.rel)
				switch {
				case err == nil:
					if n != wantN {
						t.Fatalf("%s at poll %d: affected %d rows, want %d", tc.name, p, n, wantN)
					}
					if after != wantAfter {
						t.Fatalf("%s at poll %d: completed run diverged from uncancelled outcome", tc.name, p)
					}
				case IsCancel(err):
					if after != before {
						t.Fatalf("%s cancelled at poll %d/%d: table changed — cancellation left a trace", tc.name, p, polls)
					}
				default:
					t.Fatalf("%s at poll %d: non-cancel error %v", tc.name, p, err)
				}
			}
		})
	}
}

func dumpTable(t *testing.T, db *storage.Database, rel string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := db.DumpCSV(rel, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCancelErrorNarratesProgress pins the error surface: a deadline trip
// reports cause, elapsed time, and the examined/total row counters the
// narration layer renders.
func TestCancelErrorNarratesProgress(t *testing.T) {
	db := cancelTestDB(t)
	eng, _ := budgetAfter(New(db), 2)
	sel, err := sqlparser.ParseSelect(`select m.title from MOVIES m where m.year > 1900`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Select(sel)
	if err == nil {
		t.Fatal("query with a 2-poll budget completed")
	}
	ce, ok := err.(*CancelError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if ce.Cause != CauseCancelled {
		t.Fatalf("cause %q, want %q", ce.Cause, CauseCancelled)
	}
	if ce.TotalRows == 0 {
		t.Fatal("cancel error lost the planned total-rows counter")
	}
}

// TestRowQuotaTrips pins the quota half of the budget: no context at all,
// just a rows-examined ceiling.
func TestRowQuotaTrips(t *testing.T) {
	db := cancelTestDB(t)
	eng := New(db).WithBudget(budget.New(context.Background(), 10, 0))
	sel, err := sqlparser.ParseSelect(`select m.title from MOVIES m where m.year > 1900`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Select(sel)
	ce, ok := err.(*CancelError)
	if !ok {
		t.Fatalf("error %v (%T), want row-quota CancelError", err, err)
	}
	if ce.Cause != CauseRowQuota || ce.Limit != 10 {
		t.Fatalf("cause %q limit %d, want %q limit 10", ce.Cause, ce.Limit, CauseRowQuota)
	}
}
