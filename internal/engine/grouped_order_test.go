package engine

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sqlparser"
)

// bothPipelines runs fn once with the planner on and once forced naive.
func bothPipelines(t *testing.T, ex *Engine, fn func(t *testing.T)) {
	t.Helper()
	ex.SetPlannerEnabled(true)
	t.Run("planned", fn)
	ex.SetPlannerEnabled(false)
	t.Run("naive", fn)
	ex.SetPlannerEnabled(true)
}

// TestOrderByOrdinal pins the ordinal ORDER BY bugfix: `ORDER BY 2 DESC`
// must sort by the second select-list column. Before the fix the integer
// literal evaluated to a constant key and the stable sort silently left the
// rows in FROM order.
func TestOrderByOrdinal(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	bothPipelines(t, ex, func(t *testing.T) {
		res, err := ex.Query("select m.title, m.year from MOVIES m order by 2 desc, 1 asc")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) < 3 {
			t.Fatalf("want the full table, got %d rows", len(res.Rows))
		}
		for i := 1; i < len(res.Rows); i++ {
			prev, cur := res.Rows[i-1], res.Rows[i]
			if prev[1].Int() < cur[1].Int() {
				t.Fatalf("row %d: year %d before %d — ordinal ORDER BY 2 DESC did not sort", i, prev[1].Int(), cur[1].Int())
			}
			if prev[1].Int() == cur[1].Int() && prev[0].Text() > cur[0].Text() {
				t.Fatalf("row %d: title tiebreak not ascending", i)
			}
		}
		// The sort must actually have moved something: the max year leads.
		first := res.Rows[0][1].Int()
		for _, r := range res.Rows {
			if r[1].Int() > first {
				t.Fatalf("first row year %d is not the maximum %d", first, r[1].Int())
			}
		}
	})
}

// TestOrderByOrdinalOutOfRange: out-of-range and non-positive ordinals are
// errors, identically on both pipelines.
func TestOrderByOrdinalOutOfRange(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	for _, sql := range []string{
		"select m.title, m.year from MOVIES m order by 3",
		"select m.title from MOVIES m order by 0",
		"select m.title from MOVIES m order by -1 desc",
	} {
		comparePlannedNaive(t, ex, sql)
		if _, err := ex.Query(sql); err == nil || !strings.Contains(err.Error(), "not in the select list") {
			t.Errorf("%s: want out-of-range ordinal error, got %v", sql, err)
		}
	}
	// A non-integer literal stays a constant key: no error, original order.
	comparePlannedNaive(t, ex, "select m.title from MOVIES m order by 'a' desc")
}

// TestOrderByAggregateGrouped pins the second bugfix: ORDER BY over an
// aggregate that is not in the select list is standard SQL and must order
// the groups, on both pipelines.
func TestOrderByAggregateGrouped(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	for _, sql := range []string{
		"select g.genre from GENRE g group by g.genre order by count(*) desc, g.genre",
		"select g.genre, count(*) from GENRE g group by g.genre order by count(*) desc",
		"select g.genre from GENRE g group by g.genre order by sum(g.mid) desc limit 3",
		"select m.year from MOVIES m group by m.year order by count(*) desc, min(m.title)",
	} {
		comparePlannedNaive(t, ex, sql)
	}
	bothPipelines(t, ex, func(t *testing.T) {
		res, err := ex.Query("select g.genre from GENRE g group by g.genre order by count(*) desc, g.genre")
		if err != nil {
			t.Fatalf("ORDER BY <aggregate> rejected: %v", err)
		}
		if len(res.Rows) == 0 || res.Rows[0][0].Text() != "drama" {
			t.Fatalf("drama (5 movies) should sort first, got %v", res.Rows)
		}
	})
}

// TestGroupedColumnRule pins the third bugfix: a select item or HAVING term
// referencing a column that is neither grouped nor aggregated is an error,
// not a silent first-row lookup.
func TestGroupedColumnRule(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	bad := []string{
		"select m.title, count(*) from MOVIES m group by m.year",
		"select m.year, count(*) from MOVIES m group by m.year having m.title = 'x'",
		"select m.title from MOVIES m group by m.year order by m.title",
		"select m.title, count(*) from MOVIES m",
	}
	for _, sql := range bad {
		comparePlannedNaive(t, ex, sql)
		if _, err := ex.Query(sql); err == nil || !strings.Contains(err.Error(), "must appear in GROUP BY or an aggregate") {
			t.Errorf("%s: want grouping-rule error, got %v", sql, err)
		}
	}
	good := []string{
		// Unqualified select item matching a qualified GROUP BY column.
		"select year, count(*) from MOVIES m group by m.year",
		// Grouping expression reused verbatim.
		"select m.year + 1, count(*) from MOVIES m group by m.year + 1",
		// Correlated subquery in HAVING referencing a grouped column (Q7).
		sqlparser.PaperQueries["Q7"],
		// Grouping key only in HAVING and ORDER BY.
		"select count(*) from MOVIES m group by m.year having m.year > 1990 order by m.year",
	}
	for _, sql := range good {
		comparePlannedNaive(t, ex, sql)
		if _, err := ex.Query(sql); err != nil {
			t.Errorf("%s: legal grouped query rejected: %v", sql, err)
		}
	}
}

// TestGroupedStreamingCompiles is a white-box check that the common grouped
// shapes take the streaming compiled path, and subquery-bearing ones fall
// back to the environment evaluator (both correct, only speed differs).
func TestGroupedStreamingCompiles(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	compiles := func(sql string) bool {
		t.Helper()
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := ex.flattenFrom(sel.From)
		if err != nil {
			t.Fatal(err)
		}
		plan := ex.planFor(sel, entries, false)
		if plan.Fallback {
			t.Fatalf("%s: unexpected planner fallback: %s", sql, plan.Reason)
		}
		pq := ex.compilePlan(plan, nil)
		items, _, err := expandItems(sel, entries)
		if err != nil {
			t.Fatal(err)
		}
		_, ok := newGroupedExec(sel, entries, pq, items)
		return ok
	}
	for _, sql := range []string{
		"select g.genre, count(*) from GENRE g group by g.genre",
		"select g.genre, count(distinct g.mid), sum(g.mid), avg(g.mid), min(g.mid), max(g.mid) from GENRE g group by g.genre having count(*) > 1 order by count(*) desc",
		"select m.year, count(*) from MOVIES m, GENRE g where m.id = g.mid group by m.year order by 2 desc",
	} {
		if !compiles(sql) {
			t.Errorf("%s: expected the streaming grouped path", sql)
		}
	}
	for _, sql := range []string{
		sqlparser.PaperQueries["Q7"], // scalar subquery in HAVING
		"select count(*) from MOVIES m group by m.year having exists (select * from GENRE g where g.mid = m.id)",
	} {
		if compiles(sql) {
			t.Errorf("%s: subquery HAVING should take the environment path", sql)
		}
	}
}

// TestDistinctOrderLimitDifferential covers DISTINCT interacting with ORDER
// BY and LIMIT: row/env (and group) alignment is dropped after dedup, so
// expression order keys must work through the select list or fail
// identically on both pipelines.
func TestDistinctOrderLimitDifferential(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	for _, sql := range []string{
		"select distinct m.year from MOVIES m order by m.year desc",
		"select distinct m.year from MOVIES m order by 1 desc limit 4",
		"select distinct m.year from MOVIES m order by m.year desc limit 0",
		"select distinct c.role from CAST c order by c.role limit 5",
		// Expression key resolvable through the select list.
		"select distinct m.year + 1 from MOVIES m order by m.year + 1 limit 3",
		// Expression key NOT in the select list: must error identically.
		"select distinct m.title from MOVIES m order by m.year desc limit 5",
		// Grouped + DISTINCT + aggregate key not in the select list: ditto.
		"select distinct g.genre from GENRE g group by g.genre order by count(*)",
		// Grouped + DISTINCT with a select-list aggregate key.
		"select distinct count(*) from GENRE g group by g.genre order by count(*) desc limit 2",
		"select distinct a.name from CAST c, ACTOR a where c.aid = a.id order by a.name limit 7",
	} {
		comparePlannedNaive(t, ex, sql)
	}
}

// TestTopKMatchesFullSort pins heap/stable-sort equivalence on tie-heavy
// data: top-K with LIMIT must return exactly the stable-sorted prefix.
func TestTopKMatchesFullSort(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 33, Movies: 400, Actors: 60, Directors: 7, CastPerMovie: 2, GenresPerMovie: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	for _, q := range []struct{ sql, unlimited string }{
		// genre has massive ties; nothing else breaks them — stability decides.
		{"select g.genre, m.title from MOVIES m, GENRE g where m.id = g.mid order by g.genre limit 25",
			"select g.genre, m.title from MOVIES m, GENRE g where m.id = g.mid order by g.genre"},
		{"select m.year, m.title from MOVIES m order by m.year desc limit 10",
			"select m.year, m.title from MOVIES m order by m.year desc"},
		{"select m.year from MOVIES m order by m.year limit 1",
			"select m.year from MOVIES m order by m.year"},
		{"select m.year, count(*) from MOVIES m group by m.year order by count(*) desc, m.year limit 5",
			"select m.year, count(*) from MOVIES m group by m.year order by count(*) desc, m.year"},
	} {
		comparePlannedNaive(t, ex, q.sql)
		limited, err := ex.Query(q.sql)
		if err != nil {
			t.Fatal(err)
		}
		full, err := ex.Query(q.unlimited)
		if err != nil {
			t.Fatal(err)
		}
		if len(limited.Rows) > len(full.Rows) {
			t.Fatalf("%s: more rows than the unlimited sort", q.sql)
		}
		for i := range limited.Rows {
			for j := range limited.Rows[i] {
				a, b := limited.Rows[i][j], full.Rows[i][j]
				if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
					t.Fatalf("%s: top-K row %d differs from the stable-sorted prefix", q.sql, i)
				}
			}
		}
	}
}

// TestLimitPushdownErrorParity pins a review finding: LIMIT pushdown must
// not swallow a projection error the naive pipeline raises on a row past
// the bound — pushdown is legal only when no projection expression can
// error.
func TestLimitPushdownErrorParity(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	for _, sql := range []string{
		// The scalar subquery is multi-row for later movies only.
		"select (select g.genre from GENRE g where g.mid = m.id) from MOVIES m limit 1",
		// Unknown column must error even under LIMIT 0.
		"select t.missing from MOVIES t limit 0",
		// Erroring arithmetic past the bound.
		"select m.year / (m.id - 100) from MOVIES m limit 1",
		// Pure projections still push the limit down and agree.
		"select m.title, m.year from MOVIES m limit 2",
	} {
		comparePlannedNaive(t, ex, sql)
	}
}
