package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/planner"
	"repro/internal/querytotext"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file proves that zone-map scan pruning never changes an answer: every
// query runs with zone maps on, with zone maps off, and on the forced-naive
// pipeline, and all three must agree byte for byte. The table spans several
// storage zones (the pruning gate needs at least planner.MorselRows rows) with
// clustered columns so morsels really do get skipped, plus NULLs and float
// NaNs so the conservative verdict paths get exercised.

const zoneTestRows = 3*storage.ZoneRows + 700

// zoneTestDB builds a multi-zone table with row-clustered values: id is
// sequential, grp and s cluster in row order (so zone bounds are tight), d
// ascends, f carries NULLs, NaNs and negative zeros, n carries NULLs.
func zoneTestDB(t testing.TB, sortedDict bool) *storage.Database {
	t.Helper()
	schema := catalog.NewSchema("zones")
	if err := schema.AddRelation(&catalog.Relation{
		Name: "Z",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "grp", Type: catalog.Int, NotNull: true},
			{Name: "n", Type: catalog.Int},
			{Name: "f", Type: catalog.Float},
			{Name: "s", Type: catalog.Text},
			{Name: "d", Type: catalog.Date},
			{Name: "b", Type: catalog.Bool},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	db, err := storage.NewDatabase(schema)
	if err != nil {
		t.Fatal(err)
	}
	if sortedDict {
		if err := db.EnableSortedDict("Z", "s"); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(991))
	for i := 0; i < zoneTestRows; i++ {
		n := value.NewInt(int64(rng.Intn(50)))
		if rng.Intn(8) == 0 {
			n = value.NewNull()
		}
		f := value.NewFloat(float64(i) / 100)
		switch rng.Intn(40) {
		case 0:
			f = value.NewNull()
		case 1:
			f = value.NewFloat(math.NaN())
		case 2:
			f = value.NewFloat(math.Copysign(0, -1))
		}
		s := value.NewText(fmt.Sprintf("c%03d-w%d", i/512, rng.Intn(6)))
		if rng.Intn(16) == 0 {
			s = value.NewNull()
		}
		tup := storage.Tuple{
			value.NewInt(int64(i)),
			value.NewInt(int64(i / 512)),
			n,
			f,
			s,
			value.NewDateDays(int64(i / 8)),
			value.NewBool(i%7 == 0),
		}
		if err := db.Insert("Z", tup); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// compareZoneModes runs sql with zone maps enabled, disabled, and on the
// naive pipeline, requiring identical output (order included) in all three.
func compareZoneModes(t *testing.T, ex *Engine, sql string) {
	t.Helper()
	ex.SetZoneMapsEnabled(true)
	zoned, errZ := ex.Query(sql)
	ex.SetZoneMapsEnabled(false)
	plain, errP := ex.Query(sql)
	ex.SetZoneMapsEnabled(true)

	if (errZ != nil) != (errP != nil) {
		t.Fatalf("%s\nzoned err = %v, plain err = %v", sql, errZ, errP)
	}
	if errZ == nil {
		requireSameResult(t, sql, "zoned", zoned, "plain", plain)
	}
	comparePlannedNaive(t, ex, sql)
}

func requireSameResult(t *testing.T, sql, aName string, a *Result, bName string, b *Result) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("%s\ncolumns: %s %v, %s %v", sql, aName, a.Columns, bName, b.Columns)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s\n%s %d rows, %s %d rows", sql, aName, len(a.Rows), bName, len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			x, y := a.Rows[i][j], b.Rows[i][j]
			if x.IsNull() != y.IsNull() || (!x.IsNull() && !x.Equal(y)) {
				t.Fatalf("%s\nrow %d col %d: %s %s, %s %s", sql, i, j, aName, x, bName, y)
			}
		}
	}
}

// TestZoneSkipDifferentialRandomized sweeps the zone-probe dialect — ordering
// and equality on every kind, IS NULL, BETWEEN, IN, LIKE prefixes, floats
// with NaN — over the multi-zone clustered table, with and without a sorted
// dictionary on the text column.
func TestZoneSkipDifferentialRandomized(t *testing.T) {
	for _, sorted := range []bool{false, true} {
		name := "plain-dict"
		if sorted {
			name = "sorted-dict"
		}
		t.Run(name, func(t *testing.T) {
			ex := New(zoneTestDB(t, sorted))
			rng := rand.New(rand.NewSource(113))
			ops := []string{"=", "!=", "<", "<=", ">", ">="}
			op := func() string { return ops[rng.Intn(len(ops))] }
			templates := []func() string{
				func() string {
					return fmt.Sprintf("select z.id from Z z where z.id %s %d", op(), rng.Intn(zoneTestRows))
				},
				func() string {
					return fmt.Sprintf("select z.id, z.grp from Z z where z.grp = %d", rng.Intn(30))
				},
				func() string {
					return fmt.Sprintf("select z.id from Z z where z.n %s %d", op(), rng.Intn(50))
				},
				func() string {
					return fmt.Sprintf("select z.id from Z z where z.f %s %d.25", op(), rng.Intn(130))
				},
				func() string {
					return fmt.Sprintf("select z.id, z.s from Z z where z.s %s 'c%03d-w2'", op(), rng.Intn(30))
				},
				func() string {
					return fmt.Sprintf("select z.id from Z z where z.s like 'c%03d-%%'", rng.Intn(30))
				},
				func() string {
					return fmt.Sprintf("select z.id from Z z where z.d %s DATE '1970-%02d-%02d'",
						op(), 1+rng.Intn(12), 1+rng.Intn(28))
				},
				func() string {
					return fmt.Sprintf("select z.id from Z z where z.b = %v and z.id < %d",
						rng.Intn(2) == 0, rng.Intn(zoneTestRows))
				},
				func() string {
					neg := ""
					if rng.Intn(2) == 0 {
						neg = " not"
					}
					return fmt.Sprintf("select z.id from Z z where z.f is%s null and z.id < %d",
						neg, 1+rng.Intn(zoneTestRows))
				},
				func() string {
					lo := rng.Intn(zoneTestRows)
					neg := ""
					if rng.Intn(2) == 0 {
						neg = "not "
					}
					return fmt.Sprintf("select z.id from Z z where z.id %sbetween %d and %d", neg, lo, lo+600)
				},
				func() string {
					neg := ""
					if rng.Intn(2) == 0 {
						neg = "not "
					}
					items := fmt.Sprintf("%d, %d", rng.Intn(30), rng.Intn(30))
					if rng.Intn(3) == 0 {
						items += ", null"
					}
					return fmt.Sprintf("select z.id from Z z where z.grp %sin (%s)", neg, items)
				},
				func() string {
					return fmt.Sprintf("select z.id from Z z where z.s in ('c001-w1', 'c%03d-w%d', 'absent')",
						rng.Intn(30), rng.Intn(6))
				},
				func() string {
					// Conjunction across kinds: several probes must agree.
					return fmt.Sprintf("select z.id from Z z where z.id < %d and z.grp >= %d and z.s like 'c00%d-%%'",
						rng.Intn(zoneTestRows), rng.Intn(10), rng.Intn(10))
				},
				func() string {
					// Vec prefix + generic conjunct: probes only cover the prefix.
					return fmt.Sprintf("select z.id from Z z where z.id < %d and z.id + z.grp > %d",
						rng.Intn(zoneTestRows), rng.Intn(100))
				},
				func() string {
					// Shaping on top of the pruned scan.
					return fmt.Sprintf("select z.id, z.n from Z z where z.id < %d order by z.n desc, z.id limit %d",
						512+rng.Intn(1024), 1+rng.Intn(20))
				},
				func() string {
					// Grouped: pruned scan under the fused vec-aggregate.
					return fmt.Sprintf("select z.grp, count(*), sum(z.n) from Z z where z.id < %d group by z.grp order by z.grp",
						256+rng.Intn(2048))
				},
			}
			for trial := 0; trial < 120; trial++ {
				compareZoneModes(t, ex, templates[trial%len(templates)]())
			}
		})
	}
}

// TestZoneSkipExplain pins the acceptance surface: a selective scan over the
// clustered table carries a zone-skip shape step that reports skipping most
// morsels, EXPLAIN narrates it, and an unselective scan carries none.
func TestZoneSkipExplain(t *testing.T) {
	ex := New(zoneTestDB(t, false))
	wantZones := (zoneTestRows + planner.MorselRows - 1) / planner.MorselRows

	sel := mustParse(t, "select z.id from Z z where z.id < 600")
	res, plan, err := ex.SelectExplained(sel)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fallback {
		t.Fatalf("fallback: %s", plan.Reason)
	}
	var zs *planner.ShapeStep
	for _, sh := range plan.Shape {
		if sh.Kind == planner.ShapeZoneSkip {
			zs = sh
		}
	}
	if zs == nil {
		t.Fatalf("no zone-skip step in shape of selective scan; fingerprint %s", plan.Fingerprint())
	}
	if zs.K != wantZones {
		t.Fatalf("zone-skip K = %d, want %d morsels", zs.K, wantZones)
	}
	// id < 600 lives entirely in the first zone: all but one morsel skipped.
	if zs.ActualRows != wantZones-1 {
		t.Fatalf("zone-skip ActualRows = %d, want %d skipped", zs.ActualRows, wantZones-1)
	}
	if len(res.Rows) != 600 {
		t.Fatalf("result rows = %d, want 600", len(res.Rows))
	}
	if !strings.Contains(plan.Fingerprint(), ">zskip") {
		t.Fatalf("fingerprint %q lacks >zskip", plan.Fingerprint())
	}

	text := querytotext.PlanEnglish(plan.Summarize())
	want := fmt.Sprintf("skipped %d of %d morsels", wantZones-1, wantZones)
	if !strings.Contains(text, want) {
		t.Fatalf("plan narration %q lacks %q", text, want)
	}
	if !strings.Contains(text, "The query produced 600 rows") {
		t.Fatalf("plan narration %q lacks produced count", text)
	}

	// An unselective filter fails the planner's selectivity gate.
	selAll := mustParse(t, "select z.id from Z z where z.id >= 0")
	if _, planAll, err := ex.SelectExplained(selAll); err != nil {
		t.Fatal(err)
	} else if hasZoneSkip(planAll) {
		t.Fatalf("unselective scan kept a zone-skip step: %s", planAll.Fingerprint())
	}

	// With zone maps disabled the engine removes the step in place.
	ex.SetZoneMapsEnabled(false)
	defer ex.SetZoneMapsEnabled(true)
	if _, planOff, err := ex.SelectExplained(mustParse(t, "select z.id from Z z where z.id < 600")); err != nil {
		t.Fatal(err)
	} else if hasZoneSkip(planOff) {
		t.Fatalf("disabled zone maps left a zone-skip step: %s", planOff.Fingerprint())
	}
}

// TestZoneSkipCounters pins the process-wide skip counters benchmarks assert.
func TestZoneSkipCounters(t *testing.T) {
	ex := New(zoneTestDB(t, false))
	ResetZoneSkipStats()
	if _, err := ex.Query("select z.id from Z z where z.id < 600"); err != nil {
		t.Fatal(err)
	}
	probed, skipped := ZoneSkipStats()
	if probed == 0 || skipped == 0 {
		t.Fatalf("zone counters not engaged: probed %d skipped %d", probed, skipped)
	}
	if skipped > probed {
		t.Fatalf("skipped %d > probed %d", skipped, probed)
	}
}

// TestZoneSkipParallelShrunkMorsels shrinks the engine's morsel size below
// the storage zone granularity so parallel workers claim sub-zone ranges; the
// zone walker must still prune correctly and count each zone exactly once.
func TestZoneSkipParallelShrunkMorsels(t *testing.T) {
	old := morselRows
	morselRows = 300
	defer func() { morselRows = old }()

	ex := New(zoneTestDB(t, false))
	ex.SetParallelism(4)
	defer ex.SetParallelism(0)

	for _, sql := range []string{
		"select z.grp, count(*), sum(z.n), min(z.s) from Z z where z.id < 900 group by z.grp order by z.grp",
		"select z.grp, avg(z.grp), count(z.f) from Z z where z.grp between 3 and 9 group by z.grp order by z.grp",
	} {
		compareZoneModes(t, ex, sql)
	}

	ResetZoneSkipStats()
	if _, err := ex.Query("select z.grp, count(*) from Z z where z.id < 900 group by z.grp"); err != nil {
		t.Fatal(err)
	}
	probed, _ := ZoneSkipStats()
	if want := int64((zoneTestRows + storage.ZoneRows - 1) / storage.ZoneRows); probed != want {
		t.Fatalf("parallel sub-zone morsels counted %d zones, want %d", probed, want)
	}
}

// TestLikeParityDifferential is the LIKE fuzzer: adversarial patterns —
// wildcards only, empty, escape-lookalikes (the dialect has no escapes, so
// backslash is literal), multi-byte runes, replacement characters, patterns
// with no prefix — must agree across the naive evaluator, the vectorized
// dictionary verdicts, the zone-map prefix pruning, and the sorted-dictionary
// rank range, in every combination.
func TestLikeParityDifferential(t *testing.T) {
	vocab := []string{
		"", "a", "ab", "abc", "abd", "ab%", "ab_", `ab\`, `a\%b`, "aBc",
		"prefix-one", "prefix-two", "prefixx", "préfix", "præfix",
		"中文字符", "中文", "日本語", "�odd", "odd�", "zz\xff",
	}
	schema := catalog.NewSchema("like")
	if err := schema.AddRelation(&catalog.Relation{
		Name: "L",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "s", Type: catalog.Text},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	for _, sorted := range []bool{false, true} {
		db, err := storage.NewDatabase(schema)
		if err != nil {
			t.Fatal(err)
		}
		if sorted {
			if err := db.EnableSortedDict("L", "s"); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(7))
		// Enough rows to clear the zone gate, clustered so prefixes prune.
		for i := 0; i < storage.ZoneRows+900; i++ {
			s := value.NewText(vocab[(i/512+rng.Intn(3))%len(vocab)])
			if rng.Intn(12) == 0 {
				s = value.NewNull()
			}
			if err := db.Insert("L", storage.Tuple{value.NewInt(int64(i)), s}); err != nil {
				t.Fatal(err)
			}
		}
		ex := New(db)

		patterns := []string{
			"", "%", "%%", "_", "__", "%_", "_%",
			"a%", "ab%", "abc", "ab_", "a_c", "a__",
			`ab\%`, `a\%b`, `\%`, `%\%%`,
			"prefix-%", "prefix%", "préf%", "præ%", "中%", "中文%", "日本語",
			"�%", "%�", "odd%", "zz%",
			"ab%c", "%fix-one", "p%x", "a%b%c",
		}
		for _, pat := range patterns {
			quoted := strings.ReplaceAll(pat, "'", "''")
			sql := fmt.Sprintf("select l.id from L l where l.s like '%s'", quoted)
			compareZoneModes(t, ex, sql)
		}
	}
}
