package engine

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

func movieEngine(t *testing.T) *Engine {
	t.Helper()
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	return New(db)
}

func empEngine(t *testing.T) *Engine {
	t.Helper()
	db, err := dataset.CuratedEmpDept()
	if err != nil {
		t.Fatal(err)
	}
	return New(db)
}

// col extracts one text column of the result, sorted, for order-insensitive
// assertions.
func col(t *testing.T, res *Result, idx int) []string {
	t.Helper()
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[idx].String())
	}
	sort.Strings(out)
	return out
}

func eq(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQ1PathQuery(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res, 0), []string{"Galaxy at War", "Star Raiders"})
}

func TestQ2SubgraphQuery(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q2"])
	if err != nil {
		t.Fatal(err)
	}
	// G. Loucas directs Star Raiders (action, Brad Pitt) and Galaxy at War
	// (action, Brad Pitt + Mark Hamill).
	eq(t, col(t, res, 0), []string{"Brad Pitt", "Brad Pitt", "Mark Hamill"})
}

func TestQ3MultiInstance(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q3"])
	if err != nil {
		t.Fatal(err)
	}
	// The Matrix casts actors 203, 204, 205 -> pairs (204,203), (205,203),
	// (205,204); Galaxy at War casts 200 and 210 -> (210, 200);
	// Match Point casts 201, 202 -> (202, 201);
	// Silent Autumn casts 301, 302 -> (302, 301).
	if len(res.Rows) != 6 {
		t.Fatalf("Q3 rows = %d:\n%s", len(res.Rows), res.String())
	}
	for _, row := range res.Rows {
		if row[0].Text() == row[1].Text() {
			t.Errorf("self pair %v", row)
		}
	}
}

func TestQ4Cyclic(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q4"])
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res, 0), []string{"Anna"})
}

func TestQ5NestedEqualsQ1(t *testing.T) {
	ex := movieEngine(t)
	r5, err := ex.Query(sqlparser.PaperQueries["Q5"])
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ex.Query(sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, r5, 0), col(t, r1, 0))
}

func TestQ6Division(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q6"])
	if err != nil {
		t.Fatal(err)
	}
	// Only Omnibus has every genre (action, drama, comedy, sci-fi,
	// adventure are the distinct genres... adventure belongs to King Kong,
	// so Omnibus must carry it too for the test to hold).
	// Omnibus lacks "adventure": with adventure in the genre set, no movie
	// has all genres unless Omnibus covers it. Check actual contents.
	distinct, err := ex.Query("select distinct g.genre from GENRE g")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{}
	if len(distinct.Rows) == 4 {
		want = []string{"Omnibus"}
	}
	_ = want
	// The curated DB has 5 distinct genres (adventure from King Kong), so
	// Q6 should return empty — a useful empty-answer case; the paper's
	// positive case is exercised after removing King Kong genres below.
	if len(res.Rows) != 0 {
		t.Fatalf("Q6 expected empty on curated data, got:\n%s", res.String())
	}
	// Delete the adventure genre rows; now Omnibus has all genres.
	if _, _, err := ex.Exec("delete from GENRE g where g.genre = 'adventure'"); err != nil {
		t.Fatal(err)
	}
	res2, err := ex.Query(sqlparser.PaperQueries["Q6"])
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res2, 0), []string{"Omnibus"})
}

func TestQ7AggregateWithHavingSubquery(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q7"])
	if err != nil {
		t.Fatal(err)
	}
	// Movies with >1 genre: The Matrix (action, sci-fi) and Omnibus (4).
	// Q7 counts cast per such movie: Matrix has 3, Omnibus has 1.
	if len(res.Rows) != 2 {
		t.Fatalf("Q7 rows:\n%s", res.String())
	}
	counts := map[string]int64{}
	for _, row := range res.Rows {
		counts[row[1].Text()] = row[2].Int()
	}
	if counts["The Matrix"] != 3 || counts["Omnibus"] != 1 {
		t.Errorf("Q7 counts = %v", counts)
	}
}

func TestQ8CountDistinctIdiom(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q8"])
	if err != nil {
		t.Fatal(err)
	}
	// Actors whose movies are all in one year: every single-movie actor
	// qualifies, plus 301 (two movies, both 2007).
	names := col(t, res, 1)
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	if !has("Nikos Papadopoulos") {
		t.Errorf("Q8 missing multi-movie same-year actor: %v", names)
	}
	if has("Brad Pitt") {
		t.Errorf("Q8 includes actor with movies in different years: %v", names)
	}
}

func TestQ9EarliestVersion(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q9"])
	if err != nil {
		t.Fatal(err)
	}
	// King Kong is the only repeated title; its earliest version (1933)
	// casts Fay Wray. Under strict SQL semantics the paper's Q9 also admits
	// every actor of a unique-title movie (<= ALL over an empty subquery is
	// true), so the discriminating assertions are: the 1933 actor is in,
	// the 1976/2005 actors are out.
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row[0].Text()] = true
	}
	if !names["Fay Wray"] {
		t.Errorf("Q9 missing earliest-version actor: %v", names)
	}
	if names["Jessica Lange"] || names["Naomi Watts"] {
		t.Errorf("Q9 includes later-version actors: %v", names)
	}
}

func TestQ0EmployeesOutearningManagers(t *testing.T) {
	ex := empEngine(t)
	res, err := ex.Query(sqlparser.PaperQueries["Q0"])
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res, 0), []string{"Ada Papadaki", "Omar Haddad"})
}

func TestSelectStarAndQualifiedStar(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select * from MOVIES m where m.id = 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || res.Columns[1] != "title" {
		t.Errorf("star columns = %v", res.Columns)
	}
	res2, err := ex.Query("select m.*, a.name from MOVIES m, CAST c, ACTOR a where m.id = c.mid and c.aid = a.id and m.id = 120")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Columns) != 4 || len(res2.Rows) != 3 {
		t.Errorf("qualified star = %v rows=%d", res2.Columns, len(res2.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select m.title, m.year from MOVIES m order by m.year desc, m.title asc limit 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Text() != "Omnibus" {
		t.Errorf("first = %v", res.Rows[0])
	}
	// Descending years.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].Int() > res.Rows[i-1][1].Int() {
			t.Errorf("not descending: %v", res.Rows)
		}
	}
}

func TestOrderByExpressionNotInSelect(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select m.title from MOVIES m where m.year > 2004 order by m.year")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if res.Rows[0][0].Text() != "Match Point" && res.Rows[0][0].Text() != "King Kong" {
		t.Errorf("first by year 2005 = %v", res.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select distinct g.genre from GENRE g")
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res, 0), []string{"action", "adventure", "comedy", "drama", "sci-fi"})
}

func TestAggregatesUngroupedWholeTable(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select count(*), min(m.year), max(m.year) from MOVIES m")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].Int() != 13 || row[1].Int() != 1933 || row[2].Int() != 2008 {
		t.Errorf("aggregates = %v", row)
	}
}

func TestSumAvg(t *testing.T) {
	ex := empEngine(t)
	res, err := ex.Query("select sum(e.sal), avg(e.age) from EMP e where e.did = 10")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Float() != 330000 {
		t.Errorf("sum = %v", row[0])
	}
	if row[1].Float() < 37 || row[1].Float() > 39 {
		t.Errorf("avg = %v", row[1])
	}
}

func TestGroupByHaving(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select g.mid, count(*) from GENRE g group by g.mid having count(*) > 1 order by g.mid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows:\n%s", res.String())
	}
	if res.Rows[0][0].Int() != 120 || res.Rows[0][1].Int() != 2 {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if res.Rows[1][0].Int() != 122 || res.Rows[1][1].Int() != 4 {
		t.Errorf("row1 = %v", res.Rows[1])
	}
}

func TestCountOnEmptyInput(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select count(*) from MOVIES m where m.year > 3000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 {
		t.Errorf("count on empty = %v", res.Rows)
	}
}

func TestCorrelatedExists(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(`select m.title from MOVIES m
		where exists (select * from GENRE g where g.mid = m.id and g.genre = 'sci-fi')`)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res, 0), []string{"Omnibus", "The Matrix"})
}

func TestScalarSubqueryInSelect(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(`select m.title, (select count(*) from GENRE g where g.mid = m.id) from MOVIES m where m.id = 122`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].Int() != 4 {
		t.Errorf("scalar subquery = %v", res.Rows[0])
	}
}

func TestQuantifiedAny(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(`select m.title from MOVIES m
		where m.year > any (select m2.year from MOVIES m2 where m2.title = 'King Kong') and m.title = 'King Kong'`)
	if err != nil {
		t.Fatal(err)
	}
	// 1976 and 2005 are each greater than at least one version's year.
	if len(res.Rows) != 2 {
		t.Errorf("any rows:\n%s", res.String())
	}
}

func TestInValueList(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select m.title from MOVIES m where m.year in (2003, 2004)")
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res, 0), []string{"Anything Else", "Melinda and Melinda"})
	res2, err := ex.Query("select m.title from MOVIES m where m.year not in (select m2.year from MOVIES m2 where m2.id != m.id)")
	if err != nil {
		t.Fatal(err)
	}
	// Movies whose year is unique: 2004(101), 2003(102), 2002(111),
	// 2001(121), 2008(122), 1933(130), 1976(131).
	if len(res2.Rows) != 7 {
		t.Errorf("unique-year rows:\n%s", res2.String())
	}
}

func TestLikeAndBetween(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select m.title from MOVIES m where m.title like 'M%' and m.year between 2004 and 2005")
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res, 0), []string{"Match Point", "Melinda and Melinda"})
	res2, err := ex.Query("select m.title from MOVIES m where m.title like '%in%'")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res2.Rows {
		if !strings.Contains(r[0].Text(), "in") {
			t.Errorf("LIKE mismatch %v", r)
		}
	}
	res3, err := ex.Query("select m.title from MOVIES m where m.title like 'Anna'")
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res3, 0), []string{"Anna"})
	res4, err := ex.Query("select m.title from MOVIES m where m.title like 'A__a'")
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res4, 0), []string{"Anna"})
}

func TestExplicitJoins(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(`select m.title, a.name from MOVIES m
		join CAST c on m.id = c.mid join ACTOR a on c.aid = a.id
		where m.id = 120 order by a.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][1].Text() != "Carrie-Anne Moss" {
		t.Errorf("join rows:\n%s", res.String())
	}
}

func TestLeftJoin(t *testing.T) {
	ex := empEngine(t)
	// Insert a department with no employees.
	if _, _, err := ex.Exec("insert into DEPT (did, dname, mgr) values (30, 'R and D', NULL)"); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Query(`select d.dname, e.name from DEPT d left join EMP e on e.did = d.did order by d.dname`)
	if err != nil {
		t.Fatal(err)
	}
	foundNull := false
	for _, row := range res.Rows {
		if row[0].Text() == "R and D" {
			foundNull = true
			if !row[1].IsNull() {
				t.Errorf("left join should null-extend, got %v", row)
			}
		}
	}
	if !foundNull {
		t.Error("left join dropped unmatched left row")
	}
}

func TestRightJoin(t *testing.T) {
	ex := empEngine(t)
	if _, _, err := ex.Exec("insert into DEPT (did, dname, mgr) values (30, 'R and D', NULL)"); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Query(`select e.name, d.dname from EMP e right join DEPT d on e.did = d.did`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[1].Text() == "R and D" && row[0].IsNull() {
			found = true
		}
	}
	if !found {
		t.Errorf("right join missing null-extended row:\n%s", res.String())
	}
}

func TestThreeValuedLogic(t *testing.T) {
	ex := empEngine(t)
	// age NULL row.
	if _, _, err := ex.Exec("insert into EMP (eid, name, sal, age, did) values (99, 'Null Agey', 1000, NULL, 10)"); err != nil {
		t.Fatal(err)
	}
	// NULL comparison excludes the row from both branches.
	r1, err := ex.Query("select e.name from EMP e where e.age > 30")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.Query("select e.name from EMP e where not (e.age > 30)")
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{r1, r2} {
		for _, row := range res.Rows {
			if row[0].Text() == "Null Agey" {
				t.Error("NULL row leaked through three-valued logic")
			}
		}
	}
	// IS NULL finds it.
	r3, err := ex.Query("select e.name from EMP e where e.age is null")
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, r3, 0), []string{"Null Agey"})
}

func TestCaseExpression(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query(`select m.title, case when m.year < 2000 then 'old' else 'new' end from MOVIES m where m.id in (100, 130)`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range res.Rows {
		got[row[0].Text()] = row[1].Text()
	}
	if got["Match Point"] != "new" || got["King Kong"] != "old" {
		t.Errorf("case = %v", got)
	}
}

func TestViews(t *testing.T) {
	ex := movieEngine(t)
	if _, _, err := ex.Exec("create view RECENT as select m.id, m.title from MOVIES m where m.year >= 2005"); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Query("select r.title from RECENT r order by r.title")
	if err != nil {
		t.Fatal(err)
	}
	eq(t, col(t, res, 0), []string{"King Kong", "Match Point", "Omnibus", "Quiet Winter", "Silent Autumn"})
	if err := ex.CreateView("RECENT", nil); err == nil {
		t.Error("duplicate view accepted")
	}
	if err := ex.CreateView("MOVIES", nil); err == nil {
		t.Error("view/table collision accepted")
	}
	if ex.View("recent") == nil {
		t.Error("view lookup case-insensitive")
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	ex := movieEngine(t)
	_, n, err := ex.Exec("insert into MOVIES (id, title, year) values (999, 'Test Movie', 2020)")
	if err != nil || n != 1 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	_, n, err = ex.Exec("update MOVIES m set year = year + 1 where m.id = 999")
	if err != nil || n != 1 {
		t.Fatalf("update = %d, %v", n, err)
	}
	res, err := ex.Query("select m.year from MOVIES m where m.id = 999")
	if err != nil || res.Rows[0][0].Int() != 2021 {
		t.Fatalf("post-update year = %v, %v", res.Rows, err)
	}
	_, n, err = ex.Exec("delete from MOVIES m where m.id = 999")
	if err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	res, _ = ex.Query("select count(*) from MOVIES m where m.id = 999")
	if res.Rows[0][0].Int() != 0 {
		t.Error("delete did not remove row")
	}
}

func TestInsertSelect(t *testing.T) {
	ex := empEngine(t)
	_, n, err := ex.Exec("insert into EMP (eid, name, sal, age, did) select e.eid + 100, e.name, e.sal, e.age, e.did from EMP e where e.did = 10")
	if err != nil || n != 3 {
		t.Fatalf("insert-select = %d, %v", n, err)
	}
}

func TestUpdateSimultaneousSemantics(t *testing.T) {
	ex := empEngine(t)
	// Swap-like update: sal = sal + age must use old sal.
	res, _ := ex.Query("select e.sal from EMP e where e.eid = 5")
	before := res.Rows[0][0].Float()
	if _, _, err := ex.Exec("update EMP e set sal = sal * 2, age = age + 1 where e.eid = 5"); err != nil {
		t.Fatal(err)
	}
	res, _ = ex.Query("select e.sal, e.age from EMP e where e.eid = 5")
	if res.Rows[0][0].Float() != before*2 || res.Rows[0][1].Int() != 30 {
		t.Errorf("update semantics: %v", res.Rows[0])
	}
}

func TestErrorCases(t *testing.T) {
	ex := movieEngine(t)
	bad := []string{
		"select * from NOPE n",
		"select m.nope from MOVIES m",
		"select nope from MOVIES m",
		"select m.title from MOVIES m, MOVIES m",                                             // dup alias
		"select id from MOVIES m, ACTOR a",                                                   // ambiguous
		"select m.title from MOVIES m where m.title > 5",                                     // cross-kind order
		"select count(*) from MOVIES m where count(*) > 1",                                   // agg in where
		"select m.title from MOVIES m where m.id = (select m2.id from MOVIES m2)",            // >1 row scalar
		"select m.title from MOVIES m where m.id in (select m2.id, m2.title from MOVIES m2)", // 2-col IN
		"update NOPE set x = 1",
		"delete from NOPE",
		"insert into NOPE values (1)",
		"insert into MOVIES (id, nope) values (1, 2)",
		"insert into MOVIES (id) values (1, 2)",
		"select m.title from MOVIES m where m.year / 0 = 1",
	}
	for _, src := range bad {
		if _, _, err := ex.Exec(src); err == nil {
			t.Errorf("Exec(%q) succeeded", src)
		}
	}
}

func TestResultString(t *testing.T) {
	ex := movieEngine(t)
	res, err := ex.Query("select m.id, m.title from MOVIES m where m.id = 100")
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "Match Point") || !strings.Contains(s, "id") {
		t.Errorf("Result.String:\n%s", s)
	}
}

func TestGeneratedDBRuns(t *testing.T) {
	cfg := dataset.GenConfig{Seed: 7, Movies: 50, Actors: 30, Directors: 5, CastPerMovie: 2, GenresPerMovie: 2}
	db, err := dataset.GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, err := ex.Query("select count(*) from MOVIES m")
	if err != nil || res.Rows[0][0].Int() != 50 {
		t.Fatalf("generated movies = %v, %v", res.Rows, err)
	}
	// Determinism: same seed, same answer.
	db2, _ := dataset.GenerateMovieDB(cfg)
	ex2 := New(db2)
	q := "select count(*) from CAST c"
	r1, _ := ex.Query(q)
	r2, _ := ex2.Query(q)
	if r1.Rows[0][0].Int() != r2.Rows[0][0].Int() {
		t.Error("generator not deterministic")
	}
}

// Property: the engine's hash-join fast path agrees with a forced
// nested-loop (by obfuscating the equality predicate as x <= y and x >= y).
func TestHashJoinAgreesWithNestedLoopProperty(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{Seed: 11, Movies: 30, Actors: 20, Directors: 4, CastPerMovie: 2, GenresPerMovie: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	fast, err := ex.Query("select m.title, a.name from MOVIES m, CAST c, ACTOR a where m.id = c.mid and c.aid = a.id")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ex.Query("select m.title, a.name from MOVIES m, CAST c, ACTOR a where m.id <= c.mid and m.id >= c.mid and c.aid <= a.id and c.aid >= a.id")
	if err != nil {
		t.Fatal(err)
	}
	key := func(res *Result) []string {
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = r[0].Text() + "|" + r[1].Text()
		}
		sort.Strings(out)
		return out
	}
	eq(t, key(fast), key(slow))
}

// Property: DISTINCT is idempotent and never increases row count.
func TestDistinctProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		rows := make([]storage.Tuple, len(vals))
		for i, v := range vals {
			rows[i] = storage.Tuple{value.NewInt(int64(v % 8))}
		}
		d1 := distinctRows(append([]storage.Tuple{}, rows...))
		d2 := distinctRows(append([]storage.Tuple{}, d1...))
		if len(d1) > len(rows) || len(d2) != len(d1) {
			return false
		}
		seen := map[int64]bool{}
		for _, r := range d1 {
			if seen[r[0].Int()] {
				return false
			}
			seen[r[0].Int()] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LIKE with a pattern equal to the string (no wildcards) matches
// exactly, and '%' always matches.
func TestLikeProperty(t *testing.T) {
	f := func(s string) bool {
		clean := strings.ReplaceAll(strings.ReplaceAll(s, "%", ""), "_", "")
		return likeMatch(clean, clean) && likeMatch(clean, "%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkQ1Execution(b *testing.B) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		b.Fatal(err)
	}
	ex := New(db)
	sel, _ := sqlparser.ParseSelect(sqlparser.PaperQueries["Q1"])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Select(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinScale(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{Seed: 3, Movies: 500, Actors: 200, Directors: 20, CastPerMovie: 3, GenresPerMovie: 2})
	if err != nil {
		b.Fatal(err)
	}
	ex := New(db)
	sel, _ := sqlparser.ParseSelect("select m.title, a.name from MOVIES m, CAST c, ACTOR a where m.id = c.mid and c.aid = a.id")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Select(sel); err != nil {
			b.Fatal(err)
		}
	}
}
