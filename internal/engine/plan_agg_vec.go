package engine

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file is the fused vectorized-aggregation pipeline: grouped queries the
// planner marked vec-aggregate run scan → joins → grouping as one push-based
// loop over table positions, never materializing a joined row. Group keys and
// aggregate arguments read typed column vectors directly; accumulators are
// unboxed typed arrays indexed by a dense group number. Two tiers map a row
// to its group: when every key is dictionary- or range-codeable with a small
// combined domain, a flat array indexed by the composed code; otherwise a
// hash table over fixed-width packed key bytes. DISTINCT aggregates track
// per-group bitsets over the argument's code domain.
//
// Parallelism is morsel-driven: workers claim fixed-size ranges of base-table
// positions from an atomic cursor, aggregate into private states, and the
// merge orders groups by their first-seen (morsel, sequence) stamp — so
// parallel output is byte-identical to serial execution. The planner only
// schedules a parallel scan when every aggregate's partial states merge
// exactly (integer sums are associative; float sums qualify only when
// provably free of rounding), and the fused pipeline as a whole runs only
// when no predicate can raise an error, so the worker count can never change
// results or error behavior.
//
// Naive-pipeline parity details: integer group keys and MIN/MAX comparisons
// go through float64 images, because that is how the generic pipeline's
// encoded keys and value.Compare behave; MIN/MAX ties keep the first-seen
// payload (tracked by stamp in parallel mode); AVG divides the same float
// sum the naive accumulator builds, row by row in serial mode and merged
// only when merging is exact.

// morselRows is the number of base-table positions one morsel covers. A
// variable so tests can shrink it to force multi-morsel scheduling on small
// tables; production keeps the planner's constant.
var morselRows = planner.MorselRows

const (
	// maxArrayDomain bounds the composed group-code domain of the flat
	// array tier (the per-state lookup array is this long at worst).
	maxArrayDomain = uint64(1) << 16
	// maxBitsetDomain bounds DISTINCT bitset width, mirroring the planner.
	maxBitsetDomain = int64(planner.MaxBitsetDomain)
	// exactInt bounds the float64-exact integer range: distinct int64
	// payloads beyond it can share one float image.
	exactInt = int64(1) << 53
)

// ---------------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------------

// vecKey is one GROUP BY column: its owning step and attribute position,
// cached typed vectors, and the array-tier coding parameters (code 0 is
// reserved for NULL).
type vecKey struct {
	si   int
	pos  int
	col  storage.Col
	kind value.Kind
	ints []int64
	flts []float64
	cds  []uint32
	bls  []bool
	// array tier: code = payload - base + 1, stride its positional weight.
	base   int64
	stride uint64
}

// arrayCode maps the key's value at position ti onto its dense code.
func (k *vecKey) arrayCode(ti int) uint64 {
	if k.col.Null(ti) {
		return 0
	}
	switch k.kind {
	case value.Int, value.Date:
		return uint64(k.ints[ti]-k.base) + 1
	case value.Text:
		return uint64(k.cds[ti]) + 1
	default: // Bool (Float never reaches the array tier)
		if k.bls[ti] {
			return 2
		}
		return 1
	}
}

// pack appends the key's fixed-width (tag + 8 payload bytes) encoding at
// position ti. Integers pack their float64 image — the same identity the
// naive pipeline's encoded group keys use — and -0.0 collapses onto +0.0.
func (k *vecKey) pack(buf []byte, ti int) []byte {
	var tag byte
	var b uint64
	if !k.col.Null(ti) {
		tag = 1
		switch k.kind {
		case value.Int:
			b = math.Float64bits(float64(k.ints[ti]))
		case value.Date:
			b = uint64(k.ints[ti])
		case value.Float:
			f := k.flts[ti]
			if f == 0 {
				f = 0 // collapse -0 and +0, like value.AppendKey
			}
			b = math.Float64bits(f)
		case value.Text:
			b = uint64(k.cds[ti])
		case value.Bool:
			if k.bls[ti] {
				b = 1
			}
		}
	}
	return append(buf, tag,
		byte(b>>56), byte(b>>48), byte(b>>40), byte(b>>32),
		byte(b>>24), byte(b>>16), byte(b>>8), byte(b))
}

// vecAgg is one distinct aggregate expression compiled onto a column.
type vecAgg struct {
	fn       sqlparser.AggFunc
	star     bool // no argument: the group row count
	distinct bool // tracked through a per-group bitset
	si       int
	col      storage.Col
	kind     value.Kind
	ints     []int64
	flts     []float64
	cds      []uint32
	bls      []bool
	// exact reports the accumulator merges across partial states without
	// rounding — the per-aggregate condition for morsel parallelism.
	exact bool
	// DISTINCT bitset geometry: one bit per code, code = payload - setBase
	// (dictionary code for text, 0/1 for bool).
	setWords int
	setBase  int64
}

// distinctCode maps the argument value at ti onto its bitset position.
func (a *vecAgg) distinctCode(ti int) uint64 {
	switch a.kind {
	case value.Text:
		return uint64(a.cds[ti])
	case value.Bool:
		if a.bls[ti] {
			return 1
		}
		return 0
	default: // Int, Date
		return uint64(a.ints[ti] - a.setBase)
	}
}

// vecAggExec is a grouped query compiled for the fused pipeline.
type vecAggExec struct {
	pq     *plannedQuery
	keys   []vecKey
	aggs   []*vecAgg
	aggIdx map[string]int
	stats  []*storage.TableStats // lazy per-step snapshots
	// arrayTier selects the flat composed-code lookup; domain is its size.
	arrayTier bool
	domain    uint64
	keyW      int // hash tier: packed bytes per key vector
	parallel  bool
	// Post-aggregation program over the synthetic group row
	// [key values..., aggregate results...].
	having   rowEval
	items    []rowEval
	sortKeys []plannedSortKey
}

func (va *vecAggExec) statsOf(si int) *storage.TableStats {
	if va.stats[si] == nil {
		s := va.pq.plan.Steps[si].Input.Tbl.Stats()
		va.stats[si] = &s
	}
	return va.stats[si]
}

func (va *vecAggExec) allExact() bool {
	for _, a := range va.aggs {
		if !a.exact {
			return false
		}
	}
	return true
}

// slotOwner maps an absolute slot to its owning step and attribute position.
func (pq *plannedQuery) slotOwner(slot int) (int, int) {
	for si, st := range pq.plan.Steps {
		n := len(st.Input.Rel.Attributes)
		if slot >= st.Offset && slot < st.Offset+n {
			return si, slot - st.Offset
		}
	}
	return -1, -1
}

// cacheVectors fills the typed slice cache for a column of the given kind.
func cacheVectors(col storage.Col, kind value.Kind) (ints []int64, flts []float64, cds []uint32, bls []bool, ok bool) {
	switch kind {
	case value.Int, value.Date:
		return col.Ints(), nil, nil, nil, true
	case value.Float:
		return nil, col.Floats(), nil, nil, true
	case value.Text:
		return nil, nil, col.Codes(), nil, true
	case value.Bool:
		return nil, nil, nil, col.Bools(), true
	default:
		return nil, nil, nil, nil, false
	}
}

// ---------------------------------------------------------------------------
// Plan-shape bookkeeping
// ---------------------------------------------------------------------------

// vecAggStep finds the vec-aggregate shape step, if the planner scheduled one.
func vecAggStep(plan *planner.Plan) *planner.ShapeStep {
	for _, sh := range plan.Shape {
		if sh.Kind == planner.ShapeVecAggregate {
			return sh
		}
	}
	return nil
}

func hasParallelScan(plan *planner.Plan) bool {
	for _, sh := range plan.Shape {
		if sh.Kind == planner.ShapeParallelScan {
			return true
		}
	}
	return false
}

// downgradeVecAgg rewrites the plan's shape back to the generic aggregate —
// called when the engine cannot (or is told not to) run the fused pipeline,
// so EXPLAIN always narrates the execution that actually happened.
func downgradeVecAgg(plan *planner.Plan) {
	shape := plan.Shape[:0]
	for _, sh := range plan.Shape {
		if sh.Kind == planner.ShapeParallelScan {
			continue
		}
		if sh.Kind == planner.ShapeVecAggregate {
			sh.Kind = planner.ShapeAggregate
		}
		shape = append(shape, sh)
	}
	plan.Shape = shape
}

// removeParallelScan drops the parallel-scan step (the engine found a
// non-mergeable aggregate the planner's statistics missed).
func removeParallelScan(plan *planner.Plan) {
	shape := plan.Shape[:0]
	for _, sh := range plan.Shape {
		if sh.Kind != planner.ShapeParallelScan {
			shape = append(shape, sh)
		}
	}
	plan.Shape = shape
}

// setParallelScanActual records the scanned-row count on the parallel-scan
// shape step.
func setParallelScanActual(plan *planner.Plan, n int) {
	for _, sh := range plan.Shape {
		if sh.Kind == planner.ShapeParallelScan {
			sh.ActualRows = n
		}
	}
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

// tryVecAgg runs the fused vectorized aggregation when the plan carries a
// vec-aggregate shape step and the query compiles onto it. ok=false falls
// back to the streaming grouped pipeline (after downgrading the shape so the
// narrated plan stays truthful).
func (ex *Engine) tryVecAgg(sel *sqlparser.SelectStmt, entries []fromEntry, pq *plannedQuery) (*Result, bool, error) {
	plan := pq.plan
	if vecAggStep(plan) == nil {
		return nil, false, nil
	}
	if ex.st.noVecAgg.Load() {
		downgradeVecAgg(plan)
		return nil, false, nil
	}
	va, ok := pq.compileVecAgg(sel)
	if !ok {
		downgradeVecAgg(plan)
		return nil, false, nil
	}
	items, cols, err := expandItems(sel, entries)
	if err != nil {
		// The streaming path raises the identical error (its join phase
		// cannot fail under the vec gate), so just decline.
		return nil, false, nil
	}
	if !va.compilePost(sel, entries, items) {
		downgradeVecAgg(plan)
		return nil, false, nil
	}
	va.parallel = hasParallelScan(plan) && va.allExact() &&
		plan.Steps[0].Access == planner.ScanFull
	if hasParallelScan(plan) && !va.parallel {
		removeParallelScan(plan)
	}
	res, err := ex.runVecAgg(sel, pq, va, cols)
	return res, true, err
}

// compileVecAgg builds the structural half: pipeline invariants and the
// group-key columns with their tier parameters. ok=false means the planner's
// gate and the engine's compiler disagree — fall back.
func (pq *plannedQuery) compileVecAgg(sel *sqlparser.SelectStmt) (*vecAggExec, bool) {
	plan := pq.plan
	if plan.Reordered || len(pq.postEvals) > 0 {
		return nil, false
	}
	for si := range plan.Steps {
		if len(pq.stepSelf[si]) > 0 || len(pq.stepPost[si]) > 0 {
			return nil, false
		}
	}
	va := &vecAggExec{
		pq:     pq,
		aggIdx: map[string]int{},
		stats:  make([]*storage.TableStats, len(plan.Steps)),
	}
	for _, g := range sel.GroupBy {
		ref, ok := g.(*sqlparser.ColumnRef)
		if !ok || ref.Column == "*" {
			return nil, false
		}
		slot, ok := pq.slotOf(ref)
		if !ok {
			return nil, false
		}
		si, pos := pq.slotOwner(slot)
		if si < 0 {
			return nil, false
		}
		col := plan.Steps[si].Input.Tbl.Col(pos)
		k := vecKey{si: si, pos: pos, col: col, kind: col.Kind()}
		k.ints, k.flts, k.cds, k.bls, ok = cacheVectors(col, k.kind)
		if !ok {
			return nil, false
		}
		va.keys = append(va.keys, k)
	}

	// Tier decision: composed-code array when every key codes into a small
	// dense domain, packed-key hash otherwise.
	va.arrayTier = true
	va.domain = 1
	for i := range va.keys {
		k := &va.keys[i]
		card := va.keyCard(k)
		if card == 0 || va.domain > maxArrayDomain/card {
			va.arrayTier = false
			va.domain = 0
			break
		}
		k.stride = va.domain
		va.domain *= card
	}
	va.keyW = 9 * len(va.keys)
	return va, true
}

// keyCard computes the array-tier cardinality (values + the NULL slot) of
// one key and stores its code base. Zero means the key is outside the array
// dialect: floats, an unbounded integer span, or integer bounds past the
// float64-exact range (beyond it distinct int64 payloads can share one float
// image — one group under the naive pipeline's encoded keys, which dense
// integer codes would wrongly split).
func (va *vecAggExec) keyCard(k *vecKey) uint64 {
	switch k.kind {
	case value.Text:
		return uint64(k.col.DictLen()) + 1
	case value.Bool:
		return 3
	case value.Int, value.Date:
		at := &va.statsOf(k.si).Attrs[k.pos]
		if at.Min.IsNull() {
			return 1 // empty column: only the NULL code can occur
		}
		var lo, hi int64
		if k.kind == value.Int {
			lo, hi = at.Min.Int(), at.Max.Int()
			if lo <= -exactInt || hi >= exactInt {
				return 0
			}
		} else {
			lo, hi = at.Min.DateDays(), at.Max.DateDays()
		}
		span := uint64(hi - lo)
		if span >= maxArrayDomain {
			return 0
		}
		k.base = lo
		return span + 2
	default:
		return 0
	}
}

// addAgg registers (or reuses) the typed accumulator for one aggregate
// expression, applying the engine-authoritative gates the planner mirrored.
func (va *vecAggExec) addAgg(a *sqlparser.AggregateExpr) (int, bool) {
	key := a.SQL()
	if idx, ok := va.aggIdx[key]; ok {
		return idx, true
	}
	spec := &vecAgg{fn: a.Func, distinct: a.Distinct}
	if a.Arg == nil {
		spec.star, spec.exact, spec.distinct = true, true, false
	} else {
		ref, ok := a.Arg.(*sqlparser.ColumnRef)
		if !ok || ref.Column == "*" {
			return 0, false
		}
		slot, ok := va.pq.slotOf(ref)
		if !ok {
			return 0, false
		}
		si, pos := va.pq.slotOwner(slot)
		if si < 0 {
			return 0, false
		}
		col := va.pq.plan.Steps[si].Input.Tbl.Col(pos)
		spec.si, spec.col, spec.kind = si, col, col.Kind()
		spec.ints, spec.flts, spec.cds, spec.bls, ok = cacheVectors(col, spec.kind)
		if !ok {
			return 0, false
		}
		switch a.Func {
		case sqlparser.AggCount:
			spec.exact = true
			if spec.distinct && !va.distinctSetup(spec, pos) {
				return 0, false
			}
		case sqlparser.AggMin, sqlparser.AggMax:
			// MIN/MAX over distinct values is MIN/MAX: drop the bitset.
			spec.distinct = false
			spec.exact = true
		case sqlparser.AggSum, sqlparser.AggAvg:
			switch spec.kind {
			case value.Int:
				if spec.distinct {
					if !va.distinctSetup(spec, pos) {
						return 0, false
					}
					// The distinct sum is recomputed from the value set in
					// code order; integer sums are order-free, float (AVG)
					// sums must be provably exact to match the naive
					// first-seen accumulation.
					if a.Func == sqlparser.AggAvg && !va.avgExact(spec, pos, true) {
						return 0, false
					}
					spec.exact = true
				} else {
					spec.exact = a.Func == sqlparser.AggSum || va.avgExact(spec, pos, false)
				}
			case value.Float:
				if spec.distinct {
					return 0, false
				}
				spec.exact = false // float sums replicate naive row order: serial only
			default:
				return 0, false // non-numeric SUM/AVG errors; keep the generic path
			}
		default:
			return 0, false
		}
	}
	idx := len(va.aggs)
	va.aggIdx[key] = idx
	va.aggs = append(va.aggs, spec)
	return idx, true
}

// distinctSetup sizes the DISTINCT bitset from the argument's value domain:
// dictionary size for text, min..max span for integers and dates.
func (va *vecAggExec) distinctSetup(spec *vecAgg, pos int) bool {
	switch spec.kind {
	case value.Text:
		n := int64(spec.col.DictLen())
		if n > maxBitsetDomain {
			return false
		}
		spec.setWords = int(n+63) / 64
	case value.Bool:
		spec.setWords = 1
	case value.Int, value.Date:
		at := &va.statsOf(spec.si).Attrs[pos]
		if at.Min.IsNull() {
			spec.setWords = 1
			return true
		}
		var lo, hi int64
		if spec.kind == value.Int {
			lo, hi = at.Min.Int(), at.Max.Int()
			if lo <= -exactInt || hi >= exactInt {
				return false
			}
		} else {
			lo, hi = at.Min.DateDays(), at.Max.DateDays()
		}
		if hi-lo >= maxBitsetDomain {
			return false
		}
		spec.setBase = lo
		spec.setWords = int(hi-lo+64) / 64
	default:
		return false
	}
	if spec.setWords == 0 {
		spec.setWords = 1
	}
	return true
}

// avgExact reports whether every float64 sum AVG can build over this
// argument is exactly representable — the worst case being the joined row
// count (or the distinct-domain width) times the largest absolute value.
func (va *vecAggExec) avgExact(spec *vecAgg, pos int, distinct bool) bool {
	at := &va.statsOf(spec.si).Attrs[pos]
	if at.Min.IsNull() {
		return true
	}
	maxAbs := math.Max(math.Abs(at.Min.Float()), math.Abs(at.Max.Float()))
	n := 1.0
	if distinct {
		n = float64(spec.setWords * 64)
	} else {
		for _, st := range va.pq.plan.Steps {
			n *= math.Max(float64(st.TableRows), 1)
		}
	}
	return n*maxAbs < float64(exactInt)
}

// compilePost lowers HAVING, the select items, and the ORDER BY keys onto
// the synthetic group row [key values..., aggregate results...]. Every
// column reference must match a GROUP BY key; aggregates land in their
// result slots. ok=false means some expression is outside the dialect (a
// stray column, a subquery, an ungated aggregate) — fall back.
func (va *vecAggExec) compilePost(sel *sqlparser.SelectStmt, entries []fromEntry, items []sqlparser.SelectItem) bool {
	pq := va.pq
	nK := len(va.keys)
	gpq := *pq
	gpq.leaf = func(e sqlparser.Expr) (rowEval, bool, bool) {
		if j, ok := groupByIndex(e, sel.GroupBy, entries); ok {
			slot := j
			return func(_ *evalCtx, row []value.Value) (value.Value, error) { return row[slot], nil }, true, true
		}
		if a, ok := e.(*sqlparser.AggregateExpr); ok {
			idx, ok := va.addAgg(a)
			if !ok {
				return nil, true, false
			}
			slot := nK + idx
			return func(_ *evalCtx, row []value.Value) (value.Value, error) { return row[slot], nil }, true, true
		}
		if _, ok := e.(*sqlparser.ColumnRef); ok {
			// Neither grouped nor aggregated: the environment path raises
			// the grouping-rule error.
			return nil, true, false
		}
		return nil, false, false
	}
	if sel.Having != nil {
		ev, ok := gpq.compile(sel.Having)
		if !ok {
			return false
		}
		va.having = ev
	}
	for _, it := range items {
		ev, ok := gpq.compile(it.Expr)
		if !ok {
			return false
		}
		va.items = append(va.items, ev)
	}
	for _, o := range sel.OrderBy {
		k := plannedSortKey{col: -1, desc: o.Desc}
		if col, ok, err := orderTarget(o, items); err != nil {
			k.err = err
		} else if ok {
			k.col = col
		} else if sel.Distinct {
			// Group alignment is lost after dedup; mirror the naive error.
			k.err = fmt.Errorf("engine: ORDER BY expression %s is not in the select list", o.Expr.SQL())
		} else if err := checkGroupedExpr(o.Expr, sel, entries); err != nil {
			k.err = err
		} else {
			ev, ok := gpq.compile(o.Expr)
			if !ok {
				return false
			}
			k.eval = ev
		}
		va.sortKeys = append(va.sortKeys, k)
	}
	return true
}

// ---------------------------------------------------------------------------
// Aggregation state
// ---------------------------------------------------------------------------

// vecAccs holds one aggregate's per-group accumulator columns; only the
// slices the function and argument kind need are grown. bestM/bestSeq stamp
// when the current MIN/MAX payload was first seen, so parallel merges keep
// the first-seen payload among compare-equal candidates (float images can
// tie across distinct payloads: huge ints, -0.0 vs +0.0).
type vecAccs struct {
	count   []int64
	sumI    []int64
	sumF    []float64
	has     []bool
	bestI   []int64
	bestF   []float64
	bestS   []string
	bestB   []bool
	bestM   []int32
	bestSeq []int64
	sets    [][]uint64
}

func (a *vecAccs) grow(spec *vecAgg) {
	if spec.star {
		return
	}
	if spec.distinct {
		a.sets = append(a.sets, nil)
		return
	}
	switch spec.fn {
	case sqlparser.AggCount:
		a.count = append(a.count, 0)
	case sqlparser.AggSum, sqlparser.AggAvg:
		a.count = append(a.count, 0)
		a.sumF = append(a.sumF, 0)
		if spec.kind == value.Int {
			a.sumI = append(a.sumI, 0)
		}
	case sqlparser.AggMin, sqlparser.AggMax:
		a.has = append(a.has, false)
		switch spec.kind {
		case value.Int, value.Date:
			a.bestI = append(a.bestI, 0)
		case value.Float:
			a.bestF = append(a.bestF, 0)
		case value.Text:
			a.bestS = append(a.bestS, "")
		case value.Bool:
			a.bestB = append(a.bestB, false)
		}
		if spec.kind == value.Int || spec.kind == value.Float {
			a.bestM = append(a.bestM, 0)
			a.bestSeq = append(a.bestSeq, 0)
		}
	}
}

// vecAggState is one worker's aggregation state: the group lookup (array or
// hash tier), dense per-group key values, row counts, first-seen stamps, and
// one accumulator column set per aggregate.
type vecAggState struct {
	n        int
	arrIdx   []int32          // array tier: composed code -> group+1 (0 empty)
	codes    []uint64         // array tier: composed code per group (merge re-lookup)
	hashIdx  map[string]int32 // hash tier: packed key -> group+1
	keySlab  []byte           // hash tier: packed keys, keyW bytes per group
	keyVals  []value.Value    // nKeys values per group, first-seen row
	rows     []int64
	firstM   []int32
	firstSeq []int64
	accs     []vecAccs
}

func newVecAggState(va *vecAggExec) *vecAggState {
	s := &vecAggState{accs: make([]vecAccs, len(va.aggs))}
	if va.arrayTier {
		s.arrIdx = make([]int32, va.domain)
	} else {
		s.hashIdx = make(map[string]int32)
	}
	return s
}

// addGroup appends one zeroed group and returns its dense index. The caller
// fills keyVals and stamps.
func (s *vecAggState) addGroup(va *vecAggExec) int32 {
	gi := int32(s.n)
	s.n++
	s.rows = append(s.rows, 0)
	s.firstM = append(s.firstM, 0)
	s.firstSeq = append(s.firstSeq, 0)
	for j := range s.accs {
		s.accs[j].grow(va.aggs[j])
	}
	return gi
}

// upsert maps the current row (positions in fc.pos) to its dense group,
// creating it on first sight with the row's key values and stamp.
func (s *vecAggState) upsert(va *vecAggExec, fc *fusedCtx) int32 {
	if va.arrayTier {
		var code uint64
		for i := range va.keys {
			k := &va.keys[i]
			code += k.arrayCode(int(fc.pos[k.si])) * k.stride
		}
		if g := s.arrIdx[code]; g != 0 {
			return g - 1
		}
		gi := s.addGroup(va)
		s.arrIdx[code] = gi + 1
		s.codes = append(s.codes, code)
		s.fillGroup(va, fc, gi)
		return gi
	}
	fc.keyBuf = fc.keyBuf[:0]
	for i := range va.keys {
		k := &va.keys[i]
		fc.keyBuf = k.pack(fc.keyBuf, int(fc.pos[k.si]))
	}
	if g, ok := s.hashIdx[string(fc.keyBuf)]; ok {
		return g - 1
	}
	gi := s.addGroup(va)
	s.keySlab = append(s.keySlab, fc.keyBuf...)
	s.hashIdx[string(fc.keyBuf)] = gi + 1
	s.fillGroup(va, fc, gi)
	return gi
}

// fillGroup materializes the group's key values from the creating row and
// records its first-seen stamp.
func (s *vecAggState) fillGroup(va *vecAggExec, fc *fusedCtx, gi int32) {
	for i := range va.keys {
		k := &va.keys[i]
		s.keyVals = append(s.keyVals, k.col.Value(int(fc.pos[k.si])))
	}
	s.firstM[gi] = fc.m
	s.firstSeq[gi] = fc.seq
}

// update consumes one joined row (by positions) into the state.
func (s *vecAggState) update(va *vecAggExec, fc *fusedCtx) {
	fc.seq++
	gi := s.upsert(va, fc)
	s.rows[gi]++
	for j, spec := range va.aggs {
		if spec.star {
			continue
		}
		ti := int(fc.pos[spec.si])
		if spec.col.Null(ti) {
			continue
		}
		a := &s.accs[j]
		if spec.distinct {
			code := spec.distinctCode(ti)
			set := a.sets[gi]
			if set == nil {
				set = make([]uint64, spec.setWords)
				a.sets[gi] = set
			}
			set[code>>6] |= 1 << (code & 63)
			continue
		}
		switch spec.fn {
		case sqlparser.AggCount:
			a.count[gi]++
		case sqlparser.AggSum, sqlparser.AggAvg:
			a.count[gi]++
			if spec.kind == value.Int {
				x := spec.ints[ti]
				a.sumI[gi] += x
				a.sumF[gi] += float64(x)
			} else {
				a.sumF[gi] += spec.flts[ti]
			}
		case sqlparser.AggMin, sqlparser.AggMax:
			s.updateBest(spec, a, gi, ti, fc)
		}
	}
}

// updateBest applies one MIN/MAX candidate, mirroring value.Compare: numeric
// kinds compare as float64 images, and only strict improvements replace the
// held payload (so ties keep the first-seen value).
func (s *vecAggState) updateBest(spec *vecAgg, a *vecAccs, gi int32, ti int, fc *fusedCtx) {
	min := spec.fn == sqlparser.AggMin
	switch spec.kind {
	case value.Int, value.Date:
		x := spec.ints[ti]
		if !a.has[gi] {
			a.has[gi], a.bestI[gi] = true, x
		} else {
			var c int
			if spec.kind == value.Int {
				c = cmpFloat(float64(x), float64(a.bestI[gi]))
			} else {
				c = cmpInt(x, a.bestI[gi])
			}
			if (min && c < 0) || (!min && c > 0) {
				a.bestI[gi] = x
			} else {
				return
			}
		}
	case value.Float:
		x := spec.flts[ti]
		if !a.has[gi] {
			a.has[gi], a.bestF[gi] = true, x
		} else if c := cmpFloat(x, a.bestF[gi]); (min && c < 0) || (!min && c > 0) {
			a.bestF[gi] = x
		} else {
			return
		}
	case value.Text:
		x := spec.col.DictString(spec.cds[ti])
		if !a.has[gi] {
			a.has[gi], a.bestS[gi] = true, x
		} else if c := strings.Compare(x, a.bestS[gi]); (min && c < 0) || (!min && c > 0) {
			a.bestS[gi] = x
		} else {
			return
		}
	case value.Bool:
		x := spec.bls[ti]
		if !a.has[gi] {
			a.has[gi], a.bestB[gi] = true, x
		} else if c := cmpBool(x, a.bestB[gi]); (min && c < 0) || (!min && c > 0) {
			a.bestB[gi] = x
		} else {
			return
		}
	}
	if a.bestM != nil {
		a.bestM[gi], a.bestSeq[gi] = fc.m, fc.seq
	}
}

// finalize materializes one aggregate's result for group gi, mirroring the
// naive accumulator's semantics (NULL on empty input for SUM/AVG/MIN/MAX,
// integer SUM over integer input, float AVG).
func (s *vecAggState) finalize(va *vecAggExec, j int, gi int32) value.Value {
	spec := va.aggs[j]
	if spec.star {
		return value.NewInt(s.rows[gi])
	}
	a := &s.accs[j]
	if spec.distinct {
		set := a.sets[gi]
		n, sumI, sumF := setFold(spec, set)
		switch spec.fn {
		case sqlparser.AggCount:
			return value.NewInt(n)
		case sqlparser.AggSum:
			if n == 0 {
				return value.NewNull()
			}
			return value.NewInt(sumI)
		default: // AggAvg
			if n == 0 {
				return value.NewNull()
			}
			return value.NewFloat(sumF / float64(n))
		}
	}
	switch spec.fn {
	case sqlparser.AggCount:
		return value.NewInt(a.count[gi])
	case sqlparser.AggSum:
		if a.count[gi] == 0 {
			return value.NewNull()
		}
		if spec.kind == value.Int {
			return value.NewInt(a.sumI[gi])
		}
		return value.NewFloat(a.sumF[gi])
	case sqlparser.AggAvg:
		if a.count[gi] == 0 {
			return value.NewNull()
		}
		return value.NewFloat(a.sumF[gi] / float64(a.count[gi]))
	default: // AggMin, AggMax
		if !a.has[gi] {
			return value.NewNull()
		}
		switch spec.kind {
		case value.Int:
			return value.NewInt(a.bestI[gi])
		case value.Date:
			return value.NewDateDays(a.bestI[gi])
		case value.Float:
			return value.NewFloat(a.bestF[gi])
		case value.Text:
			return value.NewText(a.bestS[gi])
		default:
			return value.NewBool(a.bestB[gi])
		}
	}
}

// setFold counts a DISTINCT bitset and, for integer arguments, folds the
// decoded values into integer and float sums (code order; integer addition
// is order-free and the float sum is pre-gated exact).
func setFold(spec *vecAgg, set []uint64) (n, sumI int64, sumF float64) {
	for w, word := range set {
		n += int64(bits.OnesCount64(word))
		if spec.fn == sqlparser.AggCount {
			continue
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			v := spec.setBase + int64(w*64+b)
			sumI += v
			sumF += float64(v)
		}
	}
	return n, sumI, sumF
}

// ---------------------------------------------------------------------------
// Fused pipeline
// ---------------------------------------------------------------------------

// fusedProbe reads a probe value from an earlier step's current position.
type fusedProbe struct {
	si  int
	col storage.Col
}

// fusedStep is one join stage of the fused pipeline.
type fusedStep struct {
	access planner.Access
	tbl    *storage.Table
	chain  joinChain    // JoinHash
	probe  fusedProbe   // JoinHash
	probes []fusedProbe // JoinPK / JoinIndex
	ix     *storage.Index
	inner  []int32 // JoinLoop: prefiltered inner positions
}

// fusedCtx is one worker's pipeline scratch: per-step positions, the key
// pack buffer, per-step row counters, the private aggregation state, and the
// current (morsel, sequence) stamp.
type fusedCtx struct {
	pos      []int32
	keyBuf   []byte
	stepRows []int64
	state    *vecAggState
	m        int32
	seq      int64
}

// fusedRun executes one compiled query: shared immutable step structures
// plus the plan for bookkeeping.
type fusedRun struct {
	pq    *plannedQuery
	va    *vecAggExec
	steps []fusedStep
}

func (fx *fusedRun) newCtx(va *vecAggExec) *fusedCtx {
	return &fusedCtx{
		pos:      make([]int32, len(fx.steps)),
		stepRows: make([]int64, len(fx.steps)),
		state:    newVecAggState(va),
	}
}

// feed pushes the current position vector through join step si and beyond,
// updating the aggregation state at the end of the pipeline. No predicate on
// this path can error (the vec gate guarantees it).
func (fx *fusedRun) feed(fc *fusedCtx, si int) {
	if si == len(fx.steps) {
		fc.state.update(fx.va, fc)
		return
	}
	fs := &fx.steps[si]
	switch fs.access {
	case planner.JoinHash:
		k, ok := joinKeyOf(fs.probe.col.Value(int(fc.pos[fs.probe.si])))
		if !ok {
			return
		}
		for p := fs.chain.head[k]; p != 0; p = fs.chain.next[p-1] {
			fc.pos[si] = p - 1
			fc.stepRows[si]++
			fx.feed(fc, si+1)
		}
	case planner.JoinPK:
		fc.keyBuf = fc.keyBuf[:0]
		for _, pr := range fs.probes {
			v := pr.col.Value(int(fc.pos[pr.si]))
			if v.IsNull() {
				return
			}
			fc.keyBuf = v.AppendKey(fc.keyBuf)
		}
		pos, ok := fs.tbl.LookupPKPos(fc.keyBuf)
		if !ok || !fx.pq.vecPass(si, pos) {
			return
		}
		fc.pos[si] = int32(pos)
		fc.stepRows[si]++
		fx.feed(fc, si+1)
	case planner.JoinIndex:
		fc.keyBuf = fc.keyBuf[:0]
		for _, pr := range fs.probes {
			v := pr.col.Value(int(fc.pos[pr.si]))
			if v.IsNull() {
				return
			}
			fc.keyBuf = v.AppendKey(fc.keyBuf)
		}
		for _, pos := range fs.ix.Probe(fc.keyBuf) {
			if !fx.pq.vecPass(si, pos) {
				continue
			}
			fc.pos[si] = int32(pos)
			fc.stepRows[si]++
			fx.feed(fc, si+1)
		}
	default: // JoinLoop
		for _, ti := range fs.inner {
			fc.pos[si] = ti
			fc.stepRows[si]++
			fx.feed(fc, si+1)
		}
	}
}

// runVecAgg drives the fused pipeline: build the join structures, scan the
// base table (morsel-parallel when scheduled), merge partial states, and
// shape the grouped output.
func (ex *Engine) runVecAgg(sel *sqlparser.SelectStmt, pq *plannedQuery, va *vecAggExec, cols []string) (*Result, error) {
	steps := pq.plan.Steps
	fx := &fusedRun{pq: pq, va: va, steps: make([]fusedStep, len(steps))}
	for si := 1; si < len(steps); si++ {
		st := steps[si]
		fs := &fx.steps[si]
		fs.access, fs.tbl = st.Access, st.Input.Tbl
		switch st.Access {
		case planner.JoinHash:
			psi, ppos := pq.slotOwner(st.ProbeSlot)
			fs.probe = fusedProbe{si: psi, col: steps[psi].Input.Tbl.Col(ppos)}
			fs.chain = pq.buildChain(si, st.Input.Tbl, st.BuildPos, nil)
		case planner.JoinPK, planner.JoinIndex:
			for _, slot := range st.ProbeSlots {
				psi, ppos := pq.slotOwner(slot)
				fs.probes = append(fs.probes, fusedProbe{si: psi, col: steps[psi].Input.Tbl.Col(ppos)})
			}
			if st.Access == planner.JoinIndex {
				fs.ix = st.Input.Tbl.Index(st.IndexName)
				if fs.ix == nil {
					return nil, fmt.Errorf("engine: plan references missing index %q on %s", st.IndexName, st.Input.Rel.Name)
				}
			}
		default: // JoinLoop
			fs.inner = pq.loopInner(si, st.Input.Tbl)
		}
	}

	st0 := steps[0]
	var ctxs []*fusedCtx
	var ordered []int32
	var final *vecAggState
	if st0.Access == planner.ScanPK || st0.Access == planner.ScanIndex {
		fc := fx.newCtx(va)
		ctxs = []*fusedCtx{fc}
		positions, err := scanProbePositions(pq, st0)
		if err != nil {
			return nil, err
		}
		for _, pos := range positions {
			if !pq.vecPass(0, pos) {
				continue
			}
			fc.pos[0] = int32(pos)
			fc.stepRows[0]++
			fx.feed(fc, 1)
		}
		final = fc.state
	} else {
		n := st0.Input.Tbl.Len()
		ex.bud.AddTotal(n)
		workers := 1
		if va.parallel {
			workers = ex.workersFor(n)
			if nm := (n + morselRows - 1) / morselRows; workers > nm {
				workers = nm
			}
		}
		if workers <= 1 {
			fc := fx.newCtx(va)
			ctxs = []*fusedCtx{fc}
			if bud := ex.bud; bud != nil {
				// Feed morsel by morsel so cancellation lands at morsel
				// boundaries; fc.m/fc.seq are untouched, so the first-seen
				// stamps match the single feedRange(0, n) call exactly.
				for lo := 0; lo < n; lo += morselRows {
					hi := lo + morselRows
					if hi > n {
						hi = n
					}
					if err := bud.Step(hi - lo); err != nil {
						return nil, err
					}
					fx.feedRange(fc, lo, hi)
				}
			} else {
				fx.feedRange(fc, 0, n)
			}
			final = fc.state
		} else {
			nMorsels := (n + morselRows - 1) / morselRows
			ctxs = make([]*fusedCtx, workers)
			bud := ex.bud
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				fc := fx.newCtx(va)
				ctxs[w] = fc
				wg.Add(1)
				go func(fc *fusedCtx) {
					defer wg.Done()
					for {
						m := int(cursor.Add(1)) - 1
						if m >= nMorsels {
							return
						}
						lo := m * morselRows
						hi := lo + morselRows
						if hi > n {
							hi = n
						}
						// A tripped budget stops every worker at its next
						// morsel claim; the latched cause surfaces after the
						// join below.
						if bud.Step(hi-lo) != nil {
							return
						}
						fc.m, fc.seq = int32(m), 0
						fx.feedRange(fc, lo, hi)
					}
				}(fc)
			}
			wg.Wait()
			if err := bud.Err(); err != nil {
				return nil, err
			}
			states := make([]*vecAggState, len(ctxs))
			for i, fc := range ctxs {
				states[i] = fc.state
			}
			final = mergeVecAggStates(va, states)
			ordered = stampOrder(final)
		}
	}
	if ordered == nil {
		ordered = make([]int32, final.n)
		for i := range ordered {
			ordered[i] = int32(i)
		}
	}

	// Bookkeeping: per-step and total actual row counts, summed over workers.
	for si := range steps {
		var total int64
		for _, fc := range ctxs {
			total += fc.stepRows[si]
		}
		steps[si].ActualRows = int(total)
	}
	pq.plan.ActualRows = steps[len(steps)-1].ActualRows
	setParallelScanActual(pq.plan, steps[0].ActualRows)
	pq.finishZoneSkip()

	return ex.finishVecAgg(sel, pq, va, final, ordered, cols)
}

// feedRange feeds the base rows [lo, hi) that pass step 0's vectorized
// filters into the fused pipeline, consulting the zone probes (when compiled)
// to skip storage morsels whose bounds disprove the filters. A morsel the
// probes prove all-true feeds every row without testing one.
func (fx *fusedRun) feedRange(fc *fusedCtx, lo, hi int) {
	pq := fx.pq
	zp := pq.zp
	if zp == nil {
		for ti := lo; ti < hi; ti++ {
			if !pq.vecPass(0, ti) {
				continue
			}
			fc.pos[0] = int32(ti)
			fc.stepRows[0]++
			fx.feed(fc, 1)
		}
		return
	}
	zoneWalk(lo, hi, func(z, segLo, segHi int, owned bool) bool {
		v := zp.verdict(z)
		if owned {
			zp.note(v)
		}
		if v == zoneAllFalse {
			return true
		}
		skipVec := v == zoneAllTrue
		for ti := segLo; ti < segHi; ti++ {
			if !skipVec && !pq.vecPass(0, ti) {
				continue
			}
			fc.pos[0] = int32(ti)
			fc.stepRows[0]++
			fx.feed(fc, 1)
		}
		return true
	})
}

// scanProbePositions resolves a first-step primary-key or index probe to row
// positions, mirroring runScanStep (a NULL key value matches nothing).
func scanProbePositions(pq *plannedQuery, st *planner.Step) ([]int, error) {
	var kb []byte
	for _, v := range st.KeyValues {
		if v.IsNull() {
			return nil, nil
		}
		kb = v.AppendKey(kb)
	}
	if st.Access == planner.ScanPK {
		if pos, ok := st.Input.Tbl.LookupPKPos(kb); ok {
			return []int{pos}, nil
		}
		return nil, nil
	}
	ix := st.Input.Tbl.Index(st.IndexName)
	if ix == nil {
		return nil, fmt.Errorf("engine: plan references missing index %q on %s", st.IndexName, st.Input.Rel.Name)
	}
	return ix.Probe(kb), nil
}

// stampOrder sorts the merged groups by first-seen stamp — the order a
// serial scan would have created them in.
func stampOrder(s *vecAggState) []int32 {
	order := make([]int32, s.n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := order[a], order[b]
		if s.firstM[ga] != s.firstM[gb] {
			return s.firstM[ga] < s.firstM[gb]
		}
		return s.firstSeq[ga] < s.firstSeq[gb]
	})
	return order
}

// mergeVecAggStates folds per-worker partial states into one, in any order:
// every accumulator the parallel gate admits merges exactly, and group order
// is reconstructed afterwards from the first-seen stamps.
func mergeVecAggStates(va *vecAggExec, parts []*vecAggState) *vecAggState {
	g := newVecAggState(va)
	nK := len(va.keys)
	for _, p := range parts {
		for gi := int32(0); gi < int32(p.n); gi++ {
			mgi, created := g.adopt(va, p, gi)
			if created || p.firstM[gi] < g.firstM[mgi] ||
				(p.firstM[gi] == g.firstM[mgi] && p.firstSeq[gi] < g.firstSeq[mgi]) {
				g.firstM[mgi], g.firstSeq[mgi] = p.firstM[gi], p.firstSeq[gi]
				// The earliest-seen row also defines the group's key values
				// (identical payloads except for float -0/+0 and huge-int
				// aliases, where the naive pipeline keeps the first).
				copy(g.keyVals[int(mgi)*nK:(int(mgi)+1)*nK], p.keyVals[int(gi)*nK:(int(gi)+1)*nK])
			}
			g.rows[mgi] += p.rows[gi]
			for j, spec := range va.aggs {
				mergeAcc(spec, &g.accs[j], mgi, &p.accs[j], gi)
			}
		}
	}
	return g
}

// adopt finds (or creates) the merged group matching part group gi.
func (g *vecAggState) adopt(va *vecAggExec, p *vecAggState, gi int32) (int32, bool) {
	nK := len(va.keys)
	if va.arrayTier {
		code := p.codes[gi]
		if m := g.arrIdx[code]; m != 0 {
			return m - 1, false
		}
		mgi := g.addGroup(va)
		g.arrIdx[code] = mgi + 1
		g.codes = append(g.codes, code)
		g.keyVals = append(g.keyVals, p.keyVals[int(gi)*nK:(int(gi)+1)*nK]...)
		g.firstM[mgi], g.firstSeq[mgi] = p.firstM[gi], p.firstSeq[gi]
		return mgi, true
	}
	key := p.keySlab[int(gi)*va.keyW : (int(gi)+1)*va.keyW]
	if m, ok := g.hashIdx[string(key)]; ok {
		return m - 1, false
	}
	mgi := g.addGroup(va)
	g.keySlab = append(g.keySlab, key...)
	g.hashIdx[string(key)] = mgi + 1
	g.keyVals = append(g.keyVals, p.keyVals[int(gi)*nK:(int(gi)+1)*nK]...)
	g.firstM[mgi], g.firstSeq[mgi] = p.firstM[gi], p.firstSeq[gi]
	return mgi, true
}

// mergeAcc folds part accumulator pgi into merged accumulator mgi.
func mergeAcc(spec *vecAgg, m *vecAccs, mgi int32, p *vecAccs, pgi int32) {
	if spec.star {
		return
	}
	if spec.distinct {
		ps := p.sets[pgi]
		if ps == nil {
			return
		}
		if m.sets[mgi] == nil {
			m.sets[mgi] = ps // parts are discarded after the merge
			return
		}
		ms := m.sets[mgi]
		for w := range ps {
			ms[w] |= ps[w]
		}
		return
	}
	switch spec.fn {
	case sqlparser.AggCount:
		m.count[mgi] += p.count[pgi]
	case sqlparser.AggSum, sqlparser.AggAvg:
		m.count[mgi] += p.count[pgi]
		m.sumF[mgi] += p.sumF[pgi]
		if spec.kind == value.Int {
			m.sumI[mgi] += p.sumI[pgi]
		}
	case sqlparser.AggMin, sqlparser.AggMax:
		if !p.has[pgi] {
			return
		}
		if !m.has[mgi] {
			copyBest(spec, m, mgi, p, pgi)
			return
		}
		min := spec.fn == sqlparser.AggMin
		var c int
		switch spec.kind {
		case value.Int:
			c = cmpFloat(float64(p.bestI[pgi]), float64(m.bestI[mgi]))
		case value.Date:
			c = cmpInt(p.bestI[pgi], m.bestI[mgi])
		case value.Float:
			c = cmpFloat(p.bestF[pgi], m.bestF[mgi])
		case value.Text:
			c = strings.Compare(p.bestS[pgi], m.bestS[mgi])
		default:
			c = cmpBool(p.bestB[pgi], m.bestB[mgi])
		}
		if (min && c < 0) || (!min && c > 0) {
			copyBest(spec, m, mgi, p, pgi)
		} else if c == 0 && m.bestM != nil &&
			(p.bestM[pgi] < m.bestM[mgi] ||
				(p.bestM[pgi] == m.bestM[mgi] && p.bestSeq[pgi] < m.bestSeq[mgi])) {
			// Compare-equal but distinct payloads (float-image ties): keep
			// the first-seen one, like the serial accumulator.
			copyBest(spec, m, mgi, p, pgi)
		}
	}
}

func copyBest(spec *vecAgg, m *vecAccs, mgi int32, p *vecAccs, pgi int32) {
	m.has[mgi] = true
	switch spec.kind {
	case value.Int, value.Date:
		m.bestI[mgi] = p.bestI[pgi]
	case value.Float:
		m.bestF[mgi] = p.bestF[pgi]
	case value.Text:
		m.bestS[mgi] = p.bestS[pgi]
	default:
		m.bestB[mgi] = p.bestB[pgi]
	}
	if m.bestM != nil {
		m.bestM[mgi], m.bestSeq[mgi] = p.bestM[pgi], p.bestSeq[pgi]
	}
}

// finishVecAgg finalizes the groups in first-seen order: HAVING, projection,
// and shared shaping (DISTINCT, ORDER BY, LIMIT) over synthetic group rows.
func (ex *Engine) finishVecAgg(sel *sqlparser.SelectStmt, pq *plannedQuery, va *vecAggExec, g *vecAggState, ordered []int32, cols []string) (*Result, error) {
	// A grouped query with no GROUP BY and no input rows still yields one
	// group (COUNT(*) = 0).
	if len(sel.GroupBy) == 0 && g.n == 0 {
		ordered = append(ordered, g.addGroup(va))
	}
	nK, nA := len(va.keys), len(va.aggs)
	extW := nK + nA
	flat := make([]value.Value, len(ordered)*extW)
	ec := pq.newCtx()
	out := &Result{Columns: cols}
	var exts [][]value.Value
	for _, gi := range ordered {
		ext := flat[:extW:extW]
		flat = flat[extW:]
		copy(ext[:nK], g.keyVals[int(gi)*nK:(int(gi)+1)*nK])
		for j := 0; j < nA; j++ {
			ext[nK+j] = g.finalize(va, j, gi)
		}
		if va.having != nil {
			v, err := va.having(ec, ext)
			if err != nil {
				return nil, err
			}
			if !passes(v) {
				continue
			}
		}
		row := make(storage.Tuple, len(va.items))
		for i, ev := range va.items {
			v, err := ev(ec, ext)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
		exts = append(exts, ext)
	}
	setShapeActual(pq.plan, planner.ShapeVecAggregate, len(out.Rows))

	keyOf := func(i int, k *plannedSortKey) (value.Value, error) {
		if k.col >= 0 {
			return out.Rows[i][k.col], nil
		}
		return k.eval(ec, exts[i])
	}
	return ex.shapeResult(sel, pq, out, va.sortKeys, keyOf)
}
