package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file proves the fused vectorized-aggregation pipeline is
// observationally identical to both the streaming grouped pipeline and the
// naive environment pipeline — same rows, same order, same errors — across
// randomized GROUP BY templates with NULL group keys, DISTINCT aggregates,
// HAVING, ORDER BY, and LIMIT; and that morsel-parallel execution is
// byte-identical to serial at any worker count.

// aggDiffDB builds a movie database with deliberate NULL pockets: ~1/6 of
// movie years, ~1/4 of cast roles, and ~1/3 of director birth dates are
// NULL, so group keys and aggregate arguments both exercise the NULL paths.
func aggDiffDB(t testing.TB, movies int, seed int64) *storage.Database {
	t.Helper()
	db, err := storage.NewDatabase(dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	iv := func(n int64) value.Value { return value.NewInt(n) }
	sv := func(s string) value.Value { return value.NewText(s) }
	nullable := func(v value.Value, oneIn int) value.Value {
		if rng.Intn(oneIn) == 0 {
			return value.NewNull()
		}
		return v
	}
	actors := movies / 3
	if actors < 8 {
		actors = 8
	}
	for a := 1; a <= actors; a++ {
		if err := db.Insert("ACTOR", storage.Tuple{iv(int64(a)), sv(fmt.Sprintf("Actor %d", a%37))}); err != nil {
			t.Fatal(err)
		}
	}
	directors := movies / 10
	if directors < 4 {
		directors = 4
	}
	for d := 1; d <= directors; d++ {
		bdate := nullable(value.NewDateDays(int64(rng.Intn(20000))), 3)
		loc := nullable(sv(fmt.Sprintf("City %d", rng.Intn(7))), 5)
		if err := db.Insert("DIRECTOR", storage.Tuple{
			iv(int64(d)), sv(fmt.Sprintf("Director %d", d%23)), bdate, loc,
		}); err != nil {
			t.Fatal(err)
		}
	}
	genres := []string{"action", "drama", "comedy", "noir", "sci-fi"}
	for m := 1; m <= movies; m++ {
		mid := int64(m)
		year := nullable(iv(int64(1950+rng.Intn(50))), 6)
		title := sv(fmt.Sprintf("Movie %d", rng.Intn(movies)))
		if err := db.Insert("MOVIES", storage.Tuple{iv(mid), title, year}); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 1+rng.Intn(3); c++ {
			aid := int64(1 + rng.Intn(actors))
			role := nullable(sv(fmt.Sprintf("Role %d", rng.Intn(13))), 4)
			if err := db.Insert("CAST", storage.Tuple{iv(mid), iv(aid), role}); err != nil {
				// Duplicate (mid, aid) primary keys are fine to skip.
				break
			}
		}
		if rng.Intn(8) != 0 { // some movies have no genre rows at all
			if err := db.Insert("GENRE", storage.Tuple{iv(mid), sv(genres[rng.Intn(len(genres))])}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// aggTemplates generates randomized grouped queries: single-table and
// post-join, array-tier (small int/text domains) and hash-tier (wide int
// composites) group keys, NULL-able keys and arguments, DISTINCT aggregates,
// HAVING, ORDER BY (column, aggregate, ordinal), and LIMIT.
func aggTemplates(rng *rand.Rand, n int) []string {
	keySets := [][2]string{
		{"m.year", "MOVIES m, CAST c where m.id = c.mid"},
		{"c.role", "MOVIES m, CAST c where m.id = c.mid"},
		{"m.year, c.role", "MOVIES m, CAST c where m.id = c.mid"},
		{"g.genre", "MOVIES m, GENRE g where m.id = g.mid"},
		{"m.year", "MOVIES m"},
		// Wide composite of two primary-key columns: the composed domain
		// overflows the array tier, forcing packed-key hashing.
		{"m.id, c.mid", "MOVIES m, CAST c where m.id = c.mid"},
	}
	aggs := []string{
		"count(*)", "count(c.role)", "count(distinct c.role)",
		"sum(m.year)", "avg(m.year)", "min(m.year)", "max(m.year)",
		"min(m.title)", "max(m.title)", "count(distinct m.year)",
	}
	singleAggs := []string{
		"count(*)", "sum(m.year)", "avg(m.year)", "min(m.title)",
		"max(m.year)", "count(distinct m.year)", "count(m.year)",
	}
	havings := []string{
		"", "having count(*) > 2", "having count(*) > 1000000",
		"having avg(m.year) > 1970", "having min(m.year) is not null",
	}
	wheres := []string{
		"", "and m.year >= 1960", "and m.year between 1955 and 1995",
		"and m.title like 'Movie 1%'",
	}
	var out []string
	for i := 0; i < n; i++ {
		ks := keySets[rng.Intn(len(keySets))]
		pool := aggs
		if ks[1] == "MOVIES m" {
			pool = singleAggs
		}
		nAggs := 1 + rng.Intn(3)
		sel := ks[0]
		chosen := make([]string, 0, nAggs)
		for j := 0; j < nAggs; j++ {
			a := pool[rng.Intn(len(pool))]
			sel += ", " + a
			chosen = append(chosen, a)
		}
		from := ks[1]
		if w := wheres[rng.Intn(len(wheres))]; w != "" {
			if ks[1] == "MOVIES m" {
				from += " where " + w[len("and "):]
			} else {
				from += " " + w
			}
		}
		q := fmt.Sprintf("select %s from %s group by %s", sel, from, ks[0])
		if h := havings[rng.Intn(len(havings))]; h != "" {
			q += " " + h
		}
		switch rng.Intn(4) {
		case 1:
			q += " order by " + chosen[0] + " desc, 1"
		case 2:
			q += " order by 1"
		case 3:
			q += fmt.Sprintf(" order by %s limit %d", ks[0], 1+rng.Intn(5))
		}
		out = append(out, q)
	}
	return out
}

func mustSame(t *testing.T, q, labelA, labelB string, a, b *Result, errA, errB error) {
	t.Helper()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("%s: %s err=%v, %s err=%v", q, labelA, errA, labelB, errB)
	}
	if errA != nil {
		if errA.Error() != errB.Error() {
			t.Fatalf("%s: error text differs: %q vs %q", q, errA, errB)
		}
		return
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: %s %d rows, %s %d rows", q, labelA, len(a.Rows), labelB, len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatalf("%s: row %d width differs", q, i)
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j].Key() != b.Rows[i][j].Key() {
				t.Fatalf("%s: row %d col %d: %s=%s %s=%s",
					q, i, j, labelA, a.Rows[i][j].Key(), labelB, b.Rows[i][j].Key())
			}
		}
	}
}

// TestVecAggDifferential: randomized grouped templates run three ways — the
// fused vectorized pipeline, the streaming grouped pipeline (vec disabled),
// and the naive environment pipeline (planner disabled) — and must agree
// byte for byte. The vec path must actually execute for a healthy share of
// templates, or the comparison is vacuous.
func TestVecAggDifferential(t *testing.T) {
	db := aggDiffDB(t, 900, 101)
	ex := New(db)
	rng := rand.New(rand.NewSource(202))
	vecRan := 0
	queries := aggTemplates(rng, 60)
	// Fixed date-typed coverage: date group keys, date DISTINCT bitsets,
	// and date MIN/MAX (a planner gate that read date bounds through
	// Value.Float used to panic on exactly this shape).
	queries = append(queries,
		`select d.blocation, count(distinct d.bdate), min(d.bdate), max(d.bdate)
		 from DIRECTOR d group by d.blocation order by 1`,
		`select d.bdate, count(*) from DIRECTOR d group by d.bdate order by 1`,
		`select count(distinct d.bdate) from DIRECTOR d`,
	)
	for _, q := range queries {
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatalf("template %q does not parse: %v", q, err)
		}
		vecRes, plan, vecErr := ex.SelectExplained(sel)
		if vecErr == nil && vecAggStep(plan) != nil {
			vecRan++
		}
		ex.SetVecAggEnabled(false)
		streamRes, streamErr := ex.Select(sel)
		ex.SetVecAggEnabled(true)
		mustSame(t, q, "vec", "streaming", vecRes, streamRes, vecErr, streamErr)

		ex.SetPlannerEnabled(false)
		naiveRes, naiveErr := ex.Select(sel)
		ex.SetPlannerEnabled(true)
		mustSame(t, q, "vec", "naive", vecRes, naiveRes, vecErr, naiveErr)
	}
	if vecRan < len(queries)/3 {
		t.Fatalf("vec-aggregate ran for only %d/%d templates — the differential is vacuous", vecRan, len(queries))
	}
}

// TestVecAggParallelDifferential: morsel-driven parallel aggregation must be
// byte-identical to serial execution at any worker count. Thresholds and the
// morsel size shrink so a small database schedules many morsels across many
// workers.
func TestVecAggParallelDifferential(t *testing.T) {
	oldThreshold, oldMorsel := parallelThreshold, morselRows
	parallelThreshold, morselRows = 8, 128
	defer func() { parallelThreshold, morselRows = oldThreshold, oldMorsel }()

	db := aggDiffDB(t, 2500, 303) // ≥ ParallelScanMinRows movies, so pscan schedules
	ex := New(db)
	rng := rand.New(rand.NewSource(404))
	parallelRan := 0
	queries := aggTemplates(rng, 40)
	for _, q := range queries {
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatalf("template %q does not parse: %v", q, err)
		}
		ex.SetParallelism(1)
		serialRes, serialErr := ex.Select(sel)
		ex.SetParallelism(7) // deliberately not a divisor of the morsel count
		parRes, plan, parErr := ex.SelectExplained(sel)
		ex.SetParallelism(0)
		if parErr == nil && hasParallelScan(plan) {
			parallelRan++
		}
		mustSame(t, q, "serial", "parallel", serialRes, parRes, serialErr, parErr)
	}
	if parallelRan < len(queries)/4 {
		t.Fatalf("parallel-scan ran for only %d/%d templates — the differential is vacuous", parallelRan, len(queries))
	}
}

// TestVecAggDistinctSelect: grouped queries under SELECT DISTINCT and the
// empty-input single-group rule shape identically across pipelines.
func TestVecAggDistinctSelect(t *testing.T) {
	db := aggDiffDB(t, 400, 505)
	ex := New(db)
	for _, q := range []string{
		`select distinct m.year, count(*) from MOVIES m group by m.year order by 1 limit 7`,
		`select count(*), sum(m.year), min(m.title) from MOVIES m where m.year > 3000`,
		`select count(distinct m.year) from MOVIES m`,
	} {
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		vecRes, vecErr := ex.Select(sel)
		ex.SetPlannerEnabled(false)
		naiveRes, naiveErr := ex.Select(sel)
		ex.SetPlannerEnabled(true)
		mustSame(t, q, "vec", "naive", vecRes, naiveRes, vecErr, naiveErr)
	}
}

// TestVecAggShapeDowngrade: with the vec pipeline disabled, the executed
// plan's shape narrates the generic aggregate — never a path that did not
// run.
func TestVecAggShapeDowngrade(t *testing.T) {
	db := aggDiffDB(t, 2500, 606)
	ex := New(db)
	sel, err := sqlparser.ParseSelect(`select m.year, count(*) from MOVIES m group by m.year`)
	if err != nil {
		t.Fatal(err)
	}
	_, plan, err := ex.SelectExplained(sel)
	if err != nil {
		t.Fatal(err)
	}
	if vecAggStep(plan) == nil || !hasParallelScan(plan) {
		t.Fatalf("enabled run should report vec-aggregate + parallel-scan, got %v", shapeKinds(plan))
	}
	ex.SetVecAggEnabled(false)
	defer ex.SetVecAggEnabled(true)
	_, plan, err = ex.SelectExplained(sel)
	if err != nil {
		t.Fatal(err)
	}
	if vecAggStep(plan) != nil || hasParallelScan(plan) {
		t.Fatalf("disabled run must downgrade the shape, got %v", shapeKinds(plan))
	}
	if len(plan.Shape) != 1 || plan.Shape[0].Kind != planner.ShapeAggregate {
		t.Fatalf("downgraded shape = %v", shapeKinds(plan))
	}
	if plan.Shape[0].ActualRows < 0 {
		t.Fatal("downgraded aggregate step did not record its actual row count")
	}
}

func shapeKinds(plan *planner.Plan) []planner.ShapeKind {
	var out []planner.ShapeKind
	for _, sh := range plan.Shape {
		out = append(out, sh.Kind)
	}
	return out
}
