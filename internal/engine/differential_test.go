package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
)

// naiveSelect is a reference executor for two-relation equi-join queries of
// the form
//
//	select A.x, B.y from A a, B b where a.j = b.k [and filters]
//
// implemented as a full cartesian product with post-hoc filtering. The
// engine's pushdown/hash-join pipeline must agree with it row-for-row
// (order-insensitively).
func naiveSelect(db *storage.Database, relA, relB string, join [2]string, filter func(a, b storage.Tuple) bool, proj func(a, b storage.Tuple) string) []string {
	ta, tb := db.Table(relA), db.Table(relB)
	pa := ta.Relation().AttrIndex(join[0])
	pb := tb.Relation().AttrIndex(join[1])
	var out []string
	ta.Scan(func(a storage.Tuple) bool {
		tb.Scan(func(b storage.Tuple) bool {
			if a[pa].IsNull() || b[pb].IsNull() || !a[pa].Equal(b[pb]) {
				return true
			}
			if filter != nil && !filter(a, b) {
				return true
			}
			out = append(out, proj(a, b))
			return true
		})
		return true
	})
	sort.Strings(out)
	return out
}

func resultKeys(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestDifferentialJoinFilters runs randomized year-range filters over the
// MOVIES ⋈ GENRE join and compares engine output against the naive
// executor.
func TestDifferentialJoinFilters(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 31, Movies: 80, Actors: 30, Directors: 6, CastPerMovie: 2, GenresPerMovie: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	rng := rand.New(rand.NewSource(77))
	ops := []struct {
		sql  string
		pred func(y, bound int64) bool
	}{
		{">", func(y, b int64) bool { return y > b }},
		{"<", func(y, b int64) bool { return y < b }},
		{">=", func(y, b int64) bool { return y >= b }},
		{"<=", func(y, b int64) bool { return y <= b }},
		{"=", func(y, b int64) bool { return y == b }},
		{"!=", func(y, b int64) bool { return y != b }},
	}
	yearPos := db.Table("MOVIES").Relation().AttrIndex("year")
	titlePos := db.Table("MOVIES").Relation().AttrIndex("title")
	genrePos := db.Table("GENRE").Relation().AttrIndex("genre")

	for trial := 0; trial < 40; trial++ {
		op := ops[rng.Intn(len(ops))]
		bound := int64(1950 + rng.Intn(60))
		sql := fmt.Sprintf(
			"select m.title, g.genre from MOVIES m, GENRE g where m.id = g.mid and m.year %s %d",
			op.sql, bound)
		res, err := ex.Query(sql)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := resultKeys(res)
		want := naiveSelect(db, "MOVIES", "GENRE", [2]string{"id", "mid"},
			func(m, g storage.Tuple) bool {
				return !m[yearPos].IsNull() && op.pred(m[yearPos].Int(), bound)
			},
			func(m, g storage.Tuple) string {
				return m[titlePos].String() + "|" + g[genrePos].String()
			})
		if len(got) != len(want) {
			t.Fatalf("trial %d (%s): engine %d rows, naive %d rows", trial, sql, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%s): row %d differs: %q vs %q", trial, sql, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialAggregates compares grouped counts against a hand-rolled
// aggregation over the same data.
func TestDifferentialAggregates(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 13, Movies: 60, Actors: 25, Directors: 5, CastPerMovie: 3, GenresPerMovie: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, err := ex.Query("select g.genre, count(*) from GENRE g group by g.genre order by g.genre")
	if err != nil {
		t.Fatal(err)
	}
	manual := map[string]int64{}
	genrePos := db.Table("GENRE").Relation().AttrIndex("genre")
	db.Table("GENRE").Scan(func(tup storage.Tuple) bool {
		manual[tup[genrePos].Text()]++
		return true
	})
	if len(res.Rows) != len(manual) {
		t.Fatalf("groups: engine %d, manual %d", len(res.Rows), len(manual))
	}
	for _, row := range res.Rows {
		if manual[row[0].Text()] != row[1].Int() {
			t.Errorf("genre %s: engine %d, manual %d", row[0].Text(), row[1].Int(), manual[row[0].Text()])
		}
	}
	// Sortedness from ORDER BY.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Text() > res.Rows[i][0].Text() {
			t.Error("ORDER BY violated")
		}
	}
}

// TestDifferentialCorrelatedSubquery compares EXISTS against the equivalent
// join + DISTINCT.
func TestDifferentialCorrelatedSubquery(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 17, Movies: 50, Actors: 20, Directors: 5, CastPerMovie: 2, GenresPerMovie: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	viaExists, err := ex.Query(`select m.title from MOVIES m
		where exists (select * from GENRE g where g.mid = m.id and g.genre = 'action')`)
	if err != nil {
		t.Fatal(err)
	}
	viaJoin, err := ex.Query(`select distinct m.title from MOVIES m, GENRE g
		where g.mid = m.id and g.genre = 'action'`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultKeys(viaExists), resultKeys(viaJoin)
	if len(a) != len(b) {
		t.Fatalf("EXISTS %d rows vs join %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("trivially empty comparison")
	}
}

// TestDifferentialNotInVsNotExists compares two spellings of anti-join.
func TestDifferentialNotInVsNotExists(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 23, Movies: 40, Actors: 15, Directors: 4, CastPerMovie: 2, GenresPerMovie: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	notIn, err := ex.Query(`select m.title from MOVIES m
		where m.id not in (select c.mid from CAST c)`)
	if err != nil {
		t.Fatal(err)
	}
	notExists, err := ex.Query(`select m.title from MOVIES m
		where not exists (select * from CAST c where c.mid = m.id)`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultKeys(notIn), resultKeys(notExists)
	if len(a) != len(b) {
		t.Fatalf("NOT IN %d vs NOT EXISTS %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestDifferentialQuantifiedVsAggregate compares <= ALL with = MIN.
func TestDifferentialQuantifiedVsAggregate(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	viaAll, err := ex.Query(`select m.title, m.year from MOVIES m
		where m.year <= all (select m2.year from MOVIES m2)`)
	if err != nil {
		t.Fatal(err)
	}
	viaMin, err := ex.Query(`select m.title, m.year from MOVIES m
		where m.year = (select min(m2.year) from MOVIES m2)`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultKeys(viaAll), resultKeys(viaMin)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("<=ALL %v vs =MIN %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	// The earliest curated movie is the 1933 King Kong.
	if !strings.Contains(a[0], "King Kong") {
		t.Errorf("earliest = %q", a[0])
	}
}
