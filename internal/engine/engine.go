package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Engine executes SQL statements against a storage.Database.
//
// Concurrency: an Engine is safe for concurrent queries (Query/Select/Exec
// of SELECTs) — the view registry is lock-protected and query evaluation
// never mutates engine or AST state. Reads resolve tables through src, which
// is either the live database (DML statements read their own writes) or a
// pinned storage.Snapshot (At); snapshot-bound engines run the whole
// planned/vectorized/naive pipeline against immutable frozen tables, so any
// number of them execute concurrently with a committing writer. DML always
// goes to the live database and follows the storage layer's contract.
type Engine struct {
	db  *storage.Database
	src storage.TableSource
	st  *engineState
	bud *Budget // per-request budget; nil = unbounded (see cancel.go)
}

// engineState is the mutable configuration shared between the root engine
// and its snapshot-bound clones: one view registry and one set of pipeline
// toggles, whichever surface a statement arrives through.
type engineState struct {
	vmu   sync.RWMutex
	views map[string]*sqlparser.SelectStmt

	// par caps the worker fan-out of parallel join/scan steps; 0 means
	// GOMAXPROCS, 1 forces serial execution.
	par atomic.Int32

	// noPlan disables the cost-based planner (SetPlannerEnabled), forcing
	// the naive environment pipeline for every SELECT.
	noPlan atomic.Bool

	// noVecAgg disables the fused vectorized-aggregation pipeline
	// (SetVecAggEnabled), forcing grouped queries onto the streaming
	// row-at-a-time aggregation — differential tests compare the two.
	noVecAgg atomic.Bool

	// noZoneMaps disables zone-map scan pruning (SetZoneMapsEnabled), forcing
	// scans to test every row instead of skipping morsels whose min/max
	// bounds disprove the filters.
	noZoneMaps atomic.Bool
}

// New creates an engine over db.
func New(db *storage.Database) *Engine {
	return &Engine{db: db, src: db, st: &engineState{views: make(map[string]*sqlparser.SelectStmt)}}
}

// At returns a reader engine bound to the given snapshot: every table
// resolution, statistic, and zone probe reads the snapshot's frozen state,
// while views and pipeline toggles stay shared with the root engine. The
// clone is cheap (three words) — core pins a snapshot per question and
// discards the clone after answering.
func (ex *Engine) At(snap *storage.Snapshot) *Engine {
	return &Engine{db: ex.db, src: snap, st: ex.st, bud: ex.bud}
}

// Source returns the read surface this engine resolves tables through — the
// live database, or the pinned snapshot for an At clone.
func (ex *Engine) Source() storage.TableSource { return ex.src }

// Database exposes the underlying database.
func (ex *Engine) Database() *storage.Database { return ex.db }

// Result is the answer of a SELECT: column names plus rows.
type Result struct {
	Columns []string
	Rows    []storage.Tuple
}

// String renders the result as an aligned text table for CLI output.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Query parses and executes a SELECT statement.
func (ex *Engine) Query(src string) (*Result, error) {
	sel, err := sqlparser.ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return ex.Select(sel)
}

// Select executes a parsed SELECT statement.
func (ex *Engine) Select(sel *sqlparser.SelectStmt) (*Result, error) {
	return ex.execSelect(sel, nil)
}

// Exec parses and executes any statement; for SELECT it returns the result,
// for DML the number of affected rows in count, for DDL (0, nil).
func (ex *Engine) Exec(src string) (res *Result, count int, err error) {
	stmt, err := sqlparser.Parse(src)
	if err != nil {
		return nil, 0, err
	}
	return ex.ExecStatement(stmt)
}

// ExecStatement executes an already-parsed statement (see Exec); callers
// with a cached AST use it to skip re-parsing. The statement is not
// mutated.
func (ex *Engine) ExecStatement(stmt sqlparser.Statement) (res *Result, count int, err error) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		r, err := ex.execSelect(s, nil)
		return r, 0, err
	case *sqlparser.InsertStmt:
		n, err := ex.execInsert(s)
		return nil, n, err
	case *sqlparser.UpdateStmt:
		n, err := ex.execUpdate(s)
		return nil, n, err
	case *sqlparser.DeleteStmt:
		n, err := ex.execDelete(s)
		return nil, n, err
	case *sqlparser.ExplainStmt:
		if _, plan, err := ex.SelectExplained(s.Query); err == nil {
			return explainResult(plan), 0, nil
		} else {
			return nil, 0, err
		}
	case *sqlparser.CreateViewStmt:
		return nil, 0, ex.CreateView(s.Name, s.Query)
	case *sqlparser.CreateTableStmt:
		return nil, 0, fmt.Errorf("engine: CREATE TABLE must be applied through the catalog (use dataset builders)")
	default:
		return nil, 0, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// CreateView registers a named view expanded at reference time. Safe for
// concurrent use.
func (ex *Engine) CreateView(name string, q *sqlparser.SelectStmt) error {
	key := strings.ToLower(name)
	if ex.db.Table(name) != nil {
		return fmt.Errorf("engine: view %q collides with a table", name)
	}
	ex.st.vmu.Lock()
	defer ex.st.vmu.Unlock()
	if _, dup := ex.st.views[key]; dup {
		return fmt.Errorf("engine: duplicate view %q", name)
	}
	ex.st.views[key] = q
	return nil
}

// View returns the definition of a named view, or nil. Safe for concurrent
// use; callers treat the returned AST as immutable.
func (ex *Engine) View(name string) *sqlparser.SelectStmt {
	ex.st.vmu.RLock()
	defer ex.st.vmu.RUnlock()
	return ex.st.views[strings.ToLower(name)]
}

// ---------------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------------

// fromEntry is one flattened FROM element.
type fromEntry struct {
	rel      *catalog.Relation
	tbl      *storage.Table
	alias    string
	joinKind sqlparser.JoinKind
	joinOn   sqlparser.Expr // only for explicit joins
	explicit bool
	view     *viewInstance // non-nil when the entry is a view reference
}

// viewInstance materializes a view as a synthetic relation.
type viewInstance struct {
	rel  *catalog.Relation
	rows []storage.Tuple
}

// execSelectRows runs a (sub)query and returns the raw rows; limit >= 0
// caps output early (used by EXISTS).
func (ex *Engine) execSelectRows(sel *sqlparser.SelectStmt, outer *env, limit int) ([]storage.Tuple, error) {
	res, err := ex.execSelectBounded(sel, outer, limit)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (ex *Engine) execSelect(sel *sqlparser.SelectStmt, outer *env) (*Result, error) {
	return ex.execSelectBounded(sel, outer, -1)
}

func (ex *Engine) execSelectBounded(sel *sqlparser.SelectStmt, outer *env, earlyLimit int) (*Result, error) {
	res, _, err := ex.execSelectExplained(sel, outer, earlyLimit)
	return res, err
}

// execSelectExplained is execSelectBounded plus the plan that produced the
// result (with actual row counts filled in). Plannable queries run the flat
// slot-addressed pipeline; everything else falls back to the environment
// pipeline, reported as a Fallback plan.
func (ex *Engine) execSelectExplained(sel *sqlparser.SelectStmt, outer *env, earlyLimit int) (*Result, *planner.Plan, error) {
	if err := ex.bud.Step(0); err != nil {
		return nil, nil, err
	}
	entries, err := ex.flattenFrom(sel.From)
	if err != nil {
		return nil, nil, err
	}

	grouped := sel.Grouped()

	plan := ex.planFor(sel, entries, outer != nil)
	if !plan.Fallback {
		// Planned execution shapes the result (grouping, DISTINCT, ORDER BY,
		// LIMIT) inside the slot-addressed pipeline.
		out, err := ex.execPlanned(sel, entries, plan, outer, earlyLimit, grouped)
		if err != nil {
			return nil, nil, err
		}
		return out, plan, nil
	}

	// Naive pipeline: build environments row by row, applying every
	// WHERE conjunct as soon as all of its tuple variables are bound
	// (predicate pushdown).
	conjuncts := sqlparser.Conjuncts(sel.Where)
	envs, err := ex.joinFrom(entries, conjuncts, outer)
	if err != nil {
		return nil, nil, err
	}
	plan.ActualRows = len(envs)
	var out *Result
	var rowEnvs []*env    // aligned with out.Rows for ungrouped queries
	var groups []groupRef // aligned with out.Rows for grouped queries
	if grouped {
		out, groups, err = ex.execGrouped(sel, entries, envs)
	} else {
		out, rowEnvs, err = ex.execUngrouped(sel, entries, envs, earlyLimit)
	}
	if err != nil {
		return nil, nil, err
	}

	if sel.Distinct {
		out.Rows = distinctRows(out.Rows)
		rowEnvs, groups = nil, nil // row alignment is lost after dedup
	}
	if len(sel.OrderBy) > 0 {
		if err := ex.orderRows(sel, entries, out, rowEnvs, groups); err != nil {
			return nil, nil, err
		}
	}
	if sel.Limit >= 0 && len(out.Rows) > sel.Limit {
		out.Rows = out.Rows[:sel.Limit]
	}
	return out, plan, nil
}

// explainResult renders an executed plan as a tabular Result — the output
// of the EXPLAIN PLAN statement.
func explainResult(plan *planner.Plan) *Result {
	out := &Result{Columns: []string{"step", "access", "target", "detail", "estimated_rows", "actual_rows", "cost"}}
	s := plan.Summarize()
	if s.Fallback {
		out.Rows = append(out.Rows, storage.Tuple{
			value.NewInt(1),
			value.NewText("naive pipeline"),
			value.NewText(s.Reason),
			value.NewNull(),
			value.NewNull(),
			value.NewInt(int64(plan.ActualRows)),
			value.NewNull(),
		})
		return out
	}
	for i, st := range s.Steps {
		detail := st.JoinKey
		if st.Index != "" {
			if detail != "" {
				detail += " via " + st.Index
			} else {
				detail = "via " + st.Index
			}
		}
		if len(st.Filters) > 0 {
			if detail != "" {
				detail += "; "
			}
			detail += "filter " + strings.Join(st.Filters, " and ")
		}
		var detailVal value.Value
		if detail != "" {
			detailVal = value.NewText(detail)
		} else {
			detailVal = value.NewNull()
		}
		out.Rows = append(out.Rows, storage.Tuple{
			value.NewInt(int64(i + 1)),
			value.NewText(st.Access),
			value.NewText(st.Relation + " " + st.Alias),
			detailVal,
			value.NewFloat(round2(st.EstRows)),
			value.NewInt(int64(st.ActualRows)),
			value.NewFloat(round2(st.EstCost)),
		})
	}
	for _, r := range s.Residual {
		out.Rows = append(out.Rows, storage.Tuple{
			value.NewInt(int64(len(out.Rows) + 1)),
			value.NewText("residual filter"),
			value.NewText(r),
			value.NewNull(),
			value.NewNull(),
			value.NewInt(int64(plan.ActualRows)),
			value.NewNull(),
		})
	}
	for _, sh := range s.Shape {
		actual := value.NewNull()
		if sh.ActualRows >= 0 {
			actual = value.NewInt(int64(sh.ActualRows))
		}
		out.Rows = append(out.Rows, storage.Tuple{
			value.NewInt(int64(len(out.Rows) + 1)),
			value.NewText(sh.Kind),
			value.NewText("(result shaping)"),
			value.NewText(sh.Detail),
			value.NewFloat(round2(sh.EstRows)),
			actual,
			value.NewNull(),
		})
	}
	return out
}

func round2(f float64) float64 {
	return math.Round(f*100) / 100
}

// flattenFrom resolves FROM items (including explicit JOIN chains and view
// references) into a flat entry list.
func (ex *Engine) flattenFrom(from []*sqlparser.TableRef) ([]fromEntry, error) {
	var entries []fromEntry
	seen := map[string]bool{}
	var add func(t *sqlparser.TableRef, kind sqlparser.JoinKind, on sqlparser.Expr, explicit bool) error
	add = func(t *sqlparser.TableRef, kind sqlparser.JoinKind, on sqlparser.Expr, explicit bool) error {
		e := fromEntry{alias: t.Name(), joinKind: kind, joinOn: on, explicit: explicit}
		if tbl := ex.src.Table(t.Relation); tbl != nil {
			e.rel, e.tbl = tbl.Relation(), tbl
		} else if v := ex.View(t.Relation); v != nil {
			inst, err := ex.materializeView(t.Relation, v)
			if err != nil {
				return err
			}
			e.rel, e.view = inst.rel, inst
		} else {
			return fmt.Errorf("engine: unknown relation %q", t.Relation)
		}
		key := strings.ToLower(e.alias)
		if seen[key] {
			return fmt.Errorf("engine: duplicate tuple variable %q", e.alias)
		}
		seen[key] = true
		entries = append(entries, e)
		if t.Join != nil {
			return add(t.Join.Right, t.Join.Kind, t.Join.On, true)
		}
		return nil
	}
	for _, t := range from {
		if err := add(t, sqlparser.JoinInner, nil, false); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// materializeView runs the view query and wraps the result as a relation.
func (ex *Engine) materializeView(name string, q *sqlparser.SelectStmt) (*viewInstance, error) {
	res, err := ex.execSelect(q, nil)
	if err != nil {
		return nil, fmt.Errorf("engine: materializing view %s: %v", name, err)
	}
	rel := &catalog.Relation{Name: name}
	for _, c := range res.Columns {
		rel.Attributes = append(rel.Attributes, &catalog.Attribute{Name: c, Type: catalog.Text})
	}
	return &viewInstance{rel: rel, rows: res.Rows}, nil
}

func (e *fromEntry) tuples() []storage.Tuple {
	if e.view != nil {
		return e.view.rows
	}
	return e.tbl.Tuples()
}

// joinFrom produces every joined environment. Inner joins use nested loops
// with pushed-down predicates plus a hash-join fast path for equality
// predicates; LEFT/RIGHT joins null-extend.
func (ex *Engine) joinFrom(entries []fromEntry, conjuncts []sqlparser.Expr, outer *env) ([]*env, error) {
	// Start with a single environment holding no bindings.
	envs := []*env{{parent: outer}}
	if len(entries) == 0 {
		return envs, nil
	}
	applied := make([]bool, len(conjuncts))

	boundAliases := map[string]*catalog.Relation{}
	// Aliases visible from outer scopes count as bound for pushdown
	// purposes; conservatively treat unqualified refs as unbound until all
	// entries are joined.
	for idx := range entries {
		e := &entries[idx]
		boundAliases[strings.ToLower(e.alias)] = e.rel

		var stepConj []sqlparser.Expr
		if e.explicit && e.joinOn != nil {
			stepConj = append(stepConj, sqlparser.Conjuncts(e.joinOn)...)
		}
		// Pull in WHERE conjuncts that just became fully bound (only for
		// inner semantics — applying WHERE during an outer join would be
		// wrong, but entries from comma-FROM are always inner).
		if e.joinKind == sqlparser.JoinInner {
			for ci, c := range conjuncts {
				if applied[ci] {
					continue
				}
				if conjBound(c, boundAliases, idx == len(entries)-1) {
					stepConj = append(stepConj, c)
					applied[ci] = true
				}
			}
		}

		next, err := ex.joinStep(envs, e, stepConj)
		if err != nil {
			return nil, err
		}
		envs = next
	}
	// Any conjunct not yet applied (e.g. due to outer joins or unqualified
	// columns) filters the final environments.
	for ci, c := range conjuncts {
		if applied[ci] {
			continue
		}
		filtered := envs[:0]
		for _, en := range envs {
			v, err := ex.evalExpr(c, en, nil)
			if err != nil {
				return nil, err
			}
			if !v.IsNull() && v.Kind() == value.Bool && v.Bool() {
				filtered = append(filtered, en)
			}
		}
		envs = filtered
	}
	return envs, nil
}

// conjBound reports whether every column reference of c resolves within
// boundAliases (or, when last is true, anywhere — the final join step can
// evaluate everything; unqualified refs are also allowed then).
func conjBound(c sqlparser.Expr, bound map[string]*catalog.Relation, last bool) bool {
	if last {
		return true
	}
	ok := true
	sqlparser.WalkExpr(c, func(x sqlparser.Expr) bool {
		switch n := x.(type) {
		case *sqlparser.ColumnRef:
			if n.Table == "" {
				// Unqualified: only safe when a unique bound relation has it.
				count := 0
				for _, rel := range bound {
					if rel.AttrIndex(n.Column) >= 0 {
						count++
					}
				}
				if count != 1 {
					ok = false
					return false
				}
				return true
			}
			if _, b := bound[strings.ToLower(n.Table)]; !b {
				ok = false
				return false
			}
		case *sqlparser.InExpr:
			if n.Subquery != nil {
				// Correlated subqueries may reference anything; defer them.
				ok = false
				return false
			}
		case *sqlparser.ExistsExpr, *sqlparser.QuantifiedExpr, *sqlparser.SubqueryExpr:
			ok = false
			return false
		}
		return true
	})
	return ok
}

// joinStep extends each environment with every tuple of e that satisfies
// stepConj. For equality conjuncts of the form bound.col = e.col it builds a
// hash table over e once and probes it per environment.
func (ex *Engine) joinStep(envs []*env, e *fromEntry, stepConj []sqlparser.Expr) ([]*env, error) {
	tuples := e.tuples()
	ex.bud.AddTotal(len(tuples))
	if err := ex.bud.Step(0); err != nil {
		return nil, err
	}

	// Hash-join fast path: find an equality conjunct linking e to an
	// already-bound alias.
	var probeExpr sqlparser.Expr // evaluated against the existing env
	var buildPos int             // attribute position in e
	rest := stepConj
	if e.joinKind == sqlparser.JoinInner {
		for i, c := range stepConj {
			b, ok := c.(*sqlparser.BinaryExpr)
			if !ok || b.Op != sqlparser.OpEq {
				continue
			}
			l, lok := b.Left.(*sqlparser.ColumnRef)
			r, rok := b.Right.(*sqlparser.ColumnRef)
			if !lok || !rok {
				continue
			}
			lIsE := strings.EqualFold(l.Table, e.alias)
			rIsE := strings.EqualFold(r.Table, e.alias)
			if lIsE == rIsE { // both or neither refer to e
				continue
			}
			var eRef, oRef *sqlparser.ColumnRef
			if lIsE {
				eRef, oRef = l, r
			} else {
				eRef, oRef = r, l
			}
			pos := e.rel.AttrIndex(eRef.Column)
			if pos < 0 {
				return nil, fmt.Errorf("engine: relation %s has no attribute %q", e.rel.Name, eRef.Column)
			}
			probeExpr = oRef
			buildPos = pos
			// Drop the consumed conjunct with one exact-size allocation
			// (append(append([]Expr{}, ...)...) copied twice and
			// over-allocated on every join step).
			rest = make([]sqlparser.Expr, 0, len(stepConj)-1)
			rest = append(rest, stepConj[:i]...)
			rest = append(rest, stepConj[i+1:]...)
			break
		}
	}

	// matchTuple extends base with tup and applies conds; nil env means the
	// candidate failed a condition. It only reads shared state, so the
	// parallel fan-out below may call it from many goroutines.
	matchTuple := func(base *env, tup storage.Tuple, conds []sqlparser.Expr) (*env, error) {
		cand := &env{parent: base.parent}
		cand.bindings = append(append([]binding{}, base.bindings...), binding{alias: e.alias, rel: e.rel, tuple: tup})
		for _, c := range conds {
			v, err := ex.evalExpr(c, cand, nil)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || v.Kind() != value.Bool || !v.Bool() {
				return nil, nil
			}
		}
		return cand, nil
	}

	if probeExpr != nil {
		ht := make(map[string][]storage.Tuple, len(tuples))
		for _, tup := range tuples {
			v := tup[buildPos]
			if v.IsNull() {
				continue
			}
			ht[v.Key()] = append(ht[v.Key()], tup)
		}
		// Probe the (read-only) hash table for a chunk of environments.
		probeRange := func(lo, hi int) ([]*env, error) {
			var out []*env
			for bi, base := range envs[lo:hi] {
				if err := ex.bud.Tick(bi); err != nil {
					return nil, err
				}
				pv, err := ex.evalExpr(probeExpr, base, nil)
				if err != nil {
					return nil, err
				}
				if pv.IsNull() {
					continue
				}
				for _, tup := range ht[pv.Key()] {
					cand, err := matchTuple(base, tup, rest)
					if err != nil {
						return nil, err
					}
					if cand != nil {
						out = append(out, cand)
					}
				}
			}
			return out, nil
		}
		if w := ex.workersFor(len(envs)); w > 1 {
			return gatherParallel(len(envs), w, probeRange)
		}
		return probeRange(0, len(envs))
	}

	// Nested loop, with LEFT/RIGHT outer handling for explicit joins.
	if e.explicit && (e.joinKind == sqlparser.JoinLeft || e.joinKind == sqlparser.JoinRight) {
		return ex.outerJoinStep(envs, e, stepConj)
	}
	// crossMatch is the one nested-loop body every serial and parallel
	// variant below shares: bases × tups, in order.
	crossMatch := func(bases []*env, tups []storage.Tuple) ([]*env, error) {
		var out []*env
		for bi, base := range bases {
			if err := ex.bud.Tick(bi); err != nil {
				return nil, err
			}
			for tj, tup := range tups {
				if err := ex.bud.Tick(tj); err != nil {
					return nil, err
				}
				cand, err := matchTuple(base, tup, stepConj)
				if err != nil {
					return nil, err
				}
				if cand != nil {
					out = append(out, cand)
				}
			}
		}
		return out, nil
	}
	if w := ex.workersFor(len(envs)); w > 1 {
		return gatherParallel(len(envs), w, func(lo, hi int) ([]*env, error) {
			return crossMatch(envs[lo:hi], tuples)
		})
	}
	// Few environments over a big table — the base-table scan/filter case —
	// fans out across tuple chunks instead, per environment in order.
	if w := ex.workersFor(len(envs) * len(tuples)); w > 1 && len(tuples) >= w {
		var out []*env
		for _, base := range envs {
			part, err := gatherParallel(len(tuples), w, func(lo, hi int) ([]*env, error) {
				return crossMatch([]*env{base}, tuples[lo:hi])
			})
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil
	}
	return crossMatch(envs, tuples)
}

// outerJoinStep implements LEFT JOIN (preserve existing envs) and RIGHT JOIN
// (preserve new-table tuples) with NULL extension.
func (ex *Engine) outerJoinStep(envs []*env, e *fromEntry, conds []sqlparser.Expr) ([]*env, error) {
	tuples := e.tuples()
	nullTuple := make(storage.Tuple, len(e.rel.Attributes))
	var out []*env
	matchedRight := make([]bool, len(tuples))
	for bi, base := range envs {
		if err := ex.bud.Tick(bi); err != nil {
			return nil, err
		}
		matched := false
		for ti, tup := range tuples {
			if err := ex.bud.Tick(ti); err != nil {
				return nil, err
			}
			cand := &env{parent: base.parent}
			cand.bindings = append(append([]binding{}, base.bindings...), binding{alias: e.alias, rel: e.rel, tuple: tup})
			ok := true
			for _, c := range conds {
				v, err := ex.evalExpr(c, cand, nil)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || v.Kind() != value.Bool || !v.Bool() {
					ok = false
					break
				}
			}
			if ok {
				matched = true
				matchedRight[ti] = true
				out = append(out, cand)
			}
		}
		if !matched && e.joinKind == sqlparser.JoinLeft {
			cand := &env{parent: base.parent}
			cand.bindings = append(append([]binding{}, base.bindings...), binding{alias: e.alias, rel: e.rel, tuple: nullTuple})
			out = append(out, cand)
		}
	}
	if e.joinKind == sqlparser.JoinRight {
		// Preserve unmatched right tuples with NULLs for all prior bindings.
		var protoBindings []binding
		if len(envs) > 0 {
			for _, b := range envs[0].bindings {
				protoBindings = append(protoBindings, binding{
					alias: b.alias, rel: b.rel,
					tuple: make(storage.Tuple, len(b.rel.Attributes)),
				})
			}
		}
		var parent *env
		if len(envs) > 0 {
			parent = envs[0].parent
		}
		for ti, tup := range tuples {
			if matchedRight[ti] {
				continue
			}
			cand := &env{parent: parent}
			cand.bindings = append(append([]binding{}, protoBindings...), binding{alias: e.alias, rel: e.rel, tuple: tup})
			out = append(out, cand)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

// expandItems resolves *, alias.* and returns the final select items plus
// output column names.
func expandItems(sel *sqlparser.SelectStmt, entries []fromEntry) ([]sqlparser.SelectItem, []string, error) {
	var items []sqlparser.SelectItem
	var cols []string
	for _, it := range sel.Items {
		switch x := it.Expr.(type) {
		case *sqlparser.Star:
			for _, e := range entries {
				for _, a := range e.rel.Attributes {
					items = append(items, sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Table: e.alias, Column: a.Name}})
					cols = append(cols, a.Name)
				}
			}
		case *sqlparser.ColumnRef:
			if x.Column == "*" {
				found := false
				for _, e := range entries {
					if strings.EqualFold(e.alias, x.Table) {
						for _, a := range e.rel.Attributes {
							items = append(items, sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Table: e.alias, Column: a.Name}})
							cols = append(cols, a.Name)
						}
						found = true
						break
					}
				}
				if !found {
					return nil, nil, fmt.Errorf("engine: unknown tuple variable %q", x.Table)
				}
				continue
			}
			items = append(items, it)
			cols = append(cols, itemName(it))
		default:
			items = append(items, it)
			cols = append(cols, itemName(it))
		}
	}
	return items, cols, nil
}

func itemName(it sqlparser.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*sqlparser.ColumnRef); ok {
		return c.Column
	}
	return it.Expr.SQL()
}

func (ex *Engine) execUngrouped(sel *sqlparser.SelectStmt, entries []fromEntry, envs []*env, earlyLimit int) (*Result, []*env, error) {
	items, cols, err := expandItems(sel, entries)
	if err != nil {
		return nil, nil, err
	}
	out := &Result{Columns: cols}
	var rowEnvs []*env
	for ei, en := range envs {
		if err := ex.bud.Tick(ei); err != nil {
			return nil, nil, err
		}
		row := make(storage.Tuple, len(items))
		for i, it := range items {
			v, err := ex.evalExpr(it.Expr, en, nil)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
		rowEnvs = append(rowEnvs, en)
		if earlyLimit >= 0 && len(out.Rows) >= earlyLimit &&
			len(sel.OrderBy) == 0 && !sel.Distinct && sel.Limit < 0 {
			return out, rowEnvs, nil
		}
	}
	return out, rowEnvs, nil
}

// groupRef ties one grouped output row back to its group so ORDER BY can
// evaluate aggregate expressions (and grouping keys outside the select list)
// against the group context.
type groupRef struct {
	env *env
	gc  *groupCtx
}

// resolveEntryColumn resolves a column reference against the FROM entries,
// mirroring env.lookup's top scope: qualified names take the first
// alias-or-relation match, unqualified names must be unique.
func resolveEntryColumn(entries []fromEntry, ref *sqlparser.ColumnRef) (int, int, bool) {
	if ref.Table != "" {
		for i := range entries {
			e := &entries[i]
			if strings.EqualFold(e.alias, ref.Table) || strings.EqualFold(e.rel.Name, ref.Table) {
				pos := e.rel.AttrIndex(ref.Column)
				if pos < 0 {
					return 0, 0, false
				}
				return i, pos, true
			}
		}
		return 0, 0, false
	}
	found, fpos := -1, -1
	for i := range entries {
		if pos := entries[i].rel.AttrIndex(ref.Column); pos >= 0 {
			if found >= 0 {
				return 0, 0, false // ambiguous
			}
			found, fpos = i, pos
		}
	}
	if found < 0 {
		return 0, 0, false
	}
	return found, fpos, true
}

// groupByIndex matches e against the GROUP BY expressions: textually
// identical, or a column reference resolving to the same attribute (so
// `year` matches `group by m.year`).
func groupByIndex(e sqlparser.Expr, groupBy []sqlparser.Expr, entries []fromEntry) (int, bool) {
	eSQL := e.SQL()
	eRef, eIsRef := e.(*sqlparser.ColumnRef)
	for j, g := range groupBy {
		if g.SQL() == eSQL {
			return j, true
		}
		if !eIsRef {
			continue
		}
		gRef, ok := g.(*sqlparser.ColumnRef)
		if !ok {
			continue
		}
		ei, ep, eok := resolveEntryColumn(entries, eRef)
		gi, gp, gok := resolveEntryColumn(entries, gRef)
		if eok && gok && ei == gi && ep == gp {
			return j, true
		}
	}
	return 0, false
}

// matchesGroupBy reports whether e is one of the GROUP BY expressions.
func matchesGroupBy(e sqlparser.Expr, groupBy []sqlparser.Expr, entries []fromEntry) bool {
	_, ok := groupByIndex(e, groupBy, entries)
	return ok
}

// checkGroupedExpr enforces the standard-SQL grouping rule: in a grouped
// query, a column reference is legal only inside an aggregate or when the
// enclosing expression appears in GROUP BY. Subquery subtrees are exempt —
// they evaluate against the group's representative environment, which is how
// correlated HAVING subqueries reference grouping columns.
func checkGroupedExpr(e sqlparser.Expr, sel *sqlparser.SelectStmt, entries []fromEntry) error {
	var bad *sqlparser.ColumnRef
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if bad != nil {
			return false
		}
		if matchesGroupBy(x, sel.GroupBy, entries) {
			return false
		}
		switch n := x.(type) {
		case *sqlparser.AggregateExpr:
			return false // aggregate arguments range over the group's rows
		case *sqlparser.ColumnRef:
			if n.Column == "*" {
				return false
			}
			bad = n
			return false
		}
		return true
	})
	if bad != nil {
		return fmt.Errorf("engine: column %s must appear in GROUP BY or an aggregate", bad.SQL())
	}
	return nil
}

func (ex *Engine) execGrouped(sel *sqlparser.SelectStmt, entries []fromEntry, envs []*env) (*Result, []groupRef, error) {
	items, cols, err := expandItems(sel, entries)
	if err != nil {
		return nil, nil, err
	}
	// Standard-SQL grouping rule: a select item or HAVING term must be a
	// grouping expression or an aggregate — the group's first row is not a
	// stand-in for ungrouped columns.
	for _, it := range items {
		if err := checkGroupedExpr(it.Expr, sel, entries); err != nil {
			return nil, nil, err
		}
	}
	if sel.Having != nil {
		if err := checkGroupedExpr(sel.Having, sel, entries); err != nil {
			return nil, nil, err
		}
	}
	// Partition envs into groups keyed by the GROUP BY expressions; with no
	// GROUP BY the whole input is one group.
	type group struct {
		ctx *groupCtx
	}
	groupsByKey := map[string]*group{}
	var order []string
	var keyBuf []byte // reused; value.AppendKey keys cannot collide across adjacent values
	for ei, en := range envs {
		if err := ex.bud.Tick(ei); err != nil {
			return nil, nil, err
		}
		keyBuf = keyBuf[:0]
		for _, g := range sel.GroupBy {
			v, err := ex.evalExpr(g, en, nil)
			if err != nil {
				return nil, nil, err
			}
			keyBuf = v.AppendKey(keyBuf)
		}
		grp, ok := groupsByKey[string(keyBuf)]
		if !ok {
			k := string(keyBuf)
			grp = &group{ctx: &groupCtx{}}
			groupsByKey[k] = grp
			order = append(order, k)
		}
		grp.ctx.rows = append(grp.ctx.rows, en)
	}
	// A grouped query with no GROUP BY and no input rows still yields one
	// group (COUNT(*) = 0).
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		k := ""
		groupsByKey[k] = &group{ctx: &groupCtx{}}
		order = append(order, k)
	}

	out := &Result{Columns: cols}
	var refs []groupRef
	for _, k := range order {
		grp := groupsByKey[k]
		// Evaluate HAVING with an env seeded from the group's first row so
		// correlated subqueries can reference group-by columns.
		he := &env{}
		if len(grp.ctx.rows) > 0 {
			he = grp.ctx.rows[0]
		}
		if sel.Having != nil {
			v, err := ex.evalExpr(sel.Having, he, grp.ctx)
			if err != nil {
				return nil, nil, err
			}
			if v.IsNull() || v.Kind() != value.Bool || !v.Bool() {
				continue
			}
		}
		row := make(storage.Tuple, len(items))
		for i, it := range items {
			v, err := ex.evalExpr(it.Expr, he, grp.ctx)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
		refs = append(refs, groupRef{env: he, gc: grp.ctx})
	}
	return out, refs, nil
}

// orderOrdinal resolves the SQL ordinal form `ORDER BY <n>`: a bare integer
// literal names the n-th select-list column (1-based). Other literals stay
// constant sort keys; out-of-range ordinals are an error.
func orderOrdinal(o sqlparser.OrderItem, n int) (int, bool, error) {
	lit, ok := o.Expr.(*sqlparser.Literal)
	if !ok || lit.Value.Kind() != value.Int {
		return 0, false, nil
	}
	p := lit.Value.Int()
	if p < 1 || p > int64(n) {
		return 0, false, fmt.Errorf("engine: ORDER BY position %d is not in the select list", p)
	}
	return int(p) - 1, true, nil
}

// orderTarget resolves an ORDER BY item to a select-list column: the SQL
// ordinal form first, then alias/name/expression matching. A non-nil error
// is an out-of-range ordinal; ok=false with a nil error means the item is
// an expression each pipeline evaluates its own way.
func orderTarget(o sqlparser.OrderItem, items []sqlparser.SelectItem) (int, bool, error) {
	if col, ok, err := orderOrdinal(o, len(items)); err != nil {
		return 0, false, err
	} else if ok {
		return col, true, nil
	}
	if col, ok := orderColumnTarget(o, items); ok {
		return col, true, nil
	}
	return 0, false, nil
}

// orderColumnTarget matches an ORDER BY expression to a select-list column:
// by alias or column name, then by identical expression text.
func orderColumnTarget(o sqlparser.OrderItem, items []sqlparser.SelectItem) (int, bool) {
	if c, ok := o.Expr.(*sqlparser.ColumnRef); ok {
		for i, it := range items {
			if strings.EqualFold(itemName(it), c.Column) && (c.Table == "" || aliasMatches(it, c)) {
				return i, true
			}
		}
	}
	oSQL := o.Expr.SQL()
	for i, it := range items {
		if it.Expr.SQL() == oSQL {
			return i, true
		}
	}
	return 0, false
}

func (ex *Engine) orderRows(sel *sqlparser.SelectStmt, entries []fromEntry, out *Result, rowEnvs []*env, groups []groupRef) error {
	// Build sort keys: each ORDER BY expression is an ordinal, a select-list
	// alias/position, or an expression over output columns; beyond those,
	// grouped queries evaluate expressions (aggregates, grouping keys) in
	// the row's group context and ungrouped queries against the stashed envs.
	items, _, err := expandItems(sel, entries)
	if err != nil {
		return err
	}
	// Resolve each order item once; errors stay deferred until a row needs
	// the key, matching the per-row resolution they replace.
	specs := make([]struct {
		col int
		err error
	}, len(sel.OrderBy))
	for j, o := range sel.OrderBy {
		specs[j].col = -1
		if col, ok, err := orderTarget(o, items); err != nil {
			specs[j].err = err
		} else if ok {
			specs[j].col = col
		} else if groups != nil {
			// Grouped: the expression evaluates in the group context (ORDER
			// BY <aggregate>, grouping keys outside the select list) and
			// must obey the grouping rule.
			specs[j].err = checkGroupedExpr(o.Expr, sel, entries)
		} else if rowEnvs == nil {
			specs[j].err = fmt.Errorf("engine: ORDER BY expression %s is not in the select list", o.Expr.SQL())
		}
	}
	keyFor := func(rowIdx, j int) (value.Value, error) {
		o := sel.OrderBy[j]
		if specs[j].err != nil {
			return value.Value{}, specs[j].err
		}
		if specs[j].col >= 0 {
			return out.Rows[rowIdx][specs[j].col], nil
		}
		if groups != nil && rowIdx < len(groups) {
			return ex.evalExpr(o.Expr, groups[rowIdx].env, groups[rowIdx].gc)
		}
		return ex.evalExpr(o.Expr, rowEnvs[rowIdx], nil)
	}
	type keyedRow struct {
		row  storage.Tuple
		keys []value.Value
	}
	rows := make([]keyedRow, len(out.Rows))
	for i := range out.Rows {
		keys := make([]value.Value, len(sel.OrderBy))
		for j := range sel.OrderBy {
			v, err := keyFor(i, j)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		rows[i] = keyedRow{row: out.Rows[i], keys: keys}
	}
	var sortErr error
	sort.SliceStable(rows, func(a, b int) bool {
		for j, o := range sel.OrderBy {
			ka, kb := rows[a].keys[j], rows[b].keys[j]
			// NULLs sort first ascending, last descending.
			if ka.IsNull() || kb.IsNull() {
				if ka.IsNull() && kb.IsNull() {
					continue
				}
				return ka.IsNull() != o.Desc
			}
			c, err := ka.Compare(kb)
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for i := range rows {
		out.Rows[i] = rows[i].row
	}
	return nil
}

func aliasMatches(it sqlparser.SelectItem, c *sqlparser.ColumnRef) bool {
	ic, ok := it.Expr.(*sqlparser.ColumnRef)
	return ok && strings.EqualFold(ic.Table, c.Table)
}

func distinctRows(rows []storage.Tuple) []storage.Tuple {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var keyBuf []byte // reused; value.AppendKey keys cannot collide across adjacent values
	for _, r := range rows {
		keyBuf = keyBuf[:0]
		for _, v := range r {
			keyBuf = v.AppendKey(keyBuf)
		}
		if !seen[string(keyBuf)] {
			seen[string(keyBuf)] = true
			out = append(out, r)
		}
	}
	return out
}
