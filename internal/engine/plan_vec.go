package engine

import (
	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file lowers plan predicates onto the columnar store: a self-filter
// conjunct of the shape <column> <op> <literal> (plus IS NULL, BETWEEN, IN,
// and LIKE) compiles to a vecPred that tests a row position against the
// column vector directly — integer and date comparisons run on []int64,
// float on []float64, and text equality compares dictionary codes without
// touching a single string (ordering and LIKE precompute one verdict per
// dictionary entry). Vectorized predicates never error and never materialize
// a row, so rejected rows cost a few loads. Only the longest specializable
// prefix of a step's self-filters vectorizes: the remaining filters keep
// their original evaluation order, preserving error parity with the naive
// pipeline's short-circuit conjunct order.
//
// On top of the predicates sits a whole-query fast path: a single-table full
// scan whose filters are all vectorized and whose select list reads columns
// directly skips the arena pipeline entirely — one counting pass over the
// vectors, then an exactly-sized projection straight from the columns.

// vecPred reports whether table row ti passes one vectorized predicate.
type vecPred func(ti int) bool

// vecPass applies step si's vectorized filter prefix to row ti.
func (pq *plannedQuery) vecPass(si int, ti int) bool {
	for _, p := range pq.stepVec[si] {
		if !p(ti) {
			return false
		}
	}
	return true
}

// stepCol resolves an expression to a column of st's own table; ok is false
// for anything but a plain, unambiguous reference into this step.
func (pq *plannedQuery) stepCol(st *planner.Step, e sqlparser.Expr) (storage.Col, bool) {
	ref, ok := e.(*sqlparser.ColumnRef)
	if !ok || ref.Column == "*" {
		return storage.Col{}, false
	}
	slot, ok := pq.slotOf(ref)
	if !ok {
		return storage.Col{}, false
	}
	pos := slot - st.Offset
	if pos < 0 || pos >= len(st.Input.Rel.Attributes) {
		return storage.Col{}, false
	}
	return st.Input.Tbl.Col(pos), true
}

func litOf(e sqlparser.Expr) (value.Value, bool) {
	l, ok := e.(*sqlparser.Literal)
	if !ok {
		return value.Value{}, false
	}
	return l.Value, true
}

// cmpTest maps a comparison operator onto a test over the three-way compare
// result; ok is false for non-comparison operators.
func cmpTest(op sqlparser.BinaryOp) (test func(int) bool, equality, ok bool) {
	switch op {
	case sqlparser.OpEq:
		return func(c int) bool { return c == 0 }, true, true
	case sqlparser.OpNe:
		return func(c int) bool { return c != 0 }, true, true
	case sqlparser.OpLt:
		return func(c int) bool { return c < 0 }, false, true
	case sqlparser.OpLe:
		return func(c int) bool { return c <= 0 }, false, true
	case sqlparser.OpGt:
		return func(c int) bool { return c > 0 }, false, true
	case sqlparser.OpGe:
		return func(c int) bool { return c >= 0 }, false, true
	default:
		return nil, false, false
	}
}

func vecFalse(int) bool { return false }

// notNull wraps a payload test with the column's null check (NULL compares
// as unknown, so it always rejects). Columns with no NULLs skip the check.
func notNull(col storage.Col, inner vecPred) vecPred {
	if !col.HasNulls() {
		return inner
	}
	return func(ti int) bool { return !col.Null(ti) && inner(ti) }
}

// compileVecFilter lowers one self-filter conjunct of step st to a vecPred.
// ok=false means the conjunct is outside the vectorizable dialect (or could
// raise an error the generic path must surface) and compiles normally.
func (pq *plannedQuery) compileVecFilter(st *planner.Step, e sqlparser.Expr) (vecPred, bool) {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		col, lit, op, ok := pq.splitVecCompare(st, x)
		if !ok {
			return nil, false
		}
		fast := !pq.ex.st.noZoneMaps.Load()
		if op == sqlparser.OpLike {
			return vecLike(col, lit, fast)
		}
		return vecCompare(col, op, lit, fast)

	case *sqlparser.IsNullExpr:
		col, ok := pq.stepCol(st, x.Inner)
		if !ok {
			return nil, false
		}
		want := !x.Negate
		return func(ti int) bool { return col.Null(ti) == want }, true

	case *sqlparser.BetweenExpr:
		return pq.vecBetween(st, x)

	case *sqlparser.InExpr:
		return pq.vecIn(st, x)

	default:
		return nil, false
	}
}

// splitVecCompare matches col-op-lit (either orientation, flipping the
// operator for lit-op-col) for comparison and LIKE operators.
func (pq *plannedQuery) splitVecCompare(st *planner.Step, x *sqlparser.BinaryExpr) (storage.Col, value.Value, sqlparser.BinaryOp, bool) {
	op := x.Op
	if _, _, ok := cmpTest(op); !ok && op != sqlparser.OpLike {
		return storage.Col{}, value.Value{}, 0, false
	}
	if col, ok := pq.stepCol(st, x.Left); ok {
		if lit, ok := litOf(x.Right); ok {
			return col, lit, op, true
		}
		return storage.Col{}, value.Value{}, 0, false
	}
	if op == sqlparser.OpLike {
		return storage.Col{}, value.Value{}, 0, false // pattern LIKE col: keep generic
	}
	if lit, ok := litOf(x.Left); ok {
		if col, ok := pq.stepCol(st, x.Right); ok {
			switch op { // flip to col-op-lit orientation
			case sqlparser.OpLt:
				op = sqlparser.OpGt
			case sqlparser.OpLe:
				op = sqlparser.OpGe
			case sqlparser.OpGt:
				op = sqlparser.OpLt
			case sqlparser.OpGe:
				op = sqlparser.OpLe
			}
			return col, lit, op, true
		}
	}
	return storage.Col{}, value.Value{}, 0, false
}

// comparableKinds reports whether a column of kind ck orders against a
// literal of kind lk without error (mirrors value.Compare).
func comparableKinds(ck, lk value.Kind) bool {
	if (ck == value.Int || ck == value.Float) && (lk == value.Int || lk == value.Float) {
		return true
	}
	return ck == lk && ck != value.Null
}

// vecCompare builds the column-vs-literal comparison predicate. Semantics
// mirror compareOp exactly: NULL rejects, mismatched non-numeric kinds are
// false (not an error) for = and <>, and an ordering across them stays on
// the generic path so its error surfaces. fast gates the encoded fast paths
// (frame-of-reference deltas, sorted-dictionary rank compares) together with
// the rest of the zone-map layer, so disabling zone maps reverts the scan to
// plain payload reads.
func vecCompare(col storage.Col, op sqlparser.BinaryOp, lit value.Value, fast bool) (vecPred, bool) {
	test, equality, _ := cmpTest(op)
	if lit.IsNull() {
		return vecFalse, true // comparison with NULL is never true
	}
	if !comparableKinds(col.Kind(), lit.Kind()) {
		if !equality {
			return nil, false // ordering across kinds errors; keep generic
		}
		// = is false and <> is true across mismatched non-numeric kinds.
		if op == sqlparser.OpEq {
			return vecFalse, true
		}
		return notNull(col, func(int) bool { return true }), true
	}
	switch col.Kind() {
	case value.Int:
		lf := lit.Float()
		if fb, d8, ok := col.FORInts(); ok && fast {
			// Frame-of-reference path: stream one delta byte per row instead
			// of eight payload bytes (value = zone base + delta).
			return notNull(col, func(ti int) bool {
				x := fb[ti>>storage.ZoneShift] + int64(d8[ti>>storage.ZoneShift][ti&storage.ZoneMask])
				return test(cmpFloat(float64(x), lf))
			}), true
		}
		xs := col.Ints()
		return notNull(col, func(ti int) bool { return test(cmpFloat(float64(xs[ti]), lf)) }), true
	case value.Float:
		xs := col.Floats()
		lf := lit.Float()
		return notNull(col, func(ti int) bool { return test(cmpFloat(xs[ti], lf)) }), true
	case value.Date:
		ld := lit.DateDays()
		if fb, d8, ok := col.FORInts(); ok && fast {
			return notNull(col, func(ti int) bool {
				x := fb[ti>>storage.ZoneShift] + int64(d8[ti>>storage.ZoneShift][ti&storage.ZoneMask])
				return test(cmpInt(x, ld))
			}), true
		}
		xs := col.Ints()
		return notNull(col, func(ti int) bool { return test(cmpInt(xs[ti], ld)) }), true
	case value.Bool:
		xs := col.Bools()
		lb := lit.Bool()
		return notNull(col, func(ti int) bool { return test(cmpBool(xs[ti], lb)) }), true
	case value.Text:
		codes := col.Codes()
		switch op {
		case sqlparser.OpEq:
			code, present := col.DictCode(lit.Text())
			if !present {
				return vecFalse, true // the string never occurs in the column
			}
			return notNull(col, func(ti int) bool { return codes[ti] == code }), true
		case sqlparser.OpNe:
			code, present := col.DictCode(lit.Text())
			if !present {
				return notNull(col, func(int) bool { return true }), true
			}
			return notNull(col, func(ti int) bool { return codes[ti] != code }), true
		default:
			ls := lit.Text()
			if fast && col.SortedDict() {
				// Sorted dictionary: the predicate is a rank-range compare —
				// no per-entry verdict array, no string touched per row.
				ranks := col.Ranks()
				lb := uint32(col.LowerBoundRank(ls))
				ub := lb
				if _, present := col.DictCode(ls); present {
					ub++
				}
				var rtest func(uint32) bool
				switch op {
				case sqlparser.OpLt:
					rtest = func(r uint32) bool { return r < lb }
				case sqlparser.OpLe:
					rtest = func(r uint32) bool { return r < ub }
				case sqlparser.OpGt:
					rtest = func(r uint32) bool { return r >= ub }
				default: // OpGe
					rtest = func(r uint32) bool { return r >= lb }
				}
				return notNull(col, func(ti int) bool { return rtest(ranks[codes[ti]]) }), true
			}
			// Ordering: one verdict per dictionary entry, then a code lookup
			// per row.
			verdict := make([]bool, col.DictLen())
			for c := range verdict {
				s := col.DictString(uint32(c))
				verdict[c] = test(cmpString(s, ls))
			}
			return notNull(col, func(ti int) bool { return verdict[codes[ti]] }), true
		}
	default:
		return nil, false
	}
}

// vecLike precomputes the LIKE verdict per dictionary entry. Non-text
// operands error in the generic path, so they stay there. With a sorted
// dictionary, a pure prefix pattern ('abc%') becomes a rank-range compare:
// matches are exactly the strings in [prefix, successor).
func vecLike(col storage.Col, lit value.Value, fast bool) (vecPred, bool) {
	if col.Kind() != value.Text || lit.Kind() != value.Text {
		return nil, false // NULL patterns and non-text operands stay generic
	}
	pat := lit.Text()
	if fast && col.SortedDict() {
		if prefix, prefixOnly := planner.LikePrefix(pat); prefixOnly && (prefix == "" || likePrefixSafe(prefix)) {
			lb := uint32(col.LowerBoundRank(prefix))
			ub := uint32(col.DictLen())
			if succ, ok := planner.PrefixSuccessor(prefix); ok {
				ub = uint32(col.LowerBoundRank(succ))
			}
			ranks := col.Ranks()
			codes := col.Codes()
			return notNull(col, func(ti int) bool {
				r := ranks[codes[ti]]
				return r >= lb && r < ub
			}), true
		}
	}
	verdict := make([]bool, col.DictLen())
	for c := range verdict {
		verdict[c] = likeMatch(col.DictString(uint32(c)), pat)
	}
	codes := col.Codes()
	return notNull(col, func(ti int) bool { return verdict[codes[ti]] }), true
}

// vecBetween lowers subject BETWEEN lo AND hi with literal bounds.
func (pq *plannedQuery) vecBetween(st *planner.Step, x *sqlparser.BetweenExpr) (vecPred, bool) {
	col, ok := pq.stepCol(st, x.Subject)
	if !ok {
		return nil, false
	}
	lo, ok := litOf(x.Lo)
	if !ok {
		return nil, false
	}
	hi, ok := litOf(x.Hi)
	if !ok {
		return nil, false
	}
	if lo.IsNull() || hi.IsNull() {
		return vecFalse, true // NULL bound: the test is unknown for every row
	}
	// Both bound comparisons must be error-free for every non-NULL subject.
	if !comparableKinds(col.Kind(), lo.Kind()) || !comparableKinds(col.Kind(), hi.Kind()) {
		return nil, false
	}
	fast := !pq.ex.st.noZoneMaps.Load()
	ge, ok := vecCompare(col, sqlparser.OpGe, lo, fast)
	if !ok {
		return nil, false
	}
	le, ok := vecCompare(col, sqlparser.OpLe, hi, fast)
	if !ok {
		return nil, false
	}
	if x.Negate {
		return notNull(col, func(ti int) bool { return !(ge(ti) && le(ti)) }), true
	}
	return func(ti int) bool { return ge(ti) && le(ti) }, true
}

// vecIn lowers subject IN (literal, ...) via Equal semantics: membership by
// payload, NULL list entries make non-matches unknown (rejected).
func (pq *plannedQuery) vecIn(st *planner.Step, x *sqlparser.InExpr) (vecPred, bool) {
	if x.Subquery != nil {
		return nil, false
	}
	col, ok := pq.stepCol(st, x.Subject)
	if !ok {
		return nil, false
	}
	lits := make([]value.Value, 0, len(x.List))
	sawNull := false
	for _, it := range x.List {
		lit, ok := litOf(it)
		if !ok {
			return nil, false
		}
		if lit.IsNull() {
			sawNull = true
			continue
		}
		lits = append(lits, lit)
	}
	if len(x.List) == 0 {
		// IN () is false, NOT IN () is true — even for NULL subjects,
		// matching the compiled InExpr's empty-list special case.
		if x.Negate {
			return func(int) bool { return true }, true
		}
		return vecFalse, true
	}
	member, ok := vecMembership(col, lits)
	if !ok {
		return nil, false
	}
	negate := x.Negate
	return notNull(col, func(ti int) bool {
		if member(ti) {
			return !negate
		}
		if sawNull {
			return false // unknown either way
		}
		return negate
	}), true
}

// vecMembership builds a payload-set membership test for the column kind.
// List entries of foreign kinds can never match (value.Equal semantics) and
// are simply ignored.
func vecMembership(col storage.Col, lits []value.Value) (vecPred, bool) {
	switch col.Kind() {
	case value.Int, value.Float:
		set := make(map[float64]bool, len(lits))
		for _, l := range lits {
			if l.IsNumeric() {
				set[l.Float()] = true
			}
		}
		if col.Kind() == value.Int {
			xs := col.Ints()
			return func(ti int) bool { return set[float64(xs[ti])] }, true
		}
		xs := col.Floats()
		return func(ti int) bool { return set[xs[ti]] }, true
	case value.Text:
		set := make(map[uint32]bool, len(lits))
		for _, l := range lits {
			if l.Kind() == value.Text {
				if code, present := col.DictCode(l.Text()); present {
					set[code] = true
				}
			}
		}
		codes := col.Codes()
		return func(ti int) bool { return set[codes[ti]] }, true
	case value.Date:
		set := make(map[int64]bool, len(lits))
		for _, l := range lits {
			if l.Kind() == value.Date {
				set[l.DateDays()] = true
			}
		}
		xs := col.Ints()
		return func(ti int) bool { return set[xs[ti]] }, true
	case value.Bool:
		var hasT, hasF bool
		for _, l := range lits {
			if l.Kind() == value.Bool {
				if l.Bool() {
					hasT = true
				} else {
					hasF = true
				}
			}
		}
		xs := col.Bools()
		return func(ti int) bool {
			if xs[ti] {
				return hasT
			}
			return hasF
		}, true
	default:
		return nil, false
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// ---------------------------------------------------------------------------
// Single-table scan→project fast path
// ---------------------------------------------------------------------------

// colReader projects one select item straight from the table: a column
// position (lit unset) or a constant literal (pos < 0).
type colReader struct {
	pos int
	lit value.Value
}

// tryVecScan executes a fully vectorized single-table scan without the arena
// pipeline: every filter ran as a vecPred, every select item is a direct
// column read or constant, and every ORDER BY key resolves to an output
// column. Pass one counts matches over the vectors alone; pass two fills an
// exactly-sized projection straight from the columns. ok=false falls back to
// the general pipeline. Select items expand only after the structural checks
// pass: with every filter vectorized the pipeline cannot error, so resolving
// the select list first cannot mask a join-phase error the naive pipeline
// would have raised.
func (ex *Engine) tryVecScan(sel *sqlparser.SelectStmt, entries []fromEntry, pq *plannedQuery, earlyLimit int) (*Result, bool, error) {
	if len(pq.plan.Steps) != 1 {
		return nil, false, nil
	}
	st := pq.plan.Steps[0]
	if st.Access != planner.ScanFull || len(pq.postEvals) > 0 ||
		len(pq.stepSelf[0]) > 0 || len(pq.stepPost[0]) > 0 {
		return nil, false, nil
	}
	items, cols, err := expandItems(sel, entries)
	if err != nil {
		return nil, true, err
	}
	tbl := st.Input.Tbl
	width := len(st.Input.Rel.Attributes)
	readers := make([]colReader, len(items))
	for i, it := range items {
		switch x := it.Expr.(type) {
		case *sqlparser.ColumnRef:
			slot, ok := pq.slotOf(x)
			if !ok || slot < 0 || slot >= width {
				return nil, false, nil
			}
			readers[i] = colReader{pos: slot}
		case *sqlparser.Literal:
			readers[i] = colReader{pos: -1, lit: x.Value}
		default:
			return nil, false, nil
		}
	}
	// ORDER BY keys resolve through the same flatOrderKeys logic as the
	// general pipeline (one copy of the ordinal/select-list semantics);
	// a key that compiled to an expression needs the source row, which
	// the fast path never materializes — fall back.
	keys, err := pq.flatOrderKeys(sel, items)
	if err != nil {
		return nil, false, nil
	}
	for j := range keys {
		if keys[j].eval != nil {
			return nil, false, nil
		}
	}

	preds := pq.stepVec[0]
	n := tbl.Len()
	bud := ex.bud
	bud.AddTotal(n)
	matched := 0
	if zp := pq.zp; zp != nil {
		// Zone-pruned counting: a morsel whose bounds disprove the filters
		// contributes nothing without touching a payload, and one the probes
		// prove all-true contributes its full length without testing a row.
		zoneWalk(0, n, func(z, segLo, segHi int, owned bool) bool {
			if bud.Step(segHi-segLo) != nil {
				return false
			}
			v := zp.verdict(z)
			if owned {
				zp.note(v)
			}
			switch v {
			case zoneAllFalse:
			case zoneAllTrue:
				matched += segHi - segLo
			default:
				for ti := segLo; ti < segHi; ti++ {
					if pq.vecPass(0, ti) {
						matched++
					}
				}
			}
			return true
		})
		if err := bud.Err(); err != nil {
			return nil, true, err
		}
		pq.finishZoneSkip()
	} else {
	scan:
		for ti := 0; ti < n; ti++ {
			if err := bud.Tick(ti); err != nil {
				return nil, true, err
			}
			for _, p := range preds {
				if !p(ti) {
					continue scan
				}
			}
			matched++
		}
	}
	st.ActualRows = matched
	pq.plan.ActualRows = matched

	// LIMIT pushdown mirrors execPlannedFlat: column reads and constants
	// cannot error, so the projection may stop at the bound.
	bound := -1
	if len(sel.OrderBy) == 0 && !sel.Distinct {
		if sel.Limit >= 0 {
			bound = sel.Limit
		}
		if earlyLimit >= 0 && sel.Limit < 0 {
			bound = earlyLimit
		}
	}
	emitN := matched
	if bound >= 0 && bound < emitN {
		emitN = bound
	}

	out := &Result{Columns: cols, Rows: make([]storage.Tuple, 0, emitN)}
	w := len(items)
	if err := bud.Grow(emitN * w * 24); err != nil {
		return nil, true, err
	}
	flat := make([]value.Value, emitN*w)
	project := func(ti int) {
		row := flat[:w:w]
		flat = flat[w:]
		for i, r := range readers {
			if r.pos < 0 {
				row[i] = r.lit
			} else {
				row[i] = tbl.Col(r.pos).Value(ti)
			}
		}
		out.Rows = append(out.Rows, storage.Tuple(row))
	}
	if zp := pq.zp; zp != nil {
		// Same pruning as the counting pass (verdicts were already accounted
		// there); all-true morsels project without re-testing the filters.
		zoneWalk(0, n, func(z, segLo, segHi int, _ bool) bool {
			if bud.Step(0) != nil {
				return false
			}
			v := zp.verdict(z)
			if v == zoneAllFalse {
				return len(out.Rows) < emitN
			}
			skipVec := v == zoneAllTrue
			for ti := segLo; ti < segHi && len(out.Rows) < emitN; ti++ {
				if skipVec || pq.vecPass(0, ti) {
					project(ti)
				}
			}
			return len(out.Rows) < emitN
		})
		if err := bud.Err(); err != nil {
			return nil, true, err
		}
	} else {
	fill:
		for ti := 0; ti < n && len(out.Rows) < emitN; ti++ {
			if err := bud.Tick(ti); err != nil {
				return nil, true, err
			}
			for _, p := range preds {
				if !p(ti) {
					continue fill
				}
			}
			project(ti)
		}
	}

	keyOf := func(i int, k *plannedSortKey) (value.Value, error) {
		return out.Rows[i][k.col], nil
	}
	res, err := ex.shapeResult(sel, pq, out, keys, keyOf)
	return res, true, err
}
