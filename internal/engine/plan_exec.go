package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file executes planner.Plans over flat slot-addressed rows. Each FROM
// entry owns a contiguous slot range laid out in clause order; a row is one
// []value.Value of the plan's width, allocated from chunked arenas so the
// join inner loop performs no per-row allocations, no map lookups, and no
// string comparisons. Predicates whose column references resolve at plan
// time compile to closures over slots; anything else (subqueries, outer
// correlations) evaluates through a reusable environment bridge after all
// joins.

// ---------------------------------------------------------------------------
// Hash keys
// ---------------------------------------------------------------------------

// joinKey is a comparable, allocation-free normalization of a Value for
// hash-join tables: numerics collapse to one float64 image (1 == 1.0, like
// value.Key), dates to their unix second, text aliases the original string.
type joinKey struct {
	kind byte
	bits uint64
	str  string
}

// joinChain is a hash table over build-side row positions with one int32
// head per key and a shared next vector — no per-key slice, so building it
// costs O(1) allocations regardless of the number of distinct keys. Chains
// are threaded in ascending row order (the build iterates in reverse), so
// probes emit matches in insertion order, exactly like the naive pipeline.
type joinChain struct {
	head map[joinKey]int32 // key -> first matching row position + 1
	next []int32           // next[i] -> following row position + 1, 0 ends
}

// joinKeyOf normalizes v; ok is false for NULL, which never joins.
func joinKeyOf(v value.Value) (joinKey, bool) {
	switch v.Kind() {
	case value.Int:
		return joinKey{kind: 'f', bits: math.Float64bits(float64(v.Int()))}, true
	case value.Float:
		f := v.Float()
		if f == 0 {
			f = 0 // collapse -0 and +0
		}
		return joinKey{kind: 'f', bits: math.Float64bits(f)}, true
	case value.Text:
		return joinKey{kind: 't', str: v.Text()}, true
	case value.Date:
		return joinKey{kind: 'd', bits: uint64(v.DateDays() * 86400)}, true
	case value.Bool:
		if v.Bool() {
			return joinKey{kind: 'B'}, true
		}
		return joinKey{kind: 'b'}, true
	default:
		return joinKey{}, false
	}
}

// ---------------------------------------------------------------------------
// Arenas
// ---------------------------------------------------------------------------

// Arena chunks start small (selective probes often emit a handful of rows)
// and double up to a cap, amortizing allocation without over-committing.
const (
	arenaFirstChunkRows = 8
	arenaMaxChunkRows   = 1024
)

// rowArena hands out fixed-width []value.Value rows carved from big chunks.
// peek returns the next row for speculative filling; commit keeps it. A
// rejected candidate is simply re-peeked, so filtered-out rows cost nothing.
type rowArena struct {
	width     int
	buf       []value.Value
	chunkRows int
}

func (a *rowArena) peek() []value.Value {
	if len(a.buf) < a.width {
		if a.chunkRows < arenaMaxChunkRows {
			if a.chunkRows == 0 {
				a.chunkRows = arenaFirstChunkRows
			} else {
				a.chunkRows *= 2
			}
		}
		n := a.width * a.chunkRows
		if n == 0 {
			n = 1
		}
		a.buf = make([]value.Value, n)
	}
	return a.buf[:a.width:a.width]
}

func (a *rowArena) commit() { a.buf = a.buf[a.width:] }

// provArena is the same for provenance vectors (per-step source tuple
// positions), used to restore FROM-major row order after join reordering.
type provArena struct {
	width     int
	buf       []int32
	chunkRows int
}

func (a *provArena) peek() []int32 {
	if len(a.buf) < a.width {
		if a.chunkRows < arenaMaxChunkRows {
			if a.chunkRows == 0 {
				a.chunkRows = arenaFirstChunkRows
			} else {
				a.chunkRows *= 2
			}
		}
		n := a.width * a.chunkRows
		if n == 0 {
			n = 1
		}
		a.buf = make([]int32, n)
	}
	return a.buf[:a.width:a.width]
}

func (a *provArena) commit() { a.buf = a.buf[a.width:] }

// ---------------------------------------------------------------------------
// Compiled query state
// ---------------------------------------------------------------------------

// plannedQuery is one plan compiled against the engine: slot-resolved
// predicate closures per step plus the residual (bridged) predicates.
type plannedQuery struct {
	ex    *Engine
	plan  *planner.Plan
	outer *env
	// fromOrder[i] is the step index of FROM entry i.
	fromOrder []int
	stepVec   [][]vecPred // vectorized SelfFilter prefix per step (column tests)
	stepSelf  [][]rowEval // compiled remaining SelfFilters per step
	stepPost  [][]rowEval // compiled PostJoinFilters per step
	postEvals []rowEval   // residual predicates after all joins
	// zp, when set, holds the zone-map probes of the base scan's vectorized
	// filters (the plan carries a zone-skip shape step). Scans consult it per
	// storage zone and skip morsels whose bounds disprove the filters.
	zp    *zoneProbeSet
	track bool // provenance tracking (plan was reordered)
	// leaf, when set, intercepts compilation of every subexpression before
	// the standard lowering. The grouped pipeline uses a copy of the query
	// with leaf set to map aggregates and GROUP BY matches onto synthetic
	// slots appended after the joined row (see plan_shape.go). handled=false
	// falls through to normal compilation; ok=false fails the compile.
	leaf func(e sqlparser.Expr) (ev rowEval, handled, ok bool)
}

// rowEval evaluates one expression against a flat row.
type rowEval func(ec *evalCtx, row []value.Value) (value.Value, error)

// evalCtx is per-worker scratch: arenas, a key-encoding buffer, a scratch
// row for build-side filters, and the reusable environment bridge.
type evalCtx struct {
	pq      *plannedQuery
	rows    rowArena
	prov    provArena
	keyBuf  []byte
	scratch []value.Value
	bridge  *env
}

func (pq *plannedQuery) newCtx() *evalCtx {
	return &evalCtx{
		pq:   pq,
		rows: rowArena{width: pq.plan.Width},
		prov: provArena{width: len(pq.plan.Steps)},
	}
}

// scratchRow returns a full-width row for evaluating self-filters against a
// lone build-side tuple.
func (ec *evalCtx) scratchRow() []value.Value {
	if ec.scratch == nil {
		ec.scratch = make([]value.Value, ec.pq.plan.Width)
	}
	return ec.scratch
}

// envFor exposes the flat row as an environment chain (bindings in FROM
// order, outer scope as parent) for predicates the compiler bridged. The env
// and its bindings slice are reused across rows; evaluation never retains
// them.
func (ec *evalCtx) envFor(row []value.Value) *env {
	pq := ec.pq
	if ec.bridge == nil {
		b := make([]binding, len(pq.fromOrder))
		for fi, si := range pq.fromOrder {
			st := pq.plan.Steps[si]
			b[fi] = binding{alias: st.Input.Alias, rel: st.Input.Rel}
		}
		ec.bridge = &env{parent: pq.outer, bindings: b}
	}
	for fi, si := range pq.fromOrder {
		st := pq.plan.Steps[si]
		n := len(st.Input.Rel.Attributes)
		ec.bridge.bindings[fi].tuple = storage.Tuple(row[st.Offset : st.Offset+n])
	}
	return ec.bridge
}

// passes applies SQL WHERE truthiness: NULL and non-boolean reject.
func passes(v value.Value) bool {
	return !v.IsNull() && v.Kind() == value.Bool && v.Bool()
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

// slotOf resolves a column reference to an absolute slot, mirroring
// env.lookup (first alias-or-relation match in FROM order; unqualified names
// must be unique). ok=false means the reference needs the bridge.
func (pq *plannedQuery) slotOf(ref *sqlparser.ColumnRef) (int, bool) {
	steps := pq.plan.Steps
	if ref.Table != "" {
		for _, si := range pq.fromOrder {
			st := steps[si]
			if strings.EqualFold(st.Input.Alias, ref.Table) || strings.EqualFold(st.Input.Rel.Name, ref.Table) {
				pos := st.Input.Rel.AttrIndex(ref.Column)
				if pos < 0 {
					return 0, false // surfaces env.lookup's runtime error
				}
				return st.Offset + pos, true
			}
		}
		return 0, false // outer correlation (or unknown): bridge
	}
	found := -1
	for _, si := range pq.fromOrder {
		st := steps[si]
		if pos := st.Input.Rel.AttrIndex(ref.Column); pos >= 0 {
			if found >= 0 {
				return 0, false // ambiguous: bridge reproduces the error
			}
			found = st.Offset + pos
		}
	}
	if found < 0 {
		return 0, false
	}
	return found, true
}

// bridge wraps an expression in an environment-based evaluation.
func (pq *plannedQuery) bridgeEval(e sqlparser.Expr) rowEval {
	return func(ec *evalCtx, row []value.Value) (value.Value, error) {
		return ec.pq.ex.evalExpr(e, ec.envFor(row), nil)
	}
}

// compile lowers an expression to a slot-addressed closure. ok=false means
// some subtree needs environment semantics (subqueries, aggregates,
// unresolvable references); callers bridge the whole expression then.
func (pq *plannedQuery) compile(e sqlparser.Expr) (rowEval, bool) {
	if pq.leaf != nil {
		if ev, handled, ok := pq.leaf(e); handled {
			return ev, ok
		}
	}
	switch x := e.(type) {
	case *sqlparser.Literal:
		v := x.Value
		return func(*evalCtx, []value.Value) (value.Value, error) { return v, nil }, true

	case *sqlparser.ColumnRef:
		if x.Column == "*" {
			return nil, false
		}
		slot, ok := pq.slotOf(x)
		if !ok {
			return nil, false
		}
		return func(_ *evalCtx, row []value.Value) (value.Value, error) { return row[slot], nil }, true

	case *sqlparser.BinaryExpr:
		return pq.compileBinary(x)

	case *sqlparser.NotExpr:
		inner, ok := pq.compile(x.Inner)
		if !ok {
			return nil, false
		}
		return func(ec *evalCtx, row []value.Value) (value.Value, error) {
			v, err := inner(ec, row)
			if err != nil {
				return value.Value{}, err
			}
			if v.IsNull() {
				return v, nil
			}
			if v.Kind() != value.Bool {
				return value.Value{}, fmt.Errorf("engine: NOT applied to %s", v.Kind())
			}
			return value.NewBool(!v.Bool()), nil
		}, true

	case *sqlparser.IsNullExpr:
		inner, ok := pq.compile(x.Inner)
		if !ok {
			return nil, false
		}
		negate := x.Negate
		return func(ec *evalCtx, row []value.Value) (value.Value, error) {
			v, err := inner(ec, row)
			if err != nil {
				return value.Value{}, err
			}
			return value.NewBool(v.IsNull() != negate), nil
		}, true

	case *sqlparser.BetweenExpr:
		subj, ok1 := pq.compile(x.Subject)
		lo, ok2 := pq.compile(x.Lo)
		hi, ok3 := pq.compile(x.Hi)
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
		negate := x.Negate
		return func(ec *evalCtx, row []value.Value) (value.Value, error) {
			s, err := subj(ec, row)
			if err != nil {
				return value.Value{}, err
			}
			l, err := lo(ec, row)
			if err != nil {
				return value.Value{}, err
			}
			h, err := hi(ec, row)
			if err != nil {
				return value.Value{}, err
			}
			if s.IsNull() || l.IsNull() || h.IsNull() {
				return value.NewNull(), nil
			}
			c1, err := s.Compare(l)
			if err != nil {
				return value.Value{}, err
			}
			c2, err := s.Compare(h)
			if err != nil {
				return value.Value{}, err
			}
			in := c1 >= 0 && c2 <= 0
			return value.NewBool(in != negate), nil
		}, true

	case *sqlparser.InExpr:
		if x.Subquery != nil {
			return nil, false
		}
		subj, ok := pq.compile(x.Subject)
		if !ok {
			return nil, false
		}
		items := make([]rowEval, len(x.List))
		for i, it := range x.List {
			ev, ok := pq.compile(it)
			if !ok {
				return nil, false
			}
			items[i] = ev
		}
		negate := x.Negate
		return func(ec *evalCtx, row []value.Value) (value.Value, error) {
			s, err := subj(ec, row)
			if err != nil {
				return value.Value{}, err
			}
			if s.IsNull() {
				if len(items) == 0 {
					return value.NewBool(negate), nil
				}
				return value.NewNull(), nil
			}
			sawNull := false
			for _, ev := range items {
				c, err := ev(ec, row)
				if err != nil {
					return value.Value{}, err
				}
				if c.IsNull() {
					sawNull = true
					continue
				}
				if s.Equal(c) {
					return value.NewBool(!negate), nil
				}
			}
			if sawNull {
				return value.NewNull(), nil
			}
			return value.NewBool(negate), nil
		}, true

	case *sqlparser.CaseExpr:
		conds := make([]rowEval, len(x.Whens))
		thens := make([]rowEval, len(x.Whens))
		for i, w := range x.Whens {
			c, ok := pq.compile(w.Cond)
			if !ok {
				return nil, false
			}
			t, ok := pq.compile(w.Then)
			if !ok {
				return nil, false
			}
			conds[i], thens[i] = c, t
		}
		var els rowEval
		if x.Else != nil {
			e2, ok := pq.compile(x.Else)
			if !ok {
				return nil, false
			}
			els = e2
		}
		return func(ec *evalCtx, row []value.Value) (value.Value, error) {
			for i, c := range conds {
				v, err := c(ec, row)
				if err != nil {
					return value.Value{}, err
				}
				if passes(v) {
					return thens[i](ec, row)
				}
			}
			if els != nil {
				return els(ec, row)
			}
			return value.NewNull(), nil
		}, true

	default:
		// Subqueries, quantifiers, EXISTS, aggregates, stars: bridge.
		return nil, false
	}
}

func (pq *plannedQuery) compileBinary(x *sqlparser.BinaryExpr) (rowEval, bool) {
	l, ok := pq.compile(x.Left)
	if !ok {
		return nil, false
	}
	r, ok := pq.compile(x.Right)
	if !ok {
		return nil, false
	}
	op := x.Op
	switch op {
	case sqlparser.OpAnd, sqlparser.OpOr:
		return func(ec *evalCtx, row []value.Value) (value.Value, error) {
			lv, err := l(ec, row)
			if err != nil {
				return value.Value{}, err
			}
			// Three-valued short circuit, mirroring evalBinary.
			if !lv.IsNull() && lv.Kind() == value.Bool {
				if op == sqlparser.OpAnd && !lv.Bool() {
					return value.NewBool(false), nil
				}
				if op == sqlparser.OpOr && lv.Bool() {
					return value.NewBool(true), nil
				}
			}
			rv, err := r(ec, row)
			if err != nil {
				return value.Value{}, err
			}
			return threeValued(op, lv, rv)
		}, true
	}
	var pred func(int) bool
	equality := false
	switch op {
	case sqlparser.OpEq:
		pred, equality = func(c int) bool { return c == 0 }, true
	case sqlparser.OpNe:
		pred, equality = func(c int) bool { return c != 0 }, true
	case sqlparser.OpLt:
		pred = func(c int) bool { return c < 0 }
	case sqlparser.OpLe:
		pred = func(c int) bool { return c <= 0 }
	case sqlparser.OpGt:
		pred = func(c int) bool { return c > 0 }
	case sqlparser.OpGe:
		pred = func(c int) bool { return c >= 0 }
	}
	return func(ec *evalCtx, row []value.Value) (value.Value, error) {
		lv, err := l(ec, row)
		if err != nil {
			return value.Value{}, err
		}
		rv, err := r(ec, row)
		if err != nil {
			return value.Value{}, err
		}
		if lv.IsNull() || rv.IsNull() {
			return value.NewNull(), nil
		}
		switch op {
		case sqlparser.OpLike:
			if lv.Kind() != value.Text || rv.Kind() != value.Text {
				return value.Value{}, fmt.Errorf("engine: LIKE requires text operands")
			}
			return value.NewBool(likeMatch(lv.Text(), rv.Text())), nil
		case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
			return arith(op, lv, rv)
		default:
			return compareOp(lv, rv, equality, pred)
		}
	}, true
}

// ---------------------------------------------------------------------------
// Plan compilation
// ---------------------------------------------------------------------------

// compilePlan resolves a plan's predicates against the engine. Filters that
// fail to compile migrate to the residual phase (safe for inner joins — the
// row set is identical, only evaluated later).
func (ex *Engine) compilePlan(plan *planner.Plan, outer *env) *plannedQuery {
	pq := &plannedQuery{
		ex:        ex,
		plan:      plan,
		outer:     outer,
		fromOrder: make([]int, len(plan.Steps)),
		stepVec:   make([][]vecPred, len(plan.Steps)),
		stepSelf:  make([][]rowEval, len(plan.Steps)),
		stepPost:  make([][]rowEval, len(plan.Steps)),
		track:     plan.Reordered,
	}
	for si, st := range plan.Steps {
		pq.fromOrder[st.FromPos] = si
	}
	residual := func(e sqlparser.Expr) {
		ev, ok := pq.compile(e)
		if !ok {
			ev = pq.bridgeEval(e)
		}
		pq.postEvals = append(pq.postEvals, ev)
	}
	for si, st := range plan.Steps {
		// Vectorize the longest specializable prefix of the self-filters.
		// Only a prefix is safe: vectorized predicates never error, so
		// hoisting one past a generic filter that can error would change
		// which rows (if any) reach that filter — the prefix keeps the
		// original evaluation order intact.
		filters := st.SelfFilters
		for len(filters) > 0 {
			vp, ok := pq.compileVecFilter(st, filters[0])
			if !ok {
				break
			}
			pq.stepVec[si] = append(pq.stepVec[si], vp)
			filters = filters[1:]
		}
		for _, f := range filters {
			if ev, ok := pq.compile(f); ok {
				pq.stepSelf[si] = append(pq.stepSelf[si], ev)
			} else {
				residual(f)
			}
		}
		for _, f := range st.PostJoinFilters {
			if ev, ok := pq.compile(f); ok {
				pq.stepPost[si] = append(pq.stepPost[si], ev)
			} else {
				residual(f)
			}
		}
	}
	for _, e := range plan.Post {
		residual(e)
	}
	if hasZoneSkip(plan) {
		pq.compileZoneSkip()
	}
	return pq
}

// ---------------------------------------------------------------------------
// Pipeline execution
// ---------------------------------------------------------------------------

// batch is one worker's output: rows plus (optionally) provenance vectors.
type batch struct {
	rows [][]value.Value
	prov [][]int32
}

// emit speculatively fills a row from base plus the step table's row ti
// (read straight off the column vectors), applies the step's compiled
// filters, and keeps it on success.
func (ec *evalCtx) emit(out *batch, base []value.Value, baseProv []int32, st *planner.Step, si int, ti int32, evals ...[]rowEval) error {
	r := ec.rows.peek()
	if base != nil {
		copy(r, base)
	}
	n := len(st.Input.Rel.Attributes)
	st.Input.Tbl.CopyRow(r[st.Offset:st.Offset+n], int(ti))
	for _, group := range evals {
		for _, ev := range group {
			v, err := ev(ec, r)
			if err != nil {
				return err
			}
			if !passes(v) {
				return nil
			}
		}
	}
	ec.rows.commit()
	out.rows = append(out.rows, r)
	if ec.pq.track {
		p := ec.prov.peek()
		if baseProv != nil {
			copy(p, baseProv)
		}
		p[si] = ti
		ec.prov.commit()
		out.prov = append(out.prov, p)
	}
	return nil
}

// gatherBatches fans fn out over [0, n) in order-preserving chunks, each
// worker with its own evalCtx and arenas. With a budget bound, every worker
// sub-chunks its range at storage-zone boundaries and polls the budget
// between sub-chunks — the cooperative cancellation point of every planned
// scan, join, and residual-filter loop. Zone alignment keeps zoneWalk's
// "owned" accounting identical to the unbudgeted walk.
func (ex *Engine) gatherBatches(pq *plannedQuery, n int, fn func(ec *evalCtx, lo, hi int, out *batch) error) (batch, error) {
	if bud := ex.bud; bud != nil {
		inner := fn
		fn = func(ec *evalCtx, lo, hi int, out *batch) error {
			for s := lo; s < hi; {
				e := (s>>storage.ZoneShift + 1) << storage.ZoneShift
				if e > hi {
					e = hi
				}
				if err := bud.Step(e - s); err != nil {
					return err
				}
				if err := inner(ec, s, e, out); err != nil {
					return err
				}
				s = e
			}
			return nil
		}
	}
	workers := ex.workersFor(n)
	if workers <= 1 {
		var out batch
		err := fn(pq.newCtx(), 0, n, &out)
		if err == nil {
			err = growBatch(ex.bud, &out)
		}
		return out, err
	}
	chunk := (n + workers - 1) / workers
	outs := make([]batch, workers)
	errs := make([]error, workers)
	done := make(chan int, workers)
	launched := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		launched++
		go func(w, lo, hi int) {
			errs[w] = fn(pq.newCtx(), lo, hi, &outs[w])
			done <- w
		}(w, lo, hi)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
	var total int
	for w := range outs {
		if errs[w] != nil {
			return batch{}, errs[w]
		}
		total += len(outs[w].rows)
	}
	merged := batch{rows: make([][]value.Value, 0, total)}
	if pq.track {
		merged.prov = make([][]int32, 0, total)
	}
	for w := range outs {
		merged.rows = append(merged.rows, outs[w].rows...)
		merged.prov = append(merged.prov, outs[w].prov...)
	}
	if err := growBatch(ex.bud, &merged); err != nil {
		return batch{}, err
	}
	return merged, nil
}

// growBatch charges a stage's materialized rows against the memory quota.
// The estimate is deliberately coarse — slots dominate an arena row's
// footprint — and zero-cost for nil budgets.
func growBatch(bud *Budget, b *batch) error {
	if bud == nil || len(b.rows) == 0 {
		return nil
	}
	const slotBytes = 24
	return bud.Grow(len(b.rows) * len(b.rows[0]) * slotBytes)
}

// runPlan executes the pipeline and returns the joined, residual-filtered
// rows in the same order the naive nested-loop pipeline would produce.
func (ex *Engine) runPlan(pq *plannedQuery) ([][]value.Value, error) {
	steps := pq.plan.Steps
	var cur batch
	for si, st := range steps {
		var err error
		if si == 0 {
			cur, err = ex.runScanStep(pq, st)
		} else {
			cur, err = ex.runJoinStep(pq, si, st, cur)
		}
		if err != nil {
			return nil, err
		}
		st.ActualRows = len(cur.rows)
		if len(cur.rows) == 0 {
			for _, rest := range steps[si+1:] {
				rest.ActualRows = 0
			}
			break
		}
	}
	if len(pq.postEvals) > 0 && len(cur.rows) > 0 {
		filtered, err := ex.gatherBatches(pq, len(cur.rows), func(ec *evalCtx, lo, hi int, out *batch) error {
			for i := lo; i < hi; i++ {
				row := cur.rows[i]
				keep := true
				for _, ev := range pq.postEvals {
					v, err := ev(ec, row)
					if err != nil {
						return err
					}
					if !passes(v) {
						keep = false
						break
					}
				}
				if keep {
					out.rows = append(out.rows, row)
					if pq.track {
						out.prov = append(out.prov, cur.prov[i])
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		cur = filtered
	}
	pq.plan.ActualRows = len(cur.rows)
	if pq.track && len(cur.rows) > 1 {
		sortByProvenance(pq, &cur)
	}
	return cur.rows, nil
}

// sortByProvenance restores FROM-major lexicographic order — exactly the
// order the naive nested-loop pipeline emits — after join reordering.
func sortByProvenance(pq *plannedQuery, cur *batch) {
	idx := make([]int, len(cur.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := cur.prov[idx[a]], cur.prov[idx[b]]
		for _, si := range pq.fromOrder {
			if pa[si] != pb[si] {
				return pa[si] < pb[si]
			}
		}
		return false
	})
	sorted := make([][]value.Value, len(cur.rows))
	for i, j := range idx {
		sorted[i] = cur.rows[j]
	}
	cur.rows = sorted
}

// runScanStep produces the first row set: full scan, primary-key probe, or
// index probe, with the step's compiled filters applied inline.
func (ex *Engine) runScanStep(pq *plannedQuery, st *planner.Step) (batch, error) {
	si := pq.fromOrder[st.FromPos] // == 0
	tbl := st.Input.Tbl
	evals := [][]rowEval{pq.stepSelf[si], pq.stepPost[si]}

	switch st.Access {
	case planner.ScanPK, planner.ScanIndex:
		ec := pq.newCtx()
		var out batch
		ec.keyBuf = ec.keyBuf[:0]
		for _, v := range st.KeyValues {
			if v.IsNull() {
				return out, nil // NULL never matches an equality probe
			}
			ec.keyBuf = v.AppendKey(ec.keyBuf)
		}
		var positions []int
		if st.Access == planner.ScanPK {
			if pos, ok := tbl.LookupPKPos(ec.keyBuf); ok {
				positions = []int{pos}
			}
		} else {
			ix := tbl.Index(st.IndexName)
			if ix == nil {
				return batch{}, fmt.Errorf("engine: plan references missing index %q on %s", st.IndexName, st.Input.Rel.Name)
			}
			positions = ix.Probe(ec.keyBuf)
		}
		for _, pos := range positions {
			if !pq.vecPass(si, pos) {
				continue
			}
			if err := ec.emit(&out, nil, nil, st, si, int32(pos), evals...); err != nil {
				return batch{}, err
			}
		}
		return out, nil

	default: // ScanFull
		ex.bud.AddTotal(tbl.Len())
		zp := pq.zp
		out, err := ex.gatherBatches(pq, tbl.Len(), func(ec *evalCtx, lo, hi int, out *batch) error {
			if zp == nil {
				for ti := lo; ti < hi; ti++ {
					if !pq.vecPass(si, ti) {
						continue
					}
					if err := ec.emit(out, nil, nil, st, si, int32(ti), evals...); err != nil {
						return err
					}
				}
				return nil
			}
			var err error
			zoneWalk(lo, hi, func(z, segLo, segHi int, owned bool) bool {
				v := zp.verdict(z)
				if owned {
					zp.note(v)
				}
				if v == zoneAllFalse {
					return true // bounds disproved the filters for the whole zone
				}
				skipVec := v == zoneAllTrue // probes proved the vectorized prefix
				for ti := segLo; ti < segHi; ti++ {
					if !skipVec && !pq.vecPass(si, ti) {
						continue
					}
					if err = ec.emit(out, nil, nil, st, si, int32(ti), evals...); err != nil {
						return false
					}
				}
				return true
			})
			return err
		})
		if err == nil {
			pq.finishZoneSkip()
		}
		return out, err
	}
}

// buildChain hashes the filtered rows of step si's table on attribute
// buildPos into a chained join table. keep, when non-nil, is a precomputed
// filter mask (generic self-filters); otherwise the step's vectorized prefix
// decides. The chain is threaded in reverse so probes walk matches in
// ascending row order. Shared by the batch join pipeline and the fused
// aggregation pipeline.
func (pq *plannedQuery) buildChain(si int, tbl *storage.Table, buildPos int, keep []bool) joinChain {
	n := tbl.Len()
	buildCol := tbl.Col(buildPos)
	chain := joinChain{head: make(map[joinKey]int32, n), next: make([]int32, n)}
	for ti := n - 1; ti >= 0; ti-- {
		if keep != nil {
			if !keep[ti] {
				continue
			}
		} else if !pq.vecPass(si, ti) {
			continue
		}
		// Col.Value materializes without allocating (text shares the
		// dictionary string), so this shares joinKeyOf's normalization
		// instead of duplicating it per column kind.
		k, ok := joinKeyOf(buildCol.Value(ti))
		if !ok {
			continue
		}
		chain.next[ti] = chain.head[k]
		chain.head[k] = int32(ti) + 1
	}
	return chain
}

// loopInner lists the positions of step si's table that pass its vectorized
// filter prefix — the prefiltered inner side of a nested-loop join. Shared by
// the batch join pipeline and the fused aggregation pipeline.
func (pq *plannedQuery) loopInner(si int, tbl *storage.Table) []int32 {
	n := tbl.Len()
	inner := make([]int32, 0, n)
	for ti := 0; ti < n; ti++ {
		if pq.vecPass(si, ti) {
			inner = append(inner, int32(ti))
		}
	}
	return inner
}

// runJoinStep extends every current row with matches from the step's table.
func (ex *Engine) runJoinStep(pq *plannedQuery, si int, st *planner.Step, cur batch) (batch, error) {
	tbl := st.Input.Tbl
	self, post := pq.stepSelf[si], pq.stepPost[si]

	baseProv := func(i int) []int32 {
		if pq.track {
			return cur.prov[i]
		}
		return nil
	}

	switch st.Access {
	case planner.JoinHash:
		// Build (serial): hash the new table on the join attribute. The
		// vectorized filter prefix tests column vectors directly; remaining
		// self-filters evaluate against a scratch row filled per candidate.
		// A filter mask is computed forward (so filter errors surface in row
		// order), then the chain is threaded in reverse so probes walk
		// matches in ascending row order.
		n := tbl.Len()
		var keep []bool
		if len(self) > 0 {
			keep = make([]bool, n)
			buildEC := pq.newCtx()
			width := len(st.Input.Rel.Attributes)
			for ti := 0; ti < n; ti++ {
				if !pq.vecPass(si, ti) {
					continue
				}
				row := buildEC.scratchRow()
				tbl.CopyRow(row[st.Offset:st.Offset+width], ti)
				ok := true
				for _, ev := range self {
					v, err := ev(buildEC, row)
					if err != nil {
						return batch{}, err
					}
					if !passes(v) {
						ok = false
						break
					}
				}
				keep[ti] = ok
			}
		}
		chain := pq.buildChain(si, tbl, st.BuildPos, keep)
		probeSlot := st.ProbeSlot
		return ex.gatherBatches(pq, len(cur.rows), func(ec *evalCtx, lo, hi int, out *batch) error {
			for i := lo; i < hi; i++ {
				base := cur.rows[i]
				k, ok := joinKeyOf(base[probeSlot])
				if !ok {
					continue
				}
				for p := chain.head[k]; p != 0; p = chain.next[p-1] {
					if err := ec.emit(out, base, baseProv(i), st, si, p-1, post); err != nil {
						return err
					}
				}
			}
			return nil
		})

	case planner.JoinPK:
		return ex.gatherBatches(pq, len(cur.rows), func(ec *evalCtx, lo, hi int, out *batch) error {
		next:
			for i := lo; i < hi; i++ {
				base := cur.rows[i]
				ec.keyBuf = ec.keyBuf[:0]
				for _, slot := range st.ProbeSlots {
					v := base[slot]
					if v.IsNull() {
						continue next
					}
					ec.keyBuf = v.AppendKey(ec.keyBuf)
				}
				pos, ok := tbl.LookupPKPos(ec.keyBuf)
				if !ok || !pq.vecPass(si, pos) {
					continue
				}
				if err := ec.emit(out, base, baseProv(i), st, si, int32(pos), self, post); err != nil {
					return err
				}
			}
			return nil
		})

	case planner.JoinIndex:
		ix := tbl.Index(st.IndexName)
		if ix == nil {
			return batch{}, fmt.Errorf("engine: plan references missing index %q on %s", st.IndexName, st.Input.Rel.Name)
		}
		return ex.gatherBatches(pq, len(cur.rows), func(ec *evalCtx, lo, hi int, out *batch) error {
		next:
			for i := lo; i < hi; i++ {
				base := cur.rows[i]
				ec.keyBuf = ec.keyBuf[:0]
				for _, slot := range st.ProbeSlots {
					v := base[slot]
					if v.IsNull() {
						continue next
					}
					ec.keyBuf = v.AppendKey(ec.keyBuf)
				}
				for _, pos := range ix.Probe(ec.keyBuf) {
					if !pq.vecPass(si, pos) {
						continue
					}
					if err := ec.emit(out, base, baseProv(i), st, si, int32(pos), self, post); err != nil {
						return err
					}
				}
			}
			return nil
		})

	default: // JoinLoop — prefilter the inner side once, then cross.
		n := tbl.Len()
		var inner []int32
		if len(self) > 0 {
			inner = make([]int32, 0, n)
			ec := pq.newCtx()
			width := len(st.Input.Rel.Attributes)
			row := ec.scratchRow()
			for ti := 0; ti < n; ti++ {
				if !pq.vecPass(si, ti) {
					continue
				}
				tbl.CopyRow(row[st.Offset:st.Offset+width], ti)
				keep := true
				for _, ev := range self {
					v, err := ev(ec, row)
					if err != nil {
						return batch{}, err
					}
					if !passes(v) {
						keep = false
						break
					}
				}
				if keep {
					inner = append(inner, int32(ti))
				}
			}
		} else {
			inner = pq.loopInner(si, tbl)
		}
		return ex.gatherBatches(pq, len(cur.rows), func(ec *evalCtx, lo, hi int, out *batch) error {
			for i := lo; i < hi; i++ {
				base := cur.rows[i]
				for _, ti := range inner {
					if err := ec.emit(out, base, baseProv(i), st, si, ti, post); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

// planFor builds a plan for the flattened FROM entries; the result has
// Fallback set when the query is outside the planner's dialect (views,
// outer joins, forward ON references, or the planner disabled). hasOuter
// reports an enclosing scope whose bindings may satisfy otherwise
// unresolvable column references (correlated subqueries).
func (ex *Engine) planFor(sel *sqlparser.SelectStmt, entries []fromEntry, hasOuter bool) *planner.Plan {
	if ex.st.noPlan.Load() {
		return planner.NewFallback("planner disabled")
	}
	inputs := make([]planner.Input, len(entries))
	var onConjs []sqlparser.Expr
	for i := range entries {
		e := &entries[i]
		if e.view != nil {
			return planner.NewFallback("view reference")
		}
		if e.explicit && e.joinKind != sqlparser.JoinInner {
			return planner.NewFallback("outer join")
		}
		if e.explicit && e.joinOn != nil {
			for _, c := range sqlparser.Conjuncts(e.joinOn) {
				if !onPlannable(c, entries, i) {
					return planner.NewFallback("ON condition outside the planner dialect")
				}
				onConjs = append(onConjs, c)
			}
		}
		inputs[i] = planner.Input{Alias: e.alias, Rel: e.rel, Tbl: e.tbl}
	}
	return planner.Build(sel, inputs, onConjs, hasOuter)
}

// onPlannable reports whether an explicit-JOIN ON conjunct can be treated as
// a WHERE conjunct: no subqueries, and every reference qualified and bound
// by entry i's prefix (the naive pipeline evaluates ON at its own step, so
// forward or unqualified references must keep naive semantics).
func onPlannable(c sqlparser.Expr, entries []fromEntry, i int) bool {
	if planner.HasSubquery(c) {
		return false
	}
	ok := true
	sqlparser.WalkExpr(c, func(x sqlparser.Expr) bool {
		ref, isRef := x.(*sqlparser.ColumnRef)
		if !isRef {
			return true
		}
		if ref.Table == "" {
			ok = false
			return false
		}
		for j := 0; j <= i; j++ {
			if strings.EqualFold(entries[j].alias, ref.Table) || strings.EqualFold(entries[j].rel.Name, ref.Table) {
				return true
			}
		}
		ok = false
		return false
	})
	return ok
}

// materializeEnvs exposes flat rows as environment chains (bindings in FROM
// order) so grouped evaluation and ORDER BY reuse the existing machinery.
func (pq *plannedQuery) materializeEnvs(rows [][]value.Value) []*env {
	envs := make([]*env, len(rows))
	for i, row := range rows {
		b := make([]binding, len(pq.fromOrder))
		for fi, si := range pq.fromOrder {
			st := pq.plan.Steps[si]
			n := len(st.Input.Rel.Attributes)
			b[fi] = binding{
				alias: st.Input.Alias,
				rel:   st.Input.Rel,
				tuple: storage.Tuple(row[st.Offset : st.Offset+n]),
			}
		}
		envs[i] = &env{parent: pq.outer, bindings: b}
	}
	return envs
}

// execPlanned runs a non-fallback plan end to end: the join pipeline, then
// aggregation or projection, DISTINCT, ORDER BY (full sort or a bounded
// top-K heap), and LIMIT — all over flat slot-addressed rows. Grouped
// queries whose expressions need environment semantics (subqueries) take
// the materialized-environment path inside execPlannedGrouped.
func (ex *Engine) execPlanned(sel *sqlparser.SelectStmt, entries []fromEntry, plan *planner.Plan, outer *env, earlyLimit int, grouped bool) (*Result, error) {
	pq := ex.compilePlan(plan, outer)
	if !grouped {
		// Fully vectorized single-table scans project straight from the
		// column vectors, skipping row materialization entirely.
		if res, ok, err := ex.tryVecScan(sel, entries, pq, earlyLimit); ok {
			return res, err
		}
	} else {
		// Grouped queries the planner marked vec-aggregate run the fused
		// scan→join→aggregate pipeline over typed accumulators, never
		// materializing a joined row.
		if res, ok, err := ex.tryVecAgg(sel, entries, pq); ok {
			return res, err
		}
	}
	rows, err := ex.runPlan(pq)
	if err != nil {
		return nil, err
	}
	items, cols, err := expandItems(sel, entries)
	if err != nil {
		return nil, err
	}
	if grouped {
		return ex.execPlannedGrouped(sel, entries, pq, rows, items, cols)
	}
	return ex.execPlannedFlat(sel, pq, rows, items, cols, earlyLimit)
}

// execPlannedFlat projects joined rows through compiled item evaluators and
// shapes the result. Without ORDER BY or DISTINCT the LIMIT (and any caller
// bound) pushes down into the projection loop, stopping it early.
func (ex *Engine) execPlannedFlat(sel *sqlparser.SelectStmt, pq *plannedQuery, rows [][]value.Value, items []sqlparser.SelectItem, cols []string, earlyLimit int) (*Result, error) {
	evals := make([]rowEval, len(items))
	pure := true // no projection expression can error
	for i, it := range items {
		ev, ok := pq.compile(it.Expr)
		if !ok {
			ev = pq.bridgeEval(it.Expr)
			pure = false // bridged lookups can fail (unknown columns, subqueries)
		} else {
			switch it.Expr.(type) {
			case *sqlparser.ColumnRef, *sqlparser.Literal:
				// compiled slot reads and constants cannot fail
			default:
				pure = false
			}
		}
		evals[i] = ev
	}
	// LIMIT pushdown: without ORDER BY or DISTINCT the first rows are the
	// answer. The naive pipeline projects every joined row before
	// truncating, so the LIMIT may stop the loop only when no projection
	// expression can error past the bound — otherwise a planned run would
	// swallow an error the naive run raises. The caller's bound (subquery
	// probes) mirrors the naive early exit exactly, including its
	// sel.Limit < 0 guard.
	bound := -1
	if len(sel.OrderBy) == 0 && !sel.Distinct {
		if sel.Limit >= 0 && pure {
			bound = sel.Limit
		}
		if earlyLimit >= 0 && sel.Limit < 0 {
			bound = earlyLimit
		}
	}
	out := &Result{Columns: cols}
	ec := pq.newCtx()
	proj := rowArena{width: len(items)}
	for _, row := range rows {
		if bound >= 0 && len(out.Rows) >= bound {
			break
		}
		r := proj.peek()
		for i, ev := range evals {
			v, err := ev(ec, row)
			if err != nil {
				return nil, err
			}
			r[i] = v
		}
		proj.commit()
		out.Rows = append(out.Rows, storage.Tuple(r))
	}
	// rows stays aligned with out.Rows (no early exit is possible when an
	// ORDER BY is present), so expression sort keys evaluate over the joined
	// row backing each output row.
	keyOf := func(i int, k *plannedSortKey) (value.Value, error) {
		if k.col >= 0 {
			return out.Rows[i][k.col], nil
		}
		return k.eval(ec, rows[i])
	}
	keys, err := pq.flatOrderKeys(sel, items)
	if err != nil {
		return nil, err
	}
	return ex.shapeResult(sel, pq, out, keys, keyOf)
}

// flatOrderKeys resolves ORDER BY items for the ungrouped planned path:
// ordinals and select-list matches read output columns; other expressions
// compile (or bridge) over the joined row. Resolution errors are deferred —
// they surface only when there are rows to sort, matching the naive path.
func (pq *plannedQuery) flatOrderKeys(sel *sqlparser.SelectStmt, items []sqlparser.SelectItem) ([]plannedSortKey, error) {
	keys := make([]plannedSortKey, len(sel.OrderBy))
	for j, o := range sel.OrderBy {
		keys[j] = plannedSortKey{col: -1, desc: o.Desc}
		if col, ok, err := orderTarget(o, items); err != nil {
			keys[j].err = err
			continue
		} else if ok {
			keys[j].col = col
			continue
		}
		if sel.Distinct {
			// Row/env alignment is lost after dedup in the naive path, and
			// the planned path mirrors its error.
			keys[j].err = fmt.Errorf("engine: ORDER BY expression %s is not in the select list", o.Expr.SQL())
			continue
		}
		ev, ok := pq.compile(o.Expr)
		if !ok {
			ev = pq.bridgeEval(o.Expr)
		}
		keys[j].eval = ev
	}
	return keys, nil
}

// ---------------------------------------------------------------------------
// Public planner API
// ---------------------------------------------------------------------------

// SetPlannerEnabled toggles the cost-based planner. Disabled, every SELECT
// runs the naive environment pipeline — differential tests force this to
// prove planned and naive execution produce identical rows. Safe for
// concurrent use.
func (ex *Engine) SetPlannerEnabled(on bool) { ex.st.noPlan.Store(!on) }

// SetVecAggEnabled toggles the fused vectorized-aggregation pipeline.
// Disabled, grouped queries that would take it run the streaming
// row-at-a-time aggregation instead — differential tests force this to prove
// the two produce identical rows. Safe for concurrent use.
func (ex *Engine) SetVecAggEnabled(on bool) { ex.st.noVecAgg.Store(!on) }

// SetZoneMapsEnabled toggles the zone-map layer as a whole (default on):
// morsel pruning plus the encoded scan fast paths that ride on the same
// metadata (frame-of-reference delta reads, sorted-dictionary rank compares).
// Off reverts every scan to testing each row against plain payloads —
// differential tests and benchmarks compare the two executions.
func (ex *Engine) SetZoneMapsEnabled(on bool) { ex.st.noZoneMaps.Store(!on) }

// Plan builds (without executing) the plan the engine would use for sel.
// Queries outside the planner's dialect return a plan with Fallback set.
func (ex *Engine) Plan(sel *sqlparser.SelectStmt) (*planner.Plan, error) {
	entries, err := ex.flattenFrom(sel.From)
	if err != nil {
		return nil, err
	}
	return ex.planFor(sel, entries, false), nil
}

// SelectExplained executes sel and returns both the result and the executed
// plan with per-step actual row counts — the EXPLAIN PLAN backbone.
func (ex *Engine) SelectExplained(sel *sqlparser.SelectStmt) (*Result, *planner.Plan, error) {
	return ex.execSelectExplained(sel, nil, -1)
}
