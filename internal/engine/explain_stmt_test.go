package engine

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sqlparser"
)

// TestExplainPlanStatement runs EXPLAIN PLAN through Exec and checks the
// tabular rendering: one row per step, estimated and actual counts filled.
func TestExplainPlanStatement(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, n, err := ex.Exec("explain plan " + sqlparser.PaperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("affected = %d", n)
	}
	if len(res.Columns) != 7 || res.Columns[0] != "step" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("Q1 should plan in 3 steps, got %d rows:\n%s", len(res.Rows), res)
	}
	// The first step must be the selective ACTOR scan; each row carries an
	// actual count >= 0.
	if got := res.Rows[0][2].Text(); !strings.Contains(got, "ACTOR") {
		t.Errorf("first step target = %q, want the filtered ACTOR scan", got)
	}
	for i, row := range res.Rows {
		if row[5].IsNull() || row[5].Int() < 0 {
			t.Errorf("row %d has no actual count: %s", i, row)
		}
	}
}

// TestExplainPlanStatementFallback renders fallback plans honestly.
func TestExplainPlanStatementFallback(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, _, err := ex.Exec("explain plan select m.title from MOVIES m left join CAST c on m.id = c.mid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Text() != "naive pipeline" {
		t.Fatalf("fallback rendering:\n%s", res)
	}
}

// TestPlannedParallelMatchesSerial: the planned pipeline's worker fan-out
// must be invisible — identical rows in identical order at any parallelism.
func TestPlannedParallelMatchesSerial(t *testing.T) {
	old := parallelThreshold
	parallelThreshold = 8 // force the parallel paths on a small database
	defer func() { parallelThreshold = old }()

	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 11, Movies: 300, Actors: 80, Directors: 9, CastPerMovie: 3, GenresPerMovie: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	for _, sql := range []string{
		"select m.title, c.role from MOVIES m, CAST c where m.id = c.mid and c.aid < 40",
		"select m.title, g.genre from MOVIES m, GENRE g where m.id = g.mid and g.genre = 'drama'",
		"select a.name from ACTOR a, CAST c, MOVIES m where a.id = c.aid and c.mid = m.id and m.year > 1980",
	} {
		ex.SetParallelism(1)
		serial, err := ex.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		ex.SetParallelism(4)
		parallel, err := ex.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		ex.SetParallelism(0)
		if len(serial.Rows) != len(parallel.Rows) {
			t.Fatalf("%s: serial %d rows, parallel %d", sql, len(serial.Rows), len(parallel.Rows))
		}
		for i := range serial.Rows {
			for j := range serial.Rows[i] {
				a, b := serial.Rows[i][j], parallel.Rows[i][j]
				if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
					t.Fatalf("%s: row %d differs between serial and parallel", sql, i)
				}
			}
		}
	}
}

// TestPlannedRowsAreIndependent: arena-allocated result rows must not alias
// each other — mutating one (as DML helpers may) cannot corrupt another.
func TestPlannedRowsAreIndependent(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, err := ex.Query("select m.id, m.title from MOVIES m where m.year > 1900")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatal("need a few rows")
	}
	before := res.Rows[1][1].Text()
	res.Rows[0][1] = res.Rows[0][0] // clobber row 0
	if res.Rows[1][1].Text() != before {
		t.Fatal("mutating one result row changed another (arena aliasing)")
	}
}

// TestExplainPlanShapeRows: grouped/ordered queries render their shaping
// stages as extra EXPLAIN PLAN rows with actual counts filled in.
func TestExplainPlanShapeRows(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, _, err := ex.Exec("explain plan select g.genre, count(*) from GENRE g group by g.genre having count(*) > 1 order by count(*) desc limit 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, row := range res.Rows {
		kinds = append(kinds, row[1].Text())
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "aggregate") || !strings.Contains(joined, "top-k") {
		t.Fatalf("EXPLAIN PLAN missing shaping rows, got kinds %v:\n%s", kinds, res)
	}
	last := res.Rows[len(res.Rows)-1]
	if last[1].Text() != "top-k" || last[5].Int() != 2 {
		t.Errorf("top-k row should report 2 actual rows: %s", last)
	}
	for _, row := range res.Rows {
		if row[1].Text() == "aggregate" && row[5].Int() != 5 {
			t.Errorf("aggregate row actual = %s, want the 5 groups surviving HAVING", row[5])
		}
	}
}

// TestExplainPlanVecAggregate pins the EXPLAIN PLAN rendering of the fused
// vectorized-aggregation shape: a parallel-scan shape row (with the morsel
// size and the scanned-row count) followed by a vec-aggregate row, both
// stable across runs because the planner's gate is driven by statistics, not
// runtime worker counts.
func TestExplainPlanVecAggregate(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 31, Movies: 4000, Actors: 800, Directors: 41, CastPerMovie: 1, GenresPerMovie: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	res, _, err := ex.Exec(`explain plan select g.genre, count(*), avg(m.year)
		from MOVIES m, GENRE g where m.id = g.mid group by g.genre having count(*) > 10`)
	if err != nil {
		t.Fatal(err)
	}
	var pscan, vagg []string
	for _, row := range res.Rows {
		switch row[1].Text() {
		case "parallel-scan":
			pscan = []string{row[3].Text(), row[5].String()}
		case "vec-aggregate":
			vagg = []string{row[3].Text(), row[5].String()}
		case "aggregate":
			t.Fatalf("generic aggregate rendered for a vec-aggregate query:\n%s", res)
		}
	}
	if pscan == nil {
		t.Fatalf("no parallel-scan shape row:\n%s", res)
	}
	if pscan[0] != "morsels of 4096 rows" {
		t.Errorf("parallel-scan detail = %q", pscan[0])
	}
	if pscan[1] != "4000" {
		t.Errorf("parallel-scan actual rows = %s, want the full scan count", pscan[1])
	}
	if vagg == nil {
		t.Fatalf("no vec-aggregate shape row:\n%s", res)
	}
	if !strings.Contains(vagg[0], "group by g.genre") || !strings.Contains(vagg[0], "having COUNT(*) > 10") {
		t.Errorf("vec-aggregate detail = %q", vagg[0])
	}

	// Fingerprint stability: the same query plans to the same fingerprint,
	// including the new shape markers.
	sel, err := sqlparser.ParseSelect(`select g.genre, count(*), avg(m.year)
		from MOVIES m, GENRE g where m.id = g.mid group by g.genre having count(*) > 10`)
	if err != nil {
		t.Fatal(err)
	}
	_, p1, err := ex.SelectExplained(sel)
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := ex.SelectExplained(sel)
	if err != nil {
		t.Fatal(err)
	}
	fp := p1.Fingerprint()
	if fp != p2.Fingerprint() {
		t.Fatalf("fingerprint unstable: %q vs %q", fp, p2.Fingerprint())
	}
	if !strings.Contains(fp, ">pscan>vagg{1,2}+having") {
		t.Errorf("fingerprint %q missing the vec shape markers", fp)
	}
}
