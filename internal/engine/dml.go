package engine

import (
	"fmt"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// execInsert runs INSERT ... VALUES or INSERT ... SELECT. The whole
// statement is one WAL batch: rows applied before a mid-statement failure
// remain in the table (matching the storage layer's partial-apply
// semantics), and they flush to the log even on the error path — the commit
// error, if any, outranks none but never masks the statement's own.
//
// Cancellation is the exception to partial apply: a budget that trips mid-
// statement rolls the inserted suffix back and discards the batch's ops, so
// a cancelled INSERT leaves no trace in memory or in the log. Once every row
// is applied the statement commits even if the deadline has passed — the
// loss-free contract is "commits through the WAL or leaves no trace", never
// half of each.
func (ex *Engine) execInsert(stmt *sqlparser.InsertStmt) (n int, err error) {
	ex.db.BeginBatch()
	batchClosed := false
	defer func() {
		if batchClosed {
			return
		}
		if cerr := ex.commitBatch(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	tbl := ex.db.Table(stmt.Relation)
	if tbl == nil {
		return 0, fmt.Errorf("engine: unknown relation %q", stmt.Relation)
	}
	rel := tbl.Relation()
	start := tbl.Len()
	// cancelled rolls a tripped statement back: in-memory suffix first, then
	// the batch's pending log ops. The batch is closed by the discard, so the
	// deferred commit stays out of the way.
	cancelled := func(cerr error) (int, error) {
		ex.db.RollbackInsertSuffix(rel.Name, start)
		ex.db.DiscardBatch()
		batchClosed = true
		return 0, cerr
	}

	// Map statement columns to attribute positions; default is declaration
	// order over all attributes.
	var positions []int
	if len(stmt.Columns) > 0 {
		positions = make([]int, len(stmt.Columns))
		for i, c := range stmt.Columns {
			p := rel.AttrIndex(c)
			if p < 0 {
				return 0, fmt.Errorf("engine: relation %s has no attribute %q", rel.Name, c)
			}
			positions[i] = p
		}
	} else {
		positions = make([]int, len(rel.Attributes))
		for i := range rel.Attributes {
			positions[i] = i
		}
	}

	insertRow := func(vals []value.Value) error {
		if len(vals) != len(positions) {
			return fmt.Errorf("engine: INSERT into %s expects %d values, got %d", rel.Name, len(positions), len(vals))
		}
		tup := make(storage.Tuple, len(rel.Attributes))
		for i := range tup {
			tup[i] = value.NewNull()
		}
		for i, p := range positions {
			tup[p] = vals[i]
		}
		return ex.db.Insert(rel.Name, tup)
	}

	if stmt.Query != nil {
		res, err := ex.execSelect(stmt.Query, nil)
		if err != nil {
			return 0, err // source SELECT failed or was cancelled: nothing applied yet
		}
		for _, row := range res.Rows {
			if cerr := ex.bud.Tick(n); cerr != nil {
				return cancelled(cerr)
			}
			if err := insertRow(row); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}
	for _, row := range stmt.Rows {
		if cerr := ex.bud.Tick(n); cerr != nil {
			return cancelled(cerr)
		}
		vals := make([]value.Value, len(row))
		for i, e := range row {
			v, err := ex.evalExpr(e, &env{}, nil)
			if err != nil {
				return n, err
			}
			vals[i] = v
		}
		if err := insertRow(vals); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// execUpdate runs UPDATE ... SET ... WHERE; SET expressions may reference
// the current tuple. The statement runs as one WAL batch (see execInsert).
//
// With a budget bound, the WHERE predicate is evaluated in a cancellable
// pre-scan before any row mutates: a trip during the scan returns with the
// table untouched (no trace), and the mutation pass then consults the
// precomputed mask. Statements past the scan commit whole.
func (ex *Engine) execUpdate(stmt *sqlparser.UpdateStmt) (n int, err error) {
	ex.db.BeginBatch()
	defer func() {
		if cerr := ex.commitBatch(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	tbl := ex.db.Table(stmt.Relation)
	if tbl == nil {
		return 0, fmt.Errorf("engine: unknown relation %q", stmt.Relation)
	}
	rel := tbl.Relation()
	alias := stmt.Alias
	if alias == "" {
		alias = rel.Name
	}
	for _, a := range stmt.Set {
		if rel.AttrIndex(a.Column) < 0 {
			return 0, fmt.Errorf("engine: relation %s has no attribute %q", rel.Name, a.Column)
		}
	}

	var evalErr error
	pred := func(tup storage.Tuple) bool {
		if stmt.Where == nil {
			return true
		}
		en := &env{bindings: []binding{{alias: alias, rel: rel, tuple: tup}}}
		v, err := ex.evalExpr(stmt.Where, en, nil)
		if err != nil {
			evalErr = err
			return false
		}
		return !v.IsNull() && v.Kind() == value.Bool && v.Bool()
	}
	if ex.bud != nil {
		maskPred, cerr := ex.dmlPrescan(tbl, stmt.Where, alias)
		if cerr != nil {
			return 0, cerr
		}
		if maskPred != nil {
			pred = maskPred
		}
	}
	apply := func(tup storage.Tuple) storage.Tuple {
		en := &env{bindings: []binding{{alias: alias, rel: rel, tuple: tup}}}
		// Evaluate all RHS before assigning, per SQL simultaneous-update
		// semantics (sal = sal * 2 uses the old sal).
		newVals := make([]value.Value, len(stmt.Set))
		for i, a := range stmt.Set {
			v, err := ex.evalExpr(a.Value, en, nil)
			if err != nil {
				evalErr = err
				return tup
			}
			newVals[i] = v
		}
		for i, a := range stmt.Set {
			tup[rel.AttrIndex(a.Column)] = newVals[i]
		}
		return tup
	}
	n, err = ex.db.Update(rel.Name, pred, apply)
	if evalErr != nil {
		return n, evalErr
	}
	return n, err
}

// execDelete runs DELETE FROM ... WHERE. The statement runs as one WAL
// batch (see execInsert); with a budget bound the WHERE predicate runs as a
// cancellable pre-scan exactly like execUpdate.
func (ex *Engine) execDelete(stmt *sqlparser.DeleteStmt) (n int, err error) {
	ex.db.BeginBatch()
	defer func() {
		if cerr := ex.commitBatch(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	tbl := ex.db.Table(stmt.Relation)
	if tbl == nil {
		return 0, fmt.Errorf("engine: unknown relation %q", stmt.Relation)
	}
	rel := tbl.Relation()
	alias := stmt.Alias
	if alias == "" {
		alias = rel.Name
	}
	var evalErr error
	pred := func(tup storage.Tuple) bool {
		if stmt.Where == nil {
			return true
		}
		en := &env{bindings: []binding{{alias: alias, rel: rel, tuple: tup}}}
		v, err := ex.evalExpr(stmt.Where, en, nil)
		if err != nil {
			evalErr = err
			return false
		}
		return !v.IsNull() && v.Kind() == value.Bool && v.Bool()
	}
	if ex.bud != nil {
		maskPred, cerr := ex.dmlPrescan(tbl, stmt.Where, alias)
		if cerr != nil {
			return 0, cerr
		}
		if maskPred != nil {
			pred = maskPred
		}
	}
	n, err = ex.db.Delete(rel.Name, pred)
	if evalErr != nil {
		return n, evalErr
	}
	return n, err
}

// dmlPrescan evaluates where over every row of tbl with cooperative budget
// polls, before any mutation. It returns a position-counting predicate that
// replays the decisions during the storage layer's locked scan (the scan
// visits rows 0..Len-1 in order, calling the predicate exactly once per
// row), or (nil, nil) when there is no WHERE to pre-evaluate — the trivial
// all-rows predicate cannot block on expression evaluation. A budget trip
// or an evaluation error during the pre-scan aborts the statement before it
// touches a single row.
//
// The replay is positionally consistent because engine DML is serialized
// (core holds execMu) — nothing mutates the table between the pre-scan and
// the locked scan.
func (ex *Engine) dmlPrescan(tbl *storage.Table, where sqlparser.Expr, alias string) (func(storage.Tuple) bool, error) {
	if err := ex.bud.Step(0); err != nil {
		return nil, err
	}
	if where == nil {
		return nil, nil
	}
	rel := tbl.Relation()
	nrows := tbl.Len()
	ex.bud.AddTotal(nrows)
	mask := make([]bool, nrows)
	scratch := make(storage.Tuple, len(rel.Attributes))
	for i := 0; i < nrows; i++ {
		if err := ex.bud.Tick(i); err != nil {
			return nil, err
		}
		tbl.CopyRow(scratch, i)
		en := &env{bindings: []binding{{alias: alias, rel: rel, tuple: scratch}}}
		v, err := ex.evalExpr(where, en, nil)
		if err != nil {
			return nil, err
		}
		mask[i] = !v.IsNull() && v.Kind() == value.Bool && v.Bool()
	}
	next := 0
	return func(storage.Tuple) bool {
		ok := next < len(mask) && mask[next]
		next++
		return ok
	}, nil
}
