package engine

import (
	"fmt"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// execInsert runs INSERT ... VALUES or INSERT ... SELECT. The whole
// statement is one WAL batch: rows applied before a mid-statement failure
// remain in the table (matching the storage layer's partial-apply
// semantics), and they flush to the log even on the error path — the commit
// error, if any, outranks none but never masks the statement's own.
func (ex *Engine) execInsert(stmt *sqlparser.InsertStmt) (n int, err error) {
	ex.db.BeginBatch()
	defer func() {
		if cerr := ex.db.CommitBatch(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	tbl := ex.db.Table(stmt.Relation)
	if tbl == nil {
		return 0, fmt.Errorf("engine: unknown relation %q", stmt.Relation)
	}
	rel := tbl.Relation()

	// Map statement columns to attribute positions; default is declaration
	// order over all attributes.
	var positions []int
	if len(stmt.Columns) > 0 {
		positions = make([]int, len(stmt.Columns))
		for i, c := range stmt.Columns {
			p := rel.AttrIndex(c)
			if p < 0 {
				return 0, fmt.Errorf("engine: relation %s has no attribute %q", rel.Name, c)
			}
			positions[i] = p
		}
	} else {
		positions = make([]int, len(rel.Attributes))
		for i := range rel.Attributes {
			positions[i] = i
		}
	}

	insertRow := func(vals []value.Value) error {
		if len(vals) != len(positions) {
			return fmt.Errorf("engine: INSERT into %s expects %d values, got %d", rel.Name, len(positions), len(vals))
		}
		tup := make(storage.Tuple, len(rel.Attributes))
		for i := range tup {
			tup[i] = value.NewNull()
		}
		for i, p := range positions {
			tup[p] = vals[i]
		}
		return ex.db.Insert(rel.Name, tup)
	}

	if stmt.Query != nil {
		res, err := ex.execSelect(stmt.Query, nil)
		if err != nil {
			return 0, err
		}
		for _, row := range res.Rows {
			if err := insertRow(row); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}
	for _, row := range stmt.Rows {
		vals := make([]value.Value, len(row))
		for i, e := range row {
			v, err := ex.evalExpr(e, &env{}, nil)
			if err != nil {
				return n, err
			}
			vals[i] = v
		}
		if err := insertRow(vals); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// execUpdate runs UPDATE ... SET ... WHERE; SET expressions may reference
// the current tuple. The statement runs as one WAL batch (see execInsert).
func (ex *Engine) execUpdate(stmt *sqlparser.UpdateStmt) (n int, err error) {
	ex.db.BeginBatch()
	defer func() {
		if cerr := ex.db.CommitBatch(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	tbl := ex.db.Table(stmt.Relation)
	if tbl == nil {
		return 0, fmt.Errorf("engine: unknown relation %q", stmt.Relation)
	}
	rel := tbl.Relation()
	alias := stmt.Alias
	if alias == "" {
		alias = rel.Name
	}
	for _, a := range stmt.Set {
		if rel.AttrIndex(a.Column) < 0 {
			return 0, fmt.Errorf("engine: relation %s has no attribute %q", rel.Name, a.Column)
		}
	}

	var evalErr error
	pred := func(tup storage.Tuple) bool {
		if stmt.Where == nil {
			return true
		}
		en := &env{bindings: []binding{{alias: alias, rel: rel, tuple: tup}}}
		v, err := ex.evalExpr(stmt.Where, en, nil)
		if err != nil {
			evalErr = err
			return false
		}
		return !v.IsNull() && v.Kind() == value.Bool && v.Bool()
	}
	apply := func(tup storage.Tuple) storage.Tuple {
		en := &env{bindings: []binding{{alias: alias, rel: rel, tuple: tup}}}
		// Evaluate all RHS before assigning, per SQL simultaneous-update
		// semantics (sal = sal * 2 uses the old sal).
		newVals := make([]value.Value, len(stmt.Set))
		for i, a := range stmt.Set {
			v, err := ex.evalExpr(a.Value, en, nil)
			if err != nil {
				evalErr = err
				return tup
			}
			newVals[i] = v
		}
		for i, a := range stmt.Set {
			tup[rel.AttrIndex(a.Column)] = newVals[i]
		}
		return tup
	}
	n, err = ex.db.Update(rel.Name, pred, apply)
	if evalErr != nil {
		return n, evalErr
	}
	return n, err
}

// execDelete runs DELETE FROM ... WHERE. The statement runs as one WAL
// batch (see execInsert).
func (ex *Engine) execDelete(stmt *sqlparser.DeleteStmt) (n int, err error) {
	ex.db.BeginBatch()
	defer func() {
		if cerr := ex.db.CommitBatch(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	tbl := ex.db.Table(stmt.Relation)
	if tbl == nil {
		return 0, fmt.Errorf("engine: unknown relation %q", stmt.Relation)
	}
	rel := tbl.Relation()
	alias := stmt.Alias
	if alias == "" {
		alias = rel.Name
	}
	var evalErr error
	pred := func(tup storage.Tuple) bool {
		if stmt.Where == nil {
			return true
		}
		en := &env{bindings: []binding{{alias: alias, rel: rel, tuple: tup}}}
		v, err := ex.evalExpr(stmt.Where, en, nil)
		if err != nil {
			evalErr = err
			return false
		}
		return !v.IsNull() && v.Kind() == value.Bool && v.Bool()
	}
	n, err = ex.db.Delete(rel.Name, pred)
	if evalErr != nil {
		return n, evalErr
	}
	return n, err
}
