package engine

import (
	"fmt"
	"sort"

	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file extends planned execution past the join pipeline: streaming hash
// aggregation over flat rows (group keys and aggregate accumulators compiled
// to slot readers), slot-compiled ORDER BY sort keys with a bounded top-K
// heap when a LIMIT is present, and LIMIT pushdown into the projection loop.
// Grouped expressions that need environment semantics (subqueries in HAVING
// or aggregate arguments) fall back to the environment-based grouped
// evaluator over materialized envs — correctness first, the fast path for
// the common shapes.
//
// Error parity with the naive pipeline is deliberate: group iteration order
// is first-seen order over naive-ordered rows, aggregate errors are recorded
// during accumulation but surface only when the aggregate's value is first
// used (HAVING before select items, ORDER BY keys last), and sort-key
// resolution errors are deferred until there is a row to sort.

// ---------------------------------------------------------------------------
// Sort keys, top-K, and shared shaping
// ---------------------------------------------------------------------------

// plannedSortKey is one resolved ORDER BY item: an output-column read
// (col >= 0) or a compiled expression over the row backing each output row —
// the joined row in the flat path, the extended group row in the grouped
// path. err defers a resolution failure until rows exist, mirroring the
// naive pipeline's per-row key resolution.
type plannedSortKey struct {
	col  int
	desc bool
	eval rowEval
	use  []int // aggregate accumulators the eval reads (grouped path)
	err  error
}

// compareSortKeys orders two key vectors under the ORDER BY directions:
// NULLs sort first ascending and last descending, exactly like the naive
// comparator. Incomparable kinds record the first error and compare equal.
func compareSortKeys(a, b []value.Value, order []sqlparser.OrderItem, errp *error) int {
	for j, o := range order {
		ka, kb := a[j], b[j]
		if ka.IsNull() || kb.IsNull() {
			if ka.IsNull() && kb.IsNull() {
				continue
			}
			if ka.IsNull() != o.Desc {
				return -1
			}
			return 1
		}
		c, err := ka.Compare(kb)
		if err != nil {
			if *errp == nil {
				*errp = err
			}
			return 0
		}
		if c == 0 {
			continue
		}
		if o.Desc {
			c = -c
		}
		if c < 0 {
			return -1
		}
		return 1
	}
	return 0
}

// topKIndices selects the k smallest of [0, n) under (cmp, index) with a
// bounded max-heap and returns them fully sorted — exactly the prefix a
// stable full sort would produce, at O(n log k).
func topKIndices(n, k int, cmp func(a, b int) int) []int {
	if k > n {
		k = n // a bound past the input keeps everything
	}
	less := func(a, b int) bool {
		if c := cmp(a, b); c != 0 {
			return c < 0
		}
		return a < b // stable: ties keep input order
	}
	h := make([]int, 0, k)
	worse := func(a, b int) bool { return less(b, a) } // max-heap on the kept set
	for i := 0; i < n; i++ {
		if len(h) < k {
			h = append(h, i)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !worse(h[c], h[p]) {
					break
				}
				h[c], h[p] = h[p], h[c]
				c = p
			}
			continue
		}
		if !less(i, h[0]) {
			continue
		}
		h[0] = i
		for c := 0; ; {
			l, r, m := 2*c+1, 2*c+2, c
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if r < len(h) && worse(h[r], h[m]) {
				m = r
			}
			if m == c {
				break
			}
			h[c], h[m] = h[m], h[c]
			c = m
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	return h
}

// shapeResult applies DISTINCT, ORDER BY (bounded top-K when a LIMIT is
// present), and LIMIT to a projected result, recording the shaping steps'
// actual row counts on the plan.
func (ex *Engine) shapeResult(sel *sqlparser.SelectStmt, pq *plannedQuery, out *Result, keys []plannedSortKey, keyOf func(i int, k *plannedSortKey) (value.Value, error)) (*Result, error) {
	if sel.Distinct {
		out.Rows = distinctRows(out.Rows)
	}
	if len(sel.OrderBy) > 0 && len(out.Rows) > 0 {
		if err := ex.sortPlanned(sel, out, keys, keyOf); err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 && len(out.Rows) > sel.Limit {
		out.Rows = out.Rows[:sel.Limit]
	}
	setShapeFinal(pq.plan, len(out.Rows))
	return out, nil
}

// sortPlanned orders out.Rows by the resolved keys: a bounded top-K heap
// when 0 < LIMIT < rows, a stable full sort otherwise (LIMIT 0 still sorts,
// so comparison errors match the naive pipeline).
func (ex *Engine) sortPlanned(sel *sqlparser.SelectStmt, out *Result, keys []plannedSortKey, keyOf func(i int, k *plannedSortKey) (value.Value, error)) error {
	// One flat backing array serves every row's key vector, so sorting n
	// rows costs two allocations — not one per row (X12 regression: top-K
	// used to allocate a key slice per input row).
	n := len(out.Rows)
	kv := make([][]value.Value, n)
	flat := make([]value.Value, n*len(keys))
	for i := 0; i < n; i++ {
		ks := flat[:len(keys):len(keys)]
		flat = flat[len(keys):]
		for j := range keys {
			k := &keys[j]
			if k.err != nil {
				return k.err
			}
			v, err := keyOf(i, k)
			if err != nil {
				return err
			}
			ks[j] = v
		}
		kv[i] = ks
	}
	var cmpErr error
	cmp := func(a, b int) int { return compareSortKeys(kv[a], kv[b], sel.OrderBy, &cmpErr) }
	var idx []int
	if sel.Limit > 0 {
		// The heap also handles LIMIT >= n (it simply keeps everything), so
		// execution always matches the plan's top-k step. LIMIT 0 takes the
		// full sort: the naive pipeline sorts before truncating, and its
		// comparison errors must still surface.
		idx = topKIndices(n, sel.Limit, cmp)
	} else {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return cmp(idx[a], idx[b]) < 0 })
	}
	if cmpErr != nil {
		return cmpErr
	}
	rows := make([]storage.Tuple, len(idx))
	for i, j := range idx {
		rows[i] = out.Rows[j]
	}
	out.Rows = rows
	return nil
}

// setShapeActual records an executed shaping step's observed cardinality.
func setShapeActual(plan *planner.Plan, kind planner.ShapeKind, n int) {
	for _, sh := range plan.Shape {
		if sh.Kind == kind {
			sh.ActualRows = n
		}
	}
}

// setShapeFinal records the final shaped row count on every non-aggregate
// shaping step (sort / top-k / limit all emit the final result). Aggregate
// steps (generic or vectorized) and the parallel-scan and zone-skip markers
// keep their own counts.
func setShapeFinal(plan *planner.Plan, n int) {
	for _, sh := range plan.Shape {
		switch sh.Kind {
		case planner.ShapeAggregate, planner.ShapeVecAggregate, planner.ShapeParallelScan, planner.ShapeZoneSkip:
		default:
			sh.ActualRows = n
		}
	}
}

// ---------------------------------------------------------------------------
// Streaming aggregation
// ---------------------------------------------------------------------------

// aggSpec is one distinct aggregate expression of the query, compiled to an
// accumulator update over the joined row. arg is nil for COUNT(*).
type aggSpec struct {
	fn       sqlparser.AggFunc
	arg      rowEval
	distinct bool
}

// aggAcc is one aggregate's running state within a group. Errors are
// recorded, not raised: they surface when the aggregate's value is first
// used, which is when the naive evaluator would compute it.
type aggAcc struct {
	err     error
	count   int64 // non-NULL (post-DISTINCT) values
	sumI    int64
	sumF    float64
	allInt  bool
	best    value.Value
	hasBest bool
	seen    map[string]bool
	keyBuf  []byte
}

func (a *aggAcc) update(ec *evalCtx, spec *aggSpec, row []value.Value) {
	if a.err != nil || spec.arg == nil {
		return
	}
	v, err := spec.arg(ec, row)
	if err != nil {
		a.err = err
		return
	}
	if v.IsNull() {
		return
	}
	if spec.distinct {
		if a.seen == nil {
			a.seen = map[string]bool{}
		}
		a.keyBuf = v.AppendKey(a.keyBuf[:0])
		if a.seen[string(a.keyBuf)] {
			return
		}
		a.seen[string(a.keyBuf)] = true
	}
	a.count++
	switch spec.fn {
	case sqlparser.AggSum, sqlparser.AggAvg:
		if !v.IsNumeric() {
			a.err = fmt.Errorf("engine: %s over non-numeric values", spec.fn)
			return
		}
		if v.Kind() == value.Int {
			a.sumI += v.Int()
		} else {
			a.allInt = false
		}
		a.sumF += v.Float()
	case sqlparser.AggMin, sqlparser.AggMax:
		if !a.hasBest {
			a.best, a.hasBest = v, true
			return
		}
		c, err := v.Compare(a.best)
		if err != nil {
			a.err = err
			return
		}
		if (spec.fn == sqlparser.AggMin && c < 0) || (spec.fn == sqlparser.AggMax && c > 0) {
			a.best = v
		}
	}
}

// result finalizes the accumulator, mirroring evalAggregate's semantics:
// COUNT(*) counts group rows, SUM stays integer over all-integer input,
// empty inputs yield NULL for SUM/AVG/MIN/MAX.
func (a *aggAcc) result(spec *aggSpec, groupRows int64) (value.Value, error) {
	if spec.arg == nil {
		return value.NewInt(groupRows), nil
	}
	if a.err != nil {
		return value.Value{}, a.err
	}
	switch spec.fn {
	case sqlparser.AggCount:
		return value.NewInt(a.count), nil
	case sqlparser.AggSum:
		if a.count == 0 {
			return value.NewNull(), nil
		}
		if a.allInt {
			return value.NewInt(a.sumI), nil
		}
		return value.NewFloat(a.sumF), nil
	case sqlparser.AggAvg:
		if a.count == 0 {
			return value.NewNull(), nil
		}
		return value.NewFloat(a.sumF / float64(a.count)), nil
	case sqlparser.AggMin, sqlparser.AggMax:
		if !a.hasBest {
			return value.NewNull(), nil
		}
		return a.best, nil
	default:
		return value.Value{}, fmt.Errorf("engine: unknown aggregate")
	}
}

// groupState is one group's running state: the representative (first) joined
// row, the row count, and one accumulator per aggregate.
type groupState struct {
	rep  []value.Value
	rows int64
	accs []aggAcc
}

func newGroupState(rep []value.Value, nAggs int) *groupState {
	gs := &groupState{rep: rep, accs: make([]aggAcc, nAggs)}
	for i := range gs.accs {
		gs.accs[i].allInt = true
	}
	return gs
}

// emittedGroup is one group that survived HAVING, extended with lazily
// resolved aggregate result slots for projection and sort keys.
type emittedGroup struct {
	gs       *groupState
	ext      []value.Value // rep row ++ one slot per aggregate
	resolved []bool
}

// resolve finalizes the listed aggregates into the extended row, surfacing
// any accumulation error at first use.
func (eg *emittedGroup) resolve(ge *groupedExec, use []int) error {
	for _, idx := range use {
		if eg.resolved[idx] {
			continue
		}
		v, err := eg.gs.accs[idx].result(ge.aggs[idx], eg.gs.rows)
		if err != nil {
			return err
		}
		eg.ext[ge.width+idx] = v
		eg.resolved[idx] = true
	}
	return nil
}

// groupedExec is a grouped query compiled against the planned row layout:
// group keys and aggregate arguments as slot readers over the joined row,
// HAVING, select items, and sort keys as slot readers over the extended
// group row (rep row ++ aggregate results).
type groupedExec struct {
	pq        *plannedQuery // base query: row-level compiles
	gpq       *plannedQuery // leaf-hooked copy: group-level compiles
	width     int           // joined-row width; aggregate slots follow
	gbEvals   []rowEval
	aggs      []*aggSpec
	aggIdx    map[string]int
	curUse    *[]int // aggregates referenced by the expression being compiled
	having    rowEval
	havingUse []int
	items     []rowEval
	itemUse   [][]int
	keys      []plannedSortKey
}

// addAgg registers (or reuses) the accumulator for one aggregate expression.
// ok=false means the argument needs environment semantics.
func (ge *groupedExec) addAgg(a *sqlparser.AggregateExpr) (int, bool) {
	key := a.SQL()
	if idx, ok := ge.aggIdx[key]; ok {
		return idx, true
	}
	spec := &aggSpec{fn: a.Func, distinct: a.Distinct}
	if a.Arg != nil {
		ev, ok := ge.pq.compile(a.Arg)
		if !ok {
			return 0, false
		}
		spec.arg = ev
	}
	idx := len(ge.aggs)
	ge.aggIdx[key] = idx
	ge.aggs = append(ge.aggs, spec)
	return idx, true
}

// newGroupedExec compiles the grouped query. ok=false means some expression
// needs environment semantics (subqueries, env-only aggregate arguments) and
// the caller must take the materialized-environment path.
func newGroupedExec(sel *sqlparser.SelectStmt, entries []fromEntry, pq *plannedQuery, items []sqlparser.SelectItem) (*groupedExec, bool) {
	ge := &groupedExec{pq: pq, width: pq.plan.Width, aggIdx: map[string]int{}}
	for _, g := range sel.GroupBy {
		ev, ok := pq.compile(g)
		if !ok {
			return nil, false
		}
		ge.gbEvals = append(ge.gbEvals, ev)
	}
	gpq := *pq
	gpq.leaf = func(e sqlparser.Expr) (rowEval, bool, bool) {
		if j, ok := groupByIndex(e, sel.GroupBy, entries); ok {
			// The extended row's prefix is the representative joined row, so
			// the grouping expression's compiled form reads it directly.
			return ge.gbEvals[j], true, true
		}
		if a, ok := e.(*sqlparser.AggregateExpr); ok {
			idx, ok := ge.addAgg(a)
			if !ok {
				return nil, true, false
			}
			if ge.curUse != nil {
				*ge.curUse = append(*ge.curUse, idx)
			}
			slot := ge.width + idx
			return func(_ *evalCtx, row []value.Value) (value.Value, error) { return row[slot], nil }, true, true
		}
		if _, ok := e.(*sqlparser.ColumnRef); ok {
			// A column that is neither grouped nor inside an aggregate:
			// fail the compile so the query takes the environment path,
			// where execGrouped raises the grouping-rule error.
			return nil, true, false
		}
		return nil, false, false
	}
	ge.gpq = &gpq
	compileGroup := func(e sqlparser.Expr) (rowEval, []int, bool) {
		var use []int
		ge.curUse = &use
		ev, ok := ge.gpq.compile(e)
		ge.curUse = nil
		return ev, use, ok
	}
	if sel.Having != nil {
		ev, use, ok := compileGroup(sel.Having)
		if !ok {
			return nil, false
		}
		ge.having, ge.havingUse = ev, use
	}
	for _, it := range items {
		ev, use, ok := compileGroup(it.Expr)
		if !ok {
			return nil, false
		}
		ge.items = append(ge.items, ev)
		ge.itemUse = append(ge.itemUse, use)
	}
	for _, o := range sel.OrderBy {
		k := plannedSortKey{col: -1, desc: o.Desc}
		if col, ok, err := orderTarget(o, items); err != nil {
			k.err = err
		} else if ok {
			k.col = col
		} else if sel.Distinct {
			// Group alignment is lost after dedup; mirror the naive error.
			k.err = fmt.Errorf("engine: ORDER BY expression %s is not in the select list", o.Expr.SQL())
		} else if err := checkGroupedExpr(o.Expr, sel, entries); err != nil {
			k.err = err
		} else {
			ev, use, ok := compileGroup(o.Expr)
			if !ok {
				return nil, false
			}
			k.eval, k.use = ev, use
		}
		ge.keys = append(ge.keys, k)
	}
	return ge, true
}

// execPlannedGrouped aggregates the joined rows: the streaming compiled path
// when every grouped expression lowers to slot readers, the materialized
// environment path otherwise.
func (ex *Engine) execPlannedGrouped(sel *sqlparser.SelectStmt, entries []fromEntry, pq *plannedQuery, rows [][]value.Value, items []sqlparser.SelectItem, cols []string) (*Result, error) {
	// The standard-SQL grouping rule is enforced by execGrouped: an item or
	// HAVING term with a stray column never compiles here (the leaf hook
	// rejects it), so such queries take the environment path below and fail
	// its shared check — one source of truth for the error.
	ge, ok := newGroupedExec(sel, entries, pq, items)
	if !ok {
		return ex.execPlannedGroupedEnv(sel, entries, pq, rows)
	}
	return ex.runGroupedPlan(sel, pq, ge, rows, cols)
}

// runGroupedPlan is the streaming hash aggregation: one pass over the joined
// rows accumulating per-group state keyed by the encoded grouping values,
// then HAVING, projection, and shaping per group in first-seen order.
func (ex *Engine) runGroupedPlan(sel *sqlparser.SelectStmt, pq *plannedQuery, ge *groupedExec, rows [][]value.Value, cols []string) (*Result, error) {
	ec := pq.newCtx()
	byKey := make(map[string]*groupState)
	var order []*groupState
	var keyBuf []byte // reused; value.AppendKey keys cannot collide across adjacent values
	for _, row := range rows {
		keyBuf = keyBuf[:0]
		for _, gev := range ge.gbEvals {
			v, err := gev(ec, row)
			if err != nil {
				return nil, err
			}
			keyBuf = v.AppendKey(keyBuf)
		}
		gs, ok := byKey[string(keyBuf)]
		if !ok {
			gs = newGroupState(row, len(ge.aggs))
			byKey[string(keyBuf)] = gs
			order = append(order, gs)
		}
		gs.rows++
		for i, spec := range ge.aggs {
			gs.accs[i].update(ec, spec, row)
		}
	}
	// A grouped query with no GROUP BY and no input rows still yields one
	// group (COUNT(*) = 0).
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		order = append(order, newGroupState(nil, len(ge.aggs)))
	}

	out := &Result{Columns: cols}
	var emitted []*emittedGroup
	for _, gs := range order {
		eg := &emittedGroup{
			gs:       gs,
			ext:      make([]value.Value, ge.width+len(ge.aggs)),
			resolved: make([]bool, len(ge.aggs)),
		}
		copy(eg.ext, gs.rep)
		if ge.having != nil {
			if err := eg.resolve(ge, ge.havingUse); err != nil {
				return nil, err
			}
			v, err := ge.having(ec, eg.ext)
			if err != nil {
				return nil, err
			}
			if !passes(v) {
				continue
			}
		}
		row := make(storage.Tuple, len(ge.items))
		for i, itEval := range ge.items {
			if err := eg.resolve(ge, ge.itemUse[i]); err != nil {
				return nil, err
			}
			v, err := itEval(ec, eg.ext)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
		emitted = append(emitted, eg)
	}
	setShapeActual(pq.plan, planner.ShapeAggregate, len(out.Rows))

	keyOf := func(i int, k *plannedSortKey) (value.Value, error) {
		if k.col >= 0 {
			return out.Rows[i][k.col], nil
		}
		eg := emitted[i]
		if err := eg.resolve(ge, k.use); err != nil {
			return value.Value{}, err
		}
		return k.eval(ec, eg.ext)
	}
	return ex.shapeResult(sel, pq, out, ge.keys, keyOf)
}

// execPlannedGroupedEnv is the fallback for grouped expressions outside the
// compiled dialect: materialize environments over the planned rows and run
// the naive grouped evaluator plus shaping.
func (ex *Engine) execPlannedGroupedEnv(sel *sqlparser.SelectStmt, entries []fromEntry, pq *plannedQuery, rows [][]value.Value) (*Result, error) {
	envs := pq.materializeEnvs(rows)
	out, groups, err := ex.execGrouped(sel, entries, envs)
	if err != nil {
		return nil, err
	}
	setShapeActual(pq.plan, planner.ShapeAggregate, len(out.Rows))
	if sel.Distinct {
		out.Rows = distinctRows(out.Rows)
		groups = nil
	}
	if len(sel.OrderBy) > 0 {
		if err := ex.orderRows(sel, entries, out, nil, groups); err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 && len(out.Rows) > sel.Limit {
		out.Rows = out.Rows[:sel.Limit]
	}
	setShapeFinal(pq.plan, len(out.Rows))
	return out, nil
}
