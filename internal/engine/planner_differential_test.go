package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// comparePlannedNaive runs one query through the cost-based planner and
// through the forced-naive pipeline and requires identical output — same
// columns, same rows, same row ORDER (the planned pipeline restores
// FROM-major order after join reordering, so even unordered queries must
// match exactly). Both-error counts as agreement.
func comparePlannedNaive(t *testing.T, ex *Engine, sql string) {
	t.Helper()
	ex.SetPlannerEnabled(true)
	planned, errP := ex.Query(sql)
	ex.SetPlannerEnabled(false)
	naive, errN := ex.Query(sql)
	ex.SetPlannerEnabled(true)

	if (errP != nil) != (errN != nil) {
		t.Fatalf("%s\nplanned err = %v, naive err = %v", sql, errP, errN)
	}
	if errP != nil {
		return
	}
	if len(planned.Columns) != len(naive.Columns) {
		t.Fatalf("%s\ncolumns: planned %v, naive %v", sql, planned.Columns, naive.Columns)
	}
	for i := range planned.Columns {
		if planned.Columns[i] != naive.Columns[i] {
			t.Fatalf("%s\ncolumn %d: planned %q, naive %q", sql, i, planned.Columns[i], naive.Columns[i])
		}
	}
	if len(planned.Rows) != len(naive.Rows) {
		t.Fatalf("%s\nplanned %d rows, naive %d rows", sql, len(planned.Rows), len(naive.Rows))
	}
	for i := range planned.Rows {
		if len(planned.Rows[i]) != len(naive.Rows[i]) {
			t.Fatalf("%s\nrow %d arity differs", sql, i)
		}
		for j := range planned.Rows[i] {
			p, n := planned.Rows[i][j], naive.Rows[i][j]
			if p.IsNull() != n.IsNull() || (!p.IsNull() && !p.Equal(n)) {
				t.Fatalf("%s\nrow %d col %d: planned %s, naive %s", sql, i, j, p, n)
			}
		}
	}
}

// TestPlannerDifferentialPaperCorpus proves plan/naive row equality on every
// query the paper quotes, over the curated databases.
func TestPlannerDifferentialPaperCorpus(t *testing.T) {
	movieDB, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	empDB, err := dataset.CuratedEmpDept()
	if err != nil {
		t.Fatal(err)
	}
	movies, emp := New(movieDB), New(empDB)
	for _, label := range sqlparser.PaperQueryOrder {
		sql := sqlparser.PaperQueries[label]
		ex := movies
		if label == "Q0" {
			ex = emp
		}
		t.Run(label, func(t *testing.T) { comparePlannedNaive(t, ex, sql) })
	}
}

// TestPlannerDifferentialPaperCorpusIndexed repeats the corpus with
// secondary indexes on every join and filter column, forcing the planner
// through its index-nested-loop and index-probe paths.
func TestPlannerDifferentialPaperCorpusIndexed(t *testing.T) {
	movieDB, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	for tbl, attrs := range map[string][]string{
		"CAST":     {"mid", "aid", "role"},
		"DIRECTED": {"mid", "did"},
		"GENRE":    {"mid", "genre"},
		"ACTOR":    {"name"},
		"MOVIES":   {"title", "year"},
		"DIRECTOR": {"name"},
	} {
		for _, a := range attrs {
			if err := movieDB.Table(tbl).CreateIndex("ix_"+tbl+"_"+a, a); err != nil {
				t.Fatal(err)
			}
		}
	}
	ex := New(movieDB)
	for _, label := range sqlparser.PaperQueryOrder {
		if label == "Q0" {
			continue // EMP/DEPT schema
		}
		sql := sqlparser.PaperQueries[label]
		t.Run(label, func(t *testing.T) { comparePlannedNaive(t, ex, sql) })
	}
}

// TestPlannerDifferentialRandomized sweeps randomized filters, orders,
// grouping, and join shapes over a generated database, with and without
// secondary indexes.
func TestPlannerDifferentialRandomized(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 91, Movies: 120, Actors: 45, Directors: 8, CastPerMovie: 3, GenresPerMovie: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Table("CAST").CreateIndex("ix_cast_aid", "aid"); err != nil {
		t.Fatal(err)
	}
	if err := db.Table("GENRE").CreateIndex("ix_genre_genre", "genre"); err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	rng := rand.New(rand.NewSource(402))
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	templates := []func() string{
		func() string {
			return fmt.Sprintf("select m.title, g.genre from MOVIES m, GENRE g where m.id = g.mid and m.year %s %d",
				ops[rng.Intn(len(ops))], 1950+rng.Intn(60))
		},
		func() string {
			return fmt.Sprintf("select m.title, a.name from MOVIES m, CAST c, ACTOR a where m.id = c.mid and c.aid = a.id and a.id %s %d",
				ops[rng.Intn(len(ops))], 1+rng.Intn(45))
		},
		func() string {
			return fmt.Sprintf("select g.genre, count(*) from MOVIES m, GENRE g where m.id = g.mid and m.year > %d group by g.genre",
				1950+rng.Intn(60))
		},
		func() string {
			return fmt.Sprintf("select distinct a.name from CAST c, ACTOR a where c.aid = a.id and c.mid < %d order by a.name",
				1+rng.Intn(120))
		},
		func() string {
			// Explicit INNER JOIN syntax.
			return fmt.Sprintf("select m.title from MOVIES m join CAST c on m.id = c.mid where c.aid = %d",
				1+rng.Intn(45))
		},
		func() string {
			// Cross product with a post filter.
			return fmt.Sprintf("select d.name from DIRECTOR d, DIRECTED r where d.id = r.did and d.id != %d limit 7",
				1+rng.Intn(8))
		},
		func() string {
			// Grouped aggregate sweep with HAVING, aggregate ORDER BY, LIMIT.
			return fmt.Sprintf("select g.genre, count(*), sum(m.year), avg(m.year), min(m.title), max(m.year) from MOVIES m, GENRE g where m.id = g.mid group by g.genre having count(*) %s %d order by count(*) desc, g.genre limit %d",
				ops[rng.Intn(len(ops))], 1+rng.Intn(5), 1+rng.Intn(6))
		},
		func() string {
			// Ordinal ORDER BY over a join.
			return fmt.Sprintf("select m.title, m.year from MOVIES m, CAST c where m.id = c.mid and c.aid %s %d order by 2 desc, 1 limit %d",
				ops[rng.Intn(len(ops))], 1+rng.Intn(45), 1+rng.Intn(20))
		},
		func() string {
			// DISTINCT + expression key through the select list + top-K.
			return fmt.Sprintf("select distinct m.year + %d from MOVIES m order by m.year + %[1]d desc limit %d",
				rng.Intn(3), 1+rng.Intn(10))
		},
		func() string {
			// Aggregate ORDER BY key outside the select list.
			return fmt.Sprintf("select m.year from MOVIES m where m.year %s %d group by m.year order by count(*) desc, m.year limit %d",
				ops[rng.Intn(len(ops))], 1950+rng.Intn(60), 1+rng.Intn(8))
		},
		func() string {
			// Grouped with count(distinct) and a grouping key in HAVING.
			return fmt.Sprintf("select c.aid, count(distinct c.role) from CAST c group by c.aid having c.aid %s %d order by 1",
				ops[rng.Intn(len(ops))], 1+rng.Intn(45))
		},
	}
	for trial := 0; trial < 120; trial++ {
		sql := templates[trial%len(templates)]()
		comparePlannedNaive(t, ex, sql)
	}
}

// TestPlannerDifferentialNulls builds a schema with nullable join and filter
// columns, loads NULL-riddled rows, and proves the planner's hash, index,
// and primary-key probes agree with naive three-valued evaluation.
func TestPlannerDifferentialNulls(t *testing.T) {
	schema := catalog.NewSchema("nulls")
	if err := schema.AddRelation(&catalog.Relation{
		Name: "L",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "k", Type: catalog.Int},
			{Name: "tag", Type: catalog.Text},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddRelation(&catalog.Relation{
		Name: "R",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "k", Type: catalog.Int},
			{Name: "val", Type: catalog.Text},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	db, err := storage.NewDatabase(schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	maybeInt := func() value.Value {
		if rng.Intn(3) == 0 {
			return value.NewNull()
		}
		return value.NewInt(int64(rng.Intn(6)))
	}
	maybeText := func(p string) value.Value {
		if rng.Intn(4) == 0 {
			return value.NewNull()
		}
		return value.NewText(fmt.Sprintf("%s%d", p, rng.Intn(4)))
	}
	for i := 0; i < 40; i++ {
		if err := db.Insert("L", storage.Tuple{value.NewInt(int64(i)), maybeInt(), maybeText("t")}); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("R", storage.Tuple{value.NewInt(int64(i)), maybeInt(), maybeText("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Table("R").CreateIndex("ix_r_k", "k"); err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	for _, sql := range []string{
		"select l.id, r.id from L l, R r where l.k = r.k",
		"select l.id, r.val from L l, R r where l.k = r.k and r.val = 'v1'",
		"select l.id from L l, R r where l.id = r.id and l.tag = r.val",
		"select l.id, l.k from L l where l.k = 3",
		"select l.id from L l where l.k is null",
		"select l.id, r.id from L l, R r where l.k = r.k and l.tag is not null",
		"select count(*) from L l, R r where l.k = r.k",
		// Grouping on a NULL-riddled key: NULLs form one group; aggregates
		// skip NULL inputs; ORDER BY places NULL keys per direction.
		"select l.k, count(*), count(l.tag), sum(l.id), avg(l.k), min(l.tag), max(l.id) from L l group by l.k order by l.k",
		"select l.k, count(*) from L l group by l.k order by l.k desc",
		"select l.k, count(distinct r.val) from L l, R r where l.id = r.id group by l.k order by count(distinct r.val) desc, l.k limit 3",
		"select r.k, sum(l.k) from L l, R r where l.id = r.id group by r.k having sum(l.k) > 2 order by 2 desc",
		"select distinct l.k from L l order by l.k limit 4",
		"select l.tag, avg(l.id) from L l group by l.tag order by avg(l.id) desc limit 2",
		// Sorting on a NULL-bearing expression key outside the select list.
		"select l.id from L l order by l.k desc, l.id limit 6",
		"select l.id from L l order by l.k, l.id",
		// Aggregates over an empty group set.
		"select count(l.k), sum(l.k), min(l.k), max(l.k), avg(l.k) from L l where l.id < 0",
	} {
		comparePlannedNaive(t, ex, sql)
	}
}

// TestPlannerDifferentialFuzzSeeds replays the parser fuzz seed corpus
// (every statement the lexer/parser round-trip suite feeds) through both
// pipelines; each seed must either fail identically or agree row-for-row.
func TestPlannerDifferentialFuzzSeeds(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	seeds := []string{
		sqlparser.PaperQ6Verbatim,
		"select * from MOVIES",
		"select m.title from MOVIES m where m.year between 1970 and 1990",
		"select m.title from MOVIES m where m.title like 'The %'",
		"select m.title from MOVIES m where m.year in (1977, 1999, 2005)",
		"select a.name from ACTOR a where not a.id > 3",
		"select m.title, case when m.year > 2000 then 'new' else 'old' end from MOVIES m",
		"select m.title from MOVIES m where m.year > all (select m2.year from MOVIES m2 where m2.id != m.id)",
		"select m.title from MOVIES m left join CAST c on m.id = c.mid where c.aid is null",
		"select m.title from MOVIES m, CAST c where m.id = c.mid and c.role = m.title",
		"select 1 = 1, m.title from MOVIES m limit 3",
		"select m.* from MOVIES m order by 'a' desc",
		"select t.missing from MOVIES t",
		"select m.title from NOPE m",
		"select m.title, m.year from MOVIES m order by 2 desc, 1 limit 5",
		"select m.title from MOVIES m order by 7",
		"select g.genre from GENRE g group by g.genre order by count(*) desc",
		"select m.title, count(*) from MOVIES m group by m.year",
		"select distinct m.title from MOVIES m order by m.year desc limit 5",
		"select count(*) from MOVIES m where m.year > 3000",
		"select m.year, count(*) from MOVIES m group by m.year having count(*) >= 2 order by count(*) desc, m.year limit 3",
		"select case when m.year > 2000 then 'new' else 'old' end, count(*) from MOVIES m group by case when m.year > 2000 then 'new' else 'old' end order by 2 desc",
	}
	for _, label := range sqlparser.PaperQueryOrder {
		if label != "Q0" {
			seeds = append(seeds, sqlparser.PaperQueries[label])
		}
	}
	for _, sql := range seeds {
		if _, err := sqlparser.ParseSelect(sql); err != nil {
			continue // non-SELECT or unparsable seeds exercise nothing here
		}
		comparePlannedNaive(t, ex, sql)
	}
}

// TestPlannerDifferentialUnknownColumn pins a review finding: a conjunct
// referencing a nonexistent attribute of a matched relation must error like
// the naive pipeline does, even when another filter empties the join (the
// planner must not swallow the typo by deferring it past a zero-row
// pipeline).
func TestPlannerDifferentialUnknownColumn(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	for _, sql := range []string{
		"select m.title from MOVIES m, CAST c where m.nosuch = 1 and c.role = 'definitely-not-a-role'",
		"select m.title from MOVIES m where m.nosuch = 1",
		"select m.title from MOVIES m where nosuchcolumn = 1",
	} {
		comparePlannedNaive(t, ex, sql)
		if _, err := ex.Query(sql); err == nil {
			t.Errorf("%s: unknown column silently accepted", sql)
		}
	}
}

// TestPlannerJoinReorderRestoresRowOrder pins the provenance-sort guarantee
// directly: a query the planner reorders (selective filter on the second
// FROM entry) must emit rows in the naive FROM-major nested-loop order.
func TestPlannerJoinReorderRestoresRowOrder(t *testing.T) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 5, Movies: 50, Actors: 20, Directors: 4, CastPerMovie: 2, GenresPerMovie: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	sql := "select m.id, g.genre from MOVIES m, GENRE g where m.id = g.mid and g.genre = 'drama'"
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ex.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fallback {
		t.Fatalf("expected a planned query, got fallback: %s", plan.Reason)
	}
	if !plan.Reordered {
		t.Fatalf("expected the planner to reorder (GENRE filter first), fingerprint %s", plan.Fingerprint())
	}
	comparePlannedNaive(t, ex, sql)
}
