package engine

import (
	"math"
	"strings"
	"sync/atomic"
	"unicode/utf8"

	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file consumes the storage layer's zone maps: per-morsel min/max/null
// summaries (storage.ZoneRows positions each) that the scan probes before
// touching column payloads. A probe compiles one vectorized filter conjunct to
// a per-zone verdict — all-false lets the scan skip the morsel outright,
// all-true lets counting passes take whole morsels without testing a row. The
// verdicts must describe the predicate's result over EVERY row of the zone,
// NULLs included (NULL rejects a comparison, satisfies IS NULL), and they are
// deliberately conservative: anything the bounds cannot decide is "mixed" and
// the rows are tested one by one, so zone-pruned execution is byte-identical
// to the plain scan. Mirroring the vec-aggregate discipline, the engine
// removes the planner's zone-skip shape step in place whenever it cannot
// build a probe, so EXPLAIN always narrates what actually ran.

// zoneVerdict is a probe's answer for one zone.
type zoneVerdict int8

const (
	zoneMixed    zoneVerdict = iota // bounds cannot decide; test each row
	zoneAllFalse                    // no row of the zone passes the predicate
	zoneAllTrue                     // every row of the zone passes
)

// rangeVerdict is predicate truth over a zone's non-NULL values only; the
// NULL rows are folded in afterwards by wrapZoneProbe.
type rangeVerdict int8

const (
	rMixed rangeVerdict = iota
	rNone               // no bounded value satisfies
	rAll                // every bounded value satisfies
)

// zoneProbe answers one filter conjunct for zone z.
type zoneProbe func(z int) zoneVerdict

// zoneCounter tallies probed and skipped zones for one query. It sits behind
// a pointer on plannedQuery because the grouped pipeline copies the struct.
type zoneCounter struct {
	probed  atomic.Int64
	skipped atomic.Int64
}

// zoneProbeSet is the compiled zone side of a scan: one probe per vectorized
// filter conjunct that lowered to a bounds test.
type zoneProbeSet struct {
	probes []zoneProbe
	// full reports that every vectorized predicate has a probe, so an
	// all-true combined verdict proves the whole vectorized prefix passes.
	full bool
	zc   *zoneCounter
}

// Cumulative process-wide counters, exposed for benchmarks to assert that
// zone skipping actually engaged.
var zoneStatProbed, zoneStatSkipped atomic.Int64

// ZoneSkipStats returns the cumulative number of zones probed and skipped by
// zone-pruned scans since the last reset.
func ZoneSkipStats() (probed, skipped int64) {
	return zoneStatProbed.Load(), zoneStatSkipped.Load()
}

// ResetZoneSkipStats zeroes the cumulative zone-skip counters.
func ResetZoneSkipStats() {
	zoneStatProbed.Store(0)
	zoneStatSkipped.Store(0)
}

// verdict combines the probes for zone z: any all-false skips the zone;
// all-true requires every probe to agree and the set to cover every
// vectorized predicate.
func (zp *zoneProbeSet) verdict(z int) zoneVerdict {
	v := zoneMixed
	if zp.full {
		v = zoneAllTrue
	}
	for _, p := range zp.probes {
		switch p(z) {
		case zoneAllFalse:
			return zoneAllFalse
		case zoneMixed:
			v = zoneMixed
		}
	}
	return v
}

// note records one probed zone's outcome. Callers invoke it only for zones
// whose first row falls inside their range, so parallel workers never
// double-count a zone split across chunk boundaries.
func (zp *zoneProbeSet) note(v zoneVerdict) {
	zp.zc.probed.Add(1)
	zoneStatProbed.Add(1)
	if v == zoneAllFalse {
		zp.zc.skipped.Add(1)
		zoneStatSkipped.Add(1)
	}
}

// zoneWalk invokes fn once per storage-zone-aligned segment covering [lo, hi):
// fn(z, segLo, segHi, owned), where owned reports that segLo is zone z's first
// row (the caller owns that zone's accounting). fn returns false to stop.
func zoneWalk(lo, hi int, fn func(z, segLo, segHi int, owned bool) bool) {
	for s := lo; s < hi; {
		z := s >> storage.ZoneShift
		e := (z + 1) << storage.ZoneShift
		if e > hi {
			e = hi
		}
		if !fn(z, s, e, s == z<<storage.ZoneShift) {
			return
		}
		s = e
	}
}

// zoneLenAt returns the number of rows zone z covers in a table of n rows.
func zoneLenAt(z, n int) int {
	lo := z << storage.ZoneShift
	hi := lo + storage.ZoneRows
	if hi > n {
		hi = n
	}
	return hi - lo
}

// ---------------------------------------------------------------------------
// Shape bookkeeping (mirrors the parallel-scan helpers)
// ---------------------------------------------------------------------------

func hasZoneSkip(plan *planner.Plan) bool {
	for _, sh := range plan.Shape {
		if sh.Kind == planner.ShapeZoneSkip {
			return true
		}
	}
	return false
}

// removeZoneSkip drops the zone-skip step — the engine could not build (or
// was told not to use) the probes, and the narrated plan must say so.
func removeZoneSkip(plan *planner.Plan) {
	shape := plan.Shape[:0]
	for _, sh := range plan.Shape {
		if sh.Kind != planner.ShapeZoneSkip {
			shape = append(shape, sh)
		}
	}
	plan.Shape = shape
}

// setZoneSkipActual records how many morsels the scan skipped.
func setZoneSkipActual(plan *planner.Plan, skipped int) {
	for _, sh := range plan.Shape {
		if sh.Kind == planner.ShapeZoneSkip {
			sh.ActualRows = skipped
		}
	}
}

// finishZoneSkip copies the skip counter onto the shape step after a scan.
func (pq *plannedQuery) finishZoneSkip() {
	if pq.zp != nil {
		setZoneSkipActual(pq.plan, int(pq.zp.zc.skipped.Load()))
	}
}

// ---------------------------------------------------------------------------
// Probe compilation
// ---------------------------------------------------------------------------

// compileZoneSkip builds the probe set for the plan's zone-skip shape step.
// Probes compile per conjunct of the base step's vectorized filter prefix —
// only predicates the scan actually applies may justify skipping rows. When
// no conjunct lowers to a probe (or zone maps are disabled, or the zones are
// out of sync with the table), the shape step is removed in place.
func (pq *plannedQuery) compileZoneSkip() {
	plan := pq.plan
	if pq.ex.st.noZoneMaps.Load() {
		removeZoneSkip(plan)
		return
	}
	st := plan.Steps[0]
	n := st.Input.Tbl.Len()
	if st.Access != planner.ScanFull || n == 0 {
		removeZoneSkip(plan)
		return
	}
	for pos := range st.Input.Rel.Attributes {
		if !st.Input.Tbl.Col(pos).ZonesSynced(n) {
			removeZoneSkip(plan)
			return
		}
	}
	zp := &zoneProbeSet{zc: &zoneCounter{}}
	nvec := len(pq.stepVec[0])
	for i := 0; i < nvec; i++ {
		if p, ok := pq.compileZoneProbe(st, st.SelfFilters[i], n); ok {
			zp.probes = append(zp.probes, p)
		}
	}
	if len(zp.probes) == 0 {
		removeZoneSkip(plan)
		return
	}
	zp.full = len(zp.probes) == nvec
	pq.zp = zp
}

// compileZoneProbe lowers one vectorized filter conjunct to a zone probe.
// The cases mirror compileVecFilter exactly — a probe's verdict must agree
// with the vecPred it summarizes on every row.
func (pq *plannedQuery) compileZoneProbe(st *planner.Step, e sqlparser.Expr, n int) (zoneProbe, bool) {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		col, lit, op, ok := pq.splitVecCompare(st, x)
		if !ok {
			return nil, false
		}
		if op == sqlparser.OpLike {
			return zoneLikeProbe(col, lit, n)
		}
		return zoneCompareProbe(col, op, lit, n)

	case *sqlparser.IsNullExpr:
		col, ok := pq.stepCol(st, x.Inner)
		if !ok {
			return nil, false
		}
		return zoneNullProbe(col, !x.Negate, n), true

	case *sqlparser.BetweenExpr:
		return pq.zoneBetweenProbe(st, x, n)

	case *sqlparser.InExpr:
		return pq.zoneInProbe(st, x, n)

	default:
		return nil, false
	}
}

func zoneConst(v zoneVerdict) zoneProbe { return func(int) zoneVerdict { return v } }

// wrapZoneProbe folds NULL rows into a value-level verdict: an all-NULL zone
// rejects any value predicate wholesale, and all-true additionally requires
// the zone to be NULL-free (NULL rows evaluate false).
func wrapZoneProbe(col storage.Col, n int, rv func(z int) rangeVerdict) zoneProbe {
	return func(z int) zoneVerdict {
		nulls := col.ZoneNulls(z)
		if nulls == zoneLenAt(z, n) {
			return zoneAllFalse
		}
		switch rv(z) {
		case rNone:
			return zoneAllFalse
		case rAll:
			if nulls == 0 {
				return zoneAllTrue
			}
		}
		return zoneMixed
	}
}

func rangeAll(int) rangeVerdict { return rAll }

// rangeNot flips a value-level verdict (NOT BETWEEN, NOT IN).
func rangeNot(rv func(z int) rangeVerdict) func(z int) rangeVerdict {
	return func(z int) rangeVerdict {
		switch rv(z) {
		case rAll:
			return rNone
		case rNone:
			return rAll
		}
		return rMixed
	}
}

// cmpRangeVerdict decides a comparison against a literal from the three-way
// compares of the zone's min and max against it. Ordering predicates select a
// half-line, so both endpoints inside means the whole range is, and both
// outside means none of it is; equality selects a point.
func cmpRangeVerdict(op sqlparser.BinaryOp, cmpLo, cmpHi int) rangeVerdict {
	switch op {
	case sqlparser.OpEq:
		if cmpLo > 0 || cmpHi < 0 {
			return rNone
		}
		if cmpLo == 0 && cmpHi == 0 {
			return rAll
		}
	case sqlparser.OpNe:
		if cmpLo > 0 || cmpHi < 0 {
			return rAll
		}
		if cmpLo == 0 && cmpHi == 0 {
			return rNone
		}
	default:
		test, _, _ := cmpTest(op)
		tLo, tHi := test(cmpLo), test(cmpHi)
		switch {
		case tLo && tHi:
			return rAll
		case !tLo && !tHi:
			return rNone
		}
	}
	return rMixed
}

// zoneCmpRange builds the value-level verdict of col-op-lit over zone bounds.
// Kinds must already be comparable (caller mirrors vecCompare's checks).
func zoneCmpRange(col storage.Col, op sqlparser.BinaryOp, lit value.Value) (func(z int) rangeVerdict, bool) {
	test, _, _ := cmpTest(op)
	switch col.Kind() {
	case value.Int:
		lf := lit.Float()
		if math.IsNaN(lf) {
			// cmpFloat(x, NaN) is 0 for every x: the predicate is constant.
			return constRange(test(0)), true
		}
		return func(z int) rangeVerdict {
			lo, hi, ok := col.ZoneIntBounds(z)
			if !ok {
				return rMixed
			}
			return cmpRangeVerdict(op, cmpFloat(float64(lo), lf), cmpFloat(float64(hi), lf))
		}, true
	case value.Float:
		lf := lit.Float()
		if math.IsNaN(lf) {
			return constRange(test(0)), true
		}
		return func(z int) rangeVerdict {
			if col.ZoneHasNaN(z) {
				// NaN compares as equal under cmpFloat and sits outside the
				// bounds; the zone can never be decided wholesale.
				return rMixed
			}
			lo, hi, ok := col.ZoneFloatBounds(z)
			if !ok {
				return rMixed
			}
			return cmpRangeVerdict(op, cmpFloat(lo, lf), cmpFloat(hi, lf))
		}, true
	case value.Date:
		ld := lit.DateDays()
		return func(z int) rangeVerdict {
			lo, hi, ok := col.ZoneIntBounds(z)
			if !ok {
				return rMixed
			}
			return cmpRangeVerdict(op, cmpInt(lo, ld), cmpInt(hi, ld))
		}, true
	case value.Bool:
		var lb int64
		if lit.Bool() {
			lb = 1
		}
		return func(z int) rangeVerdict {
			lo, hi, ok := col.ZoneIntBounds(z)
			if !ok {
				return rMixed
			}
			return cmpRangeVerdict(op, cmpInt(lo, lb), cmpInt(hi, lb))
		}, true
	case value.Text:
		ls := lit.Text()
		return func(z int) rangeVerdict {
			lo, hi, ok := col.ZoneTextBounds(z)
			if !ok {
				return rMixed
			}
			return cmpRangeVerdict(op, cmpString(lo, ls), cmpString(hi, ls))
		}, true
	default:
		return nil, false
	}
}

func constRange(pass bool) func(int) rangeVerdict {
	if pass {
		return rangeAll
	}
	return func(int) rangeVerdict { return rNone }
}

// zoneCompareProbe mirrors vecCompare: NULL literals and mismatched-kind
// equalities are constant verdicts, everything else decides from bounds.
func zoneCompareProbe(col storage.Col, op sqlparser.BinaryOp, lit value.Value, n int) (zoneProbe, bool) {
	_, equality, _ := cmpTest(op)
	if lit.IsNull() {
		return zoneConst(zoneAllFalse), true
	}
	if !comparableKinds(col.Kind(), lit.Kind()) {
		if !equality {
			return nil, false // vecCompare declined too; keep mirroring it
		}
		if op == sqlparser.OpEq {
			return zoneConst(zoneAllFalse), true
		}
		return wrapZoneProbe(col, n, rangeAll), true // <> across kinds: true when non-NULL
	}
	if col.Kind() == value.Text {
		// Mirror vecCompare's dictionary shortcut: a string absent from the
		// dictionary occurs in no row.
		if _, present := col.DictCode(lit.Text()); !present {
			switch op {
			case sqlparser.OpEq:
				return zoneConst(zoneAllFalse), true
			case sqlparser.OpNe:
				return wrapZoneProbe(col, n, rangeAll), true
			}
		}
	}
	rv, ok := zoneCmpRange(col, op, lit)
	if !ok {
		return nil, false
	}
	return wrapZoneProbe(col, n, rv), true
}

// zoneNullProbe answers IS [NOT] NULL straight from the zone's NULL count.
func zoneNullProbe(col storage.Col, want bool, n int) zoneProbe {
	return func(z int) zoneVerdict {
		nulls := col.ZoneNulls(z)
		allNull := nulls == zoneLenAt(z, n)
		if want {
			if allNull {
				return zoneAllTrue
			}
			if nulls == 0 {
				return zoneAllFalse
			}
		} else {
			if nulls == 0 {
				return zoneAllTrue
			}
			if allNull {
				return zoneAllFalse
			}
		}
		return zoneMixed
	}
}

// zoneBetweenProbe composes the two bound comparisons, flipping the verdict
// for NOT BETWEEN (NULL subjects reject either way, matching vecBetween).
func (pq *plannedQuery) zoneBetweenProbe(st *planner.Step, x *sqlparser.BetweenExpr, n int) (zoneProbe, bool) {
	col, ok := pq.stepCol(st, x.Subject)
	if !ok {
		return nil, false
	}
	lo, ok := litOf(x.Lo)
	if !ok {
		return nil, false
	}
	hi, ok := litOf(x.Hi)
	if !ok {
		return nil, false
	}
	if lo.IsNull() || hi.IsNull() {
		return zoneConst(zoneAllFalse), true
	}
	if !comparableKinds(col.Kind(), lo.Kind()) || !comparableKinds(col.Kind(), hi.Kind()) {
		return nil, false
	}
	ge, ok := zoneCmpRange(col, sqlparser.OpGe, lo)
	if !ok {
		return nil, false
	}
	le, ok := zoneCmpRange(col, sqlparser.OpLe, hi)
	if !ok {
		return nil, false
	}
	rv := func(z int) rangeVerdict {
		a, b := ge(z), le(z)
		switch {
		case a == rNone || b == rNone:
			return rNone
		case a == rAll && b == rAll:
			return rAll
		}
		return rMixed
	}
	if x.Negate {
		rv = rangeNot(rv)
	}
	return wrapZoneProbe(col, n, rv), true
}

// zoneInProbe mirrors vecIn: membership over the zone range is the union of
// per-literal equality verdicts; a NULL in a NOT IN list makes the predicate
// constant false.
func (pq *plannedQuery) zoneInProbe(st *planner.Step, x *sqlparser.InExpr, n int) (zoneProbe, bool) {
	if x.Subquery != nil {
		return nil, false
	}
	col, ok := pq.stepCol(st, x.Subject)
	if !ok {
		return nil, false
	}
	sawNull := false
	lits := make([]value.Value, 0, len(x.List))
	for _, it := range x.List {
		lit, ok := litOf(it)
		if !ok {
			return nil, false
		}
		if lit.IsNull() {
			sawNull = true
			continue
		}
		lits = append(lits, lit)
	}
	if len(x.List) == 0 {
		// IN () is false and NOT IN () true for every row, NULL included.
		if x.Negate {
			return zoneConst(zoneAllTrue), true
		}
		return zoneConst(zoneAllFalse), true
	}
	if x.Negate && sawNull {
		// x NOT IN (..., NULL, ...): members are false, non-members unknown.
		return zoneConst(zoneAllFalse), true
	}
	member, ok := zoneMembershipRange(col, lits)
	if !ok {
		return nil, false
	}
	rv := member
	if x.Negate {
		rv = rangeNot(member)
	}
	return wrapZoneProbe(col, n, rv), true
}

// zoneMembershipRange folds per-literal equality verdicts: one literal
// covering the whole range makes every value a member; all literals missing
// the range make none of them members. Literals of foreign kinds (and float
// NaN, which never matches a hash probe) contribute nothing, mirroring
// vecMembership.
func zoneMembershipRange(col storage.Col, lits []value.Value) (func(z int) rangeVerdict, bool) {
	var eqs []func(z int) rangeVerdict
	match := func(l value.Value) bool {
		switch col.Kind() {
		case value.Int, value.Float:
			return l.IsNumeric() && !math.IsNaN(l.Float())
		default:
			return l.Kind() == col.Kind()
		}
	}
	for _, l := range lits {
		if !match(l) {
			continue
		}
		if col.Kind() == value.Text {
			if _, present := col.DictCode(l.Text()); !present {
				continue // never occurs in the column
			}
		}
		eq, ok := zoneCmpRange(col, sqlparser.OpEq, l)
		if !ok {
			return nil, false
		}
		eqs = append(eqs, eq)
	}
	hasNaN := func(z int) bool { return col.Kind() == value.Float && col.ZoneHasNaN(z) }
	return func(z int) rangeVerdict {
		v := rNone
		for _, eq := range eqs {
			switch eq(z) {
			case rAll:
				// Every bounded value equals this literal; NaN values (outside
				// the bounds) never match a membership set, so they demote the
				// verdict.
				if hasNaN(z) {
					return rMixed
				}
				return rAll
			case rMixed:
				v = rMixed
			}
		}
		return v // rNone holds even with NaN present: NaN is never a member
	}, true
}

// zoneLikeProbe prunes LIKE through the pattern's literal prefix: any match
// sorts inside [prefix, successor), so zone string bounds outside that range
// are all-false; a pure prefix pattern inside it (NULL-free) is all-true.
func zoneLikeProbe(col storage.Col, lit value.Value, n int) (zoneProbe, bool) {
	if col.Kind() != value.Text || lit.Kind() != value.Text {
		return nil, false
	}
	prefix, prefixOnly := planner.LikePrefix(lit.Text())
	if prefix == "" {
		if prefixOnly {
			// The pattern is nothing but '%': every non-NULL string matches.
			return wrapZoneProbe(col, n, rangeAll), true
		}
		return nil, false
	}
	if !likePrefixSafe(prefix) {
		return nil, false
	}
	succ, succOK := planner.PrefixSuccessor(prefix)
	return wrapZoneProbe(col, n, func(z int) rangeVerdict {
		lo, hi, ok := col.ZoneTextBounds(z)
		if !ok {
			return rMixed
		}
		if hi < prefix || (succOK && lo >= succ) {
			return rNone
		}
		if prefixOnly && lo >= prefix && (!succOK || hi < succ) {
			return rAll
		}
		return rMixed
	}), true
}

// likePrefixSafe reports whether byte-wise prefix pruning agrees with
// likeMatch's rune-wise comparison. Invalid UTF-8 and U+FFFD both decode to
// the replacement rune, so distinct byte sequences could compare equal
// rune-by-rune; such prefixes stay on the per-row path.
func likePrefixSafe(prefix string) bool {
	return utf8.ValidString(prefix) && !strings.ContainsRune(prefix, utf8.RuneError)
}
