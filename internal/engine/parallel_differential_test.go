package engine

import (
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sqlparser"
)

// parallelCorpus are the query shapes the fan-out paths touch: hash-probe
// joins, base scans with pushed-down filters, multi-join chains, grouping
// over joined envs, subqueries, and ordering.
var parallelCorpus = []string{
	`select m.title from MOVIES m where m.year > 1980`,
	`select m.title, a.name from MOVIES m, CAST c, ACTOR a
	 where m.id = c.mid and c.aid = a.id and m.year > 1975`,
	`select a.name, count(*) from MOVIES m, CAST c, ACTOR a
	 where m.id = c.mid and c.aid = a.id
	 group by a.name having count(*) > 2`,
	`select m.title from MOVIES m, GENRE g
	 where m.id = g.mid and g.genre = 'drama' order by m.title`,
	`select distinct d.name from MOVIES m, DIRECTED r, DIRECTOR d
	 where m.id = r.mid and r.did = d.id and m.year < 2000`,
	`select m.title from MOVIES m
	 where m.id in (select c.mid from CAST c where c.aid < 50)`,
	`select m.title from MOVIES m left join GENRE g on m.id = g.mid
	 where g.genre is null or g.genre = 'comedy'`,
}

func cloneResult(r *Result) *Result {
	out := &Result{Columns: append([]string{}, r.Columns...)}
	for _, row := range r.Rows {
		out.Rows = append(out.Rows, row.Clone())
	}
	return out
}

func sameResult(t *testing.T, q string, serial, parallel *Result) {
	t.Helper()
	if len(serial.Columns) != len(parallel.Columns) {
		t.Fatalf("%s: column count differs: %v vs %v", q, serial.Columns, parallel.Columns)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("%s: row count differs: %d vs %d", q, len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			a, b := serial.Rows[i][j], parallel.Rows[i][j]
			if a.Key() != b.Key() {
				t.Fatalf("%s: row %d col %d differs: %s vs %s (parallel execution must be deterministic)",
					q, i, j, a.Key(), b.Key())
			}
		}
	}
}

// TestParallelVsSerialDifferential proves the parallel hot path is
// observationally identical to serial execution — same rows, same order —
// on a database big enough to trip the fan-out thresholds.
func TestParallelVsSerialDifferential(t *testing.T) {
	cfg := dataset.DefaultGenConfig()
	cfg.Movies = 600
	db, err := dataset.GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Force the parallel paths: the generated tables are in the thousands,
	// so a threshold of 64 guarantees both the env fan-out and the tuple
	// fan-out run even on the smaller steps.
	oldThreshold := parallelThreshold
	parallelThreshold = 64
	defer func() { parallelThreshold = oldThreshold }()

	eng := New(db)
	for _, q := range parallelCorpus {
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		eng.SetParallelism(1)
		serial, err := eng.Select(sel)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		serial = cloneResult(serial)
		for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
			eng.SetParallelism(workers)
			par, err := eng.Select(sel)
			if err != nil {
				t.Fatalf("parallel(%d) %s: %v", workers, q, err)
			}
			sameResult(t, q, serial, par)
		}
	}
}

// TestParallelPaperCorpus runs every movie paper query through serial and
// parallel engines on the curated database with the threshold forced low,
// so even the paper's own workload exercises the fan-out code.
func TestParallelPaperCorpus(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	oldThreshold := parallelThreshold
	parallelThreshold = 1
	defer func() { parallelThreshold = oldThreshold }()

	eng := New(db)
	for label, q := range sqlparser.PaperQueries {
		if label == "Q0" { // EMP/DEPT schema
			continue
		}
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %s: %v", label, err)
		}
		eng.SetParallelism(1)
		serial, err := eng.Select(sel)
		if err != nil {
			t.Fatalf("serial %s: %v", label, err)
		}
		serial = cloneResult(serial)
		eng.SetParallelism(0)
		par, err := eng.Select(sel)
		if err != nil {
			t.Fatalf("parallel %s: %v", label, err)
		}
		sameResult(t, label, serial, par)
	}
}

// TestParallelErrorPropagation checks a worker error surfaces instead of
// being swallowed by the fan-out.
func TestParallelErrorPropagation(t *testing.T) {
	cfg := dataset.DefaultGenConfig()
	cfg.Movies = 500
	db, err := dataset.GenerateMovieDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oldThreshold := parallelThreshold
	parallelThreshold = 16
	defer func() { parallelThreshold = oldThreshold }()

	eng := New(db)
	// Division by zero only fails at evaluation time, inside workers.
	_, err = eng.Query(`select m.title from MOVIES m where m.year / (m.year - m.year) > 1`)
	if err == nil {
		t.Fatal("expected evaluation error from parallel scan")
	}
}
