// Package engine executes parsed SQL against the in-memory storage layer.
// It is the DBMS substrate of the reproduction: the translation pipeline
// explains queries and narrates their answers, and this engine is what
// produces those answers. It supports select-project-join with arbitrary
// tuple variables, correlated subqueries (IN / EXISTS / scalar / ALL / ANY),
// grouping with aggregates and HAVING (including scalar subqueries), ORDER
// BY, DISTINCT, LIMIT, LEFT/RIGHT joins, views, and DML.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// binding associates one tuple variable with its relation and current tuple.
type binding struct {
	alias string
	rel   *catalog.Relation
	tuple storage.Tuple
}

// env is a chain of binding scopes; inner subqueries see outer bindings for
// correlation.
type env struct {
	parent   *env
	bindings []binding
}

// lookup resolves a column reference to its current value.
func (e *env) lookup(ref *sqlparser.ColumnRef) (value.Value, error) {
	for scope := e; scope != nil; scope = scope.parent {
		if ref.Table != "" {
			for i := range scope.bindings {
				b := &scope.bindings[i]
				if strings.EqualFold(b.alias, ref.Table) || strings.EqualFold(b.rel.Name, ref.Table) {
					pos := b.rel.AttrIndex(ref.Column)
					if pos < 0 {
						return value.Value{}, fmt.Errorf("engine: relation %s has no attribute %q", b.rel.Name, ref.Column)
					}
					return b.tuple[pos], nil
				}
			}
			continue
		}
		// Unqualified: must be unambiguous within the scope.
		found := -1
		var out value.Value
		for i := range scope.bindings {
			b := &scope.bindings[i]
			pos := b.rel.AttrIndex(ref.Column)
			if pos >= 0 {
				if found >= 0 {
					return value.Value{}, fmt.Errorf("engine: ambiguous column %q", ref.Column)
				}
				found = i
				out = b.tuple[pos]
			}
		}
		if found >= 0 {
			return out, nil
		}
	}
	return value.Value{}, fmt.Errorf("engine: unknown column %s", ref.SQL())
}

// groupCtx carries the rows of the current group during aggregate
// evaluation. When nil, aggregate expressions are illegal.
type groupCtx struct {
	rows []*env
}

// evalExpr evaluates an expression under env; gc is non-nil only inside
// grouped evaluation (HAVING and grouped SELECT items).
func (ex *Engine) evalExpr(e sqlparser.Expr, en *env, gc *groupCtx) (value.Value, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Value, nil

	case *sqlparser.ColumnRef:
		if x.Column == "*" {
			return value.Value{}, fmt.Errorf("engine: %s is not a scalar expression", x.SQL())
		}
		if gc != nil {
			// Inside a grouped context a bare column is evaluated on the
			// group's representative row (valid when it is functionally
			// dependent on the GROUP BY columns, which the planner checks).
			if len(gc.rows) == 0 {
				return value.NewNull(), nil
			}
			return gc.rows[0].lookup(x)
		}
		return en.lookup(x)

	case *sqlparser.BinaryExpr:
		return ex.evalBinary(x, en, gc)

	case *sqlparser.NotExpr:
		v, err := ex.evalExpr(x.Inner, en, gc)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return v, nil
		}
		if v.Kind() != value.Bool {
			return value.Value{}, fmt.Errorf("engine: NOT applied to %s", v.Kind())
		}
		return value.NewBool(!v.Bool()), nil

	case *sqlparser.IsNullExpr:
		v, err := ex.evalExpr(x.Inner, en, gc)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(v.IsNull() != x.Negate), nil

	case *sqlparser.BetweenExpr:
		subj, err := ex.evalExpr(x.Subject, en, gc)
		if err != nil {
			return value.Value{}, err
		}
		lo, err := ex.evalExpr(x.Lo, en, gc)
		if err != nil {
			return value.Value{}, err
		}
		hi, err := ex.evalExpr(x.Hi, en, gc)
		if err != nil {
			return value.Value{}, err
		}
		if subj.IsNull() || lo.IsNull() || hi.IsNull() {
			return value.NewNull(), nil
		}
		c1, err := subj.Compare(lo)
		if err != nil {
			return value.Value{}, err
		}
		c2, err := subj.Compare(hi)
		if err != nil {
			return value.Value{}, err
		}
		in := c1 >= 0 && c2 <= 0
		return value.NewBool(in != x.Negate), nil

	case *sqlparser.AggregateExpr:
		if gc == nil {
			return value.Value{}, fmt.Errorf("engine: aggregate %s outside grouped context", x.SQL())
		}
		return ex.evalAggregate(x, gc)

	case *sqlparser.InExpr:
		return ex.evalIn(x, en, gc)

	case *sqlparser.ExistsExpr:
		rows, err := ex.execSelectRows(x.Subquery, en, 1)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool((len(rows) > 0) != x.Negate), nil

	case *sqlparser.QuantifiedExpr:
		return ex.evalQuantified(x, en, gc)

	case *sqlparser.SubqueryExpr:
		return ex.evalScalarSubquery(x.Subquery, en)

	case *sqlparser.CaseExpr:
		for _, w := range x.Whens {
			cond, err := ex.evalExpr(w.Cond, en, gc)
			if err != nil {
				return value.Value{}, err
			}
			if !cond.IsNull() && cond.Kind() == value.Bool && cond.Bool() {
				return ex.evalExpr(w.Then, en, gc)
			}
		}
		if x.Else != nil {
			return ex.evalExpr(x.Else, en, gc)
		}
		return value.NewNull(), nil

	case *sqlparser.Star:
		return value.Value{}, fmt.Errorf("engine: * is not a scalar expression")

	default:
		return value.Value{}, fmt.Errorf("engine: cannot evaluate %T", e)
	}
}

func (ex *Engine) evalBinary(x *sqlparser.BinaryExpr, en *env, gc *groupCtx) (value.Value, error) {
	switch x.Op {
	case sqlparser.OpAnd, sqlparser.OpOr:
		l, err := ex.evalExpr(x.Left, en, gc)
		if err != nil {
			return value.Value{}, err
		}
		// Three-valued short circuit.
		if !l.IsNull() && l.Kind() == value.Bool {
			if x.Op == sqlparser.OpAnd && !l.Bool() {
				return value.NewBool(false), nil
			}
			if x.Op == sqlparser.OpOr && l.Bool() {
				return value.NewBool(true), nil
			}
		}
		r, err := ex.evalExpr(x.Right, en, gc)
		if err != nil {
			return value.Value{}, err
		}
		return threeValued(x.Op, l, r)
	}

	l, err := ex.evalExpr(x.Left, en, gc)
	if err != nil {
		return value.Value{}, err
	}
	r, err := ex.evalExpr(x.Right, en, gc)
	if err != nil {
		return value.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return value.NewNull(), nil
	}

	switch x.Op {
	case sqlparser.OpEq:
		return compareOp(l, r, true, func(c int) bool { return c == 0 })
	case sqlparser.OpNe:
		return compareOp(l, r, true, func(c int) bool { return c != 0 })
	case sqlparser.OpLt:
		return compareOp(l, r, false, func(c int) bool { return c < 0 })
	case sqlparser.OpLe:
		return compareOp(l, r, false, func(c int) bool { return c <= 0 })
	case sqlparser.OpGt:
		return compareOp(l, r, false, func(c int) bool { return c > 0 })
	case sqlparser.OpGe:
		return compareOp(l, r, false, func(c int) bool { return c >= 0 })
	case sqlparser.OpLike:
		if l.Kind() != value.Text || r.Kind() != value.Text {
			return value.Value{}, fmt.Errorf("engine: LIKE requires text operands")
		}
		return value.NewBool(likeMatch(l.Text(), r.Text())), nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
		return arith(x.Op, l, r)
	default:
		return value.Value{}, fmt.Errorf("engine: unsupported operator %s", x.Op)
	}
}

func compareOp(l, r value.Value, equality bool, pred func(int) bool) (value.Value, error) {
	// Equality across mismatched non-numeric kinds is false, not an error;
	// ordering across them is an error.
	c, err := l.Compare(r)
	if err != nil {
		if equality && l.Kind() != r.Kind() && !(l.IsNumeric() && r.IsNumeric()) {
			return value.NewBool(pred(boolToCmp(l.Equal(r)))), nil
		}
		return value.Value{}, err
	}
	return value.NewBool(pred(c)), nil
}

// boolToCmp maps an equality result onto a comparison outcome: equal ⇒ 0,
// not equal ⇒ 1 (any non-zero works for = / != predicates).
func boolToCmp(eq bool) int {
	if eq {
		return 0
	}
	return 1
}

func threeValued(op sqlparser.BinaryOp, l, r value.Value) (value.Value, error) {
	toB := func(v value.Value) (bool, bool, error) { // (val, known, err)
		if v.IsNull() {
			return false, false, nil
		}
		if v.Kind() != value.Bool {
			return false, false, fmt.Errorf("engine: boolean operator on %s", v.Kind())
		}
		return v.Bool(), true, nil
	}
	lb, lk, err := toB(l)
	if err != nil {
		return value.Value{}, err
	}
	rb, rk, err := toB(r)
	if err != nil {
		return value.Value{}, err
	}
	if op == sqlparser.OpAnd {
		switch {
		case lk && !lb, rk && !rb:
			return value.NewBool(false), nil
		case lk && rk:
			return value.NewBool(lb && rb), nil
		default:
			return value.NewNull(), nil
		}
	}
	switch {
	case lk && lb, rk && rb:
		return value.NewBool(true), nil
	case lk && rk:
		return value.NewBool(lb || rb), nil
	default:
		return value.NewNull(), nil
	}
}

func arith(op sqlparser.BinaryOp, l, r value.Value) (value.Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return value.Value{}, fmt.Errorf("engine: arithmetic on %s and %s", l.Kind(), r.Kind())
	}
	if l.Kind() == value.Int && r.Kind() == value.Int {
		a, b := l.Int(), r.Int()
		switch op {
		case sqlparser.OpAdd:
			return value.NewInt(a + b), nil
		case sqlparser.OpSub:
			return value.NewInt(a - b), nil
		case sqlparser.OpMul:
			return value.NewInt(a * b), nil
		case sqlparser.OpDiv:
			if b == 0 {
				return value.Value{}, fmt.Errorf("engine: division by zero")
			}
			return value.NewInt(a / b), nil
		case sqlparser.OpMod:
			if b == 0 {
				return value.Value{}, fmt.Errorf("engine: modulo by zero")
			}
			return value.NewInt(a % b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case sqlparser.OpAdd:
		return value.NewFloat(a + b), nil
	case sqlparser.OpSub:
		return value.NewFloat(a - b), nil
	case sqlparser.OpMul:
		return value.NewFloat(a * b), nil
	case sqlparser.OpDiv:
		if b == 0 {
			return value.Value{}, fmt.Errorf("engine: division by zero")
		}
		return value.NewFloat(a / b), nil
	case sqlparser.OpMod:
		return value.Value{}, fmt.Errorf("engine: modulo on floats")
	}
	return value.Value{}, fmt.Errorf("engine: bad arithmetic operator")
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune).
func likeMatch(s, pattern string) bool {
	return likeRec([]rune(s), []rune(pattern))
}

func likeRec(s, p []rune) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func (ex *Engine) evalIn(x *sqlparser.InExpr, en *env, gc *groupCtx) (value.Value, error) {
	subj, err := ex.evalExpr(x.Subject, en, gc)
	if err != nil {
		return value.Value{}, err
	}
	var candidates []value.Value
	if x.Subquery != nil {
		rows, err := ex.execSelectRows(x.Subquery, en, -1)
		if err != nil {
			return value.Value{}, err
		}
		for _, row := range rows {
			if len(row) != 1 {
				return value.Value{}, fmt.Errorf("engine: IN subquery must produce one column, got %d", len(row))
			}
			candidates = append(candidates, row[0])
		}
	} else {
		for _, item := range x.List {
			v, err := ex.evalExpr(item, en, gc)
			if err != nil {
				return value.Value{}, err
			}
			candidates = append(candidates, v)
		}
	}
	if subj.IsNull() {
		if len(candidates) == 0 {
			return value.NewBool(x.Negate), nil
		}
		return value.NewNull(), nil
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if subj.Equal(c) {
			return value.NewBool(!x.Negate), nil
		}
	}
	if sawNull {
		return value.NewNull(), nil
	}
	return value.NewBool(x.Negate), nil
}

func (ex *Engine) evalQuantified(x *sqlparser.QuantifiedExpr, en *env, gc *groupCtx) (value.Value, error) {
	subj, err := ex.evalExpr(x.Subject, en, gc)
	if err != nil {
		return value.Value{}, err
	}
	rows, err := ex.execSelectRows(x.Subquery, en, -1)
	if err != nil {
		return value.Value{}, err
	}
	if x.All && len(rows) == 0 {
		return value.NewBool(true), nil
	}
	if !x.All && len(rows) == 0 {
		return value.NewBool(false), nil
	}
	if subj.IsNull() {
		return value.NewNull(), nil
	}
	sawNull := false
	anyTrue := false
	allTrue := true
	for _, row := range rows {
		if len(row) != 1 {
			return value.Value{}, fmt.Errorf("engine: quantified subquery must produce one column")
		}
		v := row[0]
		if v.IsNull() {
			sawNull = true
			allTrue = false
			continue
		}
		c, err := subj.Compare(v)
		if err != nil {
			return value.Value{}, err
		}
		ok := false
		switch x.Op {
		case sqlparser.OpEq:
			ok = c == 0
		case sqlparser.OpNe:
			ok = c != 0
		case sqlparser.OpLt:
			ok = c < 0
		case sqlparser.OpLe:
			ok = c <= 0
		case sqlparser.OpGt:
			ok = c > 0
		case sqlparser.OpGe:
			ok = c >= 0
		default:
			return value.Value{}, fmt.Errorf("engine: quantifier with non-comparison operator %s", x.Op)
		}
		if ok {
			anyTrue = true
		} else {
			allTrue = false
		}
	}
	if x.All {
		if allTrue {
			return value.NewBool(true), nil
		}
		// A definite counterexample makes ALL false even with NULLs present,
		// but here allTrue=false could be due to a NULL row; distinguish:
		if sawNull && !definiteCounterexample(subj, rows, x.Op) {
			return value.NewNull(), nil
		}
		return value.NewBool(false), nil
	}
	if anyTrue {
		return value.NewBool(true), nil
	}
	if sawNull {
		return value.NewNull(), nil
	}
	return value.NewBool(false), nil
}

func definiteCounterexample(subj value.Value, rows []storage.Tuple, op sqlparser.BinaryOp) bool {
	for _, row := range rows {
		v := row[0]
		if v.IsNull() {
			continue
		}
		c, err := subj.Compare(v)
		if err != nil {
			continue
		}
		ok := false
		switch op {
		case sqlparser.OpEq:
			ok = c == 0
		case sqlparser.OpNe:
			ok = c != 0
		case sqlparser.OpLt:
			ok = c < 0
		case sqlparser.OpLe:
			ok = c <= 0
		case sqlparser.OpGt:
			ok = c > 0
		case sqlparser.OpGe:
			ok = c >= 0
		}
		if !ok {
			return true
		}
	}
	return false
}

func (ex *Engine) evalScalarSubquery(sub *sqlparser.SelectStmt, en *env) (value.Value, error) {
	rows, err := ex.execSelectRows(sub, en, 2)
	if err != nil {
		return value.Value{}, err
	}
	switch len(rows) {
	case 0:
		return value.NewNull(), nil
	case 1:
		if len(rows[0]) != 1 {
			return value.Value{}, fmt.Errorf("engine: scalar subquery must produce one column, got %d", len(rows[0]))
		}
		return rows[0][0], nil
	default:
		return value.Value{}, fmt.Errorf("engine: scalar subquery produced more than one row")
	}
}

func (ex *Engine) evalAggregate(x *sqlparser.AggregateExpr, gc *groupCtx) (value.Value, error) {
	// COUNT(*) counts rows.
	if x.Arg == nil {
		return value.NewInt(int64(len(gc.rows))), nil
	}
	var vals []value.Value
	seen := map[string]bool{}
	for _, rowEnv := range gc.rows {
		v, err := ex.evalExpr(x.Arg, rowEnv, nil)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if x.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch x.Func {
	case sqlparser.AggCount:
		return value.NewInt(int64(len(vals))), nil
	case sqlparser.AggSum, sqlparser.AggAvg:
		if len(vals) == 0 {
			return value.NewNull(), nil
		}
		allInt := true
		sumF := 0.0
		sumI := int64(0)
		for _, v := range vals {
			if !v.IsNumeric() {
				return value.Value{}, fmt.Errorf("engine: %s over non-numeric values", x.Func)
			}
			if v.Kind() == value.Int {
				sumI += v.Int()
			} else {
				allInt = false
			}
			sumF += v.Float()
		}
		if x.Func == sqlparser.AggSum {
			if allInt {
				return value.NewInt(sumI), nil
			}
			return value.NewFloat(sumF), nil
		}
		return value.NewFloat(sumF / float64(len(vals))), nil
	case sqlparser.AggMin, sqlparser.AggMax:
		if len(vals) == 0 {
			return value.NewNull(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := v.Compare(best)
			if err != nil {
				return value.Value{}, err
			}
			if (x.Func == sqlparser.AggMin && c < 0) || (x.Func == sqlparser.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return value.Value{}, fmt.Errorf("engine: unknown aggregate")
	}
}
