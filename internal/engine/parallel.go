package engine

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of work units (environments, or
// env×tuple pairs for base scans) a join step must process before it fans
// out across goroutines. Below it the goroutine and chunk bookkeeping costs
// more than it saves. A variable so tests can lower it to force the parallel
// paths on small datasets.
var parallelThreshold = 2048

// SetParallelism caps the worker fan-out of parallel join and scan steps:
// 1 forces serial execution (differential tests use this), n > 1 caps the
// goroutine count, and n <= 0 restores the default of GOMAXPROCS. Safe for
// concurrent use.
func (ex *Engine) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	ex.st.par.Store(int32(n))
}

// workersFor decides how many workers to use for n units of work.
func (ex *Engine) workersFor(n int) int {
	if n < parallelThreshold {
		return 1
	}
	w := int(ex.st.par.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// gatherParallel splits [0, n) into at most `workers` contiguous chunks,
// runs fn over each chunk on its own goroutine, and concatenates the chunk
// outputs in index order — so the combined result is identical to
// fn(0, n) run serially, making parallel execution deterministic.
func gatherParallel(n, workers int, fn func(lo, hi int) ([]*env, error)) ([]*env, error) {
	if workers <= 1 || n <= 1 {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	outs := make([][]*env, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			outs[w], errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]*env, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}
