package engine

import (
	"context"

	"repro/internal/budget"
)

// This file is the engine half of deadline-aware execution. A Budget carries
// one request's context (deadline + cancellation) and resource quotas into
// the execution loops; every loop polls it cooperatively at morsel
// boundaries (gatherBatches sub-chunks worker ranges at storage-zone
// boundaries, the fused aggregation loop checks per claimed morsel, and the
// naive pipeline ticks every budget.TickRows iterations). A tripped budget
// latches a single *CancelError so concurrent workers agree on the first
// cause, stop claiming work, and the whole pipeline unwinds without partial
// results escaping.
//
// The types live in the leaf package internal/budget (so the narration layer
// can render a CancelError without importing the engine); these aliases keep
// the engine's public surface self-contained.

// Budget bounds one request's execution; see internal/budget.
type Budget = budget.Budget

// CancelError reports a query stopped before completing; see internal/budget.
type CancelError = budget.CancelError

// Cancellation causes, re-exported for callers that switch on
// CancelError.Cause.
const (
	CauseDeadline  = budget.CauseDeadline
	CauseCancelled = budget.CauseCancelled
	CauseRowQuota  = budget.CauseRowQuota
	CauseMemQuota  = budget.CauseMemQuota
	CauseWALStall  = budget.CauseWALStall
)

// NewBudget builds a budget over ctx with the given quotas (0 = unbounded);
// it returns nil — the inert budget — when nothing can ever trip.
func NewBudget(ctx context.Context, maxRows, maxBytes int64) *Budget {
	return budget.New(ctx, maxRows, maxBytes)
}

// IsCancel reports whether err is (or wraps) a budget cancellation.
func IsCancel(err error) bool { return budget.IsCancel(err) }

// WithBudget returns a clone of the engine bound to b: every execution loop
// the clone runs polls b at morsel boundaries, and DML commits thread b's
// context down to the WAL sync. Like At, the clone is cheap and shares views
// and pipeline toggles with the root engine. A nil budget on an unbudgeted
// engine is a no-op.
func (ex *Engine) WithBudget(b *Budget) *Engine {
	if b == nil && ex.bud == nil {
		return ex
	}
	return &Engine{db: ex.db, src: ex.src, st: ex.st, bud: b}
}

// Budget returns the engine's budget (nil for an unbounded engine).
func (ex *Engine) Budget() *Budget { return ex.bud }

// commitBatch closes the statement batch opened by a DML statement,
// threading the budget's context into the WAL sync so a stalled disk
// surfaces as a bounded, narrated error instead of an indefinite hang.
func (ex *Engine) commitBatch() error {
	if ex.bud != nil {
		return ex.db.CommitBatchContext(ex.bud.Context())
	}
	return ex.db.CommitBatch()
}
