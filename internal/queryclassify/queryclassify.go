// Package queryclassify sorts queries into the paper's §3.3 difficulty
// categories, which select the translation strategy:
//
//	Path       — SPJ, one tuple variable per relation, join graph is a path
//	             on the schema graph (Q1).
//	Subgraph   — SPJ, one tuple variable per relation, join graph is a
//	             connected acyclic subgraph (Q2).
//	Graph      — SPJ with multiple instances of a relation or cycles /
//	             non-FK joins (Q3, Q4).
//	NonGraph   — nested (Q5, Q6) or aggregate (Q7) queries that cannot be
//	             drawn on the schema graph.
//	Impossible — semantics not derivable from the query graph; requires
//	             higher-order idiom recognition (Q8: count(distinct)=1,
//	             Q9: <= ALL as "earliest").
package queryclassify

import (
	"fmt"
	"strings"

	"repro/internal/querygraph"
	"repro/internal/sqlparser"
)

// Category is the top-level difficulty class.
type Category int

// Categories in increasing order of translation difficulty.
const (
	Path Category = iota
	Subgraph
	Graph
	NonGraph
	Impossible
)

// String names the category as the paper does.
func (c Category) String() string {
	switch c {
	case Path:
		return "path"
	case Subgraph:
		return "subgraph"
	case Graph:
		return "graph"
	case NonGraph:
		return "non-graph"
	case Impossible:
		return "impossible"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Subtype refines Graph and NonGraph categories.
type Subtype int

// Subtypes.
const (
	None Subtype = iota
	MultiInstance
	Cyclic
	Nested
	Aggregate
	SameValueIdiom // Q8: count(distinct x) = 1
	ExtremeIdiom   // Q9: <= ALL / >= ALL
)

// String names the subtype.
func (s Subtype) String() string {
	switch s {
	case MultiInstance:
		return "multi-instance"
	case Cyclic:
		return "cyclic"
	case Nested:
		return "nested"
	case Aggregate:
		return "aggregate"
	case SameValueIdiom:
		return "same-value idiom"
	case ExtremeIdiom:
		return "extreme idiom"
	default:
		return "none"
	}
}

// Result is a classification with its structural evidence.
type Result struct {
	Category Category
	Subtype  Subtype
	// Evidence lists the structural facts the decision rests on, in
	// human-readable form (they surface in CLI output and EXPERIMENTS.md).
	Evidence []string
}

// Classify categorizes a query from its query graph.
func Classify(g *querygraph.Graph) Result {
	var ev []string
	add := func(format string, args ...any) {
		ev = append(ev, fmt.Sprintf(format, args...))
	}

	// Impossible idioms dominate every other signal (§3.3.5): their
	// surface syntax looks like ordinary aggregates/quantifiers, but the
	// intended meaning is a higher-order property.
	if idiom, detail := impossibleIdiom(g.Stmt); idiom != None {
		add("%s", detail)
		return Result{Category: Impossible, Subtype: idiom, Evidence: ev}
	}

	grouping := g.HasGrouping()
	nested := len(g.Nested) > 0 || anyNestedExpr(g.Stmt)

	if grouping {
		add("query groups or aggregates")
		return Result{Category: NonGraph, Subtype: Aggregate, Evidence: ev}
	}
	if nested {
		add("query contains %d nested block(s)", len(g.Nested))
		return Result{Category: NonGraph, Subtype: Nested, Evidence: ev}
	}

	multi := g.MultiInstanceRelations()
	if len(multi) > 0 {
		add("relations with multiple tuple variables: %s", strings.Join(multi, ", "))
		return Result{Category: Graph, Subtype: MultiInstance, Evidence: ev}
	}
	if g.HasCycle() {
		add("join graph contains a cycle")
		return Result{Category: Graph, Subtype: Cyclic, Evidence: ev}
	}
	if !g.AllJoinsFK() {
		add("join graph contains non-foreign-key join predicates")
		return Result{Category: Graph, Subtype: None, Evidence: ev}
	}
	if g.IsPath() {
		add("join graph is a simple path over %d relation(s)", len(g.Boxes))
		return Result{Category: Path, Subtype: None, Evidence: ev}
	}
	if g.IsConnectedAcyclic() {
		add("join graph is a connected acyclic subgraph of the schema graph")
		return Result{Category: Subgraph, Subtype: None, Evidence: ev}
	}
	// Disconnected SPJ (cartesian products) still fits the graph category.
	add("join graph is disconnected (cartesian product present)")
	return Result{Category: Graph, Subtype: None, Evidence: ev}
}

// impossibleIdiom detects the paper's §3.3.5 patterns.
func impossibleIdiom(sel *sqlparser.SelectStmt) (Subtype, string) {
	// Q8: HAVING count(distinct X) = 1 — "all in the same X".
	for _, c := range sqlparser.Conjuncts(sel.Having) {
		b, ok := c.(*sqlparser.BinaryExpr)
		if !ok || b.Op != sqlparser.OpEq {
			continue
		}
		agg, lit := splitAggLiteral(b)
		if agg != nil && lit != nil && agg.Func == sqlparser.AggCount && agg.Distinct &&
			lit.Value.Kind() != 0 && lit.Value.String() == "1" {
			return SameValueIdiom, fmt.Sprintf(
				"HAVING COUNT(DISTINCT %s) = 1 asserts all rows share one %s",
				agg.Arg.SQL(), agg.Arg.SQL())
		}
	}
	// Q9: col <= ALL (...) / >= ALL (...) — earliest / latest.
	found := Subtype(None)
	detail := ""
	scan := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if q, ok := x.(*sqlparser.QuantifiedExpr); ok && q.All {
				switch q.Op {
				case sqlparser.OpLe, sqlparser.OpLt:
					found = ExtremeIdiom
					detail = fmt.Sprintf("%s %s ALL selects the minimum (earliest) %s",
						q.Subject.SQL(), q.Op, q.Subject.SQL())
				case sqlparser.OpGe, sqlparser.OpGt:
					found = ExtremeIdiom
					detail = fmt.Sprintf("%s %s ALL selects the maximum (latest) %s",
						q.Subject.SQL(), q.Op, q.Subject.SQL())
				}
			}
			return true
		})
	}
	scan(sel.Where)
	scan(sel.Having)
	if found != None {
		return found, detail
	}
	return None, ""
}

func splitAggLiteral(b *sqlparser.BinaryExpr) (*sqlparser.AggregateExpr, *sqlparser.Literal) {
	if a, ok := b.Left.(*sqlparser.AggregateExpr); ok {
		if l, ok := b.Right.(*sqlparser.Literal); ok {
			return a, l
		}
	}
	if a, ok := b.Right.(*sqlparser.AggregateExpr); ok {
		if l, ok := b.Left.(*sqlparser.Literal); ok {
			return a, l
		}
	}
	return nil, nil
}

// anyNestedExpr reports subqueries anywhere in WHERE/HAVING, as a safety net
// when the graph's nested blocks are empty (e.g. subquery inside OR).
func anyNestedExpr(sel *sqlparser.SelectStmt) bool {
	return len(sqlparser.Subqueries(sel.Where)) > 0 || len(sqlparser.Subqueries(sel.Having)) > 0
}
