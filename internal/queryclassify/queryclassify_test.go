package queryclassify

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/querygraph"
	"repro/internal/sqlparser"
)

func classify(t *testing.T, label string) Result {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[label])
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	schema := dataset.MovieSchema()
	if label == "Q0" {
		schema = dataset.EmpDeptSchema()
	}
	g, err := querygraph.Build(sel, schema)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return Classify(g)
}

// TestPaperCategorization reproduces the paper's §3.3 query categorization
// table — the X1 experiment of EXPERIMENTS.md.
func TestPaperCategorization(t *testing.T) {
	want := map[string]struct {
		cat Category
		sub Subtype
	}{
		"Q0": {Graph, MultiInstance},       // EMP twice, comparative self-join
		"Q1": {Path, None},                 // §3.3.1
		"Q2": {Subgraph, None},             // §3.3.2
		"Q3": {Graph, MultiInstance},       // §3.3.3
		"Q4": {Graph, Cyclic},              // §3.3.3
		"Q5": {NonGraph, Nested},           // §3.3.4
		"Q6": {NonGraph, Nested},           // §3.3.4
		"Q7": {NonGraph, Aggregate},        // §3.3.4
		"Q8": {Impossible, SameValueIdiom}, // §3.3.5
		"Q9": {Impossible, ExtremeIdiom},   // §3.3.5
	}
	for label, exp := range want {
		got := classify(t, label)
		if got.Category != exp.cat || got.Subtype != exp.sub {
			t.Errorf("%s: classified %s/%s, want %s/%s (evidence: %v)",
				label, got.Category, got.Subtype, exp.cat, exp.sub, got.Evidence)
		}
		if len(got.Evidence) == 0 {
			t.Errorf("%s: no evidence", label)
		}
	}
}

func TestSingleRelationIsPath(t *testing.T) {
	sel, _ := sqlparser.ParseSelect("select m.title from MOVIES m where m.year = 2005")
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	r := Classify(g)
	if r.Category != Path {
		t.Errorf("single relation = %s", r.Category)
	}
}

func TestCartesianProductIsGraph(t *testing.T) {
	sel, _ := sqlparser.ParseSelect("select m.title, d.name from MOVIES m, DIRECTOR d")
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	r := Classify(g)
	if r.Category != Graph {
		t.Errorf("cartesian = %s", r.Category)
	}
	if !strings.Contains(strings.Join(r.Evidence, " "), "disconnected") {
		t.Errorf("evidence = %v", r.Evidence)
	}
}

func TestNonFKEquiJoinIsGraph(t *testing.T) {
	// Joining DIRECTOR.name to ACTOR.name is an equi-join with no FK.
	sel, _ := sqlparser.ParseSelect("select d.name from DIRECTOR d, ACTOR a where d.name = a.name")
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	r := Classify(g)
	if r.Category != Graph {
		t.Errorf("non-FK equi-join = %s", r.Category)
	}
}

func TestGroupByWithoutHavingIsAggregate(t *testing.T) {
	sel, _ := sqlparser.ParseSelect("select g.genre, count(*) from GENRE g group by g.genre")
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	r := Classify(g)
	if r.Category != NonGraph || r.Subtype != Aggregate {
		t.Errorf("grouped = %s/%s", r.Category, r.Subtype)
	}
}

func TestBareAggregateIsAggregate(t *testing.T) {
	sel, _ := sqlparser.ParseSelect("select count(*) from MOVIES m")
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if r := Classify(g); r.Category != NonGraph || r.Subtype != Aggregate {
		t.Errorf("count(*) = %s/%s", r.Category, r.Subtype)
	}
}

func TestGreaterEqualAllIsLatestIdiom(t *testing.T) {
	sel, _ := sqlparser.ParseSelect(`select m.title from MOVIES m
		where m.year >= all (select m2.year from MOVIES m2)`)
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	r := Classify(g)
	if r.Category != Impossible || r.Subtype != ExtremeIdiom {
		t.Errorf("latest = %s/%s", r.Category, r.Subtype)
	}
	if !strings.Contains(strings.Join(r.Evidence, " "), "latest") {
		t.Errorf("evidence = %v", r.Evidence)
	}
}

func TestCountDistinctOtherLiteralNotIdiom(t *testing.T) {
	// count(distinct x) = 2 is an ordinary aggregate, not the same-value
	// idiom.
	sel, _ := sqlparser.ParseSelect(`select a.id from CAST c, ACTOR a
		where c.aid = a.id group by a.id having count(distinct c.mid) = 2`)
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if r := Classify(g); r.Category != NonGraph || r.Subtype != Aggregate {
		t.Errorf("count=2 = %s/%s", r.Category, r.Subtype)
	}
}

func TestEqAnyIsNotExtremeIdiom(t *testing.T) {
	sel, _ := sqlparser.ParseSelect(`select m.title from MOVIES m
		where m.year = any (select m2.year from MOVIES m2)`)
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if r := Classify(g); r.Category == Impossible {
		t.Errorf("= ANY misclassified as impossible")
	}
}

func TestStrings(t *testing.T) {
	if Path.String() != "path" || Impossible.String() != "impossible" {
		t.Error("Category names")
	}
	if MultiInstance.String() != "multi-instance" || ExtremeIdiom.String() != "extreme idiom" {
		t.Error("Subtype names")
	}
	if None.String() != "none" {
		t.Error("None name")
	}
	if !strings.Contains(Category(99).String(), "99") {
		t.Error("unknown category")
	}
}

func BenchmarkClassifyCorpus(b *testing.B) {
	schema := dataset.MovieSchema()
	emp := dataset.EmpDeptSchema()
	var graphs []*querygraph.Graph
	for _, label := range sqlparser.PaperQueryOrder {
		sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[label])
		if err != nil {
			b.Fatal(err)
		}
		s := schema
		if label == "Q0" {
			s = emp
		}
		g, err := querygraph.Build(sel, s)
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(graphs[i%len(graphs)])
	}
}
