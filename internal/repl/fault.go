package repl

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedCut is what a FaultConn returns when its plan severs the link.
var ErrInjectedCut = errors.New("repl: fault injection severed the connection")

// FaultPlan scripts deterministic transport faults against the byte stream a
// connection reads. Offsets count bytes delivered to the reader; -1 disables
// a fault. Faults are one-shot: each fires at most once per connection.
type FaultPlan struct {
	// CutReadAt severs the read side after exactly N bytes have been
	// delivered: the next Read returns ErrInjectedCut. Cutting mid-frame
	// leaves the reader with a torn frame — a transport fault, not damage.
	CutReadAt int64
	// CorruptReadAt XORs CorruptMask into the byte at that offset as it
	// flows past: the frame covering it fails its checksum — damage.
	CorruptReadAt int64
	CorruptMask   byte
	// DupReadFrom/DupReadTo replay the byte range [from, to) a second time
	// immediately after offset DupReadTo — duplicated frames on the wire.
	DupReadFrom int64
	DupReadTo   int64
	// StallReadAt freezes reads at that offset for StallFor (writes keep
	// flowing), simulating a one-way hang; reads then resume.
	StallReadAt int64
	StallFor    time.Duration
	// PartitionAt freezes BOTH directions at that read offset for StallFor,
	// then severs the connection — a full partition with no FIN.
	PartitionAt int64
}

// NoFaults is the identity plan: every fault disabled.
func NoFaults() FaultPlan {
	return FaultPlan{
		CutReadAt:     -1,
		CorruptReadAt: -1,
		DupReadFrom:   -1,
		DupReadTo:     -1,
		StallReadAt:   -1,
		PartitionAt:   -1,
	}
}

// FaultConn wraps a net.Conn, executing a FaultPlan against the bytes the
// wrapped connection delivers to Read. Injected (duplicated) bytes do not
// advance the fault offset, so plans are expressed in clean-stream offsets.
type FaultConn struct {
	net.Conn
	plan FaultPlan

	mu       sync.Mutex
	rOff     int64  // clean bytes delivered so far
	pending  []byte // duplicated bytes queued for re-delivery
	retained []byte // bytes captured for the duplication window
	cut      bool
	stalled  bool // one-shot: stall/partition already fired
	parted   bool // partition fired: connection is dead both ways

	closeOnce sync.Once
	closeCh   chan struct{} // closed by Close; aborts an in-progress stall
}

// NewFaultConn wraps conn with plan.
func NewFaultConn(conn net.Conn, plan FaultPlan) *FaultConn {
	return &FaultConn{Conn: conn, plan: plan, closeCh: make(chan struct{})}
}

// boundary returns how many bytes may be delivered before the next fault
// trigger at clean offset off, and which trigger that is.
func (c *FaultConn) boundary(off int64, max int) int {
	n := max
	clamp := func(at int64) {
		if at >= off && at-off < int64(n) {
			n = int(at - off)
		}
	}
	if c.plan.CutReadAt >= 0 && !c.cut {
		clamp(c.plan.CutReadAt)
	}
	if c.plan.CorruptReadAt >= 0 {
		// Deliver up to and including the corrupted byte in one chunk.
		if c.plan.CorruptReadAt >= off && c.plan.CorruptReadAt-off+1 < int64(n) {
			n = int(c.plan.CorruptReadAt - off + 1)
		}
	}
	if c.plan.DupReadTo >= 0 {
		clamp(c.plan.DupReadTo)
	}
	if c.plan.StallReadAt >= 0 && !c.stalled {
		clamp(c.plan.StallReadAt)
	}
	if c.plan.PartitionAt >= 0 && !c.stalled {
		clamp(c.plan.PartitionAt)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// stall blocks for d or until the connection closes.
func (c *FaultConn) stall(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closeCh:
	}
}

func (c *FaultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut || c.parted {
		c.mu.Unlock()
		return 0, ErrInjectedCut
	}
	// Fire point faults scheduled exactly at the current offset.
	if c.plan.CutReadAt >= 0 && c.rOff >= c.plan.CutReadAt {
		c.cut = true
		c.mu.Unlock()
		return 0, ErrInjectedCut
	}
	if !c.stalled && c.plan.PartitionAt >= 0 && c.rOff >= c.plan.PartitionAt {
		c.stalled = true
		c.parted = true
		c.mu.Unlock()
		c.stall(c.plan.StallFor)
		c.Conn.Close()
		return 0, ErrInjectedCut
	}
	if !c.stalled && c.plan.StallReadAt >= 0 && c.rOff >= c.plan.StallReadAt {
		c.stalled = true
		c.mu.Unlock()
		c.stall(c.plan.StallFor)
		c.mu.Lock()
	}
	// Drain duplicated bytes first; they do not advance the clean offset.
	if len(c.pending) > 0 {
		n := copy(p, c.pending)
		c.pending = c.pending[n:]
		c.mu.Unlock()
		return n, nil
	}
	off := c.rOff
	limit := c.boundary(off, len(p))
	c.mu.Unlock()

	n, err := c.Conn.Read(p[:limit])

	c.mu.Lock()
	defer c.mu.Unlock()
	if n > 0 {
		if at := c.plan.CorruptReadAt; at >= off && at < off+int64(n) {
			p[at-off] ^= c.plan.CorruptMask
		}
		if from, to := c.plan.DupReadFrom, c.plan.DupReadTo; from >= 0 && to > from {
			lo, hi := off, off+int64(n)
			if from < hi && to > lo {
				s, e := max64(from, lo), min64(to, hi)
				c.retained = append(c.retained, p[s-off:e-off]...)
			}
			if hi >= to && c.retained != nil {
				c.pending = append(c.pending, c.retained...)
				c.retained = nil
			}
		}
		c.rOff += int64(n)
	}
	return n, err
}

func (c *FaultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	parted := c.parted
	c.mu.Unlock()
	if parted {
		// Both directions frozen: hold the writer for the stall window too.
		c.stall(c.plan.StallFor)
		return 0, ErrInjectedCut
	}
	return c.Conn.Write(p)
}

func (c *FaultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closeCh) })
	return c.Conn.Close()
}

// FaultListener wraps a net.Listener, applying one FaultPlan per accepted
// connection in order; connections past the last plan are clean. It injects
// faults on the primary side, so the follower→primary ack direction is
// covered too.
type FaultListener struct {
	net.Listener
	mu    sync.Mutex
	plans []FaultPlan
	next  int
}

// NewFaultListener wraps ln; the i-th accepted connection gets plans[i].
func NewFaultListener(ln net.Listener, plans ...FaultPlan) *FaultListener {
	return &FaultListener{Listener: ln, plans: plans}
}

func (l *FaultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	plan := NoFaults()
	if l.next < len(l.plans) {
		plan = l.plans[l.next]
	}
	l.next++
	l.mu.Unlock()
	return NewFaultConn(conn, plan), nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
