package repl

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/leakcheck"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

func replSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema("repl")
	if err := s.AddRelation(&catalog.Relation{
		Name: "DIRECTOR",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "name", Type: catalog.Text, NotNull: true},
			{Name: "bdate", Type: catalog.Date},
		},
		PrimaryKey:  []string{"id"},
		HeadingAttr: "name",
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func newReplDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := storage.NewDatabase(replSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// newPrimaryDB returns a durable database over a MemFS.
func newPrimaryDB(t *testing.T) *storage.Database {
	t.Helper()
	db := newReplDB(t)
	if _, err := db.EnableDurability(wal.NewMemFS(), storage.DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	return db
}

func insRow(t *testing.T, db *storage.Database, id int) {
	t.Helper()
	insRowText(t, db, id, fmt.Sprintf("d-%d", id))
}

func insRowText(t *testing.T, db *storage.Database, id int, name string) {
	t.Helper()
	err := db.Insert("DIRECTOR", storage.Tuple{
		value.NewInt(int64(id)), value.NewText(name), value.NewNull(),
	})
	if err != nil {
		t.Fatal(err)
	}
}

// dump fingerprints a database's snapshot contents for convergence checks.
func dump(db *storage.Database) string {
	s := db.Snapshot()
	var sb strings.Builder
	for _, name := range s.TableNames() {
		sb.WriteString("== " + name + "\n")
		for _, tup := range s.Table(name).Tuples() {
			for i, v := range tup {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(v.Key())
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// startPrimary builds a serving primary on a loopback listener.
func startPrimary(t *testing.T, db *storage.Database, opts PrimaryOptions) (*Primary, string) {
	t.Helper()
	p, err := NewPrimary(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.Start(ln)
	return p, ln.Addr().String()
}

func fastFollowerOpts(addr string) FollowerOptions {
	return FollowerOptions{
		Addr:         addr,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
		ReadTimeout:  2 * time.Second,
		SendTimeout:  time.Second,
	}
}

// ---------------------------------------------------------------------------
// End-to-end streaming
// ---------------------------------------------------------------------------

// TestReplicationEndToEnd pins the happy path over a real TCP link: a
// follower converges to the primary's contents byte-for-byte, live commits
// keep flowing, and the primary tracks the follower's acknowledged sequence.
func TestReplicationEndToEnd(t *testing.T) {
	defer leakcheck.Check(t)()
	pdb := newPrimaryDB(t)
	for i := 1; i <= 3; i++ {
		insRow(t, pdb, i)
	}
	p, addr := startPrimary(t, pdb, PrimaryOptions{Heartbeat: 50 * time.Millisecond})
	defer p.Close()

	fdb := newReplDB(t)
	f, err := StartFollower(fdb, fastFollowerOpts(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitFor(t, 5*time.Second, "backlog convergence", func() bool {
		return f.Status().AppliedSeq == 3
	})
	if got, want := dump(fdb), dump(pdb); got != want {
		t.Fatalf("follower diverged after backlog:\n%s\n----\n%s", got, want)
	}

	// Live tail: commits made while the follower is attached.
	for i := 4; i <= 10; i++ {
		insRow(t, pdb, i)
	}
	waitFor(t, 5*time.Second, "live-tail convergence", func() bool {
		return f.Status().AppliedSeq == 10
	})
	if got, want := dump(fdb), dump(pdb); got != want {
		t.Fatalf("follower diverged on the live tail:\n%s\n----\n%s", got, want)
	}

	// The ack stream feeds the primary's lag accounting.
	waitFor(t, 5*time.Second, "primary ack tracking", func() bool {
		st := p.Stats()
		return len(st.Followers) == 1 && st.Followers[0].AckSeq == 10 && st.Followers[0].Lag == 0
	})
	st := f.Status()
	if st.Quarantined || st.Lag != 0 || !st.Connected {
		t.Fatalf("follower status after convergence: %+v", st)
	}
	if st.Catchup.LastSeq != 10 {
		t.Fatalf("catch-up report ends at %d, want 10", st.Catchup.LastSeq)
	}
}

// TestFollowerRejectsLocalWrites pins the read-only guard end to end.
func TestFollowerRejectsLocalWrites(t *testing.T) {
	defer leakcheck.Check(t)()
	pdb := newPrimaryDB(t)
	insRow(t, pdb, 1)
	p, addr := startPrimary(t, pdb, PrimaryOptions{Heartbeat: 50 * time.Millisecond})
	defer p.Close()
	fdb := newReplDB(t)
	f, err := StartFollower(fdb, fastFollowerOpts(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFor(t, 5*time.Second, "convergence", func() bool { return f.Status().AppliedSeq == 1 })
	err = fdb.Insert("DIRECTOR", storage.Tuple{value.NewInt(99), value.NewText("local"), value.NewNull()})
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("local write on follower: %v, want read-only refusal", err)
	}
}

// TestFollowerReconnectsAndResumes severs a live link from the outside and
// checks the follower dials back, resumes from its applied sequence, and
// converges on commits made during the outage.
func TestFollowerReconnectsAndResumes(t *testing.T) {
	defer leakcheck.Check(t)()
	pdb := newPrimaryDB(t)
	for i := 1; i <= 3; i++ {
		insRow(t, pdb, i)
	}
	p, addr := startPrimary(t, pdb, PrimaryOptions{Heartbeat: 50 * time.Millisecond})
	defer p.Close()

	var mu sync.Mutex
	var conns []net.Conn
	opts := fastFollowerOpts(addr)
	opts.Dial = func(a string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", a, time.Second)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	fdb := newReplDB(t)
	f, err := StartFollower(fdb, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFor(t, 5*time.Second, "initial convergence", func() bool { return f.Status().AppliedSeq == 3 })

	// Sever the link out from under the follower, then commit more.
	mu.Lock()
	conns[0].Close()
	mu.Unlock()
	for i := 4; i <= 6; i++ {
		insRow(t, pdb, i)
	}
	waitFor(t, 5*time.Second, "post-reconnect convergence", func() bool { return f.Status().AppliedSeq == 6 })
	if got, want := dump(fdb), dump(pdb); got != want {
		t.Fatalf("diverged after reconnect:\n%s\n----\n%s", got, want)
	}
	if st := f.Status(); st.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", st.Reconnects)
	}
}

// TestWedgedFollowerNeverBlocksCommits is the stall-injection acceptance
// test: a follower that handshakes and then never reads again must not slow
// the primary's commit path — the bounded outbox absorbs what fits, the send
// deadline severs the link, and commits proceed at local speed throughout.
func TestWedgedFollowerNeverBlocksCommits(t *testing.T) {
	defer leakcheck.Check(t)()
	pdb := newPrimaryDB(t)
	p, addr := startPrimary(t, pdb, PrimaryOptions{
		Heartbeat:   50 * time.Millisecond,
		SendTimeout: 200 * time.Millisecond,
		OutboxBytes: 64 << 10,
	})
	defer p.Close()

	// A wedge: handshake like a follower at seq 0, then never read a byte.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := appendMessage(nil, msgHandshake, nil, protoVersion, storage.SchemaFingerprint(pdb), 0)
	if _, err := conn.Write(wal.AppendRecord(nil, payload)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "wedged follower registration", func() bool {
		return len(p.Stats().Followers) == 1
	})

	// Commit enough bytes to overwhelm any socket buffer many times over.
	big := strings.Repeat("x", 32<<10)
	start := time.Now()
	for i := 1; i <= 100; i++ {
		insRowText(t, pdb, i, big)
	}
	elapsed := time.Since(start)
	// 100 commits to an in-memory FS take microseconds each; even a single
	// send-deadline stall (200ms) leaking into the commit path would blow
	// this bound tenfold.
	if elapsed > 2*time.Second {
		t.Fatalf("100 commits took %v with a wedged follower attached", elapsed)
	}
	waitFor(t, 5*time.Second, "wedged follower dropped", func() bool {
		st := p.Stats()
		return st.Dropped >= 1 && len(st.Followers) == 0
	})
	if st := p.Stats(); st.OutboxBytes > 64<<10+33<<10 {
		t.Fatalf("outbox grew past its bound: %d bytes", st.OutboxBytes)
	}
}

// ---------------------------------------------------------------------------
// Divergence latching against a scripted primary
// ---------------------------------------------------------------------------

// fakePrimary accepts one follower connection and hands it to a script.
type fakePrimary struct {
	ln   net.Listener
	stop chan struct{}
	done chan struct{}
}

func startFakePrimary(t *testing.T, script func(send func(kind byte, body []byte, fields ...uint64))) *fakePrimary {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fp := &fakePrimary{ln: ln, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(fp.done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sc := wal.NewFrameScanner(conn)
		if !sc.Scan() {
			return
		}
		var scratch []byte
		script(func(kind byte, body []byte, fields ...uint64) {
			payload := appendMessage(nil, kind, body, fields...)
			_ = sendMessage(conn, time.Second, &scratch, payload)
		})
		<-fp.stop // hold the link open until the test is done asserting
	}()
	return fp
}

func (fp *fakePrimary) close() {
	close(fp.stop)
	fp.ln.Close()
	<-fp.done
}

// emptyRecord encodes a WAL record with the given sequence and zero ops —
// enough to move a follower's applied sequence without touching tables.
func emptyRecord(seq uint64) []byte {
	return binary.AppendUvarint(binary.AppendUvarint(nil, seq), 0)
}

func waitQuarantine(t *testing.T, f *Follower, wantSubstr string) {
	t.Helper()
	waitFor(t, 5*time.Second, "quarantine latch", func() bool { return f.Quarantined() != nil })
	q := f.Quarantined()
	if !strings.Contains(q.Reason, wantSubstr) {
		t.Fatalf("quarantine reason %q does not mention %q", q.Reason, wantSubstr)
	}
	st := f.Status()
	if !st.Quarantined || st.QuarantineReason != q.Reason {
		t.Fatalf("status does not reflect quarantine: %+v", st)
	}
}

// TestQuarantineOnSequenceGap: a record skipping ahead latches divergence.
func TestQuarantineOnSequenceGap(t *testing.T) {
	defer leakcheck.Check(t)()
	fdb := newReplDB(t)
	fp := startFakePrimary(t, func(send func(byte, []byte, ...uint64)) {
		send(msgWelcome, nil, protoVersion, storage.SchemaFingerprint(fdb), 5)
		send(msgRecord, emptyRecord(2)) // follower at 0 expects 1
	})
	defer fp.close()
	f, err := StartFollower(fdb, fastFollowerOpts(fp.ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitQuarantine(t, f, "sequence gap: record 2 arrived while I stood at 0")
	if f.Quarantined().Seq != 0 {
		t.Fatalf("quarantine seq %d, want 0", f.Quarantined().Seq)
	}
}

// TestQuarantineOnStaleCheckpoint: a checkpoint whose floor is behind the
// follower's applied state means the histories diverged; the follower must
// refuse it before wiping anything.
func TestQuarantineOnStaleCheckpoint(t *testing.T) {
	defer leakcheck.Check(t)()
	// Build, on a scratch primary: two real committed records (captured via
	// the commit sink) and a checkpoint segment whose floor is 1.
	fs := wal.NewMemFS()
	cdb := newReplDB(t)
	if _, err := cdb.EnableDurability(fs, storage.DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	var records [][]byte
	if err := cdb.SetCommitSink(func(seq uint64, record []byte) {
		records = append(records, append([]byte(nil), record...))
	}); err != nil {
		t.Fatal(err)
	}
	insRow(t, cdb, 1)
	if err := cdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ck, err := wal.ReadAll(fs, storage.CheckpointFileName)
	if err != nil {
		t.Fatal(err)
	}
	insRow(t, cdb, 2)

	fdb := newReplDB(t)
	fp := startFakePrimary(t, func(send func(byte, []byte, ...uint64)) {
		send(msgWelcome, nil, protoVersion, storage.SchemaFingerprint(fdb), 2)
		send(msgRecord, records[0])
		send(msgRecord, records[1]) // follower now stands at 2
		send(msgCheckpoint, ck)     // floor 1 < 2: divergence
	})
	defer fp.close()
	f, err := StartFollower(fdb, fastFollowerOpts(fp.ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitQuarantine(t, f, "checkpoint at sequence 1 while I stand at 2")
	if got := fdb.Snapshot().Seq(); got != 2 {
		t.Fatalf("follower wiped state before refusing: snapshot at %d, want 2", got)
	}
}

// TestQuarantineOnVersionMismatch: a primary speaking another protocol
// version is divergence, not a retry.
func TestQuarantineOnVersionMismatch(t *testing.T) {
	defer leakcheck.Check(t)()
	fdb := newReplDB(t)
	fp := startFakePrimary(t, func(send func(byte, []byte, ...uint64)) {
		send(msgWelcome, nil, 99, storage.SchemaFingerprint(fdb), 0)
	})
	defer fp.close()
	f, err := StartFollower(fdb, fastFollowerOpts(fp.ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitQuarantine(t, f, "replication protocol version 99")
}

// TestPrimaryRejectsSchemaMismatch: a real primary refuses a follower built
// from a different schema, and the follower latches the narrated refusal.
func TestPrimaryRejectsSchemaMismatch(t *testing.T) {
	defer leakcheck.Check(t)()
	pdb := newPrimaryDB(t)
	p, addr := startPrimary(t, pdb, PrimaryOptions{Heartbeat: 50 * time.Millisecond})
	defer p.Close()

	other := catalog.NewSchema("other")
	if err := other.AddRelation(&catalog.Relation{
		Name:       "SOMETHING_ELSE",
		Attributes: []*catalog.Attribute{{Name: "id", Type: catalog.Int, NotNull: true}},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	fdb, err := storage.NewDatabase(other)
	if err != nil {
		t.Fatal(err)
	}
	f, err := StartFollower(fdb, fastFollowerOpts(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitQuarantine(t, f, "the primary refused me: our schemas differ")
}

// TestFollowerRequiresInMemoryDB and TestPrimaryRequiresDurableDB pin the
// construction guards.
func TestConstructionGuards(t *testing.T) {
	defer leakcheck.Check(t)()
	if _, err := NewPrimary(newReplDB(t), PrimaryOptions{}); err == nil {
		t.Fatal("NewPrimary accepted a non-durable database")
	}
	if _, err := StartFollower(newPrimaryDB(t), FollowerOptions{Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("StartFollower accepted a durable database")
	}
}

// TestProtoRoundTrip pins the wire encoding of every message kind.
func TestProtoRoundTrip(t *testing.T) {
	cases := []message{
		{kind: msgHandshake, a: protoVersion, b: 0xDEADBEEF, c: 42},
		{kind: msgWelcome, a: protoVersion, b: 7, c: 9},
		{kind: msgCheckpoint, body: []byte("segment bytes")},
		{kind: msgRecord, body: emptyRecord(3)},
		{kind: msgHeartbeat, a: 17},
		{kind: msgAck, a: 16},
		{kind: msgReject, body: []byte("go away")},
	}
	for _, want := range cases {
		var fields []uint64
		switch uvarintCount(want.kind) {
		case 3:
			fields = []uint64{want.a, want.b, want.c}
		case 1:
			fields = []uint64{want.a}
		}
		payload := appendMessage(nil, want.kind, want.body, fields...)
		got, err := parseMessage(payload)
		if err != nil {
			t.Fatalf("%q: %v", want.kind, err)
		}
		if got.kind != want.kind || got.a != want.a || got.b != want.b || got.c != want.c ||
			string(got.body) != string(want.body) {
			t.Fatalf("%q round trip: got %+v want %+v", want.kind, got, want)
		}
	}
	if _, err := parseMessage(nil); err == nil {
		t.Fatal("empty payload parsed")
	}
	if _, err := parseMessage([]byte{'Z'}); err == nil {
		t.Fatal("unknown kind parsed")
	}
	if _, err := parseMessage([]byte{msgAck}); err == nil {
		t.Fatal("short ack parsed")
	}
}

var _ io.Reader = deadlineReader{} // the scanner consumes links through this
