package repl

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Default tuning for PrimaryOptions zero values.
const (
	DefaultHeartbeat        = 500 * time.Millisecond
	DefaultSendTimeout      = 5 * time.Second
	DefaultHandshakeTimeout = 5 * time.Second
	DefaultOutboxBytes      = 1 << 20
)

// PrimaryOptions tunes a replication primary.
type PrimaryOptions struct {
	// Heartbeat is how often an idle link carries the primary's last
	// committed sequence, so followers measure lag without traffic.
	Heartbeat time.Duration
	// SendTimeout bounds every frame write. A follower that stops reading
	// backs TCP up until a write trips this and the link drops — the sender
	// goroutine is never wedged longer than one timeout.
	SendTimeout time.Duration
	// HandshakeTimeout bounds how long an accepted connection may take to
	// present its handshake frame.
	HandshakeTimeout time.Duration
	// AckTimeout bounds silence on the follower→primary ack stream; zero
	// defaults to four heartbeats. A partitioned follower trips it and is
	// dropped rather than tracked as live forever.
	AckTimeout time.Duration
	// OutboxBytes bounds the in-memory ring of recent committed records.
	// Followers that fall off the ring catch up from the checkpoint + log on
	// disk, so the bound costs catch-up IO, never commit latency.
	OutboxBytes int
}

func (o *PrimaryOptions) fill() {
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.SendTimeout <= 0 {
		o.SendTimeout = DefaultSendTimeout
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 4 * o.Heartbeat
	}
	if o.OutboxBytes <= 0 {
		o.OutboxBytes = DefaultOutboxBytes
	}
}

// followerLink is the primary's view of one connected follower.
type followerLink struct {
	conn   net.Conn
	addr   string
	since  time.Time
	ack    atomic.Uint64 // highest acknowledged applied seq
	sent   atomic.Uint64 // highest record seq shipped
	notify chan struct{} // capacity 1: a pending token means "new commits"
}

// FollowerLinkStats describes one live link on /stats.
type FollowerLinkStats struct {
	Addr         string
	AckSeq       uint64
	SentSeq      uint64
	Lag          uint64 // primary last seq minus acknowledged seq
	ConnectedFor time.Duration
}

// PrimaryStats is the primary-side replication snapshot for /stats.
type PrimaryStats struct {
	LastSeq      uint64
	Accepted     uint64 // connections accepted over the primary's lifetime
	Dropped      uint64 // links the primary severed (deadline, bad ack stream)
	OutboxFrames int
	OutboxBytes  int
	Followers    []FollowerLinkStats
}

// Primary streams committed WAL records to followers. Create with
// NewPrimary, serve with Start (or Serve), stop with Close.
type Primary struct {
	db   *storage.Database
	opts PrimaryOptions

	lastSeq  atomic.Uint64
	accepted atomic.Uint64
	dropped  atomic.Uint64

	closeCh chan struct{}
	wg      sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	ln        net.Listener
	links     map[*followerLink]struct{}
	ring      []storage.CommitFrame // contiguous seqs; bounded by OutboxBytes
	ringBytes int
}

// NewPrimary attaches a replication primary to a durable database: its
// commit sink feeds the outbox ring from here on. Call Start to accept
// followers.
func NewPrimary(db *storage.Database, opts PrimaryOptions) (*Primary, error) {
	if !db.Durable() {
		return nil, errors.New("repl: a replication primary requires a durable database (the WAL is the outbox)")
	}
	opts.fill()
	p := &Primary{
		db:      db,
		opts:    opts,
		closeCh: make(chan struct{}),
		links:   make(map[*followerLink]struct{}),
	}
	stats, _ := db.DurabilityStats()
	p.lastSeq.Store(stats.LastSeq)
	if err := db.SetCommitSink(p.onCommit); err != nil {
		return nil, err
	}
	return p, nil
}

// onCommit is the storage commit sink: called in commit order, after the
// fsync, with the durability mutex held. It copies the record into the ring,
// evicts the oldest frames past the byte budget, and nudges every sender —
// all non-blocking, so a commit never waits on replication.
func (p *Primary) onCommit(seq uint64, record []byte) {
	cp := append([]byte(nil), record...)
	p.mu.Lock()
	p.ring = append(p.ring, storage.CommitFrame{Seq: seq, Record: cp})
	p.ringBytes += len(cp)
	for p.ringBytes > p.opts.OutboxBytes && len(p.ring) > 1 {
		p.ringBytes -= len(p.ring[0].Record)
		p.ring[0] = storage.CommitFrame{}
		p.ring = p.ring[1:]
	}
	if cap(p.ring) > 2*len(p.ring)+16 {
		p.ring = append(make([]storage.CommitFrame, 0, len(p.ring)), p.ring...)
	}
	p.lastSeq.Store(seq)
	for l := range p.links {
		select {
		case l.notify <- struct{}{}:
		default:
		}
	}
	p.mu.Unlock()
}

// Start runs Serve on a tracked goroutine and returns immediately.
func (p *Primary) Start(ln net.Listener) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.Serve(ln)
	}()
}

// Serve accepts follower connections on ln until it closes (Close closes
// it). Each follower gets a sender goroutine and an ack-reader goroutine.
func (p *Primary) Serve(ln net.Listener) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serveFollower(conn)
		}()
	}
}

// serveFollower runs one link: handshake, then the send loop, with a
// concurrent ack reader. Any error on either side severs the connection; the
// follower is expected to reconnect and resume.
func (p *Primary) serveFollower(conn net.Conn) {
	defer conn.Close()
	var scratch, payload []byte
	msg, err := readHandshake(conn, p.opts.HandshakeTimeout)
	if err != nil {
		return
	}
	if msg.a != protoVersion {
		payload = appendMessage(payload[:0], msgReject, []byte("we speak different replication protocol versions"))
		_ = sendMessage(conn, p.opts.SendTimeout, &scratch, payload)
		return
	}
	if fp := storage.SchemaFingerprint(p.db); msg.b != fp {
		payload = appendMessage(payload[:0], msgReject, []byte("our schemas differ; a follower must be built from the primary's schema"))
		_ = sendMessage(conn, p.opts.SendTimeout, &scratch, payload)
		return
	}
	link := &followerLink{
		conn:   conn,
		addr:   conn.RemoteAddr().String(),
		since:  time.Now(),
		notify: make(chan struct{}, 1),
	}
	link.ack.Store(msg.c)
	link.sent.Store(msg.c)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.links[link] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.links, link)
		p.mu.Unlock()
	}()
	payload = appendMessage(payload[:0], msgWelcome, nil, protoVersion, storage.SchemaFingerprint(p.db), p.lastSeq.Load())
	if err := sendMessage(conn, p.opts.SendTimeout, &scratch, payload); err != nil {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.readAcks(link)
	}()
	p.sendLoop(link, msg.c)
}

// readHandshake reads and validates the first frame of a new connection.
func readHandshake(conn net.Conn, timeout time.Duration) (message, error) {
	sc := wal.NewFrameScanner(deadlineReader{conn, timeout})
	if !sc.Scan() {
		err := sc.Err()
		if err == nil {
			err = errors.New("repl: connection closed before handshake")
		}
		return message{}, err
	}
	msg, err := parseMessage(sc.Frame().Payload)
	if err != nil {
		return message{}, err
	}
	if msg.kind != msgHandshake {
		return message{}, errors.New("repl: first frame was not a handshake")
	}
	return msg, nil
}

// readAcks consumes the follower→primary ack stream, keeping the link's
// acknowledged seq fresh for /stats and lag accounting. Silence past
// AckTimeout, or an unintelligible frame, severs the connection — the send
// loop then fails its next write and the follower reconnects.
func (p *Primary) readAcks(link *followerLink) {
	sc := wal.NewFrameScanner(deadlineReader{link.conn, p.opts.AckTimeout})
	for sc.Scan() {
		msg, err := parseMessage(sc.Frame().Payload)
		if err != nil || msg.kind != msgAck {
			break
		}
		if msg.a > link.ack.Load() {
			link.ack.Store(msg.a)
		}
	}
	link.conn.Close()
}

// sendLoop ships the backlog from the follower's applied seq, then follows
// the live tail: commit notifications wake it, heartbeats cover silence.
// Every write is deadline-bounded; the first failure drops the link.
func (p *Primary) sendLoop(link *followerLink, applied uint64) {
	next := applied + 1
	var scratch, payload []byte
	hb := time.NewTicker(p.opts.Heartbeat)
	defer hb.Stop()
	for {
		for next <= p.lastSeq.Load() {
			ck, frames, last, err := p.framesFrom(next)
			if err != nil {
				p.dropped.Add(1)
				return
			}
			if ck != nil {
				payload = appendMessage(payload[:0], msgCheckpoint, ck)
				if sendMessage(link.conn, p.opts.SendTimeout, &scratch, payload) != nil {
					p.dropped.Add(1)
					return
				}
			}
			for _, fr := range frames {
				payload = appendMessage(payload[:0], msgRecord, fr.Record)
				if sendMessage(link.conn, p.opts.SendTimeout, &scratch, payload) != nil {
					p.dropped.Add(1)
					return
				}
				link.sent.Store(fr.Seq)
			}
			if last+1 <= next {
				break // nothing new surfaced; wait for a notification
			}
			next = last + 1
		}
		select {
		case <-p.closeCh:
			return
		case <-link.notify:
		case <-hb.C:
			payload = appendMessage(payload[:0], msgHeartbeat, nil, p.lastSeq.Load())
			if sendMessage(link.conn, p.opts.SendTimeout, &scratch, payload) != nil {
				p.dropped.Add(1)
				return
			}
		}
	}
}

// framesFrom returns what a follower whose next needed seq is `next` should
// receive. The ring serves the live tail without touching disk; a follower
// that fell off it is fed from the durable backlog (checkpoint + log), which
// is the unbounded source of truth.
func (p *Primary) framesFrom(next uint64) (ck []byte, frames []storage.CommitFrame, last uint64, err error) {
	p.mu.Lock()
	if n := len(p.ring); n > 0 && p.ring[0].Seq <= next {
		idx := int(next - p.ring[0].Seq)
		if idx >= n {
			p.mu.Unlock()
			return nil, nil, next - 1, nil
		}
		frames = append(frames, p.ring[idx:]...)
		p.mu.Unlock()
		return nil, frames, frames[len(frames)-1].Seq, nil
	}
	p.mu.Unlock()
	// Lock order: the storage read takes durability.mu; never hold p.mu
	// across it (the commit sink runs under durability.mu and takes p.mu).
	return p.db.ReplicationBacklog(next - 1)
}

// Stats snapshots the primary's replication counters and per-link state.
func (p *Primary) Stats() PrimaryStats {
	last := p.lastSeq.Load()
	out := PrimaryStats{
		LastSeq:  last,
		Accepted: p.accepted.Load(),
		Dropped:  p.dropped.Load(),
	}
	now := time.Now()
	p.mu.Lock()
	out.OutboxFrames = len(p.ring)
	out.OutboxBytes = p.ringBytes
	for l := range p.links {
		ack := l.ack.Load()
		st := FollowerLinkStats{
			Addr:         l.addr,
			AckSeq:       ack,
			SentSeq:      l.sent.Load(),
			ConnectedFor: now.Sub(l.since),
		}
		if last > ack {
			st.Lag = last - ack
		}
		out.Followers = append(out.Followers, st)
	}
	p.mu.Unlock()
	return out
}

// Close detaches the commit sink, stops accepting, severs every link, and
// waits for all replication goroutines to exit.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	links := make([]*followerLink, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	_ = p.db.SetCommitSink(nil)
	close(p.closeCh)
	if ln != nil {
		ln.Close()
	}
	for _, l := range links {
		l.conn.Close()
	}
	p.wg.Wait()
	return nil
}
